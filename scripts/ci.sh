#!/usr/bin/env bash
# Per-PR gate for the GreenNFV tree:
#   1. the tier-1 verify line from ROADMAP.md (Release build, full ctest),
#      then a run_scenario smoke over the ci-smoke preset so the
#      Scenario/Experiment API (full scheduler roster, tiny budgets) is
#      exercised end to end in the gate
#   2. an ASan/UBSan Debug build of the test suite, with the nfvsim suites
#      (threaded engine, mempool, ring) always run under the sanitizers —
#      that's where data races and lifetime bugs would land.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== [1/2] tier-1 verify: Release build + full ctest ==="
# Pin every option: a stale build/ cache (Debug, sanitizers, bench off...)
# must not silently weaken what this gate claims to have checked.
cmake -B build -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DGREENNFV_SANITIZE=OFF \
  -DGREENNFV_BUILD_TESTS=ON \
  -DGREENNFV_BUILD_BENCH=ON \
  -DGREENNFV_BUILD_EXAMPLES=ON
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure --no-tests=error -j "$JOBS")

echo
echo "=== [1b] scenario smoke: ci-smoke preset, full roster ==="
./build/example_run_scenario scenario=ci-smoke

echo
echo "=== [1c] campaign smoke: 2 presets x 2 seeds, jobs=2 ==="
# fresh=1 so the gate always exercises real parallel execution (not a
# cache hit from a previous run), then the manifest must parse with every
# aggregate field finite.
./build/example_run_campaign campaign=ci-campaign-smoke jobs=2 fresh=1
./build/example_run_campaign \
  validate_manifest=out/ci-campaign-smoke/manifest.json

echo
echo "=== [1c2] fleet smoke: dynamic 3-node fleet through the orchestrator ==="
# Online arrivals/departures, consolidation migrations, and power gating
# end to end (the consolidate policy + reactive models keep it seconds).
./build/example_run_scenario scenario=fleet-smoke models=baseline,ee-pstate

echo
echo "=== [1c3] placement-sweep smoke: 2 cells at jobs=2 ==="
# A 2-cell expansion of the placement-sweep preset (one fleet size, two
# placement policies) with CI-sized windows, then the manifest must parse
# with every aggregate field finite — same contract as the campaign smoke.
./build/example_run_campaign campaign=placement-sweep \
  sweep.nodes=3 sweep.placement=least-loaded,energy-bestfit \
  models=baseline eval_windows=3 sub_windows=2 window_s=2 \
  jobs=2 fresh=1
./build/example_run_campaign \
  validate_manifest=out/placement-sweep/manifest.json

echo
echo "=== [1c4] mega-fleet smoke: 500 nodes / ~50k arrivals + baseline check ==="
# The discrete-event engine at CI scale: builds the shrunk mega-fleet
# geometry, proves it bit-identical to the window-synchronous reference
# engine (hard failure on divergence), and reports events/sec. The
# baseline comparison warns — never fails — on a >30% regression of the
# event-vs-reference speedup, so a future PR cannot silently lose the
# event engine's win but a noisy machine cannot block the gate either.
./build/bench_fleet smoke=1 baseline=bench/baselines/BENCH_fleet.json \
  trace_check=1 series_check=1

echo
echo "=== [1c5] topology fleet smoke: leaf-spine fabric + latency SLA ==="
# The network subsystem end to end: routed placement over a 3-node
# leaf-spine fabric with the topology-aware policy, link energy folded
# into the decomposition, and the 40 us latency SLA gating the SLA column.
./build/example_run_scenario scenario=fleet-smoke models=baseline,ee-pstate \
  topology.enabled=1 topology.preset=leaf-spine \
  fleet.policy=topology-aware-bestfit sla.latency=40

echo
echo "=== [1c6] path-frontier smoke: 2 topology cells at jobs=2 ==="
# A 2-cell slice of the path-frontier preset (one preset axis value, two
# policies, one latency budget) on the starved fabric, then the manifest
# must parse with every aggregate field finite.
./build/example_run_campaign campaign=path-frontier \
  sweep.topology.preset=leaf-spine \
  sweep.fleet.policy=energy-bestfit,topology-aware-bestfit \
  sweep.sla.latency=40 \
  models=baseline eval_windows=3 sub_windows=2 window_s=2 \
  jobs=2 fresh=1
./build/example_run_campaign \
  validate_manifest=out/path-frontier/manifest.json

echo
echo "=== [1c7] flight recorder: traced runs, trace validation, timing ==="
# Observability end to end: a traced fleet smoke must emit a Perfetto
# JSON that validate_trace accepts (schema keys, finite timestamps,
# per-thread completion order), and a traced parallel campaign must print
# the per-cell timing table while leaving artifacts byte-identical (the
# telemetry.TraceDeterminism suite pins the byte-identity itself).
./build/example_run_scenario scenario=fleet-smoke models=baseline \
  trace=ci_fleet_smoke.trace.json metrics=1
./build/example_run_scenario validate_trace=out/ci_fleet_smoke.trace.json
./build/example_run_campaign campaign=ci-campaign-smoke jobs=4 fresh=1 \
  trace=campaign.trace.json timing=1
./build/example_run_scenario \
  validate_trace=out/ci-campaign-smoke/campaign.trace.json

echo
echo "=== [1c8] fault smoke: crashes, repairs, recovery under SLA pressure ==="
# The fault subsystem end to end: the fault-smoke preset (node crashes,
# rack-outage chance, wake storms, exponential repairs) through the full
# model evaluation, then a 2-cell slice of the resilience-frontier preset
# (one crash rate, two recovery policies) at jobs=2 with the same
# manifest contract as every other campaign smoke.
./build/example_run_scenario scenario=fault-smoke models=baseline,ee-pstate
./build/example_run_campaign campaign=resilience-frontier \
  sweep.fault.node_crash_rate=0.3 \
  sweep.fleet.policy=energy-bestfit,topology-aware-bestfit \
  sweep.sla.latency=40 \
  models=baseline eval_windows=3 sub_windows=2 window_s=2 \
  jobs=2 fresh=1
./build/example_run_campaign \
  validate_manifest=out/resilience-frontier/manifest.json

echo
echo "=== [1c9] health series + campaign report: generate and validate ==="
# The observability stack end to end: a 2-cell resilience-frontier slice
# with per-window series sampling on and an HTML report rendered from the
# finished directory, then every artifact class (per-run series CSV +
# JSON, report model, dashboard HTML) must pass its schema validator, and
# a counter snapshot must land as parseable JSON. The byte-identity of
# sampled vs unsampled runs is pinned by telemetry.SeriesDeterminism in
# the tier-1 suite above.
./build/example_run_campaign campaign=resilience-frontier \
  sweep.fault.node_crash_rate=0.3 \
  sweep.fleet.policy=energy-bestfit,topology-aware-bestfit \
  sweep.sla.latency=40 \
  models=baseline eval_windows=3 sub_windows=2 window_s=2 \
  jobs=2 fresh=1 series=1 report=report.html metrics_out=metrics.json
./build/example_run_report validate=out/resilience-frontier/report.html
./build/example_run_report validate=out/resilience-frontier/report.json
for series_file in out/resilience-frontier/runs/*.series.csv \
                   out/resilience-frontier/runs/*.series.json; do
  ./build/example_run_report validate="$series_file"
done
python3 -c "import json; json.load(open('out/resilience-frontier/metrics.json'))"
# Post-hoc generation must reproduce the dashboard from artifacts alone.
./build/example_run_report dir=out/resilience-frontier html=report_posthoc.html
./build/example_run_report validate=out/resilience-frontier/report_posthoc.html

echo
echo "=== [1c10] bench history: append + warn-only delta print ==="
# Two smoke benches back to back: the second run must find the first's
# record in out/bench_history.jsonl and print its rate deltas. The gate
# asserts the file grows and the delta line appears; the deltas
# themselves are warn-only by design.
history_before=$(wc -l < out/bench_history.jsonl 2>/dev/null || echo 0)
./build/bench_fleet smoke=1 | tee /tmp/greennfv_bench_history.log
history_after=$(wc -l < out/bench_history.jsonl)
if [ "$history_after" -le "$history_before" ]; then
  echo "ci.sh: bench_history.jsonl did not grow" >&2
  exit 1
fi
if [ "$history_after" -ge 2 ] && \
   ! grep -q '^\[history\] .*_per_sec' /tmp/greennfv_bench_history.log; then
  echo "ci.sh: bench history delta line missing" >&2
  exit 1
fi

echo
echo "=== [1d] RL training microbench: smoke mode + baseline check ==="
# Smoke-sized run of the batched training engine (train_steps/sec,
# actions/sec -> out/BENCH_train.json). The baseline comparison warns —
# never fails — on a >30% train-throughput regression, so a future PR
# cannot silently lose the batched-GEMM win but a noisy machine cannot
# block the gate either.
./build/bench_train smoke=1 baseline=bench/baselines/BENCH_train.json

echo
echo "=== [2/2] sanitizer gate: ASan/UBSan Debug build ==="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DGREENNFV_SANITIZE=ON \
  -DGREENNFV_BUILD_TESTS=ON \
  -DGREENNFV_BUILD_BENCH=OFF \
  -DGREENNFV_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "$JOBS"

# The threaded data path and the event engine's pooled allocators are the
# sanitizer-critical surfaces; run their suites explicitly (pattern match
# keeps this in sync as suites are added), then the rest of the tree.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
(cd build-asan && ctest --output-on-failure --no-tests=error -j "$JOBS" -R '^nfvsim\.')
(cd build-asan && ctest --output-on-failure --no-tests=error -j "$JOBS" \
  -R '^common\.(Arena|ArenaAllocator|BucketQueue|EventHeap)\.|^orchestrator\.(FleetGolden|FleetDeterminism|FleetFault|FleetTopology|FleetWakeRegression)\.|^topology\.|^telemetry\.')
(cd build-asan && ctest --output-on-failure --no-tests=error -j "$JOBS" \
  -E '^nfvsim\.|^common\.(Arena|ArenaAllocator|BucketQueue|EventHeap)\.|^orchestrator\.(FleetGolden|FleetDeterminism|FleetFault|FleetTopology|FleetWakeRegression)\.|^topology\.|^telemetry\.')

echo
echo "ci.sh: all green"
