#include "nfvsim/mempool.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace greennfv::nfvsim {
namespace {

TEST(Mempool, AllocUntilExhaustion) {
  Mempool pool(4);
  std::vector<Packet*> taken;
  for (int i = 0; i < 4; ++i) {
    Packet* pkt = pool.alloc();
    ASSERT_NE(pkt, nullptr);
    taken.push_back(pkt);
  }
  EXPECT_EQ(pool.in_use(), 4u);
  EXPECT_EQ(pool.alloc(), nullptr);  // exhausted, no allocation fallback
  for (Packet* pkt : taken) pool.free(pkt);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_NE(pool.alloc(), nullptr);  // usable again
}

TEST(Mempool, FreeResetsFlags) {
  Mempool pool(2);
  Packet* pkt = pool.alloc();
  ASSERT_NE(pkt, nullptr);
  pkt->mark_dropped();
  pkt->chain_pos = 3;
  pool.free(pkt);
  Packet* again = pool.alloc();
  // Same slab slot eventually comes back clean.
  EXPECT_FALSE(again->dropped());
  EXPECT_EQ(again->chain_pos, 0);
  pool.free(again);
}

TEST(Mempool, OwnsDetectsForeignPointers) {
  Mempool pool(2);
  Packet outside;
  EXPECT_FALSE(pool.owns(&outside));
  Packet* inside = pool.alloc();
  EXPECT_TRUE(pool.owns(inside));
  pool.free(inside);
}

TEST(Mempool, ConcurrentAllocFreeConserves) {
  Mempool pool(512);
  constexpr int kIterations = 20000;
  auto worker = [&] {
    std::vector<Packet*> mine;
    for (int i = 0; i < kIterations; ++i) {
      if (Packet* pkt = pool.alloc()) mine.push_back(pkt);
      if (mine.size() > 16) {
        pool.free(mine.back());
        mine.pop_back();
      }
    }
    for (Packet* pkt : mine) pool.free(pkt);
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  EXPECT_EQ(pool.in_use(), 0u);
  // Full capacity available again.
  std::vector<Packet*> all;
  for (std::size_t i = 0; i < pool.capacity(); ++i) {
    Packet* pkt = pool.alloc();
    ASSERT_NE(pkt, nullptr);
    all.push_back(pkt);
  }
  EXPECT_EQ(pool.alloc(), nullptr);
  for (Packet* pkt : all) pool.free(pkt);
}

TEST(Packet, FitsOneCacheLine) {
  EXPECT_EQ(sizeof(Packet), 64u);
}

TEST(Packet, DropFlagRoundTrip) {
  Packet pkt;
  EXPECT_FALSE(pkt.dropped());
  pkt.mark_dropped();
  EXPECT_TRUE(pkt.dropped());
}

}  // namespace
}  // namespace greennfv::nfvsim
