#include "nfvsim/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace greennfv::nfvsim {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO order
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRing, CapacityRoundsToPow2) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, BulkTransfer) {
  SpscRing<int> ring(16);
  std::vector<int> in(10);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_EQ(ring.try_push_bulk(in), 10u);
  EXPECT_EQ(ring.size(), 10u);
  std::vector<int> extra(10, -1);
  EXPECT_EQ(ring.try_push_bulk(extra), 6u);  // only 6 slots left
  std::vector<int> out(20, -1);
  EXPECT_EQ(ring.try_pop_bulk(out), 16u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  int out = -1;
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(SpscRing, TwoThreadStressPreservesOrderAndCount) {
  SpscRing<std::uint64_t> ring(256);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (ring.try_push(i)) ++i;
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  while (expected < kCount) {
    std::uint64_t v = 0;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);  // strict FIFO
      sum += v;
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BulkStressConservesItems) {
  SpscRing<std::uint64_t> ring(128);
  constexpr std::uint64_t kCount = 100000;
  std::thread producer([&] {
    std::vector<std::uint64_t> burst(32);
    std::uint64_t next = 0;
    while (next < kCount) {
      const std::size_t n =
          std::min<std::uint64_t>(32, kCount - next);
      for (std::size_t i = 0; i < n; ++i) burst[i] = next + i;
      const std::size_t pushed = ring.try_push_bulk(
          std::span<const std::uint64_t>(burst.data(), n));
      next += pushed;
    }
  });
  std::uint64_t received = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> out(32);
  while (received < kCount) {
    const std::size_t n =
        ring.try_pop_bulk(std::span<std::uint64_t>(out.data(), 32));
    for (std::size_t i = 0; i < n; ++i) sum += out[i];
    received += n;
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

TEST(MpmcQueue, PushPopSingleThread) {
  MpmcQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(i));
  EXPECT_FALSE(queue.try_push(4));  // full
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
}

class MpmcStress : public ::testing::TestWithParam<int> {};

TEST_P(MpmcStress, ConservesItemsAcrossThreads) {
  const int threads_per_side = GetParam();
  MpmcQueue<std::uint64_t> queue(1024);
  constexpr std::uint64_t kPerProducer = 50000;
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> consumed_count{0};
  const std::uint64_t total =
      kPerProducer * static_cast<std::uint64_t>(threads_per_side);

  std::vector<std::thread> workers;
  for (int p = 0; p < threads_per_side; ++p) {
    workers.emplace_back([&, p] {
      const std::uint64_t base = static_cast<std::uint64_t>(p) * kPerProducer;
      for (std::uint64_t i = 0; i < kPerProducer;) {
        if (queue.try_push(base + i)) ++i;
      }
    });
  }
  for (int c = 0; c < threads_per_side; ++c) {
    workers.emplace_back([&] {
      std::uint64_t v = 0;
      while (consumed_count.load(std::memory_order_relaxed) < total) {
        if (queue.try_pop(v)) {
          consumed_sum.fetch_add(v, std::memory_order_relaxed);
          consumed_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(consumed_count.load(), total);
  EXPECT_EQ(consumed_sum.load(), total * (total - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Threads, MpmcStress, ::testing::Values(1, 2));

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

}  // namespace
}  // namespace greennfv::nfvsim
