#include "nfvsim/engine_analytic.hpp"

#include <gtest/gtest.h>

#include "traffic/generator.hpp"

namespace greennfv::nfvsim {
namespace {

OnvmController make_controller(int chains = 2) {
  OnvmController controller;
  for (int c = 0; c < chains; ++c) {
    // Built with += (not "c" + to_string) to dodge GCC 12's -Wrestrict
    // false positive on const char* + std::string&& (GCC PR 105329).
    std::string name = "c";
    name += std::to_string(c);
    controller.add_chain(name, standard_chain_nfs(c));
  }
  return controller;
}

traffic::TrafficGenerator make_generator(int chains = 2) {
  return traffic::TrafficGenerator(
      traffic::make_eval_flows(4, chains, 8.0, 21), 21);
}

TEST(AnalyticEngine, StepAdvancesTimeAndEnergy) {
  OnvmController controller = make_controller();
  AnalyticEngine engine(controller, make_generator());
  const WindowMetrics m = engine.step(1.0);
  EXPECT_NEAR(m.dt_s, 1.0, 1e-12);
  EXPECT_NEAR(m.energy_j, m.power_w() * 1.0, 1e-9);
  EXPECT_NEAR(engine.time_s(), 1.0, 1e-12);
  EXPECT_NEAR(engine.meter().total_joules(), m.energy_j, 1e-9);
  EXPECT_GT(m.total_gbps(), 0.0);
}

TEST(AnalyticEngine, RunAggregatesWindows) {
  OnvmController controller = make_controller();
  AnalyticEngine engine(controller, make_generator());
  const auto summary = engine.run(10, 0.5);
  EXPECT_NEAR(summary.duration_s, 5.0, 1e-12);
  EXPECT_GT(summary.mean_gbps, 0.0);
  EXPECT_GT(summary.energy_j, 0.0);
  EXPECT_NEAR(summary.energy_j, engine.meter().total_joules(), 1e-9);
  EXPECT_EQ(summary.chain_gbps.size(), 2u);
  EXPECT_EQ(summary.chain_energy_j.size(), 2u);
  // Chain means sum to the aggregate.
  EXPECT_NEAR(summary.chain_gbps[0] + summary.chain_gbps[1],
              summary.mean_gbps, 1e-6);
}

TEST(AnalyticEngine, KnobChangesTakeEffectNextStep) {
  OnvmController controller = make_controller(1);
  AnalyticEngine engine(controller, traffic::TrafficGenerator(
                                        {traffic::line_rate_flow(512)}, 3));
  ChainKnobs weak;
  weak.cores = 0.2;
  weak.freq_ghz = 1.2;
  weak.batch = 2;
  controller.apply_knobs(0, weak);
  const auto starved = engine.step(1.0);
  ChainKnobs strong;
  strong.cores = 4.0;
  strong.freq_ghz = 2.1;
  strong.batch = 128;
  strong.dma_bytes = 8ull << 20;
  controller.apply_knobs(0, strong);
  const auto fed = engine.step(1.0);
  EXPECT_GT(fed.total_gbps(), starved.total_gbps() * 1.5);
}

TEST(AnalyticEngine, DeterministicForSameSeed) {
  OnvmController c1 = make_controller();
  OnvmController c2 = make_controller();
  AnalyticEngine e1(c1, make_generator());
  AnalyticEngine e2(c2, make_generator());
  for (int i = 0; i < 5; ++i) {
    const auto m1 = e1.step(0.5);
    const auto m2 = e2.step(0.5);
    EXPECT_DOUBLE_EQ(m1.total_gbps(), m2.total_gbps());
    EXPECT_DOUBLE_EQ(m1.power_w(), m2.power_w());
  }
}

TEST(AnalyticEngine, ResetClearsClockAndMeter) {
  OnvmController controller = make_controller();
  AnalyticEngine engine(controller, make_generator());
  (void)engine.run(4, 1.0);
  engine.reset(99);
  EXPECT_NEAR(engine.time_s(), 0.0, 1e-12);
  EXPECT_NEAR(engine.meter().total_joules(), 0.0, 1e-12);
}

TEST(AnalyticEngine, RejectsFlowsForMissingChains) {
  OnvmController controller = make_controller(1);
  auto flows = traffic::make_eval_flows(4, 3, 8.0, 21);  // chains 0..2
  EXPECT_DEATH(AnalyticEngine(controller,
                              traffic::TrafficGenerator(flows, 21)),
               "chain the controller lacks");
}

TEST(AnalyticEngine, DropFractionBounded) {
  OnvmController controller = make_controller();
  AnalyticEngine engine(controller, make_generator());
  const auto summary = engine.run(8, 0.5);
  EXPECT_GE(summary.drop_fraction, 0.0);
  EXPECT_LE(summary.drop_fraction, 1.0);
}

}  // namespace
}  // namespace greennfv::nfvsim
