#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "nfvsim/engine_threaded.hpp"
#include "traffic/generator.hpp"

/// Property coverage for ThreadedRunReport::conserved() under stress: no
/// matter how hard the generator outruns the pool and the rings, every
/// injected packet must end up in exactly one of {delivered, nf_drops,
/// rx_ring_drops} (pool-exhaustion drops are folded into rx_ring_drops by
/// the engine). The parameter grid deliberately spans pool starvation,
/// burst pressure, and tiny worker batches.

namespace greennfv::nfvsim {
namespace {

std::vector<traffic::FlowSpec> hot_flows(int chains, double rate_pps) {
  std::vector<traffic::FlowSpec> flows;
  for (int c = 0; c < chains; ++c) {
    traffic::FlowSpec f;
    f.id = c;
    f.pkt_bytes = 256;
    f.mean_rate_pps = rate_pps;
    f.chain_index = c;
    flows.push_back(f);
  }
  return flows;
}

// (pool_capacity, gen_burst, batch)
using StressParam = std::tuple<std::size_t, std::size_t, std::uint32_t>;

class ConservationUnderPressure
    : public ::testing::TestWithParam<StressParam> {};

TEST_P(ConservationUnderPressure, EveryPacketAccounted) {
  const auto [pool_capacity, gen_burst, batch] = GetParam();

  OnvmController controller;
  controller.add_chain("c0", {"firewall", "router", "ids"});
  controller.add_chain("c1", {"firewall", "router"});
  for (std::size_t c = 0; c < 2; ++c) {
    ChainKnobs knobs = baseline_knobs(controller.spec());
    knobs.batch = batch;
    controller.apply_knobs(c, knobs);
  }

  ThreadedEngine::Options options;
  options.total_packets = 40000;
  options.pool_capacity = pool_capacity;
  options.gen_burst = gen_burst;
  ThreadedEngine engine(controller, options);

  // Offered load far above service rate: backpressure is the common case.
  const auto report = engine.run(hot_flows(2, 5e6), /*seed=*/23);

  EXPECT_EQ(report.generated, options.total_packets);
  EXPECT_TRUE(report.conserved())
      << "generated=" << report.generated << " delivered=" << report.delivered
      << " nf=" << report.nf_drops << " rx=" << report.rx_ring_drops
      << " pool=" << report.pool_exhausted;
  EXPECT_GT(report.delivered, 0u);
  // rx_ring_drops includes the folded-in pool-exhaustion count, so it can
  // never undercount it.
  EXPECT_GE(report.rx_ring_drops, report.pool_exhausted);
  std::uint64_t per_chain_total = 0;
  for (const std::uint64_t d : report.per_chain_delivered) {
    per_chain_total += d;
  }
  EXPECT_EQ(per_chain_total, report.delivered);
}

INSTANTIATE_TEST_SUITE_P(
    PoolAndRingPressure, ConservationUnderPressure,
    ::testing::Values(StressParam{32, 64, 64},    // pool far below one burst
                      StressParam{64, 128, 8},    // big bursts, slow workers
                      StressParam{128, 32, 1},    // batch=1 worst-case drain
                      StressParam{256, 256, 256},  // everything oversized
                      StressParam{8192, 64, 64}));  // roomy control point

TEST(ConservationUnderPressure, TinyPoolActuallyExhausts) {
  OnvmController controller;
  controller.add_chain("c0", {"firewall", "router", "ids"});
  ThreadedEngine::Options options;
  options.total_packets = 50000;
  options.pool_capacity = 32;
  options.gen_burst = 64;
  ThreadedEngine engine(controller, options);
  const auto report = engine.run(hot_flows(1, 5e6), /*seed=*/29);
  EXPECT_TRUE(report.conserved());
  // The point of the scenario: the pool must really have starved, otherwise
  // this suite is not exercising the exhaustion path at all.
  EXPECT_GT(report.pool_exhausted, 0u);
}

}  // namespace
}  // namespace greennfv::nfvsim
