#include "nfvsim/engine_threaded.hpp"

#include <gtest/gtest.h>

#include "traffic/generator.hpp"

namespace greennfv::nfvsim {
namespace {

std::vector<traffic::FlowSpec> clean_flows(int chains) {
  // Flows whose packets pass the default firewall/router rules.
  std::vector<traffic::FlowSpec> flows;
  for (int c = 0; c < chains; ++c) {
    traffic::FlowSpec f;
    f.id = c;
    f.pkt_bytes = 256;
    f.mean_rate_pps = 1e5;
    f.chain_index = c;
    flows.push_back(f);
  }
  return flows;
}

TEST(ThreadedEngine, ConservationSingleChain) {
  OnvmController controller;
  controller.add_chain("c0", {"firewall", "router"});
  ThreadedEngine::Options options;
  options.total_packets = 20000;
  ThreadedEngine engine(controller, options);
  const auto report = engine.run(clean_flows(1), 5);
  EXPECT_EQ(report.generated, 20000u);
  EXPECT_TRUE(report.conserved())
      << "generated=" << report.generated
      << " delivered=" << report.delivered << " nf=" << report.nf_drops
      << " rx=" << report.rx_ring_drops;
  EXPECT_GT(report.delivered, 0u);
  EXPECT_GT(report.delivered_pps, 0.0);
}

TEST(ThreadedEngine, ConservationTwoChains) {
  OnvmController controller;
  controller.add_chain("c0", standard_chain_nfs(0));
  controller.add_chain("c1", standard_chain_nfs(1));
  ThreadedEngine::Options options;
  options.total_packets = 30000;
  ThreadedEngine engine(controller, options);
  const auto report = engine.run(clean_flows(2), 7);
  EXPECT_TRUE(report.conserved());
  ASSERT_EQ(report.per_chain_delivered.size(), 2u);
  EXPECT_GT(report.per_chain_delivered[0], 0u);
  EXPECT_GT(report.per_chain_delivered[1], 0u);
}

class BatchKnob : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BatchKnob, RunsAndConservesAtEveryBatchSize) {
  OnvmController controller;
  controller.add_chain("c0", {"firewall", "router"});
  ChainKnobs knobs = baseline_knobs(controller.spec());
  knobs.batch = GetParam();
  controller.apply_knobs(0, knobs);
  ThreadedEngine::Options options;
  options.total_packets = 10000;
  ThreadedEngine engine(controller, options);
  const auto report = engine.run(clean_flows(1), 11);
  EXPECT_TRUE(report.conserved());
  EXPECT_GT(report.delivered, 5000u);  // drops possible, collapse not
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchKnob,
                         ::testing::Values(1, 2, 8, 32, 128, 256));

TEST(ThreadedEngine, PollModeAlsoCompletes) {
  OnvmController controller(hwmodel::NodeSpec{}, SchedMode::kPoll);
  controller.add_chain("c0", {"firewall"});
  ThreadedEngine::Options options;
  options.total_packets = 10000;
  ThreadedEngine engine(controller, options);
  const auto report = engine.run(clean_flows(1), 13);
  EXPECT_TRUE(report.conserved());
}

TEST(ThreadedEngine, TinyPoolCreatesBackpressureDrops) {
  OnvmController controller;
  controller.add_chain("c0", {"firewall", "router", "ids"});
  ThreadedEngine::Options options;
  options.total_packets = 50000;
  options.pool_capacity = 64;  // tiny: generator outruns the worker
  options.gen_burst = 64;
  ThreadedEngine engine(controller, options);
  const auto report = engine.run(clean_flows(1), 17);
  EXPECT_TRUE(report.conserved());
  // With a 64-packet pool, some allocation failures are essentially
  // guaranteed; conservation must still hold (checked above).
  EXPECT_GT(report.delivered, 0u);
}

TEST(ThreadedEngine, FirewallDropsShowAsNfDrops) {
  OnvmController controller;
  controller.add_chain("c0", {"firewall"});
  // All packets to the denied port range.
  ThreadedEngine::Options options;
  options.total_packets = 5000;
  ThreadedEngine engine(controller, options);
  // dst ports are random in [0,9000); the 6000-6063 deny band catches some.
  const auto report = engine.run(clean_flows(1), 19);
  EXPECT_TRUE(report.conserved());
  EXPECT_GT(report.nf_drops, 0u);
}

}  // namespace
}  // namespace greennfv::nfvsim
