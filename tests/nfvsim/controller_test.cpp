#include "nfvsim/controller.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace greennfv::nfvsim {
namespace {

TEST(Controller, AddChainAndDefaults) {
  OnvmController controller;
  const int idx = controller.add_chain("c0", {"firewall", "router", "ids"});
  EXPECT_EQ(idx, 0);
  EXPECT_EQ(controller.num_chains(), 1u);
  // Defaults are the baseline knobs.
  EXPECT_EQ(controller.knobs(0).batch, 2u);
  EXPECT_NEAR(controller.knobs(0).freq_ghz, 2.1, 1e-9);
}

TEST(Controller, ApplyKnobsClampsAndSnaps) {
  OnvmController controller;
  controller.add_chain("c0", {"firewall"});
  ChainKnobs wild;
  wild.cores = 99.0;
  wild.freq_ghz = 1.77;         // not on the ladder
  wild.llc_fraction = 3.0;
  wild.dma_bytes = 1;           // below minimum
  wild.batch = 100000;
  const ChainKnobs applied = controller.apply_knobs(0, wild);
  EXPECT_NEAR(applied.cores, ChainKnobs::kMaxCores, 1e-9);
  EXPECT_NEAR(applied.freq_ghz, 1.8, 1e-9);  // snapped to ladder
  EXPECT_NEAR(applied.llc_fraction, 1.0, 1e-9);
  EXPECT_EQ(applied.dma_bytes, ChainKnobs::kMinDmaBytes);
  EXPECT_EQ(applied.batch, ChainKnobs::kMaxBatch);
  EXPECT_EQ(controller.knobs(0).batch, ChainKnobs::kMaxBatch);
}

TEST(Controller, DeploymentsMirrorKnobs) {
  OnvmController controller;
  controller.add_chain("c0", {"firewall", "nat"});
  controller.add_chain("c1", {"router"});
  ChainKnobs knobs;
  knobs.cores = 2.5;
  knobs.freq_ghz = 1.5;
  knobs.llc_fraction = 0.4;
  knobs.batch = 16;
  controller.apply_knobs(1, knobs);

  std::vector<hwmodel::ChainWorkload> loads(2);
  loads[0].offered_pps = 1e6;
  loads[0].pkt_bytes = 512;
  loads[1].offered_pps = 2e6;
  loads[1].pkt_bytes = 128;
  const auto deployments = controller.deployments(loads);
  ASSERT_EQ(deployments.size(), 2u);
  EXPECT_EQ(deployments[0].nfs.size(), 2u);
  EXPECT_EQ(deployments[1].nfs.size(), 1u);
  EXPECT_NEAR(deployments[1].cores, 2.5, 1e-9);
  EXPECT_NEAR(deployments[1].freq_ghz, 1.5, 1e-9);
  EXPECT_EQ(deployments[1].batch, 16u);
  EXPECT_NEAR(deployments[1].workload.offered_pps, 2e6, 1e-6);
  // Hybrid mode -> not poll.
  EXPECT_FALSE(deployments[0].poll_mode);
}

TEST(Controller, PollModePropagates) {
  OnvmController controller(hwmodel::NodeSpec{}, SchedMode::kPoll);
  controller.add_chain("c0", {"firewall"});
  std::vector<hwmodel::ChainWorkload> loads(1);
  loads[0].offered_pps = 1e5;
  EXPECT_TRUE(controller.deployments(loads)[0].poll_mode);
  controller.set_sched_mode(SchedMode::kHybrid);
  EXPECT_FALSE(controller.deployments(loads)[0].poll_mode);
}

TEST(Controller, CatToggle) {
  OnvmController controller;
  EXPECT_TRUE(controller.use_cat());
  controller.set_use_cat(false);
  EXPECT_FALSE(controller.use_cat());
}

TEST(Controller, DeploymentsRejectWrongWorkloadCount) {
  OnvmController controller;
  controller.add_chain("c0", {"firewall"});
  EXPECT_DEATH((void)controller.deployments({}), "workload count");
}

TEST(Controller, SchedModeNames) {
  EXPECT_EQ(to_string(SchedMode::kPoll), "poll");
  EXPECT_EQ(to_string(SchedMode::kHybrid), "hybrid");
}

TEST(Knobs, BaselineMatchesAlgorithm1Defaults) {
  const ChainKnobs knobs = baseline_knobs(hwmodel::NodeSpec{});
  EXPECT_EQ(knobs.batch, 2u);                 // Algorithm 1 line 4
  EXPECT_NEAR(knobs.freq_ghz, 2.1, 1e-9);     // performance governor
}

TEST(Knobs, ToStringMentionsEveryKnob) {
  const ChainKnobs knobs = baseline_knobs(hwmodel::NodeSpec{});
  const std::string text = knobs.to_string();
  EXPECT_NE(text.find("cores"), std::string::npos);
  EXPECT_NE(text.find("freq"), std::string::npos);
  EXPECT_NE(text.find("llc"), std::string::npos);
  EXPECT_NE(text.find("dma"), std::string::npos);
  EXPECT_NE(text.find("batch"), std::string::npos);
}

}  // namespace
}  // namespace greennfv::nfvsim
