#include "nfvsim/nf.hpp"

#include <gtest/gtest.h>

namespace greennfv::nfvsim {
namespace {

Packet make_packet(std::uint32_t dst_ip = 0xC0A80101,
                   std::uint16_t dst_port = 80) {
  Packet pkt;
  pkt.id = 1;
  pkt.flow_id = 0;
  pkt.frame_bytes = 512;
  pkt.src_ip = 0xC0A80002;
  pkt.dst_ip = dst_ip;
  pkt.src_port = 12345;
  pkt.dst_port = dst_port;
  return pkt;
}

TEST(Firewall, DeniesSshToManagementSubnet) {
  FirewallNf fw;
  Packet pkt = make_packet(0x0A000001, 22);  // 10.0.0.1:22
  fw.process(pkt);
  EXPECT_TRUE(pkt.dropped());
  EXPECT_EQ(fw.dropped(), 1u);
}

TEST(Firewall, DeniesBadPortRange) {
  FirewallNf fw;
  Packet pkt = make_packet(0xC0A80101, 6010);
  fw.process(pkt);
  EXPECT_TRUE(pkt.dropped());
}

TEST(Firewall, AcceptsByDefault) {
  FirewallNf fw;
  Packet pkt = make_packet(0xC0A80101, 443);
  fw.process(pkt);
  EXPECT_FALSE(pkt.dropped());
  EXPECT_EQ(fw.dropped(), 0u);
}

TEST(Firewall, FirstMatchWins) {
  // A custom accept rule shadowing the deny.
  FirewallNf::Rule accept_all;
  accept_all.deny = false;
  FirewallNf fw({accept_all});
  Packet pkt = make_packet(0x0A000001, 22);
  fw.process(pkt);
  EXPECT_FALSE(pkt.dropped());
}

TEST(Nat, SameConnectionKeepsSamePort) {
  NatNf nat;
  Packet a = make_packet();
  Packet b = make_packet();  // identical 5-tuple
  nat.process(a);
  nat.process(b);
  EXPECT_EQ(a.src_port, b.src_port);
  EXPECT_EQ(a.src_ip, b.src_ip);
  EXPECT_TRUE(a.flags & Packet::kFlagNatRewritten);
  EXPECT_EQ(nat.table_size(), 1u);
}

TEST(Nat, DistinctConnectionsGetDistinctPorts) {
  NatNf nat;
  Packet a = make_packet();
  Packet b = make_packet();
  b.src_port = 54321;  // different tuple
  nat.process(a);
  nat.process(b);
  EXPECT_NE(a.src_port, b.src_port);
  EXPECT_EQ(nat.table_size(), 2u);
}

TEST(Router, LongestPrefixWins) {
  RouterNf router;
  EXPECT_EQ(router.lookup(0x0A010105), 3);  // 10.1.1.5 -> /24 route
  EXPECT_EQ(router.lookup(0x0A010205), 2);  // 10.1.2.5 -> /16 route
  EXPECT_EQ(router.lookup(0x0A020305), 1);  // 10.2.3.5 -> /8 route
  EXPECT_EQ(router.lookup(0x08080808), 0);  // 8.8.8.8 -> default
  EXPECT_EQ(router.lookup(0xC0A80101), 4);  // 192.168.1.1 -> /16
  EXPECT_EQ(router.lookup(0xAC10FFFF), 5);  // 172.16.255.255 -> /12
}

TEST(Router, DecrementsTtlAndDropsExpired) {
  RouterNf router;
  Packet pkt = make_packet();
  pkt.ttl = 2;
  router.process(pkt);
  EXPECT_EQ(pkt.ttl, 1);
  EXPECT_FALSE(pkt.dropped());
  pkt.ttl = 0;
  router.process(pkt);
  EXPECT_TRUE(pkt.dropped());
}

TEST(Router, NoRouteDrops) {
  // Router with only one specific prefix: everything else has no route.
  RouterNf router({{0x0A000000, 8, 1}});
  Packet pkt = make_packet(0x08080808);
  router.process(pkt);
  EXPECT_TRUE(pkt.dropped());
}

TEST(Ids, DigestDependsOnPayloadSize) {
  IdsNf ids;
  Packet small = make_packet();
  small.frame_bytes = 64;
  Packet large = make_packet();
  large.frame_bytes = 1518;
  ids.process(small);
  ids.process(large);
  EXPECT_NE(small.payload_digest, large.payload_digest);
}

TEST(Ids, AlertsOnSomeTraffic) {
  IdsNf ids;
  int alerted = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    Packet pkt = make_packet();
    pkt.id = i;
    pkt.payload_digest = i * 977;
    ids.process(pkt);
    if (pkt.flags & Packet::kFlagAlerted) ++alerted;
  }
  // Deterministic pseudo-signature rate ~1/1009.
  EXPECT_GT(alerted, 3);
  EXPECT_LT(alerted, 200);
  EXPECT_EQ(ids.alerts(), static_cast<std::uint64_t>(alerted));
}

TEST(TunnelGw, EncapDecapRoundTrip) {
  TunnelGwNf tunnel;
  Packet pkt = make_packet();
  const std::uint32_t original = pkt.frame_bytes;
  tunnel.process(pkt);
  EXPECT_TRUE(pkt.flags & Packet::kFlagTunneled);
  EXPECT_EQ(pkt.frame_bytes, original + TunnelGwNf::kEncapOverheadBytes);
  tunnel.process(pkt);
  EXPECT_FALSE(pkt.flags & Packet::kFlagTunneled);
  EXPECT_EQ(pkt.frame_bytes, original);
}

TEST(TunnelGw, EncapRespectsMtu) {
  TunnelGwNf tunnel;
  Packet pkt = make_packet();
  pkt.frame_bytes = 1500;
  tunnel.process(pkt);
  EXPECT_LE(pkt.frame_bytes, 1518u);
}

TEST(Epc, AccumulatesBearerState) {
  EpcNf epc;
  for (int i = 0; i < 10; ++i) {
    Packet pkt = make_packet();
    epc.process(pkt);
  }
  // Digest must evolve with the charging counters.
  Packet probe = make_packet();
  const std::uint64_t before = probe.payload_digest;
  epc.process(probe);
  EXPECT_NE(probe.payload_digest, before);
}

TEST(FlowMonitor, CountsDistinctFlows) {
  FlowMonitorNf monitor;
  for (std::uint32_t flow = 0; flow < 5; ++flow) {
    for (int i = 0; i < 3; ++i) {
      Packet pkt = make_packet();
      pkt.flow_id = flow;
      monitor.process(pkt);
    }
  }
  EXPECT_EQ(monitor.flows_seen(), 5u);
}

TEST(NfFactory, BuildsEveryCatalogEntry) {
  for (const auto& name : hwmodel::nf_catalog::names()) {
    const auto nf = make_nf(name);
    ASSERT_NE(nf, nullptr);
    EXPECT_EQ(nf->name(), name);
  }
  EXPECT_THROW(make_nf("nope"), std::invalid_argument);
}

TEST(NfBase, BatchSkipsDroppedPackets) {
  FirewallNf fw;
  Packet ok = make_packet(0xC0A80101, 443);
  Packet dead = make_packet();
  dead.mark_dropped();
  Packet* batch[] = {&ok, &dead};
  fw.process_batch(std::span<Packet* const>(batch, 2));
  EXPECT_EQ(fw.processed(), 1u);  // dropped packet not processed
}

TEST(NfBase, StatsReset) {
  FirewallNf fw;
  Packet pkt = make_packet(0x0A000001, 22);
  Packet* batch[] = {&pkt};
  fw.process_batch(std::span<Packet* const>(batch, 1));
  EXPECT_EQ(fw.processed(), 1u);
  fw.reset_stats();
  EXPECT_EQ(fw.processed(), 0u);
  EXPECT_EQ(fw.dropped(), 0u);
}

}  // namespace
}  // namespace greennfv::nfvsim
