#include "nfvsim/chain.hpp"

#include <gtest/gtest.h>

namespace greennfv::nfvsim {
namespace {

TEST(Chain, BuildsFromCatalogNames) {
  ServiceChain chain("c0", {"firewall", "router", "ids"});
  EXPECT_EQ(chain.num_nfs(), 3u);
  EXPECT_EQ(chain.name(), "c0");
  EXPECT_EQ(chain.nf(0).name(), "firewall");
  EXPECT_EQ(chain.nf(2).name(), "ids");
  EXPECT_EQ(chain.num_rings(), 4u);  // 3 NF input rings + TX
}

TEST(Chain, CostProfilesMatchOrder) {
  ServiceChain chain("c0", {"nat", "epc"});
  const auto profiles = chain.cost_profiles();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].name, "nat");
  EXPECT_EQ(profiles[1].name, "epc");
}

TEST(Chain, InlineProcessingDelivers) {
  ServiceChain chain("c0", {"firewall", "router"});
  Packet pkt;
  pkt.src_ip = 0xC0A80002;
  pkt.dst_ip = 0x0A010105;
  pkt.dst_port = 443;
  pkt.frame_bytes = 256;
  pkt.ttl = 64;
  EXPECT_TRUE(chain.process_inline(pkt));
  EXPECT_EQ(pkt.ttl, 63);  // router ran
}

TEST(Chain, InlineProcessingStopsAtDrop) {
  ServiceChain chain("c0", {"firewall", "router"});
  Packet pkt;
  pkt.dst_ip = 0x0A000001;  // firewall denies ssh to 10/8
  pkt.dst_port = 22;
  pkt.frame_bytes = 256;
  pkt.ttl = 64;
  EXPECT_FALSE(chain.process_inline(pkt));
  EXPECT_EQ(pkt.ttl, 64);  // router never saw it
  EXPECT_EQ(chain.total_nf_drops(), 1u);
}

TEST(Chain, BatchInlineCountsDeliveries) {
  ServiceChain chain("c0", {"firewall"});
  Packet good;
  good.dst_ip = 0xC0A80101;
  good.dst_port = 443;
  good.frame_bytes = 128;
  Packet bad;
  bad.dst_ip = 0x0A000001;
  bad.dst_port = 22;
  bad.frame_bytes = 128;
  Packet* batch[] = {&good, &bad};
  EXPECT_EQ(chain.process_batch_inline(std::span<Packet* const>(batch, 2)),
            1u);
}

TEST(Chain, ResetStatsClearsDrops) {
  ServiceChain chain("c0", {"firewall"});
  Packet bad;
  bad.dst_ip = 0x0A000001;
  bad.dst_port = 22;
  bad.frame_bytes = 128;
  (void)chain.process_inline(bad);
  EXPECT_GT(chain.total_nf_drops(), 0u);
  chain.reset_stats();
  EXPECT_EQ(chain.total_nf_drops(), 0u);
}

TEST(Chain, StandardChainsAreThreeNfs) {
  for (int variant = 0; variant < 3; ++variant) {
    const auto names = standard_chain_nfs(variant);
    EXPECT_EQ(names.size(), 3u);
    ServiceChain chain("v", names);
    EXPECT_EQ(chain.num_nfs(), 3u);
  }
}

TEST(Chain, RejectsEmptyNfList) {
  EXPECT_DEATH(ServiceChain("c0", {}), "empty NF list");
}

}  // namespace
}  // namespace greennfv::nfvsim
