#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/series.hpp"

/// Unit coverage for the columnar time-series sampler: fixed schema,
/// arena-backed growth, %.17g round-trips through both export formats,
/// and the global runtime gate.

namespace greennfv::telemetry {
namespace {

std::vector<std::string> abc() { return {"a", "b", "c"}; }

TEST(SeriesTable, GateIsOffByDefaultAndToggles) {
  EXPECT_FALSE(series::enabled());
  series::set_enabled(true);
  EXPECT_TRUE(series::enabled());
  series::set_enabled(false);
  EXPECT_FALSE(series::enabled());
}

TEST(SeriesTable, AppendAndReadBack) {
  SeriesTable table(abc());
  table.append_row({1.0, 2.0, 3.0});
  table.append_row({4.0, 5.0, 6.0});
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 3u);
  EXPECT_EQ(table.column_index("b"), 1u);
  EXPECT_TRUE(table.has_column("c"));
  EXPECT_FALSE(table.has_column("z"));
  EXPECT_DOUBLE_EQ(table.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.at(1, 2), 6.0);
}

TEST(SeriesTable, RejectsMalformedSchemasAndRows) {
  EXPECT_THROW(SeriesTable({}), std::invalid_argument);
  EXPECT_THROW(SeriesTable({"a", ""}), std::invalid_argument);
  SeriesTable table(abc());
  EXPECT_THROW(table.append_row({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)table.column_index("nope"), std::invalid_argument);
  table.append_row({1.0, 2.0, 3.0});
  EXPECT_THROW((void)table.at(1, 0), std::invalid_argument);
  EXPECT_THROW((void)table.at(0, 3), std::invalid_argument);
}

TEST(SeriesTable, GrowsPastInitialCapacityWithoutLosingRows) {
  // The arena block starts at 64 rows; 1000 appends cross several
  // doublings. Every value must survive the copies.
  SeriesTable table({"x", "y"});
  for (int i = 0; i < 1000; ++i) {
    table.append_row({static_cast<double>(i), static_cast<double>(i) * 0.5});
  }
  ASSERT_EQ(table.num_rows(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(table.at(static_cast<std::size_t>(i), 0),
                     static_cast<double>(i));
    EXPECT_DOUBLE_EQ(table.at(static_cast<std::size_t>(i), 1),
                     static_cast<double>(i) * 0.5);
  }
}

TEST(SeriesTable, JsonRoundTripIsBitExact) {
  SeriesTable table(abc());
  // Awkward doubles: %.17g must round-trip all of them exactly.
  table.append_row({0.1, 1.0 / 3.0, 1e-300});
  table.append_row({-0.0, 12345678.901234567, 2.2250738585072014e-308});
  const SeriesTable back = SeriesTable::from_json(table.to_json());
  EXPECT_EQ(back.columns(), table.columns());
  ASSERT_EQ(back.num_rows(), table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      EXPECT_EQ(back.at(r, c), table.at(r, c)) << r << "," << c;
    }
  }
  EXPECT_EQ(back.to_csv(), table.to_csv());
}

TEST(SeriesTable, CsvRoundTripIsBitExact) {
  SeriesTable table({"left", "right"});
  table.append_row({3.141592653589793, -1e22});
  table.append_row({0.30000000000000004, 7.0});
  const SeriesTable back = SeriesTable::from_csv(table.to_csv());
  EXPECT_EQ(back.columns(), table.columns());
  ASSERT_EQ(back.num_rows(), 2u);
  EXPECT_EQ(back.at(0, 0), table.at(0, 0));
  EXPECT_EQ(back.at(0, 1), table.at(0, 1));
  EXPECT_EQ(back.at(1, 0), table.at(1, 0));
  EXPECT_EQ(back.to_json().dump(), table.to_json().dump());
}

TEST(SeriesTable, FromJsonRejectsForeignDocuments) {
  EXPECT_THROW((void)SeriesTable::from_json(Json::parse("{}")),
               std::invalid_argument);
  EXPECT_THROW((void)SeriesTable::from_json(
                   Json::parse("{\"schema\":\"other.v1\"}")),
               std::invalid_argument);
}

TEST(SeriesTable, FromCsvRejectsRaggedRows) {
  EXPECT_THROW((void)SeriesTable::from_csv("a,b\n1,2,3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)SeriesTable::from_csv(""), std::invalid_argument);
}

}  // namespace
}  // namespace greennfv::telemetry
