#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

/// Counter-registry contract: disabled adds are no-ops, cross-thread adds
/// sum exactly, snapshots come out name-sorted, and reset zeroes values
/// while keeping names registered.

namespace greennfv::telemetry::metrics {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(MetricsTest, DisabledAddsAreDropped) {
  Counter& c = counter("test.disabled");
  c.add(42);
  EXPECT_EQ(c.value(), 0u);
  Gauge& g = gauge("test.disabled_gauge");
  g.set(3.5);
  EXPECT_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, SameNameReturnsSameCounter) {
  set_enabled(true);
  Counter& a = counter("test.alias");
  Counter& b = counter("test.alias");
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(&gauge("test.alias_gauge"), &gauge("test.alias_gauge"));
}

TEST_F(MetricsTest, CrossThreadAddsSumExactly) {
  set_enabled(true);
  Counter& c = counter("test.cross_thread");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(MetricsTest, SnapshotIsNameSortedAndLooksUpWithFallback) {
  set_enabled(true);
  counter("test.zebra").add(2);
  counter("test.apple").add(1);
  gauge("test.mango").set(9.0);
  const Snapshot snap = snapshot();
  ASSERT_GE(snap.entries.size(), 3u);
  for (std::size_t i = 1; i < snap.entries.size(); ++i)
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  EXPECT_EQ(snap.value("test.zebra"), 2.0);
  EXPECT_EQ(snap.value("test.apple"), 1.0);
  EXPECT_EQ(snap.value("test.mango"), 9.0);
  EXPECT_EQ(snap.value("test.never_registered", -1.0), -1.0);
}

TEST_F(MetricsTest, ResetZeroesButKeepsNames) {
  set_enabled(true);
  counter("test.resettable").add(5);
  gauge("test.resettable_gauge").set(5.0);
  reset();
  EXPECT_EQ(counter("test.resettable").value(), 0u);
  EXPECT_EQ(gauge("test.resettable_gauge").value(), 0.0);
  // Still registered: snapshot lists it at zero rather than omitting it.
  bool found = false;
  for (const Snapshot::Entry& entry : snapshot().entries)
    if (entry.name == "test.resettable") found = true;
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, TableAndJsonCarryTheValues) {
  set_enabled(true);
  counter("test.rendered").add(11);
  EXPECT_NE(table().find("test.rendered"), std::string::npos);
  const Json json = to_json();
  ASSERT_TRUE(json.has("test.rendered"));
  EXPECT_EQ(json.at("test.rendered").as_double(), 11.0);
}

}  // namespace
}  // namespace greennfv::telemetry::metrics
