#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

/// Flight-recorder ring contract: disabled spans record nothing, rings
/// wrap by dropping the *oldest* events (checked against a plain-vector
/// oracle under fuzz), mark/extract brackets exactly the calling thread's
/// slice, cross-thread flush reaches every buffer, and the Perfetto JSON
/// export is schema-valid.

namespace greennfv::telemetry::trace {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(false);
    metrics::reset();
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    set_thread_capacity(65536);
    reset();
    metrics::set_enabled(false);
    metrics::reset();
  }

  /// Skips span-recording tests when the tracer is compiled out
  /// (GREENNFV_TRACING=OFF builds still run the rest of the suite).
  static bool tracer_available() {
    set_enabled(true);
    const bool ok = active();
    if (!ok) set_enabled(false);
    return ok;
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    GNFV_TRACE_SPAN("test/disabled");
    const Span explicit_span("test/disabled_explicit");
  }
  EXPECT_EQ(recorded(), 0u);
  EXPECT_EQ(dropped(), 0u);
}

TEST_F(TraceTest, SpansCloseInnermostFirst) {
  if (!tracer_available()) GTEST_SKIP() << "tracer compiled out";
  const Mark start = mark();
  {
    GNFV_TRACE_SPAN("test/outer");
    { GNFV_TRACE_SPAN("test/inner", std::uint64_t{7}); }
  }
  const std::vector<TraceEvent> events = events_since(start);
  ASSERT_EQ(events.size(), 2u);
  // Events append at span *close*: the nested span lands first, but its
  // interval nests inside the parent's.
  EXPECT_STREQ(events[0].name, "test/inner");
  EXPECT_TRUE(events[0].has_arg);
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_STREQ(events[1].name, "test/outer");
  EXPECT_LE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_GE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);
}

TEST_F(TraceTest, TimerCounterAccumulatesEvenWithTracingOff) {
  // The phase-breakdown contract benches rely on: an explicit Span with
  // an attached timer feeds the metrics registry whenever metrics are
  // enabled — including builds where the tracer is compiled out.
  metrics::set_enabled(true);
  metrics::Counter& timer = metrics::counter("test.span_timer_ns");
  {
    const Span span("test/timed", &timer);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_GT(timer.value(), 0u);
  EXPECT_EQ(recorded(), 0u);  // tracing itself stayed off
}

TEST_F(TraceTest, MarkBracketsExactlyTheSliceSinceIt) {
  if (!tracer_available()) GTEST_SKIP() << "tracer compiled out";
  { GNFV_TRACE_SPAN("test/before"); }
  const Mark m = mark();
  { GNFV_TRACE_SPAN("test/slice_a"); }
  { GNFV_TRACE_SPAN("test/slice_b"); }
  const std::vector<TraceEvent> slice = events_since(m);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_STREQ(slice[0].name, "test/slice_a");
  EXPECT_STREQ(slice[1].name, "test/slice_b");
}

TEST_F(TraceTest, InternedNamesAreStableAndDeduplicated) {
  const std::string dynamic = "test/run:" + std::to_string(12);
  const char* a = intern(dynamic);
  const char* b = intern(dynamic);
  EXPECT_EQ(a, b);
  EXPECT_EQ(dynamic, a);
}

TEST_F(TraceTest, WraparoundKeepsNewestAndCountsDropped) {
  if (!tracer_available()) GTEST_SKIP() << "tracer compiled out";
  constexpr std::size_t kCapacity = 32;
  constexpr std::uint64_t kSpans = 100;
  set_thread_capacity(kCapacity);
  std::vector<TraceEvent> kept;
  // A fresh thread gets a fresh ring at the reduced capacity (the test
  // thread's buffer was already created at the default size).
  std::thread recorder([&kept] {
    const Mark start = mark();
    for (std::uint64_t i = 0; i < kSpans; ++i) {
      GNFV_TRACE_SPAN("test/wrap", i);
    }
    kept = events_since(start);
  });
  recorder.join();
  ASSERT_EQ(kept.size(), kCapacity);
  EXPECT_EQ(dropped(), kSpans - kCapacity);
  // The ring keeps the newest events, oldest-first.
  for (std::size_t i = 0; i < kept.size(); ++i)
    EXPECT_EQ(kept[i].arg, kSpans - kCapacity + i);
}

TEST_F(TraceTest, FuzzedRingMatchesVectorOracle) {
  if (!tracer_available()) GTEST_SKIP() << "tracer compiled out";
  constexpr std::size_t kCapacity = 64;
  set_thread_capacity(kCapacity);
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 10; ++round) {
    const std::size_t spans = 1 + rng() % 300;
    std::vector<std::pair<const char*, std::uint64_t>> oracle;
    std::vector<TraceEvent> kept;
    std::thread recorder([&] {
      const Mark start = mark();
      for (std::size_t i = 0; i < spans; ++i) {
        const char* name = (rng() % 2 == 0) ? "test/fuzz_a" : "test/fuzz_b";
        const auto arg = static_cast<std::uint64_t>(rng() % 1000);
        { Span span(name, arg); }
        oracle.emplace_back(name, arg);
      }
      kept = events_since(start);
    });
    recorder.join();
    // The ring must hold exactly the newest min(capacity, spans) events,
    // in record order, with monotone close timestamps.
    const std::size_t expect = std::min(kCapacity, spans);
    ASSERT_EQ(kept.size(), expect) << "round " << round;
    const std::size_t base = spans - expect;
    std::int64_t last_end = 0;
    for (std::size_t i = 0; i < expect; ++i) {
      EXPECT_STREQ(kept[i].name, oracle[base + i].first);
      EXPECT_EQ(kept[i].arg, oracle[base + i].second);
      EXPECT_GE(kept[i].ts_ns + kept[i].dur_ns, last_end);
      last_end = kept[i].ts_ns + kept[i].dur_ns;
    }
  }
}

TEST_F(TraceTest, ExportCoversEveryThreadAndValidatesAsPerfetto) {
  if (!tracer_available()) GTEST_SKIP() << "tracer compiled out";
  metrics::set_enabled(true);
  metrics::counter("test.export_counter").add(5);
  { GNFV_TRACE_SPAN("test/main_thread"); }
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i <= t; ++i) {
        GNFV_TRACE_SPAN("test/worker");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const Json doc = to_json();
  ASSERT_TRUE(doc.has("traceEvents"));
  ASSERT_TRUE(doc.has("displayTimeUnit"));
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_double(), 0.0);

  std::size_t spans = 0;
  std::size_t counter_samples = 0;
  std::vector<int> tids;
  for (const Json& event : doc.at("traceEvents").elements()) {
    for (const char* key : {"ph", "ts", "pid", "tid", "name"})
      ASSERT_TRUE(event.has(key)) << "missing " << key;
    const std::string ph = event.at("ph").as_string();
    EXPECT_GE(event.at("ts").as_double(), 0.0);
    if (ph == "C") {
      ++counter_samples;
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_GE(event.at("dur").as_double(), 0.0);
    tids.push_back(static_cast<int>(event.at("tid").as_double()));
    ++spans;
  }
  // 1 main-thread span + 1+2+3 worker spans, one "C" sample per metric.
  EXPECT_EQ(spans, 7u);
  EXPECT_GE(counter_samples, 1u);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), 4u);  // main + 3 workers, distinct tids
}

}  // namespace
}  // namespace greennfv::telemetry::trace
