#include <gtest/gtest.h>

#include <string>

#include "campaign/runner.hpp"
#include "common/string_util.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/presets.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

/// The flight recorder's hard contract: simulation output is byte-
/// identical with the recorder on vs off. Spans and counters read the
/// clock and bump shards, but nothing they record may feed back into any
/// model — pinned here on a full fleet-smoke timeline and on a parallel
/// campaign's artifacts.

namespace greennfv::telemetry {
namespace {

class TraceDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm(); }
  void TearDown() override { disarm(); }
  static void disarm() {
    trace::set_enabled(false);
    trace::reset();
    metrics::set_enabled(false);
    metrics::reset();
  }
};

TEST_F(TraceDeterminismTest, FleetTimelineIdenticalTracedVsUntraced) {
  const scenario::ScenarioSpec spec = scenario::preset("fleet-smoke");

  const orchestrator::FleetOrchestrator plain(spec);
  const std::string untraced =
      orchestrator::timeline_to_text(plain.timeline(), spec.num_nodes);

  trace::set_enabled(true);
  metrics::set_enabled(true);
  const orchestrator::FleetOrchestrator recorded(spec);
  const std::string traced =
      orchestrator::timeline_to_text(recorded.timeline(), spec.num_nodes);

  EXPECT_EQ(untraced, traced);
  if (trace::active()) {
    EXPECT_GT(trace::recorded(), 0u);
  }
  EXPECT_GT(metrics::counter("fleet.arrivals").value(), 0u);
}

/// Byte-exact serialization of a campaign report (raw IEEE-754 bits of
/// every result and telemetry sample) — the same artifact text the
/// jobs-count determinism test pins.
std::string artifacts_text(const campaign::CampaignReport& report) {
  std::string out;
  for (const campaign::RunResult& run : report.runs) {
    out += run.run_id + "\n";
    for (const scenario::ModelReport& model : run.report.models) {
      const core::EvalResult& r = model.result;
      out += model.prefix + " " + r.scheduler;
      for (const double v :
           {r.mean_gbps, r.mean_energy_j, r.mean_power_w, r.mean_efficiency,
            r.sla_satisfaction, r.drop_fraction}) {
        // Appended piecewise (GCC-12 -Wrestrict false positive on
        // "s" + std::string&&).
        out += ' ';
        out += orchestrator::double_bits(v);
      }
      out += "\n";
    }
    for (const std::string& name : run.report.series.series_names()) {
      const TimeSeries& series = run.report.series.series(name);
      out += name;
      for (std::size_t i = 0; i < series.size(); ++i) {
        out += ' ';
        out += orchestrator::double_bits(series.times()[i]);
        out += ':';
        out += orchestrator::double_bits(series.values()[i]);
      }
      out += "\n";
    }
  }
  return out;
}

TEST_F(TraceDeterminismTest, CampaignArtifactsIdenticalTracedVsUntraced) {
  campaign::CampaignSpec spec;
  spec.name = "trace-determinism";
  spec.scenarios = {"fleet-smoke"};
  spec.models = "baseline";
  spec.seeds = {1, 2};
  Config overrides;
  overrides.set("sweep.fleet.policy", "first-fit,consolidate");
  overrides.set("fleet.horizon", "6");
  spec.apply(overrides);

  campaign::CampaignRunner untraced_runner(spec);
  const campaign::CampaignReport untraced = untraced_runner.run(/*jobs=*/4);

  trace::set_enabled(true);
  metrics::set_enabled(true);
  campaign::CampaignRunner traced_runner(spec);
  const campaign::CampaignReport traced = traced_runner.run(/*jobs=*/4);

  EXPECT_EQ(untraced.executed, 4);
  EXPECT_EQ(traced.executed, 4);
  EXPECT_EQ(artifacts_text(untraced), artifacts_text(traced));
}

}  // namespace
}  // namespace greennfv::telemetry
