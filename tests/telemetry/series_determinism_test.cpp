#include <gtest/gtest.h>

#include <map>
#include <string>

#include "campaign/runner.hpp"
#include "common/string_util.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/fleet_series.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/presets.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/series.hpp"
#include "telemetry/trace.hpp"

/// The health-series sampler's hard contract, mirroring the flight
/// recorder's: simulation output is byte-identical with sampling on or
/// off. The sampler reads window aggregates the engines already computed
/// and writes them into a side table nothing else reads — pinned here on
/// fleet timelines (including the fault path), on campaign artifacts,
/// and on the jobs-count invariance of the series bytes themselves.

namespace greennfv::telemetry {
namespace {

class SeriesDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm(); }
  void TearDown() override { disarm(); }
  static void disarm() {
    series::set_enabled(false);
    trace::set_enabled(false);
    trace::reset();
    metrics::set_enabled(false);
    metrics::reset();
  }
};

TEST_F(SeriesDeterminismTest, FleetTimelineIdenticalSampledVsUnsampled) {
  for (const char* preset : {"fleet-smoke", "fault-smoke"}) {
    SCOPED_TRACE(preset);
    const scenario::ScenarioSpec spec = scenario::preset(preset);

    const orchestrator::FleetOrchestrator plain(spec);
    const std::string unsampled =
        orchestrator::timeline_to_text(plain.timeline(), spec.num_nodes);
    EXPECT_EQ(plain.timeline().series, nullptr)
        << "sampler must stay inert while the gate is off";

    series::set_enabled(true);
    const orchestrator::FleetOrchestrator recorded(spec);
    series::set_enabled(false);
    const std::string sampled =
        orchestrator::timeline_to_text(recorded.timeline(), spec.num_nodes);

    EXPECT_EQ(unsampled, sampled);
    ASSERT_NE(recorded.timeline().series, nullptr);
    EXPECT_EQ(recorded.timeline().series->num_rows(),
              recorded.timeline().windows.size());
    EXPECT_EQ(recorded.timeline().series->columns(),
              orchestrator::fleet_series_columns());
  }
}

/// Byte-exact serialization of a campaign report (raw IEEE-754 bits of
/// every result and telemetry sample) — the same artifact text the
/// trace-determinism and jobs-count tests pin.
std::string artifacts_text(const campaign::CampaignReport& report) {
  std::string out;
  for (const campaign::RunResult& run : report.runs) {
    out += run.run_id + "\n";
    for (const scenario::ModelReport& model : run.report.models) {
      const core::EvalResult& r = model.result;
      out += model.prefix + " " + r.scheduler;
      for (const double v :
           {r.mean_gbps, r.mean_energy_j, r.mean_power_w, r.mean_efficiency,
            r.sla_satisfaction, r.drop_fraction}) {
        // Appended piecewise (GCC-12 -Wrestrict false positive on
        // "s" + std::string&&).
        out += ' ';
        out += orchestrator::double_bits(v);
      }
      out += "\n";
    }
    for (const std::string& name : run.report.series.series_names()) {
      const TimeSeries& series = run.report.series.series(name);
      out += name;
      for (std::size_t i = 0; i < series.size(); ++i) {
        out += ' ';
        out += orchestrator::double_bits(series.times()[i]);
        out += ':';
        out += orchestrator::double_bits(series.values()[i]);
      }
      out += "\n";
    }
  }
  return out;
}

campaign::CampaignSpec fleet_campaign(const std::string& name) {
  campaign::CampaignSpec spec;
  spec.name = name;
  spec.scenarios = {"fault-smoke"};
  spec.models = "baseline";
  spec.seeds = {1, 2};
  Config overrides;
  overrides.set("sweep.fleet.policy", "first-fit,energy-bestfit");
  spec.apply(overrides);
  return spec;
}

TEST_F(SeriesDeterminismTest, CampaignArtifactsIdenticalSampledVsUnsampled) {
  const campaign::CampaignSpec spec = fleet_campaign("series-determinism");

  campaign::CampaignRunner unsampled_runner(spec);
  const campaign::CampaignReport unsampled = unsampled_runner.run(/*jobs=*/4);

  series::set_enabled(true);
  campaign::CampaignRunner sampled_runner(spec);
  const campaign::CampaignReport sampled = sampled_runner.run(/*jobs=*/4);

  EXPECT_EQ(unsampled.executed, 4);
  EXPECT_EQ(sampled.executed, 4);
  EXPECT_EQ(artifacts_text(unsampled), artifacts_text(sampled));
  for (const campaign::RunResult& run : sampled.runs) {
    EXPECT_NE(run.fleet_series, nullptr) << run.run_id;
  }
  for (const campaign::RunResult& run : unsampled.runs) {
    EXPECT_EQ(run.fleet_series, nullptr) << run.run_id;
  }
}

TEST_F(SeriesDeterminismTest, SeriesBytesInvariantUnderJobsCount) {
  // The series rides the same work-stealing execution as the runs
  // themselves, so its bytes must not depend on scheduling either.
  const campaign::CampaignSpec spec = fleet_campaign("series-jobs");

  series::set_enabled(true);
  campaign::CampaignRunner serial_runner(spec);
  const campaign::CampaignReport serial = serial_runner.run(/*jobs=*/1);
  campaign::CampaignRunner parallel_runner(spec);
  const campaign::CampaignReport parallel = parallel_runner.run(/*jobs=*/4);

  std::map<std::string, std::string> serial_series;
  for (const campaign::RunResult& run : serial.runs) {
    ASSERT_NE(run.fleet_series, nullptr) << run.run_id;
    serial_series[run.run_id] = run.fleet_series->to_csv();
  }
  ASSERT_EQ(serial_series.size(), 4u);
  for (const campaign::RunResult& run : parallel.runs) {
    ASSERT_NE(run.fleet_series, nullptr) << run.run_id;
    ASSERT_TRUE(serial_series.count(run.run_id)) << run.run_id;
    EXPECT_EQ(serial_series[run.run_id], run.fleet_series->to_csv())
        << run.run_id;
  }
}

}  // namespace
}  // namespace greennfv::telemetry
