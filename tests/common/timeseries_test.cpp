#include "common/timeseries.hpp"

#include <gtest/gtest.h>

namespace greennfv {
namespace {

TimeSeries ramp(int n) {
  TimeSeries ts("ramp");
  for (int i = 0; i < n; ++i) ts.push(i, 2.0 * i);
  return ts;
}

TEST(TimeSeries, BasicStats) {
  const TimeSeries ts = ramp(5);  // values 0,2,4,6,8
  EXPECT_EQ(ts.size(), 5u);
  EXPECT_DOUBLE_EQ(ts.front(), 0.0);
  EXPECT_DOUBLE_EQ(ts.back(), 8.0);
  EXPECT_DOUBLE_EQ(ts.min(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max(), 8.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 4.0);
}

TEST(TimeSeries, TailMean) {
  const TimeSeries ts = ramp(10);
  EXPECT_DOUBLE_EQ(ts.tail_mean(2), (16.0 + 18.0) / 2.0);
  EXPECT_DOUBLE_EQ(ts.tail_mean(100), ts.mean());
}

TEST(TimeSeries, InterpolateInside) {
  TimeSeries ts("t");
  ts.push(0.0, 10.0);
  ts.push(10.0, 30.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(5.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(-1.0), 10.0);  // clamped
  EXPECT_DOUBLE_EQ(ts.interpolate(99.0), 30.0);  // clamped
}

TEST(TimeSeries, DownsampleShrinksAndPreservesMean) {
  const TimeSeries ts = ramp(1000);
  const TimeSeries small = ts.downsample(10);
  EXPECT_EQ(small.size(), 10u);
  EXPECT_NEAR(small.mean(), ts.mean(), 1e-9);
  EXPECT_EQ(small.name(), "ramp");
}

TEST(TimeSeries, DownsampleNoOpWhenSmall) {
  const TimeSeries ts = ramp(5);
  const TimeSeries same = ts.downsample(10);
  EXPECT_EQ(same.size(), 5u);
}

class DownsampleSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DownsampleSizes, ExactBucketCount) {
  const TimeSeries ts = ramp(997);  // prime length stresses bucketing
  const auto k = GetParam();
  const TimeSeries d = ts.downsample(k);
  EXPECT_EQ(d.size(), std::min<std::size_t>(k, 997));
  // Bucketed means must stay within the original range.
  EXPECT_GE(d.min(), ts.min());
  EXPECT_LE(d.max(), ts.max());
}

INSTANTIATE_TEST_SUITE_P(Sizes, DownsampleSizes,
                         ::testing::Values(1, 2, 3, 10, 100, 996, 997, 2000));

}  // namespace
}  // namespace greennfv
