#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace greennfv {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
  for (const auto v : seen) EXPECT_LT(v, 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo = hit_lo || v == -2;
    hit_hi = hit_hi || v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(12);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanMatches) {
  const double mean = GetParam();
  Rng rng(15);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.poisson(mean));
  // Poisson SE = sqrt(mean/n); allow 5 sigma.
  const double tolerance = 5.0 * std::sqrt(mean / n) + 1e-6;
  EXPECT_NEAR(sum / n, mean, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.1, 1.0, 8.0, 50.0, 200.0,
                                           5000.0));

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(18);
  Rng child = parent.split();
  // Correlation of paired uniforms should be near zero.
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_y = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = parent.uniform();
    const double y = child.uniform();
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
  }
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  EXPECT_NEAR(cov, 0.0, 0.005);
}

}  // namespace
}  // namespace greennfv
