#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/arena.hpp"
#include "common/bucket_queue.hpp"
#include "common/rng.hpp"

/// BucketQueue contract — the occupancy runqueue the placement policies
/// query instead of scanning the roster. The property test drives a
/// randomized insert/erase/move churn against a naive oracle
/// (map<level, set<id>>) and checks every query the policies rely on —
/// min_id, min_id_in_range, lowest/highest_nonempty, per-level sizes —
/// after every single mutation, so any bucket-index corruption is caught
/// at the op that introduced it.

namespace greennfv {
namespace {

using Oracle = std::map<std::size_t, std::set<int>>;

void expect_queries_match(const BucketQueue& queue, const Oracle& oracle,
                          std::size_t num_levels) {
  std::size_t total = 0;
  for (std::size_t level = 0; level < num_levels; ++level) {
    const auto it = oracle.find(level);
    const std::set<int> empty;
    const std::set<int>& ids = it == oracle.end() ? empty : it->second;
    total += ids.size();
    ASSERT_EQ(queue.size(level), ids.size()) << "level " << level;
    ASSERT_EQ(queue.empty(level), ids.empty()) << "level " << level;
    ASSERT_EQ(queue.min_id(level), ids.empty() ? -1 : *ids.begin())
        << "level " << level;
    // In-bucket iteration must be ordered (the consolidation planner
    // walks buckets and relies on ascending ids).
    std::vector<int> got(queue.at(level).begin(), queue.at(level).end());
    std::vector<int> want(ids.begin(), ids.end());
    ASSERT_EQ(got, want) << "level " << level;
  }
  ASSERT_EQ(queue.size(), total);

  // Range queries over a sample of [lo, hi] windows, including clamped
  // and inverted ones.
  for (std::size_t lo = 0; lo < num_levels + 2; ++lo) {
    for (std::size_t hi = lo; hi < num_levels + 2; ++hi) {
      int min_id = -1;
      int lowest = -1;
      int highest = -1;
      for (std::size_t level = lo; level <= hi && level < num_levels;
           ++level) {
        const auto it = oracle.find(level);
        if (it == oracle.end() || it->second.empty()) continue;
        if (lowest < 0) lowest = static_cast<int>(level);
        highest = static_cast<int>(level);
        const int id = *it->second.begin();
        if (min_id < 0 || id < min_id) min_id = id;
      }
      ASSERT_EQ(queue.min_id_in_range(lo, hi), min_id)
          << "[" << lo << "," << hi << "]";
      ASSERT_EQ(queue.lowest_nonempty(lo, hi), lowest)
          << "[" << lo << "," << hi << "]";
      ASSERT_EQ(queue.highest_nonempty(lo, hi), highest)
          << "[" << lo << "," << hi << "]";
    }
  }
}

TEST(BucketQueue, EmptyQueueAnswersEveryQueryWithMinusOne) {
  Arena arena;
  BucketQueue queue(5, &arena);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.min_id(0), -1);
  EXPECT_EQ(queue.min_id_in_range(0, 4), -1);
  EXPECT_EQ(queue.lowest_nonempty(0, 4), -1);
  EXPECT_EQ(queue.highest_nonempty(0, 4), -1);
  EXPECT_EQ(queue.highest_nonempty(0, 100), -1);  // clamped hi
}

TEST(BucketQueue, RandomizedChurnMatchesOracleAfterEveryMutation) {
  constexpr std::size_t kLevels = 16;
  constexpr int kIds = 48;
  Rng rng(0xB0C4E7ull);
  Arena arena;
  BucketQueue queue(kLevels, &arena);
  Oracle oracle;
  // id -> level when present
  std::map<int, std::size_t> where;

  for (int op = 0; op < 3000; ++op) {
    const int id = static_cast<int>(rng.next_u64() % kIds);
    const auto placed = where.find(id);
    if (placed == where.end()) {
      const auto level = static_cast<std::size_t>(rng.next_u64() % kLevels);
      queue.insert(level, id);
      oracle[level].insert(id);
      where[id] = level;
    } else if (rng.next_u64() % 2 == 0) {
      queue.erase(placed->second, id);
      oracle[placed->second].erase(id);
      where.erase(placed);
    } else {
      const auto to = static_cast<std::size_t>(rng.next_u64() % kLevels);
      queue.move(placed->second, to, id);
      oracle[placed->second].erase(id);
      oracle[to].insert(id);
      placed->second = to;
    }
    expect_queries_match(queue, oracle, kLevels);
  }
}

TEST(BucketQueue, SetNodesRecycleThroughTheArena) {
  // The whole point of arena-backing the runqueues: steady-state churn
  // (insert/erase cycles) must reuse freed set nodes, not grow memory.
  Arena arena;
  BucketQueue queue(4, &arena);
  for (int i = 0; i < 64; ++i) queue.insert(0, i);
  for (int i = 0; i < 64; ++i) queue.erase(0, i);
  const std::size_t reserved = arena.reserved_bytes();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i) queue.insert(1, i);
    for (int i = 0; i < 64; ++i) queue.erase(1, i);
  }
  EXPECT_EQ(arena.reserved_bytes(), reserved)
      << "churn after warm-up must not reserve new memory";
  EXPECT_GT(arena.reuse_count(), 0u);
}

}  // namespace
}  // namespace greennfv
