#include "common/math_util.hpp"

#include <gtest/gtest.h>

namespace greennfv::math_util {
namespace {

TEST(MathUtil, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtil, LerpEndpoints) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(MathUtil, RemapClampsOutside) {
  EXPECT_DOUBLE_EQ(remap(15.0, 0.0, 10.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(remap(-5.0, 0.0, 10.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(remap(5.0, 0.0, 10.0, -1.0, 1.0), 0.0);
}

TEST(MathUtil, SigmoidSymmetry) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(3.0) + sigmoid(-3.0), 1.0, 1e-12);
}

TEST(MathUtil, SoftplusLimits) {
  EXPECT_NEAR(softplus(-40.0), 0.0, 1e-12);
  EXPECT_NEAR(softplus(40.0), 40.0, 1e-9);
  EXPECT_NEAR(softplus(0.0), std::log(2.0), 1e-12);
}

class SaturatingCurve : public ::testing::TestWithParam<double> {};

TEST_P(SaturatingCurve, MonotoneAndBounded) {
  const double k = GetParam();
  double prev = -1.0;
  for (double x = 0.0; x <= 100.0; x += 0.5) {
    const double y = saturating(x, k);
    EXPECT_GE(y, 0.0);
    EXPECT_LT(y, 1.0);
    EXPECT_GE(y, prev);  // monotone non-decreasing
    prev = y;
  }
  // Half-saturation property: f(k) = 0.5.
  EXPECT_NEAR(saturating(k, k), 0.5, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(HalfPoints, SaturatingCurve,
                         ::testing::Values(0.1, 1.0, 4.0, 25.0));

TEST(MathUtil, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
}

TEST(MathUtil, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(11.0, 10.0), 0.1);
  EXPECT_GT(rel_diff(1.0, 0.0), 1e9);  // guarded by eps
}

}  // namespace
}  // namespace greennfv::math_util
