#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/event_heap.hpp"
#include "common/rng.hpp"

/// EventHeap contract — the discrete-event engine's ordering guarantees:
/// pops come out sorted by (time, phase), equal keys pop FIFO (the seq
/// stamp), and arbitrary randomized push/pop interleavings agree with a
/// naive stable-sorted-vector oracle. The FIFO stability is load-bearing
/// for the fleet engine's bit-identity (same-window departures must pop
/// in push order), so it gets its own dedicated case.

namespace greennfv {
namespace {

struct Tagged {
  int value = 0;
};

TEST(EventHeap, PopsInTimeThenPhaseOrder) {
  EventHeap<int, Tagged> heap;
  heap.push(3, 1, {0});
  heap.push(1, 2, {1});
  heap.push(1, 0, {2});
  heap.push(2, 0, {3});
  heap.push(3, 0, {4});

  std::vector<std::pair<int, int>> keys;
  while (!heap.empty()) {
    const auto entry = heap.pop();
    keys.emplace_back(entry.time, entry.phase);
  }
  const std::vector<std::pair<int, int>> expected = {
      {1, 0}, {1, 2}, {2, 0}, {3, 0}, {3, 1}};
  EXPECT_EQ(keys, expected);
}

TEST(EventHeap, EqualKeysPopInPushOrder) {
  // 64 events on one (time, phase) key, pushed with increasing tags and
  // interleaved with other keys: the tags must come back 0,1,2,... —
  // binary heaps are not inherently stable, the seq stamp makes this one.
  EventHeap<int, Tagged> heap;
  for (int i = 0; i < 64; ++i) {
    heap.push(7, 1, {i});
    heap.push(9, 0, {1000 + i});
    heap.push(7, 0, {2000 + i});
  }
  // Drain phase 0 of time 7 first (also FIFO), then the probed key.
  for (int i = 0; i < 64; ++i) {
    const auto entry = heap.pop();
    ASSERT_EQ(entry.time, 7);
    ASSERT_EQ(entry.phase, 0);
    ASSERT_EQ(entry.payload.value, 2000 + i);
  }
  for (int i = 0; i < 64; ++i) {
    const auto entry = heap.pop();
    ASSERT_EQ(entry.time, 7);
    ASSERT_EQ(entry.phase, 1);
    ASSERT_EQ(entry.payload.value, i) << "FIFO stability violated";
  }
  EXPECT_EQ(heap.size(), 64u);
}

TEST(EventHeap, RandomizedInterleavingsMatchSortedVectorOracle) {
  // Property test: any sequence of pushes and pops agrees with a stable
  // sort over (time, phase, push index). Pops interleave with pushes so
  // sift_down paths after partial drains are exercised too.
  Rng rng(0xE4E47ull);
  for (int round = 0; round < 50; ++round) {
    EventHeap<int, Tagged> heap;
    struct OracleEntry {
      int time;
      int phase;
      std::uint64_t seq;
      int value;
    };
    std::vector<OracleEntry> oracle;  // pending (not yet popped) events
    std::vector<int> popped;
    std::vector<int> expected;
    std::uint64_t seq = 0;

    const int ops = 200 + static_cast<int>(rng.next_u64() % 300);
    for (int op = 0; op < ops; ++op) {
      const bool push = heap.empty() || (rng.next_u64() % 3) != 0;
      if (push) {
        const int time = static_cast<int>(rng.next_u64() % 20);
        const int phase = static_cast<int>(rng.next_u64() % 4);
        const int value = static_cast<int>(seq);
        heap.push(time, phase, {value});
        oracle.push_back({time, phase, seq++, value});
      } else {
        const auto min = std::min_element(
            oracle.begin(), oracle.end(),
            [](const OracleEntry& a, const OracleEntry& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.phase != b.phase) return a.phase < b.phase;
              return a.seq < b.seq;
            });
        expected.push_back(min->value);
        oracle.erase(min);
        popped.push_back(heap.pop().payload.value);
      }
      ASSERT_EQ(heap.size(), oracle.size());
    }
    // Drain the rest in oracle order.
    std::stable_sort(oracle.begin(), oracle.end(),
                     [](const OracleEntry& a, const OracleEntry& b) {
                       if (a.time != b.time) return a.time < b.time;
                       if (a.phase != b.phase) return a.phase < b.phase;
                       return a.seq < b.seq;
                     });
    for (const OracleEntry& entry : oracle) expected.push_back(entry.value);
    while (!heap.empty()) popped.push_back(heap.pop().payload.value);
    ASSERT_EQ(popped, expected) << "round " << round;
  }
}

TEST(EventHeap, TopMatchesNextPopAndClearEmpties) {
  EventHeap<int, Tagged> heap;
  heap.push(5, 0, {10});
  heap.push(2, 3, {11});
  EXPECT_EQ(heap.top().payload.value, 11);
  EXPECT_EQ(heap.pop().payload.value, 11);
  EXPECT_EQ(heap.top().payload.value, 10);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
}

}  // namespace
}  // namespace greennfv
