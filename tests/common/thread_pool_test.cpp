#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

/// ThreadPool contract: every submitted task runs exactly once, stealing
/// drains a blocked worker's queue, exceptions surface from wait(), and
/// parallel_for with jobs=1 stays on the calling thread (the serial
/// reference parallel campaigns are compared against).

namespace greennfv {
namespace {

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  ThreadPool::parallel_for(kCount, 8, [&hits](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, JobsOneRunsInlineInOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  ThreadPool::parallel_for(16, 1, [&order, caller](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no synchronization needed: same thread
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, StealingDrainsABlockedWorkersQueue) {
  // Two workers. The first task parks worker A until released; the
  // round-robin deal then piles half the fast tasks onto A's deque, so
  // the only way they can finish while A is parked is worker B stealing
  // them.
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  pool.submit([released] { released.wait(); });

  constexpr int kFast = 64;
  std::atomic<int> fast_done{0};
  for (int i = 0; i < kFast; ++i)
    pool.submit([&fast_done] { fast_done.fetch_add(1); });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (fast_done.load() < kFast &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(fast_done.load(), kFast)
      << "stealing failed: blocked worker's tasks never ran";

  release.set_value();
  pool.wait();
}

TEST(ThreadPool, WaitRethrowsTheFirstTaskException) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i)
    pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after a failure drain.
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  EXPECT_THROW(
      ThreadPool::parallel_for(32, 4,
                               [](std::size_t i) {
                                 if (i == 17)
                                   throw std::invalid_argument("bad cell");
                               }),
      std::invalid_argument);
}

TEST(ThreadPool, WaitWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(3);
  pool.wait();
  ThreadPool::parallel_for(0, 4, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace greennfv
