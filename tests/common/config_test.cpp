#include "common/config.hpp"

#include <gtest/gtest.h>

namespace greennfv {
namespace {

TEST(Config, ParsesArgs) {
  const char* argv[] = {"prog", "episodes=100", "seed=7", "verbose"};
  const Config c = Config::from_args(4, argv);
  EXPECT_EQ(c.get_int("episodes", 0), 100);
  EXPECT_EQ(c.get_int("seed", 0), 7);
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_FALSE(c.has("missing"));
}

TEST(Config, ParsesString) {
  const Config c = Config::from_string("a=1.5, b=x\tc=true\nd=0");
  EXPECT_DOUBLE_EQ(c.get_double("a", 0.0), 1.5);
  EXPECT_EQ(c.get_string("b", ""), "x");
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
}

TEST(Config, FallbacksApply) {
  const Config c = Config::from_string("");
  EXPECT_EQ(c.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(c.get_double("x", 2.5), 2.5);
  EXPECT_EQ(c.get_string("s", "dflt"), "dflt");
  EXPECT_TRUE(c.get_bool("b", true));
}

TEST(Config, LaterKeysOverride) {
  const Config c = Config::from_string("k=1 k=2");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

TEST(Config, ThrowsOnMalformedNumbers) {
  const Config c = Config::from_string("n=abc x=1.2.3 b=maybe");
  EXPECT_THROW((void)c.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)c.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW((void)c.get_bool("b", false), std::invalid_argument);
}

TEST(Config, CheckKnownAcceptsListedKeysAndPrefixes) {
  const Config c = Config::from_string("seed=7 flow0=udp flow12=tcp");
  EXPECT_NO_THROW(c.check_known({"seed"}, {"flow"}));
}

TEST(Config, CheckKnownThrowsNamingEveryUnknownKey) {
  const Config c = Config::from_string("sede=7 epizodes=3 windows=4");
  try {
    c.check_known({"seed", "episodes", "windows"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sede"), std::string::npos);
    EXPECT_NE(what.find("epizodes"), std::string::npos);
    EXPECT_EQ(what.find("windows"), std::string::npos);
  }
}

TEST(Config, CheckKnownPrefixRequiresSuffix) {
  // A bare prefix is not a key — "flow" alone is still a typo.
  const Config c = Config::from_string("flow=1");
  EXPECT_THROW(c.check_known({}, {"flow"}), std::invalid_argument);
}

TEST(Config, CheckKnownPrefixSuffixMustBeAnIndex) {
  // Prefixes name indexed families; a non-numeric suffix is a typo that
  // would otherwise be silently ignored ("flowz", "flow_rate").
  EXPECT_THROW(Config::from_string("flowz=3").check_known({}, {"flow"}),
               std::invalid_argument);
  EXPECT_THROW(
      Config::from_string("flow_rate=3").check_known({}, {"flow"}),
      std::invalid_argument);
  EXPECT_NO_THROW(
      Config::from_string("flow12=x").check_known({}, {"flow"}));
}

TEST(Config, WhitespaceTrimmed) {
  // Spaces separate tokens, so values must hug their '='; surrounding
  // whitespace and tabs around whole tokens are stripped.
  const Config c = Config::from_string(" \t key=value \n");
  EXPECT_EQ(c.get_string("key", ""), "value");
}

}  // namespace
}  // namespace greennfv
