#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"

/// Arena contract — pool allocation for the simulation hot path:
/// alignment is honored, freed blocks recycle through their size class
/// (same pointer comes back), randomized churn never corrupts live
/// blocks, and the ArenaAllocator adapter drives node containers
/// correctly (rebind, equality, churn reuse).

namespace greennfv {
namespace {

TEST(Arena, HonorsAlignment) {
  Arena arena;
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    for (int i = 0; i < 8; ++i) {
      void* p = arena.allocate(24, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align " << align;
    }
  }
}

TEST(Arena, RecyclesFreedBlocksWithinASizeClass) {
  Arena arena;
  void* a = arena.allocate(40, 8);
  arena.deallocate(a, 40, 8);
  // Same size class (16-byte steps): the freelist must hand `a` back.
  void* b = arena.allocate(33, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena.reuse_count(), 1u);
  // Different class: fresh memory.
  void* c = arena.allocate(128, 8);
  EXPECT_NE(a, c);
  EXPECT_EQ(arena.reuse_count(), 1u);
}

TEST(Arena, OversizedAllocationsGetTheirOwnChunk) {
  Arena arena(/*chunk_bytes=*/256);
  void* big = arena.allocate(4096, 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 4096);
  EXPECT_GE(arena.reserved_bytes(), 4096u);
  // The arena must still serve small blocks afterwards.
  void* small = arena.allocate(16, 8);
  ASSERT_NE(small, nullptr);
  std::memset(small, 0xCD, 16);
  EXPECT_EQ(*static_cast<unsigned char*>(big), 0xABu);
}

TEST(Arena, RandomizedChurnNeverCorruptsLiveBlocks) {
  // Property test: live blocks are filled with a pattern derived from
  // their id; any overlap between a fresh/recycled block and a live one
  // shows up as a pattern mismatch on release.
  Rng rng(0xA4E7Aull);
  Arena arena(/*chunk_bytes=*/1024);
  struct Block {
    void* ptr;
    std::size_t bytes;
    unsigned char tag;
  };
  std::vector<Block> live;
  unsigned char next_tag = 1;
  for (int op = 0; op < 4000; ++op) {
    if (live.empty() || rng.next_u64() % 2 == 0) {
      const std::size_t bytes = 1 + rng.next_u64() % 200;
      auto* p = static_cast<unsigned char*>(arena.allocate(bytes, 8));
      std::memset(p, next_tag, bytes);
      live.push_back({p, bytes, next_tag});
      next_tag = static_cast<unsigned char>(next_tag == 255 ? 1 : next_tag + 1);
    } else {
      const std::size_t pick = rng.next_u64() % live.size();
      const Block block = live[pick];
      const auto* p = static_cast<const unsigned char*>(block.ptr);
      for (std::size_t i = 0; i < block.bytes; ++i)
        ASSERT_EQ(p[i], block.tag) << "byte " << i << " of live block";
      arena.deallocate(block.ptr, block.bytes, 8);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  EXPECT_GT(arena.reuse_count(), 0u);
}

TEST(ArenaAllocator, DrivesNodeContainersAndRecyclesChurn) {
  Arena arena;
  std::set<int, std::less<int>, ArenaAllocator<int>> ids{
      ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 100; ++i) ids.insert(i);
  for (int i = 0; i < 100; ++i) ids.erase(i);
  const std::size_t reserved = arena.reserved_bytes();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) ids.insert(i);
    for (int i = 0; i < 100; ++i) ids.erase(i);
  }
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  EXPECT_GT(arena.reuse_count(), 0u);
}

TEST(ArenaAllocator, RebindsAndComparesByArena) {
  Arena a;
  Arena b;
  ArenaAllocator<int> ai(&a);
  ArenaAllocator<long> al(ai);  // converting (rebind) constructor
  EXPECT_EQ(al.arena(), &a);
  EXPECT_TRUE(ai == ArenaAllocator<double>(&a));
  EXPECT_TRUE(ai != ArenaAllocator<int>(&b));
}

}  // namespace
}  // namespace greennfv
