#include "common/string_util.hpp"

#include <gtest/gtest.h>

namespace greennfv {
namespace {

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(Split, BasicAndEmptyFields) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(RenderTable, AlignsColumns) {
  const std::string table =
      render_table({"name", "v"}, {{"a", "1"}, {"long_name", "22"}});
  // Header, separator, two rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);
  EXPECT_NE(table.find("long_name"), std::string::npos);
  EXPECT_NE(table.find("----"), std::string::npos);
}

TEST(RenderTable, RejectsWidthMismatch) {
  EXPECT_DEATH((void)render_table({"a", "b"}, {{"only_one"}}), "width");
}

}  // namespace
}  // namespace greennfv
