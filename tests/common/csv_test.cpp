#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace greennfv {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "/tmp/gnfv_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.append({1.0, 2.5});
    csv.append({3.0, -4.0});
    csv.flush();
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path_), "a,b\n1,2.5\n3,-4\n");
}

TEST_F(CsvTest, RejectsWidthMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_DEATH(csv.append({1.0}), "row width");
}

TEST_F(CsvTest, StringRowsEscaped) {
  {
    CsvWriter csv(path_, {"name", "note"});
    csv.append_strings({"plain", "has,comma"});
    csv.append_strings({"quote\"y", "line\nbreak"});
    csv.flush();
  }
  const std::string text = slurp(path_);
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"quote\"\"y\""), std::string::npos);
}

TEST(CsvEscape, PassthroughWhenClean) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterErrors, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace greennfv
