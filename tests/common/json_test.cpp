#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hpp"
#include "telemetry/recorder.hpp"

/// Json contract: dump() -> parse() preserves every finite double bit for
/// bit (campaign resume depends on it), objects keep insertion order,
/// malformed documents throw, and the telemetry recorder round-trips
/// through its JSON form exactly.

namespace greennfv {
namespace {

TEST(Json, ScalarKindsAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(2.5).as_double(), 2.5);
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_THROW((void)Json(2.5).as_string(), std::invalid_argument);
  EXPECT_THROW((void)Json("hi").as_double(), std::invalid_argument);
}

TEST(Json, DumpParseRoundTripPreservesDoublesExactly) {
  const double values[] = {1.0 / 3.0,
                           -0.0,
                           1e-300,
                           1e300,
                           3.141592653589793,
                           -123456.789012345678,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max()};
  Json array = Json::array();
  for (const double v : values) array.push_back(v);
  const Json parsed = Json::parse(array.dump());
  ASSERT_EQ(parsed.size(), std::size(values));
  for (std::size_t i = 0; i < std::size(values); ++i) {
    const double back = parsed.at(i).as_double();
    // Bit-identical, not just approximately equal.
    EXPECT_EQ(back, values[i]);
    EXPECT_EQ(std::signbit(back), std::signbit(values[i]));
  }
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites) {
  Json object = Json::object();
  object.set("zebra", 1);
  object.set("alpha", 2);
  object.set("mid", 3);
  object.set("zebra", 4);  // overwrite keeps the original position
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object.members()[0].first, "zebra");
  EXPECT_EQ(object.members()[1].first, "alpha");
  EXPECT_EQ(object.members()[2].first, "mid");
  EXPECT_DOUBLE_EQ(object.at("zebra").as_double(), 4.0);
  EXPECT_TRUE(object.has("alpha"));
  EXPECT_FALSE(object.has("beta"));
  EXPECT_THROW((void)object.at("beta"), std::invalid_argument);
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g/h";
  Json object = Json::object();
  object.set(nasty, nasty);
  const Json parsed = Json::parse(object.dump(2));
  EXPECT_EQ(parsed.members()[0].first, nasty);
  EXPECT_EQ(parsed.at(nasty).as_string(), nasty);
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, NestedStructuresSurviveCompactAndPrettyDump) {
  Json inner = Json::object();
  inner.set("list", Json::array());
  Json root = Json::object();
  root.set("empty_obj", Json::object());
  root.set("nested", std::move(inner));
  Json runs = Json::array();
  runs.push_back(Json());
  runs.push_back(false);
  root.set("runs", std::move(runs));
  for (const int indent : {0, 1, 4}) {
    const Json parsed = Json::parse(root.dump(indent));
    EXPECT_EQ(parsed.at("empty_obj").size(), 0u);
    EXPECT_EQ(parsed.at("nested").at("list").size(), 0u);
    EXPECT_TRUE(parsed.at("runs").at(0).is_null());
    EXPECT_FALSE(parsed.at("runs").at(1).as_bool());
  }
}

TEST(Json, MalformedDocumentsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
        "[1] trailing", "{'single': 1}", "{\"a\":1,}"}) {
    EXPECT_THROW((void)Json::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(Json, NonFiniteNumbersEmitNull) {
  Json array = Json::array();
  array.push_back(std::numeric_limits<double>::infinity());
  array.push_back(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(array.dump(), "[null,null]");
}

TEST(RecorderJson, RoundTripIsExactAndCarriesSummaries) {
  telemetry::Recorder recorder;
  const double samples[] = {0.1, -3.7, 1.0 / 3.0, 42.0, 1e-9};
  for (std::size_t i = 0; i < std::size(samples); ++i) {
    recorder.record("throughput_gbps", static_cast<double>(i), samples[i]);
    recorder.record("energy_j", 10.0 * static_cast<double>(i),
                    samples[i] * 7.0);
  }

  const Json json = recorder.to_json();
  const telemetry::Recorder restored =
      telemetry::Recorder::from_json(Json::parse(json.dump(1)));

  ASSERT_EQ(restored.num_series(), recorder.num_series());
  for (const std::string& name : recorder.series_names()) {
    const TimeSeries& a = recorder.series(name);
    const TimeSeries& b = restored.series(name);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.times()[i], b.times()[i]);
      EXPECT_EQ(a.values()[i], b.values()[i]);
    }
    // The summary block matches the stats recomputed from the restored
    // series.
    const Json& summary = json.at("series").at(name).at("summary");
    EXPECT_EQ(summary.at("count").as_double(),
              static_cast<double>(b.size()));
    EXPECT_EQ(summary.at("min").as_double(), b.min());
    EXPECT_EQ(summary.at("mean").as_double(), b.mean());
    EXPECT_EQ(summary.at("max").as_double(), b.max());
    EXPECT_EQ(summary.at("last").as_double(), b.back());
  }
}

TEST(RecorderJson, MismatchedSeriesLengthsThrow) {
  const Json bad = Json::parse(
      R"({"series":{"x":{"t":[1,2],"v":[1]}}})");
  EXPECT_THROW((void)telemetry::Recorder::from_json(bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace greennfv
