#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/placement.hpp"

namespace greennfv::cluster {
namespace {

// --- placement ---------------------------------------------------------------

std::vector<ChainDemand> demands() {
  return {{"a", 3.0, 4.0}, {"b", 2.0, 3.0}, {"c", 2.0, 3.0},
          {"d", 1.0, 1.0}};
}

TEST(Placement, FirstFitPacksTight) {
  const std::vector<NodeCapacity> nodes = {{4.0}, {4.0}, {4.0}};
  const Placement p = place_chains(demands(), nodes,
                                   PlacementPolicy::kFirstFitDecreasing);
  // FFD: 3 -> node0; 2 -> node1; 2 -> node1 (fits 4); 1 -> node0.
  EXPECT_EQ(p.node_of(0), 0);
  EXPECT_EQ(p.node_of(1), 1);
  EXPECT_EQ(p.node_of(2), 1);
  EXPECT_EQ(p.node_of(3), 0);
  EXPECT_DOUBLE_EQ(p.node_cores[0], 4.0);
  EXPECT_DOUBLE_EQ(p.node_cores[1], 4.0);
  EXPECT_DOUBLE_EQ(p.node_cores[2], 0.0);
}

TEST(Placement, LeastLoadedSpreads) {
  const std::vector<NodeCapacity> nodes = {{8.0}, {8.0}, {8.0}};
  const Placement p =
      place_chains(demands(), nodes, PlacementPolicy::kLeastLoaded);
  // Every node receives work.
  for (const double cores : p.node_cores) EXPECT_GT(cores, 0.0);
  EXPECT_LT(imbalance(p), 1.5);
}

TEST(Placement, BalanceBeatsPackingOnImbalance) {
  const std::vector<NodeCapacity> nodes = {{16.0}, {16.0}, {16.0}};
  const Placement packed = place_chains(
      demands(), nodes, PlacementPolicy::kFirstFitDecreasing);
  const Placement spread =
      place_chains(demands(), nodes, PlacementPolicy::kLeastLoaded);
  EXPECT_LE(imbalance(spread), imbalance(packed) + 1e-9);
}

TEST(Placement, ThrowsWhenNothingFits) {
  const std::vector<NodeCapacity> nodes = {{2.0}};
  EXPECT_THROW(place_chains(demands(), nodes,
                            PlacementPolicy::kFirstFitDecreasing),
               std::invalid_argument);
}

TEST(Placement, EnergyBestFitConcentratesLoad) {
  const std::vector<NodeCapacity> nodes = {{8.0}, {8.0}, {8.0}};
  // 3+2+2+1 = 8 cores: best-fit packs everything onto one node and the
  // other two stay empty (free to idle or sleep).
  const Placement p =
      place_chains(demands(), nodes, PlacementPolicy::kEnergyBestFit);
  int used = 0;
  for (const double cores : p.node_cores)
    if (cores > 0.0) ++used;
  EXPECT_EQ(used, 1);
  EXPECT_DOUBLE_EQ(p.node_cores[0], 8.0);
}

TEST(Placement, EnergyBestFitPrefersTheTightestSlot) {
  // Heaviest-first: a(3) -> node1 (slack 2 beats 3 and 5), b(2) fills
  // node1 exactly (slack 0), c(2) and d(1) land on node0 — node2, the
  // roomiest, never hosts anything.
  const std::vector<NodeCapacity> nodes = {{6.0}, {5.0}, {8.0}};
  const Placement p =
      place_chains(demands(), nodes, PlacementPolicy::kEnergyBestFit);
  EXPECT_EQ(p.node_of(0), 1);
  EXPECT_EQ(p.node_of(1), 1);
  EXPECT_DOUBLE_EQ(p.node_cores[1], 5.0);
  EXPECT_DOUBLE_EQ(p.node_cores[0], 3.0);
  EXPECT_DOUBLE_EQ(p.node_cores[2], 0.0);
}

// --- the place_chains edge-case contract ------------------------------------

TEST(Placement, ChainLargerThanEveryNodeIsAClearError) {
  const std::vector<ChainDemand> big = {{"giant", 20.0, 5.0}};
  const std::vector<NodeCapacity> nodes = {{14.0}, {14.0}, {14.0}};
  for (const auto policy :
       {PlacementPolicy::kFirstFitDecreasing, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kEnergyBestFit}) {
    SCOPED_TRACE(to_string(policy));
    try {
      (void)place_chains(big, nodes, policy);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("giant"), std::string::npos);
    }
  }
}

TEST(Placement, ZeroCapacityNodeInRosterIsAClearError) {
  // A zero-capacity roster entry used to feed 0/0 into the load ratio —
  // now it is rejected up front, naming the node.
  const std::vector<NodeCapacity> nodes = {{8.0}, {0.0}, {8.0}};
  for (const auto policy :
       {PlacementPolicy::kFirstFitDecreasing, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kEnergyBestFit}) {
    SCOPED_TRACE(to_string(policy));
    try {
      (void)place_chains(demands(), nodes, policy);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("node 1"), std::string::npos);
    }
  }
  const std::vector<NodeCapacity> negative = {{8.0}, {-2.0}};
  EXPECT_THROW(
      place_chains(demands(), negative, PlacementPolicy::kLeastLoaded),
      std::invalid_argument);
}

TEST(Placement, EmptyFleetIsAClearError) {
  try {
    (void)place_chains(demands(), {}, PlacementPolicy::kLeastLoaded);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("empty fleet"), std::string::npos);
  }
}

TEST(Placement, ValidatesInputs) {
  EXPECT_THROW(place_chains({}, {{4.0}},
                            PlacementPolicy::kLeastLoaded),
               std::invalid_argument);
  EXPECT_THROW(place_chains(demands(), {},
                            PlacementPolicy::kLeastLoaded),
               std::invalid_argument);
  std::vector<ChainDemand> bad = {{"x", 0.0, 1.0}};
  EXPECT_THROW(place_chains(bad, {{4.0}},
                            PlacementPolicy::kLeastLoaded),
               std::invalid_argument);
}

TEST(Placement, PolicyNames) {
  EXPECT_EQ(to_string(PlacementPolicy::kFirstFitDecreasing),
            "first-fit-decreasing");
  EXPECT_EQ(to_string(PlacementPolicy::kLeastLoaded), "least-loaded");
  EXPECT_EQ(to_string(PlacementPolicy::kEnergyBestFit), "energy-bestfit");
}

// --- cluster ------------------------------------------------------------------

traffic::FlowSpec flow_for_chain(int chain, double mpps) {
  traffic::FlowSpec flow;
  flow.pkt_bytes = 512;
  flow.mean_rate_pps = mpps * 1e6;
  flow.chain_index = chain;
  return flow;
}

TEST(Cluster, ThreeNodeDeploymentAggregates) {
  // The paper's shape: three hosting nodes, one 3-NF chain each.
  Cluster cluster(3, hwmodel::NodeSpec{});
  for (int n = 0; n < 3; ++n) {
    const auto deployed = cluster.deploy_chain(
        "chain" + std::to_string(n), nfvsim::standard_chain_nfs(n), n);
    EXPECT_EQ(deployed.node, n);
    EXPECT_EQ(deployed.chain, 0);
  }
  cluster.attach_traffic({{flow_for_chain(0, 0.5)},
                          {flow_for_chain(0, 0.5)},
                          {flow_for_chain(0, 0.5)}},
                         7);
  nfvsim::ChainKnobs knobs;
  knobs.cores = 2.0;
  knobs.batch = 64;
  knobs.dma_bytes = 8ull << 20;
  cluster.apply_knobs_everywhere(knobs);

  const ClusterMetrics metrics = cluster.run(4, 1.0);
  EXPECT_EQ(metrics.node_gbps.size(), 3u);
  // Fleet totals are the sum of per-node numbers.
  double gbps = 0.0;
  double watts = 0.0;
  for (std::size_t n = 0; n < 3; ++n) {
    EXPECT_GT(metrics.node_gbps[n], 0.0);
    gbps += metrics.node_gbps[n];
    watts += metrics.node_power_w[n];
  }
  EXPECT_NEAR(metrics.total_gbps, gbps, 1e-9);
  EXPECT_NEAR(metrics.total_power_w, watts, 1e-9);
  // Energy = sum over nodes of power * time.
  EXPECT_NEAR(metrics.total_energy_j, metrics.total_power_w * 4.0,
              metrics.total_power_w * 4.0 * 0.2);
  // Fleet floor: at least 3x idle power.
  EXPECT_GT(metrics.total_power_w, 3 * hwmodel::NodeSpec{}.p_idle_w);
}

TEST(Cluster, IdenticalNodesBehaveIdentically) {
  Cluster cluster(2, hwmodel::NodeSpec{});
  for (int n = 0; n < 2; ++n)
    (void)cluster.deploy_chain("c", {"firewall", "router"}, n);
  cluster.attach_traffic(
      {{flow_for_chain(0, 0.3)}, {flow_for_chain(0, 0.3)}}, 9);
  // Same seed-derived phases differ, but CBR flows are deterministic:
  const ClusterMetrics metrics = cluster.run(3, 1.0);
  EXPECT_NEAR(metrics.node_gbps[0], metrics.node_gbps[1], 1e-9);
}

TEST(Cluster, GuardsAgainstMisuse) {
  Cluster cluster(1, hwmodel::NodeSpec{});
  EXPECT_DEATH((void)cluster.step(1.0), "attach_traffic first");
  (void)cluster.deploy_chain("c", {"firewall"}, 0);
  EXPECT_DEATH(cluster.attach_traffic({}, 1), "one flow set per node");
}

}  // namespace
}  // namespace greennfv::cluster
