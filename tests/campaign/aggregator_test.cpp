#include <gtest/gtest.h>

#include <cmath>

#include "campaign/aggregator.hpp"

/// Aggregator contract: per-cell statistics match the textbook formulas
/// (Welford mean/stddev, Student-t 95% CI), single-seed cells stay finite
/// with zero-width intervals, groups come out in matrix order, and the
/// Pareto front keeps exactly the non-dominated throughput/energy points.

namespace greennfv::campaign {
namespace {

RunResult make_run(const std::string& cell, std::uint64_t seed,
                   const std::vector<std::pair<std::string, double>>&
                       model_gbps_energy_pairs) {
  RunResult run;
  run.cell_id = cell;
  run.run_id = cell + "__s" + std::to_string(seed);
  run.scenario_name = "synthetic";
  run.seed = seed;
  for (std::size_t i = 0; i < model_gbps_energy_pairs.size(); i += 2) {
    scenario::ModelReport model;
    model.result.scheduler = model_gbps_energy_pairs[i].first;
    model.result.mean_gbps = model_gbps_energy_pairs[i].second;
    model.result.mean_energy_j = model_gbps_energy_pairs[i + 1].second;
    model.result.mean_power_w = model.result.mean_energy_j / 10.0;
    model.result.mean_efficiency =
        model.result.mean_gbps / model.result.mean_energy_j * 1000.0;
    model.result.sla_satisfaction = 1.0;
    model.result.drop_fraction = 0.25;
    model.result.windows = 3;
    run.report.models.push_back(std::move(model));
  }
  return run;
}

/// Shorthand: one model "m" with the given gbps/energy.
RunResult point(const std::string& cell, double gbps, double energy,
                std::uint64_t seed = 1) {
  return make_run(cell, seed, {{"m", gbps}, {"e", energy}});
}

TEST(Aggregator, StatsMatchHandComputedValues) {
  // One cell, one model, three seeds: gbps 2, 4, 9.
  const std::vector<RunResult> runs = {point("c", 2.0, 100.0, 1),
                                       point("c", 4.0, 100.0, 2),
                                       point("c", 9.0, 100.0, 3)};
  const CampaignSummary summary = aggregate(runs);
  ASSERT_EQ(summary.cells.size(), 1u);
  const MetricStats& gbps = summary.cells[0].gbps;
  EXPECT_EQ(gbps.n, 3u);
  EXPECT_DOUBLE_EQ(gbps.mean, 5.0);
  // Sample stddev of {2,4,9}: sqrt(((−3)²+(−1)²+4²)/2) = sqrt(13).
  EXPECT_NEAR(gbps.stddev, std::sqrt(13.0), 1e-12);
  // 95% CI half-width: t(df=2) * s / sqrt(3) with t = 4.303.
  EXPECT_NEAR(gbps.ci95, 4.303 * std::sqrt(13.0) / std::sqrt(3.0), 1e-9);
  EXPECT_DOUBLE_EQ(t_critical_95(2), 4.303);
  EXPECT_DOUBLE_EQ(t_critical_95(1000), 1.96);
  // Constant energy: zero spread, zero CI.
  EXPECT_DOUBLE_EQ(summary.cells[0].energy_j.stddev, 0.0);
  EXPECT_DOUBLE_EQ(summary.cells[0].energy_j.ci95, 0.0);
}

TEST(Aggregator, SingleSeedCellsAreFiniteWithZeroWidth) {
  const CampaignSummary summary = aggregate({point("only", 7.0, 50.0)});
  ASSERT_EQ(summary.cells.size(), 1u);
  const CellModelStats& cell = summary.cells[0];
  for (const MetricStats* stats :
       {&cell.gbps, &cell.energy_j, &cell.power_w, &cell.efficiency,
        &cell.sla, &cell.drop}) {
    EXPECT_EQ(stats->n, 1u);
    EXPECT_TRUE(std::isfinite(stats->mean));
    EXPECT_DOUBLE_EQ(stats->stddev, 0.0);
    EXPECT_DOUBLE_EQ(stats->ci95, 0.0);
  }
  EXPECT_DOUBLE_EQ(cell.gbps.mean, 7.0);
}

TEST(Aggregator, GroupsComeOutInMatrixOrder) {
  // Two cells x two models, seeds interleaved; cells must come out in
  // first-seen (matrix) order with models in roster order.
  const std::vector<RunResult> runs = {
      make_run("cell-b", 1, {{"Baseline", 1.0}, {"x", 10.0},
                             {"EE-Pstate", 2.0}, {"y", 20.0}}),
      make_run("cell-a", 1, {{"Baseline", 3.0}, {"x", 30.0},
                             {"EE-Pstate", 4.0}, {"y", 40.0}}),
      make_run("cell-b", 2, {{"Baseline", 1.5}, {"x", 10.0},
                             {"EE-Pstate", 2.5}, {"y", 20.0}}),
      make_run("cell-a", 2, {{"Baseline", 3.5}, {"x", 30.0},
                             {"EE-Pstate", 4.5}, {"y", 40.0}}),
  };
  const CampaignSummary summary = aggregate(runs);
  ASSERT_EQ(summary.cells.size(), 4u);
  EXPECT_EQ(summary.cells[0].cell_id, "cell-b");
  EXPECT_EQ(summary.cells[0].model, "Baseline");
  EXPECT_EQ(summary.cells[1].cell_id, "cell-b");
  EXPECT_EQ(summary.cells[1].model, "EE-Pstate");
  EXPECT_EQ(summary.cells[2].cell_id, "cell-a");
  EXPECT_EQ(summary.cells[3].model, "EE-Pstate");
  EXPECT_DOUBLE_EQ(summary.cells[0].gbps.mean, 1.25);
  EXPECT_EQ(summary.cells[0].gbps.n, 2u);
}

TEST(Aggregator, ParetoFrontKeepsOnlyNonDominatedPoints) {
  //   a: 10 Gbps @ 100 J   (front)
  //   b:  8 Gbps @  50 J   (front)
  //   c:  9 Gbps @ 120 J   (dominated by a: less Gbps, more J)
  //   d: 10 Gbps @ 150 J   (dominated by a: equal Gbps, more J)
  //   e:  2 Gbps @  20 J   (front: cheapest)
  const CampaignSummary summary = aggregate(
      {point("a", 10.0, 100.0), point("b", 8.0, 50.0),
       point("c", 9.0, 120.0), point("d", 10.0, 150.0),
       point("e", 2.0, 20.0)});
  ASSERT_EQ(summary.cells.size(), 5u);
  EXPECT_TRUE(summary.cells[0].on_pareto);   // a
  EXPECT_TRUE(summary.cells[1].on_pareto);   // b
  EXPECT_FALSE(summary.cells[2].on_pareto);  // c
  EXPECT_FALSE(summary.cells[3].on_pareto);  // d
  EXPECT_TRUE(summary.cells[4].on_pareto);   // e
  // Front listed best-throughput-first.
  ASSERT_EQ(summary.pareto.size(), 3u);
  EXPECT_EQ(summary.cells[summary.pareto[0]].cell_id, "a");
  EXPECT_EQ(summary.cells[summary.pareto[1]].cell_id, "b");
  EXPECT_EQ(summary.cells[summary.pareto[2]].cell_id, "e");
}

TEST(Aggregator, SummaryJsonCarriesFiniteStats) {
  const CampaignSummary summary = aggregate(
      {point("a", 10.0, 100.0, 1), point("a", 12.0, 110.0, 2)});
  const Json json = summary.to_json();
  ASSERT_EQ(json.at("cells").size(), 1u);
  const Json& cell = json.at("cells").at(0);
  for (const char* metric : {"gbps", "energy_j", "power_w", "efficiency",
                             "sla_satisfaction", "drop_fraction"}) {
    for (const char* field : {"n", "mean", "stddev", "ci95"}) {
      EXPECT_TRUE(std::isfinite(cell.at(metric).at(field).as_double()))
          << metric << "." << field;
    }
  }
  EXPECT_TRUE(cell.at("on_pareto").as_bool());
  EXPECT_EQ(json.at("pareto").size(), 1u);
}

TEST(Aggregator, InconsistentRostersAcrossACellThrow) {
  // Seed 1 reports two models, seed 2 only one: the per-model means would
  // silently average different sample sets.
  const std::vector<RunResult> runs = {
      make_run("c", 1, {{"Baseline", 1.0}, {"x", 10.0},
                        {"EE-Pstate", 2.0}, {"y", 20.0}}),
      make_run("c", 2, {{"Baseline", 1.5}, {"x", 10.0}}),
  };
  EXPECT_THROW((void)aggregate(runs), std::invalid_argument);
}

TEST(Aggregator, TableRendersOneRowPerCellModel) {
  const CampaignSummary summary = aggregate(
      {point("a", 10.0, 100.0, 1), point("a", 12.0, 110.0, 2),
       point("b", 5.0, 60.0, 1)});
  const std::string table = summary.table();
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("+-"), std::string::npos);  // CI column present
  EXPECT_NE(table.find("pareto"), std::string::npos);
}

}  // namespace
}  // namespace greennfv::campaign
