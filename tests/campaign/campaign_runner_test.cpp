#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "campaign/presets.hpp"
#include "campaign/runner.hpp"
#include "common/fs_util.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"

/// CampaignRunner contract — the acceptance criteria of the campaign
/// subsystem: a parallel (--jobs 8) sweep is bit-identical to the serial
/// one; a resumed campaign skips completed runs and reproduces identical
/// aggregates (doubles round-trip through the artifacts exactly); and a
/// Fig. 9-equivalent one-cell campaign reproduces the direct
/// ExperimentRunner numbers for the base seed.

namespace greennfv::campaign {
namespace {

/// Small untrained-roster sweep: 2 cells x 2 seeds over ci-smoke.
CampaignSpec tiny_campaign() {
  CampaignSpec spec;
  spec.name = "runner-test";
  spec.scenarios = {"ci-smoke"};
  spec.models = "baseline,ee-pstate";
  spec.seeds = {1, 2};
  Config overrides;
  overrides.set("sweep.offered_gbps", "6,12");
  spec.apply(overrides);
  return spec;
}

void expect_reports_bit_identical(const CampaignReport& a,
                                  const CampaignReport& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    const RunResult& ra = a.runs[r];
    const RunResult& rb = b.runs[r];
    SCOPED_TRACE(ra.run_id);
    EXPECT_EQ(ra.run_id, rb.run_id);
    ASSERT_EQ(ra.report.models.size(), rb.report.models.size());
    for (std::size_t m = 0; m < ra.report.models.size(); ++m) {
      const core::EvalResult& ea = ra.report.models[m].result;
      const core::EvalResult& eb = rb.report.models[m].result;
      EXPECT_EQ(ea.scheduler, eb.scheduler);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(ea.mean_gbps, eb.mean_gbps);
      EXPECT_EQ(ea.mean_energy_j, eb.mean_energy_j);
      EXPECT_EQ(ea.mean_power_w, eb.mean_power_w);
      EXPECT_EQ(ea.mean_efficiency, eb.mean_efficiency);
      EXPECT_EQ(ea.sla_satisfaction, eb.sla_satisfaction);
      EXPECT_EQ(ea.drop_fraction, eb.drop_fraction);
    }
    // Telemetry series too: same names, same samples.
    const auto names_a = ra.report.series.series_names();
    const auto names_b = rb.report.series.series_names();
    ASSERT_EQ(names_a, names_b);
    for (const std::string& name : names_a) {
      const TimeSeries& sa = ra.report.series.series(name);
      const TimeSeries& sb = rb.report.series.series(name);
      ASSERT_EQ(sa.size(), sb.size()) << name;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa.times()[i], sb.times()[i]) << name;
        EXPECT_EQ(sa.values()[i], sb.values()[i]) << name;
      }
    }
  }
  // And the aggregates.
  ASSERT_EQ(a.summary.cells.size(), b.summary.cells.size());
  for (std::size_t c = 0; c < a.summary.cells.size(); ++c) {
    EXPECT_EQ(a.summary.cells[c].cell_id, b.summary.cells[c].cell_id);
    EXPECT_EQ(a.summary.cells[c].gbps.mean, b.summary.cells[c].gbps.mean);
    EXPECT_EQ(a.summary.cells[c].gbps.stddev,
              b.summary.cells[c].gbps.stddev);
    EXPECT_EQ(a.summary.cells[c].gbps.ci95, b.summary.cells[c].gbps.ci95);
    EXPECT_EQ(a.summary.cells[c].energy_j.mean,
              b.summary.cells[c].energy_j.mean);
    EXPECT_EQ(a.summary.cells[c].on_pareto, b.summary.cells[c].on_pareto);
  }
  EXPECT_EQ(a.summary.pareto, b.summary.pareto);
}

TEST(CampaignRunner, ParallelJobsAreBitIdenticalToSerial) {
  CampaignRunner serial(tiny_campaign());
  CampaignRunner parallel(tiny_campaign());
  const CampaignReport a = serial.run(/*jobs=*/1);
  const CampaignReport b = parallel.run(/*jobs=*/8);
  EXPECT_EQ(a.executed, 4);
  EXPECT_EQ(b.executed, 4);
  expect_reports_bit_identical(a, b);
}

TEST(CampaignRunner, ResumeSkipsCompletedRunsAndReproducesAggregates) {
  const std::string root =
      testing::TempDir() + "/campaign_resume_test";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root, "runner-test");

  CampaignRunner fresh(tiny_campaign(), &store);
  const CampaignReport first = fresh.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(first.executed, 4);
  EXPECT_EQ(first.resumed, 0);
  EXPECT_TRUE(file_exists(store.manifest_path()));

  // Simulate a crash that lost one run: delete its artifact.
  const std::string lost = fresh.matrix()[2].run_id;
  ASSERT_TRUE(std::filesystem::remove(store.run_path(lost)));

  CampaignRunner resumed(tiny_campaign(), &store);
  const CampaignReport second = resumed.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(second.executed, 1);
  EXPECT_EQ(second.resumed, 3);
  for (const RunResult& run : second.runs)
    EXPECT_EQ(run.from_cache, run.run_id != lost);
  // The resumed campaign reproduces the fresh aggregates bit for bit —
  // the doubles survived the JSON artifacts exactly.
  expect_reports_bit_identical(first, second);

  // A third run resumes everything.
  CampaignRunner all_cached(tiny_campaign(), &store);
  const CampaignReport third = all_cached.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(third.executed, 0);
  EXPECT_EQ(third.resumed, 4);
  expect_reports_bit_identical(first, third);

  std::filesystem::remove_all(root);
}

TEST(CampaignRunner, CorruptOrForeignArtifactsAreReExecuted) {
  const std::string root =
      testing::TempDir() + "/campaign_corrupt_test";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root, "runner-test");

  CampaignRunner runner(tiny_campaign(), &store);
  // Truncated JSON and a complete-but-mismatched artifact both mean
  // "re-run".
  write_file_atomic(store.run_path(runner.matrix()[0].run_id),
                    "{\"complete\": tru");
  Json foreign = Json::object();
  foreign.set("complete", true);
  write_file_atomic(store.run_path(runner.matrix()[1].run_id),
                    foreign.dump());
  const CampaignReport report = runner.run(/*jobs=*/1, /*resume=*/true);
  EXPECT_EQ(report.executed, 4);
  EXPECT_EQ(report.resumed, 0);
  std::filesystem::remove_all(root);
}

TEST(CampaignRunner, TruncatedRealArtifactIsReExecutedNotTrusted) {
  // Not a synthetic fragment: a genuine completed artifact cut mid-byte
  // (the shape a crash mid-write or a full disk leaves behind). The store
  // must warn, discard, and re-execute — never feed a half-parsed run
  // into the aggregate.
  const std::string root = testing::TempDir() + "/campaign_truncated_test";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root, "runner-test");

  CampaignRunner fresh(tiny_campaign(), &store);
  const CampaignReport first = fresh.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(first.executed, 4);

  const std::string victim = fresh.matrix()[1].run_id;
  const std::string path = store.run_path(victim);
  const std::string bytes = read_file(path);
  write_file_atomic(path, bytes.substr(0, bytes.size() / 2));

  CampaignRunner resumed(tiny_campaign(), &store);
  const CampaignReport second = resumed.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(second.executed, 1);
  EXPECT_EQ(second.resumed, 3);
  for (const RunResult& run : second.runs)
    EXPECT_EQ(run.from_cache, run.run_id != victim);
  // The re-executed run restores the exact fresh numbers.
  expect_reports_bit_identical(first, second);
  std::filesystem::remove_all(root);
}

TEST(CampaignRunner, WorkerExceptionBecomesFailureRecordNotAbort) {
  // One deliberately poisoned cell: the roster provider throws for the
  // 12 Gbps x seed 2 run, exactly where a bad scenario would fail inside
  // execute(). The campaign must finish every other cell, record the
  // failure with its run id, keep it out of the aggregate and the
  // artifact store, and mark it in the manifest.
  const std::string root = testing::TempDir() + "/campaign_failure_test";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root, "runner-test");
  CampaignRunner runner(tiny_campaign(), &store);
  runner.set_roster_provider([](const scenario::ScenarioSpec& s) {
    if (s.total_offered_gbps == 12.0 && s.seed == 2)
      throw std::invalid_argument("injected cell failure");
    return scenario::filter_roster(scenario::default_roster(s),
                                   "baseline,ee-pstate");
  });
  const CampaignReport report = runner.run(/*jobs=*/2);
  EXPECT_EQ(report.executed, 4);
  EXPECT_EQ(report.failed, 1);

  std::string failed_id;
  for (const RunResult& run : report.runs) {
    if (!run.failed) {
      EXPECT_FALSE(run.report.models.empty()) << run.run_id;
      continue;
    }
    failed_id = run.run_id;
    EXPECT_FALSE(run.run_id.empty());
    EXPECT_EQ(run.seed, 2u);
    EXPECT_NE(run.error.find("injected cell failure"), std::string::npos);
    EXPECT_TRUE(run.report.models.empty());
    // No artifact: absence is what makes a later --resume re-run it.
    EXPECT_FALSE(file_exists(store.run_path(run.run_id)));
  }
  ASSERT_FALSE(failed_id.empty());

  // The failed cell's aggregate averages only the surviving seed.
  std::size_t one_seed_cells = 0;
  for (const auto& cell : report.summary.cells)
    if (cell.gbps.n == 1) ++one_seed_cells;
  EXPECT_EQ(one_seed_cells, 2u);  // both models of the wounded cell

  // The manifest marks exactly the failed run.
  const Json manifest = Json::parse(read_file(store.manifest_path()));
  int marked = 0;
  for (const Json& entry : manifest.at("runs").elements()) {
    if (!entry.has("failed")) continue;
    ++marked;
    EXPECT_EQ(entry.at("run_id").as_string(), failed_id);
    EXPECT_NE(entry.at("error").as_string().find("injected cell failure"),
              std::string::npos);
  }
  EXPECT_EQ(marked, 1);

  // With the poison removed, --resume re-runs only the failed cell and
  // the campaign is whole again.
  CampaignRunner healed(tiny_campaign(), &store);
  const CampaignReport second = healed.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(second.executed, 1);
  EXPECT_EQ(second.resumed, 3);
  EXPECT_EQ(second.failed, 0);
  std::filesystem::remove_all(root);
}

TEST(CampaignRunner, ResumeRejectsArtifactsFromADifferentConfiguration) {
  const std::string root = testing::TempDir() + "/campaign_config_test";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root, "runner-test");

  CampaignRunner original(tiny_campaign(), &store);
  (void)original.run(/*jobs=*/2);

  // A stale models= filter means re-run, not a mixed aggregate: the
  // artifacts' scenario echo matches, so the roster comparison is what
  // rejects them.
  CampaignSpec more_models = tiny_campaign();
  more_models.models = "baseline,heuristics,ee-pstate";
  CampaignRunner remodel(more_models, &store);
  const CampaignReport remodel_report =
      remodel.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(remodel_report.executed, 4);
  EXPECT_EQ(remodel_report.resumed, 0);

  // Same run ids and roster, but a changed base override: only the
  // resolved-scenario echo can tell the artifacts apart.
  CampaignSpec changed = tiny_campaign();
  changed.models = more_models.models;
  Config overrides;
  overrides.set("eval_windows", "2");
  changed.apply(overrides);
  CampaignRunner runner(changed, &store);
  const CampaignReport report = runner.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(report.executed, 4);
  EXPECT_EQ(report.resumed, 0);

  // And an untouched re-run still resumes everything.
  CampaignRunner same(changed, &store);
  const CampaignReport cached = same.run(/*jobs=*/2, /*resume=*/true);
  EXPECT_EQ(cached.executed, 0);
  EXPECT_EQ(cached.resumed, 4);
  std::filesystem::remove_all(root);
}

TEST(CampaignRunner, FreshRunIgnoresExistingArtifacts) {
  const std::string root = testing::TempDir() + "/campaign_fresh_test";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root, "runner-test");
  CampaignRunner runner(tiny_campaign(), &store);
  (void)runner.run(/*jobs=*/2, /*resume=*/true);
  const CampaignReport again = runner.run(/*jobs=*/2, /*resume=*/false);
  EXPECT_EQ(again.executed, 4);
  EXPECT_EQ(again.resumed, 0);
  std::filesystem::remove_all(root);
}

/// Acceptance: a Fig. 9-equivalent campaign (one cell, base scenario,
/// base seed) reproduces the direct ExperimentRunner numbers — the
/// campaign path adds orchestration, never different physics.
TEST(CampaignRunner, Fig9EquivalentCampaignMatchesDirectExperimentRunner) {
  scenario::ScenarioSpec spec = scenario::preset("paper-default");
  spec.eval_windows = 3;
  spec.episodes = 2;
  spec.q_episodes = 2;
  spec.candidates = 1;
  spec.steps_per_episode = 2;

  // Direct single-run path (what the golden-equivalence test pins to the
  // pre-scenario wiring).
  scenario::ExperimentRunner direct(spec);
  const scenario::EvalReport expected = direct.run(scenario::filter_roster(
      scenario::default_roster(spec), "baseline,heuristics,ee-pstate"));

  // The same scenario as a one-cell campaign through the parallel runner.
  CampaignSpec camp;
  camp.name = "fig9-equivalence";
  camp.base = spec;
  camp.models = "baseline,heuristics,ee-pstate";
  CampaignRunner runner(camp);
  const CampaignReport report = runner.run(/*jobs=*/4);

  ASSERT_EQ(report.runs.size(), 1u);
  EXPECT_EQ(report.runs[0].seed, spec.seed);
  const scenario::EvalReport& actual = report.runs[0].report;
  ASSERT_EQ(actual.models.size(), expected.models.size());
  for (std::size_t m = 0; m < expected.models.size(); ++m) {
    const core::EvalResult& want = expected.models[m].result;
    const core::EvalResult& got = actual.models[m].result;
    SCOPED_TRACE(want.scheduler);
    EXPECT_EQ(got.scheduler, want.scheduler);
    EXPECT_EQ(got.mean_gbps, want.mean_gbps);
    EXPECT_EQ(got.mean_energy_j, want.mean_energy_j);
    EXPECT_EQ(got.mean_power_w, want.mean_power_w);
    EXPECT_EQ(got.mean_efficiency, want.mean_efficiency);
    EXPECT_EQ(got.sla_satisfaction, want.sla_satisfaction);
    EXPECT_EQ(got.drop_fraction, want.drop_fraction);
  }
  // And the per-cell aggregate mean over one seed IS the single-run value.
  EXPECT_EQ(report.summary.cells[0].gbps.mean,
            expected.models[0].result.mean_gbps);
}

TEST(CampaignRunner, ManifestListsEveryRunAndParses) {
  const std::string root = testing::TempDir() + "/campaign_manifest_test";
  std::filesystem::remove_all(root);
  const ArtifactStore store(root, "runner-test");
  CampaignRunner runner(tiny_campaign(), &store);
  const CampaignReport report = runner.run(/*jobs=*/2);

  const Json manifest = Json::parse(read_file(store.manifest_path()));
  EXPECT_EQ(manifest.at("campaign").as_string(), "runner-test");
  EXPECT_EQ(manifest.at("matrix_size").as_double(), 4.0);
  ASSERT_EQ(manifest.at("runs").size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(manifest.at("runs").at(i).at("run_id").as_string(),
              runner.matrix()[i].run_id);
  }
  // The spec text round-trips back into an equivalent campaign.
  CampaignSpec from_manifest;
  from_manifest.apply(
      config_from_lines(manifest.at("spec").as_string()));
  EXPECT_EQ(from_manifest.expand().size(), runner.matrix().size());
  // Aggregates in the manifest are finite.
  for (const Json& cell : manifest.at("summary").at("cells").elements()) {
    EXPECT_TRUE(std::isfinite(cell.at("gbps").at("mean").as_double()));
    EXPECT_TRUE(std::isfinite(cell.at("gbps").at("ci95").as_double()));
  }
  EXPECT_EQ(report.summary.cells.size(),
            manifest.at("summary").at("cells").size());
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace greennfv::campaign
