#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/aggregator.hpp"
#include "campaign/artifact_store.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "common/fs_util.hpp"
#include "telemetry/series.hpp"

/// The campaign report generator: cross-seed series aggregation math,
/// HTML escaping, and the end-to-end path from a real (tiny) fleet
/// campaign through generate_report to validators that must accept the
/// produced artifacts and reject tampered ones.

namespace greennfv::campaign {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override { telemetry::series::set_enabled(false); }
  void TearDown() override { telemetry::series::set_enabled(false); }
};

TEST_F(ReportTest, HtmlEscapeCoversMarkupAndQuotes) {
  EXPECT_EQ(html_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
  EXPECT_EQ(html_escape("plain text 1.5"), "plain text 1.5");
  EXPECT_EQ(html_escape(""), "");
}

telemetry::SeriesTable two_column(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  telemetry::SeriesTable table({"x", "y"});
  for (std::size_t i = 0; i < a.size(); ++i) {
    table.append_row({a[i], b[i]});
  }
  return table;
}

TEST_F(ReportTest, AggregateSeriesComputesMeanAndCi) {
  const telemetry::SeriesTable s1 = two_column({1.0, 2.0}, {10.0, 20.0});
  const telemetry::SeriesTable s2 = two_column({3.0, 6.0}, {10.0, 20.0});
  const telemetry::SeriesTable s3 = two_column({5.0, 10.0}, {10.0, 20.0});
  const SeriesStats stats = aggregate_series({&s1, &s2, &s3});

  EXPECT_EQ(stats.seeds, 3u);
  ASSERT_EQ(stats.columns, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(stats.mean.size(), 2u);
  ASSERT_EQ(stats.mean[0].size(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean[0][0], 3.0);
  EXPECT_DOUBLE_EQ(stats.mean[0][1], 6.0);
  EXPECT_DOUBLE_EQ(stats.mean[1][0], 10.0);
  EXPECT_DOUBLE_EQ(stats.mean[1][1], 20.0);
  // x window 0: values {1,3,5} — stddev 2, ci95 = t(df=2) * 2 / sqrt(3).
  const double expected_ci = t_critical_95(2) * 2.0 / std::sqrt(3.0);
  EXPECT_NEAR(stats.ci95[0][0], expected_ci, 1e-12);
  // y is constant across seeds: ci95 collapses to 0.
  EXPECT_DOUBLE_EQ(stats.ci95[1][0], 0.0);
  EXPECT_DOUBLE_EQ(stats.ci95[1][1], 0.0);

  const Json json = stats.to_json();
  EXPECT_EQ(json.at("schema").as_string(), "greennfv.cellseries.v1");
  EXPECT_EQ(json.at("windows").as_double(), 2.0);
}

TEST_F(ReportTest, AggregateSeriesSingleSeedHasZeroCi) {
  const telemetry::SeriesTable s1 = two_column({4.0}, {8.0});
  const SeriesStats stats = aggregate_series({&s1});
  EXPECT_EQ(stats.seeds, 1u);
  EXPECT_DOUBLE_EQ(stats.mean[0][0], 4.0);
  EXPECT_DOUBLE_EQ(stats.ci95[0][0], 0.0);
}

TEST_F(ReportTest, AggregateSeriesRejectsMismatchedInputs) {
  const telemetry::SeriesTable s1 = two_column({1.0}, {2.0});
  const telemetry::SeriesTable s2 = two_column({1.0, 2.0}, {2.0, 3.0});
  EXPECT_EQ(aggregate_series({}).seeds, 0u);  // empty cell: empty stats
  EXPECT_THROW((void)aggregate_series({&s1, nullptr}),
               std::invalid_argument);
  EXPECT_THROW((void)aggregate_series({&s1, &s2}), std::invalid_argument);
  telemetry::SeriesTable other({"x", "z"});
  other.append_row({1.0, 2.0});
  EXPECT_THROW((void)aggregate_series({&s1, &other}),
               std::invalid_argument);
}

/// Runs a 2-cell x 2-seed fault-smoke campaign with sampling on into a
/// scratch store and returns the campaign directory.
std::string run_tiny_campaign(const std::string& tag) {
  const std::string root = testing::TempDir() + "/report_test_" + tag;
  std::filesystem::remove_all(root);

  CampaignSpec spec;
  spec.name = "report-tiny";
  spec.scenarios = {"fault-smoke"};
  spec.models = "baseline";
  spec.seeds = {1, 2};
  Config overrides;
  overrides.set("sweep.fleet.policy", "first-fit,energy-bestfit");
  spec.apply(overrides);

  const ArtifactStore store(root, spec.name);
  CampaignRunner runner(spec, &store);
  telemetry::series::set_enabled(true);
  const CampaignReport report = runner.run(/*jobs=*/2);
  telemetry::series::set_enabled(false);
  EXPECT_EQ(report.executed, 4);
  EXPECT_EQ(report.failed, 0);
  return store.dir();
}

TEST_F(ReportTest, GenerateReportEndToEndPassesItsOwnValidators) {
  const std::string dir = run_tiny_campaign("e2e");
  const std::string html_path = dir + "/report.html";
  const Json model = generate_report(dir, html_path);

  EXPECT_TRUE(validate_report_model(model).empty())
      << validate_report_model(model).front();
  EXPECT_EQ(model.at("runs").size(), 4u);
  ASSERT_EQ(model.at("cells").size(), 2u);
  for (const Json& cell : model.at("cells").elements()) {
    ASSERT_TRUE(cell.at("series").is_object())
        << cell.at("cell_id").as_string();
    EXPECT_EQ(cell.at("seeds").as_double(), 2.0);
  }

  // The written artifacts round-trip through the same validators the CI
  // tier and `run_report validate=` use.
  const Json written = Json::parse(read_file(dir + "/report.json"));
  EXPECT_TRUE(validate_report_model(written).empty());
  const std::string html = read_file(html_path);
  EXPECT_TRUE(validate_report_html(html).empty())
      << validate_report_html(html).front();

  // Per-run side artifacts validate too.
  const Json& run0 = model.at("runs").at(0);
  const std::string run_id = run0.at("run_id").as_string();
  EXPECT_TRUE(run0.at("has_series").as_bool());
  const Json series_json =
      Json::parse(read_file(dir + "/runs/" + run_id + ".series.json"));
  EXPECT_TRUE(validate_series_json(series_json).empty())
      << validate_series_json(series_json).front();
  const std::string series_csv =
      read_file(dir + "/runs/" + run_id + ".series.csv");
  EXPECT_TRUE(validate_series_csv(series_csv).empty())
      << validate_series_csv(series_csv).front();
}

TEST_F(ReportTest, ValidatorsRejectTamperedArtifacts) {
  const std::string dir = run_tiny_campaign("tamper");
  const Json model = generate_report(dir, dir + "/report.html");
  const std::string html = read_file(dir + "/report.html");

  // Version marker stripped: a renderer change must bump the schema.
  std::string no_marker = html;
  const std::size_t at = no_marker.find("greennfv-report:v1");
  ASSERT_NE(at, std::string::npos);
  no_marker.erase(at, 5);
  EXPECT_FALSE(validate_report_html(no_marker).empty());

  // Injected script: the dashboard contract is script-free.
  EXPECT_FALSE(
      validate_report_html(html + "<script>alert(1)</script>").empty());

  // Wrong schema tag on a series document.
  Json bad_series = Json::parse(
      read_file(dir + "/runs/" +
                model.at("runs").at(0).at("run_id").as_string() +
                ".series.json"));
  bad_series.set("schema", "greennfv.series.v999");
  EXPECT_FALSE(validate_series_json(bad_series).empty());

  // Truncated CSV column set.
  EXPECT_FALSE(validate_series_csv("window,t_s\n0,0\n").empty());

  // Model with a mutilated cell series.
  Json bad_model = model;
  EXPECT_TRUE(validate_report_model(bad_model).empty());
  bad_model.set("schema", "something.else");
  EXPECT_FALSE(validate_report_model(bad_model).empty());
}

TEST_F(ReportTest, BuildReportModelWithoutSeriesStillRenders) {
  // A campaign run without sampling has no series artifacts: the model
  // must carry null cell series and the dashboard must still validate
  // (it renders the summary + Pareto sections and says how to get
  // series next time).
  const std::string root = testing::TempDir() + "/report_test_noseries";
  std::filesystem::remove_all(root);
  CampaignSpec spec;
  spec.name = "report-noseries";
  spec.scenarios = {"fault-smoke"};
  spec.models = "baseline";
  spec.seeds = {1};
  const ArtifactStore store(root, spec.name);
  CampaignRunner runner(spec, &store);
  const CampaignReport report = runner.run(/*jobs=*/1);
  ASSERT_EQ(report.failed, 0);

  const Json model = generate_report(store.dir(), store.dir() + "/r.html");
  EXPECT_TRUE(validate_report_model(model).empty())
      << validate_report_model(model).front();
  for (const Json& cell : model.at("cells").elements()) {
    EXPECT_TRUE(cell.at("series").is_null());
  }
  for (const Json& run : model.at("runs").elements()) {
    EXPECT_FALSE(run.at("has_series").as_bool());
  }
  const std::string html = read_file(store.dir() + "/r.html");
  EXPECT_TRUE(validate_report_html(html).empty())
      << validate_report_html(html).front();
  EXPECT_NE(html.find("series=1"), std::string::npos);
}

TEST_F(ReportTest, BuildReportModelThrowsWithoutManifest) {
  const std::string root = testing::TempDir() + "/report_test_empty";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  EXPECT_THROW((void)build_report_model(root), std::invalid_argument);
}

}  // namespace
}  // namespace greennfv::campaign
