#include <gtest/gtest.h>

#include <set>

#include "campaign/campaign_spec.hpp"
#include "campaign/presets.hpp"
#include "scenario/presets.hpp"

/// CampaignSpec contract: apply() sorts the vocabulary into campaign
/// fields, sweep axes, and scenario overrides (typos are hard errors);
/// expand() produces the deterministic matrix (scenarios outer, axes in
/// key order, seeds innermost) with stable filesystem-safe ids; the text
/// form round-trips including comma-separated values.

namespace greennfv::campaign {
namespace {

Config make_config(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  Config config;
  for (const auto& [key, value] : entries) config.set(key, value);
  return config;
}

TEST(CampaignSpec, ApplySortsKeysIntoFieldsAxesAndOverrides) {
  CampaignSpec spec;
  spec.apply(make_config({{"name", "my-sweep"},
                          {"scenarios", "ci-smoke,flash-crowd"},
                          {"models", "baseline,ee-pstate"},
                          {"seeds", "7,8,9"},
                          {"sweep.offered_gbps", "5,10"},
                          {"episodes", "12"}}));
  EXPECT_EQ(spec.name, "my-sweep");
  EXPECT_EQ(spec.scenarios,
            (std::vector<std::string>{"ci-smoke", "flash-crowd"}));
  EXPECT_EQ(spec.models, "baseline,ee-pstate");
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{7, 8, 9}));
  ASSERT_EQ(spec.axes.size(), 1u);
  EXPECT_EQ(spec.axes[0].key, "offered_gbps");
  EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"5", "10"}));
  EXPECT_EQ(spec.overrides.get_string("episodes", ""), "12");
}

TEST(CampaignSpec, UnknownKeysAndBadAxesAreHardErrors) {
  CampaignSpec spec;
  EXPECT_THROW(spec.apply(make_config({{"episodez", "12"}})),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(make_config({{"sweep.not_a_key", "1,2"}})),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(make_config({{"sweep.scenario", "a,b"}})),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(make_config({{"seeds", "1,x"}})),
               std::invalid_argument);
}

TEST(CampaignSpec, ExpandOrdersScenariosAxesSeedsDeterministically) {
  CampaignSpec spec;
  spec.apply(make_config({{"scenarios", "ci-smoke,flash-crowd"},
                          {"seeds", "1,2"},
                          // Arrival order reversed vs key order on purpose.
                          {"sweep.window_s", "2,4"},
                          {"sweep.offered_gbps", "5,10"}}));
  const std::vector<RunSpec> matrix = spec.expand();
  // 2 scenarios x 2 offered x 2 window x 2 seeds.
  ASSERT_EQ(matrix.size(), 16u);

  // Axes iterate in key order: offered_gbps before window_s.
  EXPECT_EQ(matrix[0].run_id,
            "ci-smoke__offered_gbps-5__window_s-2__s1");
  EXPECT_EQ(matrix[1].run_id,
            "ci-smoke__offered_gbps-5__window_s-2__s2");
  EXPECT_EQ(matrix[2].run_id,
            "ci-smoke__offered_gbps-5__window_s-4__s1");
  EXPECT_EQ(matrix[4].run_id,
            "ci-smoke__offered_gbps-10__window_s-2__s1");
  EXPECT_EQ(matrix[8].run_id,
            "flash-crowd__offered_gbps-5__window_s-2__s1");

  std::set<std::string> ids;
  for (const RunSpec& run : matrix) {
    EXPECT_EQ(run.index, ids.size());
    EXPECT_TRUE(ids.insert(run.run_id).second) << "duplicate " << run.run_id;
    EXPECT_EQ(run.cell_id + "__s" + std::to_string(run.seed), run.run_id);
    // The resolved scenario actually received the assignment and seed.
    EXPECT_EQ(run.scenario.seed, run.seed);
    const double offered =
        run.assignments[0].second == "5" ? 5.0 : 10.0;
    EXPECT_DOUBLE_EQ(run.scenario.total_offered_gbps, offered);
  }
  // Expansion is pure: a second call reproduces the same matrix.
  const std::vector<RunSpec> again = spec.expand();
  ASSERT_EQ(again.size(), matrix.size());
  for (std::size_t i = 0; i < matrix.size(); ++i)
    EXPECT_EQ(again[i].run_id, matrix[i].run_id);
}

TEST(CampaignSpec, AutoSeedsDeriveFromTheCellBaseSeedViaRng) {
  CampaignSpec spec;
  spec.scenarios = {"ci-smoke"};
  spec.auto_seeds = 3;
  const std::vector<RunSpec> matrix = spec.expand();
  ASSERT_EQ(matrix.size(), 3u);
  // First seed IS the scenario's base seed (single-run equivalence).
  EXPECT_EQ(matrix[0].seed, scenario::preset("ci-smoke").seed);
  EXPECT_NE(matrix[1].seed, matrix[0].seed);
  EXPECT_NE(matrix[2].seed, matrix[1].seed);
  // Derivation is deterministic.
  const std::vector<RunSpec> again = spec.expand();
  for (std::size_t i = 0; i < matrix.size(); ++i)
    EXPECT_EQ(again[i].seed, matrix[i].seed);
}

TEST(CampaignSpec, ExplicitBaseSpecBypassesThePresetRegistry) {
  scenario::ScenarioSpec base = scenario::preset("ci-smoke");
  base.name = "hand-built";
  base.seed = 123;
  CampaignSpec spec;
  spec.base = base;
  const std::vector<RunSpec> matrix = spec.expand();
  ASSERT_EQ(matrix.size(), 1u);
  EXPECT_EQ(matrix[0].run_id, "hand-built__s123");
  EXPECT_EQ(matrix[0].scenario.num_chains, base.num_chains);
}

TEST(CampaignSpec, TextFormRoundTripsIncludingCommaValues) {
  CampaignSpec spec;
  spec.apply(make_config({{"name", "rt"},
                          {"scenarios", "ci-smoke,flash-crowd"},
                          {"models", "baseline,heuristics"},
                          {"seeds", "3,5"},
                          {"sweep.sla", "maxt,mine,ee"},
                          {"eval_windows", "4"}}));
  // The file format is line-oriented, so comma-separated values survive
  // (Config::from_string would have split them).
  CampaignSpec back;
  back.apply(config_from_lines(spec.to_text()));
  EXPECT_EQ(back.to_text(), spec.to_text());
  EXPECT_EQ(back.seeds, spec.seeds);
  ASSERT_EQ(back.axes.size(), 1u);
  EXPECT_EQ(back.axes[0].values,
            (std::vector<std::string>{"maxt", "mine", "ee"}));
}

TEST(CampaignSpec, SaveLoadRoundTripsThroughAFile) {
  CampaignSpec spec;
  spec.apply(make_config({{"name", "file-rt"},
                          {"scenarios", "ci-smoke"},
                          {"sweep.offered_gbps", "4,8"},
                          {"seeds", "1,2"}}));
  const std::string path =
      testing::TempDir() + "/campaign_spec_test.campaign";
  spec.save(path);
  const CampaignSpec loaded = CampaignSpec::load(path);
  EXPECT_EQ(loaded.to_text(), spec.to_text());
  EXPECT_EQ(loaded.expand().size(), 4u);
}

TEST(CampaignSpec, ValidateRejectsNonsense) {
  CampaignSpec spec;
  spec.name = "***";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.name = "ok";
  spec.auto_seeds = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.auto_seeds = 1;
  spec.scenarios.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(CampaignSpec, ExpandRejectsDuplicateRunIds) {
  CampaignSpec duplicate_seed;
  duplicate_seed.scenarios = {"ci-smoke"};
  duplicate_seed.seeds = {1, 1};
  EXPECT_THROW((void)duplicate_seed.expand(), std::invalid_argument);

  CampaignSpec duplicate_axis_value;
  duplicate_axis_value.scenarios = {"ci-smoke"};
  duplicate_axis_value.axes = {{"sla", {"ee", "ee"}}};
  EXPECT_THROW((void)duplicate_axis_value.expand(), std::invalid_argument);
}

TEST(CampaignSpec, ExpandValidatesEveryCellUpFront) {
  CampaignSpec spec;
  spec.scenarios = {"ci-smoke"};
  spec.apply(make_config({{"sweep.offered_gbps", "8,-1"}}));
  EXPECT_THROW((void)spec.expand(), std::invalid_argument);
}

TEST(CampaignSpec, ExpandRejectsUnknownTopologyPresets) {
  // A topology axis with a mistyped preset dies at expansion, before any
  // cell executes — cell.validate() name-checks even disabled specs.
  CampaignSpec spec;
  spec.scenarios = {"fleet-smoke"};
  spec.apply(make_config(
      {{"topology.enabled", "1"},
       {"sweep.topology.preset", "leaf-spine,leaf-spin"}}));
  EXPECT_THROW((void)spec.expand(), std::invalid_argument);
}

TEST(CampaignPresets, RegistryResolvesAndRejectsTypos) {
  const std::vector<std::string> names = preset_names();
  ASSERT_GE(names.size(), 4u);
  for (const std::string& name : names) {
    const CampaignSpec spec = preset(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.description.empty());
  }
  EXPECT_THROW((void)preset("fig9-typo"), std::invalid_argument);
  // resolve applies CLI overrides on top of the preset.
  Config config;
  config.set("campaign", "ci-campaign-smoke");
  config.set("models", "baseline");
  const CampaignSpec resolved = resolve(config);
  EXPECT_EQ(resolved.models, "baseline");
  EXPECT_EQ(resolved.name, "ci-campaign-smoke");
}

TEST(CampaignSpec, SanitizeTokenIsFilesystemSafe) {
  EXPECT_EQ(sanitize_token("GreenNFV(MaxT)"), "greennfv_maxt");
  EXPECT_EQ(sanitize_token("offered_gbps-10.5"), "offered_gbps-10.5");
  EXPECT_EQ(sanitize_token("a b/c\\d"), "a_b_c_d");
}

}  // namespace
}  // namespace greennfv::campaign
