#include <gtest/gtest.h>

#include "campaign/runner.hpp"
#include "orchestrator/fleet.hpp"
#include "scenario/presets.hpp"

/// Fleet scenarios through the campaign subsystem: the runner dispatches
/// fleet.enabled cells to the orchestrator, a parallel (jobs=8) fleet
/// sweep is bit-identical to the serial one (the PR 3 equivalence
/// guarantee extended to the fleet preset), and sweep.fleet.* axes expand
/// like any other scenario key.

namespace greennfv::campaign {
namespace {

/// 2 policies x 2 seeds over a shrunk fleet-smoke: 4 dynamic-fleet runs.
CampaignSpec tiny_fleet_campaign() {
  CampaignSpec spec;
  spec.name = "fleet-runner-test";
  spec.scenarios = {"fleet-smoke"};
  spec.models = "baseline,ee-pstate";
  spec.seeds = {1, 2};
  Config overrides;
  overrides.set("sweep.fleet.policy", "least-loaded,consolidate");
  overrides.set("fleet.horizon", "6");
  spec.apply(overrides);
  return spec;
}

void expect_reports_bit_identical(const CampaignReport& a,
                                  const CampaignReport& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t r = 0; r < a.runs.size(); ++r) {
    const RunResult& ra = a.runs[r];
    const RunResult& rb = b.runs[r];
    SCOPED_TRACE(ra.run_id);
    EXPECT_EQ(ra.run_id, rb.run_id);
    ASSERT_EQ(ra.report.models.size(), rb.report.models.size());
    for (std::size_t m = 0; m < ra.report.models.size(); ++m) {
      const core::EvalResult& ea = ra.report.models[m].result;
      const core::EvalResult& eb = rb.report.models[m].result;
      EXPECT_EQ(ea.scheduler, eb.scheduler);
      EXPECT_EQ(ea.mean_gbps, eb.mean_gbps);
      EXPECT_EQ(ea.mean_energy_j, eb.mean_energy_j);
      EXPECT_EQ(ea.mean_efficiency, eb.mean_efficiency);
      EXPECT_EQ(ea.sla_satisfaction, eb.sla_satisfaction);
      EXPECT_EQ(ea.drop_fraction, eb.drop_fraction);
    }
    const auto names_a = ra.report.series.series_names();
    ASSERT_EQ(names_a, rb.report.series.series_names());
    for (const std::string& name : names_a) {
      const TimeSeries& sa = ra.report.series.series(name);
      const TimeSeries& sb = rb.report.series.series(name);
      ASSERT_EQ(sa.size(), sb.size()) << name;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa.values()[i], sb.values()[i]) << name;
      }
    }
  }
  ASSERT_EQ(a.summary.cells.size(), b.summary.cells.size());
  for (std::size_t c = 0; c < a.summary.cells.size(); ++c) {
    EXPECT_EQ(a.summary.cells[c].gbps.mean, b.summary.cells[c].gbps.mean);
    EXPECT_EQ(a.summary.cells[c].energy_j.mean,
              b.summary.cells[c].energy_j.mean);
    EXPECT_EQ(a.summary.cells[c].sla.mean, b.summary.cells[c].sla.mean);
  }
}

TEST(FleetCampaign, ParallelFleetSweepIsBitIdenticalToSerial) {
  CampaignRunner serial(tiny_fleet_campaign());
  CampaignRunner parallel(tiny_fleet_campaign());
  const CampaignReport a = serial.run(/*jobs=*/1);
  const CampaignReport b = parallel.run(/*jobs=*/8);
  // 2 fleet.policy cells x 2 seeds.
  EXPECT_EQ(a.executed, 4);
  EXPECT_EQ(b.executed, 4);
  expect_reports_bit_identical(a, b);
}

TEST(FleetCampaign, RunsExecuteThroughTheOrchestrator) {
  CampaignRunner runner(tiny_fleet_campaign());
  const CampaignReport report = runner.run(/*jobs=*/2);
  for (const RunResult& run : report.runs) {
    SCOPED_TRACE(run.run_id);
    // Fleet-only series prove the orchestrator (not ExperimentRunner)
    // produced the run.
    const std::string prefix = run.report.models.front().prefix;
    EXPECT_TRUE(run.report.series.has(prefix + "active_nodes"));
    EXPECT_TRUE(run.report.series.has(prefix + "live_chains"));
  }
}

TEST(FleetCampaign, MatchesDirectOrchestratorForTheBaseSeed) {
  // A one-cell fleet campaign reproduces FleetOrchestrator numbers
  // exactly, the same guarantee the fig9 campaign gives ExperimentRunner.
  scenario::ScenarioSpec scenario = scenario::preset("fleet-smoke");
  scenario.fleet.horizon_windows = 6;

  CampaignSpec spec;
  spec.name = "fleet-one-cell";
  spec.scenarios = {"fleet-smoke"};
  spec.models = "baseline";
  Config overrides;
  overrides.set("fleet.horizon", "6");
  spec.apply(overrides);

  CampaignRunner runner(spec);
  const CampaignReport report = runner.run(/*jobs=*/1);

  orchestrator::FleetOrchestrator direct(scenario);
  const orchestrator::FleetReport golden = direct.run(
      scenario::filter_roster(scenario::default_roster(scenario),
                              "baseline"));

  ASSERT_EQ(report.runs.size(), 1u);
  const core::EvalResult& a = report.runs[0].report.models[0].result;
  const core::EvalResult& b = golden.report.models[0].result;
  EXPECT_EQ(a.mean_gbps, b.mean_gbps);
  EXPECT_EQ(a.mean_energy_j, b.mean_energy_j);
  EXPECT_EQ(a.sla_satisfaction, b.sla_satisfaction);
  EXPECT_EQ(a.drop_fraction, b.drop_fraction);
}

TEST(FleetCampaign, MistypedFleetSweepAxisIsAHardError) {
  CampaignSpec spec;
  Config config;
  config.set("sweep.fleet.polcy", "least-loaded,consolidate");
  EXPECT_THROW(spec.apply(config), std::invalid_argument);
}

}  // namespace
}  // namespace greennfv::campaign
