#include "core/spaces.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace greennfv::core {
namespace {

hwmodel::NodeSpec spec() { return hwmodel::NodeSpec{}; }

TEST(StateCodec, Dimensions) {
  const StateCodec codec(spec(), 3, 10.0);
  EXPECT_EQ(codec.state_dim(), 12u);
  EXPECT_EQ(codec.num_chains(), 3u);
}

TEST(StateCodec, EncodesWithinUnitBox) {
  const StateCodec codec(spec(), 2, 10.0);
  std::vector<ChainObservation> obs(2);
  obs[0] = {5.0, 1500.0, 2.0, 3e6};
  obs[1] = {0.0, 0.0, 0.0, 0.0};
  const auto state = codec.encode(obs);
  ASSERT_EQ(state.size(), 8u);
  for (const double s : state) {
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
  // Zero observation encodes to the lower corner.
  for (std::size_t i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(state[i], -1.0);
}

TEST(StateCodec, MonotoneInThroughput) {
  const StateCodec codec(spec(), 1, 10.0);
  std::vector<ChainObservation> low(1);
  low[0].throughput_gbps = 2.0;
  std::vector<ChainObservation> high(1);
  high[0].throughput_gbps = 8.0;
  EXPECT_LT(codec.encode(low)[0], codec.encode(high)[0]);
}

TEST(StateCodec, ClampsOutOfRange) {
  const StateCodec codec(spec(), 1, 10.0);
  std::vector<ChainObservation> wild(1);
  wild[0] = {100.0, 1e9, 50.0, 1e12};
  for (const double s : codec.encode(wild)) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(ActionCodec, Dimensions) {
  const ActionCodec codec(spec(), 3);
  EXPECT_EQ(codec.action_dim(), 15u);
}

TEST(ActionCodec, ExtremeActionsHitKnobLimits) {
  const ActionCodec codec(spec(), 1);
  const auto low = codec.decode(std::vector<double>(5, -1.0));
  EXPECT_NEAR(low[0].cores, nfvsim::ChainKnobs::kMinCores, 1e-9);
  EXPECT_NEAR(low[0].freq_ghz, spec().fmin_ghz, 1e-9);
  EXPECT_EQ(low[0].batch, nfvsim::ChainKnobs::kMinBatch);
  const auto high = codec.decode(std::vector<double>(5, 1.0));
  EXPECT_NEAR(high[0].cores, nfvsim::ChainKnobs::kMaxCores, 1e-9);
  EXPECT_NEAR(high[0].freq_ghz, spec().fmax_ghz, 1e-9);
  EXPECT_EQ(high[0].batch, nfvsim::ChainKnobs::kMaxBatch);
  EXPECT_NEAR(units::bytes_to_mib(high[0].dma_bytes),
              spec().max_dma_buffer_mib, 0.01);
}

TEST(ActionCodec, MidpointIsMidRange) {
  const ActionCodec codec(spec(), 1);
  const auto mid = codec.decode(std::vector<double>(5, 0.0));
  EXPECT_NEAR(mid[0].cores,
              (nfvsim::ChainKnobs::kMinCores +
               nfvsim::ChainKnobs::kMaxCores) / 2.0,
              1e-9);
  EXPECT_NEAR(mid[0].freq_ghz, (spec().fmin_ghz + spec().fmax_ghz) / 2.0,
              1e-9);
}

class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, EncodeDecodeIsStable) {
  const ActionCodec codec(spec(), 2);
  Rng rng(GetParam());
  std::vector<double> action(codec.action_dim());
  for (double& a : action) a = rng.uniform(-1.0, 1.0);
  const auto knobs = codec.decode(action);
  const auto re_encoded = codec.encode(knobs);
  const auto knobs2 = codec.decode(re_encoded);
  // decode(encode(decode(a))) == decode(a) up to batch rounding and DVFS
  // clamping.
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(knobs2[c].cores, knobs[c].cores, 1e-6);
    EXPECT_NEAR(knobs2[c].freq_ghz, knobs[c].freq_ghz, 1e-6);
    EXPECT_NEAR(knobs2[c].llc_fraction, knobs[c].llc_fraction, 1e-6);
    EXPECT_NEAR(static_cast<double>(knobs2[c].dma_bytes),
                static_cast<double>(knobs[c].dma_bytes), 1024.0);
    EXPECT_NEAR(knobs2[c].batch, knobs[c].batch, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ActionCodec, RejectsWrongDimension) {
  const ActionCodec codec(spec(), 2);
  EXPECT_DEATH((void)codec.decode(std::vector<double>(3, 0.0)),
               "dimension mismatch");
}

}  // namespace
}  // namespace greennfv::core
