#include "core/nf_controller.hpp"

#include <gtest/gtest.h>

#include "core/greennfv.hpp"
#include "core/heuristic.hpp"

namespace greennfv::core {
namespace {

EnvConfig small_config() {
  EnvConfig config;
  config.num_chains = 2;
  config.num_flows = 4;
  config.total_offered_gbps = 8.0;
  config.window_s = 2.0;
  config.sub_windows = 2;
  config.sla = Sla::energy_efficiency();
  return config;
}

TEST(NfController, BaselineEvaluationIsStable) {
  BaselineScheduler baseline{hwmodel::NodeSpec{}};
  const EvalResult result =
      evaluate_scheduler(small_config(), baseline, 6, 1);
  EXPECT_EQ(result.scheduler, "Baseline");
  EXPECT_EQ(result.windows, 6);
  EXPECT_GT(result.mean_gbps, 0.0);
  EXPECT_GT(result.mean_energy_j, 0.0);
  EXPECT_NEAR(result.mean_power_w,
              result.mean_energy_j / small_config().window_s, 1e-9);
  EXPECT_GE(result.sla_satisfaction, 0.0);
  EXPECT_LE(result.sla_satisfaction, 1.0);
}

TEST(NfController, ConfiguresPlatformForScheduler) {
  NfvEnvironment env(small_config(), 2);
  BaselineScheduler baseline{hwmodel::NodeSpec{}};
  NfController controller(env, baseline);
  // Baseline: no CAT, pure polling.
  EXPECT_FALSE(env.controller().use_cat());
  EXPECT_EQ(env.controller().sched_mode(), nfvsim::SchedMode::kPoll);

  HeuristicScheduler heuristic{hwmodel::NodeSpec{}, HeuristicConfig{}};
  NfController controller2(env, heuristic);
  EXPECT_TRUE(env.controller().use_cat());
  EXPECT_EQ(env.controller().sched_mode(), nfvsim::SchedMode::kHybrid);
}

TEST(NfController, RecordsSeriesWhenAsked) {
  NfvEnvironment env(small_config(), 3);
  BaselineScheduler baseline{hwmodel::NodeSpec{}};
  NfController controller(env, baseline);
  telemetry::Recorder recorder;
  (void)controller.run(4, &recorder, "base_");
  ASSERT_TRUE(recorder.has("base_throughput_gbps"));
  ASSERT_TRUE(recorder.has("base_energy_j"));
  ASSERT_TRUE(recorder.has("base_efficiency"));
  EXPECT_EQ(recorder.series("base_throughput_gbps").size(), 4u);
  // Times advance by the window size.
  const auto& times = recorder.series("base_throughput_gbps").times();
  EXPECT_NEAR(times[1] - times[0], small_config().window_s, 1e-9);
}

TEST(NfController, HeuristicAdaptsOverWindows) {
  NfvEnvironment env(small_config(), 4);
  HeuristicScheduler heuristic{hwmodel::NodeSpec{}, HeuristicConfig{}};
  NfController controller(env, heuristic);
  telemetry::Recorder recorder;
  (void)controller.run(8, &recorder, "h_");
  // The heuristic's knob walk must actually change outcomes over time.
  const auto& series = recorder.series("h_throughput_gbps");
  EXPECT_GT(series.max() - series.min(), 1e-6);
}

TEST(NfController, QLearningSchedulerRuns) {
  const EnvConfig config = small_config();
  auto qsched = train_qlearning_scheduler(config, /*episodes=*/3, 5);
  const EvalResult result = evaluate_scheduler(config, *qsched, 4, 6);
  EXPECT_EQ(result.scheduler, "Q-Learning");
  EXPECT_GT(result.mean_gbps, 0.0);
}

}  // namespace
}  // namespace greennfv::core
