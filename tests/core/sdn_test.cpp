#include "core/sdn_controller.hpp"

#include <gtest/gtest.h>

namespace greennfv::core {
namespace {

std::vector<traffic::FlowSpec> skewed_flows() {
  // Three flows on chain 0, one on chain 1, none on chain 2.
  std::vector<traffic::FlowSpec> flows;
  for (int i = 0; i < 4; ++i) {
    traffic::FlowSpec f;
    f.id = i;
    f.pkt_bytes = 256;
    f.mean_rate_pps = (i + 1) * 1e5;
    f.chain_index = i < 3 ? 0 : 1;
    flows.push_back(f);
  }
  return flows;
}

std::vector<ChainObservation> skewed_obs() {
  std::vector<ChainObservation> obs(3);
  obs[0].arrival_pps = 6e5;
  obs[1].arrival_pps = 4e5;
  obs[2].arrival_pps = 0.5e5;
  return obs;
}

TEST(Sdn, SkewMetric) {
  std::vector<ChainObservation> balanced(3);
  for (auto& o : balanced) o.arrival_pps = 1e6;
  EXPECT_NEAR(SdnController::skew(balanced), 1.0, 1e-9);
  EXPECT_GT(SdnController::skew(skewed_obs()), 1.5);
  std::vector<ChainObservation> idle(2);
  EXPECT_NEAR(SdnController::skew(idle), 1.0, 1e-9);  // no traffic
}

TEST(Sdn, MovesSmallestFlowOffHotChain) {
  traffic::TrafficGenerator gen(skewed_flows(), 1);
  SdnController sdn;
  const auto moves = sdn.rebalance(skewed_obs(), gen);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from_chain, 0);
  EXPECT_EQ(moves[0].to_chain, 2);  // coldest chain
  // Smallest flow on chain 0 is flow 0 (1e5 pps).
  EXPECT_EQ(moves[0].flow_index, 0u);
  EXPECT_EQ(gen.flows()[0].chain_index, 2);
  EXPECT_EQ(sdn.rebalances_performed(), 1);
}

TEST(Sdn, CooldownSuppressesChurn) {
  traffic::TrafficGenerator gen(skewed_flows(), 2);
  SdnConfig config;
  config.cooldown_windows = 3;
  SdnController sdn(config);
  EXPECT_FALSE(sdn.rebalance(skewed_obs(), gen).empty());
  // Immediately after a move the controller must hold its fire.
  EXPECT_TRUE(sdn.rebalance(skewed_obs(), gen).empty());
  EXPECT_TRUE(sdn.rebalance(skewed_obs(), gen).empty());
  EXPECT_TRUE(sdn.rebalance(skewed_obs(), gen).empty());
  EXPECT_FALSE(sdn.rebalance(skewed_obs(), gen).empty());
}

TEST(Sdn, BalancedLoadNeedsNoMoves) {
  traffic::TrafficGenerator gen(skewed_flows(), 3);
  std::vector<ChainObservation> balanced(3);
  for (auto& o : balanced) o.arrival_pps = 1e6;
  SdnController sdn;
  EXPECT_TRUE(sdn.rebalance(balanced, gen).empty());
  EXPECT_EQ(sdn.rebalances_performed(), 0);
}

TEST(Sdn, NeverEmptiesAChain) {
  // Only one flow on the hot chain: moving it would empty the chain.
  std::vector<traffic::FlowSpec> flows;
  traffic::FlowSpec f;
  f.pkt_bytes = 256;
  f.mean_rate_pps = 1e6;
  f.chain_index = 0;
  flows.push_back(f);
  traffic::TrafficGenerator gen(flows, 4);
  SdnController sdn;
  EXPECT_TRUE(sdn.rebalance(skewed_obs(), gen).empty());
}

TEST(Sdn, SteeringChangesEngineWorkloads) {
  // End-to-end: steering a flow shifts the load the analytic engine sees.
  nfvsim::OnvmController controller;
  controller.add_chain("c0", nfvsim::standard_chain_nfs(0));
  controller.add_chain("c1", nfvsim::standard_chain_nfs(1));
  std::vector<traffic::FlowSpec> flows;
  for (int i = 0; i < 2; ++i) {
    traffic::FlowSpec flow;
    flow.id = i;
    flow.pkt_bytes = 512;
    flow.mean_rate_pps = 5e5;
    flow.chain_index = 0;  // both on chain 0
    flows.push_back(flow);
  }
  nfvsim::AnalyticEngine engine(controller,
                                traffic::TrafficGenerator(flows, 5));
  const auto before = engine.run(2, 0.5);
  EXPECT_GT(before.chain_arrival_pps[0], before.chain_arrival_pps[1]);
  engine.generator().steer_flow(1, 1);
  const auto after = engine.run(2, 0.5);
  EXPECT_NEAR(after.chain_arrival_pps[0], after.chain_arrival_pps[1],
              after.chain_arrival_pps[0] * 0.5);
}

TEST(Sdn, ResetClearsHistory) {
  traffic::TrafficGenerator gen(skewed_flows(), 6);
  SdnController sdn;
  (void)sdn.rebalance(skewed_obs(), gen);
  EXPECT_EQ(sdn.rebalances_performed(), 1);
  sdn.reset();
  EXPECT_EQ(sdn.rebalances_performed(), 0);
  // And is immediately allowed to act again.
  EXPECT_FALSE(sdn.rebalance(skewed_obs(), gen).empty());
}

TEST(Sdn, RejectsBadConfig) {
  SdnConfig config;
  config.skew_threshold = 0.5;
  EXPECT_DEATH(SdnController{config}, "skew threshold");
}

}  // namespace
}  // namespace greennfv::core
