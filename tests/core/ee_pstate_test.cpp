#include "core/ee_pstate.hpp"

#include <gtest/gtest.h>

namespace greennfv::core {
namespace {

hwmodel::NodeSpec spec() { return hwmodel::NodeSpec{}; }

TEST(DesPredictor, TracksConstantSeries) {
  DesPredictor des;
  for (int i = 0; i < 20; ++i) (void)des.update(100.0);
  EXPECT_NEAR(des.forecast(), 100.0, 1e-6);
}

TEST(DesPredictor, ExtrapolatesLinearTrend) {
  DesPredictor des(0.5, 0.5);
  double forecast = 0.0;
  for (int i = 0; i < 60; ++i) forecast = des.update(10.0 * i);
  // Next value would be 600; a trend-following forecast must overshoot the
  // last observation (590).
  EXPECT_GT(forecast, 590.0);
  EXPECT_NEAR(forecast, 600.0, 15.0);
}

TEST(DesPredictor, ResetClears) {
  DesPredictor des;
  (void)des.update(50.0);
  EXPECT_TRUE(des.primed());
  des.reset();
  EXPECT_FALSE(des.primed());
  EXPECT_DOUBLE_EQ(des.forecast(), 0.0);
}

TEST(EePstate, PstateBandsMonotone) {
  EePstateScheduler sched(spec(), EePstateConfig{});
  int prev = -1;
  for (double load = 0.0; load <= 1.0; load += 0.05) {
    const int p = sched.pstate_for_load(load);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_EQ(sched.pstate_for_load(0.0), 0);
  EXPECT_EQ(sched.pstate_for_load(1.0), 9);  // top of the 10-step ladder
}

class EePstateThresholds : public ::testing::TestWithParam<double> {};

TEST_P(EePstateThresholds, BandBoundariesRespected) {
  EePstateScheduler sched(spec(), EePstateConfig{});
  const double threshold = GetParam();
  // Just below a threshold must select a lower or equal P-state than just
  // above it.
  EXPECT_LE(sched.pstate_for_load(threshold - 0.01),
            sched.pstate_for_load(threshold + 0.01));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, EePstateThresholds,
                         ::testing::Values(0.25, 0.5, 0.75));

TEST(EePstate, HighLoadSelectsHighFrequency) {
  EePstateScheduler sched(spec(), EePstateConfig{});
  std::vector<ChainObservation> obs(1);
  std::vector<nfvsim::ChainKnobs> current(1);
  // Prime the peak with a high-rate window.
  obs[0].arrival_pps = 10e6;
  auto knobs = sched.decide(obs, current);
  // Sustained high load -> forecast near peak -> top band.
  knobs = sched.decide(obs, knobs);
  EXPECT_NEAR(knobs[0].freq_ghz, spec().fmax_ghz, 0.11);
}

TEST(EePstate, LoadDropLowersFrequency) {
  EePstateScheduler sched(spec(), EePstateConfig{});
  std::vector<ChainObservation> obs(1);
  std::vector<nfvsim::ChainKnobs> current(1);
  obs[0].arrival_pps = 10e6;
  (void)sched.decide(obs, current);
  (void)sched.decide(obs, current);
  // Collapse the load; after a few windows the DES forecast follows.
  obs[0].arrival_pps = 0.2e6;
  nfvsim::ChainKnobs last;
  for (int i = 0; i < 6; ++i) last = sched.decide(obs, current)[0];
  EXPECT_LT(last.freq_ghz, spec().fmax_ghz - 0.2);
}

TEST(EePstate, LeavesOtherKnobsAtDefaults) {
  EePstateScheduler sched(spec(), EePstateConfig{});
  std::vector<ChainObservation> obs(1);
  obs[0].arrival_pps = 1e6;
  const auto knobs = sched.decide(obs, std::vector<nfvsim::ChainKnobs>(1));
  const auto defaults = nfvsim::baseline_knobs(spec());
  EXPECT_EQ(knobs[0].batch, 3u);  // stock small burst, never adapted
  EXPECT_EQ(knobs[0].dma_bytes, defaults.dma_bytes);
  EXPECT_NEAR(knobs[0].cores, 3.0, 1e-9);
  EXPECT_FALSE(sched.wants_cat());  // no CAT management
}

TEST(EePstate, ResetForgetsPredictors) {
  EePstateScheduler sched(spec(), EePstateConfig{});
  std::vector<ChainObservation> obs(1);
  obs[0].arrival_pps = 10e6;
  (void)sched.decide(obs, std::vector<nfvsim::ChainKnobs>(1));
  sched.reset();
  obs[0].arrival_pps = 0.1e6;
  // Fresh predictor: peak re-learns from the small value -> full load
  // fraction -> high frequency again.
  const auto knobs =
      sched.decide(obs, std::vector<nfvsim::ChainKnobs>(1));
  EXPECT_NEAR(knobs[0].freq_ghz, spec().fmax_ghz, 0.11);
}

TEST(EePstate, RejectsUnsortedThresholds) {
  EePstateConfig config;
  config.thresholds = {0.5, 0.25};
  EXPECT_DEATH(EePstateScheduler(spec(), config), "ascend");
}

}  // namespace
}  // namespace greennfv::core
