#include "core/environment.hpp"

#include <gtest/gtest.h>

namespace greennfv::core {
namespace {

EnvConfig small_config() {
  EnvConfig config;
  config.num_chains = 2;
  config.num_flows = 4;
  config.total_offered_gbps = 8.0;
  config.window_s = 2.0;
  config.sub_windows = 2;
  config.steps_per_episode = 4;
  config.sla = Sla::energy_efficiency();
  return config;
}

TEST(Environment, DimensionsFollowChains) {
  NfvEnvironment env(small_config(), 1);
  EXPECT_EQ(env.state_dim(), 8u);   // 4 signals x 2 chains
  EXPECT_EQ(env.action_dim(), 10u); // 5 knobs x 2 chains
}

TEST(Environment, ResetReturnsLiveState) {
  NfvEnvironment env(small_config(), 2);
  const auto state = env.reset(3);
  ASSERT_EQ(state.size(), 8u);
  for (const double s : state) {
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
  // Settling window measured something.
  EXPECT_GT(env.last_outcome().throughput_gbps, 0.0);
  EXPECT_GT(env.last_outcome().energy_j, 0.0);
}

TEST(Environment, StepRewardsMatchSla) {
  EnvConfig config = small_config();
  config.sla = Sla::max_throughput(/*budget=*/1e9);  // never violated
  NfvEnvironment env(config, 4);
  (void)env.reset(5);
  const auto result = env.step(std::vector<double>(10, 0.5));
  EXPECT_NEAR(result.reward,
              env.last_outcome().throughput_gbps / 10.0, 1e-9);
  EXPECT_TRUE(env.last_outcome().sla_satisfied);
}

TEST(Environment, ViolationYieldsZeroGatedReward) {
  EnvConfig config = small_config();
  config.sla = Sla::max_throughput(/*budget=*/1.0);  // impossible budget
  NfvEnvironment env(config, 6);
  (void)env.reset(7);
  const auto result = env.step(std::vector<double>(10, 1.0));
  EXPECT_DOUBLE_EQ(result.reward, 0.0);
  EXPECT_FALSE(env.last_outcome().sla_satisfied);
}

TEST(Environment, ShapedRewardGoesNegativeOnViolation) {
  EnvConfig config = small_config();
  config.sla = Sla::max_throughput(1.0);
  config.shaped_reward = true;
  NfvEnvironment env(config, 8);
  (void)env.reset(9);
  const auto result = env.step(std::vector<double>(10, 1.0));
  EXPECT_LT(result.reward, 0.0);
}

TEST(Environment, EpisodeTerminatesAfterConfiguredSteps) {
  NfvEnvironment env(small_config(), 10);
  (void)env.reset(11);
  int steps = 0;
  bool done = false;
  while (!done) {
    done = env.step(std::vector<double>(10, 0.0)).done;
    ++steps;
    ASSERT_LE(steps, 10);
  }
  EXPECT_EQ(steps, 4);
  // Reset starts a fresh episode.
  (void)env.reset(12);
  EXPECT_FALSE(env.step(std::vector<double>(10, 0.0)).done);
}

TEST(Environment, DeterministicForSameSeed) {
  NfvEnvironment env_a(small_config(), 13);
  NfvEnvironment env_b(small_config(), 13);
  (void)env_a.reset(14);
  (void)env_b.reset(14);
  const auto ra = env_a.step(std::vector<double>(10, 0.3));
  const auto rb = env_b.step(std::vector<double>(10, 0.3));
  EXPECT_DOUBLE_EQ(ra.reward, rb.reward);
  for (std::size_t i = 0; i < ra.next_state.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.next_state[i], rb.next_state[i]);
}

TEST(Environment, StrongerKnobsRaiseThroughput) {
  NfvEnvironment env(small_config(), 15);
  (void)env.reset(16);
  (void)env.step(std::vector<double>(10, -1.0));  // weakest config
  const double weak_gbps = env.last_outcome().throughput_gbps;
  (void)env.reset(16);
  std::vector<double> strong(10, 1.0);
  // Keep LLC fractions reasonable across 2 chains (indices 2 and 7).
  strong[2] = 0.0;
  strong[7] = 0.0;
  (void)env.step(strong);
  EXPECT_GT(env.last_outcome().throughput_gbps, weak_gbps);
}

TEST(Environment, RunWindowAppliesKnobs) {
  NfvEnvironment env(small_config(), 17);
  (void)env.reset(18);
  std::vector<nfvsim::ChainKnobs> knobs(
      2, nfvsim::baseline_knobs(hwmodel::NodeSpec{}));
  knobs[0].batch = 111;
  const auto outcome = env.run_window(knobs);
  EXPECT_EQ(env.last_knobs()[0].batch, 111u);
  EXPECT_EQ(outcome.observations.size(), 2u);
  EXPECT_GT(outcome.energy_j, 0.0);
}

TEST(Environment, MeanKnobsAverages) {
  NfvEnvironment env(small_config(), 19);
  (void)env.reset(20);
  std::vector<nfvsim::ChainKnobs> knobs(
      2, nfvsim::baseline_knobs(hwmodel::NodeSpec{}));
  knobs[0].cores = 1.0;
  knobs[1].cores = 3.0;
  (void)env.run_window(knobs);
  EXPECT_NEAR(env.mean_knobs().cores, 2.0, 1e-9);
}

}  // namespace
}  // namespace greennfv::core
