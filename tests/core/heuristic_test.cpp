#include "core/heuristic.hpp"

#include <gtest/gtest.h>

namespace greennfv::core {
namespace {

hwmodel::NodeSpec spec() { return hwmodel::NodeSpec{}; }

std::vector<ChainObservation> obs_with_rates(std::vector<double> pps) {
  std::vector<ChainObservation> obs(pps.size());
  for (std::size_t i = 0; i < pps.size(); ++i) {
    obs[i].arrival_pps = pps[i];
    obs[i].throughput_gbps = 2.0;
    obs[i].energy_j = 1000.0;
  }
  return obs;
}

TEST(Heuristic, InitialAllocationFollowsAlgorithm1) {
  HeuristicScheduler heuristic(spec(), HeuristicConfig{});
  const auto obs = obs_with_rates({9e6, 1e6});
  const std::vector<nfvsim::ChainKnobs> current(2);
  const auto knobs = heuristic.decide(obs, current);
  ASSERT_EQ(knobs.size(), 2u);
  // Lines 1-2: cores allocated evenly, one per NF (3-NF standard chains).
  EXPECT_NEAR(knobs[0].cores, 3.0, 1e-9);
  // Line 3: median frequency of the 1.2-2.1 ladder.
  EXPECT_NEAR(knobs[0].freq_ghz, 1.7, 0.11);
  // Line 4: batch = 2.
  EXPECT_EQ(knobs[0].batch, 2u);
  // Line 5: LLC proportional to flow rate (90/10).
  EXPECT_NEAR(knobs[0].llc_fraction / (knobs[0].llc_fraction +
                                       knobs[1].llc_fraction),
              0.9, 0.02);
}

TEST(Heuristic, LowEfficiencyStepsFrequencyDown) {
  HeuristicConfig config;
  config.threshold1 = 10.0;  // efficiency always "too low"
  config.threshold2 = 100.0;
  HeuristicScheduler heuristic(spec(), config);
  const auto obs = obs_with_rates({1e6});
  std::vector<nfvsim::ChainKnobs> current(1);
  auto knobs = heuristic.decide(obs, current);  // initial
  const double f0 = knobs[0].freq_ghz;
  knobs = heuristic.decide(obs, knobs);
  EXPECT_LT(knobs[0].freq_ghz, f0);  // line 10
  EXPECT_EQ(knobs[0].batch, 3u);     // line 14: batch += 1
}

TEST(Heuristic, HighEfficiencyStepsFrequencyUp) {
  HeuristicConfig config;
  config.threshold1 = 0.001;  // efficiency always "good"
  config.threshold2 = 0.001;
  HeuristicScheduler heuristic(spec(), config);
  const auto obs = obs_with_rates({1e6});
  std::vector<nfvsim::ChainKnobs> current(1);
  auto knobs = heuristic.decide(obs, current);
  const double f0 = knobs[0].freq_ghz;
  const auto b0 = knobs[0].batch;
  knobs = heuristic.decide(obs, knobs);
  EXPECT_GT(knobs[0].freq_ghz, f0);      // line 12
  EXPECT_EQ(knobs[0].batch, b0 - 1u);    // line 16
}

TEST(Heuristic, FrequencyClampsAtLadderEnds) {
  HeuristicConfig config;
  config.threshold1 = 1e9;  // always step down
  HeuristicScheduler heuristic(spec(), config);
  const auto obs = obs_with_rates({1e6});
  std::vector<nfvsim::ChainKnobs> knobs(1);
  knobs = heuristic.decide(obs, knobs);
  for (int i = 0; i < 30; ++i) knobs = heuristic.decide(obs, knobs);
  EXPECT_NEAR(knobs[0].freq_ghz, spec().fmin_ghz, 1e-9);
}

TEST(Heuristic, BatchNeverBelowMinimum) {
  HeuristicConfig config;
  config.threshold1 = 0.0;
  config.threshold2 = 0.0;  // always shrink batch
  HeuristicScheduler heuristic(spec(), config);
  const auto obs = obs_with_rates({1e6});
  std::vector<nfvsim::ChainKnobs> knobs(1);
  knobs = heuristic.decide(obs, knobs);
  for (int i = 0; i < 10; ++i) knobs = heuristic.decide(obs, knobs);
  EXPECT_GE(knobs[0].batch, nfvsim::ChainKnobs::kMinBatch);
}

TEST(Heuristic, ResetForgetsState) {
  HeuristicScheduler heuristic(spec(), HeuristicConfig{});
  const auto obs = obs_with_rates({1e6});
  std::vector<nfvsim::ChainKnobs> knobs(1);
  knobs = heuristic.decide(obs, knobs);
  knobs = heuristic.decide(obs, knobs);
  heuristic.reset();
  const auto fresh = heuristic.decide(obs, knobs);
  EXPECT_EQ(fresh[0].batch, 2u);  // back to the initial allocation
}

TEST(Heuristic, UsesCatAndHybrid) {
  HeuristicScheduler heuristic(spec(), HeuristicConfig{});
  EXPECT_TRUE(heuristic.wants_cat());
  EXPECT_EQ(heuristic.sched_mode(), nfvsim::SchedMode::kHybrid);
  EXPECT_EQ(heuristic.name(), "Heuristics");
}

}  // namespace
}  // namespace greennfv::core
