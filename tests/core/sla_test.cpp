#include "core/sla.hpp"

#include <gtest/gtest.h>

namespace greennfv::core {
namespace {

TEST(Sla, MaxThroughputGatesOnEnergy) {
  const Sla sla = Sla::max_throughput(2000.0);
  EXPECT_TRUE(sla.satisfied(5.0, 1999.0));
  EXPECT_TRUE(sla.satisfied(0.0, 2000.0));
  EXPECT_FALSE(sla.satisfied(10.0, 2000.1));
  // Reward zero on violation ("issues rewards only when the agent can meet
  // the energy SLA").
  EXPECT_DOUBLE_EQ(sla.reward(10.0, 3000.0), 0.0);
  // Reward scales with throughput when satisfied.
  EXPECT_GT(sla.reward(8.0, 1500.0), sla.reward(4.0, 1500.0));
}

TEST(Sla, MinEnergyGatesOnThroughput) {
  const Sla sla = Sla::min_energy(7.5, 3600.0);
  EXPECT_TRUE(sla.satisfied(7.5, 99999.0));
  EXPECT_FALSE(sla.satisfied(7.4, 100.0));
  EXPECT_DOUBLE_EQ(sla.reward(5.0, 100.0), 0.0);
  // "the reward gets better when it reduces energy consumption"
  EXPECT_GT(sla.reward(8.0, 1000.0), sla.reward(8.0, 2000.0));
}

TEST(Sla, EnergyEfficiencyUnconstrained) {
  const Sla sla = Sla::energy_efficiency();
  EXPECT_TRUE(sla.satisfied(0.0, 1e9));
  // λ = T / (E/1000).
  EXPECT_DOUBLE_EQ(sla.reward(8.0, 2000.0), 4.0);
  EXPECT_GT(sla.reward(8.0, 1000.0), sla.reward(8.0, 2000.0));
  EXPECT_GT(sla.reward(9.0, 2000.0), sla.reward(8.0, 2000.0));
}

TEST(Sla, EfficiencyDefinition) {
  EXPECT_DOUBLE_EQ(Sla::efficiency(10.0, 2000.0), 5.0);
  EXPECT_DOUBLE_EQ(Sla::efficiency(10.0, 0.0), 0.0);  // guarded
}

class ShapedRewards : public ::testing::TestWithParam<double> {};

TEST_P(ShapedRewards, ViolationDepthPenalized) {
  const double violation_factor = GetParam();
  const Sla maxt = Sla::max_throughput(2000.0);
  const double over = 2000.0 * (1.0 + violation_factor);
  EXPECT_LT(maxt.shaped_reward(5.0, over), 0.0);
  // Deeper violations are worse (down to the -1 clamp).
  if (violation_factor < 0.9) {
    EXPECT_LT(maxt.shaped_reward(5.0, 2000.0 * (1.0 + violation_factor +
                                                0.05)),
              maxt.shaped_reward(5.0, over) + 1e-12);
  }
  const Sla mine = Sla::min_energy(7.5, 3600.0);
  EXPECT_LT(mine.shaped_reward(7.5 * (1.0 - violation_factor), 100.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Depths, ShapedRewards,
                         ::testing::Values(0.05, 0.2, 0.5, 0.95));

TEST(Sla, ShapedEqualsGatedWhenSatisfied) {
  const Sla sla = Sla::max_throughput(2000.0);
  EXPECT_DOUBLE_EQ(sla.reward(6.0, 1500.0), sla.shaped_reward(6.0, 1500.0));
}

TEST(Sla, Names) {
  EXPECT_EQ(Sla::max_throughput(1.0).name(), "MaxThroughput");
  EXPECT_EQ(Sla::min_energy(1.0, 1.0).name(), "MinEnergy");
  EXPECT_EQ(Sla::energy_efficiency().name(), "EnergyEfficiency");
}

TEST(Sla, RejectsBadParameters) {
  EXPECT_DEATH((void)Sla::max_throughput(0.0), "bad budget");
  EXPECT_DEATH((void)Sla::min_energy(-1.0, 100.0), "bad floor");
  EXPECT_DEATH((void)Sla::min_energy(1.0, 0.0), "bad reference");
}

}  // namespace
}  // namespace greennfv::core
