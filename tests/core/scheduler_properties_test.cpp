#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/ee_pstate.hpp"
#include "core/greennfv.hpp"
#include "core/heuristic.hpp"
#include "core/rl_schedulers.hpp"

/// Property tests across every Scheduler implementation: whatever
/// observations arrive, a scheduler must emit legal knob settings (in
/// range, on the DVFS ladder after controller snapping) for every chain —
/// the platform contract that lets NfController apply them blindly.

namespace greennfv::core {
namespace {

hwmodel::NodeSpec spec() { return hwmodel::NodeSpec{}; }

std::vector<ChainObservation> random_obs(Rng& rng, std::size_t chains) {
  std::vector<ChainObservation> obs(chains);
  for (auto& o : obs) {
    o.throughput_gbps = rng.uniform(0.0, 12.0);
    o.energy_j = rng.uniform(0.0, 4000.0);
    o.busy_cores = rng.uniform(0.0, 4.0);
    o.arrival_pps = rng.uniform(0.0, 16e6);
  }
  return obs;
}

void expect_legal(const std::vector<nfvsim::ChainKnobs>& knobs,
                  std::size_t chains) {
  ASSERT_EQ(knobs.size(), chains);
  for (const auto& k : knobs) {
    EXPECT_GE(k.cores, nfvsim::ChainKnobs::kMinCores);
    EXPECT_LE(k.cores, nfvsim::ChainKnobs::kMaxCores);
    EXPECT_GE(k.freq_ghz, spec().fmin_ghz - 1e-9);
    EXPECT_LE(k.freq_ghz, spec().fmax_ghz + 1e-9);
    EXPECT_GE(k.llc_fraction, nfvsim::ChainKnobs::kMinLlcFraction - 1e-12);
    EXPECT_LE(k.llc_fraction, nfvsim::ChainKnobs::kMaxLlcFraction + 1e-12);
    EXPECT_GE(k.dma_bytes, nfvsim::ChainKnobs::kMinDmaBytes);
    EXPECT_LE(k.dma_bytes,
              units::mib_to_bytes(spec().max_dma_buffer_mib));
    EXPECT_GE(k.batch, nfvsim::ChainKnobs::kMinBatch);
    EXPECT_LE(k.batch, nfvsim::ChainKnobs::kMaxBatch);
  }
}

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, AllSchedulersEmitLegalKnobs) {
  Rng rng(GetParam());
  constexpr std::size_t kChains = 3;

  BaselineScheduler baseline{spec()};
  HeuristicScheduler heuristic{spec(), HeuristicConfig{}};
  EePstateScheduler ee_pstate{spec(), EePstateConfig{}};
  // Untrained agents still must emit legal actions.
  rl::DdpgConfig ddpg_config;
  ddpg_config.state_dim = 4 * kChains;
  ddpg_config.action_dim = 5 * kChains;
  auto agent = std::make_shared<rl::DdpgAgent>(ddpg_config, GetParam());
  DdpgScheduler ddpg(agent, spec(), kChains, 10.0, "ddpg");
  rl::QLearningConfig qconfig;
  qconfig.state_dim = 4;
  qconfig.action_dim = 5;
  auto qagent = std::make_shared<rl::QLearningAgent>(qconfig, GetParam());
  QLearningScheduler qlearning(qagent, spec(), kChains, 10.0);

  std::vector<nfvsim::ChainKnobs> current(
      kChains, nfvsim::baseline_knobs(spec()));
  for (int round = 0; round < 20; ++round) {
    const auto obs = random_obs(rng, kChains);
    for (Scheduler* s : std::initializer_list<Scheduler*>{
             &baseline, &heuristic, &ee_pstate, &ddpg, &qlearning}) {
      const auto knobs = s->decide(obs, current);
      expect_legal(knobs, kChains);
    }
    current = heuristic.decide(obs, current);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1, 17, 333, 4242));

TEST(SchedulerContract, NamesAreStable) {
  BaselineScheduler baseline{spec()};
  HeuristicScheduler heuristic{spec(), HeuristicConfig{}};
  EePstateScheduler ee_pstate{spec(), EePstateConfig{}};
  EXPECT_EQ(baseline.name(), "Baseline");
  EXPECT_EQ(heuristic.name(), "Heuristics");
  EXPECT_EQ(ee_pstate.name(), "EE-Pstate");
}

TEST(SchedulerContract, CatAndModePreferences) {
  BaselineScheduler baseline{spec()};
  HeuristicScheduler heuristic{spec(), HeuristicConfig{}};
  EePstateScheduler ee_pstate{spec(), EePstateConfig{}};
  EXPECT_FALSE(baseline.wants_cat());
  EXPECT_EQ(baseline.sched_mode(), nfvsim::SchedMode::kPoll);
  EXPECT_TRUE(heuristic.wants_cat());
  EXPECT_FALSE(ee_pstate.wants_cat());
  EXPECT_EQ(ee_pstate.sched_mode(), nfvsim::SchedMode::kHybrid);
}

TEST(QLearningTiedCodec, ExpandReplicates) {
  const std::vector<double> tied = {0.1, -0.2, 0.3, -0.4, 0.5};
  const auto full = QLearningScheduler::expand_action(tied, 3);
  ASSERT_EQ(full.size(), 15u);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t k = 0; k < 5; ++k)
      EXPECT_DOUBLE_EQ(full[5 * c + k], tied[k]);
}

TEST(QLearningTiedCodec, AggregateAverages) {
  std::vector<ChainObservation> obs(2);
  obs[0] = {2.0, 1000.0, 1.0, 1e6};
  obs[1] = {6.0, 3000.0, 3.0, 3e6};
  const StateCodec codec(spec(), 2, 10.0);
  const auto agg = QLearningScheduler::aggregate_state(obs, codec);
  ASSERT_EQ(agg.size(), 4u);
  // Mean observation {4, 2000, 2, 2e6} encoded through a 1-chain codec.
  const StateCodec single(spec(), 1, 1.0);
  const auto expected = single.encode({ChainObservation{4.0, 2000.0, 2.0,
                                                        2e6}});
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(agg[i], expected[i]);
}

}  // namespace
}  // namespace greennfv::core
