#include "rl/mlp.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

/// Batched Mlp entry points versus the per-sample reference: forward_batch
/// must reproduce row-wise forward() exactly, and backward_batch must
/// accumulate the same minibatch gradients and input gradients as N
/// per-sample backward() calls in batch order.

namespace greennfv::rl {
namespace {

std::vector<LayerSpec> tanh_net() {
  return {{13, Activation::kRelu},
          {7, Activation::kTanh},
          {3, Activation::kLinear}};
}

Matrix random_batch(std::size_t n, std::size_t dim, Rng& rng) {
  Matrix x(n, dim);
  for (double& v : x.flat()) v = rng.uniform(-1.0, 1.0);
  return x;
}

TEST(MlpBatch, ForwardMatchesPerSampleRows) {
  Rng rng(1);
  const Mlp net(5, tanh_net(), rng);
  const Matrix x = random_batch(9, 5, rng);

  Mlp::BatchWorkspace ws;
  const Matrix& y = net.forward_batch(x, ws);
  ASSERT_EQ(y.rows(), 9u);
  ASSERT_EQ(y.cols(), 3u);

  for (std::size_t i = 0; i < x.rows(); ++i) {
    const std::vector<double> yi = net.forward(x.row(i));
    for (std::size_t j = 0; j < yi.size(); ++j)
      EXPECT_DOUBLE_EQ(y(i, j), yi[j]);
  }
}

TEST(MlpBatch, ForwardIntoMatchesForward) {
  Rng rng(2);
  const Mlp net(4, {{8, Activation::kRelu}, {2, Activation::kTanh}}, rng);
  const std::vector<double> x = {0.1, -0.7, 0.4, 0.9};
  Mlp::Workspace ws;
  std::vector<double> out(2);
  net.forward_into(x, ws, out);
  const std::vector<double> want = net.forward(x);
  EXPECT_DOUBLE_EQ(out[0], want[0]);
  EXPECT_DOUBLE_EQ(out[1], want[1]);
}

TEST(MlpBatch, BackwardMatchesPerSampleAccumulation) {
  Rng rng(3);
  const Mlp net(6, tanh_net(), rng);
  const std::size_t n = 11;
  const Matrix x = random_batch(n, 6, rng);
  const Matrix dy = random_batch(n, 3, rng);

  // Batched pass.
  Mlp::BatchWorkspace bws;
  (void)net.forward_batch(x, bws);
  Mlp::Gradients batched = net.make_gradients();
  batched.zero();
  const Matrix& dx = net.backward_batch(dy, bws, batched);

  // Per-sample reference in the same batch order.
  Mlp::Workspace ws;
  Mlp::Gradients reference = net.make_gradients();
  reference.zero();
  Matrix dx_reference(n, 6);
  for (std::size_t i = 0; i < n; ++i) {
    (void)net.forward(x.row(i), ws);
    const std::vector<double> dxi = net.backward(dy.row(i), ws, reference);
    for (std::size_t d = 0; d < dxi.size(); ++d) dx_reference(i, d) = dxi[d];
  }

  for (std::size_t l = 0; l < batched.dw.size(); ++l) {
    for (std::size_t e = 0; e < batched.dw[l].size(); ++e)
      EXPECT_DOUBLE_EQ(batched.dw[l].flat()[e], reference.dw[l].flat()[e])
          << "dw layer " << l;
    for (std::size_t e = 0; e < batched.db[l].size(); ++e)
      EXPECT_DOUBLE_EQ(batched.db[l][e], reference.db[l][e])
          << "db layer " << l;
  }
  ASSERT_EQ(dx.rows(), n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t d = 0; d < 6u; ++d)
      EXPECT_DOUBLE_EQ(dx(i, d), dx_reference(i, d));
}

TEST(MlpBatch, SingleLayerNetwork) {
  Rng rng(4);
  const Mlp net(3, {{2, Activation::kLinear}}, rng);
  const Matrix x = random_batch(5, 3, rng);
  const Matrix dy = random_batch(5, 2, rng);

  Mlp::BatchWorkspace ws;
  (void)net.forward_batch(x, ws);
  Mlp::Gradients grads = net.make_gradients();
  grads.zero();
  const Matrix& dx = net.backward_batch(dy, ws, grads);
  EXPECT_EQ(dx.rows(), 5u);
  EXPECT_EQ(dx.cols(), 3u);

  Mlp::Workspace sws;
  Mlp::Gradients ref = net.make_gradients();
  ref.zero();
  for (std::size_t i = 0; i < 5u; ++i) {
    (void)net.forward(x.row(i), sws);
    (void)net.backward(dy.row(i), sws, ref);
  }
  for (std::size_t e = 0; e < grads.dw[0].size(); ++e)
    EXPECT_DOUBLE_EQ(grads.dw[0].flat()[e], ref.dw[0].flat()[e]);
}

TEST(MlpBatch, WorkspaceReusableAcrossBatchSizes) {
  // A workspace sized for a large batch must produce correct results when
  // reused for a smaller one (resize never leaves stale geometry behind).
  Rng rng(5);
  const Mlp net(4, {{6, Activation::kRelu}, {2, Activation::kTanh}}, rng);
  Mlp::BatchWorkspace ws;
  (void)net.forward_batch(random_batch(16, 4, rng), ws);

  const Matrix x = random_batch(3, 4, rng);
  const Matrix& y = net.forward_batch(x, ws);
  ASSERT_EQ(y.rows(), 3u);
  for (std::size_t i = 0; i < 3u; ++i) {
    const std::vector<double> yi = net.forward(x.row(i));
    for (std::size_t j = 0; j < yi.size(); ++j)
      EXPECT_DOUBLE_EQ(y(i, j), yi[j]);
  }
}

}  // namespace
}  // namespace greennfv::rl
