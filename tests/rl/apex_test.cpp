#include "rl/apex.hpp"

#include <gtest/gtest.h>

#include "tests/rl/toy_env.hpp"

namespace greennfv::rl {
namespace {

DdpgConfig toy_ddpg() {
  DdpgConfig config;
  config.state_dim = 2;
  config.action_dim = 2;
  config.actor_hidden = {32, 32};
  config.critic_hidden = {32, 32};
  config.actor_lr = 1e-3;
  config.critic_lr = 2e-3;
  config.gamma = 0.5;
  config.batch_size = 32;
  return config;
}

ApexConfig toy_apex(int actors, int episodes) {
  ApexConfig config;
  config.num_actors = actors;
  config.episodes_per_actor = episodes;
  config.steps_per_episode = 8;
  config.local_buffer_flush = 8;
  config.learn_start = 64;
  config.per.capacity = 1 << 14;
  return config;
}

EnvFactory toy_factory() {
  return [](std::uint64_t seed) {
    return std::make_unique<testenv::TargetEnv>(2, 8, seed);
  };
}

TEST(Apex, CollectsTransitionsAndLearns) {
  ApexRunner runner(toy_ddpg(), toy_apex(2, 60), toy_factory(), 1);
  const ApexResult result = runner.train();
  EXPECT_EQ(result.transitions_collected, 2 * 60 * 8);
  EXPECT_GT(result.learner_steps, 0);
  EXPECT_GT(runner.replay().size(), 0u);
}

TEST(Apex, ImprovesOverTraining) {
  ApexRunner runner(toy_ddpg(), toy_apex(2, 200), toy_factory(), 2);
  std::mutex mu;
  std::vector<double> rewards;
  const ApexResult result =
      runner.train([&](const EpisodeReport& report) {
        std::lock_guard<std::mutex> lock(mu);
        rewards.push_back(report.mean_reward);
      });
  ASSERT_GT(rewards.size(), 100u);
  double early = 0.0;
  double late = 0.0;
  const std::size_t k = 30;
  for (std::size_t i = 0; i < k; ++i) early += rewards[i] / k;
  for (std::size_t i = rewards.size() - k; i < rewards.size(); ++i)
    late += rewards[i] / k;
  // How far training progresses depends on how much CPU the learner thread
  // wins from the actors, which varies with machine load — require "no
  // regression plus real learner activity" rather than a fixed gain (the
  // deterministic convergence check lives in ddpg_test).
  EXPECT_GT(late, early - 0.02);
  EXPECT_GT(result.learner_steps, 0);
}

TEST(Apex, SingleActorWorks) {
  ApexRunner runner(toy_ddpg(), toy_apex(1, 30), toy_factory(), 3);
  const ApexResult result = runner.train();
  EXPECT_EQ(result.transitions_collected, 1 * 30 * 8);
}

TEST(Apex, EpisodeCallbackSeesEveryActor) {
  ApexRunner runner(toy_ddpg(), toy_apex(2, 10), toy_factory(), 4);
  std::mutex mu;
  std::set<int> actor_ids;
  int count = 0;
  (void)runner.train([&](const EpisodeReport& report) {
    std::lock_guard<std::mutex> lock(mu);
    actor_ids.insert(report.actor_id);
    ++count;
  });
  EXPECT_EQ(count, 20);
  EXPECT_EQ(actor_ids.size(), 2u);
}

TEST(Apex, TrainedPolicyUsableAfterRun) {
  ApexRunner runner(toy_ddpg(), toy_apex(2, 120), toy_factory(), 5);
  (void)runner.train();
  const auto action = runner.agent().act(std::vector<double>{0.2, -0.2});
  ASSERT_EQ(action.size(), 2u);
  for (const double a : action) {
    EXPECT_GE(a, -1.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Apex, RejectsDimensionMismatch) {
  DdpgConfig wrong = toy_ddpg();
  wrong.state_dim = 5;  // env has 2
  ApexRunner runner(wrong, toy_apex(1, 2), toy_factory(), 6);
  EXPECT_DEATH((void)runner.train(), "dims disagree");
}

}  // namespace
}  // namespace greennfv::rl
