#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rl/per.hpp"

/// Concurrency tests on the prioritized replay buffer — the shared state of
/// the Ape-X architecture (actor threads add, the learner samples and
/// rewrites priorities simultaneously).

namespace greennfv::rl {
namespace {

Transition make_transition(double tag) {
  Transition t;
  t.state = {tag, tag};
  t.action = {0.0};
  t.reward = tag;
  t.next_state = {tag, tag};
  return t;
}

TEST(PerConcurrent, ParallelAddersAndSampler) {
  PerConfig config;
  config.capacity = 1 << 12;
  PrioritizedReplay replay(config);
  constexpr int kAdds = 20000;
  std::atomic<bool> stop{false};

  std::thread adder_a([&] {
    for (int i = 0; i < kAdds; ++i)
      replay.add(make_transition(i), 0.0);
  });
  std::thread adder_b([&] {
    for (int i = 0; i < kAdds; ++i)
      replay.add(make_transition(kAdds + i), 0.0);
  });
  std::thread sampler([&] {
    Rng rng(1);
    std::uint64_t samples = 0;
    // Run until stopped, but never finish with zero samples: under a
    // loaded ctest -j the adders can complete before this thread is ever
    // scheduled, and the point of the test is sampling *concurrent* with
    // (or at least against the state produced by) the adders.
    while (!stop.load(std::memory_order_acquire) || samples == 0) {
      if (replay.size() >= 64) {
        const Minibatch batch = replay.sample(64, rng);
        // Every sampled transition must be internally consistent.
        for (const Transition& t : batch.transitions) {
          ASSERT_EQ(t.state.size(), 2u);
          ASSERT_DOUBLE_EQ(t.state[0], t.reward);
        }
        replay.update_priorities(
            batch.indices, std::vector<double>(batch.indices.size(), 0.5));
        ++samples;
      }
    }
    EXPECT_GT(samples, 0u);
  });

  adder_a.join();
  adder_b.join();
  stop.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_EQ(replay.size(), config.capacity);  // wrapped
}

TEST(PerConcurrent, DecayWhileSampling) {
  PerConfig config;
  config.capacity = 1024;
  PrioritizedReplay replay(config);
  for (int i = 0; i < 1024; ++i) replay.add(make_transition(i), 1.0);

  std::thread decayer([&] {
    for (int i = 0; i < 200; ++i) replay.decay_oldest(4);
  });
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const Minibatch batch = replay.sample(32, rng);
    ASSERT_EQ(batch.size(), 32u);
  }
  decayer.join();
}

}  // namespace
}  // namespace greennfv::rl
