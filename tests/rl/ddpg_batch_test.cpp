#include "rl/ddpg.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "rl/per.hpp"

/// The batched GEMM training engine versus the per-sample reference path:
///   * numerical equivalence (per-step stats and post-step parameters
///     within 1e-9 over >100 steps, uniform and prioritized replay),
///   * same-seed bit-identical batched training,
///   * zero steady-state heap allocations in train_step and the act path
///     (counted by overriding global operator new in this binary).

// --- allocation counting -----------------------------------------------------

namespace {
std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void* counted_alloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace greennfv::rl {
namespace {

DdpgConfig small_config() {
  DdpgConfig config;
  config.state_dim = 3;
  config.action_dim = 2;
  config.actor_hidden = {24, 18};
  config.critic_hidden = {26, 20};
  config.batch_size = 16;
  config.gamma = 0.95;
  return config;
}

Transition random_transition(Rng& rng, std::size_t s, std::size_t a) {
  Transition t;
  t.state.resize(s);
  t.action.resize(a);
  t.next_state.resize(s);
  for (double& v : t.state) v = rng.uniform(-1.0, 1.0);
  for (double& v : t.action) v = rng.uniform(-1.0, 1.0);
  for (double& v : t.next_state) v = rng.uniform(-1.0, 1.0);
  t.reward = rng.uniform(-1.0, 1.0);
  t.done = rng.bernoulli(0.1);
  return t;
}

void fill_replay(ReplayInterface& replay, std::uint64_t seed,
                 const DdpgConfig& config, int n) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    replay.add(random_transition(rng, config.state_dim, config.action_dim),
               0.0);
  }
}

void expect_params_near(const DdpgAgent& a, const DdpgAgent& b, double tol) {
  const std::vector<double> actor_a = a.actor().parameters();
  const std::vector<double> actor_b = b.actor().parameters();
  ASSERT_EQ(actor_a.size(), actor_b.size());
  for (std::size_t i = 0; i < actor_a.size(); ++i)
    ASSERT_NEAR(actor_a[i], actor_b[i], tol) << "actor param " << i;
  const std::vector<double> critic_a = a.critic().parameters();
  const std::vector<double> critic_b = b.critic().parameters();
  ASSERT_EQ(critic_a.size(), critic_b.size());
  for (std::size_t i = 0; i < critic_a.size(); ++i)
    ASSERT_NEAR(critic_a[i], critic_b[i], tol) << "critic param " << i;
}

// --- batched vs reference equivalence ---------------------------------------

TEST(DdpgBatchEquivalence, MatchesReferenceOverUniformReplay) {
  const DdpgConfig config = small_config();
  DdpgAgent batched(config, 42);
  DdpgAgent reference(config, 42);
  UniformReplay replay_batched(512);
  UniformReplay replay_reference(512);
  fill_replay(replay_batched, 7, config, 200);
  fill_replay(replay_reference, 7, config, 200);
  Rng rng_batched(9);
  Rng rng_reference(9);

  for (int step = 0; step < 120; ++step) {
    const TrainStats& sb = batched.train_step(replay_batched, rng_batched);
    const TrainStats sr =
        reference.train_step_reference(replay_reference, rng_reference);
    ASSERT_EQ(sb.indices, sr.indices) << "step " << step;
    ASSERT_NEAR(sb.critic_loss, sr.critic_loss, 1e-9) << "step " << step;
    ASSERT_NEAR(sb.actor_objective, sr.actor_objective, 1e-9)
        << "step " << step;
    ASSERT_EQ(sb.td_errors.size(), sr.td_errors.size());
    for (std::size_t i = 0; i < sb.td_errors.size(); ++i)
      ASSERT_NEAR(sb.td_errors[i], sr.td_errors[i], 1e-9)
          << "step " << step << " td " << i;
  }
  expect_params_near(batched, reference, 1e-9);

  // The resulting policies must agree on fresh states too.
  Rng probe_rng(11);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> state(config.state_dim);
    for (double& v : state) v = probe_rng.uniform(-1.0, 1.0);
    const std::vector<double> act_b = batched.act(state);
    const std::vector<double> act_r = reference.act(state);
    for (std::size_t d = 0; d < act_b.size(); ++d)
      ASSERT_NEAR(act_b[d], act_r[d], 1e-9);
  }
}

TEST(DdpgBatchEquivalence, MatchesReferenceOverPrioritizedReplay) {
  const DdpgConfig config = small_config();
  DdpgAgent batched(config, 4242);
  DdpgAgent reference(config, 4242);
  PerConfig per;
  per.capacity = 512;
  PrioritizedReplay replay_batched(per);
  PrioritizedReplay replay_reference(per);
  fill_replay(replay_batched, 17, config, 200);
  fill_replay(replay_reference, 17, config, 200);
  Rng rng_batched(19);
  Rng rng_reference(19);

  for (int step = 0; step < 110; ++step) {
    const TrainStats& sb = batched.train_step(replay_batched, rng_batched);
    replay_batched.update_priorities(sb.indices, sb.td_errors);
    const TrainStats sr =
        reference.train_step_reference(replay_reference, rng_reference);
    replay_reference.update_priorities(sr.indices, sr.td_errors);
    ASSERT_EQ(sb.indices, sr.indices) << "step " << step;
    for (std::size_t i = 0; i < sb.td_errors.size(); ++i)
      ASSERT_NEAR(sb.td_errors[i], sr.td_errors[i], 1e-9)
          << "step " << step << " td " << i;
  }
  expect_params_near(batched, reference, 1e-9);
}

// --- same-seed determinism ---------------------------------------------------

TEST(DdpgBatchDeterminism, SameSeedBitIdenticalTraining) {
  const DdpgConfig config = small_config();
  DdpgAgent a(config, 5);
  DdpgAgent b(config, 5);
  UniformReplay replay_a(512);
  UniformReplay replay_b(512);
  fill_replay(replay_a, 23, config, 150);
  fill_replay(replay_b, 23, config, 150);
  Rng rng_a(29);
  Rng rng_b(29);

  for (int step = 0; step < 100; ++step) {
    const TrainStats& sa = a.train_step(replay_a, rng_a);
    const TrainStats& sb = b.train_step(replay_b, rng_b);
    ASSERT_EQ(sa.indices, sb.indices);
    ASSERT_EQ(sa.critic_loss, sb.critic_loss) << "step " << step;
    ASSERT_EQ(sa.actor_objective, sb.actor_objective) << "step " << step;
    ASSERT_EQ(sa.td_errors, sb.td_errors) << "step " << step;
  }
  // Bit-identical parameters (EXPECT_EQ, not NEAR).
  EXPECT_EQ(a.actor().parameters(), b.actor().parameters());
  EXPECT_EQ(a.critic().parameters(), b.critic().parameters());
}

// --- zero steady-state allocations ------------------------------------------

TEST(DdpgBatchAlloc, TrainStepIsAllocationFreeAtSteadyState) {
  const DdpgConfig config = small_config();
  DdpgAgent agent(config, 3);
  UniformReplay replay(512);
  fill_replay(replay, 31, config, 200);
  Rng rng(37);

  for (int i = 0; i < 3; ++i) (void)agent.train_step(replay, rng);  // warm up

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 10; ++i) (void)agent.train_step(replay, rng);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0)
      << "train_step allocated at steady state";
}

TEST(DdpgBatchAlloc, PrioritizedSamplingIsAllocationFreeAtSteadyState) {
  const DdpgConfig config = small_config();
  DdpgAgent agent(config, 3);
  PerConfig per;
  per.capacity = 512;
  PrioritizedReplay replay(per);
  fill_replay(replay, 41, config, 200);
  Rng rng(43);

  for (int i = 0; i < 3; ++i) {
    const TrainStats& stats = agent.train_step(replay, rng);
    replay.update_priorities(stats.indices, stats.td_errors);
  }

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 10; ++i) {
    const TrainStats& stats = agent.train_step(replay, rng);
    replay.update_priorities(stats.indices, stats.td_errors);
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0)
      << "prioritized train_step allocated at steady state";
}

TEST(DdpgBatchAlloc, ActPathIsAllocationFreeAfterWarmup) {
  const DdpgConfig config = small_config();
  const DdpgAgent agent(config, 3);
  DdpgAgent::ActScratch scratch;
  GaussianNoise noise(config.action_dim, 0.2);
  Rng rng(47);
  std::vector<double> state(config.state_dim, 0.25);
  std::vector<double> action(config.action_dim);

  agent.act_into(state, scratch, action);  // warm up the workspace
  agent.act_noisy_into(state, noise, rng, scratch, action);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < 100; ++i) {
    agent.act_into(state, scratch, action);
    agent.act_noisy_into(state, noise, rng, scratch, action);
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0) << "act path allocated after warm-up";
}

}  // namespace
}  // namespace greennfv::rl
