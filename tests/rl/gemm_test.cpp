#include "rl/tensor.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

/// Units for the batched GEMM kernel set against naive triple loops. The
/// naive references accumulate the reduction index in increasing order —
/// the same order the blocked kernels guarantee — so comparisons are exact
/// (EXPECT_DOUBLE_EQ), not approximate. Shapes deliberately include
/// non-square and non-multiple-of-block cases (the row block is 8).

namespace greennfv::rl {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.flat()) x = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix naive_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  return c;
}

Matrix naive_gemm_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.rows(); ++k) acc += a(k, i) * b(k, j);
      c(i, j) = acc;
    }
  return c;
}

Matrix naive_gemm_nt(const Matrix& a, const Matrix& b,
                     std::span<const double> bias) {
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double acc = bias.empty() ? 0.0 : bias[j];
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(j, k);
      c(i, j) = acc;
    }
  return c;
}

void expect_equal(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      EXPECT_DOUBLE_EQ(got(i, j), want(i, j)) << "at (" << i << "," << j
                                              << ")";
}

struct Shape {
  std::size_t m, k, n;
};

// 1x1, tiny, block-aligned, and ragged (non-multiple-of-8) shapes.
const Shape kShapes[] = {{1, 1, 1},   {3, 5, 7},   {8, 8, 8},
                         {16, 8, 24}, {17, 23, 9}, {13, 64, 5},
                         {64, 37, 41}, {9, 300, 11}};

TEST(Gemm, MatchesNaiveAcrossShapes) {
  Rng rng(11);
  for (const Shape& sh : kShapes) {
    const Matrix a = random_matrix(sh.m, sh.k, rng);
    const Matrix b = random_matrix(sh.k, sh.n, rng);
    Matrix c(sh.m, sh.n);
    gemm(a, b, c);
    expect_equal(c, naive_gemm(a, b));
  }
}

TEST(Gemm, AccumulateAddsOntoExisting) {
  Rng rng(12);
  const Matrix a = random_matrix(10, 6, rng);
  const Matrix b = random_matrix(6, 14, rng);
  Matrix c(10, 14);
  gemm(a, b, c);
  Matrix twice = c;
  gemm(a, b, twice, /*accumulate=*/true);
  // Accumulate mode continues each element's running sum in k order on top
  // of the existing value (the gradient-accumulation semantics), so the
  // expected value folds the second pass onto the first incrementally.
  for (std::size_t i = 0; i < c.rows(); ++i)
    for (std::size_t j = 0; j < c.cols(); ++j) {
      double acc = c(i, j);
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      EXPECT_DOUBLE_EQ(twice(i, j), acc);
    }
}

TEST(Gemm, SkipsZeroRowsWithoutChangingResult) {
  // ReLU backprop produces many exact zeros in A; the kernel's skip must
  // not change the sum.
  Rng rng(13);
  Matrix a = random_matrix(9, 12, rng);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); k += 2) a(i, k) = 0.0;
  const Matrix b = random_matrix(12, 7, rng);
  Matrix c(9, 7);
  gemm(a, b, c);
  expect_equal(c, naive_gemm(a, b));
}

TEST(GemmTn, MatchesNaiveAcrossShapes) {
  Rng rng(21);
  for (const Shape& sh : kShapes) {
    // A: k×m (batch-major), B: k×n, C: m×n.
    const Matrix a = random_matrix(sh.k, sh.m, rng);
    const Matrix b = random_matrix(sh.k, sh.n, rng);
    Matrix c(sh.m, sh.n);
    gemm_tn(a, b, c);
    expect_equal(c, naive_gemm_tn(a, b));
  }
}

TEST(GemmTn, AccumulateMatchesPerSampleOuterProducts) {
  // The contract behind batched-equals-reference: gemm_tn in accumulate
  // mode produces exactly the same floating-point sums as sample-by-sample
  // accumulate_outer calls.
  Rng rng(22);
  const std::size_t batch = 19, out = 11, in = 13;
  const Matrix dy = random_matrix(batch, out, rng);
  const Matrix x = random_matrix(batch, in, rng);

  Matrix dw_batched(out, in);
  gemm_tn(dy, x, dw_batched, /*accumulate=*/true);

  Matrix dw_reference(out, in);
  for (std::size_t s = 0; s < batch; ++s)
    accumulate_outer(dw_reference, dy.row(s), x.row(s));

  for (std::size_t i = 0; i < out; ++i)
    for (std::size_t j = 0; j < in; ++j)
      EXPECT_DOUBLE_EQ(dw_batched(i, j), dw_reference(i, j));
}

TEST(GemmNt, MatchesNaiveAcrossShapes) {
  Rng rng(31);
  for (const Shape& sh : kShapes) {
    // A: m×k, B: n×k, C: m×n.
    const Matrix a = random_matrix(sh.m, sh.k, rng);
    const Matrix b = random_matrix(sh.n, sh.k, rng);
    Matrix c(sh.m, sh.n);
    gemm_nt(a, b, c);
    expect_equal(c, naive_gemm_nt(a, b, {}));
  }
}

TEST(GemmNt, BiasSeedsEveryOutputElement) {
  Rng rng(32);
  const Matrix a = random_matrix(6, 10, rng);
  const Matrix b = random_matrix(9, 10, rng);
  std::vector<double> bias(9);
  for (double& v : bias) v = rng.uniform(-2.0, 2.0);
  Matrix c(6, 9);
  gemm_nt(a, b, c, bias);
  expect_equal(c, naive_gemm_nt(a, b, bias));
}

TEST(GemmNt, MatchesMatvecBitForBit) {
  // The batched forward must reproduce the per-sample forward's sums
  // exactly: same accumulator seed (the bias), same k order.
  Rng rng(33);
  const std::size_t batch = 5, in = 23, out = 17;
  const Matrix x = random_matrix(batch, in, rng);
  const Matrix w = random_matrix(out, in, rng);
  std::vector<double> bias(out);
  for (double& v : bias) v = rng.uniform(-1.0, 1.0);

  Matrix y(batch, out);
  gemm_nt(x, w, y, bias);

  std::vector<double> y_row(out);
  for (std::size_t s = 0; s < batch; ++s) {
    matvec(w, x.row(s), bias, y_row);
    for (std::size_t j = 0; j < out; ++j)
      EXPECT_DOUBLE_EQ(y(s, j), y_row[j]);
  }
}

TEST(ColSums, AccumulatesRowsInOrder) {
  Rng rng(41);
  const Matrix a = random_matrix(13, 6, rng);
  std::vector<double> got(6, 0.5);
  add_col_sums(a, got);

  std::vector<double> want(6, 0.5);
  for (std::size_t i = 0; i < a.rows(); ++i) axpy(1.0, a.row(i), want);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(got[j], want[j]);
}

TEST(MatrixResize, ReshapesWithoutLosingCapacity) {
  Matrix m(8, 8);
  m.fill(3.0);
  const double* before = m.data();
  m.resize(4, 4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.data(), before);  // shrink keeps the buffer
  m.resize(8, 8);
  EXPECT_EQ(m.size(), 64u);     // grow back within capacity
  EXPECT_EQ(m.data(), before);
}

}  // namespace
}  // namespace greennfv::rl
