#include "rl/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "rl/ddpg.hpp"

namespace greennfv::rl {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "/tmp/gnfv_checkpoint_test.ckpt";
};

TEST_F(CheckpointTest, RoundTripPreservesEverything) {
  Checkpoint original;
  original.tag = "test-policy";
  original.input_dim = 3;
  original.output_dim = 2;
  original.parameters = {1.0, -2.5, 3.14159265358979, 1e-17, -1e300};
  save_checkpoint(path_, original);
  const Checkpoint loaded = load_checkpoint(path_);
  EXPECT_EQ(loaded.tag, "test-policy");
  EXPECT_EQ(loaded.input_dim, 3u);
  EXPECT_EQ(loaded.output_dim, 2u);
  ASSERT_EQ(loaded.parameters.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(loaded.parameters[i], original.parameters[i]);
}

TEST_F(CheckpointTest, RejectsBadMagic) {
  std::ofstream(path_) << "not-a-checkpoint\nx\n1 1 0\n";
  EXPECT_THROW((void)load_checkpoint(path_), std::runtime_error);
}

TEST_F(CheckpointTest, RejectsTruncatedParameters) {
  Checkpoint checkpoint;
  checkpoint.tag = "t";
  checkpoint.input_dim = 1;
  checkpoint.output_dim = 1;
  checkpoint.parameters = {1.0, 2.0, 3.0};
  save_checkpoint(path_, checkpoint);
  // Chop the file.
  std::ifstream in(path_);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path_) << text.substr(0, text.size() - 8);
  EXPECT_THROW((void)load_checkpoint(path_), std::runtime_error);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  EXPECT_THROW((void)load_checkpoint("/nonexistent/nope.ckpt"),
               std::runtime_error);
}

DdpgConfig agent_config() {
  DdpgConfig config;
  config.state_dim = 4;
  config.action_dim = 3;
  config.actor_hidden = {16, 16};
  config.critic_hidden = {16, 16};
  return config;
}

TEST_F(CheckpointTest, AgentActorRoundTrip) {
  DdpgAgent trained(agent_config(), 7);
  trained.save_actor(path_);
  DdpgAgent fresh(agent_config(), 99);  // different init
  const std::vector<double> state = {0.1, -0.2, 0.3, -0.4};
  const auto before = fresh.act(state);
  fresh.load_actor(path_);
  const auto after = fresh.act(state);
  const auto reference = trained.act(state);
  // Restored policy is bit-identical to the trained one.
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_DOUBLE_EQ(after[i], reference[i]);
  // ...and different from the fresh initialization.
  bool changed = false;
  for (std::size_t i = 0; i < before.size(); ++i)
    changed = changed || before[i] != after[i];
  EXPECT_TRUE(changed);
}

TEST_F(CheckpointTest, AgentRejectsWrongDims) {
  DdpgAgent trained(agent_config(), 7);
  trained.save_actor(path_);
  DdpgConfig other = agent_config();
  other.action_dim = 5;
  DdpgAgent mismatched(other, 1);
  EXPECT_DEATH(mismatched.load_actor(path_), "dims do not match");
}

}  // namespace
}  // namespace greennfv::rl
