#include "rl/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace greennfv::rl {
namespace {

Mlp small_net(Activation hidden_act, Rng& rng) {
  return Mlp(3, {{8, hidden_act}, {4, hidden_act}, {2, Activation::kLinear}},
             rng);
}

TEST(Mlp, ShapesAndParameterCount) {
  Rng rng(1);
  const Mlp net = small_net(Activation::kTanh, rng);
  EXPECT_EQ(net.input_dim(), 3u);
  EXPECT_EQ(net.output_dim(), 2u);
  EXPECT_EQ(net.num_layers(), 3u);
  // (3*8+8) + (8*4+4) + (4*2+2) = 32 + 36 + 10
  EXPECT_EQ(net.num_parameters(), 78u);
  const auto out = net.forward(std::vector<double>{0.1, -0.2, 0.3});
  EXPECT_EQ(out.size(), 2u);
}

TEST(Mlp, ParameterRoundTrip) {
  Rng rng(2);
  Mlp net = small_net(Activation::kRelu, rng);
  const auto params = net.parameters();
  Mlp other = small_net(Activation::kRelu, rng);  // different init
  other.set_parameters(params);
  const std::vector<double> x = {0.5, -1.0, 0.25};
  const auto a = net.forward(x);
  const auto b = other.forward(x);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[1], b[1]);
}

class GradientCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(GradientCheck, BackwardMatchesFiniteDifferences) {
  Rng rng(3);
  Mlp net = small_net(GetParam(), rng);
  const std::vector<double> x = {0.3, -0.7, 0.9};
  // Loss = sum(output): output_grad = ones.
  const std::vector<double> ones = {1.0, 1.0};

  Mlp::Workspace ws;
  (void)net.forward(x, ws);
  Mlp::Gradients grads = net.make_gradients();
  grads.zero();
  const auto input_grad = net.backward(ones, ws, grads);

  // Check dL/dinput against central differences.
  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x;
    auto xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const auto op = net.forward(xp);
    const auto om = net.forward(xm);
    const double fd =
        ((op[0] + op[1]) - (om[0] + om[1])) / (2.0 * eps);
    EXPECT_NEAR(input_grad[i], fd, 1e-5)
        << "input grad mismatch at dim " << i;
  }

  // Check a sampling of parameter gradients against finite differences.
  auto params = net.parameters();
  std::vector<std::size_t> probe = {0, 5, 17, 40, params.size() - 1};
  // Map flat parameter perturbations through set_parameters.
  for (const std::size_t p : probe) {
    auto plus = params;
    auto minus = params;
    plus[p] += eps;
    minus[p] -= eps;
    Mlp net_p = net;
    net_p.set_parameters(plus);
    Mlp net_m = net;
    net_m.set_parameters(minus);
    const auto op = net_p.forward(x);
    const auto om = net_m.forward(x);
    const double fd = ((op[0] + op[1]) - (om[0] + om[1])) / (2.0 * eps);
    // Locate the analytic gradient at the same flat offset.
    std::vector<double> flat_grads;
    for (std::size_t l = 0; l < grads.dw.size(); ++l) {
      flat_grads.insert(flat_grads.end(), grads.dw[l].flat().begin(),
                        grads.dw[l].flat().end());
      flat_grads.insert(flat_grads.end(), grads.db[l].begin(),
                        grads.db[l].end());
    }
    EXPECT_NEAR(flat_grads[p], fd, 1e-5) << "param grad mismatch at " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, GradientCheck,
                         ::testing::Values(Activation::kTanh,
                                           Activation::kSigmoid,
                                           Activation::kRelu));

TEST(Mlp, SoftUpdateBlends) {
  Rng rng(4);
  Mlp a = small_net(Activation::kTanh, rng);
  Mlp b = small_net(Activation::kTanh, rng);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  Mlp blended = b;
  blended.soft_update_from(a, 0.25);
  const auto pm = blended.parameters();
  for (std::size_t i = 0; i < pm.size(); ++i) {
    EXPECT_NEAR(pm[i], 0.25 * pa[i] + 0.75 * pb[i], 1e-12);
  }
  Mlp copied = b;
  copied.copy_from(a);
  const auto pc = copied.parameters();
  for (std::size_t i = 0; i < pc.size(); ++i) EXPECT_DOUBLE_EQ(pc[i], pa[i]);
}

TEST(Mlp, AdamFitsLinearRegression) {
  // y = 2x1 - 3x2 + 1, learnable by a linear "network".
  Rng rng(5);
  Mlp net(2, {{1, Activation::kLinear}}, rng);
  AdamOptimizer opt(net, 0.05);
  Rng data_rng(6);
  double final_loss = 1e9;
  for (int step = 0; step < 800; ++step) {
    Mlp::Gradients grads = net.make_gradients();
    grads.zero();
    double loss = 0.0;
    Mlp::Workspace ws;
    for (int i = 0; i < 16; ++i) {
      const std::vector<double> x = {data_rng.uniform(-1, 1),
                                     data_rng.uniform(-1, 1)};
      const double target = 2.0 * x[0] - 3.0 * x[1] + 1.0;
      const auto out = net.forward(x, ws);
      const double err = out[0] - target;
      loss += err * err;
      const double g[1] = {2.0 * err / 16.0};
      (void)net.backward(std::span<const double>(g, 1), ws, grads);
    }
    opt.step(net, grads);
    final_loss = loss / 16.0;
  }
  EXPECT_LT(final_loss, 1e-3);
  EXPECT_GT(opt.steps_taken(), 0);
}

TEST(Mlp, GradientsAddAndScale) {
  Rng rng(7);
  Mlp net = small_net(Activation::kTanh, rng);
  Mlp::Gradients a = net.make_gradients();
  a.zero();
  a.db[0][0] = 2.0;
  Mlp::Gradients b = net.make_gradients();
  b.zero();
  b.db[0][0] = 3.0;
  a.add(b);
  EXPECT_DOUBLE_EQ(a.db[0][0], 5.0);
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a.db[0][0], 2.5);
}

TEST(Mlp, RejectsBadShapes) {
  Rng rng(8);
  EXPECT_DEATH(Mlp(0, {{4, Activation::kTanh}}, rng), "zero input");
  EXPECT_DEATH(Mlp(4, {}, rng), "no layers");
  Mlp net = small_net(Activation::kTanh, rng);
  EXPECT_DEATH((void)net.forward(std::vector<double>{1.0}), "input dim");
}

TEST(ActivationNames, AllCovered) {
  EXPECT_EQ(to_string(Activation::kRelu), "relu");
  EXPECT_EQ(to_string(Activation::kTanh), "tanh");
  EXPECT_EQ(to_string(Activation::kLinear), "linear");
  EXPECT_EQ(to_string(Activation::kSigmoid), "sigmoid");
}

}  // namespace
}  // namespace greennfv::rl
