#include "rl/tensor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace greennfv::rl {
namespace {

TEST(Matrix, IndexingRowMajor) {
  Matrix m(2, 3);
  m(0, 0) = 1.0;
  m(0, 2) = 3.0;
  m(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.data()[2], 3.0);
  EXPECT_DOUBLE_EQ(m.data()[4], 5.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
}

TEST(Matrix, RowSpan) {
  Matrix m(2, 2);
  m(1, 0) = 7.0;
  m(1, 1) = 8.0;
  const auto row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 7.0);
  EXPECT_DOUBLE_EQ(row[1], 8.0);
}

TEST(Matrix, XavierBounds) {
  Rng rng(1);
  Matrix m(64, 64);
  m.xavier_init(rng);
  const double bound = std::sqrt(6.0 / 128.0);
  for (const double w : m.flat()) {
    EXPECT_GE(w, -bound);
    EXPECT_LE(w, bound);
  }
  // Not all zero.
  EXPECT_GT(norm2(m.flat()), 0.1);
}

TEST(Matrix, UniformInitBounds) {
  Rng rng(2);
  Matrix m(10, 10);
  m.uniform_init(rng, 3e-3);
  for (const double w : m.flat()) EXPECT_LE(std::fabs(w), 3e-3);
}

TEST(Kernels, MatvecKnownValues) {
  Matrix w(2, 3);
  // [1 2 3; 4 5 6] * [1;1;1] + [10;20] = [16;35]
  double vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(vals, vals + 6, w.data());
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> b = {10, 20};
  std::vector<double> y(2);
  matvec(w, x, b, y);
  EXPECT_DOUBLE_EQ(y[0], 16.0);
  EXPECT_DOUBLE_EQ(y[1], 35.0);
}

TEST(Kernels, MatvecTransposeKnownValues) {
  Matrix w(2, 3);
  double vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(vals, vals + 6, w.data());
  const std::vector<double> g = {1, 2};  // y-grad
  std::vector<double> xg(3);
  matvec_transpose(w, g, xg);
  // W^T g = [1+8, 2+10, 3+12]
  EXPECT_DOUBLE_EQ(xg[0], 9.0);
  EXPECT_DOUBLE_EQ(xg[1], 12.0);
  EXPECT_DOUBLE_EQ(xg[2], 15.0);
}

TEST(Kernels, OuterAccumulation) {
  Matrix dw(2, 2);
  const std::vector<double> g = {1, 2};
  const std::vector<double> x = {3, 4};
  accumulate_outer(dw, g, x);
  accumulate_outer(dw, g, x);  // accumulates, not overwrites
  EXPECT_DOUBLE_EQ(dw(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(dw(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(dw(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(dw(1, 1), 16.0);
}

TEST(Kernels, DotAxpyNorm) {
  const std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
}

}  // namespace
}  // namespace greennfv::rl
