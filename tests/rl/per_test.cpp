#include "rl/per.hpp"

#include <gtest/gtest.h>

#include <map>

namespace greennfv::rl {
namespace {

Transition make_transition(double tag) {
  Transition t;
  t.state = {tag};
  t.action = {0.0};
  t.reward = tag;
  t.next_state = {tag};
  return t;
}

TEST(SumTree, TotalTracksUpdates) {
  SumTree tree(8);
  EXPECT_DOUBLE_EQ(tree.total(), 0.0);
  tree.set(0, 1.0);
  tree.set(3, 2.0);
  tree.set(7, 0.5);
  EXPECT_DOUBLE_EQ(tree.total(), 3.5);
  tree.set(3, 0.0);  // overwrite
  EXPECT_DOUBLE_EQ(tree.total(), 1.5);
  EXPECT_DOUBLE_EQ(tree.get(0), 1.0);
  EXPECT_DOUBLE_EQ(tree.get(3), 0.0);
}

TEST(SumTree, PrefixFindsCorrectLeaf) {
  SumTree tree(4);
  tree.set(0, 1.0);
  tree.set(1, 2.0);
  tree.set(2, 3.0);
  tree.set(3, 4.0);
  // Cumulative: [0,1) -> 0, [1,3) -> 1, [3,6) -> 2, [6,10) -> 3.
  EXPECT_EQ(tree.find_prefix(0.5), 0u);
  EXPECT_EQ(tree.find_prefix(1.5), 1u);
  EXPECT_EQ(tree.find_prefix(4.0), 2u);
  EXPECT_EQ(tree.find_prefix(9.99), 3u);
}

class SumTreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SumTreeSizes, PrefixSamplingMatchesWeights) {
  const std::size_t n = GetParam();
  SumTree tree(n);
  Rng rng(5);
  std::vector<double> weights(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = rng.uniform(0.0, 2.0);
    tree.set(i, weights[i]);
    total += weights[i];
  }
  EXPECT_NEAR(tree.total(), total, 1e-9);
  // Empirical sampling frequencies should follow the weights.
  std::map<std::size_t, int> counts;
  const int draws = 50000;
  for (int d = 0; d < draws; ++d) {
    counts[tree.find_prefix(rng.uniform(0.0, total))] += 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = weights[i] / total;
    const double got = static_cast<double>(counts[i]) / draws;
    EXPECT_NEAR(got, expected, 0.02) << "leaf " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SumTreeSizes, ::testing::Values(3, 8, 17));

TEST(Per, HighPriorityIsSampledMoreOften) {
  PerConfig config;
  config.capacity = 64;
  config.alpha = 1.0;
  PrioritizedReplay replay(config);
  for (int i = 0; i < 20; ++i) replay.add(make_transition(i), 0.1);
  // Give entry 7 a huge priority.
  replay.update_priorities({7}, {100.0});
  Rng rng(6);
  int hits = 0;
  const int draws = 400;
  for (int d = 0; d < draws; ++d) {
    const Minibatch batch = replay.sample(4, rng);
    for (const auto idx : batch.indices)
      if (idx == 7) ++hits;
  }
  // Expected share is ~100/(100+19*0.1) ≈ 90%+ of draws include it.
  EXPECT_GT(hits, draws / 2);
}

TEST(Per, ImportanceWeightsNormalized) {
  PerConfig config;
  config.capacity = 32;
  PrioritizedReplay replay(config);
  for (int i = 0; i < 16; ++i) replay.add(make_transition(i), 0.0);
  replay.update_priorities({3}, {50.0});
  Rng rng(7);
  const Minibatch batch = replay.sample(8, rng);
  for (const double w : batch.weights) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0 + 1e-9);  // max-normalized
  }
}

TEST(Per, BetaAnnealsTowardOne) {
  PerConfig config;
  config.capacity = 16;
  config.beta = 0.4;
  config.beta_final = 1.0;
  config.beta_anneal_steps = 10;
  PrioritizedReplay replay(config);
  for (int i = 0; i < 8; ++i) replay.add(make_transition(i), 0.0);
  EXPECT_NEAR(replay.current_beta(), 0.4, 1e-9);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) (void)replay.sample(2, rng);
  EXPECT_NEAR(replay.current_beta(), 1.0, 1e-9);
}

TEST(Per, CapacityEvictionKeepsSizeBounded) {
  PerConfig config;
  config.capacity = 8;
  PrioritizedReplay replay(config);
  for (int i = 0; i < 50; ++i) replay.add(make_transition(i), 0.0);
  EXPECT_EQ(replay.size(), 8u);
}

TEST(Per, DecayOldestRemovesFromSampling) {
  PerConfig config;
  config.capacity = 8;
  config.alpha = 1.0;
  config.epsilon = 1e-9;  // keep decayed priorities ~0
  PrioritizedReplay replay(config);
  for (int i = 0; i < 8; ++i) replay.add(make_transition(i), 1.0);
  replay.decay_oldest(4);  // entries 0-3 become unsampleable
  Rng rng(9);
  for (int d = 0; d < 100; ++d) {
    const Minibatch batch = replay.sample(4, rng);
    for (const auto& t : batch.transitions) {
      EXPECT_GE(t.reward, 4.0);  // only the newer half remains
    }
  }
}

TEST(Per, NewSamplesGetMaxPriority) {
  PerConfig config;
  config.capacity = 16;
  config.alpha = 1.0;
  PrioritizedReplay replay(config);
  replay.add(make_transition(0), 0.0);
  replay.update_priorities({0}, {10.0});
  // A fresh add must inherit max priority (10), so it competes immediately.
  replay.add(make_transition(1), 0.0);
  Rng rng(10);
  int newcomer = 0;
  for (int d = 0; d < 200; ++d) {
    const Minibatch batch = replay.sample(1, rng);
    if (batch.transitions[0].reward == 1.0) ++newcomer;
  }
  EXPECT_GT(newcomer, 50);  // roughly half the draws
}

}  // namespace
}  // namespace greennfv::rl
