#include "rl/replay.hpp"

#include <gtest/gtest.h>

namespace greennfv::rl {
namespace {

Transition make_transition(double reward) {
  Transition t;
  t.state = {reward};
  t.action = {0.0};
  t.reward = reward;
  t.next_state = {reward + 1.0};
  return t;
}

TEST(UniformReplay, FillsThenEvictsOldest) {
  UniformReplay replay(4);
  for (int i = 0; i < 4; ++i) replay.add(make_transition(i), 0.0);
  EXPECT_EQ(replay.size(), 4u);
  replay.add(make_transition(99), 0.0);  // evicts reward=0
  EXPECT_EQ(replay.size(), 4u);
  Rng rng(1);
  bool saw_new = false;
  bool saw_old = false;
  for (int i = 0; i < 200; ++i) {
    const Minibatch batch = replay.sample(1, rng);
    if (batch.transitions[0].reward == 99.0) saw_new = true;
    if (batch.transitions[0].reward == 0.0) saw_old = true;
  }
  EXPECT_TRUE(saw_new);
  EXPECT_FALSE(saw_old);
}

TEST(UniformReplay, SampleShapesAndUnitWeights) {
  UniformReplay replay(16);
  for (int i = 0; i < 10; ++i) replay.add(make_transition(i), 0.0);
  Rng rng(2);
  const Minibatch batch = replay.sample(5, rng);
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch.indices.size(), 5u);
  for (const double w : batch.weights) EXPECT_DOUBLE_EQ(w, 1.0);
  for (const auto idx : batch.indices) EXPECT_LT(idx, 10u);
}

TEST(UniformReplay, SampleRequiresEnoughData) {
  UniformReplay replay(8);
  replay.add(make_transition(1), 0.0);
  Rng rng(3);
  EXPECT_DEATH((void)replay.sample(2, rng), "not enough data");
}

TEST(UniformReplay, UpdatePrioritiesIsNoOp) {
  UniformReplay replay(8);
  replay.add(make_transition(1), 0.0);
  replay.update_priorities({0}, {42.0});  // must not crash or change size
  EXPECT_EQ(replay.size(), 1u);
}

TEST(UniformReplay, CapacityReported) {
  UniformReplay replay(32);
  EXPECT_EQ(replay.capacity(), 32u);
  EXPECT_EQ(replay.size(), 0u);
}

}  // namespace
}  // namespace greennfv::rl
