#include "rl/ddpg.hpp"

#include <gtest/gtest.h>

#include "rl/per.hpp"
#include "tests/rl/toy_env.hpp"

namespace greennfv::rl {
namespace {

DdpgConfig toy_config() {
  DdpgConfig config;
  config.state_dim = 2;
  config.action_dim = 2;
  config.actor_hidden = {32, 32};
  config.critic_hidden = {32, 32};
  config.actor_lr = 1e-3;
  config.critic_lr = 2e-3;
  config.gamma = 0.5;
  config.batch_size = 32;
  return config;
}

TEST(Ddpg, ActionsBoundedByTanh) {
  DdpgAgent agent(toy_config(), 1);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> state = {rng.uniform(-1, 1),
                                       rng.uniform(-1, 1)};
    const auto action = agent.act(state);
    ASSERT_EQ(action.size(), 2u);
    for (const double a : action) {
      EXPECT_GE(a, -1.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST(Ddpg, NoisyActionsStayClamped) {
  DdpgAgent agent(toy_config(), 3);
  GaussianNoise noise(2, /*sigma=*/5.0);  // extreme noise
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto action =
        agent.act_noisy(std::vector<double>{0.0, 0.0}, noise, rng);
    for (const double a : action) {
      EXPECT_GE(a, -1.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST(Ddpg, DeterministicForSeed) {
  DdpgAgent a(toy_config(), 42);
  DdpgAgent b(toy_config(), 42);
  const std::vector<double> state = {0.3, -0.3};
  const auto act_a = a.act(state);
  const auto act_b = b.act(state);
  EXPECT_DOUBLE_EQ(act_a[0], act_b[0]);
  EXPECT_DOUBLE_EQ(act_a[1], act_b[1]);
}

TEST(Ddpg, LearnsTargetReachingPolicy) {
  // The headline algorithm test: after training on the toy bandit the
  // policy must map state≈target to action≈target.
  DdpgConfig config = toy_config();
  DdpgAgent agent(config, 7);
  testenv::TargetEnv env(2, 8, 7);
  UniformReplay replay(4096);
  GaussianNoise noise(2, 0.4, 0.999, 0.05);
  Rng rng(8);

  double early_reward = 0.0;
  double late_reward = 0.0;
  const int episodes = 220;
  for (int episode = 0; episode < episodes; ++episode) {
    auto state = env.reset(1000 + static_cast<std::uint64_t>(episode));
    bool done = false;
    double episode_reward = 0.0;
    int steps = 0;
    while (!done) {
      const auto action = agent.act_noisy(state, noise, rng);
      auto sr = env.step(action);
      Transition t;
      t.state = state;
      t.action = action;
      t.reward = sr.reward;
      t.next_state = sr.next_state;
      t.done = sr.done;
      replay.add(std::move(t), 0.0);
      episode_reward += sr.reward;
      state = std::move(sr.next_state);
      done = sr.done;
      ++steps;
      if (replay.size() >= config.batch_size * 2) {
        (void)agent.train_step(replay, rng);
      }
    }
    const double mean = episode_reward / steps;
    if (episode < 20) early_reward += mean / 20.0;
    if (episode >= episodes - 20) late_reward += mean / 20.0;
  }
  EXPECT_GT(late_reward, early_reward);
  EXPECT_GT(late_reward, 0.9);  // near-optimal (max 1.0)

  // Spot-check the learned mapping.
  const std::vector<double> probe = {0.25, -0.4};
  const auto action = agent.act(probe);
  EXPECT_NEAR(action[0], probe[0], 0.15);
  EXPECT_NEAR(action[1], probe[1], 0.15);
}

TEST(Ddpg, TrainStepReportsTdErrors) {
  DdpgConfig config = toy_config();
  DdpgAgent agent(config, 9);
  UniformReplay replay(256);
  Rng rng(10);
  testenv::TargetEnv env(2, 4, 11);
  auto state = env.reset(12);
  for (int i = 0; i < 100; ++i) {
    const auto action = agent.act(state);
    auto sr = env.step(action);
    Transition t;
    t.state = state;
    t.action = action;
    t.reward = sr.reward;
    t.next_state = sr.next_state;
    t.done = sr.done;
    replay.add(std::move(t), 0.0);
    state = sr.done ? env.reset(13 + static_cast<std::uint64_t>(i))
                    : std::move(sr.next_state);
  }
  const TrainStats stats = agent.train_step(replay, rng);
  EXPECT_EQ(stats.td_errors.size(), config.batch_size);
  EXPECT_EQ(stats.indices.size(), config.batch_size);
  EXPECT_GT(stats.critic_loss, 0.0);
  for (const double td : stats.td_errors) {
    EXPECT_GE(td, 0.0);
    EXPECT_LE(td, config.td_error_clip);
  }
  EXPECT_EQ(agent.train_steps(), 1);
}

TEST(Ddpg, WorksWithPrioritizedReplay) {
  DdpgConfig config = toy_config();
  DdpgAgent agent(config, 14);
  PerConfig per_config;
  per_config.capacity = 512;
  PrioritizedReplay replay(per_config);
  Rng rng(15);
  testenv::TargetEnv env(2, 4, 16);
  auto state = env.reset(17);
  for (int i = 0; i < 100; ++i) {
    const auto action = agent.act(state);
    auto sr = env.step(action);
    Transition t;
    t.state = state;
    t.action = action;
    t.reward = sr.reward;
    t.next_state = sr.next_state;
    t.done = sr.done;
    replay.add(std::move(t), 0.0);
    state = sr.done ? env.reset(18 + static_cast<std::uint64_t>(i))
                    : std::move(sr.next_state);
  }
  for (int step = 0; step < 10; ++step) {
    const TrainStats stats = agent.train_step(replay, rng);
    replay.update_priorities(stats.indices, stats.td_errors);
  }
  EXPECT_EQ(agent.train_steps(), 10);
}

TEST(Ddpg, ActorParameterTransfer) {
  DdpgAgent a(toy_config(), 19);
  DdpgAgent b(toy_config(), 20);
  const std::vector<double> state = {0.1, 0.2};
  b.set_actor_parameters(a.actor_parameters());
  const auto act_a = a.act(state);
  const auto act_b = b.act(state);
  EXPECT_DOUBLE_EQ(act_a[0], act_b[0]);
  EXPECT_DOUBLE_EQ(act_a[1], act_b[1]);
}

TEST(Ddpg, RejectsBadConfig) {
  DdpgConfig config = toy_config();
  config.state_dim = 0;
  EXPECT_DEATH(DdpgAgent(config, 1), "state dim");
  config = toy_config();
  config.gamma = 1.5;
  EXPECT_DEATH(DdpgAgent(config, 1), "gamma");
}

}  // namespace
}  // namespace greennfv::rl
