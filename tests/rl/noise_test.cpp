#include "rl/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace greennfv::rl {
namespace {

TEST(OuNoise, MeanRevertsToMu) {
  OuNoise noise(1, /*theta=*/0.5, /*sigma=*/0.0, /*dt=*/1.0, /*mu=*/0.0);
  Rng rng(1);
  // With zero sigma the process decays geometrically toward mu from any
  // excursion; with state starting at mu it stays there.
  const auto sample = noise.sample(rng);
  EXPECT_DOUBLE_EQ(sample[0], 0.0);
}

TEST(OuNoise, TemporallyCorrelated) {
  OuNoise noise(1, 0.15, 0.2);
  Rng rng(2);
  // Lag-1 autocorrelation of OU is positive and substantial.
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(noise.sample(rng)[0]);
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    num += (xs[i] - mean) * (xs[i - 1] - mean);
    den += (xs[i] - mean) * (xs[i] - mean);
  }
  EXPECT_GT(num / den, 0.5);
}

TEST(OuNoise, ResetReturnsToMu) {
  OuNoise noise(3, 0.15, 0.5);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) (void)noise.sample(rng);
  noise.reset();
  // Zero-sigma step after reset stays at mu=0 only if state was reset;
  // instead check that the immediate next sample is small relative to an
  // un-reset walk (statistical smoke test): state is exactly mu now.
  OuNoise quiet(3, 0.5, 0.0);
  Rng rng2(4);
  const auto s = quiet.sample(rng2);
  for (const double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GaussianNoise, SigmaDecaysToFloor) {
  GaussianNoise noise(2, /*sigma=*/1.0, /*decay=*/0.5, /*sigma_min=*/0.1);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) (void)noise.sample(rng);
  EXPECT_NEAR(noise.sigma(), 0.1, 1e-9);
  noise.reset();
  EXPECT_NEAR(noise.sigma(), 1.0, 1e-9);
}

TEST(GaussianNoise, SampleDimension) {
  GaussianNoise noise(5, 0.3);
  Rng rng(6);
  EXPECT_EQ(noise.sample(rng).size(), 5u);
}

TEST(GaussianNoise, MomentsMatchSigma) {
  GaussianNoise noise(1, 0.5, /*decay=*/1.0);
  Rng rng(7);
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = noise.sample(rng)[0];
    sq += x * x;
  }
  EXPECT_NEAR(std::sqrt(sq / n), 0.5, 0.02);
}

}  // namespace
}  // namespace greennfv::rl
