#include "rl/qlearning.hpp"

#include <gtest/gtest.h>

#include "tests/rl/toy_env.hpp"

namespace greennfv::rl {
namespace {

class DiscretizerLevels : public ::testing::TestWithParam<int> {};

TEST_P(DiscretizerLevels, EncodeDecodeStaysInCell) {
  const int levels = GetParam();
  Discretizer disc(3, levels);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> point = {rng.uniform(-1, 1), rng.uniform(-1, 1),
                                 rng.uniform(-1, 1)};
    const auto cell = disc.encode(point);
    EXPECT_LT(cell, disc.num_cells());
    const auto center = disc.decode(cell);
    // Re-encoding the center must give the same cell (idempotence).
    EXPECT_EQ(disc.encode(center), cell);
    // The center must be within half a cell width of the point.
    const double half_width = 1.0 / levels;
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_LE(std::fabs(center[d] - point[d]), half_width + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, DiscretizerLevels,
                         ::testing::Values(2, 3, 4, 7));

TEST(Discretizer, CellCount) {
  EXPECT_EQ(Discretizer(5, 3).num_cells(), 243u);  // the paper's O(k^5)
  EXPECT_EQ(Discretizer(2, 4).num_cells(), 16u);
}

TEST(Discretizer, BoundaryValues) {
  Discretizer disc(1, 4);
  EXPECT_EQ(disc.encode(std::vector<double>{-1.0}), 0u);
  EXPECT_EQ(disc.encode(std::vector<double>{1.0}), 3u);  // clamped inside
  EXPECT_EQ(disc.encode(std::vector<double>{-0.51}), 0u);
  EXPECT_EQ(disc.encode(std::vector<double>{-0.49}), 1u);
}

QLearningConfig toy_config() {
  QLearningConfig config;
  config.state_dim = 1;
  config.action_dim = 1;
  config.state_levels = 4;
  config.action_levels = 5;
  config.alpha = 0.3;
  config.gamma = 0.0;  // pure bandit
  config.epsilon = 1.0;
  config.epsilon_min = 0.05;
  config.epsilon_decay = 0.995;
  return config;
}

TEST(QLearning, LearnsContextualBandit) {
  // Reward = 1 - (a - s)^2: best discrete action tracks the state.
  QLearningAgent agent(toy_config(), 2);
  Rng rng(3);
  for (int step = 0; step < 8000; ++step) {
    const std::vector<double> state = {rng.uniform(-1, 1)};
    const auto action = agent.act(state);
    const double diff = action[0] - state[0];
    const double reward = 1.0 - diff * diff;
    agent.update(state, action, reward, state, true);
  }
  // Greedy policy should now choose the cell nearest the state.
  for (const double s : {-0.9, -0.3, 0.3, 0.9}) {
    const auto action = agent.act_greedy(std::vector<double>{s});
    EXPECT_NEAR(action[0], s, 0.45) << "state " << s;
  }
}

TEST(QLearning, EpsilonDecays) {
  QLearningAgent agent(toy_config(), 4);
  const double initial = agent.epsilon();
  for (int i = 0; i < 200; ++i) {
    agent.update(std::vector<double>{0.0}, std::vector<double>{0.0}, 0.0,
                 std::vector<double>{0.0}, true);
  }
  EXPECT_LT(agent.epsilon(), initial);
  EXPECT_GE(agent.epsilon(), 0.05);
}

TEST(QLearning, GreedyOnUnseenStateIsNeutral) {
  QLearningAgent agent(toy_config(), 5);
  const auto action = agent.act_greedy(std::vector<double>{0.77});
  EXPECT_DOUBLE_EQ(action[0], 0.0);  // mid-range fallback
}

TEST(QLearning, TableGrowsLazily) {
  QLearningAgent agent(toy_config(), 6);
  EXPECT_EQ(agent.table_entries(), 0u);
  (void)agent.act(std::vector<double>{0.5});
  EXPECT_LE(agent.table_entries(), 1u);
  EXPECT_EQ(agent.num_actions(), 5u);
}

TEST(QLearning, RejectsHugeActionSpace) {
  QLearningConfig config = toy_config();
  config.action_dim = 15;  // 5^15 actions — the paper's blow-up
  config.action_levels = 5;
  EXPECT_DEATH(QLearningAgent(config, 1), "too large");
}

}  // namespace
}  // namespace greennfv::rl
