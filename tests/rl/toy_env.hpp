#pragma once

#include <cmath>

#include "common/rng.hpp"
#include "rl/env.hpp"

/// \file toy_env.hpp
/// Tiny continuous-control environments for testing the RL stack without
/// the NFV simulator in the loop.

namespace greennfv::rl::testenv {

/// Contextual target-reaching bandit: the state encodes a target point in
/// [-0.5, 0.5]^d; reward = 1 - ||action - target||^2 / d. The optimal
/// policy is action = target, achievable exactly by a tanh actor.
class TargetEnv final : public Environment {
 public:
  TargetEnv(std::size_t dim, int steps_per_episode, std::uint64_t seed)
      : dim_(dim), steps_(steps_per_episode), rng_(seed) {}

  [[nodiscard]] std::size_t state_dim() const override { return dim_; }
  [[nodiscard]] std::size_t action_dim() const override { return dim_; }

  [[nodiscard]] std::vector<double> reset(std::uint64_t seed) override {
    rng_ = Rng(seed);
    step_count_ = 0;
    target_ = draw_target();
    return target_;
  }

  [[nodiscard]] StepResult step(std::span<const double> action) override {
    double err = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      const double d = action[i] - target_[i];
      err += d * d;
    }
    StepResult result;
    result.reward = 1.0 - err / static_cast<double>(dim_);
    target_ = draw_target();
    result.next_state = target_;
    result.done = ++step_count_ >= steps_;
    return result;
  }

 private:
  std::size_t dim_;
  int steps_;
  int step_count_ = 0;
  Rng rng_;
  std::vector<double> target_;

  std::vector<double> draw_target() {
    std::vector<double> t(dim_);
    for (double& v : t) v = rng_.uniform(-0.5, 0.5);
    return t;
  }
};

}  // namespace greennfv::rl::testenv
