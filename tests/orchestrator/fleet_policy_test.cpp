#include <gtest/gtest.h>

#include "orchestrator/policy.hpp"
#include "scenario/scenario_spec.hpp"

/// Placement-policy registry contract: each policy's choice on hand-built
/// fleet rosters, the consolidating policy's drain-or-nothing migration
/// plans, and registry name resolution (incl. the scenario-layer mirror
/// that lets campaign expansion validate fleet.policy up front).

namespace greennfv::orchestrator {
namespace {

NodeView node(double capacity, double committed, bool asleep = false) {
  NodeView view;
  view.capacity_cores = capacity;
  view.committed_cores = committed;
  view.asleep = asleep;
  return view;
}

/// Adds a hosted chain (id, cores) and bumps the commitment.
void host(NodeView& view, int id, double cores, double gbps = 1.0) {
  view.chains.push_back({id, cores, gbps});
}

TEST(FleetPolicy, FirstFitPicksLowestIndexWithRoom) {
  FleetView view;
  view.nodes = {node(4.0, 3.0), node(4.0, 0.0), node(4.0, 0.0)};
  const auto policy = make_fleet_policy("first-fit");
  EXPECT_EQ(policy->choose(view, 3.0), 1);  // node 0 is full for 3 cores
  EXPECT_EQ(policy->choose(view, 1.0), 0);  // but still takes 1 core
  EXPECT_EQ(policy->choose(view, 5.0), -1);  // nothing fits 5 cores
}

TEST(FleetPolicy, LeastLoadedSpreadsByUtilization) {
  FleetView view;
  view.nodes = {node(8.0, 4.0), node(8.0, 2.0), node(8.0, 6.0)};
  const auto policy = make_fleet_policy("least-loaded");
  EXPECT_EQ(policy->choose(view, 2.0), 1);
  // Nodes without room are excluded even when emptiest-looking.
  view.nodes[1].committed_cores = 7.5;
  EXPECT_EQ(policy->choose(view, 2.0), 0);
}

TEST(FleetPolicy, EnergyBestFitPacksTightAndAvoidsWaking) {
  FleetView view;
  view.nodes = {node(8.0, 2.0), node(8.0, 5.0), node(8.0, 0.0, true)};
  const auto policy = make_fleet_policy("energy-bestfit");
  // Tightest fit: node 1 has 3 free vs node 0's 6 free.
  EXPECT_EQ(policy->choose(view, 3.0), 1);
  // The sleeping empty node is never preferred while an awake node fits.
  EXPECT_EQ(policy->choose(view, 6.0), 0);
  // ...but is woken when nothing awake has room.
  EXPECT_EQ(policy->choose(view, 7.0), 2);
  view.nodes[2].asleep = false;
  EXPECT_EQ(policy->choose(view, 7.0), 2);
}

TEST(FleetPolicy, ConsolidateDrainsTheUnderutilizedNode) {
  FleetView view;
  view.nodes = {node(10.0, 8.0), node(10.0, 2.0), node(10.0, 0.0)};
  host(view.nodes[0], 0, 5.0);
  host(view.nodes[0], 1, 3.0);
  host(view.nodes[1], 2, 2.0);
  const auto policy = make_fleet_policy("consolidate");
  // Node 1 sits at 20% < 35%; its single chain fits on node 0.
  const auto plan = policy->consolidate(view, 0.35);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].chain, 2);
  EXPECT_EQ(plan[0].from, 1);
  EXPECT_EQ(plan[0].to, 0);
}

TEST(FleetPolicy, ConsolidateIsDrainOrNothing) {
  FleetView view;
  view.nodes = {node(10.0, 9.0), node(10.0, 3.0)};
  host(view.nodes[0], 0, 9.0);
  host(view.nodes[1], 1, 2.0);
  host(view.nodes[1], 2, 1.0);
  const auto policy = make_fleet_policy("consolidate");
  // Node 1 is underutilized but only one of its two chains would fit on
  // node 0 — a partial move saves nothing, so nothing moves.
  EXPECT_TRUE(policy->consolidate(view, 0.35).empty());
  // Make room and the whole node drains.
  view.nodes[0].committed_cores = 6.0;
  const auto plan = policy->consolidate(view, 0.35);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].from, 1);
  EXPECT_EQ(plan[1].from, 1);
}

TEST(FleetPolicy, ConsolidateNeverWakesOrTargetsEmptyNodes) {
  FleetView view;
  view.nodes = {node(10.0, 1.0), node(10.0, 0.0), node(10.0, 0.0, true)};
  host(view.nodes[0], 0, 1.0);
  const auto policy = make_fleet_policy("consolidate");
  // The only donor's chain has nowhere occupied to go: no plan — in
  // particular not onto the idle node 1 or the sleeping node 2.
  EXPECT_TRUE(policy->consolidate(view, 0.5).empty());
}

TEST(FleetPolicy, NonConsolidatingPoliciesNeverMigrate) {
  FleetView view;
  view.nodes = {node(10.0, 8.0), node(10.0, 1.0)};
  host(view.nodes[0], 0, 8.0);
  host(view.nodes[1], 1, 1.0);
  for (const char* name : {"first-fit", "least-loaded", "energy-bestfit"}) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(make_fleet_policy(name)->consolidate(view, 0.9).empty());
  }
}

TEST(FleetPolicy, RegistryResolvesEveryNameAndRejectsTypos) {
  for (const std::string& name : fleet_policy_names()) {
    SCOPED_TRACE(name);
    EXPECT_EQ(make_fleet_policy(name)->name(), name);
  }
  EXPECT_THROW((void)make_fleet_policy("best-fit"), std::invalid_argument);
  EXPECT_THROW((void)make_fleet_policy(""), std::invalid_argument);
}

TEST(FleetPolicy, ScenarioLayerMirrorsTheRegistryNames) {
  // scenario::FleetSpec validates fleet.policy before anything runs; the
  // two name lists must stay in lockstep.
  EXPECT_EQ(scenario::FleetSpec::policy_names(), fleet_policy_names());
}

}  // namespace
}  // namespace greennfv::orchestrator
