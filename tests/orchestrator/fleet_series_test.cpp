#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/fs_util.hpp"
#include "common/string_util.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/fleet_reference.hpp"
#include "orchestrator/fleet_series.hpp"
#include "scenario/presets.hpp"
#include "telemetry/series.hpp"

/// The per-window health series through both fleet engines. The
/// discrete-event engine and the frozen window-synchronous reference
/// must emit bit-identical series (they already agree on every window
/// aggregate the sampler reads), and the fault-smoke series is pinned as
/// a golden CSV so column semantics can't drift silently. Regenerate
/// deliberately with
///   GREENNFV_REGEN_GOLDEN=1 ./build/orchestrator_fleet_series_test

namespace greennfv {
namespace {

using orchestrator::FleetOrchestrator;
using orchestrator::build_reference_timeline;
using orchestrator::fleet_series_columns;

class FleetSeriesTest : public ::testing::Test {
 protected:
  void SetUp() override { telemetry::series::set_enabled(false); }
  void TearDown() override { telemetry::series::set_enabled(false); }
};

bool regen() { return std::getenv("GREENNFV_REGEN_GOLDEN") != nullptr; }

std::string golden_path(const std::string& name) {
  return std::string(GREENNFV_GOLDEN_DIR) + "/" + name + ".csv";
}

TEST_F(FleetSeriesTest, OffByDefault) {
  const FleetOrchestrator orchestrator(scenario::preset("fleet-smoke"));
  EXPECT_EQ(orchestrator.timeline().series, nullptr);
}

TEST_F(FleetSeriesTest, SchemaIsTheSharedColumnList) {
  telemetry::series::set_enabled(true);
  const FleetOrchestrator orchestrator(scenario::preset("fleet-smoke"));
  const auto& series = orchestrator.timeline().series;
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->columns(), fleet_series_columns());
  EXPECT_EQ(series->num_rows(),
            orchestrator.timeline().windows.size());
}

TEST_F(FleetSeriesTest, EventEngineMatchesReferenceEngineBitExact) {
  // Same contract as the timeline equivalence suite, extended to the
  // series: both engines sample identical per-window rows, compared here
  // as serialized %.17g text (bit-exact for every finite double).
  telemetry::series::set_enabled(true);
  for (const char* preset : {"fleet-smoke", "fault-smoke"}) {
    SCOPED_TRACE(preset);
    const scenario::ScenarioSpec spec = scenario::preset(preset);
    const FleetOrchestrator event_engine(spec);
    const orchestrator::FleetTimeline reference =
        build_reference_timeline(spec);
    ASSERT_NE(event_engine.timeline().series, nullptr);
    ASSERT_NE(reference.series, nullptr);
    EXPECT_EQ(event_engine.timeline().series->to_csv(),
              reference.series->to_csv());
  }
}

TEST_F(FleetSeriesTest, FaultSmokeSeriesMatchesGolden) {
  telemetry::series::set_enabled(true);
  const FleetOrchestrator orchestrator(scenario::preset("fault-smoke"));
  const auto& series = orchestrator.timeline().series;
  ASSERT_NE(series, nullptr);
  const std::string text = series->to_csv();
  const std::string path = golden_path("series_fault-smoke");
  if (regen()) {
    write_file_atomic(path, text);
    return;
  }
  ASSERT_TRUE(file_exists(path))
      << "missing golden " << path
      << " — run with GREENNFV_REGEN_GOLDEN=1 to capture it";
  const std::string want = read_file(path);
  if (text == want) return;
  const auto got_lines = split(text, '\n');
  const auto want_lines = split(want, '\n');
  std::size_t line = 0;
  while (line < got_lines.size() && line < want_lines.size() &&
         got_lines[line] == want_lines[line]) {
    ++line;
  }
  FAIL() << "series golden mismatch at line " << line + 1 << "\n  golden: "
         << (line < want_lines.size() ? want_lines[line] : "<eof>")
         << "\n  engine: "
         << (line < got_lines.size() ? got_lines[line] : "<eof>");
}

TEST_F(FleetSeriesTest, FaultSmokeSeriesIsNotDegenerate) {
  // Guards the golden against pinning an all-zero table: the fault cell
  // must actually put faults, churn, and energy into the series.
  telemetry::series::set_enabled(true);
  const FleetOrchestrator orchestrator(scenario::preset("fault-smoke"));
  const auto& series = orchestrator.timeline().series;
  ASSERT_NE(series, nullptr);
  ASSERT_GT(series->num_rows(), 0u);
  const auto column_sum = [&](const char* name) {
    const std::size_t col = series->column_index(name);
    double sum = 0.0;
    for (std::size_t r = 0; r < series->num_rows(); ++r) {
      sum += series->at(r, col);
    }
    return sum;
  };
  EXPECT_GT(column_sum("arrivals"), 0.0);
  EXPECT_GT(column_sum("live_chains"), 0.0);
  EXPECT_GT(column_sum("committed_cores"), 0.0);
  EXPECT_GT(column_sum("standby_energy_j"), 0.0);
  EXPECT_GT(column_sum("node_crashes"), 0.0);
  EXPECT_GT(column_sum("node_repairs"), 0.0);
  EXPECT_GT(column_sum("replacements") + column_sum("fault_dropped"), 0.0);
  EXPECT_GT(column_sum("downtime_s"), 0.0);
  // The t_s axis must be the window clock, strictly increasing.
  const std::size_t t_col = series->column_index("t_s");
  for (std::size_t r = 1; r < series->num_rows(); ++r) {
    ASSERT_GT(series->at(r, t_col), series->at(r - 1, t_col)) << r;
  }
}

}  // namespace
}  // namespace greennfv
