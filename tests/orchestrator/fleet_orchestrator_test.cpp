#include <gtest/gtest.h>

#include <cmath>

#include "orchestrator/fleet.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/presets.hpp"

/// FleetOrchestrator contract — the acceptance criteria of the fleet
/// subsystem: a static single-node fleet degenerates bit-identically to
/// ExperimentRunner; same seed => bit-identical fleet telemetry; the
/// pre-computed timeline is model-independent and internally consistent
/// (every migration/wake carries its downtime + energy charge, and the
/// per-window energy series decomposes exactly into node + standby +
/// charge energy); power gating saves idle energy on static fleets; and
/// oversubscribed fleets reject chains instead of failing.

namespace greennfv::orchestrator {
namespace {

/// ci-smoke geometry with the fleet block enabled. arrival_rate > 0 makes
/// it dynamic; 0 freezes it (the degeneration case).
scenario::ScenarioSpec fleet_spec(int nodes, double arrival_rate,
                                  const std::string& policy) {
  scenario::ScenarioSpec spec = scenario::preset("ci-smoke");
  spec.num_nodes = nodes;
  spec.fleet.enabled = true;
  spec.fleet.arrival_rate = arrival_rate;
  spec.fleet.policy = policy;
  spec.fleet.horizon_windows = 8;
  spec.fleet.mean_holding_windows = 3.0;
  spec.fleet.chain_offered_gbps = 3.0;
  spec.fleet.sleep_after_windows = 1;
  return spec;
}

void expect_eval_results_bit_identical(const core::EvalResult& a,
                                       const core::EvalResult& b) {
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.mean_gbps, b.mean_gbps);
  EXPECT_EQ(a.mean_energy_j, b.mean_energy_j);
  EXPECT_EQ(a.mean_power_w, b.mean_power_w);
  EXPECT_EQ(a.mean_efficiency, b.mean_efficiency);
  EXPECT_EQ(a.sla_satisfaction, b.sla_satisfaction);
  EXPECT_EQ(a.drop_fraction, b.drop_fraction);
  EXPECT_EQ(a.windows, b.windows);
}

TEST(FleetOrchestrator, StaticSingleNodeDegeneratesToExperimentRunner) {
  // nodes=1, no arrivals/departures, migration disabled: the fleet path
  // must reproduce the existing ExperimentRunner single-node numbers bit
  // for bit — including a trained model, so the factory seed discipline
  // is covered too.
  scenario::ScenarioSpec fleet_scenario = scenario::preset("ci-smoke");
  fleet_scenario.fleet.enabled = true;
  fleet_scenario.fleet.arrival_rate = 0.0;
  fleet_scenario.fleet.migration = false;

  scenario::ScenarioSpec static_scenario = fleet_scenario;
  static_scenario.fleet.enabled = false;

  const std::vector<scenario::SchedulerFactory> roster =
      scenario::filter_roster(
          scenario::default_roster(fleet_scenario),
          "baseline,heuristics,ee-pstate,q-learning");

  FleetOrchestrator orchestrator(fleet_scenario);
  const FleetReport fleet = orchestrator.run(roster);
  scenario::ExperimentRunner runner(static_scenario);
  const scenario::EvalReport golden = runner.run(roster);

  ASSERT_EQ(fleet.report.models.size(), golden.models.size());
  for (std::size_t m = 0; m < golden.models.size(); ++m) {
    SCOPED_TRACE(golden.models[m].result.scheduler);
    expect_eval_results_bit_identical(fleet.report.models[m].result,
                                      golden.models[m].result);
  }
  // The shared per-window series are bit-identical too.
  for (const auto& model : golden.models) {
    for (const char* series : {"throughput_gbps", "energy_j", "power_w",
                               "efficiency", "drop_fraction",
                               "offered_pps"}) {
      const std::string name = model.prefix + series;
      SCOPED_TRACE(name);
      ASSERT_TRUE(fleet.report.series.has(name));
      const TimeSeries& a = fleet.report.series.series(name);
      const TimeSeries& b = golden.series.series(name);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.times()[i], b.times()[i]);
        EXPECT_EQ(a.values()[i], b.values()[i]);
      }
    }
  }
  // Static fleet: nothing arrived beyond the initial set, nothing moved.
  EXPECT_EQ(fleet.departures, 0);
  EXPECT_EQ(fleet.migrations, 0);
  EXPECT_EQ(fleet.rejected, 0);
  EXPECT_EQ(fleet.standby_energy_j, 0.0);
}

TEST(FleetOrchestrator, SameSeedIsBitIdentical) {
  const scenario::ScenarioSpec spec =
      fleet_spec(3, /*arrival_rate=*/0.9, "consolidate");
  const std::vector<scenario::SchedulerFactory> roster =
      scenario::untrained_roster(spec);

  FleetOrchestrator a(spec);
  FleetOrchestrator b(spec);
  const FleetReport ra = a.run(roster);
  const FleetReport rb = b.run(roster);

  // Identical timelines...
  EXPECT_EQ(ra.arrivals, rb.arrivals);
  EXPECT_EQ(ra.departures, rb.departures);
  EXPECT_EQ(ra.migrations, rb.migrations);
  EXPECT_EQ(ra.wakeups, rb.wakeups);
  EXPECT_EQ(ra.standby_energy_j, rb.standby_energy_j);
  // ...and bit-identical telemetry, series by series, sample by sample.
  const auto names_a = ra.report.series.series_names();
  ASSERT_EQ(names_a, rb.report.series.series_names());
  for (const std::string& name : names_a) {
    const TimeSeries& sa = ra.report.series.series(name);
    const TimeSeries& sb = rb.report.series.series(name);
    ASSERT_EQ(sa.size(), sb.size()) << name;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa.times()[i], sb.times()[i]) << name;
      EXPECT_EQ(sa.values()[i], sb.values()[i]) << name;
    }
  }
}

TEST(FleetOrchestrator, DifferentSeedsChangeTheTimeline) {
  scenario::ScenarioSpec spec = fleet_spec(3, 0.9, "least-loaded");
  FleetOrchestrator a(spec);
  spec.seed = 1234567;
  FleetOrchestrator b(spec);
  // The canonical serialization pins the whole history (membership is
  // replayed from the per-window deltas).
  EXPECT_NE(timeline_to_text(a.timeline(), spec.num_nodes),
            timeline_to_text(b.timeline(), spec.num_nodes));
}

TEST(FleetOrchestrator, TimelineChargesAreConsistent) {
  // Churn-heavy: enough arrivals/departures that consolidation migrates
  // and power gating wakes (verified against this seed).
  scenario::ScenarioSpec spec = fleet_spec(3, 1.5, "consolidate");
  spec.fleet.horizon_windows = 12;
  FleetOrchestrator orchestrator(spec);
  const FleetTimeline& timeline = orchestrator.timeline();

  int migrations = 0;
  int wake_charges = 0;
  double migration_energy = 0.0;
  double wake_energy = 0.0;
  double downtime = 0.0;
  for (const auto& win : timeline.windows) {
    migrations += static_cast<int>(win.migrations.size());
    for (const DowntimeCharge& charge : win.charges) {
      downtime += charge.downtime_s;
      if (charge.kind == ChargeKind::kMigration) {
        EXPECT_EQ(charge.downtime_s, spec.fleet.migration_downtime_s);
        EXPECT_EQ(charge.energy_j, spec.fleet.migration_energy_j);
        migration_energy += charge.energy_j;
      } else {
        EXPECT_EQ(charge.downtime_s, spec.node.wake_latency_s);
        EXPECT_EQ(charge.energy_j,
                  spec.node.p_idle_w * spec.node.wake_latency_s);
        wake_energy += charge.energy_j;
        ++wake_charges;
      }
    }
    // Every migration carries exactly one migration charge.
    int migration_charges = 0;
    for (const DowntimeCharge& charge : win.charges)
      if (charge.kind == ChargeKind::kMigration) ++migration_charges;
    EXPECT_EQ(migration_charges, static_cast<int>(win.migrations.size()));
  }
  EXPECT_EQ(migrations, timeline.migrations);
  EXPECT_EQ(wake_charges, timeline.wakeups);
  EXPECT_EQ(migration_energy, timeline.migration_energy_j);
  EXPECT_EQ(wake_energy, timeline.wake_energy_j);
  EXPECT_EQ(downtime, timeline.downtime_s);
  // The consolidating policy on a churning 3-node fleet must actually
  // migrate and power gating must actually trigger — otherwise this test
  // exercises nothing.
  EXPECT_GT(timeline.migrations, 0);
  EXPECT_GT(timeline.wakeups, 0);
}

TEST(FleetOrchestrator, EnergySeriesDecomposesIntoNodeStandbyAndCharges) {
  scenario::ScenarioSpec spec = fleet_spec(3, 1.5, "consolidate");
  spec.fleet.horizon_windows = 12;
  FleetOrchestrator orchestrator(spec);
  const std::vector<scenario::SchedulerFactory> roster =
      scenario::filter_roster(scenario::untrained_roster(spec), "baseline");
  const FleetReport fleet = orchestrator.run(roster);
  const FleetTimeline& timeline = orchestrator.timeline();
  const std::string prefix = fleet.report.models[0].prefix;

  const TimeSeries& energy = fleet.report.series.series(prefix + "energy_j");
  ASSERT_EQ(energy.size(), timeline.windows.size());
  MembershipReplay replay(timeline, spec.num_nodes);
  for (std::size_t w = 0; w < timeline.windows.size(); ++w) {
    const auto& win = timeline.windows[w];
    replay.advance();
    // Recompute in the orchestrator's accumulation order: standby, then
    // node energies in node order, then the window's charge energy.
    double expected = win.standby_energy_j;
    for (int n = 0; n < replay.num_nodes(); ++n) {
      if (replay.members(n).empty()) continue;
      const std::string node_series =
          prefix + "node" + std::to_string(n) + "_energy_j";
      ASSERT_TRUE(fleet.report.series.has(node_series));
      const TimeSeries& node_energy =
          fleet.report.series.series(node_series);
      // Node series are sparse (only occupied windows); find the sample
      // at this window's time.
      const double t = energy.times()[w];
      bool found = false;
      for (std::size_t i = 0; i < node_energy.size(); ++i) {
        if (node_energy.times()[i] == t) {
          expected += node_energy.values()[i];
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << node_series << " missing t=" << t;
    }
    double charge_energy = 0.0;
    for (const DowntimeCharge& charge : win.charges)
      charge_energy += charge.energy_j;
    expected += charge_energy;
    if (win.active_nodes == 1 && win.standby_energy_j == 0.0 &&
        win.charges.empty()) {
      // Degenerate window: the solo node's outcome is used verbatim.
      EXPECT_DOUBLE_EQ(energy.values()[w], expected);
    } else {
      EXPECT_EQ(energy.values()[w], expected);
    }
  }
}

TEST(FleetOrchestrator, PowerGatingSleepsDrainedStaticNodes) {
  // 3 nodes, 2 static chains: one node never hosts anything. With gating
  // it idles sleep_after windows then sleeps — cheaper than the p_idle
  // forever that ExperimentRunner charges.
  scenario::ScenarioSpec spec = fleet_spec(3, 0.0, "least-loaded");
  spec.num_chains = 2;
  spec.num_flows = 4;
  spec.fleet.sleep_after_windows = 2;
  FleetOrchestrator orchestrator(spec);
  const FleetTimeline& timeline = orchestrator.timeline();

  const double window_s = spec.window_s;
  const int horizon = orchestrator.horizon();
  // Exactly one node is empty every window.
  double expected_standby = 0.0;
  for (int w = 0; w < horizon; ++w) {
    const auto& win = timeline.windows[static_cast<std::size_t>(w)];
    EXPECT_EQ(win.active_nodes, 2);
    EXPECT_EQ(win.idle_nodes + win.asleep_nodes, 1);
    // Gated after sleep_after_windows empty windows.
    if (w < spec.fleet.sleep_after_windows) {
      EXPECT_EQ(win.asleep_nodes, 0);
      expected_standby += spec.node.p_idle_w * window_s;
    } else {
      EXPECT_EQ(win.asleep_nodes, 1);
      expected_standby += spec.node.p_sleep_w * window_s;
    }
  }
  EXPECT_DOUBLE_EQ(timeline.standby_energy_j, expected_standby);
  // Strictly cheaper than the always-idle fleet ExperimentRunner models.
  EXPECT_LT(timeline.standby_energy_j,
            spec.node.p_idle_w * window_s * horizon);
}

TEST(FleetOrchestrator, OversubscribedFleetRejectsInsteadOfFailing) {
  // Five 3-core chains into one 14-core node: four fit, one is rejected.
  scenario::ScenarioSpec spec = fleet_spec(1, 0.0, "first-fit");
  spec.num_chains = 5;
  spec.num_flows = 5;
  FleetOrchestrator orchestrator(spec);
  EXPECT_EQ(orchestrator.timeline().rejected, 1);
  EXPECT_EQ(orchestrator.timeline().arrivals, 4);

  const std::vector<scenario::SchedulerFactory> roster =
      scenario::filter_roster(scenario::untrained_roster(spec), "baseline");
  const FleetReport fleet = orchestrator.run(roster);
  EXPECT_GT(fleet.report.models[0].result.mean_gbps, 0.0);
  // Occupancy histogram: one node hosting 4 chains every window.
  ASSERT_EQ(fleet.occupancy_fractions.size(), 5u);
  EXPECT_DOUBLE_EQ(fleet.occupancy_fractions[4], 1.0);
}

TEST(FleetOrchestrator, RequiresFleetEnabledAndRejectsStaticRunner) {
  scenario::ScenarioSpec spec = scenario::preset("ci-smoke");
  EXPECT_THROW((void)FleetOrchestrator(spec), std::invalid_argument);
  spec.fleet.enabled = true;
  EXPECT_THROW((void)scenario::ExperimentRunner(spec),
               std::invalid_argument);
}

TEST(FleetOrchestrator, HorizonDefaultsToEvalWindows) {
  scenario::ScenarioSpec spec = fleet_spec(2, 0.5, "least-loaded");
  spec.fleet.horizon_windows = 0;
  spec.eval_windows = 7;
  FleetOrchestrator orchestrator(spec);
  EXPECT_EQ(orchestrator.horizon(), 7);
  EXPECT_EQ(orchestrator.timeline().windows.size(), 7u);
}

TEST(FleetOrchestrator, DynamicFleetSeesArrivalsAndDepartures) {
  const scenario::ScenarioSpec spec = fleet_spec(3, 0.9, "least-loaded");
  FleetOrchestrator orchestrator(spec);
  const FleetTimeline& timeline = orchestrator.timeline();
  // Initial chains + Poisson arrivals over 8 windows at 0.9/window.
  EXPECT_GT(timeline.arrivals, spec.num_chains);
  // Holding 3 windows over an 8-window horizon: somebody left.
  EXPECT_GT(timeline.departures, 0);
  // Chains and flows stay in sync: the pool holds the initial workload
  // plus every *placed* dynamic chain's flows (rejected arrivals never
  // join it).
  std::size_t expected_flows = 0;
  for (const ChainInstance& chain : timeline.chains) {
    EXPECT_FALSE(chain.flows.empty());
    EXPECT_GT(chain.offered_gbps, 0.0);
    if (chain.id < spec.num_chains || chain.first_node >= 0)
      expected_flows += chain.flows.size();
  }
  EXPECT_EQ(expected_flows, timeline.flows.size());
}

}  // namespace
}  // namespace greennfv::orchestrator
