#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "orchestrator/fault.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/fleet_reference.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/presets.hpp"

/// Fault-injection determinism suite. The contract mirrors the rest of
/// the fleet engine: the fault schedule is a pure function of the
/// scenario, fault-enabled histories are bit-identical across engines and
/// across rebuilds, and fault.enabled=0 leaves every fault-free history
/// byte-identical — faults draw from their own salted RNG stream, so
/// turning them off cannot perturb the arrival/holding/flow draws.

namespace greennfv::orchestrator {
namespace {

/// A fault-heavy dynamic fleet: enough crashes, rack outages, storms, and
/// recovery pressure that any engine divergence shows up in the history.
scenario::ScenarioSpec fault_spec(const std::string& policy,
                                  std::uint64_t seed) {
  scenario::ScenarioSpec spec = scenario::preset("fault-smoke");
  spec.seed = seed;
  spec.num_nodes = 40;
  spec.fleet.policy = policy;
  spec.fleet.horizon_windows = 30;
  spec.fleet.arrival_rate = 6.0;
  spec.fleet.mean_holding_windows = 6.0;
  spec.fault.node_crash_rate = 0.4;
  spec.fault.rack_outage_rate = 0.1;
  spec.fault.rack_size = 4;
  spec.fault.mean_repair_windows = 3.0;
  spec.fault.wake_storm_prob = 0.2;
  return spec;
}

/// Same, with the fabric on and link failures firing: recovery must also
/// agree on re-routes, evictions, and failed-link energy.
scenario::ScenarioSpec link_fault_spec(const std::string& policy,
                                       std::uint64_t seed) {
  scenario::ScenarioSpec spec = fault_spec(policy, seed);
  spec.topology.enabled = true;
  spec.topology.preset = "leaf-spine";
  spec.topology.link_gbps = 8.0;
  spec.topology.core_gbps = 16.0;
  spec.latency_sla_us = 40.0;
  spec.fault.link_fail_rate = 0.3;
  return spec;
}

TEST(FleetFault, ScheduleIsPureFunctionOfScenario) {
  const scenario::ScenarioSpec spec = fault_spec("consolidate", 99);
  const FaultSchedule a = build_fault_schedule(spec, 30, spec.num_nodes, 0);
  const FaultSchedule b = build_fault_schedule(spec, 30, spec.num_nodes, 0);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  int crashes = 0;
  int repairs = 0;
  for (std::size_t w = 0; w < a.windows.size(); ++w) {
    ASSERT_EQ(a.windows[w].size(), b.windows[w].size()) << "window " << w;
    for (std::size_t i = 0; i < a.windows[w].size(); ++i) {
      EXPECT_TRUE(a.windows[w][i].kind == b.windows[w][i].kind &&
                  a.windows[w][i].target == b.windows[w][i].target)
          << "window " << w << " event " << i;
      if (a.windows[w][i].kind == FaultEvent::Kind::kNodeCrash) ++crashes;
      if (a.windows[w][i].kind == FaultEvent::Kind::kNodeRepair) ++repairs;
    }
  }
  EXPECT_EQ(a.wake_storm, b.wake_storm);
  // Totals agree with the expanded events, and the schedule actually
  // injects something at these rates.
  EXPECT_EQ(crashes, a.node_crashes);
  EXPECT_EQ(repairs, a.node_repairs);
  EXPECT_GT(a.node_crashes, 0);
  EXPECT_LE(a.node_repairs, a.node_crashes);
}

TEST(FleetFault, SameSeedFaultHistoryBitIdentical) {
  const scenario::ScenarioSpec spec = fault_spec("consolidate", 99);
  FleetOrchestrator a(spec);
  FleetOrchestrator b(spec);
  EXPECT_EQ(timeline_to_text(a.timeline(), spec.num_nodes),
            timeline_to_text(b.timeline(), spec.num_nodes));
  // The run must actually exercise crash, recovery, and storm machinery.
  EXPECT_GT(a.timeline().node_crashes, 0);
  EXPECT_GT(a.timeline().node_repairs, 0);
  EXPECT_GT(a.timeline().replaced, 0);
  EXPECT_GT(a.timeline().storm_windows, 0);
}

TEST(FleetFault, EventEngineMatchesReferenceWithFaults) {
  // Live engine equivalence with faults on, across every registry policy
  // and several seeds — the fault phase must interleave with departures,
  // arrivals, consolidation, and accounting identically on both engines.
  for (const std::string& policy : fleet_policy_names()) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const scenario::ScenarioSpec spec = fault_spec(policy, seed);
      FleetOrchestrator event_engine(spec);
      const FleetTimeline reference = build_reference_timeline(spec);
      EXPECT_EQ(timeline_to_text(event_engine.timeline(), spec.num_nodes),
                timeline_to_text(reference, spec.num_nodes))
          << "policy " << policy << " seed " << seed;
    }
  }
}

TEST(FleetFault, EventEngineMatchesReferenceWithLinkFailures) {
  // Same equivalence with the fabric on: link failures re-route or evict
  // riders, failed links leave routing and the energy sum, repairs bring
  // them back — identically on both engines.
  for (const char* policy : {"energy-bestfit", "topology-aware-bestfit",
                             "consolidate"}) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const scenario::ScenarioSpec spec = link_fault_spec(policy, seed);
      FleetOrchestrator event_engine(spec);
      const FleetTimeline reference = build_reference_timeline(spec);
      EXPECT_EQ(timeline_to_text(event_engine.timeline(), spec.num_nodes),
                timeline_to_text(reference, spec.num_nodes))
          << "policy " << policy << " seed " << seed;
      // At these rates the link-failure paths must actually fire.
      EXPECT_GT(event_engine.timeline().link_fails, 0)
          << "policy " << policy << " seed " << seed;
    }
  }
}

TEST(FleetFault, DisabledFaultsLeaveHistoryByteIdentical) {
  // fault.enabled=0 with every rate configured nonzero must produce the
  // exact bytes of the fault-free history: the fault stream is salted
  // separately, builds nothing when disabled, and every serializer block
  // is gated on fault_enabled. This is the guard that keeps all pre-fault
  // goldens valid forever.
  const scenario::ScenarioSpec plain = scenario::preset("fleet-smoke");
  scenario::ScenarioSpec armed = plain;
  armed.fault.node_crash_rate = 0.5;
  armed.fault.rack_outage_rate = 0.3;
  armed.fault.wake_storm_prob = 0.5;
  ASSERT_FALSE(armed.fault.enabled);
  FleetOrchestrator a(plain);
  FleetOrchestrator b(armed);
  EXPECT_EQ(timeline_to_text(a.timeline(), plain.num_nodes),
            timeline_to_text(b.timeline(), armed.num_nodes));
  EXPECT_FALSE(b.timeline().fault_enabled);
}

/// Byte-exact artifact serialization — same probe as fleet_determinism.
std::string artifacts_text(const campaign::CampaignReport& report) {
  std::string out;
  for (const campaign::RunResult& run : report.runs) {
    out += run.run_id + "\n";
    for (const scenario::ModelReport& model : run.report.models) {
      const core::EvalResult& r = model.result;
      out += model.prefix + " " + r.scheduler;
      for (const double v :
           {r.mean_gbps, r.mean_energy_j, r.mean_power_w,
            r.mean_efficiency, r.sla_satisfaction, r.drop_fraction}) {
        // Appended piecewise (GCC-12 -Wrestrict false positive on
        // "s" + std::string&&).
        out += ' ';
        out += double_bits(v);
      }
      out += "\n";
    }
    for (const std::string& name : run.report.series.series_names()) {
      const TimeSeries& series = run.report.series.series(name);
      out += name;
      for (std::size_t i = 0; i < series.size(); ++i) {
        out += ' ';
        out += double_bits(series.times()[i]);
        out += ':';
        out += double_bits(series.values()[i]);
      }
      out += "\n";
    }
  }
  return out;
}

TEST(FleetFault, FaultCampaignByteIdenticalAcrossJobCounts) {
  // A fault-enabled sweep (fault-smoke grid across policies and crash
  // rates) must produce identical bytes on one worker and eight — fault
  // expansion happens inside each run from its own seed, so parallel
  // interleavings cannot touch it.
  campaign::CampaignSpec spec;
  spec.name = "fleet-fault-determinism";
  spec.scenarios = {"fault-smoke"};
  spec.models = "baseline";
  spec.seeds = {1, 2};
  Config overrides;
  overrides.set("sweep.fleet.policy", "first-fit,consolidate");
  overrides.set("sweep.fault.node_crash_rate", "0.1,0.4");
  overrides.set("fleet.horizon", "6");
  spec.apply(overrides);

  campaign::CampaignRunner serial(spec);
  campaign::CampaignRunner parallel(spec);
  const campaign::CampaignReport a = serial.run(/*jobs=*/1);
  const campaign::CampaignReport b = parallel.run(/*jobs=*/8);
  EXPECT_EQ(a.executed, 8);
  EXPECT_EQ(a.failed, 0);
  EXPECT_EQ(artifacts_text(a), artifacts_text(b));
}

}  // namespace
}  // namespace greennfv::orchestrator
