#include <gtest/gtest.h>

#include "orchestrator/power_state.hpp"

/// Node power-state machine contract: Active/Idle/Asleep transitions, the
/// sleep_after threshold, standby power accounting (idle vs sleep draw),
/// and the wake charge (latency billed to the SLA, boot energy billed to
/// the fleet) when a placement lands on a gated node.

namespace greennfv::orchestrator {
namespace {

PowerStateConfig config() {
  PowerStateConfig cfg;
  cfg.p_idle_w = 60.0;
  cfg.p_sleep_w = 8.0;
  cfg.wake_latency_s = 3.0;
  cfg.sleep_after_windows = 2;
  cfg.gating = true;
  return cfg;
}

TEST(PowerState, GatesAfterTheIdleThreshold) {
  NodePowerStateMachine psm(config());
  EXPECT_EQ(psm.state(), NodePowerState::kIdle);
  // Two empty windows idle at p_idle, gating at the second window's edge.
  EXPECT_DOUBLE_EQ(psm.advance(false, 10.0), 600.0);
  EXPECT_EQ(psm.state(), NodePowerState::kIdle);
  EXPECT_DOUBLE_EQ(psm.advance(false, 10.0), 600.0);
  EXPECT_EQ(psm.state(), NodePowerState::kAsleep);
  // From the third empty window on the node draws sleep power.
  EXPECT_DOUBLE_EQ(psm.advance(false, 10.0), 80.0);
  EXPECT_EQ(psm.state(), NodePowerState::kAsleep);
}

TEST(PowerState, OccupancyResetsTheIdleCounter) {
  NodePowerStateMachine psm(config());
  (void)psm.advance(false, 10.0);
  // A hosted window in between: the idle streak starts over.
  EXPECT_DOUBLE_EQ(psm.advance(true, 10.0), 0.0);
  EXPECT_EQ(psm.state(), NodePowerState::kActive);
  (void)psm.advance(false, 10.0);
  EXPECT_EQ(psm.state(), NodePowerState::kIdle);  // 1 < sleep_after
  (void)psm.advance(false, 10.0);
  EXPECT_EQ(psm.state(), NodePowerState::kAsleep);
}

TEST(PowerState, WakeChargesLatencyAndBootEnergy) {
  NodePowerStateMachine psm(config());
  (void)psm.advance(false, 10.0);
  (void)psm.advance(false, 10.0);
  ASSERT_TRUE(psm.asleep());
  const auto charge = psm.activate();
  EXPECT_TRUE(charge.woke);
  EXPECT_DOUBLE_EQ(charge.downtime_s, 3.0);  // wake_latency_s
  EXPECT_DOUBLE_EQ(charge.energy_j, 180.0);  // p_idle_w * latency
  EXPECT_EQ(psm.state(), NodePowerState::kActive);
}

TEST(PowerState, ActivatingAnAwakeNodeIsFree) {
  NodePowerStateMachine psm(config());
  const auto idle_charge = psm.activate();
  EXPECT_FALSE(idle_charge.woke);
  EXPECT_DOUBLE_EQ(idle_charge.downtime_s, 0.0);
  EXPECT_DOUBLE_EQ(idle_charge.energy_j, 0.0);
  (void)psm.advance(true, 10.0);
  const auto active_charge = psm.activate();
  EXPECT_FALSE(active_charge.woke);
}

TEST(PowerState, GatingOffNeverSleeps) {
  PowerStateConfig cfg = config();
  cfg.gating = false;
  NodePowerStateMachine psm(cfg);
  for (int w = 0; w < 10; ++w) {
    EXPECT_DOUBLE_EQ(psm.advance(false, 10.0), 600.0);  // always idle draw
    EXPECT_EQ(psm.state(), NodePowerState::kIdle);
  }
}

}  // namespace
}  // namespace greennfv::orchestrator
