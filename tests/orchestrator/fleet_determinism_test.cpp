#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/fleet_reference.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/presets.hpp"

/// Determinism stress for the discrete-event fleet engine, at a scale no
/// golden file could pin (the serialized history would be megabytes):
/// a randomized 200-node fleet built twice from the same seed is
/// bit-identical; the event engine reproduces the window-synchronous
/// reference engine bit-for-bit across policies and seeds; and a fleet
/// campaign's artifacts are byte-identical whether the sweep ran on one
/// worker or eight.

namespace greennfv::orchestrator {
namespace {

scenario::ScenarioSpec stress_spec(int nodes, double arrival_rate,
                                   const std::string& policy,
                                   std::uint64_t seed) {
  scenario::ScenarioSpec spec = scenario::preset("fleet-smoke");
  spec.seed = seed;
  spec.num_nodes = nodes;
  spec.fleet.arrival_rate = arrival_rate;
  spec.fleet.policy = policy;
  spec.fleet.horizon_windows = 30;
  spec.fleet.mean_holding_windows = 6.0;
  return spec;
}

TEST(FleetDeterminism, TwoHundredNodeFleetSameSeedBitIdentical) {
  // ~1200 arrivals over 200 nodes with consolidation and power gating:
  // enough churn that any nondeterminism (iteration order, uninitialized
  // state, allocator-address dependence) diverges the serialized history.
  const scenario::ScenarioSpec spec =
      stress_spec(200, 40.0, "consolidate", 99);
  FleetOrchestrator a(spec);
  FleetOrchestrator b(spec);
  const std::string text_a = timeline_to_text(a.timeline(), spec.num_nodes);
  EXPECT_EQ(text_a, timeline_to_text(b.timeline(), spec.num_nodes));
  // The run must actually exercise the dynamic machinery.
  EXPECT_GT(a.timeline().arrivals, 1000);
  EXPECT_GT(a.timeline().departures, 0);
  EXPECT_GT(a.timeline().migrations, 0);
  EXPECT_GT(a.timeline().wakeups, 0);
}

TEST(FleetDeterminism, EventEngineMatchesReferenceEngineAcrossPolicies) {
  // Live equivalence against the preserved window-synchronous builder —
  // the same proof the golden files pin, but at 200 nodes x 30 windows
  // and across every registry policy and several seeds.
  for (const std::string& policy : fleet_policy_names()) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const scenario::ScenarioSpec spec =
          stress_spec(200, 25.0, policy, seed);
      FleetOrchestrator event_engine(spec);
      const FleetTimeline reference = build_reference_timeline(spec);
      EXPECT_EQ(timeline_to_text(event_engine.timeline(), spec.num_nodes),
                timeline_to_text(reference, spec.num_nodes))
          << "policy " << policy << " seed " << seed;
    }
  }
}

/// Byte-exact serialization of a campaign's run artifacts (results and
/// every telemetry sample, raw IEEE-754 bits included).
std::string campaign_artifacts_text(const campaign::CampaignReport& report) {
  std::string out;
  for (const campaign::RunResult& run : report.runs) {
    out += run.run_id + "\n";
    for (const scenario::ModelReport& model : run.report.models) {
      const core::EvalResult& r = model.result;
      out += model.prefix + " " + r.scheduler;
      for (const double v :
           {r.mean_gbps, r.mean_energy_j, r.mean_power_w,
            r.mean_efficiency, r.sla_satisfaction, r.drop_fraction}) {
        // Appended piecewise (GCC-12 -Wrestrict false positive on
        // "s" + std::string&&).
        out += ' ';
        out += double_bits(v);
      }
      out += "\n";
    }
    for (const std::string& name : run.report.series.series_names()) {
      const TimeSeries& series = run.report.series.series(name);
      out += name;
      for (std::size_t i = 0; i < series.size(); ++i) {
        out += ' ';
        out += double_bits(series.times()[i]);
        out += ':';
        out += double_bits(series.values()[i]);
      }
      out += "\n";
    }
  }
  return out;
}

TEST(FleetDeterminism, CampaignArtifactsAreByteIdenticalAcrossJobCounts) {
  campaign::CampaignSpec spec;
  spec.name = "fleet-determinism";
  spec.scenarios = {"fleet-smoke"};
  spec.models = "baseline";
  spec.seeds = {1, 2};
  Config overrides;
  overrides.set("sweep.fleet.policy", "first-fit,consolidate");
  overrides.set("fleet.horizon", "6");
  spec.apply(overrides);

  campaign::CampaignRunner serial(spec);
  campaign::CampaignRunner parallel(spec);
  const campaign::CampaignReport a = serial.run(/*jobs=*/1);
  const campaign::CampaignReport b = parallel.run(/*jobs=*/8);
  EXPECT_EQ(a.executed, 4);
  EXPECT_EQ(campaign_artifacts_text(a), campaign_artifacts_text(b));
}

}  // namespace
}  // namespace greennfv::orchestrator
