#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/fs_util.hpp"
#include "common/string_util.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/presets.hpp"

/// Golden equivalence suite. The files under tests/orchestrator/golden/
/// were captured from the PR 5 window-synchronous fleet engine BEFORE the
/// discrete-event refactor; every cell here asserts the current engine
/// reproduces that history bit-for-bit (doubles compared by raw IEEE-754
/// bit pattern, not rounded text). Regenerate deliberately with
///   GREENNFV_REGEN_GOLDEN=1 ./build/tests/orchestrator_fleet_golden_test
/// — only after proving equivalence some other way (the reference-engine
/// comparison in fleet_determinism_test covers live equivalence).

namespace greennfv {
namespace {

using orchestrator::FleetOrchestrator;
using orchestrator::FleetReport;
using orchestrator::eval_to_text;
using orchestrator::timeline_to_text;

bool regen() { return std::getenv("GREENNFV_REGEN_GOLDEN") != nullptr; }

std::string golden_path(const std::string& name) {
  return std::string(GREENNFV_GOLDEN_DIR) + "/" + name + ".txt";
}

/// Compares against the checked-in golden, reporting the first divergent
/// line (bit-exact text means any engine drift shows up here).
void expect_matches_golden(const std::string& name, const std::string& text) {
  const std::string path = golden_path(name);
  if (regen()) {
    write_file_atomic(path, text);
    return;
  }
  ASSERT_TRUE(file_exists(path))
      << "missing golden " << path
      << " — run with GREENNFV_REGEN_GOLDEN=1 to capture it";
  const std::string want = read_file(path);
  if (text == want) return;
  const auto got_lines = split(text, '\n');
  const auto want_lines = split(want, '\n');
  std::size_t line = 0;
  while (line < got_lines.size() && line < want_lines.size() &&
         got_lines[line] == want_lines[line]) {
    ++line;
  }
  FAIL() << "golden mismatch for " << name << " at line " << line + 1
         << "\n  golden: "
         << (line < want_lines.size() ? want_lines[line] : "<eof>")
         << "\n  engine: "
         << (line < got_lines.size() ? got_lines[line] : "<eof>");
}

struct Cell {
  std::string name;
  scenario::ScenarioSpec spec;
};

/// The pinned cells: the fleet-smoke preset under all four policies, a
/// churnier 5-node consolidation cell, and a wake-heavy cell that sleeps
/// aggressively so migrations land on gated nodes.
std::vector<Cell> timeline_cells() {
  std::vector<Cell> cells;
  cells.push_back({"fleet-smoke", scenario::preset("fleet-smoke")});
  for (const char* policy : {"first-fit", "least-loaded", "energy-bestfit"}) {
    Cell cell{std::string("fleet-smoke-") + policy,
              scenario::preset("fleet-smoke")};
    cell.spec.fleet.policy = policy;
    cells.push_back(std::move(cell));
  }
  {
    Cell cell{"fleet-churn", scenario::preset("fleet-smoke")};
    cell.spec.seed = 7;
    cell.spec.num_nodes = 5;
    cell.spec.fleet.horizon_windows = 24;
    cell.spec.fleet.arrival_rate = 1.5;
    cell.spec.fleet.mean_holding_windows = 4.0;
    cells.push_back(std::move(cell));
  }
  {
    Cell cell{"fleet-wake", scenario::preset("fleet-smoke")};
    cell.spec.seed = 3;
    cell.spec.num_nodes = 4;
    cell.spec.fleet.horizon_windows = 24;
    cell.spec.fleet.arrival_rate = 1.6;
    cell.spec.fleet.mean_holding_windows = 8.0;
    cell.spec.fleet.consolidate_below = 0.5;
    cell.spec.fleet.sleep_after_windows = 1;
    cells.push_back(std::move(cell));
  }
  {
    // PR 7: network fabric on. Leaf-spine routing with the topology-aware
    // policy and a latency SLA pins path hops/latency, link energy, and
    // the per-window net counters.
    Cell cell{"fleet-topo-leafspine", scenario::preset("fleet-smoke")};
    cell.spec.seed = 7;
    cell.spec.fleet.policy = "topology-aware-bestfit";
    cell.spec.topology.enabled = true;
    cell.spec.topology.preset = "leaf-spine";
    cell.spec.latency_sla_us = 40.0;
    cells.push_back(std::move(cell));
  }
  {
    // Starved fat-tree under widest routing: pins the net-rejection and
    // migration-veto paths (committed bandwidth must block placements).
    Cell cell{"fleet-topo-tight", scenario::preset("fleet-smoke")};
    cell.spec.seed = 11;
    cell.spec.num_nodes = 4;
    cell.spec.fleet.horizon_windows = 24;
    cell.spec.fleet.arrival_rate = 1.8;
    cell.spec.topology.enabled = true;
    cell.spec.topology.preset = "fat-tree";
    cell.spec.topology.routing = "widest";
    cell.spec.topology.link_gbps = 8.0;
    cell.spec.topology.core_gbps = 8.0;
    cells.push_back(std::move(cell));
  }
  return cells;
}

TEST(FleetGolden, TimelineMatchesWindowSynchronousEngine) {
  for (const auto& cell : timeline_cells()) {
    SCOPED_TRACE(cell.name);
    FleetOrchestrator orchestrator(cell.spec);
    expect_matches_golden(
        "timeline_" + cell.name,
        timeline_to_text(orchestrator.timeline(), cell.spec.num_nodes));
  }
}

TEST(FleetGolden, WakeCellExercisesPowerTransitions) {
  // Guards the fleet-wake golden against silently degenerating: it must
  // actually sleep nodes, wake them, and migrate chains.
  for (const auto& cell : timeline_cells()) {
    if (cell.name != "fleet-wake") continue;
    FleetOrchestrator orchestrator(cell.spec);
    const auto& timeline = orchestrator.timeline();
    EXPECT_GT(timeline.wakeups, 0);
    EXPECT_GT(timeline.migrations, 0);
    EXPECT_GT(timeline.standby_energy_j, 0.0);
  }
}

TEST(FleetGolden, EvalMatchesWindowSynchronousEngine) {
  // Full model evaluation over the pinned history: per-window series for
  // untrained models, bit-exact. Covers run_model (membership rebuilds,
  // standby accounting, downtime charges), not just the timeline builder.
  scenario::ScenarioSpec spec = scenario::preset("fleet-smoke");
  FleetOrchestrator orchestrator(spec);
  const FleetReport report = orchestrator.run(scenario::filter_roster(
      scenario::untrained_roster(spec), "baseline,ee-pstate"));
  expect_matches_golden("eval_fleet-smoke", eval_to_text(report));
}

TEST(FleetGolden, TopologyEvalMatchesPinnedHistory) {
  // Same eval-layer coverage with the fabric on: link energy folded into
  // the decomposition, path-latency series, and the conjunctive latency
  // SLA all pinned bit-exact.
  scenario::ScenarioSpec spec = scenario::preset("fleet-smoke");
  spec.seed = 7;
  spec.fleet.policy = "topology-aware-bestfit";
  spec.topology.enabled = true;
  spec.topology.preset = "leaf-spine";
  spec.latency_sla_us = 40.0;
  FleetOrchestrator orchestrator(spec);
  const FleetReport report = orchestrator.run(scenario::filter_roster(
      scenario::untrained_roster(spec), "baseline,ee-pstate"));
  expect_matches_golden("eval_fleet-topo-leafspine", eval_to_text(report));
}

}  // namespace
}  // namespace greennfv
