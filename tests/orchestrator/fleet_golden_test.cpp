#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/fs_util.hpp"
#include "common/string_util.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/presets.hpp"

/// Golden equivalence suite. The files under tests/orchestrator/golden/
/// were captured from the PR 5 window-synchronous fleet engine BEFORE the
/// discrete-event refactor; every cell here asserts the current engine
/// reproduces that history bit-for-bit (doubles compared by raw IEEE-754
/// bit pattern, not rounded text). Regenerate deliberately with
///   GREENNFV_REGEN_GOLDEN=1 ./build/tests/orchestrator_fleet_golden_test
/// — only after proving equivalence some other way (the reference-engine
/// comparison in fleet_determinism_test covers live equivalence).

namespace greennfv {
namespace {

using orchestrator::FleetOrchestrator;
using orchestrator::FleetReport;
using orchestrator::eval_to_text;
using orchestrator::timeline_to_text;

bool regen() { return std::getenv("GREENNFV_REGEN_GOLDEN") != nullptr; }

std::string golden_path(const std::string& name) {
  return std::string(GREENNFV_GOLDEN_DIR) + "/" + name + ".txt";
}

/// Compares against the checked-in golden, reporting the first divergent
/// line (bit-exact text means any engine drift shows up here).
void expect_matches_golden(const std::string& name, const std::string& text) {
  const std::string path = golden_path(name);
  if (regen()) {
    write_file_atomic(path, text);
    return;
  }
  ASSERT_TRUE(file_exists(path))
      << "missing golden " << path
      << " — run with GREENNFV_REGEN_GOLDEN=1 to capture it";
  const std::string want = read_file(path);
  if (text == want) return;
  const auto got_lines = split(text, '\n');
  const auto want_lines = split(want, '\n');
  std::size_t line = 0;
  while (line < got_lines.size() && line < want_lines.size() &&
         got_lines[line] == want_lines[line]) {
    ++line;
  }
  FAIL() << "golden mismatch for " << name << " at line " << line + 1
         << "\n  golden: "
         << (line < want_lines.size() ? want_lines[line] : "<eof>")
         << "\n  engine: "
         << (line < got_lines.size() ? got_lines[line] : "<eof>");
}

struct Cell {
  std::string name;
  scenario::ScenarioSpec spec;
};

/// The pinned cells: the fleet-smoke preset under all four policies, a
/// churnier 5-node consolidation cell, and a wake-heavy cell that sleeps
/// aggressively so migrations land on gated nodes.
std::vector<Cell> timeline_cells() {
  std::vector<Cell> cells;
  cells.push_back({"fleet-smoke", scenario::preset("fleet-smoke")});
  for (const char* policy : {"first-fit", "least-loaded", "energy-bestfit"}) {
    Cell cell{std::string("fleet-smoke-") + policy,
              scenario::preset("fleet-smoke")};
    cell.spec.fleet.policy = policy;
    cells.push_back(std::move(cell));
  }
  {
    Cell cell{"fleet-churn", scenario::preset("fleet-smoke")};
    cell.spec.seed = 7;
    cell.spec.num_nodes = 5;
    cell.spec.fleet.horizon_windows = 24;
    cell.spec.fleet.arrival_rate = 1.5;
    cell.spec.fleet.mean_holding_windows = 4.0;
    cells.push_back(std::move(cell));
  }
  {
    Cell cell{"fleet-wake", scenario::preset("fleet-smoke")};
    cell.spec.seed = 3;
    cell.spec.num_nodes = 4;
    cell.spec.fleet.horizon_windows = 24;
    cell.spec.fleet.arrival_rate = 1.6;
    cell.spec.fleet.mean_holding_windows = 8.0;
    cell.spec.fleet.consolidate_below = 0.5;
    cell.spec.fleet.sleep_after_windows = 1;
    cells.push_back(std::move(cell));
  }
  {
    // PR 7: network fabric on. Leaf-spine routing with the topology-aware
    // policy and a latency SLA pins path hops/latency, link energy, and
    // the per-window net counters.
    Cell cell{"fleet-topo-leafspine", scenario::preset("fleet-smoke")};
    cell.spec.seed = 7;
    cell.spec.fleet.policy = "topology-aware-bestfit";
    cell.spec.topology.enabled = true;
    cell.spec.topology.preset = "leaf-spine";
    cell.spec.latency_sla_us = 40.0;
    cells.push_back(std::move(cell));
  }
  {
    // Starved fat-tree under widest routing: pins the net-rejection and
    // migration-veto paths (committed bandwidth must block placements).
    Cell cell{"fleet-topo-tight", scenario::preset("fleet-smoke")};
    cell.spec.seed = 11;
    cell.spec.num_nodes = 4;
    cell.spec.fleet.horizon_windows = 24;
    cell.spec.fleet.arrival_rate = 1.8;
    cell.spec.topology.enabled = true;
    cell.spec.topology.preset = "fat-tree";
    cell.spec.topology.routing = "widest";
    cell.spec.topology.link_gbps = 8.0;
    cell.spec.topology.core_gbps = 8.0;
    cells.push_back(std::move(cell));
  }
  {
    // PR 9: fault injection on. The fault-smoke preset pins crashes,
    // exponential repairs, recovery re-placements, and storm-scaled wake
    // charges in the serialized history.
    cells.push_back({"fleet-fault-crash", scenario::preset("fault-smoke")});
  }
  {
    // Storm-heavy variant: most windows are wake storms, so the scaled
    // wake charge path dominates the downtime/energy decomposition.
    Cell cell{"fleet-fault-storm", scenario::preset("fault-smoke")};
    cell.spec.seed = 5;
    cell.spec.fault.node_crash_rate = 0.3;
    cell.spec.fault.wake_storm_prob = 0.5;
    cell.spec.fleet.sleep_after_windows = 1;
    cells.push_back(std::move(cell));
  }
  {
    // Correlated rack outages over a 6-node fleet in 3-node racks: pins
    // multi-node crashes landing in one window and whole-rack repair.
    Cell cell{"fleet-fault-rack", scenario::preset("fault-smoke")};
    cell.spec.seed = 13;
    cell.spec.num_nodes = 6;
    cell.spec.fleet.horizon_windows = 20;
    cell.spec.fleet.arrival_rate = 1.2;
    cell.spec.fault.node_crash_rate = 0.0;
    cell.spec.fault.rack_outage_rate = 0.3;
    cell.spec.fault.rack_size = 3;
    cells.push_back(std::move(cell));
  }
  {
    // Faults on a contended leaf-spine fabric: link failures re-route or
    // evict riders, failed links leave the routing table and the energy
    // sum, and recovery placements fight the latency SLA.
    Cell cell{"fleet-fault-linkfail", scenario::preset("fault-smoke")};
    cell.spec.seed = 7;
    cell.spec.num_nodes = 4;
    cell.spec.fleet.horizon_windows = 20;
    cell.spec.fleet.arrival_rate = 1.5;
    cell.spec.fleet.policy = "topology-aware-bestfit";
    cell.spec.topology.enabled = true;
    cell.spec.topology.preset = "leaf-spine";
    cell.spec.topology.link_gbps = 8.0;
    cell.spec.topology.core_gbps = 16.0;
    cell.spec.latency_sla_us = 40.0;
    cell.spec.fault.node_crash_rate = 0.1;
    cell.spec.fault.link_fail_rate = 0.4;
    cells.push_back(std::move(cell));
  }
  return cells;
}

TEST(FleetGolden, TimelineMatchesWindowSynchronousEngine) {
  for (const auto& cell : timeline_cells()) {
    SCOPED_TRACE(cell.name);
    FleetOrchestrator orchestrator(cell.spec);
    expect_matches_golden(
        "timeline_" + cell.name,
        timeline_to_text(orchestrator.timeline(), cell.spec.num_nodes));
  }
}

TEST(FleetGolden, WakeCellExercisesPowerTransitions) {
  // Guards the fleet-wake golden against silently degenerating: it must
  // actually sleep nodes, wake them, and migrate chains.
  for (const auto& cell : timeline_cells()) {
    if (cell.name != "fleet-wake") continue;
    FleetOrchestrator orchestrator(cell.spec);
    const auto& timeline = orchestrator.timeline();
    EXPECT_GT(timeline.wakeups, 0);
    EXPECT_GT(timeline.migrations, 0);
    EXPECT_GT(timeline.standby_energy_j, 0.0);
  }
}

TEST(FleetGolden, FaultCellsExerciseInjectionAndRecovery) {
  // Guards the fault goldens against silently degenerating: each pinned
  // fault cell must actually inject its headline fault kind and drive the
  // recovery machinery.
  for (const auto& cell : timeline_cells()) {
    if (cell.name.rfind("fleet-fault-", 0) != 0) continue;
    SCOPED_TRACE(cell.name);
    FleetOrchestrator orchestrator(cell.spec);
    const auto& timeline = orchestrator.timeline();
    EXPECT_TRUE(timeline.fault_enabled);
    if (cell.name == "fleet-fault-crash" || cell.name == "fleet-fault-storm") {
      EXPECT_GT(timeline.node_crashes, 0);
    }
    if (cell.name == "fleet-fault-storm") {
      EXPECT_GT(timeline.storm_windows, 0);
    }
    if (cell.name == "fleet-fault-rack") {
      EXPECT_GT(timeline.rack_outages, 0);
    }
    if (cell.name == "fleet-fault-linkfail") {
      EXPECT_GT(timeline.link_fails, 0);
    }
    EXPECT_GT(timeline.replaced + timeline.fault_dropped + timeline.rerouted,
              0);
  }
}

TEST(FleetGolden, EvalMatchesWindowSynchronousEngine) {
  // Full model evaluation over the pinned history: per-window series for
  // untrained models, bit-exact. Covers run_model (membership rebuilds,
  // standby accounting, downtime charges), not just the timeline builder.
  scenario::ScenarioSpec spec = scenario::preset("fleet-smoke");
  FleetOrchestrator orchestrator(spec);
  const FleetReport report = orchestrator.run(scenario::filter_roster(
      scenario::untrained_roster(spec), "baseline,ee-pstate"));
  expect_matches_golden("eval_fleet-smoke", eval_to_text(report));
}

TEST(FleetGolden, TopologyEvalMatchesPinnedHistory) {
  // Same eval-layer coverage with the fabric on: link energy folded into
  // the decomposition, path-latency series, and the conjunctive latency
  // SLA all pinned bit-exact.
  scenario::ScenarioSpec spec = scenario::preset("fleet-smoke");
  spec.seed = 7;
  spec.fleet.policy = "topology-aware-bestfit";
  spec.topology.enabled = true;
  spec.topology.preset = "leaf-spine";
  spec.latency_sla_us = 40.0;
  FleetOrchestrator orchestrator(spec);
  const FleetReport report = orchestrator.run(scenario::filter_roster(
      scenario::untrained_roster(spec), "baseline,ee-pstate"));
  expect_matches_golden("eval_fleet-topo-leafspine", eval_to_text(report));
}

TEST(FleetGolden, FaultEvalMatchesPinnedHistory) {
  // Eval-layer coverage with faults on: recovery re-placements and drops
  // rebuilt through the membership replay, replace/drop downtime charged
  // against traffic and SLA, storm-scaled wake energy in the bill — all
  // pinned bit-exact.
  scenario::ScenarioSpec spec = scenario::preset("fault-smoke");
  FleetOrchestrator orchestrator(spec);
  const FleetReport report = orchestrator.run(scenario::filter_roster(
      scenario::untrained_roster(spec), "baseline,ee-pstate"));
  expect_matches_golden("eval_fleet-fault-crash", eval_to_text(report));
}

}  // namespace
}  // namespace greennfv
