#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/fleet_reference.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"

/// Topology-enabled fleet equivalence: with the network fabric switched on
/// the discrete-event engine must still reproduce the window-synchronous
/// reference bit-for-bit — path admission, link release order, migration
/// vetoes, and link-energy accounting all have to agree across every
/// registry policy, preset, and routing mode.

namespace greennfv::orchestrator {
namespace {

scenario::ScenarioSpec topo_spec(const std::string& policy,
                                 std::uint64_t seed,
                                 const std::string& preset = "leaf-spine",
                                 const std::string& routing = "shortest") {
  scenario::ScenarioSpec spec = scenario::preset("fleet-smoke");
  spec.seed = seed;
  spec.num_nodes = 24;
  spec.fleet.arrival_rate = 6.0;
  spec.fleet.policy = policy;
  spec.fleet.horizon_windows = 20;
  spec.fleet.mean_holding_windows = 5.0;
  spec.topology.enabled = true;
  spec.topology.preset = preset;
  spec.topology.routing = routing;
  return spec;
}

TEST(FleetTopology, EventEngineMatchesReferenceAcrossPolicies) {
  for (const std::string& policy : fleet_policy_names()) {
    for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
      const scenario::ScenarioSpec spec = topo_spec(policy, seed);
      FleetOrchestrator event_engine(spec);
      const FleetTimeline reference = build_reference_timeline(spec);
      EXPECT_EQ(timeline_to_text(event_engine.timeline(), spec.num_nodes),
                timeline_to_text(reference, spec.num_nodes))
          << "policy " << policy << " seed " << seed;
      EXPECT_TRUE(event_engine.timeline().topology_enabled);
      EXPECT_GT(event_engine.timeline().routed_chain_windows, 0);
    }
  }
}

TEST(FleetTopology, EventEngineMatchesReferenceAcrossPresetsAndRouting) {
  for (const std::string& preset : topology::TopologySpec::preset_names()) {
    for (const std::string& routing :
         topology::TopologySpec::routing_names()) {
      scenario::ScenarioSpec spec =
          topo_spec("topology-aware-bestfit", 7, preset, routing);
      spec.num_nodes = 16;  // fat-tree fat_k=4 attaches at most 16 hosts
      FleetOrchestrator event_engine(spec);
      const FleetTimeline reference = build_reference_timeline(spec);
      EXPECT_EQ(timeline_to_text(event_engine.timeline(), spec.num_nodes),
                timeline_to_text(reference, spec.num_nodes))
          << preset << "/" << routing;
    }
  }
}

TEST(FleetTopology, TightFabricRejectsOversubscribedPlacements) {
  // Starve the fabric: host uplinks far below a single chain's offered
  // load, so every placement the policy proposes is net-infeasible.
  scenario::ScenarioSpec spec = topo_spec("energy-bestfit", 11);
  spec.topology.link_gbps = 0.05;
  spec.topology.core_gbps = 0.05;
  FleetOrchestrator event_engine(spec);
  const FleetTimeline reference = build_reference_timeline(spec);
  EXPECT_EQ(timeline_to_text(event_engine.timeline(), spec.num_nodes),
            timeline_to_text(reference, spec.num_nodes));
  EXPECT_GT(event_engine.timeline().net_rejected, 0);
  // A net-rejected chain never lands, so it can never be routed either.
  EXPECT_EQ(event_engine.timeline().routed_chain_windows, 0);
}

TEST(FleetTopology, LatencyBudgetGatesTheSlaColumn) {
  // edge-core paths cross several 10 us core links; a 5 us budget is
  // unsatisfiable, a 10 ms budget trivially holds.
  scenario::ScenarioSpec tight = topo_spec("energy-bestfit", 3, "edge-core");
  tight.latency_sla_us = 5.0;
  scenario::ScenarioSpec loose = tight;
  loose.latency_sla_us = 10'000.0;

  FleetOrchestrator tight_fleet(tight);
  FleetOrchestrator loose_fleet(loose);
  EXPECT_GT(tight_fleet.timeline().latency_violation_chain_windows, 0);
  EXPECT_EQ(loose_fleet.timeline().latency_violation_chain_windows, 0);

  const FleetReport tight_report =
      tight_fleet.run(scenario::default_roster(tight));
  const FleetReport loose_report =
      loose_fleet.run(scenario::default_roster(loose));
  EXPECT_LT(tight_report.latency_sla_satisfaction, 1.0);
  EXPECT_EQ(loose_report.latency_sla_satisfaction, 1.0);
  EXPECT_TRUE(tight_report.topology_enabled);
  EXPECT_GT(tight_report.link_energy_j, 0.0);
  EXPECT_GT(tight_report.mean_path_latency_us, 0.0);
}

TEST(FleetTopology, DisabledTopologyIsBitIdenticalToThePreTopologyEngine) {
  // topology.enabled=0 must leave the dynamics untouched: an explicit
  // disabled-topology spec and the untouched preset serialize identically.
  scenario::ScenarioSpec plain = scenario::preset("fleet-smoke");
  plain.seed = 5;
  scenario::ScenarioSpec annotated = plain;
  annotated.topology.preset = "fat-tree";  // inert while disabled
  annotated.topology.link_gbps = 0.001;
  FleetOrchestrator a(plain);
  FleetOrchestrator b(annotated);
  EXPECT_EQ(timeline_to_text(a.timeline(), plain.num_nodes),
            timeline_to_text(b.timeline(), annotated.num_nodes));
  EXPECT_FALSE(a.timeline().topology_enabled);
  EXPECT_EQ(a.timeline().net_rejected, 0);
  EXPECT_EQ(a.timeline().link_energy_j, 0.0);
}

/// Byte-exact serialization of a campaign's run artifacts (results and
/// every telemetry sample, raw IEEE-754 bits included).
std::string campaign_artifacts_text(const campaign::CampaignReport& report) {
  std::string out;
  for (const campaign::RunResult& run : report.runs) {
    out += run.run_id + "\n";
    for (const scenario::ModelReport& model : run.report.models) {
      const core::EvalResult& r = model.result;
      out += model.prefix + " " + r.scheduler;
      for (const double v :
           {r.mean_gbps, r.mean_energy_j, r.mean_power_w, r.mean_efficiency,
            r.sla_satisfaction, r.drop_fraction}) {
        out += " " + double_bits(v);
      }
      out += "\n";
    }
    for (const std::string& name : run.report.series.series_names()) {
      const TimeSeries& series = run.report.series.series(name);
      out += name;
      for (std::size_t i = 0; i < series.size(); ++i) {
        out += " " + double_bits(series.times()[i]) + ":" +
               double_bits(series.values()[i]);
      }
      out += "\n";
    }
  }
  return out;
}

TEST(FleetTopology, CampaignWithTopologyCellsIsByteIdenticalAcrossJobs) {
  campaign::CampaignSpec spec;
  spec.name = "topology-determinism";
  spec.scenarios = {"fleet-smoke"};
  spec.models = "baseline";
  spec.seeds = {1};
  Config overrides;
  overrides.set("topology.enabled", "1");
  overrides.set("sla.latency", "40");
  overrides.set("sweep.topology.preset", "single-rack,leaf-spine");
  overrides.set("sweep.fleet.policy", "energy-bestfit,topology-aware-bestfit");
  overrides.set("fleet.horizon", "6");
  spec.apply(overrides);

  campaign::CampaignRunner serial(spec);
  campaign::CampaignRunner parallel(spec);
  const campaign::CampaignReport a = serial.run(/*jobs=*/1);
  const campaign::CampaignReport b = parallel.run(/*jobs=*/8);
  EXPECT_EQ(a.executed, 4);
  EXPECT_EQ(campaign_artifacts_text(a), campaign_artifacts_text(b));
}

}  // namespace
}  // namespace greennfv::orchestrator
