#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "orchestrator/fleet.hpp"
#include "orchestrator/fleet_reference.hpp"
#include "orchestrator/timeline_io.hpp"
#include "scenario/presets.hpp"

/// Regression for the dirty-tracking blind spot: a node that power-gated
/// to Asleep is invisible to the event engine's incremental bookkeeping
/// until something touches it. When a migration then targets it, the
/// wake must charge its latency and boot energy exactly as the
/// window-synchronous engine did — and the engine must keep working off
/// a consistent index afterwards (the woken node is placeable again).
///
/// The registry policies never migrate onto a sleeping node, so the test
/// injects a custom policy through the orchestrator's policy seam. The
/// policy is view-based (index-unaware), which additionally pins the
/// materialize_view compatibility path inside the event engine.

namespace greennfv::orchestrator {
namespace {

/// Packs arrivals onto the lowest awake node so the tail of the fleet
/// drains and power-gates; then, on every consolidation pass where some
/// node sleeps, migrates the busiest node's first chain onto the lowest
/// sleeping node — the exact move the registry policies refuse to make.
class WakeOnMigratePolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "wake-on-migrate";
  }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    for (std::size_t n = 0; n < view.nodes.size(); ++n)
      if (!view.nodes[n].asleep && view.nodes[n].fits(cores))
        return static_cast<int>(n);
    for (std::size_t n = 0; n < view.nodes.size(); ++n)
      if (view.nodes[n].asleep && view.nodes[n].fits(cores))
        return static_cast<int>(n);
    return -1;
  }

  [[nodiscard]] std::vector<Migration> consolidate(
      const FleetView& view, double below) const override {
    (void)below;
    int sleeper = -1;
    for (std::size_t n = 0; n < view.nodes.size(); ++n) {
      if (view.nodes[n].asleep) {
        sleeper = static_cast<int>(n);
        break;
      }
    }
    if (sleeper < 0) return {};
    int donor = -1;
    std::size_t most = 1;  // needs >= 2 chains so the donor stays occupied
    for (std::size_t n = 0; n < view.nodes.size(); ++n) {
      if (view.nodes[n].asleep) continue;
      if (view.nodes[n].chains.size() > most) {
        most = view.nodes[n].chains.size();
        donor = static_cast<int>(n);
      }
    }
    if (donor < 0) return {};
    const ChainLoad& chain =
        view.nodes[static_cast<std::size_t>(donor)].chains.front();
    return {{chain.id, donor, sleeper}};
  }
};

scenario::ScenarioSpec wake_spec() {
  scenario::ScenarioSpec spec = scenario::preset("fleet-smoke");
  spec.seed = 5;
  spec.num_nodes = 4;
  spec.fleet.arrival_rate = 0.9;
  spec.fleet.horizon_windows = 16;
  spec.fleet.mean_holding_windows = 6.0;
  spec.fleet.sleep_after_windows = 1;
  return spec;
}

TEST(FleetWakeRegression, MigrationIntoSleepingNodeChargesWakeExactly) {
  const scenario::ScenarioSpec spec = wake_spec();
  FleetOrchestrator orchestrator(
      spec, std::make_unique<WakeOnMigratePolicy>());
  const FleetTimeline& timeline = orchestrator.timeline();

  // The scenario must actually hit the blind spot: at least one wake-up
  // caused by a migration (not an arrival).
  ASSERT_GT(timeline.migrations, 0);
  ASSERT_GT(timeline.wakeups, 0);

  int migration_wakes = 0;
  for (const FleetTimeline::Window& win : timeline.windows) {
    for (const Migration& move : win.migrations) {
      // A wake triggered by this migration shows up as a non-migration
      // charge for the same chain in the same window.
      for (const DowntimeCharge& charge : win.charges) {
        if (charge.chain != move.chain ||
            charge.kind == ChargeKind::kMigration)
          continue;
        // Arrival wakes also charge the arriving chain; only count the
        // charge when the chain is not among this window's arrivals.
        bool arrived_here = false;
        for (const int id : win.arrivals) {
          if (id == move.chain) arrived_here = true;
        }
        if (arrived_here) continue;
        ++migration_wakes;
        // The wake bills exactly the configured latency, and boots cost
        // energy (p_idle over the wake transition, per the power model).
        EXPECT_EQ(charge.downtime_s, spec.node.wake_latency_s);
        EXPECT_GT(charge.energy_j, 0.0);
      }
    }
  }
  EXPECT_GT(migration_wakes, 0)
      << "no migration ever targeted a sleeping node — the scenario no"
         " longer exercises the blind spot";
}

TEST(FleetWakeRegression, MigrationWakeMatchesWindowSynchronousEngine) {
  // Bit-identity under the injected policy: the event engine's dirty
  // tracking and index/power synchronization must reproduce the
  // reference engine's history exactly, including the wake charges.
  const scenario::ScenarioSpec spec = wake_spec();
  FleetOrchestrator event_engine(
      spec, std::make_unique<WakeOnMigratePolicy>());
  const WakeOnMigratePolicy reference_policy;
  const FleetTimeline reference =
      build_reference_timeline(spec, &reference_policy);
  EXPECT_EQ(timeline_to_text(event_engine.timeline(), spec.num_nodes),
            timeline_to_text(reference, spec.num_nodes));
}

}  // namespace
}  // namespace greennfv::orchestrator
