#include "topology/path_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"

// Property/fuzz coverage for the routing core: randomized fabrics, a
// brute-force DFS oracle for path optimality, and commit/release churn
// checking the link-commit conservation laws (0 <= committed <= capacity,
// committed == the sum of active contributions, exactly zero after every
// chain departs). All accounting is exact integer kbps, so "exactly" is a
// plain ==, not a tolerance.

namespace greennfv::topology {
namespace {

/// Random connected fabric: every host gets an edge link to a random
/// switch (guaranteeing reachability once switches connect), switches
/// chain 0-1-2-... plus random extra switch-switch links for path
/// diversity. Capacities/latencies are small integers via the quantizers.
Topology random_topology(Rng& rng, int hosts, int switches) {
  Topology t(hosts);
  std::vector<int> sw(static_cast<std::size_t>(switches));
  for (int s = 0; s < switches; ++s)
    sw[static_cast<std::size_t>(s)] = t.add_switch();
  t.set_ingress(sw[0]);
  for (int s = 1; s < switches; ++s) {
    t.add_link(sw[static_cast<std::size_t>(s - 1)],
               sw[static_cast<std::size_t>(s)],
               static_cast<double>(rng.uniform_int(5, 40)),
               static_cast<double>(rng.uniform_int(1, 10)), 1.0, 0.5);
  }
  const int extra = static_cast<int>(rng.uniform_u64(
      static_cast<std::uint64_t>(switches)));
  for (int e = 0; e < extra; ++e) {
    const int a = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(switches)));
    const int b = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(switches)));
    if (a == b) continue;
    t.add_link(sw[static_cast<std::size_t>(a)],
               sw[static_cast<std::size_t>(b)],
               static_cast<double>(rng.uniform_int(5, 40)),
               static_cast<double>(rng.uniform_int(1, 10)), 1.0, 0.5);
  }
  for (int h = 0; h < hosts; ++h) {
    const int s = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(switches)));
    t.add_link(h, sw[static_cast<std::size_t>(s)],
               static_cast<double>(rng.uniform_int(5, 40)),
               static_cast<double>(rng.uniform_int(1, 10)), 1.0, 0.5);
  }
  t.check();
  return t;
}

/// Exhaustive DFS over all simple paths ingress->host: the oracle for
/// "does a feasible path exist" and for the optimal (hops, bottleneck)
/// objective values under the current commitments.
struct Oracle {
  const Topology& topo;
  const PathTable& table;
  std::int64_t demand;
  int best_hops = std::numeric_limits<int>::max();
  std::int64_t best_bneck = 0;  // widest bottleneck over ALL paths
  std::int64_t best_bneck_at_min_hops = 0;
  bool found = false;

  void dfs(int v, int target, std::vector<char>& visited, int hops,
           std::int64_t bneck) {
    if (v == target) {
      found = true;
      best_bneck = std::max(best_bneck, bneck);
      if (hops < best_hops) {
        best_hops = hops;
        best_bneck_at_min_hops = bneck;
      } else if (hops == best_hops) {
        best_bneck_at_min_hops = std::max(best_bneck_at_min_hops, bneck);
      }
      return;
    }
    for (int link : topo.adjacency(v)) {
      const Link& l = topo.links()[static_cast<std::size_t>(link)];
      const std::int64_t free = l.capacity_kbps - table.committed_kbps(link);
      if (free < demand) continue;
      const int u = topo.other_end(link, v);
      if (visited[static_cast<std::size_t>(u)]) continue;
      visited[static_cast<std::size_t>(u)] = 1;
      dfs(u, target, visited, hops + 1, std::min(bneck, free));
      visited[static_cast<std::size_t>(u)] = 0;
    }
  }
};

Oracle run_oracle(const Topology& topo, const PathTable& table, int host,
                  double gbps) {
  Oracle oracle{topo, table, kbps_from_gbps(gbps)};
  std::vector<char> visited(static_cast<std::size_t>(topo.num_vertices()), 0);
  visited[static_cast<std::size_t>(topo.ingress())] = 1;
  oracle.dfs(topo.ingress(), host, visited,
             /*hops=*/0, std::numeric_limits<std::int64_t>::max());
  return oracle;
}

TEST(Routing, ShortestMatchesBruteForceOracleOnRandomFabrics) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const int hosts = static_cast<int>(rng.uniform_int(2, 6));
    const int switches = static_cast<int>(rng.uniform_int(2, 5));
    const Topology topo = random_topology(rng, hosts, switches);
    PathTable table(topo, Routing::kShortest, 0);
    // A few committed chains so free capacity differs from raw capacity.
    for (int c = 0; c < 3; ++c) {
      (void)table.commit_chain(
          c, static_cast<int>(rng.uniform_u64(
                 static_cast<std::uint64_t>(hosts))),
          static_cast<double>(rng.uniform_int(1, 6)));
    }
    const double gbps = static_cast<double>(rng.uniform_int(1, 8));
    for (int h = 0; h < hosts; ++h) {
      const PathView view = table.preview(h, gbps);
      const Oracle oracle = run_oracle(topo, table, h, gbps);
      ASSERT_EQ(view.feasible, oracle.found)
          << "trial " << trial << " host " << h;
      if (!view.feasible) continue;
      // Primary objective exact: minimum hops. Secondary (bottleneck
      // among min-hop paths) exact too — the lexicographic labels keep
      // the dominance property.
      EXPECT_EQ(view.hops, oracle.best_hops);
      EXPECT_EQ(view.bottleneck_kbps, oracle.best_bneck_at_min_hops);
    }
  }
}

TEST(Routing, WidestMatchesBruteForceOracleOnRandomFabrics) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const int hosts = static_cast<int>(rng.uniform_int(2, 6));
    const int switches = static_cast<int>(rng.uniform_int(2, 5));
    const Topology topo = random_topology(rng, hosts, switches);
    PathTable table(topo, Routing::kWidest, 0);
    for (int c = 0; c < 3; ++c) {
      (void)table.commit_chain(
          c, static_cast<int>(rng.uniform_u64(
                 static_cast<std::uint64_t>(hosts))),
          static_cast<double>(rng.uniform_int(1, 6)));
    }
    const double gbps = static_cast<double>(rng.uniform_int(1, 8));
    for (int h = 0; h < hosts; ++h) {
      const PathView view = table.preview(h, gbps);
      const Oracle oracle = run_oracle(topo, table, h, gbps);
      ASSERT_EQ(view.feasible, oracle.found);
      if (!view.feasible) continue;
      // Widest routing's primary objective: the maximum bottleneck over
      // every feasible path.
      EXPECT_EQ(view.bottleneck_kbps, oracle.best_bneck);
    }
  }
}

TEST(Routing, CommitReleaseChurnConservesLinkCommitments) {
  Rng rng(99);
  for (const Routing routing : {Routing::kShortest, Routing::kWidest}) {
    const Topology topo = random_topology(rng, 5, 4);
    PathTable table(topo, routing, 0);
    // demand per active chain, by chain id (-1 = inactive).
    std::vector<double> active_gbps;
    int committed_count = 0;
    for (int op = 0; op < 500; ++op) {
      const int id = static_cast<int>(rng.uniform_u64(40));
      if (static_cast<int>(active_gbps.size()) <= id)
        active_gbps.resize(static_cast<std::size_t>(id) + 1, -1.0);
      if (active_gbps[static_cast<std::size_t>(id)] < 0.0) {
        const double gbps = static_cast<double>(rng.uniform_int(1, 5));
        const int host = static_cast<int>(rng.uniform_u64(5));
        if (table.commit_chain(id, host, gbps)) {
          active_gbps[static_cast<std::size_t>(id)] = gbps;
          ++committed_count;
        }
      } else {
        table.release_chain(id);
        active_gbps[static_cast<std::size_t>(id)] = -1.0;
        --committed_count;
      }

      // Conservation, every op: per-link committed equals the sum of the
      // active chains' contributions and never exceeds capacity.
      std::vector<std::int64_t> expected(
          static_cast<std::size_t>(topo.num_links()), 0);
      for (int c = 0; c < static_cast<int>(active_gbps.size()); ++c) {
        if (active_gbps[static_cast<std::size_t>(c)] < 0.0) continue;
        ASSERT_TRUE(table.chain_active(c));
        for (int link : table.chain_links(c)) {
          expected[static_cast<std::size_t>(link)] +=
              kbps_from_gbps(active_gbps[static_cast<std::size_t>(c)]);
        }
      }
      for (int l = 0; l < topo.num_links(); ++l) {
        ASSERT_EQ(table.committed_kbps(l), expected[static_cast<std::size_t>(l)])
            << "op " << op << " link " << l;
        ASSERT_GE(table.committed_kbps(l), 0);
        ASSERT_LE(table.committed_kbps(l),
                  topo.links()[static_cast<std::size_t>(l)].capacity_kbps);
      }
      ASSERT_EQ(table.active_chains(), committed_count);
    }

    // Drain everything: every link must return to exactly zero.
    for (int c = 0; c < static_cast<int>(active_gbps.size()); ++c)
      table.release_chain(c);
    for (int l = 0; l < topo.num_links(); ++l)
      EXPECT_EQ(table.committed_kbps(l), 0);
    EXPECT_EQ(table.active_chains(), 0);
    EXPECT_EQ(table.active_path_latency_ns(), 0);
  }
}

TEST(Routing, TryMoveIsAtomicOnFailure) {
  // Two hosts behind one 10 Gbps pipe each, ingress in the middle; a
  // blocker on host 1 leaves no room, so moving chain 0 there must fail
  // and leave its original commitment untouched.
  Topology topo(2);
  const int sw = topo.add_switch();
  topo.set_ingress(sw);
  topo.add_link(0, sw, 10.0, 2.0, 1.0, 0.5);
  topo.add_link(1, sw, 10.0, 2.0, 1.0, 0.5);
  topo.check();
  PathTable table(topo, Routing::kShortest, 0);
  ASSERT_TRUE(table.commit_chain(0, 0, 6.0));
  ASSERT_TRUE(table.commit_chain(1, 1, 6.0));  // blocker
  const std::int64_t before0 = table.committed_kbps(0);
  const std::int64_t before1 = table.committed_kbps(1);
  EXPECT_FALSE(table.try_move(0, 1));
  EXPECT_EQ(table.committed_kbps(0), before0);
  EXPECT_EQ(table.committed_kbps(1), before1);
  EXPECT_TRUE(table.chain_active(0));
  EXPECT_EQ(table.chain_links(0).size(), 1u);
  // Release the blocker and the move succeeds; commitments follow.
  table.release_chain(1);
  EXPECT_TRUE(table.try_move(0, 1));
  EXPECT_EQ(table.committed_kbps(0), 0);
  EXPECT_EQ(table.committed_kbps(1), kbps_from_gbps(6.0));
}

TEST(Routing, TryMoveReusesItsOwnCapacity) {
  // One host, one 10 Gbps link carrying a 6 Gbps chain: re-routing the
  // chain to its own host must succeed — its own commitment is free
  // capacity for the re-route.
  Topology topo(1);
  const int sw = topo.add_switch();
  topo.set_ingress(sw);
  topo.add_link(0, sw, 10.0, 2.0, 1.0, 0.5);
  topo.check();
  PathTable table(topo, Routing::kShortest, 0);
  ASSERT_TRUE(table.commit_chain(0, 0, 6.0));
  EXPECT_TRUE(table.try_move(0, 0));
  EXPECT_EQ(table.committed_kbps(0), kbps_from_gbps(6.0));
}

TEST(Routing, LatencyBudgetCountsViolationsExactly) {
  // 2-hop path with 7 us total latency vs a 5 us budget.
  Topology topo(1);
  const int sw = topo.add_switch();
  const int gw = topo.add_switch();
  topo.set_ingress(gw);
  topo.add_link(0, sw, 10.0, 3.0, 1.0, 0.5);
  topo.add_link(sw, gw, 10.0, 4.0, 1.0, 0.5);
  topo.check();
  PathTable tight(topo, Routing::kShortest, ns_from_us(5.0));
  ASSERT_TRUE(tight.commit_chain(0, 0, 1.0));
  EXPECT_EQ(tight.active_latency_violations(), 1);
  EXPECT_EQ(tight.chain_latency_ns(0), ns_from_us(7.0));
  tight.release_chain(0);
  EXPECT_EQ(tight.active_latency_violations(), 0);

  PathTable loose(topo, Routing::kShortest, ns_from_us(10.0));
  ASSERT_TRUE(loose.commit_chain(0, 0, 1.0));
  EXPECT_EQ(loose.active_latency_violations(), 0);
}

TEST(Routing, WindowLinkEnergySumsIdleAndCarriedBits) {
  Topology topo(1);
  const int sw = topo.add_switch();
  topo.set_ingress(sw);
  topo.add_link(0, sw, 10.0, 2.0, /*idle_w=*/2.0, /*nj_per_bit=*/0.5);
  topo.check();
  PathTable table(topo, Routing::kShortest, 0);
  // Idle only: 2 W x 10 s.
  EXPECT_DOUBLE_EQ(table.window_link_energy_j(10.0), 20.0);
  // 4 Gbps committed: + 0.5 nJ/bit x 4e9 bit/s x 10 s = 20 J.
  ASSERT_TRUE(table.commit_chain(0, 0, 4.0));
  EXPECT_DOUBLE_EQ(table.window_link_energy_j(10.0), 40.0);
}

}  // namespace
}  // namespace greennfv::topology
