#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace greennfv::topology {
namespace {

TopologySpec spec_for(const std::string& preset) {
  TopologySpec spec;
  spec.enabled = true;
  spec.preset = preset;
  return spec;
}

TEST(Topology, SingleRackIsOneSwitchWithOneLinkPerHost) {
  const Topology t = Topology::build(spec_for("single-rack"), 5);
  EXPECT_EQ(t.num_hosts(), 5);
  EXPECT_EQ(t.num_switches(), 1);
  EXPECT_EQ(t.num_links(), 5);
  EXPECT_EQ(t.ingress(), 5);  // the ToR, first vertex after the hosts
  for (int h = 0; h < 5; ++h) EXPECT_EQ(t.adjacency(h).size(), 1u);
}

TEST(Topology, LeafSpineCountsMatchTheGeometry) {
  TopologySpec spec = spec_for("leaf-spine");
  spec.hosts_per_leaf = 2;
  spec.spines = 3;
  const Topology t = Topology::build(spec, 5);
  // ceil(5/2)=3 leaves + 3 spines + gateway.
  EXPECT_EQ(t.num_switches(), 7);
  // 5 host links + 3x3 leaf-spine + 3 gateway-spine.
  EXPECT_EQ(t.num_links(), 17);
  // Every host path is exactly 3 hops: host-leaf, leaf-spine,
  // spine-gateway.
  EXPECT_EQ(t.ingress(), t.num_vertices() - 1);
}

TEST(Topology, FatTreeCountsMatchTheGeometry) {
  TopologySpec spec = spec_for("fat-tree");
  spec.fat_k = 4;
  // k=4: 16-host capacity, 2 pods needed for 8 hosts.
  const Topology t = Topology::build(spec, 8);
  // 2 pods x (2 edge + 2 agg) + 4 cores + gateway.
  EXPECT_EQ(t.num_switches(), 13);
  // 8 host + 2x(2x2) edge-agg + 2x(2x2) agg-core + 4 gateway-core.
  EXPECT_EQ(t.num_links(), 28);
}

TEST(Topology, FatTreeRejectsMoreHostsThanItsCapacity) {
  TopologySpec spec = spec_for("fat-tree");
  spec.fat_k = 2;  // capacity k^3/4 = 2
  EXPECT_THROW(Topology::build(spec, 3), std::invalid_argument);
  EXPECT_NO_THROW(Topology::build(spec, 2));
}

TEST(Topology, EdgeCoreGatewayHangsOffCoreZeroOnly) {
  TopologySpec spec = spec_for("edge-core");
  spec.hosts_per_leaf = 2;
  spec.spines = 2;
  const Topology t = Topology::build(spec, 6);
  // 3 edges + 2 cores + gateway; gateway has exactly one link.
  EXPECT_EQ(t.num_switches(), 6);
  EXPECT_EQ(t.adjacency(t.ingress()).size(), 1u);
}

TEST(Topology, ConstructionIsDeterministic) {
  for (const std::string& preset : TopologySpec::preset_names()) {
    TopologySpec spec = spec_for(preset);
    const Topology a = Topology::build(spec, 7);
    const Topology b = Topology::build(spec, 7);
    ASSERT_EQ(a.num_links(), b.num_links()) << preset;
    for (int l = 0; l < a.num_links(); ++l) {
      EXPECT_EQ(a.links()[static_cast<std::size_t>(l)].a,
                b.links()[static_cast<std::size_t>(l)].a)
          << preset;
      EXPECT_EQ(a.links()[static_cast<std::size_t>(l)].b,
                b.links()[static_cast<std::size_t>(l)].b)
          << preset;
    }
  }
}

TEST(Topology, EveryPresetReachesEveryHost) {
  for (const std::string& preset : TopologySpec::preset_names()) {
    for (int hosts : {1, 3, 8}) {
      TopologySpec spec = spec_for(preset);
      if (preset == "fat-tree") spec.fat_k = 4;  // capacity 16
      EXPECT_NO_THROW(Topology::build(spec, hosts))
          << preset << " hosts=" << hosts;
    }
  }
}

TEST(Topology, ValidateRejectsUnknownNamesAndBadNumerics) {
  TopologySpec spec;
  spec.preset = "mesh";
  EXPECT_THROW(validate_spec(spec, 3), std::invalid_argument);
  spec = TopologySpec{};
  spec.routing = "ecmp";
  EXPECT_THROW(validate_spec(spec, 3), std::invalid_argument);
  spec = TopologySpec{};
  spec.link_gbps = 0.0;
  EXPECT_THROW(validate_spec(spec, 3), std::invalid_argument);
  spec = TopologySpec{};
  spec.fat_k = 3;  // odd
  EXPECT_THROW(validate_spec(spec, 3), std::invalid_argument);
  spec = TopologySpec{};
  spec.link_nj_per_bit = -0.1;
  EXPECT_THROW(validate_spec(spec, 3), std::invalid_argument);
  // Disabled specs still name-check (campaign cells fail at expansion)…
  spec = TopologySpec{};
  spec.enabled = false;
  spec.preset = "tor-mesh";
  EXPECT_THROW(validate_spec(spec, 3), std::invalid_argument);
  // …but the capacity-fit check binds only when enabled.
  spec = TopologySpec{};
  spec.preset = "fat-tree";
  spec.fat_k = 2;
  spec.enabled = false;
  EXPECT_NO_THROW(validate_spec(spec, 100));
  spec.enabled = true;
  EXPECT_THROW(validate_spec(spec, 100), std::invalid_argument);
}

TEST(Topology, CustomBuilderChecksEndpointsAndReachability) {
  Topology t(2);
  EXPECT_THROW(t.add_link(0, 0, 10, 1, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 9, 10, 1, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(t.check(), std::invalid_argument);  // no ingress yet
  const int sw = t.add_switch();
  t.set_ingress(sw);
  t.add_link(0, sw, 10, 1, 1, 0.1);
  EXPECT_THROW(t.check(), std::invalid_argument);  // host 1 unreachable
  t.add_link(1, sw, 10, 1, 1, 0.1);
  EXPECT_NO_THROW(t.check());
}

TEST(Topology, QuantizationIsExact) {
  EXPECT_EQ(kbps_from_gbps(40.0), 40'000'000);
  EXPECT_EQ(kbps_from_gbps(0.0005), 500);
  EXPECT_EQ(ns_from_us(5.0), 5'000);
  EXPECT_EQ(ns_from_us(0.25), 250);
}

}  // namespace
}  // namespace greennfv::topology
