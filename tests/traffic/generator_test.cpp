#include "traffic/generator.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace greennfv::traffic {
namespace {

TEST(Generator, EvalFlowsHitAggregateTarget) {
  const auto flows = make_eval_flows(5, 3, 12.0, 42);
  ASSERT_EQ(flows.size(), 5u);
  double gbps = 0.0;
  for (const auto& f : flows) gbps += f.mean_rate_gbps();
  EXPECT_NEAR(gbps, 12.0, 1e-6);
}

TEST(Generator, EvalFlowsSpreadOverChains) {
  const auto flows = make_eval_flows(5, 3, 12.0, 42);
  std::set<int> chains;
  for (const auto& f : flows) chains.insert(f.chain_index);
  EXPECT_EQ(chains.size(), 3u);
  for (const auto& f : flows) {
    EXPECT_GE(f.chain_index, 0);
    EXPECT_LT(f.chain_index, 3);
    EXPECT_GE(f.pkt_bytes, 64u);
    EXPECT_LE(f.pkt_bytes, 1518u);
  }
}

class EvalFlowSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvalFlowSeeds, AlwaysValid) {
  const auto flows = make_eval_flows(8, 3, 10.0, GetParam());
  for (const auto& f : flows) EXPECT_NO_THROW(validate(f));
  double gbps = 0.0;
  for (const auto& f : flows) gbps += f.mean_rate_gbps();
  EXPECT_NEAR(gbps, 10.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalFlowSeeds,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(Generator, LineRateFlowAccountsForFraming) {
  const FlowSpec flow = line_rate_flow(1518);
  // 10 Gbps over (1518+20)*8 wire bits.
  EXPECT_NEAR(flow.mean_rate_pps, 1e10 / ((1518 + 20) * 8.0), 1.0);
  const FlowSpec small = line_rate_flow(64);
  EXPECT_NEAR(small.mean_rate_pps, 1e10 / ((64 + 20) * 8.0), 1.0);
  EXPECT_NEAR(small.mean_rate_pps, 14.88e6, 0.01e6);  // the classic 14.88 Mpps
}

TEST(Generator, WindowsSumFlows) {
  std::vector<FlowSpec> flows = {line_rate_flow(1518)};
  FlowSpec second = line_rate_flow(64);
  second.id = 1;
  second.mean_rate_pps = 1e6;
  flows.push_back(second);
  TrafficGenerator gen(flows, 11);
  const WindowLoad load = gen.next_window(0.5);
  EXPECT_EQ(load.per_flow_pps.size(), 2u);
  EXPECT_NEAR(load.total_pps,
              load.per_flow_pps[0] + load.per_flow_pps[1], 1e-6);
  EXPECT_NEAR(gen.time_s(), 0.5, 1e-12);
}

TEST(Generator, TcpBacksOffOnDrops) {
  FlowSpec tcp;
  tcp.proto = Protocol::kTcp;
  tcp.arrival = ArrivalKind::kCbr;
  tcp.mean_rate_pps = 1e6;
  tcp.pkt_bytes = 512;
  TrafficGenerator gen({tcp}, 12);
  const double before = gen.next_window(0.1).per_flow_pps[0];
  gen.report_feedback(0, 0.5e6, 0.5e6);  // heavy drops
  const double after = gen.next_window(0.1).per_flow_pps[0];
  EXPECT_LT(after, before);
  // Recovery: several clean windows climb back.
  for (int i = 0; i < 10; ++i) gen.report_feedback(0, after, 0.0);
  const double recovered = gen.next_window(0.1).per_flow_pps[0];
  EXPECT_GT(recovered, after);
}

TEST(Generator, UdpIgnoresFeedback) {
  FlowSpec udp = line_rate_flow(512);
  TrafficGenerator gen({udp}, 13);
  const double before = gen.next_window(0.1).per_flow_pps[0];
  gen.report_feedback(0, 0.0, 1e6);
  const double after = gen.next_window(0.1).per_flow_pps[0];
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(Generator, ResetRestoresTime) {
  TrafficGenerator gen({line_rate_flow(512)}, 14);
  (void)gen.next_window(1.0);
  (void)gen.next_window(1.0);
  EXPECT_NEAR(gen.time_s(), 2.0, 1e-12);
  gen.reset(14);
  EXPECT_NEAR(gen.time_s(), 0.0, 1e-12);
}

TEST(Generator, ValidateRejectsBadSpecs) {
  FlowSpec bad = line_rate_flow(512);
  bad.pkt_bytes = 32;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = line_rate_flow(512);
  bad.mean_rate_pps = -1.0;
  EXPECT_THROW(validate(bad), std::invalid_argument);
  bad = line_rate_flow(512);
  bad.chain_index = -2;
  EXPECT_THROW(validate(bad), std::invalid_argument);
}

TEST(Generator, ProtocolAndKindNames) {
  EXPECT_EQ(to_string(Protocol::kUdp), "udp");
  EXPECT_EQ(to_string(ArrivalKind::kMmpp), "mmpp");
}

}  // namespace
}  // namespace greennfv::traffic
