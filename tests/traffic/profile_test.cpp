#include <gtest/gtest.h>

#include <stdexcept>

#include "traffic/generator.hpp"
#include "traffic/profile.hpp"

/// RateProfile: the macroscopic offered-load envelope. Steady must be
/// bit-transparent (scenario defaults cannot perturb existing numbers);
/// the shaped kinds must modulate the generator deterministically.

namespace greennfv::traffic {
namespace {

TEST(RateProfile, SteadyIsExactlyOne) {
  const RateProfile profile;
  for (const double t : {0.0, 1.5, 100.0, 1e6})
    EXPECT_EQ(profile.multiplier(t), 1.0);
}

TEST(RateProfile, DiurnalSwingsAroundOne) {
  RateProfile profile;
  profile.kind = RateProfile::Kind::kDiurnal;
  profile.period_s = 100.0;
  profile.amplitude = 0.5;
  EXPECT_NEAR(profile.multiplier(0.0), 1.0, 1e-12);
  EXPECT_NEAR(profile.multiplier(25.0), 1.5, 1e-12);  // peak at T/4
  EXPECT_NEAR(profile.multiplier(75.0), 0.5, 1e-12);  // trough at 3T/4
  // Long-run mean over a whole period is the nominal rate.
  double mean = 0.0;
  for (int i = 0; i < 1000; ++i) mean += profile.multiplier(i * 0.1) / 1000;
  EXPECT_NEAR(mean, 1.0, 1e-3);
}

TEST(RateProfile, BurstySquareWaveAlternates) {
  RateProfile profile;
  profile.kind = RateProfile::Kind::kBursty;
  profile.period_s = 10.0;
  profile.amplitude = 0.4;
  EXPECT_DOUBLE_EQ(profile.multiplier(1.0), 1.4);
  EXPECT_DOUBLE_EQ(profile.multiplier(6.0), 0.6);
  EXPECT_DOUBLE_EQ(profile.multiplier(11.0), 1.4);
}

TEST(RateProfile, FlashCrowdSurgesOnlyInsideItsWindow) {
  RateProfile profile;
  profile.kind = RateProfile::Kind::kFlashCrowd;
  profile.surge_start_s = 60.0;
  profile.surge_duration_s = 30.0;
  profile.surge_factor = 3.0;
  EXPECT_DOUBLE_EQ(profile.multiplier(59.9), 1.0);
  EXPECT_DOUBLE_EQ(profile.multiplier(60.0), 3.0);
  EXPECT_DOUBLE_EQ(profile.multiplier(89.9), 3.0);
  EXPECT_DOUBLE_EQ(profile.multiplier(90.0), 1.0);
}

TEST(RateProfile, ValidateRejectsBadParameters) {
  RateProfile profile;
  profile.kind = RateProfile::Kind::kDiurnal;
  profile.amplitude = 1.0;  // would allow zero/negative rates
  EXPECT_THROW(profile.validate(), std::invalid_argument);
  profile.amplitude = 0.5;
  profile.period_s = 0.0;
  EXPECT_THROW(profile.validate(), std::invalid_argument);

  RateProfile crowd;
  crowd.kind = RateProfile::Kind::kFlashCrowd;
  crowd.surge_factor = -1.0;
  EXPECT_THROW(crowd.validate(), std::invalid_argument);
}

TEST(RateProfile, NamesRoundTripAndRejectUnknown) {
  for (const auto kind :
       {RateProfile::Kind::kSteady, RateProfile::Kind::kDiurnal,
        RateProfile::Kind::kBursty, RateProfile::Kind::kFlashCrowd}) {
    EXPECT_EQ(profile_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW((void)profile_kind_from_string("lunar"),
               std::invalid_argument);
}

TEST(TrafficGenerator, ProfileModulatesOfferedLoadAndSurvivesReset) {
  FlowSpec flow;
  flow.mean_rate_pps = 1e6;
  flow.pkt_bytes = 512;
  flow.arrival = ArrivalKind::kCbr;

  RateProfile crowd;
  crowd.kind = RateProfile::Kind::kFlashCrowd;
  crowd.surge_start_s = 10.0;
  crowd.surge_duration_s = 10.0;
  crowd.surge_factor = 2.0;

  TrafficGenerator generator({flow}, 7);
  generator.set_rate_profile(crowd);
  EXPECT_DOUBLE_EQ(generator.next_window(1.0).total_pps, 1e6);  // t=0.5
  for (int i = 0; i < 10; ++i) (void)generator.next_window(1.0);
  EXPECT_DOUBLE_EQ(generator.next_window(1.0).total_pps, 2e6);  // t=11.5

  generator.reset(7);
  EXPECT_EQ(generator.rate_profile().kind,
            RateProfile::Kind::kFlashCrowd);
  EXPECT_DOUBLE_EQ(generator.next_window(1.0).total_pps, 1e6);
}

TEST(TrafficGenerator, AnchorRealignsEnvelopeClockToMeasurementStart) {
  FlowSpec flow;
  flow.mean_rate_pps = 1e6;
  flow.arrival = ArrivalKind::kCbr;

  RateProfile crowd;
  crowd.kind = RateProfile::Kind::kFlashCrowd;
  crowd.surge_start_s = 0.0;
  crowd.surge_duration_s = 5.0;
  crowd.surge_factor = 2.0;

  TrafficGenerator generator({flow}, 7);
  generator.set_rate_profile(crowd);
  // 8 warmup seconds run straight through (and past) the surge...
  for (int i = 0; i < 8; ++i) (void)generator.next_window(1.0);
  EXPECT_DOUBLE_EQ(generator.next_window(1.0).total_pps, 1e6);
  // ...but anchoring restarts the envelope: measurement sees the surge
  // from its own t=0, however long the warmup was.
  generator.anchor_rate_profile();
  EXPECT_DOUBLE_EQ(generator.next_window(1.0).total_pps, 2e6);
}

TEST(TrafficGenerator, PhasedAnchorJoinsAnExperimentMidway) {
  FlowSpec flow;
  flow.mean_rate_pps = 1e6;
  flow.arrival = ArrivalKind::kCbr;

  RateProfile crowd;
  crowd.kind = RateProfile::Kind::kFlashCrowd;
  crowd.surge_start_s = 10.0;
  crowd.surge_duration_s = 5.0;
  crowd.surge_factor = 2.0;

  // A freshly built generator (a fleet node rebuilt mid-run) whose
  // envelope clock is declared to read 11 s: its very first window sits
  // inside the surge — it joined the absolute load shape, not a private
  // restart of it.
  TrafficGenerator generator({flow}, 7);
  generator.set_rate_profile(crowd);
  generator.anchor_rate_profile(11.0);
  EXPECT_DOUBLE_EQ(generator.next_window(1.0).total_pps, 2e6);  // t=11.5
  for (int i = 0; i < 3; ++i) (void)generator.next_window(1.0);
  // ...and leaves the surge when the experiment does (t=15.5).
  EXPECT_DOUBLE_EQ(generator.next_window(1.0).total_pps, 1e6);
}

TEST(TrafficGenerator, SetRateProfileValidates) {
  TrafficGenerator generator({FlowSpec{}}, 7);
  RateProfile bad;
  bad.kind = RateProfile::Kind::kBursty;
  bad.amplitude = 2.0;
  EXPECT_THROW(generator.set_rate_profile(bad), std::invalid_argument);
}

}  // namespace
}  // namespace greennfv::traffic
