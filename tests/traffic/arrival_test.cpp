#include "traffic/arrival.hpp"

#include <gtest/gtest.h>

namespace greennfv::traffic {
namespace {

TEST(Cbr, ExactRateEveryWindow) {
  CbrArrival cbr(1e6);
  Rng rng(1);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(cbr.rate_in_window(0.1, rng), 1e6);
  EXPECT_DOUBLE_EQ(cbr.mean_rate_pps(), 1e6);
}

TEST(Poisson, WindowMeanConverges) {
  PoissonArrival poisson(5e5);
  Rng rng(2);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += poisson.rate_in_window(0.01, rng);
  EXPECT_NEAR(sum / n, 5e5, 0.05 * 5e5);
}

TEST(Poisson, VariesBetweenWindows) {
  PoissonArrival poisson(1e4);
  Rng rng(3);
  const double first = poisson.rate_in_window(0.001, rng);
  bool varied = false;
  for (int i = 0; i < 50 && !varied; ++i)
    varied = poisson.rate_in_window(0.001, rng) != first;
  EXPECT_TRUE(varied);
}

class MmppShapes
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(MmppShapes, LongRunMeanMatches) {
  const auto [peak_to_mean, dwell] = GetParam();
  MmppArrival mmpp(1e6, peak_to_mean, dwell);
  Rng rng(4);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += mmpp.rate_in_window(0.05, rng);
  EXPECT_NEAR(sum / n, 1e6, 0.08 * 1e6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MmppShapes,
    ::testing::Values(std::make_pair(1.5, 0.2), std::make_pair(2.0, 0.5),
                      std::make_pair(3.0, 1.0)));

TEST(Mmpp, HighStateAboveLowState) {
  MmppArrival mmpp(1e6, 3.0, 0.5);
  EXPECT_DOUBLE_EQ(mmpp.high_rate_pps(), 3e6);
  EXPECT_DOUBLE_EQ(mmpp.low_rate_pps(), 0.0);  // 2*mean - high clamps at 0
  MmppArrival mild(1e6, 1.5, 0.5);
  EXPECT_DOUBLE_EQ(mild.high_rate_pps(), 1.5e6);
  EXPECT_DOUBLE_EQ(mild.low_rate_pps(), 0.5e6);
}

TEST(Mmpp, BurstyWindowsSpanStates) {
  MmppArrival mmpp(1e6, 3.0, 0.5);
  Rng rng(5);
  double lo = 1e18;
  double hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double r = mmpp.rate_in_window(0.05, rng);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_LT(lo, 0.5e6);  // touched the low phase
  EXPECT_GT(hi, 2.5e6);  // touched the high phase
}

TEST(OnOff, DutyCycleMatchesPeakToMean) {
  OnOffArrival onoff(1e6, 4.0, 0.2);
  Rng rng(6);
  int silent = 0;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double r = onoff.rate_in_window(0.01, rng);
    sum += r;
    if (r == 0.0) ++silent;
  }
  // On 1/4 of the time -> silent ~75% of short windows.
  EXPECT_NEAR(static_cast<double>(silent) / n, 0.75, 0.08);
  EXPECT_NEAR(sum / n, 1e6, 0.1 * 1e6);
}

TEST(Arrival, CloneIsIndependent) {
  MmppArrival original(1e6, 3.0, 0.5);
  Rng rng_a(7);
  Rng rng_b(7);
  auto copy = original.clone();
  // Original advances; the clone keeps its own phase state.
  (void)original.rate_in_window(1.0, rng_a);
  const double from_clone = copy->rate_in_window(1.0, rng_b);
  EXPECT_GE(from_clone, 0.0);
}

TEST(Arrival, RejectsBadParameters) {
  EXPECT_DEATH(CbrArrival(-1.0), "non-negative");
  EXPECT_DEATH(MmppArrival(1e6, 0.5, 0.5), "peak/mean");
  EXPECT_DEATH(MmppArrival(1e6, 2.0, 0.0), "dwell");
}

}  // namespace
}  // namespace greennfv::traffic
