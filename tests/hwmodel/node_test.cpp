#include "hwmodel/node.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace greennfv::hwmodel {
namespace {

ChainDeployment chain(double mpps, std::uint32_t pkt, double cores = 2.0,
                      double llc = 0.5) {
  ChainDeployment dep;
  dep.nfs = {nf_catalog::firewall(), nf_catalog::nat(),
             nf_catalog::router()};
  dep.workload.offered_pps = mpps * 1e6;
  dep.workload.pkt_bytes = pkt;
  dep.cores = cores;
  dep.llc_fraction = llc;
  dep.batch = 64;
  dep.dma_bytes = 2 * units::kMiB;
  return dep;
}

/// Cache-hungry variant (7 MiB of NF state): the Fig.-1-style chain whose
/// behaviour actually depends on its LLC slice.
ChainDeployment heavy_chain(double mpps, std::uint32_t pkt, double cores,
                            double llc) {
  ChainDeployment dep = chain(mpps, pkt, cores, llc);
  dep.nfs = {nf_catalog::ids(), nf_catalog::epc(), nf_catalog::router()};
  dep.dma_bytes = 16 * units::kMiB;
  return dep;
}

TEST(NodeModel, SingleChainBasics) {
  const NodeModel node;
  const auto eval = node.evaluate({chain(0.5, 512)});
  ASSERT_EQ(eval.chains.size(), 1u);
  EXPECT_GT(eval.total_goodput_gbps, 0.0);
  EXPECT_GT(eval.power_w, node.spec().p_idle_w);
  EXPECT_LE(eval.power_w, node.spec().p_max_w + 1e-9);
  EXPECT_GE(eval.utilization, 0.0);
  EXPECT_LE(eval.utilization, 1.0);
}

TEST(NodeModel, AggregateLineRateCapHolds) {
  const NodeModel node;
  // Three chains each offered ~6 Gbps of large frames: 18 Gbps offered
  // against a 10 Gbps NIC.
  const auto eval = node.evaluate({chain(0.5, 1518, 4.0, 0.33),
                                   chain(0.5, 1518, 4.0, 0.33),
                                   chain(0.5, 1518, 4.0, 0.33)});
  double wire = 0.0;
  for (const auto& c : eval.chains) wire += c.eval.wire_gbps;
  EXPECT_LE(wire, node.spec().line_rate_gbps + 1e-6);
  EXPECT_GT(eval.total_drop_pps, 0.0);
}

TEST(NodeModel, CatBeatsContentionWhenStarved) {
  const NodeModel node;
  // A hot cache-hungry chain plus two neighbours; CPU-bound regime.
  std::vector<ChainDeployment> chains = {
      heavy_chain(2.0, 256, 4.0, 0.8),
      chain(0.2, 1024, 1.0, 0.1),
      chain(0.2, 1024, 1.0, 0.1),
  };
  const auto with_cat = node.evaluate(chains, /*use_cat=*/true);
  const auto without = node.evaluate(chains, /*use_cat=*/false);
  EXPECT_LT(with_cat.chains[0].eval.miss_ratio,
            without.chains[0].eval.miss_ratio);
  EXPECT_LT(with_cat.chains[0].eval.cycles_per_pkt,
            without.chains[0].eval.cycles_per_pkt);
  EXPECT_GE(with_cat.chains[0].eval.service_pps,
            without.chains[0].eval.service_pps);
}

TEST(NodeModel, EnergyAttributionSumsToNodePower) {
  const NodeModel node;
  const auto eval = node.evaluate({chain(0.5, 512), chain(0.1, 1024)});
  double attributed = 0.0;
  for (const auto& c : eval.chains) attributed += c.power_w;
  // Per-chain power carries each chain's idle-core share (the manager's
  // share stays unattributed), so the sum is positive but below the node
  // total.
  EXPECT_LE(attributed, eval.power_w + 1e-6);
  EXPECT_GT(attributed, 0.0);
  // Both chains delivered packets, so both attributions are meaningful.
  for (const auto& c : eval.chains) EXPECT_GT(c.power_w, 0.0);
}

TEST(NodeModel, EnergyPerMpktFiniteWhenDelivering) {
  const NodeModel node;
  const auto eval = node.evaluate({chain(1.0, 512)});
  EXPECT_GT(eval.chains[0].energy_per_mpkt_j, 0.0);
  EXPECT_LT(eval.chains[0].energy_per_mpkt_j, 1e5);
}

TEST(NodeModel, PollModeCostsMoreThanHybridAtLowLoad) {
  const NodeModel node;
  auto idle_chain = chain(0.01, 512, 3.0);
  idle_chain.poll_mode = true;
  const auto poll = node.evaluate({idle_chain});
  idle_chain.poll_mode = false;
  const auto hybrid = node.evaluate({idle_chain});
  EXPECT_GT(poll.power_w, hybrid.power_w + 10.0);
  // Throughput identical: same knobs, same load.
  EXPECT_NEAR(poll.total_goodput_gbps, hybrid.total_goodput_gbps, 1e-9);
}

TEST(NodeModel, FrequencyLowersPowerAtFixedWork) {
  const NodeModel node;
  auto fast = chain(0.2, 512, 2.0);
  fast.freq_ghz = 2.1;
  fast.poll_mode = true;
  auto slow = fast;
  slow.freq_ghz = 1.2;
  const auto p_fast = node.evaluate({fast});
  const auto p_slow = node.evaluate({slow});
  EXPECT_LT(p_slow.power_w, p_fast.power_w);
}

TEST(NodeModel, EnergyForWindowScalesLinearly) {
  const NodeModel node;
  const auto eval = node.evaluate({chain(0.5, 512)});
  EXPECT_NEAR(eval.energy_j(10.0), eval.power_w * 10.0, 1e-9);
  EXPECT_NEAR(eval.energy_j(0.0), 0.0, 1e-12);
}

TEST(NodeModel, ManagerCoresAlwaysAccounted) {
  const NodeModel node;
  const auto eval = node.evaluate({chain(0.01, 512, 0.5)});
  // Allocated = chain cores + controller cores.
  EXPECT_NEAR(eval.allocated_cores, 0.5 + node.spec().controller_cores,
              1e-9);
}

TEST(NodeModel, RequiresAtLeastOneChain) {
  const NodeModel node;
  EXPECT_DEATH((void)node.evaluate({}), "no chains");
}

class LlcPartitionSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LlcPartitionSweep, HotChainPrefersBiggerSlice) {
  const NodeModel node;
  const auto [hot_fraction, cold_fraction] = GetParam();
  // C1-style hot cache-hungry chain and C2-style cold chain (Fig. 1).
  std::vector<ChainDeployment> chains = {
      heavy_chain(5.0, 64, 6.0, hot_fraction),
      chain(1.0, 128, 1.0, cold_fraction),
  };
  const auto eval = node.evaluate(chains);
  // Against the paper's Fig. 1: the (90,10) split should dominate the
  // (20,80) split for the hot chain.
  if (hot_fraction >= 0.9) {
    const auto starved = node.evaluate(
        {heavy_chain(5.0, 64, 6.0, 0.2), chain(1.0, 128, 1.0, 0.8)});
    EXPECT_GT(eval.chains[0].eval.goodput_pps,
              starved.chains[0].eval.goodput_pps);
    EXPECT_LT(eval.chains[0].eval.miss_ratio,
              starved.chains[0].eval.miss_ratio);
  }
  EXPECT_GT(eval.total_goodput_gbps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperFig1, LlcPartitionSweep,
    ::testing::Values(std::make_pair(0.9, 0.1), std::make_pair(0.7, 0.3),
                      std::make_pair(0.4, 0.6), std::make_pair(0.2, 0.8)));

}  // namespace
}  // namespace greennfv::hwmodel
