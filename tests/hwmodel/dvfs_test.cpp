#include "hwmodel/dvfs.hpp"

#include <gtest/gtest.h>

namespace greennfv::hwmodel {
namespace {

NodeSpec spec() { return NodeSpec{}; }

TEST(Dvfs, LadderMatchesPaperRange) {
  const DvfsController dvfs(spec());
  EXPECT_EQ(dvfs.num_pstates(), 10);  // 1.2 .. 2.1 step 0.1
  EXPECT_DOUBLE_EQ(dvfs.frequency_ghz(0), 1.2);
  EXPECT_NEAR(dvfs.frequency_ghz(dvfs.max_pstate()), 2.1, 1e-9);
}

TEST(Dvfs, SnapFindsNearest) {
  const DvfsController dvfs(spec());
  EXPECT_NEAR(dvfs.snap(1.234), 1.2, 1e-9);
  EXPECT_NEAR(dvfs.snap(1.26), 1.3, 1e-9);
  EXPECT_NEAR(dvfs.snap(0.5), 1.2, 1e-9);   // below range
  EXPECT_NEAR(dvfs.snap(9.9), 2.1, 1e-9);   // above range
}

TEST(Dvfs, StepUpDownClampAtEnds) {
  const DvfsController dvfs(spec());
  EXPECT_NEAR(dvfs.step_down(1.2), 1.2, 1e-9);
  EXPECT_NEAR(dvfs.step_up(2.1), 2.1, 1e-9);
  EXPECT_NEAR(dvfs.step_up(1.2), 1.3, 1e-9);
  EXPECT_NEAR(dvfs.step_down(2.1), 2.0, 1e-9);
}

TEST(Dvfs, PerformanceGovernorPinsMax) {
  DvfsController dvfs(spec());
  dvfs.set_governor(Governor::kPerformance);
  EXPECT_NEAR(dvfs.effective_frequency(0.0, 1.5), 2.1, 1e-9);
  EXPECT_NEAR(dvfs.effective_frequency(1.0, 1.5), 2.1, 1e-9);
}

TEST(Dvfs, PowersaveGovernorPinsMin) {
  DvfsController dvfs(spec());
  dvfs.set_governor(Governor::kPowersave);
  EXPECT_NEAR(dvfs.effective_frequency(1.0, 2.0), 1.2, 1e-9);
}

TEST(Dvfs, UserspaceHonoursTarget) {
  DvfsController dvfs(spec());
  dvfs.set_governor(Governor::kUserspace);
  dvfs.set_userspace_frequency(1.73);
  EXPECT_NEAR(dvfs.effective_frequency(0.9, 2.0), 1.7, 1e-9);
}

class OndemandLoads : public ::testing::TestWithParam<double> {};

TEST_P(OndemandLoads, MonotoneInLoad) {
  DvfsController dvfs(spec());
  dvfs.set_governor(Governor::kOndemand);
  const double load = GetParam();
  const double f = dvfs.effective_frequency(load, 1.2);
  const double f_higher = dvfs.effective_frequency(
      std::min(1.0, load + 0.2), 1.2);
  EXPECT_GE(f_higher + 1e-12, f);
  EXPECT_GE(f, 1.2);
  EXPECT_LE(f, 2.1);
  if (load >= 0.8) {  // up-threshold jump
    EXPECT_NEAR(f, 2.1, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, OndemandLoads,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.79, 0.8,
                                           1.0));

TEST(Dvfs, ConservativeMovesOneStep) {
  DvfsController dvfs(spec());
  dvfs.set_governor(Governor::kConservative);
  // High load from 1.5: exactly one step up.
  EXPECT_NEAR(dvfs.effective_frequency(1.0, 1.5), 1.6, 1e-9);
  // Zero load from 1.5: exactly one step down.
  EXPECT_NEAR(dvfs.effective_frequency(0.0, 1.5), 1.4, 1e-9);
}

TEST(Dvfs, GovernorNames) {
  EXPECT_EQ(to_string(Governor::kPerformance), "performance");
  EXPECT_EQ(to_string(Governor::kUserspace), "userspace");
}

}  // namespace
}  // namespace greennfv::hwmodel
