#include "hwmodel/cache.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace greennfv::hwmodel {
namespace {

NodeSpec spec() { return NodeSpec{}; }

CacheDemand demand(std::uint64_t state_mib, std::uint64_t window_kib = 256,
                   std::uint64_t dma_mib = 1) {
  CacheDemand d;
  d.state_bytes = state_mib * units::kMiB;
  d.packet_window_bytes = window_kib * units::kKiB;
  d.dma_buffer_bytes = dma_mib * units::kMiB;
  return d;
}

TEST(Cache, FitsAllocationHitsFloor) {
  const CacheModel cache(spec());
  const auto b = cache.evaluate(demand(2), 8 * units::kMiB);
  EXPECT_NEAR(b.miss_ratio, spec().miss_floor, 1e-9);
}

TEST(Cache, MissGrowsWithWorkingSet) {
  const CacheModel cache(spec());
  double prev = 0.0;
  for (std::uint64_t mib = 1; mib <= 64; mib *= 2) {
    const auto b = cache.evaluate(demand(mib), 4 * units::kMiB);
    EXPECT_GE(b.miss_ratio, prev - 1e-12);
    prev = b.miss_ratio;
  }
  EXPECT_GT(prev, 0.5);  // way past capacity -> high miss
  EXPECT_LE(prev, spec().miss_ceiling);
}

TEST(Cache, MissShrinksWithAllocation) {
  const CacheModel cache(spec());
  double prev = 1.0;
  for (std::uint64_t mib = 1; mib <= 16; mib *= 2) {
    const auto b = cache.evaluate(demand(8), mib * units::kMiB);
    EXPECT_LE(b.miss_ratio, prev + 1e-12);
    prev = b.miss_ratio;
  }
}

TEST(Cache, ContentionRaisesFloor) {
  const CacheModel cache(spec());
  CacheDemand d = demand(2);
  const auto isolated = cache.evaluate(d, 8 * units::kMiB);
  d.shared_unpartitioned = true;
  const auto contended = cache.evaluate(d, 8 * units::kMiB);
  EXPECT_NEAR(contended.miss_ratio - isolated.miss_ratio,
              spec().contention_miss, 1e-9);
}

TEST(Cache, DdioHitFullWithinCapacity) {
  const CacheModel cache(spec());
  // DDIO capacity = 2 ways = 2 MiB.
  const auto b = cache.evaluate(demand(1, 64, 2), 8 * units::kMiB);
  EXPECT_DOUBLE_EQ(b.ddio_hit, 1.0);
}

class DdioOverflow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdioOverflow, HitDecaysWithBufferSize) {
  const CacheModel cache(spec());
  const std::uint64_t dma_mib = GetParam();
  const auto b = cache.evaluate(demand(1, 64, dma_mib), 8 * units::kMiB);
  const double expected =
      std::min(1.0, static_cast<double>(spec().ddio_bytes()) /
                        static_cast<double>(dma_mib * units::kMiB));
  EXPECT_NEAR(b.ddio_hit, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DdioOverflow,
                         ::testing::Values(1, 2, 4, 8, 16, 40));

TEST(Cache, MinimumOneWayGuard) {
  const CacheModel cache(spec());
  // Zero-byte allocation is treated as one way.
  const auto tiny = cache.evaluate(demand(1), 0);
  const auto one_way = cache.evaluate(demand(1), spec().bytes_per_way());
  EXPECT_DOUBLE_EQ(tiny.miss_ratio, one_way.miss_ratio);
}

TEST(Cache, ContendedShareScalesWithDemand) {
  const CacheModel cache(spec());
  const auto half = cache.contended_share(0.5);
  const auto tenth = cache.contended_share(0.1);
  EXPECT_GT(half, tenth);
  EXPECT_LE(half, spec().allocatable_llc_bytes());
  EXPECT_GE(tenth, spec().bytes_per_way());
  // Contention wastes capacity: half the demand gets less than half the
  // allocatable bytes.
  EXPECT_LT(half, spec().allocatable_llc_bytes() / 2 + 1);
}

TEST(Cache, WorkingSetReported) {
  const CacheModel cache(spec());
  const auto b = cache.evaluate(demand(3, 512), 4 * units::kMiB);
  EXPECT_EQ(b.working_set_bytes, 3 * units::kMiB + 512 * units::kKiB);
}

}  // namespace
}  // namespace greennfv::hwmodel
