#include <gtest/gtest.h>

#include "common/units.hpp"
#include "hwmodel/cost_model.hpp"

/// Latency-model tests: the sojourn time must expose the batching/queueing
/// trade-offs that delay-aware SFC work optimizes.

namespace greennfv::hwmodel {
namespace {

ChainEvaluation measure(double mpps, std::uint32_t batch, double cores,
                        double freq = 2.1) {
  const CostModel model(NodeSpec{});
  ChainResources res;
  res.cores = cores;
  res.freq_ghz = freq;
  res.llc_bytes = 8 * units::kMiB;
  res.dma_bytes = 8 * units::kMiB;
  res.batch = batch;
  ChainWorkload load;
  load.offered_pps = mpps * 1e6;
  load.pkt_bytes = 512;
  const std::vector<NfCostProfile> nfs = {nf_catalog::firewall(),
                                          nf_catalog::router(),
                                          nf_catalog::ids()};
  return model.evaluate_chain(nfs, load, res);
}

TEST(Latency, PositiveAndFinite) {
  const auto eval = measure(0.5, 32, 2.0);
  EXPECT_GT(eval.mean_latency_us, 0.0);
  EXPECT_LT(eval.mean_latency_us, 1e6);  // under a second
}

TEST(Latency, GrowsWithBatchAtLowLoad) {
  // At light load, batch assembly dominates: bigger batches wait longer.
  const auto small = measure(0.1, 4, 2.0);
  const auto large = measure(0.1, 256, 2.0);
  EXPECT_GT(large.mean_latency_us, small.mean_latency_us);
}

TEST(Latency, AssemblyWaitBoundedByPollInterval) {
  // Even a huge batch on a trickle of traffic can only wait a few poll
  // intervals before the hybrid scheduler fires.
  const auto eval = measure(0.001, 256, 2.0);
  EXPECT_LT(eval.mean_latency_us, 4.0 * 100.0 + 1000.0);
}

class LoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweep, QueueingGrowsTowardSaturation) {
  // batch = 1 isolates the queueing term (no assembly wait): more load
  // below saturation means strictly more sojourn time.
  const double mpps = GetParam();
  const auto low = measure(mpps, 1, 2.0);
  const auto higher = measure(mpps * 1.5, 1, 2.0);
  if (higher.capacity_utilization < 1.0) {
    EXPECT_GE(higher.mean_latency_us, low.mean_latency_us - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweep,
                         ::testing::Values(0.2, 0.4, 0.8, 1.2));

TEST(Latency, UShapedInLoadWithBatching) {
  // With a real batch the total is U-shaped: assembly wait dominates at a
  // trickle, queueing near saturation, with a minimum in between.
  const auto trickle = measure(0.05, 64, 2.0);
  const auto mid = measure(1.0, 64, 2.0);
  const auto near_sat = measure(2.2, 64, 2.0);
  EXPECT_GT(trickle.mean_latency_us, mid.mean_latency_us);
  EXPECT_GT(near_sat.mean_latency_us, mid.mean_latency_us);
}

TEST(Latency, FasterClockLowersServiceDelay) {
  // Same work at a higher frequency finishes sooner (despite the per-miss
  // cycle inflation, wall-clock service time shrinks).
  const auto slow = measure(0.1, 4, 2.0, 1.2);
  const auto fast = measure(0.1, 4, 2.0, 2.1);
  EXPECT_LT(fast.mean_latency_us, slow.mean_latency_us);
}

TEST(Latency, OverloadIsBoundedByRingBacklog) {
  // Deep overload: queueing saturates at the descriptor-ring backlog
  // rather than diverging.
  const auto overloaded = measure(20.0, 32, 0.5);
  const double ring_pkts = 8.0 * 1024.0 * 1024.0 / 2048.0;
  const double bound_us =
      ring_pkts / overloaded.service_pps * 1e6 + 2000.0;
  EXPECT_LT(overloaded.mean_latency_us, bound_us);
}

}  // namespace
}  // namespace greennfv::hwmodel
