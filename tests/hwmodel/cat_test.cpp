#include "hwmodel/cat.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace greennfv::hwmodel {
namespace {

NodeSpec spec() { return NodeSpec{}; }

TEST(Cat, AllocatableExcludesDdio) {
  const CatAllocator cat(spec());
  EXPECT_EQ(cat.allocatable_ways(), 18);  // 20 ways - 2 DDIO
}

TEST(Cat, SetClosAndQuery) {
  CatAllocator cat(spec());
  cat.set_clos(0, 0, 4);
  EXPECT_TRUE(cat.has_clos(0));
  EXPECT_EQ(cat.way_count(0), 4);
  EXPECT_EQ(cat.bytes(0), 4ull * spec().bytes_per_way());
}

TEST(Cat, RejectsMalformedMasks) {
  CatAllocator cat(spec());
  EXPECT_THROW(cat.set_clos(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(cat.set_clos(0, -1, 2), std::invalid_argument);
  EXPECT_THROW(cat.set_clos(0, 17, 2), std::invalid_argument);  // overflow
}

TEST(Cat, PartitionUsesAllWays) {
  CatAllocator cat(spec());
  const auto ways = cat.partition({0.9, 0.1});
  EXPECT_EQ(std::accumulate(ways.begin(), ways.end(), 0), 18);
  EXPECT_GT(ways[0], ways[1]);
  EXPECT_GE(ways[1], 1);  // floor of one way
}

class CatPartitions
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(CatPartitions, SumsToAllocatableAndRespectsFloor) {
  CatAllocator cat(spec());
  const auto ways = cat.partition(GetParam());
  EXPECT_EQ(std::accumulate(ways.begin(), ways.end(), 0),
            cat.allocatable_ways());
  for (const int w : ways) EXPECT_GE(w, 1);
}

INSTANTIATE_TEST_SUITE_P(
    PaperAllocations, CatPartitions,
    ::testing::Values(std::vector<double>{0.9, 0.1},
                      std::vector<double>{0.7, 0.3},
                      std::vector<double>{0.4, 0.6},
                      std::vector<double>{0.2, 0.8},
                      std::vector<double>{1.0, 1.0, 1.0},
                      std::vector<double>{0.5, 0.25, 0.125, 0.125}));

TEST(Cat, PartitionProportionality) {
  CatAllocator cat(spec());
  const auto ways = cat.partition({0.9, 0.1});
  // 90/10 of 18 ways ~ 16/2.
  EXPECT_NEAR(ways[0], 16, 1);
  EXPECT_NEAR(ways[1], 2, 1);
}

TEST(Cat, PartitionErrors) {
  CatAllocator cat(spec());
  EXPECT_THROW(cat.partition({}), std::invalid_argument);
  EXPECT_THROW(cat.partition({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(cat.partition({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(cat.partition(std::vector<double>(19, 1.0)),
               std::invalid_argument);
}

TEST(Cat, CbmIsContiguousAndSkipsDdio) {
  CatAllocator cat(spec());
  cat.partition({0.5, 0.5});
  const std::uint64_t mask0 = cat.cbm(0);
  const std::uint64_t mask1 = cat.cbm(1);
  // Disjoint.
  EXPECT_EQ(mask0 & mask1, 0u);
  // DDIO ways (bits 0-1) untouched.
  EXPECT_EQ((mask0 | mask1) & 0x3u, 0u);
  // Contiguity: bits form one run (x | x>>1 trick: run count check).
  const auto is_contiguous = [](std::uint64_t m) {
    while (m != 0 && (m & 1) == 0) m >>= 1;
    while (m & 1) m >>= 1;
    return m == 0;
  };
  EXPECT_TRUE(is_contiguous(mask0));
  EXPECT_TRUE(is_contiguous(mask1));
}

TEST(Cat, ResetClears) {
  CatAllocator cat(spec());
  cat.partition({1.0});
  EXPECT_FALSE(cat.unpartitioned());
  cat.reset();
  EXPECT_TRUE(cat.unpartitioned());
  EXPECT_FALSE(cat.has_clos(0));
}

}  // namespace
}  // namespace greennfv::hwmodel
