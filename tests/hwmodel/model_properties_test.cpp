#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hwmodel/energy_meter.hpp"
#include "hwmodel/node.hpp"

/// Property sweeps over the hardware model: invariants that must hold for
/// *every* knob combination, not just the calibration points. These guard
/// the RL environment — a model that violates them would teach the agent
/// physics that do not exist.

namespace greennfv::hwmodel {
namespace {

ChainDeployment deployment(double cores, double freq, double llc,
                           double dma_mib, std::uint32_t batch,
                           double mpps = 1.0, std::uint32_t pkt = 512) {
  ChainDeployment dep;
  dep.nfs = {nf_catalog::firewall(), nf_catalog::router(),
             nf_catalog::ids()};
  dep.workload.offered_pps = mpps * 1e6;
  dep.workload.pkt_bytes = pkt;
  dep.cores = cores;
  dep.freq_ghz = freq;
  dep.llc_fraction = llc;
  dep.dma_bytes = units::mib_to_bytes(dma_mib);
  dep.batch = batch;
  return dep;
}

using KnobPoint = std::tuple<double, double, std::uint32_t>;

class KnobGrid : public ::testing::TestWithParam<KnobPoint> {};

TEST_P(KnobGrid, UniversalInvariants) {
  const auto [cores, freq, batch] = GetParam();
  const NodeModel node;
  for (const double llc : {0.1, 0.5, 1.0}) {
    for (const double dma : {0.5, 4.0, 32.0}) {
      const auto eval =
          node.evaluate({deployment(cores, freq, llc, dma, batch)});
      const auto& chain = eval.chains[0].eval;
      // Goodput never exceeds offered load or service capacity.
      EXPECT_LE(chain.goodput_pps, 1e6 + 1e-6);
      EXPECT_LE(chain.goodput_pps, chain.service_pps + 1e-6);
      // Conservation: offered = goodput + drops.
      EXPECT_NEAR(chain.goodput_pps + chain.drop_pps, 1e6, 1.0);
      // Physical ranges.
      EXPECT_GE(chain.miss_ratio, 0.0);
      EXPECT_LE(chain.miss_ratio, 0.85 + 1e-9);
      EXPECT_GE(chain.ddio_hit, 0.0);
      EXPECT_LE(chain.ddio_hit, 1.0);
      EXPECT_GE(eval.power_w, node.spec().p_idle_w - 1e-9);
      EXPECT_LE(eval.power_w, node.spec().p_max_w + 1e-9);
      EXPECT_GE(eval.utilization, 0.0);
      EXPECT_LE(eval.utilization, 1.0);
      // Busy cores cannot exceed allocation.
      EXPECT_LE(chain.busy_cores, cores + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KnobGrid,
    ::testing::Combine(::testing::Values(0.25, 1.0, 4.0),
                       ::testing::Values(1.2, 1.7, 2.1),
                       ::testing::Values(2u, 32u, 256u)));

class FrequencyMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(FrequencyMonotonicity, ServiceNeverDropsWithFrequency) {
  // At fixed knobs, raising frequency must never reduce service capacity
  // (more cycles per miss, but strictly more cycles per second).
  const double cores = GetParam();
  const NodeModel node;
  double prev = 0.0;
  for (double f = 1.2; f <= 2.1 + 1e-9; f += 0.1) {
    const auto eval =
        node.evaluate({deployment(cores, f, 0.5, 8.0, 64, 5.0)});
    EXPECT_GE(eval.chains[0].eval.service_pps + 1e-6, prev)
        << "f=" << f << " cores=" << cores;
    prev = eval.chains[0].eval.service_pps;
  }
}

INSTANTIATE_TEST_SUITE_P(Cores, FrequencyMonotonicity,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

TEST(ModelProperties, PowerMonotoneInFrequencyAtFixedDuty) {
  const NodeModel node;
  double prev = 0.0;
  for (double f = 1.2; f <= 2.1 + 1e-9; f += 0.1) {
    auto dep = deployment(2.0, f, 0.5, 8.0, 64, 10.0);  // saturated
    dep.poll_mode = true;
    const auto eval = node.evaluate({dep});
    EXPECT_GE(eval.power_w + 1e-9, prev);
    prev = eval.power_w;
  }
}

TEST(ModelProperties, MoreOfferedNeverMeansMoreGoodputPerCycleBudget) {
  // Fixing capacity, goodput(offered) must be concave-ish: it never
  // *decreases* as offered load grows below saturation and never exceeds
  // service above it.
  const NodeModel node;
  double prev_goodput = 0.0;
  for (double mpps = 0.1; mpps <= 6.0; mpps += 0.25) {
    const auto eval = node.evaluate(
        {deployment(1.0, 2.1, 0.5, 8.0, 64, mpps, 256)});
    const auto& chain = eval.chains[0].eval;
    if (mpps * 1e6 <= chain.service_pps) {
      EXPECT_GE(chain.goodput_pps + 1e-3, prev_goodput);
    }
    EXPECT_LE(chain.goodput_pps, chain.service_pps + 1e-6);
    prev_goodput = chain.goodput_pps;
  }
}

TEST(ModelProperties, AggregateCapBindsExactlyAtLineRate) {
  const NodeModel node;
  std::vector<ChainDeployment> chains;
  for (int c = 0; c < 4; ++c)
    chains.push_back(deployment(4.0, 2.1, 0.25, 32.0, 128, 1.2, 1518));
  const auto eval = node.evaluate(chains);
  double wire = 0.0;
  for (const auto& chain : eval.chains) wire += chain.eval.wire_gbps;
  EXPECT_NEAR(wire, node.spec().line_rate_gbps, 1e-6);
  // The cap scales all chains by the same factor: equal chains stay equal.
  for (std::size_t c = 1; c < eval.chains.size(); ++c) {
    EXPECT_NEAR(eval.chains[c].eval.goodput_pps,
                eval.chains[0].eval.goodput_pps, 1.0);
  }
}

TEST(ModelProperties, EnergyMeterAgreesWithPowerIntegral) {
  const NodeModel node;
  const auto eval = node.evaluate({deployment(2.0, 1.8, 0.5, 8.0, 64)});
  EnergyMeter meter;
  for (int i = 0; i < 7; ++i) meter.accumulate(eval.power_w, 1.5);
  EXPECT_NEAR(meter.total_joules(), eval.power_w * 10.5, 1e-9);
  EXPECT_NEAR(meter.mean_power_w(), eval.power_w, 1e-9);
}

TEST(ModelProperties, CatPartitionInsensitiveToFractionScale) {
  // CAT fractions are relative: (0.2, 0.2) must equal (0.8, 0.8).
  const NodeModel node;
  std::vector<ChainDeployment> small = {
      deployment(1.0, 2.1, 0.2, 8.0, 64),
      deployment(1.0, 2.1, 0.2, 8.0, 64)};
  std::vector<ChainDeployment> large = {
      deployment(1.0, 2.1, 0.8, 8.0, 64),
      deployment(1.0, 2.1, 0.8, 8.0, 64)};
  const auto a = node.evaluate(small);
  const auto b = node.evaluate(large);
  EXPECT_DOUBLE_EQ(a.chains[0].eval.miss_ratio,
                   b.chains[0].eval.miss_ratio);
}

TEST(ModelProperties, DeterministicEvaluation) {
  const NodeModel node;
  const auto dep = deployment(1.5, 1.9, 0.4, 12.0, 96, 2.5);
  const auto a = node.evaluate({dep});
  const auto b = node.evaluate({dep});
  EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
  EXPECT_DOUBLE_EQ(a.total_goodput_gbps, b.total_goodput_gbps);
}

}  // namespace
}  // namespace greennfv::hwmodel
