#include <gtest/gtest.h>

#include <cmath>

#include "hwmodel/calibration.hpp"
#include "hwmodel/energy_meter.hpp"
#include "hwmodel/power_model.hpp"

namespace greennfv::hwmodel {
namespace {

NodeSpec spec() { return NodeSpec{}; }

TEST(PowerModel, Eq4Endpoints) {
  const PowerModel model(spec());
  // u=0 -> Pidle; u=1 at fmax -> Pmax (2u - u^h = 1 at u=1).
  EXPECT_NEAR(model.power_w(0.0), spec().p_idle_w, 1e-9);
  EXPECT_NEAR(model.power_w(1.0), spec().p_max_w, 1e-9);
}

class PowerUtilization : public ::testing::TestWithParam<double> {};

TEST_P(PowerUtilization, MonotoneAndBounded) {
  const PowerModel model(spec());
  const double u = GetParam();
  const double p = model.power_w(u);
  EXPECT_GE(p, spec().p_idle_w - 1e-9);
  EXPECT_LE(p, spec().p_max_w + 1e-9);
  if (u < 1.0) {
    EXPECT_LE(p, model.power_w(std::min(1.0, u + 0.05)) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PowerUtilization,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

TEST(PowerModel, FrequencyReducesDynamicRange) {
  const PowerModel model(spec());
  const double at_max = model.power_w(0.8, spec().fmax_ghz);
  const double at_min = model.power_w(0.8, spec().fmin_ghz);
  EXPECT_LT(at_min, at_max);
  // Idle power unaffected by frequency.
  EXPECT_NEAR(model.power_w(0.0, spec().fmin_ghz), spec().p_idle_w, 1e-9);
}

TEST(PowerModel, FrequencyScaleEndpoints) {
  const PowerModel model(spec());
  EXPECT_NEAR(model.frequency_scale(spec().fmax_ghz), 1.0, 1e-9);
  const double low = model.frequency_scale(spec().fmin_ghz);
  EXPECT_GT(low, spec().static_fraction - 1e-9);
  EXPECT_LT(low, 1.0);
}

TEST(PowerModel, ClampsUtilization) {
  const PowerModel model(spec());
  EXPECT_NEAR(model.power_w(1.5), model.power_w(1.0), 1e-9);
  EXPECT_NEAR(model.power_w(-0.5), model.power_w(0.0), 1e-9);
}

TEST(Calibration, RecoversHFromCleanSamples) {
  NodeSpec truth = spec();
  truth.fan_h = 1.73;
  PowerMeter meter(truth, /*noise=*/0.0, Rng(5));
  const auto samples = meter.calibration_sweep(64);
  const auto fit = fit_fan_h(spec(), samples);
  EXPECT_NEAR(fit.h, 1.73, 1e-3);
  EXPECT_LT(fit.rmse_w, 0.1);
}

class CalibrationNoise : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationNoise, RecoversHWithinNoiseBudget) {
  NodeSpec truth = spec();
  truth.fan_h = 1.4;
  PowerMeter meter(truth, GetParam(), Rng(6));
  const auto samples = meter.calibration_sweep(256);
  const auto fit = fit_fan_h(spec(), samples);
  EXPECT_NEAR(fit.h, 1.4, 0.15);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, CalibrationNoise,
                         ::testing::Values(0.5, 2.0, 5.0));

TEST(Calibration, HandlesExtremeTrueH) {
  for (const double true_h : {0.5, 2.5}) {
    NodeSpec truth = spec();
    truth.fan_h = true_h;
    PowerMeter meter(truth, 0.0, Rng(7));
    const auto fit = fit_fan_h(spec(), meter.calibration_sweep(64));
    EXPECT_NEAR(fit.h, true_h, 5e-3);
  }
}

TEST(EnergyMeter, IntegratesAndLaps) {
  EnergyMeter meter;
  meter.accumulate(100.0, 2.0);  // 200 J
  meter.accumulate(50.0, 1.0);   // +50 J
  EXPECT_NEAR(meter.total_joules(), 250.0, 1e-12);
  EXPECT_NEAR(meter.total_seconds(), 3.0, 1e-12);
  EXPECT_NEAR(meter.mean_power_w(), 250.0 / 3.0, 1e-9);
  EXPECT_NEAR(meter.lap(), 250.0, 1e-12);
  meter.accumulate(10.0, 1.0);
  EXPECT_NEAR(meter.lap_joules(), 10.0, 1e-12);
  EXPECT_NEAR(meter.lap(), 10.0, 1e-12);
  EXPECT_NEAR(meter.total_joules(), 260.0, 1e-12);
}

TEST(EnergyMeter, RejectsNegativeInputs) {
  EnergyMeter meter;
  EXPECT_DEATH(meter.accumulate(-1.0, 1.0), "negative power");
  EXPECT_DEATH(meter.accumulate(1.0, -1.0), "negative duration");
}

}  // namespace
}  // namespace greennfv::hwmodel
