#include "hwmodel/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace greennfv::hwmodel {
namespace {

NodeSpec spec() { return NodeSpec{}; }

std::vector<NfCostProfile> light_chain() {
  return {nf_catalog::firewall(), nf_catalog::nat(), nf_catalog::router()};
}

std::vector<NfCostProfile> ids_chain() {
  return {nf_catalog::firewall(), nf_catalog::router(), nf_catalog::ids()};
}

ChainWorkload load(double mpps, std::uint32_t pkt = 512) {
  ChainWorkload w;
  w.offered_pps = mpps * 1e6;
  w.pkt_bytes = pkt;
  return w;
}

ChainResources resources() {
  ChainResources r;
  r.cores = 2.0;
  r.freq_ghz = 2.1;
  r.llc_bytes = 8 * units::kMiB;
  r.dma_bytes = 4 * units::kMiB;
  r.batch = 32;
  return r;
}

TEST(CostModel, BatchingAmortizesPerCallCost) {
  const CostModel model(spec());
  ChainResources r = resources();
  r.batch = 1;
  const auto small = model.evaluate_chain(light_chain(), load(0.1), r);
  r.batch = 64;
  const auto big = model.evaluate_chain(light_chain(), load(0.1), r);
  EXPECT_LT(big.cycles_per_pkt, small.cycles_per_pkt);
  // With per_call=2000 and 4 hops, batch 1 -> +8000 cycles vs ~+125.
  EXPECT_GT(small.cycles_per_pkt - big.cycles_per_pkt, 5000.0);
}

TEST(CostModel, OversizedBatchThrashesCache) {
  const CostModel model(spec());
  ChainResources r = resources();
  r.llc_bytes = 2 * units::kMiB;
  r.batch = 8;
  const auto modest = model.evaluate_chain(ids_chain(), load(0.1, 1518), r);
  r.batch = 256;
  const auto huge = model.evaluate_chain(ids_chain(), load(0.1, 1518), r);
  // 256 * 1518B * footprint 2 ≈ 0.78 MiB of packet window on top of ~3.4MiB
  // state in a 2 MiB slice: misses must rise.
  EXPECT_GT(huge.miss_ratio, modest.miss_ratio);
}

TEST(CostModel, MissPenaltyGrowsWithFrequency) {
  const CostModel model(spec());
  ChainResources r = resources();
  r.llc_bytes = units::kMiB;  // starved: high miss ratio
  r.freq_ghz = 1.2;
  const auto slow = model.evaluate_chain(ids_chain(), load(0.1), r);
  r.freq_ghz = 2.1;
  const auto fast = model.evaluate_chain(ids_chain(), load(0.1), r);
  // Same miss *ratio*, more cycles per miss at higher frequency.
  EXPECT_NEAR(slow.miss_ratio, fast.miss_ratio, 1e-12);
  EXPECT_GT(fast.cycles_per_pkt, slow.cycles_per_pkt);
  // ...but wall-clock service still improves with frequency.
  EXPECT_GT(fast.service_pps, slow.service_pps);
}

TEST(CostModel, ServiceScalesWithCores) {
  const CostModel model(spec());
  // CPU-bound regime: heavy chain, small frames (high line-rate ceiling),
  // generous DMA buffer so the NIC path is not the limiter.
  ChainResources r = resources();
  r.dma_bytes = 32 * units::kMiB;
  ChainWorkload w = load(0.1, 128);
  r.cores = 1.0;
  const auto one = model.evaluate_chain(ids_chain(), w, r);
  r.cores = 4.0;
  const auto four = model.evaluate_chain(ids_chain(), w, r);
  EXPECT_NEAR(four.service_pps / one.service_pps, 4.0, 0.2);
}

TEST(CostModel, UnderloadDeliversOffered) {
  const CostModel model(spec());
  const auto eval =
      model.evaluate_chain(light_chain(), load(0.05), resources());
  EXPECT_NEAR(eval.goodput_pps, 0.05e6, 1.0);
  EXPECT_NEAR(eval.drop_pps, 0.0, 1e-6);
}

TEST(CostModel, OverloadCollapsesGoodput) {
  const CostModel model(spec());
  ChainResources r = resources();
  r.cores = 0.5;
  const auto eval = model.evaluate_chain(ids_chain(), load(5.0, 256), r);
  EXPECT_LT(eval.goodput_pps, eval.service_pps);
  EXPECT_GT(eval.drop_pps, 0.0);
  // Livelock floor bounds the collapse.
  EXPECT_GE(eval.goodput_pps,
            eval.service_pps * spec().livelock_floor - 1.0);
}

class DmaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DmaSweep, ThroughputRisesWithBuffer) {
  const CostModel model(spec());
  ChainResources r = resources();
  r.cores = 4.0;
  r.dma_bytes = GetParam() * units::kMiB;
  const auto eval =
      model.evaluate_chain(light_chain(), load(3.0, 256), r);
  r.dma_bytes = (GetParam() + 8) * units::kMiB;
  const auto bigger =
      model.evaluate_chain(light_chain(), load(3.0, 256), r);
  EXPECT_GE(bigger.service_pps + 1.0, eval.service_pps);
}

INSTANTIATE_TEST_SUITE_P(Buffers, DmaSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(CostModel, TinyDmaStarvesInput) {
  const CostModel model(spec());
  ChainResources r = resources();
  r.cores = 4.0;
  r.dma_bytes = 300 * units::kKiB;
  const auto starved =
      model.evaluate_chain(light_chain(), load(3.0, 1024), r);
  r.dma_bytes = 32 * units::kMiB;
  const auto fed = model.evaluate_chain(light_chain(), load(3.0, 1024), r);
  EXPECT_LT(starved.service_pps, fed.service_pps * 0.7);
}

TEST(CostModel, LargeDmaSpillsDdio) {
  const CostModel model(spec());
  ChainResources r = resources();
  r.dma_bytes = 40 * units::kMiB;  // way past the 2 MiB DDIO capacity
  const auto eval = model.evaluate_chain(light_chain(), load(0.1), r);
  EXPECT_LT(eval.ddio_hit, 0.1);
  r.dma_bytes = units::kMiB;
  const auto tight = model.evaluate_chain(light_chain(), load(0.1), r);
  EXPECT_DOUBLE_EQ(tight.ddio_hit, 1.0);
  EXPECT_GT(eval.misses_per_pkt, tight.misses_per_pkt);
}

TEST(CostModel, PayloadCostScalesWithPacketSize) {
  const CostModel model(spec());
  const auto small =
      model.evaluate_chain(ids_chain(), load(0.1, 64), resources());
  const auto large =
      model.evaluate_chain(ids_chain(), load(0.1, 1518), resources());
  // IDS at 2 cycles/byte: ~2900 extra cycles for the larger frame.
  EXPECT_GT(large.cycles_per_pkt, small.cycles_per_pkt + 2000.0);
}

TEST(CostModel, PollModeBurnsFullDuty) {
  const CostModel model(spec());
  ChainResources r = resources();
  r.poll_mode = true;
  const auto poll = model.evaluate_chain(light_chain(), load(0.01), r);
  r.poll_mode = false;
  const auto hybrid = model.evaluate_chain(light_chain(), load(0.01), r);
  EXPECT_NEAR(poll.busy_cores, r.cores, 1e-9);
  EXPECT_LT(hybrid.busy_cores, 0.5 * r.cores);
  EXPECT_GE(hybrid.busy_cores, r.cores * spec().min_poll_duty - 1e-9);
}

TEST(CostModel, SharedLlcFlagRaisesMisses) {
  const CostModel model(spec());
  ChainResources r = resources();
  const auto isolated = model.evaluate_chain(ids_chain(), load(0.5), r);
  r.shared_llc = true;
  const auto shared = model.evaluate_chain(ids_chain(), load(0.5), r);
  EXPECT_GT(shared.miss_ratio, isolated.miss_ratio);
  EXPECT_LT(shared.service_pps, isolated.service_pps);
}

TEST(CostModel, RejectsInvalidInputs) {
  const CostModel model(spec());
  ChainResources r = resources();
  EXPECT_DEATH((void)model.evaluate_chain({}, load(0.1), r), "empty chain");
  r.cores = 0.0;
  EXPECT_DEATH((void)model.evaluate_chain(light_chain(), load(0.1), r),
               "zero cores");
  r = resources();
  r.batch = 0;
  EXPECT_DEATH((void)model.evaluate_chain(light_chain(), load(0.1), r),
               "batch");
}

TEST(NfCatalog, ByNameRoundTrip) {
  for (const auto& name : nf_catalog::names()) {
    EXPECT_EQ(nf_catalog::by_name(name).name, name);
  }
  EXPECT_THROW(nf_catalog::by_name("bogus"), std::invalid_argument);
}

TEST(NfCatalog, RelativeWeights) {
  // EPC is the heavyweight; flow_monitor the lightest.
  EXPECT_GT(nf_catalog::epc().base_cycles, nf_catalog::ids().base_cycles);
  EXPECT_LT(nf_catalog::flow_monitor().base_cycles,
            nf_catalog::firewall().base_cycles);
  EXPECT_GT(nf_catalog::ids().cycles_per_byte, 1.0);
}

}  // namespace
}  // namespace greennfv::hwmodel
