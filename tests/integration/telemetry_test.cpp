#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "telemetry/recorder.hpp"
#include "telemetry/stats.hpp"

namespace greennfv::telemetry {
namespace {

TEST(RunningStats, MomentsAndExtremes) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Ewma, SmoothsTowardSignal) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.primed());
  EXPECT_DOUBLE_EQ(ewma.update(10.0), 10.0);  // primes to first sample
  EXPECT_DOUBLE_EQ(ewma.update(20.0), 15.0);
  EXPECT_DOUBLE_EQ(ewma.update(20.0), 17.5);
  ewma.reset();
  EXPECT_FALSE(ewma.primed());
}

TEST(Quantile, OrderStatistics) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.9), 7.0);
}

TEST(CountHistogram, CountsFractionsAndMean) {
  telemetry::CountHistogram hist;
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_TRUE(hist.fractions().empty());
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);

  hist.add(0);
  hist.add(2);
  hist.add(2);
  hist.add(4, /*weight=*/2);
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 0u);
  EXPECT_EQ(hist.count(2), 2u);
  EXPECT_EQ(hist.count(4), 2u);
  EXPECT_EQ(hist.count(99), 0u);  // beyond the populated range
  const auto fractions = hist.fractions();
  ASSERT_EQ(fractions.size(), 5u);
  EXPECT_DOUBLE_EQ(fractions[2], 0.4);
  EXPECT_DOUBLE_EQ(fractions[4], 0.4);
  // (0*1 + 2*2 + 4*2) / 5
  EXPECT_DOUBLE_EQ(hist.mean(), 2.4);

  hist.reset();
  EXPECT_EQ(hist.total(), 0u);
  EXPECT_TRUE(hist.counts().empty());
}

TEST(Recorder, RecordAndSummarize) {
  Recorder recorder;
  recorder.record("gbps", 0.0, 2.0);
  recorder.record("gbps", 1.0, 4.0);
  recorder.record("watts", 0.0, 200.0);
  EXPECT_EQ(recorder.num_series(), 2u);
  EXPECT_TRUE(recorder.has("gbps"));
  EXPECT_FALSE(recorder.has("nope"));
  EXPECT_EQ(recorder.series("gbps").size(), 2u);
  const auto names = recorder.series_names();
  EXPECT_EQ(names.size(), 2u);
  const std::string summary = recorder.summary_table();
  EXPECT_NE(summary.find("gbps"), std::string::npos);
  EXPECT_NE(summary.find("watts"), std::string::npos);
}

TEST(Recorder, CsvExportInterpolates) {
  Recorder recorder;
  recorder.record("a", 0.0, 0.0);
  recorder.record("a", 2.0, 2.0);
  recorder.record("b", 1.0, 10.0);
  const std::string path = "/tmp/gnfv_recorder_test.csv";
  recorder.to_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,a,b");
  // Three union timestamps -> three rows.
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

TEST(Recorder, ClearEmpties) {
  Recorder recorder;
  recorder.record("x", 0.0, 1.0);
  recorder.clear();
  EXPECT_EQ(recorder.num_series(), 0u);
}

}  // namespace
}  // namespace greennfv::telemetry
