#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/greennfv.hpp"
#include "core/nf_controller.hpp"
#include "nfvsim/engine_analytic.hpp"
#include "nfvsim/engine_threaded.hpp"
#include "traffic/generator.hpp"

/// Smoke coverage of examples/quickstart.cpp's flow: deploy a chain, apply
/// knobs, run both engines, then push a tiny training budget through the
/// trainer→scheduler path. Counts are kept small — this guards that the
/// end-to-end public API stays wired together, not absolute numbers.

namespace greennfv {
namespace {

using namespace greennfv::nfvsim;

TEST(QuickstartSmoke, DeployKnobsAndBothEngines) {
  OnvmController controller;
  const int chain_id =
      controller.add_chain("edge-chain", {"firewall", "router", "ids"});
  ASSERT_GE(chain_id, 0);

  ChainKnobs knobs;
  knobs.cores = 2.0;
  knobs.freq_ghz = 1.8;
  knobs.llc_fraction = 0.5;
  knobs.dma_bytes = 8ull * units::kMiB;
  knobs.batch = 64;
  const ChainKnobs applied =
      controller.apply_knobs(static_cast<std::size_t>(chain_id), knobs);
  EXPECT_FALSE(applied.to_string().empty());

  // Virtual-time engine: a couple of seconds of load must move packets and
  // burn energy.
  traffic::FlowSpec flow = traffic::line_rate_flow(512);
  flow.mean_rate_pps = 1.2e6;
  AnalyticEngine engine(controller, traffic::TrafficGenerator({flow}, 42));
  const auto summary = engine.run(/*windows=*/3, /*dt=*/1.0);
  EXPECT_GT(summary.mean_gbps, 0.0);
  EXPECT_GT(summary.mean_power_w, 0.0);
  EXPECT_GT(summary.energy_j, 0.0);

  // Real threaded data path: every injected packet must be accounted for.
  ThreadedEngine::Options options;
  options.total_packets = 20000;
  ThreadedEngine threaded(controller, options);
  traffic::FlowSpec tflow;
  tflow.pkt_bytes = 512;
  tflow.mean_rate_pps = 1e6;
  const auto report = threaded.run({tflow}, /*seed=*/7);
  EXPECT_EQ(report.generated, options.total_packets);
  EXPECT_GT(report.delivered, 0u);
  EXPECT_TRUE(report.conserved());

  // The batch knob must still be live after the runs.
  knobs.batch = 4;
  controller.apply_knobs(static_cast<std::size_t>(chain_id), knobs);
  const auto small_batch = engine.run(2, 1.0);
  knobs.batch = 192;
  controller.apply_knobs(static_cast<std::size_t>(chain_id), knobs);
  const auto large_batch = engine.run(2, 1.0);
  EXPECT_GT(small_batch.mean_gbps, 0.0);
  // Directional: batching amortizes per-packet overhead, so a 48x larger
  // batch must raise throughput — pins that the knob actually propagates.
  EXPECT_GT(large_batch.mean_gbps, small_batch.mean_gbps);
}

TEST(QuickstartSmoke, TrainerToSchedulerPath) {
  core::TrainerConfig config;
  config.env.num_chains = 2;
  config.env.num_flows = 3;
  config.env.window_s = 2.0;
  config.env.sub_windows = 2;
  config.env.steps_per_episode = 2;
  config.episodes = 4;  // tiny: wiring, not convergence
  config.ddpg.batch_size = 8;
  config.seed = 42;

  core::GreenNfvTrainer trainer(config);
  const core::TrainResult result = trainer.train();
  EXPECT_EQ(result.episodes, config.episodes);
  EXPECT_GT(result.tail_gbps, 0.0);

  auto scheduler = trainer.make_scheduler("smoke");
  ASSERT_NE(scheduler, nullptr);
  const core::EvalResult eval =
      core::evaluate_scheduler(config.env, *scheduler, /*windows=*/2, 99);
  EXPECT_EQ(eval.windows, 2);
  EXPECT_GT(eval.mean_gbps, 0.0);
  EXPECT_GT(eval.mean_energy_j, 0.0);
}

}  // namespace
}  // namespace greennfv
