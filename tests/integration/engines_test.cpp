#include <gtest/gtest.h>

#include "nfvsim/engine_analytic.hpp"
#include "nfvsim/engine_threaded.hpp"
#include "traffic/generator.hpp"

/// Cross-engine integration: the same controller + chains drive both the
/// analytic (virtual-time) and threaded (real data path) engines.

namespace greennfv::nfvsim {
namespace {

TEST(Engines, SameControllerDrivesBoth) {
  OnvmController controller;
  controller.add_chain("c0", standard_chain_nfs(0));
  controller.add_chain("c1", standard_chain_nfs(1));
  ChainKnobs knobs = baseline_knobs(controller.spec());
  knobs.batch = 32;
  controller.apply_knobs(0, knobs);
  controller.apply_knobs(1, knobs);

  // Analytic pass.
  AnalyticEngine analytic(
      controller,
      traffic::TrafficGenerator(traffic::make_eval_flows(4, 2, 6.0, 31),
                                31));
  const auto summary = analytic.run(4, 0.5);
  EXPECT_GT(summary.mean_gbps, 0.0);

  // Threaded pass over the same chains (stats reset between engines).
  controller.chain(0).reset_stats();
  controller.chain(1).reset_stats();
  std::vector<traffic::FlowSpec> flows;
  for (int c = 0; c < 2; ++c) {
    traffic::FlowSpec f;
    f.id = c;
    f.pkt_bytes = 256;
    f.mean_rate_pps = 1e5;
    f.chain_index = c;
    flows.push_back(f);
  }
  ThreadedEngine::Options options;
  options.total_packets = 20000;
  ThreadedEngine threaded(controller, options);
  const auto report = threaded.run(flows, 33);
  EXPECT_TRUE(report.conserved());
  EXPECT_GT(report.delivered, 0u);
}

TEST(Engines, BatchKnobAffectsBothEngines) {
  // Larger batches help the analytic model; the threaded engine must at
  // minimum keep functioning identically across the sweep (its wall-clock
  // advantage is hardware-dependent and not asserted).
  OnvmController controller;
  controller.add_chain("c0", {"firewall", "router"});

  double gbps_small = 0.0;
  double gbps_large = 0.0;
  for (const std::uint32_t batch : {2u, 128u}) {
    ChainKnobs knobs = baseline_knobs(controller.spec());
    knobs.batch = batch;
    knobs.cores = 1.0;
    controller.apply_knobs(0, knobs);
    AnalyticEngine analytic(
        controller,
        traffic::TrafficGenerator({traffic::line_rate_flow(256)}, 35));
    const auto summary = analytic.run(2, 0.5);
    (batch == 2u ? gbps_small : gbps_large) = summary.mean_gbps;

    ThreadedEngine::Options options;
    options.total_packets = 10000;
    ThreadedEngine threaded(controller, options);
    traffic::FlowSpec flow;
    flow.pkt_bytes = 256;
    flow.mean_rate_pps = 1e5;
    const auto report = threaded.run({flow}, 37);
    EXPECT_TRUE(report.conserved());
  }
  EXPECT_GT(gbps_large, gbps_small);
}

}  // namespace
}  // namespace greennfv::nfvsim
