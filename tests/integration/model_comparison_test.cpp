#include <gtest/gtest.h>

#include "core/ee_pstate.hpp"
#include "core/greennfv.hpp"
#include "core/heuristic.hpp"
#include "core/nf_controller.hpp"

/// End-to-end sanity of the paper's comparison: with modest training
/// budgets (keep CI time low) the qualitative ordering must already hold —
/// learned/adaptive schedulers beat the untuned baseline on efficiency, and
/// constraint-gated policies respect their SLAs most of the time.

namespace greennfv::core {
namespace {

EnvConfig eval_config(Sla sla) {
  EnvConfig config;
  config.num_chains = 3;
  config.num_flows = 5;
  config.total_offered_gbps = 12.0;
  config.window_s = 5.0;
  config.sub_windows = 5;
  config.steps_per_episode = 4;
  config.sla = sla;
  return config;
}

TEST(ModelComparison, AdaptiveSchedulersBeatBaselineEfficiency) {
  const EnvConfig config = eval_config(Sla::energy_efficiency());
  BaselineScheduler baseline{config.spec};
  HeuristicScheduler heuristic{config.spec, HeuristicConfig{}};

  const EvalResult base = evaluate_scheduler(config, baseline, 8, 42);
  // Algorithm 1 converges slowly ("Such decision-making is slow and takes
  // a long time to converge", §5.1): give it a long warmup, then measure.
  const EvalResult heur = evaluate_scheduler(config, heuristic, 8, 42,
                                             /*warmup=*/40);
  EXPECT_GT(heur.mean_efficiency, base.mean_efficiency);
}

TEST(ModelComparison, TrainedEePolicyBeatsBaseline) {
  TrainerConfig trainer_config;
  trainer_config.env = eval_config(Sla::energy_efficiency());
  trainer_config.episodes = 60;
  trainer_config.seed = 7;
  trainer_config.ddpg.batch_size = 32;
  trainer_config.noise_sigma = 0.5;
  trainer_config.noise_decay = 0.995;
  GreenNfvTrainer trainer(trainer_config);
  (void)trainer.train();
  auto green = trainer.make_scheduler("GreenNFV(EE)");

  BaselineScheduler baseline{trainer_config.env.spec};
  const EvalResult base =
      evaluate_scheduler(trainer_config.env, baseline, 6, 99);
  const EvalResult learned =
      evaluate_scheduler(trainer_config.env, *green, 6, 99);
  EXPECT_GT(learned.mean_efficiency, base.mean_efficiency)
      << "learned " << learned.mean_efficiency << " vs baseline "
      << base.mean_efficiency;
}

TEST(ModelComparison, MaxThroughputPolicyRespectsEnergyBudget) {
  const double budget = 1500.0;  // joules per 5 s window
  TrainerConfig trainer_config;
  trainer_config.env = eval_config(Sla::max_throughput(budget));
  trainer_config.episodes = 60;
  trainer_config.seed = 11;
  trainer_config.ddpg.batch_size = 32;
  trainer_config.noise_sigma = 0.5;
  trainer_config.noise_decay = 0.995;
  GreenNfvTrainer trainer(trainer_config);
  (void)trainer.train();
  auto green = trainer.make_scheduler("GreenNFV(MaxT)");

  const EvalResult result =
      evaluate_scheduler(trainer_config.env, *green, 8, 123);
  // Greedy policy after training should mostly live inside the budget.
  EXPECT_GE(result.sla_satisfaction, 0.5);
  EXPECT_LE(result.mean_energy_j, budget * 1.3);
}

TEST(ModelComparison, ApexTrainingProducesUsablePolicy) {
  TrainerConfig trainer_config;
  trainer_config.env = eval_config(Sla::energy_efficiency());
  trainer_config.env.steps_per_episode = 3;
  trainer_config.episodes = 24;
  trainer_config.use_apex = true;
  trainer_config.apex.num_actors = 2;
  trainer_config.apex.learn_start = 32;
  trainer_config.ddpg.batch_size = 16;
  trainer_config.seed = 13;
  GreenNfvTrainer trainer(trainer_config);
  const TrainResult result = trainer.train();
  EXPECT_GT(result.train_steps, 0);
  EXPECT_GT(result.tail_gbps, 0.0);
  auto sched = trainer.make_scheduler("GreenNFV");
  const EvalResult eval =
      evaluate_scheduler(trainer_config.env, *sched, 4, 17);
  EXPECT_GT(eval.mean_gbps, 0.0);
}

TEST(ModelComparison, EePstateTracksLoadBetterThanStaticBaselineOnEnergy) {
  const EnvConfig config = eval_config(Sla::energy_efficiency());
  BaselineScheduler baseline{config.spec};
  EePstateScheduler ee{config.spec, EePstateConfig{}};
  const EvalResult base = evaluate_scheduler(config, baseline, 8, 21);
  const EvalResult eep = evaluate_scheduler(config, ee, 8, 21,
                                            /*warmup=*/4);
  // EE-Pstate scales P-states (+ sleeps idle cores): must burn less energy
  // than the pure-polling performance-governor baseline.
  EXPECT_LT(eep.mean_energy_j, base.mean_energy_j);
}

}  // namespace
}  // namespace greennfv::core
