#include <gtest/gtest.h>

#include "core/greennfv.hpp"
#include "telemetry/recorder.hpp"

/// Reproducibility pin: the whole stack (common/rng.cpp xoshiro streams,
/// traffic realization, analytic engine, DDPG updates) is seed-determined,
/// so two synchronous training runs from the same TrainerConfig must agree
/// bit-for-bit — same TrainResult and same per-episode curves. If this test
/// starts failing, something introduced hidden global state or an
/// iteration-order dependence.

namespace greennfv::core {
namespace {

TrainerConfig small_config(std::uint64_t seed) {
  TrainerConfig config;
  config.env.num_chains = 2;
  config.env.num_flows = 3;
  config.env.window_s = 2.0;
  config.env.sub_windows = 2;
  config.env.steps_per_episode = 3;
  config.episodes = 6;
  config.ddpg.batch_size = 8;
  config.seed = seed;
  return config;
}

TEST(Determinism, SameSeedSameTrainResult) {
  telemetry::Recorder curves_a;
  telemetry::Recorder curves_b;
  GreenNfvTrainer trainer_a(small_config(42));
  GreenNfvTrainer trainer_b(small_config(42));
  const TrainResult a = trainer_a.train(&curves_a);
  const TrainResult b = trainer_b.train(&curves_b);

  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.train_steps, b.train_steps);
  EXPECT_EQ(a.tail_gbps, b.tail_gbps);
  EXPECT_EQ(a.tail_energy_j, b.tail_energy_j);
  EXPECT_EQ(a.tail_reward, b.tail_reward);
  EXPECT_EQ(a.tail_efficiency, b.tail_efficiency);

  ASSERT_EQ(curves_a.series_names(), curves_b.series_names());
  for (const std::string& name : curves_a.series_names()) {
    const TimeSeries& sa = curves_a.series(name);
    const TimeSeries& sb = curves_b.series(name);
    ASSERT_EQ(sa.size(), sb.size()) << "series " << name;
    EXPECT_EQ(sa.values(), sb.values()) << "series " << name;
  }
}

TEST(Determinism, SameSeedSameTrainResultUniformReplay) {
  // Same pin with uniform replay: the batched train_step gathers through
  // UniformReplay::sample_into, which must draw the same RNG sequence on
  // every run.
  TrainerConfig config = small_config(99);
  config.prioritized_replay = false;
  telemetry::Recorder curves_a;
  telemetry::Recorder curves_b;
  GreenNfvTrainer trainer_a(config);
  GreenNfvTrainer trainer_b(config);
  const TrainResult a = trainer_a.train(&curves_a);
  const TrainResult b = trainer_b.train(&curves_b);

  EXPECT_EQ(a.train_steps, b.train_steps);
  EXPECT_EQ(a.tail_gbps, b.tail_gbps);
  EXPECT_EQ(a.tail_reward, b.tail_reward);
  for (const std::string& name : curves_a.series_names()) {
    EXPECT_EQ(curves_a.series(name).values(), curves_b.series(name).values())
        << "series " << name;
  }
}

TEST(Determinism, DifferentSeedDifferentTrajectory) {
  GreenNfvTrainer trainer_a(small_config(42));
  GreenNfvTrainer trainer_b(small_config(43));
  const TrainResult a = trainer_a.train();
  const TrainResult b = trainer_b.train();
  // A seed change reshuffles traffic, exploration noise, and weight init;
  // a bit-identical reward tail would mean the seed is being ignored.
  EXPECT_NE(a.tail_reward, b.tail_reward);
}

}  // namespace
}  // namespace greennfv::core
