#include <gtest/gtest.h>

#include "core/ee_pstate.hpp"
#include "core/greennfv.hpp"
#include "core/heuristic.hpp"
#include "core/nf_controller.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"

/// Golden equivalence: the paper-default scenario through ExperimentRunner
/// must reproduce the exact per-model numbers the pre-redesign fig9 wiring
/// produced. The legacy wiring is replicated here verbatim (the old
/// bench/train_util.hpp standard_env/standard_trainer constants and the
/// old fig9 seed offsets); the budgets are shrunk identically on both
/// sides to keep the test fast. Same seeds -> identical EvalReport
/// metrics, bit for bit.

namespace greennfv::core {
namespace {

constexpr int kEpisodes = 3;
constexpr int kQEpisodes = 3;
constexpr int kCandidates = 1;
constexpr int kEvalWindows = 3;
constexpr int kStepsPerEpisode = 3;
constexpr std::uint64_t kSeed = 42;

/// The old bench::standard_env with the test's reduced step count.
EnvConfig legacy_env(Sla sla) {
  EnvConfig env;
  env.num_chains = 3;
  env.num_flows = 5;
  env.total_offered_gbps = 12.0;
  env.window_s = 10.0;
  env.sub_windows = 5;
  env.steps_per_episode = kStepsPerEpisode;
  env.sla = sla;
  return env;
}

/// The old bench::standard_trainer.
TrainerConfig legacy_trainer(Sla sla) {
  TrainerConfig trainer;
  trainer.env = legacy_env(sla);
  trainer.episodes = kEpisodes;
  trainer.seed = kSeed;
  trainer.prioritized_replay = true;
  trainer.noise_sigma = 0.45;
  trainer.noise_decay = 0.9985;
  return trainer;
}

/// The pre-redesign fig9 main, constants inlined.
std::vector<EvalResult> legacy_fig9() {
  const EnvConfig env_ee = legacy_env(Sla::energy_efficiency());
  const double budget = 2000.0;
  const double floor = 7.5;
  const double reference_j = env_ee.spec.p_max_w * env_ee.window_s;

  TrainerConfig mine_cfg = legacy_trainer(Sla::min_energy(floor,
                                                          reference_j));
  auto green_mine =
      train_best_scheduler(mine_cfg, "GreenNFV(MinE)", kCandidates);

  TrainerConfig maxt_cfg = legacy_trainer(Sla::max_throughput(budget));
  maxt_cfg.seed = kSeed + 1;
  auto green_maxt =
      train_best_scheduler(maxt_cfg, "GreenNFV(MaxT)", kCandidates);

  TrainerConfig ee_cfg = legacy_trainer(Sla::energy_efficiency());
  ee_cfg.seed = kSeed + 2;
  auto green_ee = train_best_scheduler(ee_cfg, "GreenNFV(EE)", kCandidates);

  auto qlearning =
      train_qlearning_scheduler(env_ee, kQEpisodes, kSeed + 3);

  BaselineScheduler baseline{env_ee.spec};
  HeuristicScheduler heuristic{env_ee.spec, HeuristicConfig{}};
  EePstateScheduler ee_pstate{env_ee.spec, EePstateConfig{}};

  struct Entry {
    Scheduler* scheduler;
    int warmup;
  };
  const Entry entries[] = {
      {&baseline, 2},    {&heuristic, 40},    {&ee_pstate, 6},
      {qlearning.get(), 2}, {green_mine.get(), 2}, {green_maxt.get(), 2},
      {green_ee.get(), 2},
  };

  std::vector<EvalResult> results;
  for (const Entry& entry : entries) {
    results.push_back(evaluate_scheduler(env_ee, *entry.scheduler,
                                         kEvalWindows, kSeed + 77,
                                         entry.warmup));
  }
  return results;
}

TEST(GoldenEquivalence, PaperDefaultReproducesLegacyFig9Numbers) {
  scenario::ScenarioSpec spec = scenario::preset("paper-default");
  spec.episodes = kEpisodes;
  spec.q_episodes = kQEpisodes;
  spec.candidates = kCandidates;
  spec.eval_windows = kEvalWindows;
  spec.steps_per_episode = kStepsPerEpisode;
  spec.seed = kSeed;

  scenario::ExperimentRunner runner(spec);
  const scenario::EvalReport report =
      runner.run(scenario::default_roster(spec));
  const std::vector<EvalResult> legacy = legacy_fig9();

  ASSERT_EQ(report.models.size(), legacy.size());
  const char* const names[] = {"Baseline",       "Heuristics",
                               "EE-Pstate",      "Q-Learning",
                               "GreenNFV(MinE)", "GreenNFV(MaxT)",
                               "GreenNFV(EE)"};
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const EvalResult& now = report.models[i].result;
    const EvalResult& then = legacy[i];
    SCOPED_TRACE(names[i]);
    EXPECT_EQ(now.scheduler, names[i]);
    EXPECT_DOUBLE_EQ(now.mean_gbps, then.mean_gbps);
    EXPECT_DOUBLE_EQ(now.mean_energy_j, then.mean_energy_j);
    EXPECT_DOUBLE_EQ(now.mean_power_w, then.mean_power_w);
    EXPECT_DOUBLE_EQ(now.mean_efficiency, then.mean_efficiency);
    EXPECT_DOUBLE_EQ(now.sla_satisfaction, then.sla_satisfaction);
    EXPECT_DOUBLE_EQ(now.drop_fraction, then.drop_fraction);
    EXPECT_EQ(now.windows, then.windows);
  }
}

}  // namespace
}  // namespace greennfv::core
