#include <gtest/gtest.h>

#include "common/string_util.hpp"
#include "core/nf_controller.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"

/// ExperimentRunner contract: the single-node path is byte-for-byte the
/// pre-scenario evaluation harness; the cluster path partitions chains and
/// traffic per node and aggregates fleet metrics; rosters filter by name
/// with hard errors on typos.

namespace greennfv::scenario {
namespace {

ScenarioSpec tiny(const std::string& name) {
  ScenarioSpec spec = preset(name);
  spec.eval_windows = 3;
  spec.episodes = 2;
  spec.q_episodes = 2;
  spec.candidates = 1;
  spec.steps_per_episode = 2;
  return spec;
}

TEST(ExperimentRunner, SingleNodeMatchesEvaluateSchedulerExactly) {
  const ScenarioSpec spec = tiny("paper-default");
  ExperimentRunner runner(spec);
  const std::vector<SchedulerFactory> roster = untrained_roster(spec);
  const EvalReport report = runner.run(roster);

  // Replay the legacy call for the same models: identical numbers.
  for (const auto& entry : roster) {
    const auto scheduler = entry.make(spec.env_config(), spec.seed);
    const core::EvalResult direct = core::evaluate_scheduler(
        spec.env_config(), *scheduler, spec.eval_windows, spec.seed + 77,
        entry.warmup);
    const auto& via_runner =
        report.models[static_cast<std::size_t>(
                          &entry - roster.data())]
            .result;
    EXPECT_DOUBLE_EQ(via_runner.mean_gbps, direct.mean_gbps) << entry.name;
    EXPECT_DOUBLE_EQ(via_runner.mean_energy_j, direct.mean_energy_j);
    EXPECT_DOUBLE_EQ(via_runner.mean_efficiency, direct.mean_efficiency);
    EXPECT_DOUBLE_EQ(via_runner.sla_satisfaction, direct.sla_satisfaction);
    EXPECT_DOUBLE_EQ(via_runner.drop_fraction, direct.drop_fraction);
  }
}

TEST(ExperimentRunner, RecordsPerWindowSeriesUnderModelPrefixes) {
  const ScenarioSpec spec = tiny("paper-default");
  ExperimentRunner runner(spec);
  const EvalReport report = runner.run(untrained_roster(spec));
  for (const char* series :
       {"throughput_gbps", "energy_j", "power_w", "efficiency",
        "drop_fraction"}) {
    const std::string name = series_prefix("EE-Pstate") + series;
    ASSERT_TRUE(report.series.has(name)) << name;
    EXPECT_EQ(report.series.series(name).size(),
              static_cast<std::size_t>(spec.eval_windows));
  }
}

TEST(ExperimentRunner, ClusterPartitionsChainsAndAggregatesFleetMetrics) {
  const ScenarioSpec spec = tiny("heterogeneous-cluster");
  ExperimentRunner runner(spec);

  // Placement must cover all six chains over the populated nodes.
  int chains = 0;
  int flows = 0;
  for (const auto& env : runner.node_envs()) {
    EXPECT_GE(env.num_chains, 1);
    EXPECT_EQ(env.chain_nfs.size(),
              static_cast<std::size_t>(env.num_chains));
    EXPECT_FALSE(env.flows.empty());
    chains += env.num_chains;
    flows += static_cast<int>(env.flows.size());
  }
  EXPECT_EQ(chains, spec.num_chains);
  EXPECT_EQ(flows, spec.num_flows);
  EXPECT_EQ(static_cast<int>(runner.node_envs().size()) +
                runner.idle_nodes(),
            spec.num_nodes);

  const std::vector<SchedulerFactory> roster =
      filter_roster(untrained_roster(spec), "baseline");
  const EvalReport report = runner.run(roster);
  const auto& model = report.models.at(0);

  // The aggregate series is the per-window sum over node series (plus the
  // idle-node charge), and the reported means are its window means.
  const auto& agg = report.series.series(model.prefix + "throughput_gbps");
  ASSERT_EQ(agg.size(), static_cast<std::size_t>(spec.eval_windows));
  const auto& agg_drop =
      report.series.series(model.prefix + "drop_fraction");
  double mean = 0.0;
  for (std::size_t w = 0; w < agg.size(); ++w) {
    double sum = 0.0;
    double offered = 0.0;
    double drop_weighted = 0.0;
    for (std::size_t n = 0; n < runner.node_envs().size(); ++n) {
      const std::string p = model.prefix + format("node%zu_", n);
      sum += report.series.series(p + "throughput_gbps").values()[w];
      const double node_offered =
          report.series.series(p + "offered_pps").values()[w];
      offered += node_offered;
      drop_weighted +=
          report.series.series(p + "drop_fraction").values()[w] *
          node_offered;
    }
    EXPECT_NEAR(agg.values()[w], sum, 1e-9);
    // Fleet drops weight each node by its *offered* load.
    EXPECT_NEAR(agg_drop.values()[w], drop_weighted / offered, 1e-9);
    mean += agg.values()[w];
  }
  mean /= static_cast<double>(spec.eval_windows);
  EXPECT_NEAR(model.result.mean_gbps, mean, 1e-9);
  // A 3-node fleet must burn at least 3x idle power.
  EXPECT_GT(model.result.mean_power_w, 3 * 0.9 * spec.node.p_idle_w);
}

TEST(Roster, FilterPicksByForgivingNameAndRejectsTypos) {
  const ScenarioSpec spec = tiny("paper-default");
  const auto roster = default_roster(spec);
  ASSERT_EQ(roster.size(), 7u);
  const auto picked = filter_roster(roster, "greennfv-maxt,BASELINE");
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].name, "GreenNFV(MaxT)");
  EXPECT_EQ(picked[1].name, "Baseline");
  EXPECT_THROW((void)filter_roster(roster, "greennfv-maxx"),
               std::invalid_argument);
  EXPECT_THROW((void)filter_roster(roster, "baselne"),
               std::invalid_argument);
}

TEST(Roster, SeriesPrefixSanitizesModelNames) {
  EXPECT_EQ(series_prefix("GreenNFV(MaxT)"), "greennfv_maxt_");
  EXPECT_EQ(series_prefix("EE-Pstate"), "ee_pstate_");
  EXPECT_EQ(series_prefix("Q-Learning"), "q_learning_");
}

TEST(ExperimentRunner, WarmupDoesNotShiftTheProfileModelsAreMeasuredOn) {
  // Deterministic CBR workload + static Baseline: two roster entries that
  // differ only in warmup must measure identical per-window series — the
  // flash crowd has to hit both at the same recorded time.
  ScenarioSpec spec = tiny("paper-default");
  spec.num_chains = 1;
  // Light enough that the untuned baseline is offered-limited, so the
  // surge is visible in goodput (not swallowed by saturation).
  spec.flows = {flow_from_text("udp:cbr:512:2e5:0", 0)};
  spec.num_flows = 1;
  spec.window_s = 1.0;
  spec.sub_windows = 1;
  spec.eval_windows = 6;
  spec.profile.kind = traffic::RateProfile::Kind::kFlashCrowd;
  spec.profile.surge_start_s = 2.0;
  spec.profile.surge_duration_s = 2.0;
  spec.profile.surge_factor = 1.3;

  auto roster = untrained_roster(spec);
  SchedulerFactory early = roster.front();  // Baseline
  SchedulerFactory late = early;
  early.warmup = 0;
  late.name = "Baseline-late";
  late.warmup = 4;

  ExperimentRunner runner(spec);
  telemetry::Recorder series;
  const ModelReport a = runner.run_model(early, &series);
  const ModelReport b = runner.run_model(late, &series);
  const auto& thr_a = series.series(a.prefix + "throughput_gbps");
  const auto& thr_b = series.series(b.prefix + "throughput_gbps");
  ASSERT_EQ(thr_a.size(), thr_b.size());
  double peak = 0.0;
  for (std::size_t w = 0; w < thr_a.size(); ++w) {
    EXPECT_DOUBLE_EQ(thr_a.values()[w], thr_b.values()[w]) << "window " << w;
    peak = std::max(peak, thr_a.values()[w]);
  }
  // And the surge actually lands inside the measured horizon (windows 2-3).
  EXPECT_GT(peak, thr_a.values()[0]);
}

TEST(ExperimentRunner, NonSteadyProfileChangesTheMeasurement) {
  // Same seed, same topology: a flash-crowd envelope must change what the
  // identical scheduler measures — proof the profile reaches the engine.
  ScenarioSpec steady = tiny("paper-default");
  ScenarioSpec crowd = steady;
  crowd.profile.kind = traffic::RateProfile::Kind::kFlashCrowd;
  crowd.profile.surge_start_s = 0.0;
  crowd.profile.surge_duration_s = 1e9;
  crowd.profile.surge_factor = 2.0;

  const auto roster = untrained_roster(steady);
  const auto& baseline = roster.front();
  ExperimentRunner steady_runner(steady);
  ExperimentRunner crowd_runner(crowd);
  const auto steady_report = steady_runner.run({baseline});
  const auto crowd_report = crowd_runner.run({baseline});
  EXPECT_NE(steady_report.models[0].result.mean_gbps,
            crowd_report.models[0].result.mean_gbps);
}

}  // namespace
}  // namespace greennfv::scenario
