#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "scenario/presets.hpp"
#include "scenario/scenario_spec.hpp"

/// ScenarioSpec contract: Config/file round-trips are lossless, the preset
/// registry resolves by name (unknown names are a hard error), and invalid
/// scenarios are rejected with named fields.

namespace greennfv::scenario {
namespace {

TEST(ScenarioSpec, ConfigTextRoundTripsEveryPreset) {
  for (const std::string& name : preset_names()) {
    const ScenarioSpec original = preset(name);
    const std::string text = original.to_text();
    ScenarioSpec reparsed;
    reparsed.apply(Config::from_string(text));
    EXPECT_EQ(reparsed.to_text(), text) << "preset " << name;
  }
}

TEST(ScenarioSpec, ToTextOnlyEmitsKnownKeys) {
  // The serialized form must be accepted by the same vocabulary the
  // benches use for check_known — otherwise saved files would be rejected.
  const Config config =
      Config::from_string(preset("heterogeneous-cluster").to_text());
  EXPECT_NO_THROW(config.check_known(ScenarioSpec::known_keys(),
                                     ScenarioSpec::known_prefixes()));
}

TEST(ScenarioSpec, FileRoundTripPreservesSpecAndTolerateComments) {
  const std::string path = "/tmp/gnfv_scenario_roundtrip.scenario";
  const ScenarioSpec original = preset("tcp-heavy");  // explicit flows
  original.save(path);
  const ScenarioSpec loaded = ScenarioSpec::load(path);
  EXPECT_EQ(loaded.to_text(), original.to_text());
  EXPECT_EQ(loaded.flows.size(), original.flows.size());
  EXPECT_EQ(loaded.flows[1].proto, traffic::Protocol::kTcp);
  EXPECT_EQ(loaded.flows[1].arrival, traffic::ArrivalKind::kMmpp);

  // Comments and blank lines are workload documentation, not errors.
  std::ofstream out(path, std::ios::app);
  out << "\n# trailing comment\nseed=7 # inline comment\n";
  out.close();
  const ScenarioSpec commented = ScenarioSpec::load(path);
  EXPECT_EQ(commented.seed, 7u);
  std::remove(path.c_str());
}

TEST(ScenarioSpec, LoadRejectsMistypedKeys) {
  const std::string path = "/tmp/gnfv_scenario_typo.scenario";
  std::ofstream out(path);
  out << "epizodes=100\n";
  out.close();
  EXPECT_THROW((void)ScenarioSpec::load(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Presets, RegistryResolvesEveryNameAndValidates) {
  const auto names = preset_names();
  ASSERT_GE(names.size(), 5u);
  for (const auto& name : names) {
    const ScenarioSpec spec = preset(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_NO_THROW(spec.validate()) << name;
  }
}

TEST(Presets, UnknownNameIsAHardError) {
  try {
    (void)preset("paper-defalt");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the typo and lists what exists.
    const std::string what = e.what();
    EXPECT_NE(what.find("paper-defalt"), std::string::npos);
    EXPECT_NE(what.find("paper-default"), std::string::npos);
  }
}

TEST(Presets, ResolveAppliesOverridesOnTopOfThePreset) {
  const Config config = Config::from_string(
      "scenario=paper-default chains=4 profile=diurnal seed=9");
  const ScenarioSpec spec = resolve(config);
  EXPECT_EQ(spec.num_chains, 4);
  EXPECT_EQ(spec.profile.kind, traffic::RateProfile::Kind::kDiurnal);
  EXPECT_EQ(spec.seed, 9u);
  // Untouched fields keep the preset's values.
  EXPECT_EQ(spec.num_flows, 5);
}

TEST(Presets, ResolveRejectsScenarioPlusScenarioFile) {
  const Config config =
      Config::from_string("scenario=paper-default scenario_file=x");
  EXPECT_THROW((void)resolve(config), std::invalid_argument);
}

TEST(ScenarioSpec, SlaConstructionUsesScenarioConstants) {
  ScenarioSpec spec;
  spec.sla_kind = core::SlaKind::kMaxThroughput;
  spec.energy_budget_j = 1234.0;
  EXPECT_EQ(spec.sla().kind(), core::SlaKind::kMaxThroughput);
  EXPECT_DOUBLE_EQ(spec.sla().energy_budget_j(), 1234.0);

  spec.sla_kind = core::SlaKind::kMinEnergy;
  spec.throughput_floor_gbps = 6.5;
  EXPECT_DOUBLE_EQ(spec.sla().throughput_floor_gbps(), 6.5);
}

TEST(ScenarioSpecValidation, RejectsZeroChains) {
  ScenarioSpec spec;
  spec.num_chains = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsEmptyTrafficMix) {
  ScenarioSpec spec;
  spec.num_flows = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsNonPositiveRates) {
  ScenarioSpec spec;
  spec.total_offered_gbps = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  ScenarioSpec explicit_spec;
  explicit_spec.flows = {flow_from_text("udp:cbr:512:0:0", 0)};
  explicit_spec.num_flows = 1;
  EXPECT_THROW(explicit_spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsFlowTargetingMissingChain) {
  ScenarioSpec spec;
  spec.flows = {flow_from_text("udp:cbr:512:1e6:7", 0)};
  spec.num_flows = 1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsUnknownNfNames) {
  ScenarioSpec spec;
  spec.num_chains = 1;
  spec.chain_nfs = {{"firewall", "warp_drive"}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsBadProfileParameters) {
  ScenarioSpec spec;
  spec.profile.kind = traffic::RateProfile::Kind::kDiurnal;
  spec.profile.amplitude = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsClusterWithFewerChainsThanNodes) {
  ScenarioSpec spec;
  spec.num_nodes = 4;
  spec.num_chains = 3;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecApply, RejectsConflictingCountsAndUnknownEnums) {
  ScenarioSpec spec;
  EXPECT_THROW(
      spec.apply(Config::from_string("chains=3 chain0=firewall")),
      std::invalid_argument);
  EXPECT_THROW(spec.apply(Config::from_string("sla=fastest")),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(Config::from_string("profile=lunar")),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(Config::from_string("flow0=udp:cbr:512")),
               std::invalid_argument);
}

TEST(ScenarioSpecApply, RejectsIndexGapsInChainAndFlowFamilies) {
  // A gap must not silently truncate the list.
  ScenarioSpec spec;
  EXPECT_THROW(spec.apply(Config::from_string(
                   "chain0=firewall chain1=nat chain3=ids")),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(Config::from_string(
                   "flow0=udp:cbr:512:1e6:0 flow2=udp:cbr:512:1e6:0")),
               std::invalid_argument);
  // ...including a family that never starts at 0.
  EXPECT_THROW(spec.apply(Config::from_string("chain1=firewall")),
               std::invalid_argument);
  EXPECT_THROW(
      spec.apply(Config::from_string("flow1=udp:cbr:512:1e6:0")),
      std::invalid_argument);
}

// --- the fleet.* key family --------------------------------------------------

TEST(FleetSpec, KeysApplySerializeAndRoundTrip) {
  ScenarioSpec spec;
  spec.apply(Config::from_string(
      "fleet.enabled=1 fleet.horizon=24 fleet.arrival_rate=0.8"
      " fleet.mean_holding=12 fleet.flows_per_chain=3 fleet.chain_gbps=5"
      " fleet.policy=consolidate fleet.migration=0"
      " fleet.migration_downtime_s=0.25 fleet.migration_energy_j=40"
      " fleet.consolidate_below=0.5 fleet.power_gating=0"
      " fleet.sleep_after=4 node_p_sleep_w=5 node_wake_latency_s=2"));
  EXPECT_TRUE(spec.fleet.enabled);
  EXPECT_EQ(spec.fleet.horizon_windows, 24);
  EXPECT_DOUBLE_EQ(spec.fleet.arrival_rate, 0.8);
  EXPECT_DOUBLE_EQ(spec.fleet.mean_holding_windows, 12.0);
  EXPECT_EQ(spec.fleet.flows_per_chain, 3);
  EXPECT_DOUBLE_EQ(spec.fleet.chain_offered_gbps, 5.0);
  EXPECT_EQ(spec.fleet.policy, "consolidate");
  EXPECT_FALSE(spec.fleet.migration);
  EXPECT_DOUBLE_EQ(spec.fleet.migration_downtime_s, 0.25);
  EXPECT_DOUBLE_EQ(spec.fleet.migration_energy_j, 40.0);
  EXPECT_DOUBLE_EQ(spec.fleet.consolidate_below, 0.5);
  EXPECT_FALSE(spec.fleet.power_gating);
  EXPECT_EQ(spec.fleet.sleep_after_windows, 4);
  EXPECT_DOUBLE_EQ(spec.node.p_sleep_w, 5.0);
  EXPECT_DOUBLE_EQ(spec.node.wake_latency_s, 2.0);
  EXPECT_NO_THROW(spec.validate());

  // Lossless round trip through the serialized form.
  ScenarioSpec reparsed;
  reparsed.apply(Config::from_string(spec.to_text()));
  EXPECT_EQ(reparsed.to_text(), spec.to_text());
}

TEST(FleetSpec, ValidationNamesTheOffendingField) {
  const auto rejects = [](const std::string& overrides) {
    ScenarioSpec spec;
    spec.apply(Config::from_string(overrides));
    EXPECT_THROW(spec.validate(), std::invalid_argument) << overrides;
  };
  rejects("fleet.policy=round-robin");
  rejects("fleet.horizon=-1");
  rejects("fleet.arrival_rate=-0.5");
  rejects("fleet.mean_holding=0");
  rejects("fleet.flows_per_chain=0");
  rejects("fleet.chain_gbps=0");
  rejects("fleet.migration_downtime_s=-1");
  rejects("fleet.consolidate_below=1.5");
  rejects("fleet.sleep_after=0");
  rejects("node_p_sleep_w=-1");
  rejects("fleet.enabled=1 node_p_sleep_w=100");  // above p_idle_w
  rejects("node_wake_latency_s=-1");
}

TEST(FleetSpec, SleepAboveIdleOnlyBindsFleetRuns) {
  // A pre-fleet scenario with a tiny idle draw (below the new 8 W sleep
  // default it never asked for) must stay valid — the cross-field check
  // binds only when the orchestrator actually gates nodes.
  ScenarioSpec spec;
  spec.apply(Config::from_string("node_p_idle_w=5"));
  EXPECT_NO_THROW(spec.validate());
  spec.fleet.enabled = true;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(FleetSpec, MistypedFleetKeysAreAHardError) {
  // The fleet.* vocabulary is enumerated in known_keys, so check_known
  // (the machinery every scenario-driven CLI runs) rejects typos.
  const Config config = Config::from_string("fleet.polcy=consolidate");
  EXPECT_THROW(config.check_known(ScenarioSpec::known_keys(),
                                  ScenarioSpec::known_prefixes()),
               std::invalid_argument);
  const std::string path = "/tmp/gnfv_fleet_typo.scenario";
  std::ofstream out(path);
  out << "fleet.arival_rate=1\n";
  out.close();
  EXPECT_THROW((void)ScenarioSpec::load(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(TopologySpec, KeysApplySerializeAndRoundTrip) {
  ScenarioSpec spec;
  spec.apply(Config::from_string(
      "fleet.enabled=1 topology.enabled=1 topology.preset=fat-tree"
      " topology.routing=widest topology.hosts_per_leaf=6 topology.spines=3"
      " topology.fat_k=6 topology.link_gbps=25 topology.link_latency_us=2.5"
      " topology.core_gbps=50 topology.core_latency_us=8"
      " topology.link_idle_w=1.5 topology.link_nj_per_bit=0.25"
      " sla.latency=40"));
  EXPECT_TRUE(spec.topology.enabled);
  EXPECT_EQ(spec.topology.preset, "fat-tree");
  EXPECT_EQ(spec.topology.routing, "widest");
  EXPECT_EQ(spec.topology.hosts_per_leaf, 6);
  EXPECT_EQ(spec.topology.spines, 3);
  EXPECT_EQ(spec.topology.fat_k, 6);
  EXPECT_DOUBLE_EQ(spec.topology.link_gbps, 25.0);
  EXPECT_DOUBLE_EQ(spec.topology.link_latency_us, 2.5);
  EXPECT_DOUBLE_EQ(spec.topology.core_gbps, 50.0);
  EXPECT_DOUBLE_EQ(spec.topology.core_latency_us, 8.0);
  EXPECT_DOUBLE_EQ(spec.topology.link_idle_w, 1.5);
  EXPECT_DOUBLE_EQ(spec.topology.link_nj_per_bit, 0.25);
  EXPECT_DOUBLE_EQ(spec.latency_sla_us, 40.0);
  EXPECT_NO_THROW(spec.validate());

  ScenarioSpec reparsed;
  reparsed.apply(Config::from_string(spec.to_text()));
  EXPECT_EQ(reparsed.to_text(), spec.to_text());
}

TEST(TopologySpec, ValidationNamesTheOffendingField) {
  const auto rejects = [](const std::string& overrides) {
    ScenarioSpec spec;
    spec.apply(Config::from_string(overrides));
    EXPECT_THROW(spec.validate(), std::invalid_argument) << overrides;
  };
  rejects("topology.preset=torus");
  rejects("topology.routing=ecmp");
  rejects("fleet.enabled=1 topology.enabled=1 topology.link_gbps=0");
  rejects("fleet.enabled=1 topology.enabled=1 topology.hosts_per_leaf=0");
  rejects("fleet.enabled=1 topology.enabled=1 topology.fat_k=3");
  rejects("fleet.enabled=1 topology.enabled=1 topology.link_idle_w=-1");
  rejects("fleet.enabled=1 topology.enabled=1 topology.link_latency_us=-1");
  // The fabric needs the dynamic fleet; a latency SLA needs the fabric.
  rejects("topology.enabled=1");
  rejects("fleet.enabled=1 sla.latency=40");
  rejects("fleet.enabled=1 topology.enabled=1 sla.latency=-5");
}

TEST(TopologySpec, MistypedTopologyKeysAreAHardError) {
  for (const char* typo :
       {"topology.enbled=1", "topology.presets=leaf-spine",
        "topology.link_gb=40", "sla.latancy=40"}) {
    const Config config = Config::from_string(typo);
    EXPECT_THROW(config.check_known(ScenarioSpec::known_keys(),
                                    ScenarioSpec::known_prefixes()),
                 std::invalid_argument)
        << typo;
  }
}

TEST(FleetSpec, ClusterChainFloorIsRelaxedForDynamicFleets) {
  // Static cluster runs need a chain per node; a dynamic fleet may start
  // smaller and fill up through arrivals.
  ScenarioSpec spec;
  spec.num_nodes = 4;
  spec.num_chains = 2;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.fleet.enabled = true;
  EXPECT_NO_THROW(spec.validate());
}

}  // namespace
}  // namespace greennfv::scenario
