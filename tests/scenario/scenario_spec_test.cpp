#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "scenario/presets.hpp"
#include "scenario/scenario_spec.hpp"

/// ScenarioSpec contract: Config/file round-trips are lossless, the preset
/// registry resolves by name (unknown names are a hard error), and invalid
/// scenarios are rejected with named fields.

namespace greennfv::scenario {
namespace {

TEST(ScenarioSpec, ConfigTextRoundTripsEveryPreset) {
  for (const std::string& name : preset_names()) {
    const ScenarioSpec original = preset(name);
    const std::string text = original.to_text();
    ScenarioSpec reparsed;
    reparsed.apply(Config::from_string(text));
    EXPECT_EQ(reparsed.to_text(), text) << "preset " << name;
  }
}

TEST(ScenarioSpec, ToTextOnlyEmitsKnownKeys) {
  // The serialized form must be accepted by the same vocabulary the
  // benches use for check_known — otherwise saved files would be rejected.
  const Config config =
      Config::from_string(preset("heterogeneous-cluster").to_text());
  EXPECT_NO_THROW(config.check_known(ScenarioSpec::known_keys(),
                                     ScenarioSpec::known_prefixes()));
}

TEST(ScenarioSpec, FileRoundTripPreservesSpecAndTolerateComments) {
  const std::string path = "/tmp/gnfv_scenario_roundtrip.scenario";
  const ScenarioSpec original = preset("tcp-heavy");  // explicit flows
  original.save(path);
  const ScenarioSpec loaded = ScenarioSpec::load(path);
  EXPECT_EQ(loaded.to_text(), original.to_text());
  EXPECT_EQ(loaded.flows.size(), original.flows.size());
  EXPECT_EQ(loaded.flows[1].proto, traffic::Protocol::kTcp);
  EXPECT_EQ(loaded.flows[1].arrival, traffic::ArrivalKind::kMmpp);

  // Comments and blank lines are workload documentation, not errors.
  std::ofstream out(path, std::ios::app);
  out << "\n# trailing comment\nseed=7 # inline comment\n";
  out.close();
  const ScenarioSpec commented = ScenarioSpec::load(path);
  EXPECT_EQ(commented.seed, 7u);
  std::remove(path.c_str());
}

TEST(ScenarioSpec, LoadRejectsMistypedKeys) {
  const std::string path = "/tmp/gnfv_scenario_typo.scenario";
  std::ofstream out(path);
  out << "epizodes=100\n";
  out.close();
  EXPECT_THROW((void)ScenarioSpec::load(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Presets, RegistryResolvesEveryNameAndValidates) {
  const auto names = preset_names();
  ASSERT_GE(names.size(), 5u);
  for (const auto& name : names) {
    const ScenarioSpec spec = preset(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_NO_THROW(spec.validate()) << name;
  }
}

TEST(Presets, UnknownNameIsAHardError) {
  try {
    (void)preset("paper-defalt");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the typo and lists what exists.
    const std::string what = e.what();
    EXPECT_NE(what.find("paper-defalt"), std::string::npos);
    EXPECT_NE(what.find("paper-default"), std::string::npos);
  }
}

TEST(Presets, ResolveAppliesOverridesOnTopOfThePreset) {
  const Config config = Config::from_string(
      "scenario=paper-default chains=4 profile=diurnal seed=9");
  const ScenarioSpec spec = resolve(config);
  EXPECT_EQ(spec.num_chains, 4);
  EXPECT_EQ(spec.profile.kind, traffic::RateProfile::Kind::kDiurnal);
  EXPECT_EQ(spec.seed, 9u);
  // Untouched fields keep the preset's values.
  EXPECT_EQ(spec.num_flows, 5);
}

TEST(Presets, ResolveRejectsScenarioPlusScenarioFile) {
  const Config config =
      Config::from_string("scenario=paper-default scenario_file=x");
  EXPECT_THROW((void)resolve(config), std::invalid_argument);
}

TEST(ScenarioSpec, SlaConstructionUsesScenarioConstants) {
  ScenarioSpec spec;
  spec.sla_kind = core::SlaKind::kMaxThroughput;
  spec.energy_budget_j = 1234.0;
  EXPECT_EQ(spec.sla().kind(), core::SlaKind::kMaxThroughput);
  EXPECT_DOUBLE_EQ(spec.sla().energy_budget_j(), 1234.0);

  spec.sla_kind = core::SlaKind::kMinEnergy;
  spec.throughput_floor_gbps = 6.5;
  EXPECT_DOUBLE_EQ(spec.sla().throughput_floor_gbps(), 6.5);
}

TEST(ScenarioSpecValidation, RejectsZeroChains) {
  ScenarioSpec spec;
  spec.num_chains = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsEmptyTrafficMix) {
  ScenarioSpec spec;
  spec.num_flows = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsNonPositiveRates) {
  ScenarioSpec spec;
  spec.total_offered_gbps = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  ScenarioSpec explicit_spec;
  explicit_spec.flows = {flow_from_text("udp:cbr:512:0:0", 0)};
  explicit_spec.num_flows = 1;
  EXPECT_THROW(explicit_spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsFlowTargetingMissingChain) {
  ScenarioSpec spec;
  spec.flows = {flow_from_text("udp:cbr:512:1e6:7", 0)};
  spec.num_flows = 1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsUnknownNfNames) {
  ScenarioSpec spec;
  spec.num_chains = 1;
  spec.chain_nfs = {{"firewall", "warp_drive"}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsBadProfileParameters) {
  ScenarioSpec spec;
  spec.profile.kind = traffic::RateProfile::Kind::kDiurnal;
  spec.profile.amplitude = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecValidation, RejectsClusterWithFewerChainsThanNodes) {
  ScenarioSpec spec;
  spec.num_nodes = 4;
  spec.num_chains = 3;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecApply, RejectsConflictingCountsAndUnknownEnums) {
  ScenarioSpec spec;
  EXPECT_THROW(
      spec.apply(Config::from_string("chains=3 chain0=firewall")),
      std::invalid_argument);
  EXPECT_THROW(spec.apply(Config::from_string("sla=fastest")),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(Config::from_string("profile=lunar")),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(Config::from_string("flow0=udp:cbr:512")),
               std::invalid_argument);
}

TEST(ScenarioSpecApply, RejectsIndexGapsInChainAndFlowFamilies) {
  // A gap must not silently truncate the list.
  ScenarioSpec spec;
  EXPECT_THROW(spec.apply(Config::from_string(
                   "chain0=firewall chain1=nat chain3=ids")),
               std::invalid_argument);
  EXPECT_THROW(spec.apply(Config::from_string(
                   "flow0=udp:cbr:512:1e6:0 flow2=udp:cbr:512:1e6:0")),
               std::invalid_argument);
  // ...including a family that never starts at 0.
  EXPECT_THROW(spec.apply(Config::from_string("chain1=firewall")),
               std::invalid_argument);
  EXPECT_THROW(
      spec.apply(Config::from_string("flow1=udp:cbr:512:1e6:0")),
      std::invalid_argument);
}

}  // namespace
}  // namespace greennfv::scenario
