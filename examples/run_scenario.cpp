/// Run any named or file-loaded scenario against the scheduler roster and
/// print the uniform EvalReport — the one declarative entry point for
/// every workload, scheduler, and figure.
///
///   build/example_run_scenario                         # paper-default
///   build/example_run_scenario scenario=flash-crowd
///   build/example_run_scenario scenario=heterogeneous-cluster
///       models=baseline,heuristics,ee-pstate        (one line)
///   build/example_run_scenario scenario_file=my.scenario episodes=200
///   build/example_run_scenario scenario=fleet-smoke    # dynamic fleet
///       models=baseline,ee-pstate                   (one line)
///   build/example_run_scenario list=1                  # preset table
///   build/example_run_scenario scenario=overload save=overload.scenario
///   build/example_run_scenario help=1                  # accepted keys
///
/// Any scenario key overrides the preset/file value (seed=7 chains=4
/// profile=diurnal ...). models= picks a roster subset; the default runs
/// all seven Fig. 9 models (training budgets come from the scenario).
///
/// Flight recorder: trace=<path> records spans (engine phases, routing,
/// RL passes) and writes a Perfetto/chrome://tracing JSON; metrics=1
/// prints the counter registry after the run; metrics_out=<path> writes
/// the same snapshot as JSON; series=1 samples the per-window fleet
/// health series and series_out=<path> exports it (.json for JSON, CSV
/// otherwise — fleet scenarios only); log_level= overrides the stderr
/// log threshold (also via GREENNFV_LOG_LEVEL); validate_trace=<path>
/// checks an emitted trace (spans AND counter samples) and exits.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <map>
#include <memory>

#include "common/fs_util.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"
#include "orchestrator/fleet.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/series.hpp"
#include "telemetry/trace.hpp"

using namespace greennfv;

namespace {

/// Parses and sanity-checks a Perfetto trace document: every traceEvent
/// must carry ph/ts/pid/tid/name, complete events need a finite dur, and
/// each thread's span-completion times (ts + dur) must be non-decreasing
/// in array order — spans append when they *close*, so nested spans
/// precede their parents but completion time is monotone per thread.
/// Returns 0 when healthy (the CI tier's proof the recorder emits a
/// loadable, ordered trace).
int validate_trace(const std::string& path) {
  const Json doc = Json::parse(read_file(path));
  const Json& events = doc.at("traceEvents");
  std::map<int, double> last_end_us;
  std::map<std::string, double> last_counter_value;
  std::size_t spans = 0;
  std::size_t counters = 0;
  for (const Json& event : events.elements()) {
    for (const char* key : {"ph", "ts", "pid", "tid", "name"}) {
      if (!event.has(key)) {
        GNFV_LOG_ERROR("run_scenario")
            << "trace " << path << ": event missing key '" << key << "'";
        return 2;
      }
    }
    const std::string ph = event.at("ph").as_string();
    const double ts = event.at("ts").as_double();
    if (!std::isfinite(ts) || ts < 0.0) {
      GNFV_LOG_ERROR("run_scenario")
          << "trace " << path << ": non-finite/negative ts";
      return 2;
    }
    if (ph == "C") {
      // Counter samples: non-empty name, finite value, and monotone
      // accumulation for the *_ns timer counters (they only ever add).
      const std::string& name = event.at("name").as_string();
      if (name.empty()) {
        GNFV_LOG_ERROR("run_scenario")
            << "trace " << path << ": counter sample with empty name";
        return 2;
      }
      const double value = event.at("args").at("value").as_double();
      if (!std::isfinite(value)) {
        GNFV_LOG_ERROR("run_scenario")
            << "trace " << path << ": counter '" << name
            << "' has non-finite value";
        return 2;
      }
      if (name.size() > 3 &&
          name.compare(name.size() - 3, 3, "_ns") == 0) {
        auto [it, fresh] = last_counter_value.emplace(name, value);
        if (!fresh) {
          if (value < it->second) {
            GNFV_LOG_ERROR("run_scenario")
                << "trace " << path << ": timer counter '" << name
                << "' decreased from " << it->second << " to " << value;
            return 2;
          }
          it->second = value;
        }
      }
      ++counters;
      continue;
    }
    if (ph != "X") {
      GNFV_LOG_ERROR("run_scenario")
          << "trace " << path << ": unexpected phase '" << ph << "'";
      return 2;
    }
    const double dur = event.at("dur").as_double();
    if (!std::isfinite(dur) || dur < 0.0) {
      GNFV_LOG_ERROR("run_scenario")
          << "trace " << path << ": span '"
          << event.at("name").as_string() << "' has bad dur";
      return 2;
    }
    const int tid = static_cast<int>(event.at("tid").as_double());
    const double end = ts + dur;
    auto [it, fresh] = last_end_us.emplace(tid, end);
    if (!fresh) {
      if (end < it->second) {
        GNFV_LOG_ERROR("run_scenario")
            << "trace " << path << ": tid " << tid << " span '"
            << event.at("name").as_string() << "' completes at " << end
            << " us, before prior " << it->second << " us";
        return 2;
      }
      it->second = end;
    }
    ++spans;
  }
  std::printf("trace %s: ok (%zu spans, %zu counter samples, %zu"
              " threads)\n",
              path.c_str(), spans, counters, last_end_us.size());
  return 0;
}

int run(const Config& config) {
  if (config.get_bool("list", false)) {
    std::printf("named scenarios:\n%s", scenario::preset_table().c_str());
    return 0;
  }
  if (scenario::print_help_if_requested(
          config, {"models", "list", "save", "csv", "trace", "metrics",
                   "metrics_out", "series", "series_out", "log_level",
                   "validate_trace"}))
    return 0;
  std::vector<std::string> keys = scenario::ScenarioSpec::known_keys();
  keys.insert(keys.end(), {"models", "list", "save", "csv", "trace",
                           "metrics", "metrics_out", "series", "series_out",
                           "log_level", "validate_trace", "help"});
  config.check_known(keys, scenario::ScenarioSpec::known_prefixes());

  if (const auto level = config.get("log_level"))
    set_log_level(log_level_from_name(*level));
  if (const auto path = config.get("validate_trace"))
    return validate_trace(*path);
  const auto trace_out = config.get("trace");
  const auto metrics_out = config.get("metrics_out");
  const bool metrics_on = config.get_bool("metrics", false);
  if (metrics_on || metrics_out) telemetry::metrics::set_enabled(true);
  if (trace_out) telemetry::trace::set_enabled(true);
  const auto series_out = config.get("series_out");
  const bool series_on = config.get_bool("series", false) || series_out;
  if (series_on) telemetry::series::set_enabled(true);

  const scenario::ScenarioSpec spec = scenario::resolve(config);
  if (const auto path = config.get("save")) {
    spec.save(*path);
    std::printf("wrote %s — rerun with scenario_file=%s\n", path->c_str(),
                path->c_str());
    return 0;
  }

  std::printf("scenario %s: %d node(s), %d chain(s), %d flow(s), %s"
              " profile, %s SLA, %d eval windows of %.1f s\n",
              spec.name.c_str(), spec.num_nodes, spec.num_chains,
              spec.num_flows,
              traffic::to_string(spec.profile.kind).c_str(),
              spec.sla().name().c_str(), spec.eval_windows, spec.window_s);

  std::vector<scenario::SchedulerFactory> roster =
      scenario::default_roster(spec);
  if (const auto models = config.get("models"))
    roster = scenario::filter_roster(roster, *models);

  scenario::EvalReport report;
  std::string fleet_summary;
  std::shared_ptr<const telemetry::SeriesTable> fleet_series;
  if (spec.fleet.enabled) {
    // Dynamic fleet: online arrivals/departures, migration, power gating.
    orchestrator::FleetOrchestrator fleet(spec);
    std::printf("fleet: %d window horizon, policy %s, %.2f arrivals/window,"
                " migration %s, power gating %s\n",
                fleet.horizon(), spec.fleet.policy.c_str(),
                spec.fleet.arrival_rate,
                spec.fleet.migration ? "on" : "off",
                spec.fleet.power_gating ? "on" : "off");
    if (spec.topology.enabled) {
      std::printf("fleet: topology %s (%s routing)",
                  spec.topology.preset.c_str(), spec.topology.routing.c_str());
      if (spec.latency_sla_us > 0.0)
        std::printf(", latency SLA %.0f us", spec.latency_sla_us);
      std::printf("\n");
    }
    orchestrator::FleetReport fleet_report = fleet.run(roster);
    fleet_summary = fleet_report.fleet_summary();
    report = std::move(fleet_report.report);
    fleet_series = fleet.timeline().series;
  } else {
    scenario::ExperimentRunner runner(spec);
    if (runner.idle_nodes() > 0)
      std::printf("placement left %d node(s) idle (charged at %.0f W)\n",
                  runner.idle_nodes(), spec.node.p_idle_w);
    report = runner.run(roster);
  }

  std::printf("\n");
  std::fputs(report.table().c_str(), stdout);
  if (!fleet_summary.empty()) {
    std::printf("\n");
    std::fputs(fleet_summary.c_str(), stdout);
  }

  if (const auto csv = config.get("csv")) {
    // Bare filenames are routed under out/ with every other artifact;
    // explicit paths are honoured as given.
    const std::string path =
        csv->find('/') == std::string::npos ? out_path(*csv) : *csv;
    report.series.to_csv(path);
    std::printf("\n[csv] wrote %s\n", path.c_str());
  }

  if (trace_out) {
    const std::string path = trace_out->find('/') == std::string::npos
                                 ? out_path(*trace_out)
                                 : *trace_out;
    telemetry::trace::write_json(path);
    std::printf("\n[trace] wrote %s (%zu events, %llu dropped) — load in"
                " ui.perfetto.dev or chrome://tracing\n",
                path.c_str(), telemetry::trace::recorded(),
                static_cast<unsigned long long>(
                    telemetry::trace::dropped()));
  }
  if (series_on) {
    if (fleet_series == nullptr) {
      std::printf("\n[series] nothing recorded — series sampling is"
                  " fleet-only (fleet.enabled scenarios)\n");
    } else if (series_out) {
      const std::string path = series_out->find('/') == std::string::npos
                                   ? out_path(*series_out)
                                   : *series_out;
      const bool as_json =
          path.size() > 5 &&
          path.compare(path.size() - 5, 5, ".json") == 0;
      if (as_json) {
        fleet_series->write_json(path);
      } else {
        fleet_series->write_csv(path);
      }
      std::printf("\n[series] wrote %s (%zu windows x %zu columns)\n",
                  path.c_str(), fleet_series->num_rows(),
                  fleet_series->num_columns());
    } else {
      std::printf("\n[series] recorded %zu windows x %zu columns — add"
                  " series_out=<path> to export\n",
                  fleet_series->num_rows(), fleet_series->num_columns());
    }
  }
  if (metrics_on) {
    std::printf("\n[metrics]\n%s", telemetry::metrics::table().c_str());
  }
  if (metrics_out) {
    const std::string path = metrics_out->find('/') == std::string::npos
                                 ? out_path(*metrics_out)
                                 : *metrics_out;
    write_file_atomic(path, telemetry::metrics::to_json().dump(1) + "\n");
    std::printf("\n[metrics] wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Config::from_args(argc, argv));
  } catch (const std::exception& e) {
    GNFV_LOG_ERROR("run_scenario") << e.what();
    return 2;
  }
}
