/// Run any named or file-loaded scenario against the scheduler roster and
/// print the uniform EvalReport — the one declarative entry point for
/// every workload, scheduler, and figure.
///
///   build/example_run_scenario                         # paper-default
///   build/example_run_scenario scenario=flash-crowd
///   build/example_run_scenario scenario=heterogeneous-cluster
///       models=baseline,heuristics,ee-pstate        (one line)
///   build/example_run_scenario scenario_file=my.scenario episodes=200
///   build/example_run_scenario scenario=fleet-smoke    # dynamic fleet
///       models=baseline,ee-pstate                   (one line)
///   build/example_run_scenario list=1                  # preset table
///   build/example_run_scenario scenario=overload save=overload.scenario
///   build/example_run_scenario help=1                  # accepted keys
///
/// Any scenario key overrides the preset/file value (seed=7 chains=4
/// profile=diurnal ...). models= picks a roster subset; the default runs
/// all seven Fig. 9 models (training budgets come from the scenario).

#include <cstdio>
#include <exception>

#include "common/fs_util.hpp"
#include "common/string_util.hpp"
#include "orchestrator/fleet.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"

using namespace greennfv;

namespace {

int run(const Config& config) {
  if (config.get_bool("list", false)) {
    std::printf("named scenarios:\n%s", scenario::preset_table().c_str());
    return 0;
  }
  if (scenario::print_help_if_requested(config,
                                        {"models", "list", "save", "csv"}))
    return 0;
  std::vector<std::string> keys = scenario::ScenarioSpec::known_keys();
  keys.insert(keys.end(), {"models", "list", "save", "csv", "help"});
  config.check_known(keys, scenario::ScenarioSpec::known_prefixes());

  const scenario::ScenarioSpec spec = scenario::resolve(config);
  if (const auto path = config.get("save")) {
    spec.save(*path);
    std::printf("wrote %s — rerun with scenario_file=%s\n", path->c_str(),
                path->c_str());
    return 0;
  }

  std::printf("scenario %s: %d node(s), %d chain(s), %d flow(s), %s"
              " profile, %s SLA, %d eval windows of %.1f s\n",
              spec.name.c_str(), spec.num_nodes, spec.num_chains,
              spec.num_flows,
              traffic::to_string(spec.profile.kind).c_str(),
              spec.sla().name().c_str(), spec.eval_windows, spec.window_s);

  std::vector<scenario::SchedulerFactory> roster =
      scenario::default_roster(spec);
  if (const auto models = config.get("models"))
    roster = scenario::filter_roster(roster, *models);

  scenario::EvalReport report;
  std::string fleet_summary;
  if (spec.fleet.enabled) {
    // Dynamic fleet: online arrivals/departures, migration, power gating.
    orchestrator::FleetOrchestrator fleet(spec);
    std::printf("fleet: %d window horizon, policy %s, %.2f arrivals/window,"
                " migration %s, power gating %s\n",
                fleet.horizon(), spec.fleet.policy.c_str(),
                spec.fleet.arrival_rate,
                spec.fleet.migration ? "on" : "off",
                spec.fleet.power_gating ? "on" : "off");
    if (spec.topology.enabled) {
      std::printf("fleet: topology %s (%s routing)",
                  spec.topology.preset.c_str(), spec.topology.routing.c_str());
      if (spec.latency_sla_us > 0.0)
        std::printf(", latency SLA %.0f us", spec.latency_sla_us);
      std::printf("\n");
    }
    orchestrator::FleetReport fleet_report = fleet.run(roster);
    fleet_summary = fleet_report.fleet_summary();
    report = std::move(fleet_report.report);
  } else {
    scenario::ExperimentRunner runner(spec);
    if (runner.idle_nodes() > 0)
      std::printf("placement left %d node(s) idle (charged at %.0f W)\n",
                  runner.idle_nodes(), spec.node.p_idle_w);
    report = runner.run(roster);
  }

  std::printf("\n");
  std::fputs(report.table().c_str(), stdout);
  if (!fleet_summary.empty()) {
    std::printf("\n");
    std::fputs(fleet_summary.c_str(), stdout);
  }

  if (const auto csv = config.get("csv")) {
    // Bare filenames are routed under out/ with every other artifact;
    // explicit paths are honoured as given.
    const std::string path =
        csv->find('/') == std::string::npos ? out_path(*csv) : *csv;
    report.series.to_csv(path);
    std::printf("\n[csv] wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Config::from_args(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
