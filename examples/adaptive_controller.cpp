/// Live adaptive control under bursty traffic: runs the runtime NF
/// controller (Algorithm 3's actor loop) with three different policies —
/// static baseline, EE-Pstate's DES+threshold P-states, and Algorithm 1's
/// heuristic — over the same MMPP/on-off traffic and prints the reaction
/// timeline. Shows why the paper moves from static rules to learning.
///
///   build/examples/adaptive_controller [windows=N] [seed=K]

#include <cstdio>

#include "common/config.hpp"
#include "core/ee_pstate.hpp"
#include "core/heuristic.hpp"
#include "core/nf_controller.hpp"

using namespace greennfv;
using namespace greennfv::core;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const int windows = static_cast<int>(config.get_int("windows", 16));
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));

  EnvConfig env_config;
  env_config.num_chains = 3;
  env_config.num_flows = 6;
  env_config.total_offered_gbps = 10.0;
  env_config.window_s = 5.0;
  env_config.sub_windows = 5;
  env_config.sla = Sla::energy_efficiency();

  BaselineScheduler baseline{env_config.spec};
  EePstateScheduler ee_pstate{env_config.spec, EePstateConfig{}};
  HeuristicScheduler heuristic{env_config.spec, HeuristicConfig{}};

  struct Row {
    std::string name;
    telemetry::Recorder recorder;
    EvalResult result;
  };
  std::vector<Row> runs;
  for (Scheduler* scheduler :
       std::initializer_list<Scheduler*>{&baseline, &ee_pstate,
                                         &heuristic}) {
    Row row;
    row.name = scheduler->name();
    NfvEnvironment env(env_config, seed);
    scheduler->reset();
    NfController controller(env, *scheduler);
    row.result =
        controller.run(windows, &row.recorder, /*prefix=*/"");
    runs.push_back(std::move(row));
  }

  std::printf("reaction timeline (Gbps | W) over %d five-second windows of"
              " bursty traffic:\n\n", windows);
  std::printf("%6s", "t(s)");
  for (const Row& row : runs) std::printf("  %-22s", row.name.c_str());
  std::printf("\n");
  const auto& t_axis = runs[0].recorder.series("throughput_gbps").times();
  for (std::size_t w = 0; w < t_axis.size(); ++w) {
    std::printf("%6.0f", t_axis[w]);
    for (const Row& row : runs) {
      const double gbps =
          row.recorder.series("throughput_gbps").values()[w];
      const double watts = row.recorder.series("power_w").values()[w];
      std::printf("  %8.2f | %-11.1f", gbps, watts);
    }
    std::printf("\n");
  }

  std::printf("\nmeans:\n");
  for (const Row& row : runs) {
    std::printf("  %-12s %6.2f Gbps  %6.1f W  efficiency %.2f\n",
                row.name.c_str(), row.result.mean_gbps,
                row.result.mean_power_w, row.result.mean_efficiency);
  }
  std::printf(
      "\nthe static baseline burns constant power regardless of load; the\n"
      "DES predictor tracks bursts with its P-states; the heuristic walks\n"
      "batch/frequency but oscillates around its thresholds — the gap\n"
      "GreenNFV's learned policy closes (see examples/sla_training.cpp).\n");
  return 0;
}
