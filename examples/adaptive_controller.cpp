/// Live adaptive control under bursty traffic: runs the runtime NF
/// controller (Algorithm 3's actor loop) with the three reactive policies
/// — static baseline, EE-Pstate's DES+threshold P-states, and Algorithm
/// 1's heuristic — over the same scenario and prints the reaction
/// timeline. Shows why the paper moves from static rules to learning.
///
///   build/examples/adaptive_controller [scenario=NAME] [eval_windows=N]
///                                      [seed=K] [any scenario key...]

#include <cstdio>
#include <exception>

#include "common/log.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"

using namespace greennfv;

namespace {

int run(const Config& cli) {
  if (scenario::print_help_if_requested(cli)) return 0;
  std::vector<std::string> keys = scenario::ScenarioSpec::known_keys();
  keys.emplace_back("help");
  cli.check_known(keys, scenario::ScenarioSpec::known_prefixes());
  // Default workload: the paper-default topology pushed to 6 flows at
  // 10 Gbps over 5 s windows — enough burstiness to separate the
  // reactive policies.
  Config config = cli;
  const auto defaulted = [&config](const char* key, const char* value) {
    if (!config.has(key)) config.set(key, value);
  };
  defaulted("flows", "6");
  defaulted("offered_gbps", "10");
  defaulted("window_s", "5");
  defaulted("eval_windows", "16");
  const scenario::ScenarioSpec spec = scenario::resolve(config);

  scenario::ExperimentRunner runner(spec);
  std::vector<scenario::SchedulerFactory> roster =
      scenario::untrained_roster(spec);
  // The cold start IS the story here: no settling windows, so the
  // timeline shows each policy reacting from its initial allocation.
  for (auto& entry : roster) entry.warmup = 0;
  const scenario::EvalReport report = runner.run(roster);

  std::printf("reaction timeline (Gbps | W) over %d %.0f-second windows of"
              " scenario %s:\n\n",
              spec.eval_windows, spec.window_s, spec.name.c_str());
  std::printf("%6s", "t(s)");
  for (const auto& model : report.models)
    std::printf("  %-22s", model.result.scheduler.c_str());
  std::printf("\n");
  const auto& t_axis =
      report.series.series(report.models[0].prefix + "throughput_gbps")
          .times();
  for (std::size_t w = 0; w < t_axis.size(); ++w) {
    std::printf("%6.0f", t_axis[w]);
    for (const auto& model : report.models) {
      const double gbps =
          report.series.series(model.prefix + "throughput_gbps")
              .values()[w];
      const double watts =
          report.series.series(model.prefix + "power_w").values()[w];
      std::printf("  %8.2f | %-11.1f", gbps, watts);
    }
    std::printf("\n");
  }

  std::printf("\nmeans:\n");
  for (const auto& model : report.models) {
    std::printf("  %-12s %6.2f Gbps  %6.1f W  efficiency %.2f\n",
                model.result.scheduler.c_str(), model.result.mean_gbps,
                model.result.mean_power_w, model.result.mean_efficiency);
  }
  std::printf(
      "\nthe static baseline burns constant power regardless of load; the\n"
      "DES predictor tracks bursts with its P-states; the heuristic walks\n"
      "batch/frequency but oscillates around its thresholds — the gap\n"
      "GreenNFV's learned policy closes (see examples/sla_training.cpp).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Config::from_args(argc, argv));
  } catch (const std::exception& e) {
    GNFV_LOG_ERROR("adaptive_controller") << e.what();
    return 2;
  }
}
