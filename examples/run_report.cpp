/// Generate or validate campaign report artifacts post-hoc — the
/// standalone companion to `run_campaign report=`.
///
///   build/example_run_report campaign=fig9            # out/fig9 -> report
///   build/example_run_report dir=out/fig9             # explicit directory
///   build/example_run_report dir=out/fig9 html=dash.html
///   build/example_run_report validate=out/fig9/report.html
///   build/example_run_report validate=out/fig9/report.json
///   build/example_run_report validate=out/fig9/runs/r0.series.csv
///   build/example_run_report validate=out/fig9/runs/r0.series.json
///   build/example_run_report help=1
///
/// Generate mode reads a finished campaign directory (manifest.json plus
/// any runs/<id>.series.json side artifacts) and writes
/// `<dir>/report.json` (schema "greennfv.report.v1") and the
/// self-contained HTML dashboard (default `<dir>/report.html`). It only
/// reads campaign artifacts — rerunning it can never perturb results or
/// resume state.
///
/// Validate mode dispatches on the artifact: .html documents are checked
/// for the dashboard structure markers, .csv for the series schema, and
/// .json by its embedded "schema" key (series, cell-series, or report
/// model). Exit status 0 = valid, 2 = problems (each printed).

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "campaign/campaign_spec.hpp"
#include "campaign/report.hpp"
#include "common/config.hpp"
#include "common/fs_util.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"

using namespace greennfv;

namespace {

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

int report_problems(const std::string& path,
                    const std::vector<std::string>& problems,
                    const char* kind) {
  if (problems.empty()) {
    std::printf("%s %s: ok\n", kind, path.c_str());
    return 0;
  }
  std::printf("%s %s: %zu problem(s)\n", kind, path.c_str(),
              problems.size());
  for (const auto& problem : problems)
    std::printf("  %s\n", problem.c_str());
  return 2;
}

int validate(const std::string& path) {
  const std::string text = read_file(path);
  if (ends_with(path, ".html")) {
    return report_problems(path, campaign::validate_report_html(text),
                           "report html");
  }
  if (ends_with(path, ".csv")) {
    return report_problems(path, campaign::validate_series_csv(text),
                           "series csv");
  }
  if (ends_with(path, ".json")) {
    const Json doc = Json::parse(text);
    const std::string schema =
        doc.has("schema") ? doc.at("schema").as_string() : "";
    if (schema == "greennfv.report.v1") {
      return report_problems(path, campaign::validate_report_model(doc),
                             "report model");
    }
    // Everything else must be a per-run series document; an unknown or
    // missing schema marker comes back as a problem. (Cell-series
    // documents only exist embedded in report.json, where
    // validate_report_model covers them.)
    return report_problems(path, campaign::validate_series_json(doc),
                           "series json");
  }
  GNFV_LOG_ERROR("run_report")
      << "validate=" << path
      << ": unrecognized extension (expected .html, .csv, or .json)";
  return 2;
}

int run(const Config& config) {
  if (config.get_bool("help", false)) {
    std::printf("accepted key=value arguments:\n");
    for (const char* key :
         {"campaign", "dir", "html", "validate", "help"}) {
      std::printf("  %s\n", key);
    }
    return 0;
  }
  config.check_known({"campaign", "dir", "html", "validate", "help"}, {});

  if (const auto path = config.get("validate")) return validate(*path);

  std::string dir;
  if (const auto explicit_dir = config.get("dir")) {
    dir = *explicit_dir;
  } else if (const auto name = config.get("campaign")) {
    // Mirror ArtifactStore's directory layout so campaign= here finds
    // what run_campaign campaign= wrote.
    dir = out_root();
    dir += '/';
    dir += campaign::sanitize_token(*name);
  } else {
    GNFV_LOG_ERROR("run_report")
        << "need campaign=<name>, dir=<path>, or validate=<artifact>";
    return 2;
  }

  std::string html_path = config.get_string("html", dir + "/report.html");
  if (html_path.find('/') == std::string::npos)
    html_path = dir + "/" + html_path;

  const Json model = campaign::generate_report(dir, html_path);
  std::size_t cells_with_series = 0;
  for (const Json& cell : model.at("cells").elements())
    if (cell.at("series").is_object()) ++cells_with_series;
  std::printf("report %s: %zu run(s), %zu cell(s) (%zu with series)\n",
              model.at("campaign").as_string().c_str(),
              model.at("runs").size(), model.at("cells").size(),
              cells_with_series);
  std::printf("wrote %s/report.json and %s\n", dir.c_str(),
              html_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Config::from_args(argc, argv));
  } catch (const std::exception& e) {
    GNFV_LOG_ERROR("run_report") << e.what();
    return 2;
  }
}
