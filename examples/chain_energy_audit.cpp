/// Energy audit of a consolidated NFV node: what each chain costs, how the
/// Linux governors compare, and how the Fan-model calibration the paper
/// performs against its Yokogawa WT210 works in this library.
///
///   build/examples/chain_energy_audit

#include <cstdio>

#include "common/units.hpp"
#include "hwmodel/calibration.hpp"
#include "hwmodel/node.hpp"
#include "nfvsim/engine_analytic.hpp"
#include "traffic/generator.hpp"

using namespace greennfv;
using namespace greennfv::hwmodel;

int main() {
  std::printf("NFV node energy audit\n=====================\n\n");
  const NodeSpec spec;

  // --- 1. calibrate the power model against the (synthetic) wall meter -------
  NodeSpec truth = spec;
  truth.fan_h = 1.37;  // hidden ground truth the meter embodies
  PowerMeter meter(truth, /*noise W=*/2.0, Rng(11));
  const auto fit = fit_fan_h(spec, meter.calibration_sweep(128));
  std::printf("Fan-model calibration: fitted h = %.3f (rmse %.2f W, %d"
              " evals)\n\n", fit.h, fit.rmse_w, fit.evaluations);

  // --- 2. per-chain cost on a consolidated node -------------------------------
  NodeSpec calibrated = spec;
  calibrated.fan_h = fit.h;
  const NodeModel node(calibrated);

  const char* const compositions[][3] = {
      {"firewall", "router", "ids"},
      {"firewall", "nat", "tunnel_gw"},
      {"flow_monitor", "router", "epc"},
  };
  std::vector<ChainDeployment> chains;
  for (int c = 0; c < 3; ++c) {
    ChainDeployment dep;
    for (const char* nf : compositions[c])
      dep.nfs.push_back(nf_catalog::by_name(nf));
    dep.workload.offered_pps = 1.0e6;
    dep.workload.pkt_bytes = 512;
    dep.cores = 2.0;
    dep.freq_ghz = 1.8;
    dep.llc_fraction = 1.0 / 3.0;
    dep.dma_bytes = 8ull * units::kMiB;
    dep.batch = 64;
    chains.push_back(std::move(dep));
  }
  const auto eval = node.evaluate(chains, /*use_cat=*/true);
  std::printf("consolidated node @ 1 Mpps per chain (CAT on, hybrid):\n");
  std::printf("  %-28s %8s %9s %10s\n", "chain", "Gbps", "share W",
              "J/Mpkt");
  for (std::size_t c = 0; c < chains.size(); ++c) {
    std::printf("  %s+%s+%-12s %8.2f %9.1f %10.1f\n",
                compositions[c][0], compositions[c][1], compositions[c][2],
                eval.chains[c].eval.throughput_gbps,
                eval.chains[c].power_w,
                eval.chains[c].energy_per_mpkt_j);
  }
  std::printf("  node total: %.1f W at %.0f%% utilization\n\n",
              eval.power_w, eval.utilization * 100.0);

  // --- 3. governor comparison on the same workload ---------------------------
  std::printf("governor comparison (same chains, same traffic):\n");
  const DvfsController dvfs(calibrated);
  struct GovernorCase {
    Governor governor;
    double load;
  };
  for (const Governor g : {Governor::kPerformance, Governor::kOndemand,
                           Governor::kConservative, Governor::kPowersave}) {
    DvfsController ladder(calibrated);
    ladder.set_governor(g);
    const double freq = ladder.effective_frequency(/*load=*/0.55,
                                                   /*previous=*/1.6);
    auto tuned = chains;
    for (auto& dep : tuned) dep.freq_ghz = freq;
    const auto run = node.evaluate(tuned, true);
    std::printf("  %-13s -> %.1f GHz, %6.2f Gbps, %6.1f W\n",
                to_string(g).c_str(), freq, run.total_goodput_gbps,
                run.power_w);
  }

  // --- 4. poll vs hybrid at low load: the C-state dividend --------------------
  auto idle = chains;
  for (auto& dep : idle) dep.workload.offered_pps = 5e4;  // near idle
  auto polled = idle;
  for (auto& dep : polled) dep.poll_mode = true;
  const auto hybrid_eval = node.evaluate(idle, true);
  const auto poll_eval = node.evaluate(polled, true);
  std::printf("\nnear-idle node: poll-mode %.1f W vs hybrid %.1f W "
              "(sleep saves %.1f W)\n",
              poll_eval.power_w, hybrid_eval.power_w,
              poll_eval.power_w - hybrid_eval.power_w);
  return 0;
}
