/// Energy audit of a consolidated NFV node: what each chain of the
/// resolved scenario costs, how the Linux governors compare, and how the
/// Fan-model calibration the paper performs against its Yokogawa WT210
/// works in this library.
///
///   build/examples/chain_energy_audit [scenario=NAME] [any scenario key]

#include <cstdio>
#include <exception>

#include "common/log.hpp"
#include "common/units.hpp"
#include "hwmodel/calibration.hpp"
#include "hwmodel/node.hpp"
#include "nfvsim/chain.hpp"
#include "scenario/presets.hpp"

using namespace greennfv;
using namespace greennfv::hwmodel;

namespace {

int run(const Config& config) {
  if (scenario::print_help_if_requested(config)) return 0;
  std::vector<std::string> keys = scenario::ScenarioSpec::known_keys();
  keys.emplace_back("help");
  config.check_known(keys, scenario::ScenarioSpec::known_prefixes());
  const scenario::ScenarioSpec scenario_spec = scenario::resolve(config);
  const NodeSpec spec = scenario_spec.node;
  std::printf("NFV node energy audit — scenario %s\n"
              "=====================\n\n",
              scenario_spec.name.c_str());

  // --- 1. calibrate the power model against the (synthetic) wall meter -------
  NodeSpec truth = spec;
  truth.fan_h = 1.37;  // hidden ground truth the meter embodies
  PowerMeter meter(truth, /*noise W=*/2.0, Rng(11));
  const auto fit = fit_fan_h(spec, meter.calibration_sweep(128));
  std::printf("Fan-model calibration: fitted h = %.3f (rmse %.2f W, %d"
              " evals)\n\n", fit.h, fit.rmse_w, fit.evaluations);

  // --- 2. per-chain cost on a consolidated node -------------------------------
  NodeSpec calibrated = spec;
  calibrated.fan_h = fit.h;
  const NodeModel node(calibrated);

  // The scenario's chain compositions (standard rotation unless the
  // scenario names its own).
  std::vector<std::vector<std::string>> compositions;
  for (int c = 0; c < scenario_spec.num_chains; ++c) {
    compositions.push_back(
        scenario_spec.chain_nfs.empty()
            ? nfvsim::standard_chain_nfs(c)
            : scenario_spec.chain_nfs[static_cast<std::size_t>(c)]);
  }
  std::vector<ChainDeployment> chains;
  for (const auto& nfs : compositions) {
    ChainDeployment dep;
    for (const auto& nf : nfs)
      dep.nfs.push_back(nf_catalog::by_name(nf));
    dep.workload.offered_pps = 1.0e6;
    dep.workload.pkt_bytes = 512;
    dep.cores = 2.0;
    dep.freq_ghz = 1.8;
    dep.llc_fraction = 1.0 / static_cast<double>(compositions.size());
    dep.dma_bytes = 8ull * units::kMiB;
    dep.batch = 64;
    chains.push_back(std::move(dep));
  }
  const auto eval = node.evaluate(chains, /*use_cat=*/true);
  std::printf("consolidated node @ 1 Mpps per chain (CAT on, hybrid):\n");
  std::printf("  %-28s %8s %9s %10s\n", "chain", "Gbps", "share W",
              "J/Mpkt");
  for (std::size_t c = 0; c < chains.size(); ++c) {
    std::string label;
    for (const auto& nf : compositions[c]) {
      if (!label.empty()) label += "+";
      label += nf;
    }
    std::printf("  %-28s %8.2f %9.1f %10.1f\n", label.c_str(),
                eval.chains[c].eval.throughput_gbps,
                eval.chains[c].power_w,
                eval.chains[c].energy_per_mpkt_j);
  }
  std::printf("  node total: %.1f W at %.0f%% utilization\n\n",
              eval.power_w, eval.utilization * 100.0);

  // --- 3. governor comparison on the same workload ---------------------------
  std::printf("governor comparison (same chains, same traffic):\n");
  for (const Governor g : {Governor::kPerformance, Governor::kOndemand,
                           Governor::kConservative, Governor::kPowersave}) {
    DvfsController ladder(calibrated);
    ladder.set_governor(g);
    const double freq = ladder.effective_frequency(/*load=*/0.55,
                                                   /*previous=*/1.6);
    auto tuned = chains;
    for (auto& dep : tuned) dep.freq_ghz = freq;
    const auto run = node.evaluate(tuned, true);
    std::printf("  %-13s -> %.1f GHz, %6.2f Gbps, %6.1f W\n",
                to_string(g).c_str(), freq, run.total_goodput_gbps,
                run.power_w);
  }

  // --- 4. poll vs hybrid at low load: the C-state dividend --------------------
  auto idle = chains;
  for (auto& dep : idle) dep.workload.offered_pps = 5e4;  // near idle
  auto polled = idle;
  for (auto& dep : polled) dep.poll_mode = true;
  const auto hybrid_eval = node.evaluate(idle, true);
  const auto poll_eval = node.evaluate(polled, true);
  std::printf("\nnear-idle node: poll-mode %.1f W vs hybrid %.1f W "
              "(sleep saves %.1f W)\n",
              poll_eval.power_w, hybrid_eval.power_w,
              poll_eval.power_w - hybrid_eval.power_w);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Config::from_args(argc, argv));
  } catch (const std::exception& e) {
    GNFV_LOG_ERROR("chain_energy_audit") << e.what();
    return 2;
  }
}
