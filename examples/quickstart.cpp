/// Quickstart: resolve the paper-default scenario, walk its deployment
/// through one control window, and push real packets through the threaded
/// engine — the platform tour in five steps.
///
///   build/examples/quickstart
///
/// This walks the same public API the benchmarks use:
///   1. ScenarioSpec — the declarative experiment description
///   2. NfvEnvironment — chains + knobs + traffic compiled from the spec
///   3. run_window — one measured control interval (Gbps, joules, drops)
///   4. ThreadedEngine — the real multi-threaded packet path
///   5. ExperimentRunner — the full model-comparison harness in two lines

#include <cstdio>

#include "common/units.hpp"
#include "core/environment.hpp"
#include "nfvsim/engine_threaded.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"

using namespace greennfv;
using namespace greennfv::nfvsim;

int main() {
  std::printf("GreenNFV quickstart\n===================\n\n");

  // --- 1. the declarative scenario -------------------------------------------
  const scenario::ScenarioSpec spec = scenario::preset("paper-default");
  std::printf("scenario %s: %d chains, %d flows at %.0f Gbps, %s SLA\n\n",
              spec.name.c_str(), spec.num_chains, spec.num_flows,
              spec.total_offered_gbps, spec.sla().name().c_str());

  // --- 2. the environment it compiles to --------------------------------------
  core::NfvEnvironment env(spec.env_config(), /*seed=*/42);
  ChainKnobs knobs;  // the five GreenNFV control knobs
  knobs.cores = 2.0;
  knobs.freq_ghz = 1.8;
  knobs.llc_fraction = 0.5;
  knobs.dma_bytes = 8ull * units::kMiB;
  knobs.batch = 64;
  const ChainKnobs applied = env.controller().apply_knobs(0, knobs);
  std::printf("applied knobs to chain 0: %s\n\n",
              applied.to_string().c_str());

  // --- 3. one measured control window ------------------------------------------
  const std::vector<ChainKnobs> all_knobs(
      static_cast<std::size_t>(spec.num_chains), knobs);
  const auto outcome = env.run_window(all_knobs);
  std::printf("one %.0f s control window under live traffic:\n",
              spec.window_s);
  std::printf("  throughput : %6.2f Gbps\n", outcome.throughput_gbps);
  std::printf("  energy     : %6.1f J\n", outcome.energy_j);
  std::printf("  efficiency : %6.2f Gbps/KJ\n", outcome.efficiency);
  std::printf("  drops      : %6.2f %%\n", outcome.drop_fraction * 100.0);

  // --- 4. the real threaded data path -----------------------------------------
  ThreadedEngine::Options options;
  options.total_packets = 200000;
  ThreadedEngine threaded(env.controller(), options);
  traffic::FlowSpec tflow;
  tflow.pkt_bytes = 512;
  tflow.mean_rate_pps = 1e6;
  const auto report = threaded.run({tflow}, /*seed=*/7);
  std::printf("\nthreaded engine, %llu real packets through real NFs:\n",
              static_cast<unsigned long long>(report.generated));
  std::printf("  delivered  : %llu (%.2f Mpps wall-clock)\n",
              static_cast<unsigned long long>(report.delivered),
              report.delivered_pps / 1e6);
  std::printf("  NF drops   : %llu (ACL denies, TTL expiry...)\n",
              static_cast<unsigned long long>(report.nf_drops));
  std::printf("  ring drops : %llu\n",
              static_cast<unsigned long long>(report.rx_ring_drops));
  std::printf("  conserved  : %s\n", report.conserved() ? "yes" : "NO");

  // --- 5. the full harness in two lines ----------------------------------------
  scenario::ScenarioSpec quick = scenario::preset("ci-smoke");
  scenario::ExperimentRunner runner(quick);
  const scenario::EvalReport eval =
      runner.run(scenario::untrained_roster(quick));
  std::printf("\nreactive roster on the %s scenario:\n\n%s",
              quick.name.c_str(), eval.table().c_str());
  std::printf("\ndone — examples/sla_training.cpp adds the learning loop,"
              "\nexamples/run_scenario.cpp runs any scenario end to end.\n");
  return 0;
}
