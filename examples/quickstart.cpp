/// Quickstart: deploy a service chain on the simulated NFV platform, push
/// traffic through both engines, and read the throughput/energy telemetry.
///
///   build/examples/quickstart
///
/// This walks the same public API the benchmarks use:
///   1. OnvmController — deploy chains, set the five resource knobs
///   2. AnalyticEngine — virtual-time simulation (throughput, watts, joules)
///   3. ThreadedEngine — the real multi-threaded packet path
///   4. EnergyMeter / telemetry — what GreenNFV's learner consumes

#include <cstdio>

#include "common/units.hpp"
#include "nfvsim/engine_analytic.hpp"
#include "nfvsim/engine_threaded.hpp"
#include "traffic/generator.hpp"

using namespace greennfv;
using namespace greennfv::nfvsim;

int main() {
  std::printf("GreenNFV quickstart\n===================\n\n");

  // --- 1. deploy a 3-NF chain on one node --------------------------------------
  OnvmController controller;  // Xeon E5-2620v4-like node, hybrid scheduling
  const int chain_id =
      controller.add_chain("edge-chain", {"firewall", "router", "ids"});

  ChainKnobs knobs;  // the five GreenNFV control knobs
  knobs.cores = 2.0;
  knobs.freq_ghz = 1.8;
  knobs.llc_fraction = 0.5;
  knobs.dma_bytes = 8ull * units::kMiB;
  knobs.batch = 64;
  const ChainKnobs applied =
      controller.apply_knobs(static_cast<std::size_t>(chain_id), knobs);
  std::printf("applied knobs: %s\n\n", applied.to_string().c_str());

  // --- 2. virtual-time simulation ------------------------------------------------
  traffic::FlowSpec flow = traffic::line_rate_flow(512);
  flow.mean_rate_pps = 1.2e6;  // 1.2 Mpps of 512 B frames
  AnalyticEngine engine(controller, traffic::TrafficGenerator({flow}, 42));
  const auto summary = engine.run(/*windows=*/10, /*dt=*/1.0);
  std::printf("analytic engine, 10 s of virtual time:\n");
  std::printf("  throughput : %6.2f Gbps\n", summary.mean_gbps);
  std::printf("  power      : %6.1f W\n", summary.mean_power_w);
  std::printf("  energy     : %6.1f J\n", summary.energy_j);
  std::printf("  drops      : %6.2f %%\n", summary.drop_fraction * 100.0);

  // --- 3. the real threaded data path -----------------------------------------
  ThreadedEngine::Options options;
  options.total_packets = 200000;
  ThreadedEngine threaded(controller, options);
  traffic::FlowSpec tflow;
  tflow.pkt_bytes = 512;
  tflow.mean_rate_pps = 1e6;
  const auto report = threaded.run({tflow}, /*seed=*/7);
  std::printf("\nthreaded engine, %llu real packets through real NFs:\n",
              static_cast<unsigned long long>(report.generated));
  std::printf("  delivered  : %llu (%.2f Mpps wall-clock)\n",
              static_cast<unsigned long long>(report.delivered),
              report.delivered_pps / 1e6);
  std::printf("  NF drops   : %llu (ACL denies, TTL expiry...)\n",
              static_cast<unsigned long long>(report.nf_drops));
  std::printf("  ring drops : %llu\n",
              static_cast<unsigned long long>(report.rx_ring_drops));
  std::printf("  conserved  : %s\n", report.conserved() ? "yes" : "NO");

  // --- 4. what a bigger batch buys --------------------------------------------
  knobs.batch = 4;
  controller.apply_knobs(static_cast<std::size_t>(chain_id), knobs);
  const auto small_batch = engine.run(5, 1.0);
  knobs.batch = 192;
  controller.apply_knobs(static_cast<std::size_t>(chain_id), knobs);
  const auto large_batch = engine.run(5, 1.0);
  std::printf("\nbatch knob, same traffic: batch=4 -> %.2f Gbps, "
              "batch=192 -> %.2f Gbps\n",
              small_batch.mean_gbps, large_batch.mean_gbps);
  std::printf("\ndone — see examples/sla_training.cpp for the learning"
              " loop.\n");
  return 0;
}
