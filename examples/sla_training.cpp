/// Train a GreenNFV policy for a chosen SLA and evaluate it against the
/// untuned baseline — the paper's core workflow in one file.
///
///   build/examples/sla_training [sla=maxt|mine|ee] [episodes=N] [seed=K]
///                               [apex=1 actors=N]
///
/// With apex=1 the distributed Ape-X trainer (actor threads + central
/// prioritized replay + learner thread) is used instead of the synchronous
/// loop.

#include <cstdio>

#include "common/config.hpp"
#include "core/greennfv.hpp"
#include "core/nf_controller.hpp"

using namespace greennfv;
using namespace greennfv::core;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  const std::string sla_name = config.get_string("sla", "ee");
  const int episodes = static_cast<int>(config.get_int("episodes", 300));

  EnvConfig env;
  env.num_chains = 3;
  env.num_flows = 5;
  env.total_offered_gbps = 12.0;
  env.window_s = 10.0;
  env.sub_windows = 5;

  if (sla_name == "maxt") {
    env.sla = Sla::max_throughput(config.get_double("energy_budget", 2000));
  } else if (sla_name == "mine") {
    env.sla = Sla::min_energy(config.get_double("throughput_floor", 7.5),
                              env.spec.p_max_w * env.window_s);
  } else {
    env.sla = Sla::energy_efficiency();
  }
  std::printf("training GreenNFV under the %s SLA, %d episodes...\n",
              env.sla.name().c_str(), episodes);

  TrainerConfig trainer_config;
  trainer_config.env = env;
  trainer_config.episodes = episodes;
  trainer_config.seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  trainer_config.use_apex = config.get_bool("apex", false);
  trainer_config.apex.num_actors =
      static_cast<int>(config.get_int("actors", 2));

  GreenNfvTrainer trainer(trainer_config);
  const TrainResult result = trainer.train();
  std::printf("trained: tail %.2f Gbps / %.0f J / efficiency %.2f "
              "(%lld learner steps)\n\n",
              result.tail_gbps, result.tail_energy_j,
              result.tail_efficiency,
              static_cast<long long>(result.train_steps));

  // Head-to-head against the baseline on fresh traffic.
  auto green = trainer.make_scheduler("GreenNFV(" + env.sla.name() + ")");
  BaselineScheduler baseline{env.spec};
  const EvalResult base = evaluate_scheduler(env, baseline, 8, 1234);
  const EvalResult learned = evaluate_scheduler(env, *green, 8, 1234);

  std::printf("%-22s %10s %12s %12s %6s\n", "model", "Gbps", "Energy(J)",
              "Efficiency", "SLA");
  const auto row = [](const EvalResult& r) {
    std::printf("%-22s %10.2f %12.0f %12.2f %5.0f%%\n", r.scheduler.c_str(),
                r.mean_gbps, r.mean_energy_j, r.mean_efficiency,
                r.sla_satisfaction * 100.0);
  };
  row(base);
  row(learned);
  std::printf("\nimprovement: %.2fx throughput, %.0f%% of baseline energy\n",
              learned.mean_gbps / base.mean_gbps,
              learned.mean_energy_j / base.mean_energy_j * 100.0);
  return 0;
}
