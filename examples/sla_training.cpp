/// Train a GreenNFV policy for a chosen SLA and evaluate it against the
/// untuned baseline — the paper's core workflow in one file, on the
/// Scenario/Experiment API.
///
///   build/examples/sla_training [sla=maxt|mine|ee] [episodes=N] [seed=K]
///                               [scenario=NAME] [apex=1 actors=N]
///
/// With apex=1 the distributed Ape-X trainer (actor threads + central
/// prioritized replay + learner thread) is used instead of the synchronous
/// loop.

#include <cstdio>
#include <exception>

#include "common/log.hpp"
#include "core/greennfv.hpp"
#include "scenario/experiment.hpp"
#include "scenario/presets.hpp"

using namespace greennfv;
using namespace greennfv::core;

namespace {

int run(const Config& cli) {
  if (scenario::print_help_if_requested(cli, {"apex", "actors"})) return 0;
  {
    std::vector<std::string> keys = scenario::ScenarioSpec::known_keys();
    keys.insert(keys.end(), {"apex", "actors", "help"});
    cli.check_known(keys, scenario::ScenarioSpec::known_prefixes());
  }
  Config config = cli;
  if (!config.has("episodes")) config.set("episodes", "300");
  const scenario::ScenarioSpec spec = scenario::resolve(config);

  std::printf("training GreenNFV under the %s SLA on scenario %s, %d"
              " episodes...\n",
              spec.sla().name().c_str(), spec.name.c_str(), spec.episodes);

  TrainerConfig trainer_config = spec.trainer_config(spec.sla());
  trainer_config.use_apex = config.get_bool("apex", false);
  trainer_config.apex.num_actors =
      static_cast<int>(config.get_int("actors", 2));

  GreenNfvTrainer trainer(trainer_config);
  const TrainResult result = trainer.train();
  std::printf("trained: tail %.2f Gbps / %.0f J / efficiency %.2f "
              "(%lld learner steps)\n\n",
              result.tail_gbps, result.tail_energy_j,
              result.tail_efficiency,
              static_cast<long long>(result.train_steps));

  // Head-to-head against the baseline on fresh traffic, both models
  // through the identical runner.
  const std::string label = "GreenNFV(" + spec.sla().name() + ")";
  std::vector<scenario::SchedulerFactory> roster =
      scenario::filter_roster(scenario::default_roster(spec), "baseline");
  roster.push_back(
      {label, 2,
       [&trainer, &label](const core::EnvConfig& env, std::uint64_t) {
         // One policy was trained for the whole-deployment shape; a
         // per-node env with a different chain count cannot reuse it.
         if (env.num_chains != trainer.config().env.num_chains) {
           throw std::invalid_argument(
               "sla_training trains one policy for the full deployment;"
               " multi-node scenarios need example_run_scenario, whose"
               " roster trains per node shape");
         }
         return trainer.make_scheduler(label);
       }});
  scenario::ExperimentRunner runner(spec);
  const scenario::EvalReport report = runner.run(roster);
  std::fputs(report.table().c_str(), stdout);

  const EvalResult& base = report.models[0].result;
  const EvalResult& learned = report.models[1].result;
  std::printf("\nimprovement: %.2fx throughput, %.0f%% of baseline energy\n",
              learned.mean_gbps / base.mean_gbps,
              learned.mean_energy_j / base.mean_energy_j * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Config::from_args(argc, argv));
  } catch (const std::exception& e) {
    GNFV_LOG_ERROR("sla_training") << e.what();
    return 2;
  }
}
