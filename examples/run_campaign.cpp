/// Run any named or file-loaded campaign — a parallel sweep over
/// scenarios x schedulers x seeds — and print per-cell statistics (mean,
/// stddev, 95% CI) plus the throughput-vs-energy Pareto front.
///
///   build/example_run_campaign                         # fig9 campaign
///   build/example_run_campaign list=1                  # preset table
///   build/example_run_campaign campaign=fig11-rates jobs=8
///   build/example_run_campaign campaign=ablation expand=1   # matrix only
///   build/example_run_campaign campaign=ci-campaign-smoke jobs=2
///   build/example_run_campaign campaign=fig9 save=my.campaign
///   build/example_run_campaign campaign_file=my.campaign fresh=1
///   build/example_run_campaign validate_manifest=out/fig9/manifest.json
///   build/example_run_campaign help=1                  # accepted keys
///
/// Sweep axes are "sweep.<scenario-key>=v1,v2,..." (any scenario key:
/// sweep.offered_gbps=5,10,20,40, sweep.sla=maxt,mine,ee...); plain
/// scenario keys apply to every run (episodes=6 seed=7...); seeds= /
/// auto_seeds= set the seed axis and models= filters the roster.
///
/// Artifacts land under out/<campaign>/: one runs/<run_id>.json per run
/// (metrics + telemetry) and a manifest.json with the aggregates. Runs
/// are resumed from artifacts by default — an interrupted sweep picks up
/// where it crashed, skipping completed runs; fresh=1 re-executes
/// everything. jobs=N parallelizes over the work-stealing pool; any N
/// produces bit-identical results.

#include <cmath>
#include <cstdio>
#include <exception>

#include "campaign/presets.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "common/fs_util.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"
#include "scenario/presets.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/series.hpp"
#include "telemetry/trace.hpp"

using namespace greennfv;

namespace {

const std::vector<std::string>& cli_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> all = campaign::CampaignSpec::known_keys();
    for (const auto& key : scenario::ScenarioSpec::known_keys())
      if (key != "scenario" && key != "scenario_file") all.push_back(key);
    all.insert(all.end(), {"jobs", "fresh", "out", "save", "list", "expand",
                           "validate_manifest", "trace", "metrics",
                           "metrics_out", "series", "report", "timing",
                           "log_level", "help"});
    return all;
  }();
  return keys;
}

void print_help() {
  std::printf("accepted key=value arguments (plus sweep.<scenario-key>="
              "v1,v2,... axes\nand chainN=/flowN= indexed overrides):\n");
  for (const auto& key : cli_keys()) std::printf("  %s\n", key.c_str());
  std::printf("\nnamed campaigns (campaign=<name>):\n%s",
              campaign::preset_table().c_str());
  std::printf("\nnamed scenarios (scenarios=a,b,...):\n%s",
              scenario::preset_table().c_str());
}

/// Parses and sanity-checks a manifest: every aggregate field must be a
/// finite number. Returns 0 when healthy — the CI gate's crash-safe proof
/// that a campaign actually produced machine-readable statistics.
int validate_manifest(const std::string& path) {
  const Json manifest = Json::parse(read_file(path));
  const Json& summary = manifest.at("summary");
  int checked = 0;
  for (const Json& cell : summary.at("cells").elements()) {
    for (const char* metric :
         {"gbps", "energy_j", "power_w", "efficiency", "sla_satisfaction",
          "drop_fraction"}) {
      const Json& stats = cell.at(metric);
      for (const char* field : {"n", "mean", "stddev", "ci95"}) {
        const double value = stats.at(field).as_double();
        if (!std::isfinite(value)) {
          GNFV_LOG_ERROR("run_campaign")
              << "manifest " << path << ": cell "
              << cell.at("cell_id").as_string() << " " << metric << "."
              << field << " is not finite";
          return 2;
        }
        ++checked;
      }
    }
  }
  if (manifest.at("runs").size() !=
      static_cast<std::size_t>(manifest.at("matrix_size").as_double())) {
    GNFV_LOG_ERROR("run_campaign")
        << "manifest " << path << ": run list does not cover matrix";
    return 2;
  }
  std::printf("manifest %s: ok (%zu runs, %zu cells, %d finite fields)\n",
              path.c_str(), manifest.at("runs").size(),
              summary.at("cells").size(), checked);
  return 0;
}

int run(const Config& config) {
  if (config.get_bool("list", false)) {
    std::printf("named campaigns:\n%s", campaign::preset_table().c_str());
    return 0;
  }
  if (config.get_bool("help", false)) {
    print_help();
    return 0;
  }
  if (const auto manifest = config.get("validate_manifest"))
    return validate_manifest(*manifest);

  if (const auto level = config.get("log_level"))
    set_log_level(log_level_from_name(*level));
  // Flight recorder: trace= writes a whole-campaign Perfetto JSON (and
  // each run's slice lands next to its artifact as
  // runs/<run_id>.trace.json); metrics=1 prints the counter registry;
  // timing=1 prints the per-cell wall-clock table. None of these touch
  // run artifacts or the manifest — traced campaigns stay byte-identical.
  const auto trace_out = config.get("trace");
  const auto metrics_out = config.get("metrics_out");
  const bool metrics_on = config.get_bool("metrics", false);
  const bool timing_on = config.get_bool("timing", false);
  if (metrics_on || metrics_out) telemetry::metrics::set_enabled(true);
  if (trace_out) telemetry::trace::set_enabled(true);
  // series=1 samples the per-window fleet health series in every fleet
  // run (exported as runs/<run_id>.series.{csv,json}); report= renders
  // the HTML dashboard from the finished campaign directory. report=
  // implies series=1 — a dashboard without series panels is almost
  // always a mistake.
  const auto report_out = config.get("report");
  if (config.get_bool("series", false) || report_out) {
    telemetry::series::set_enabled(true);
  }

  // Key validation happens inside CampaignSpec::apply (the vocabulary is
  // open-ended via sweep.* and chainN=/flowN=); CLI-only keys are
  // stripped first.
  Config campaign_config = config;
  for (const char* key : {"jobs", "fresh", "out", "save", "list", "expand",
                          "validate_manifest", "trace", "metrics",
                          "metrics_out", "series", "report", "timing",
                          "log_level", "help"}) {
    Config stripped;
    for (const auto& [k, v] : campaign_config.entries())
      if (k != key) stripped.set(k, v);
    campaign_config = stripped;
  }
  const campaign::CampaignSpec spec = campaign::resolve(campaign_config);

  if (const auto path = config.get("save")) {
    spec.save(*path);
    std::printf("wrote %s — rerun with campaign_file=%s\n", path->c_str(),
                path->c_str());
    return 0;
  }

  const int jobs = static_cast<int>(config.get_int("jobs", 1));
  const bool fresh = config.get_bool("fresh", false);
  const std::string out_root_dir = config.get_string("out", out_root());

  const campaign::ArtifactStore store(out_root_dir, spec.name);
  campaign::CampaignRunner runner(spec, &store);

  std::printf("campaign %s: %zu run(s) = %zu scenario(s)", spec.name.c_str(),
              runner.matrix().size(),
              spec.base ? std::size_t{1} : spec.scenarios.size());
  for (const auto& axis : spec.axes)
    std::printf(" x %zu %s", axis.values.size(), axis.key.c_str());
  std::printf(" x %zu seed(s); models=%s; jobs=%d\n",
              runner.matrix().empty()
                  ? std::size_t{0}
                  : spec.seeds_for(runner.matrix()[0].scenario.seed).size(),
              spec.models.empty() ? "<full roster>" : spec.models.c_str(),
              jobs);

  if (config.get_bool("expand", false)) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& entry : runner.matrix()) {
      std::string assignments;
      for (const auto& [key, value] : entry.assignments) {
        if (!assignments.empty()) assignments += " ";
        assignments += key + "=" + value;
      }
      rows.push_back(
          {format("%zu", entry.index), entry.scenario_name, assignments,
           format("%llu", static_cast<unsigned long long>(entry.seed))});
    }
    std::fputs(render_table({"#", "scenario", "assignments", "seed"}, rows)
                   .c_str(),
               stdout);
    return 0;
  }

  const campaign::CampaignReport report = runner.run(jobs, !fresh);

  std::printf("\n");
  std::fputs(report.summary.table().c_str(), stdout);
  std::printf("\npareto front (throughput vs energy):\n");
  for (const std::size_t index : report.summary.pareto) {
    const auto& cell = report.summary.cells[index];
    std::printf("  %s / %s: %.2f Gbps at %.0f J\n", cell.cell_id.c_str(),
                cell.model.c_str(), cell.gbps.mean, cell.energy_j.mean);
  }
  std::printf("\n%d executed, %d resumed; artifacts in %s\n",
              report.executed, report.resumed, store.dir().c_str());
  if (report.failed > 0) {
    std::printf("\n%d run(s) FAILED:\n", report.failed);
    for (const auto& run_result : report.runs) {
      if (!run_result.failed) continue;
      std::printf("  %s: %s\n", run_result.run_id.c_str(),
                  run_result.error.c_str());
    }
  }

  if (timing_on) {
    std::printf("\nper-cell wall clock (jobs=%d):\n%s", jobs,
                campaign::timing_table(report).c_str());
  }
  if (trace_out) {
    const std::string path = trace_out->find('/') == std::string::npos
                                 ? store.dir() + "/" + *trace_out
                                 : *trace_out;
    telemetry::trace::write_json(path);
    std::printf("\n[trace] wrote %s (%zu events, %llu dropped); per-run"
                " slices in %s/runs/*.trace.json\n",
                path.c_str(), telemetry::trace::recorded(),
                static_cast<unsigned long long>(
                    telemetry::trace::dropped()),
                store.dir().c_str());
  }
  if (metrics_on) {
    std::printf("\n[metrics]\n%s", telemetry::metrics::table().c_str());
  }
  if (metrics_out) {
    const std::string path = metrics_out->find('/') == std::string::npos
                                 ? store.dir() + "/" + *metrics_out
                                 : *metrics_out;
    write_file_atomic(path, telemetry::metrics::to_json().dump(1) + "\n");
    std::printf("\n[metrics] wrote %s\n", path.c_str());
  }
  if (report_out) {
    // Strictly post-hoc: the generator reads the manifest + series
    // artifacts back off disk — the same path run_report takes.
    const std::string html_path = report_out->find('/') == std::string::npos
                                      ? store.dir() + "/" + *report_out
                                      : *report_out;
    campaign::generate_report(store.dir(), html_path);
    std::printf("\n[report] wrote %s and %s/report.json\n",
                html_path.c_str(), store.dir().c_str());
  }
  // A campaign with failure records still aggregated and persisted what
  // survived, but the invocation must not report success.
  return report.failed > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Config::from_args(argc, argv));
  } catch (const std::exception& e) {
    GNFV_LOG_ERROR("run_campaign") << e.what();
    return 2;
  }
}
