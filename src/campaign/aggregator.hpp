#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/artifact_store.hpp"
#include "common/json.hpp"

/// \file aggregator.hpp
/// Reduces the per-seed run results of a campaign into per-cell statistics
/// — mean, sample stddev, and a 95% confidence interval per model and
/// metric — plus the cross-cell Pareto front of the paper's core
/// trade-off, throughput (maximize) vs energy (minimize). This is how a
/// sweep's answer is read: not one lucky seed, but a cell mean with error
/// bars, and the frontier of configurations no other configuration beats
/// on both axes.

namespace greennfv::campaign {

/// Summary of one metric over a cell's seeds. ci95 is the half-width of
/// the two-sided 95% confidence interval on the mean (Student t for small
/// n); 0 when n < 2 — always finite.
struct MetricStats {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
};

/// One (cell, model) aggregate.
struct CellModelStats {
  std::string cell_id;
  std::string scenario;
  std::vector<std::pair<std::string, std::string>> assignments;
  std::string model;
  MetricStats gbps;
  MetricStats energy_j;
  MetricStats power_w;
  MetricStats efficiency;
  MetricStats sla;
  MetricStats drop;
  /// On the cross-cell throughput-vs-energy Pareto front.
  bool on_pareto = false;
};

struct CampaignSummary {
  /// Matrix order (cells in expansion order, models in roster order).
  std::vector<CellModelStats> cells;
  /// Indices into `cells` on the Pareto front, best throughput first.
  std::vector<std::size_t> pareto;

  /// Per-cell/model table with mean ± ci95 columns and a Pareto marker.
  [[nodiscard]] std::string table() const;
  [[nodiscard]] Json to_json() const;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (1.96 beyond the tabulated range). Exposed for the tests.
[[nodiscard]] double t_critical_95(std::size_t df);

/// Per-cell time-series aggregate: for every (column, window) of the
/// member runs' health series, the cross-seed mean and 95% CI half-width.
/// `mean`/`ci95` are column-major ([column][window]), mirroring the
/// "greennfv.series.v1" data layout.
struct SeriesStats {
  std::size_t seeds = 0;
  std::vector<std::string> columns;
  std::vector<std::vector<double>> mean;
  std::vector<std::vector<double>> ci95;

  /// {"schema": "greennfv.cellseries.v1", "seeds", "windows",
  ///  "columns", "mean": [[...]], "ci95": [[...]]}.
  [[nodiscard]] Json to_json() const;
};

/// Reduces one cell's per-seed series (all non-null) to per-window
/// statistics. Throws std::invalid_argument on column-schema or row-count
/// mismatches — seeds of one cell share a horizon by construction, so a
/// mismatch means mixed artifacts, not noise.
[[nodiscard]] SeriesStats aggregate_series(
    const std::vector<const telemetry::SeriesTable*>& series);

/// Groups runs by (cell, model), computes the statistics, and marks the
/// Pareto front. Models must be consistent across a cell's seeds (the
/// runner guarantees this; mismatches throw).
[[nodiscard]] CampaignSummary aggregate(const std::vector<RunResult>& runs);

}  // namespace greennfv::campaign
