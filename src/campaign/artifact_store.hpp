#pragma once

#include <memory>
#include <optional>
#include <string>

#include "campaign/campaign_spec.hpp"
#include "common/json.hpp"
#include "scenario/experiment.hpp"
#include "telemetry/series.hpp"

/// \file artifact_store.hpp
/// On-disk layout of a campaign: `<root>/<campaign>/runs/<run_id>.json`
/// holds one run's per-model metrics plus its telemetry series, and
/// `<root>/<campaign>/manifest.json` holds the campaign spec, the run
/// index, and the aggregated statistics. Run files are written atomically
/// (temp + rename) and carry a "complete" marker, so a crashed sweep
/// resumes by re-running exactly the missing/corrupt runs — and a resumed
/// campaign reproduces the fresh campaign's aggregates bit for bit,
/// because doubles round-trip through the JSON exactly.

namespace greennfv::campaign {

/// One executed (or resumed-from-disk) run of the matrix.
struct RunResult {
  std::size_t index = 0;
  std::string run_id;
  std::string cell_id;
  std::string scenario_name;
  std::vector<std::pair<std::string, std::string>> assignments;
  std::uint64_t seed = 0;
  /// The resolved scenario's to_text() echo — the artifact's full
  /// coordinate. Resume compares it against the current matrix entry, so
  /// an artifact produced under different overrides (episodes=5,
  /// eval_windows=2...) is re-run instead of silently reused.
  std::string scenario_text;
  /// True when the result was loaded from a previous campaign's artifact
  /// instead of executed.
  bool from_cache = false;
  /// A run whose execution threw: the campaign records the failure (run
  /// id + error), finishes the remaining cells, and exits non-zero. A
  /// failed run writes no artifact and is excluded from aggregation.
  bool failed = false;
  std::string error;
  /// Per-model results + telemetry, exactly as ExperimentRunner returns.
  scenario::EvalReport report;
  /// Per-window fleet health series (fleet runs with
  /// telemetry::series::enabled() only; null otherwise). Exported as a
  /// side artifact (`runs/<id>.series.{csv,json}`) — never part of the
  /// run JSON or the manifest, so series sampling cannot perturb resume
  /// or aggregation.
  std::shared_ptr<const telemetry::SeriesTable> fleet_series;
};

class ArtifactStore {
 public:
  /// Artifacts live under `<root>/<campaign_name>/`. Directories are
  /// created lazily on first write.
  ArtifactStore(std::string root, const std::string& campaign_name);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string run_path(const std::string& run_id) const;
  /// Flight-recorder slice for one run, next to its artifact:
  /// `<root>/<campaign>/runs/<run_id>.trace.json`.
  [[nodiscard]] std::string trace_path(const std::string& run_id) const;
  /// Per-window health series for one run, next to its artifact:
  /// `<root>/<campaign>/runs/<run_id>.series.{csv,json}`.
  [[nodiscard]] std::string series_csv_path(const std::string& run_id) const;
  [[nodiscard]] std::string series_json_path(const std::string& run_id) const;
  [[nodiscard]] std::string manifest_path() const;

  /// Serializes and atomically writes one run artifact.
  void save_run(const RunResult& result) const;

  /// Atomically writes one run's Perfetto trace document. Trace files are
  /// observability artifacts only: save_run/load_run/manifest never read
  /// them, so tracing cannot perturb campaign results or resume.
  void save_trace(const std::string& run_id, const Json& trace) const;

  /// Atomically writes one run's health series as CSV + JSON. Like trace
  /// slices, series files are observability artifacts only — resume and
  /// aggregation never depend on them.
  void save_series(const std::string& run_id,
                   const telemetry::SeriesTable& series) const;

  /// Loads a completed run for `spec`, or nullopt when the artifact is
  /// missing, unreadable, incomplete, or belongs to a different
  /// configuration (run_id or resolved-scenario echo mismatch) — any of
  /// which means "re-run it".
  [[nodiscard]] std::optional<RunResult> load_run(const RunSpec& spec) const;

  void save_manifest(const Json& manifest) const;

  /// JSON forms shared with tests and the CLI's manifest validation.
  [[nodiscard]] static Json run_to_json(const RunResult& result);
  [[nodiscard]] static RunResult run_from_json(const Json& json);

 private:
  std::string dir_;
};

}  // namespace greennfv::campaign
