#pragma once

#include <string>
#include <vector>

#include "campaign/campaign_spec.hpp"

/// \file presets.hpp
/// The named-campaign registry, mirroring the paper's sweeps: the Fig. 9
/// scheduler comparison (multi-seed), the Fig. 11-style traffic-rate
/// sweep, the design-knob ablation grid, and the CI smoke matrix. Like
/// scenario presets, a name resolves to a fully-specified CampaignSpec,
/// overridable key-by-key from the command line; unknown names are a hard
/// error.

namespace greennfv::campaign {

/// All campaign preset names, in listing order.
[[nodiscard]] std::vector<std::string> preset_names();

/// The preset with that name; std::invalid_argument lists the valid
/// names on a miss.
[[nodiscard]] CampaignSpec preset(const std::string& name);

/// One row per preset: "name — description".
[[nodiscard]] std::string preset_table();

/// The CLI entry point: picks the campaign named by `campaign=` (or loads
/// `campaign_file=`, or falls back to `default_campaign`), applies every
/// override in `config` on top, validates, and returns it.
[[nodiscard]] CampaignSpec resolve(
    const Config& config, const std::string& default_campaign = "fig9");

}  // namespace greennfv::campaign
