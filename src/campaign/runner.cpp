#include "campaign/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "orchestrator/fleet.hpp"
#include "telemetry/trace.hpp"

namespace greennfv::campaign {

CampaignRunner::CampaignRunner(CampaignSpec spec, const ArtifactStore* store)
    : spec_(std::move(spec)), store_(store), matrix_(spec_.expand()) {
  const std::string models = spec_.models;
  roster_ = [models](const scenario::ScenarioSpec& scenario) {
    std::vector<scenario::SchedulerFactory> roster =
        scenario::default_roster(scenario);
    if (!models.empty()) roster = scenario::filter_roster(roster, models);
    return roster;
  };
}

void CampaignRunner::set_roster_provider(RosterProvider provider) {
  roster_ = std::move(provider);
}

RunResult CampaignRunner::execute(const RunSpec& run,
                                  const RosterProvider& roster) {
  RunResult result;
  result.index = run.index;
  result.run_id = run.run_id;
  result.cell_id = run.cell_id;
  result.scenario_name = run.scenario_name;
  result.assignments = run.assignments;
  result.seed = run.seed;
  result.scenario_text = run.scenario.to_text();
  if (run.scenario.fleet.enabled) {
    // Dynamic fleets run through the orchestrator; its EvalReport has the
    // same shape (per-model means + telemetry series), so artifacts,
    // resume, and aggregation work unchanged.
    orchestrator::FleetOrchestrator fleet(run.scenario);
    result.report = fleet.run(roster(run.scenario)).report;
    // Null unless telemetry::series::enabled() — the sampler armed
    // itself inside the timeline build.
    result.fleet_series = fleet.timeline().series;
  } else {
    scenario::ExperimentRunner runner(run.scenario);
    result.report = runner.run(roster(run.scenario));
  }
  return result;
}

CampaignReport CampaignRunner::run(int jobs, bool resume) {
  CampaignReport report;
  report.runs.resize(matrix_.size());
  report.timings.resize(matrix_.size());
  for (const RunSpec& run : matrix_) {
    RunTiming& timing = report.timings[run.index];
    timing.index = run.index;
    timing.run_id = run.run_id;
    timing.cell_id = run.cell_id;
  }

  // Resume pass: pull completed runs off disk, collect what's left. An
  // artifact only counts when its roster matches what this campaign
  // would run (building the roster is cheap — the factories are lazy);
  // a stale models= filter means re-run, not a mixed aggregate.
  std::vector<std::size_t> todo;
  for (const RunSpec& run : matrix_) {
    if (resume && store_ != nullptr) {
      if (auto cached = store_->load_run(run)) {
        const std::vector<scenario::SchedulerFactory> roster =
            roster_(run.scenario);
        bool roster_matches = roster.size() == cached->report.models.size();
        for (std::size_t m = 0; roster_matches && m < roster.size(); ++m) {
          roster_matches =
              roster[m].name == cached->report.models[m].result.scheduler;
        }
        if (roster_matches) {
          report.runs[run.index] = std::move(*cached);
          ++report.resumed;
          continue;
        }
      }
    }
    todo.push_back(run.index);
  }
  if (report.resumed > 0) {
    std::printf("[campaign] %s: resumed %d/%zu runs from %s\n",
                spec_.name.c_str(), report.resumed, matrix_.size(),
                store_->dir().c_str());
  }

  // Parallel pass: every pending run is independent — per-run seeds, no
  // shared state — so slot-indexed results make any interleaving (and any
  // jobs count) produce identical bytes. The flight recorder rides along
  // read-only: worker spans, per-run trace slices (each run executes
  // synchronously on one worker thread, so a mark/extract pair brackets
  // exactly its own events), and per-cell timing — none of it feeds back
  // into results or artifacts.
  const auto pass_start = std::chrono::steady_clock::now();
  const auto seconds_between = [](auto from, auto to) {
    return std::chrono::duration<double>(to - from).count();
  };
  ThreadPool::parallel_for(
      todo.size(), jobs,
      [this, &report, &todo, &pass_start, &seconds_between](std::size_t i) {
        const RunSpec& run = matrix_[todo[i]];
        const auto run_start = std::chrono::steady_clock::now();
        std::printf("[campaign] run %zu/%zu %s\n", run.index + 1,
                    matrix_.size(), run.run_id.c_str());
        const bool slice =
            store_ != nullptr && telemetry::trace::runtime_enabled();
        telemetry::trace::Mark mark{};
        if (slice) mark = telemetry::trace::mark();
        RunResult result;
        {
          const telemetry::trace::Span span(
              telemetry::trace::intern("campaign/run:" + run.run_id),
              static_cast<std::uint64_t>(run.index));
          // Caught here, inside the task body: an uncaught exception
          // would propagate through ThreadPool::wait() and abandon every
          // cell still queued. One bad cell becomes a failure record; the
          // rest of the campaign finishes.
          try {
            result = execute(run, roster_);
          } catch (const std::exception& e) {
            result.index = run.index;
            result.run_id = run.run_id;
            result.cell_id = run.cell_id;
            result.scenario_name = run.scenario_name;
            result.assignments = run.assignments;
            result.seed = run.seed;
            result.failed = true;
            result.error = e.what();
            std::printf("[campaign] run %zu/%zu %s FAILED: %s\n",
                        run.index + 1, matrix_.size(), run.run_id.c_str(),
                        e.what());
          }
        }
        if (slice) {
          const int tid = std::max(0, ThreadPool::current_worker());
          store_->save_trace(
              run.run_id,
              telemetry::trace::events_to_json(
                  telemetry::trace::events_since(mark), tid));
        }
        // A failed run writes no artifact: its absence (not a poisoned
        // file) is what makes a later --resume re-run it.
        if (store_ != nullptr && !result.failed) {
          store_->save_run(result);
          // Health-series side artifacts ride along like trace slices:
          // written next to the run, never read back by resume.
          if (result.fleet_series != nullptr) {
            store_->save_series(run.run_id, *result.fleet_series);
          }
        }
        RunTiming& timing = report.timings[run.index];
        timing.executed = true;
        timing.worker = ThreadPool::current_worker();
        timing.queue_wait_s = seconds_between(pass_start, run_start);
        timing.wall_s =
            seconds_between(run_start, std::chrono::steady_clock::now());
        report.runs[run.index] = std::move(result);
      });
  report.executed = static_cast<int>(todo.size());
  for (const RunResult& run : report.runs) {
    if (run.failed) ++report.failed;
  }

  report.summary = aggregate(report.runs);
  if (store_ != nullptr) store_->save_manifest(manifest(report));
  return report;
}

std::string timing_table(const CampaignReport& report) {
  std::vector<std::vector<std::string>> rows;
  double critical_wall_s = 0.0;
  double total_wall_s = 0.0;
  for (const RunTiming& timing : report.timings) {
    if (!timing.executed) continue;
    rows.push_back({timing.run_id, timing.cell_id,
                    timing.worker < 0 ? std::string("inline")
                                      : format("%d", timing.worker),
                    format("%.3f", timing.queue_wait_s),
                    format("%.3f", timing.wall_s)});
    critical_wall_s = std::max(critical_wall_s,
                               timing.queue_wait_s + timing.wall_s);
    total_wall_s += timing.wall_s;
  }
  if (rows.empty()) return "[campaign] timing: no runs executed\n";
  std::string out = render_table(
      {"run", "cell", "worker", "queue_wait_s", "wall_s"}, rows);
  out += format(
      "[campaign] timing: %zu run(s), %.3f s total work, %.3f s critical"
      " path\n",
      rows.size(), total_wall_s, critical_wall_s);
  return out;
}

Json CampaignRunner::manifest(const CampaignReport& report) const {
  Json json = Json::object();
  json.set("campaign", spec_.name);
  json.set("spec", spec_.to_text());
  json.set("matrix_size", static_cast<double>(matrix_.size()));
  Json runs = Json::array();
  for (const RunResult& run : report.runs) {
    Json entry = Json::object();
    entry.set("run_id", run.run_id);
    entry.set("cell_id", run.cell_id);
    entry.set("seed",
              format("%llu", static_cast<unsigned long long>(run.seed)));
    entry.set("resumed", run.from_cache);
    // Only failed cells carry the marker — success manifests keep their
    // exact pre-fault bytes.
    if (run.failed) {
      entry.set("failed", true);
      entry.set("error", run.error);
    }
    runs.push_back(std::move(entry));
  }
  json.set("runs", std::move(runs));
  json.set("summary", report.summary.to_json());
  return json;
}

}  // namespace greennfv::campaign
