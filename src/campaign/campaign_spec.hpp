#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "scenario/scenario_spec.hpp"

/// \file campaign_spec.hpp
/// A campaign declares a *sweep* over the Scenario/Experiment API: a base
/// scenario (or a list of named presets), per-key override grids
/// ("sweep.offered_gbps=5,10,20,40"), a roster filter, and a seed set.
/// Every figure in the paper is really such a sweep — Fig. 9 sweeps
/// schedulers, Fig. 11 sweeps traffic rates, the ablation sweeps knob
/// subsets — and expand() turns the declaration into a deterministic run
/// matrix the campaign runner executes in parallel.

namespace greennfv::campaign {

/// One override grid: a scenario key and the values it sweeps over.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// One fully-resolved cell×seed of the matrix. `index` is the position in
/// deterministic matrix order (scenario axis outermost, then each sweep
/// axis in key order, seeds innermost) — the order aggregation and
/// artifact listings use regardless of execution interleaving.
struct RunSpec {
  std::size_t index = 0;
  /// Filesystem-safe unique id: "<scenario>[__<key>-<value>...]__s<seed>".
  std::string run_id;
  /// run_id minus the seed suffix — the aggregation cell this run's seed
  /// belongs to.
  std::string cell_id;
  std::string scenario_name;
  /// The axis assignments this cell received (echoed into artifacts).
  std::vector<std::pair<std::string, std::string>> assignments;
  std::uint64_t seed = 0;
  /// The scenario the run executes, overrides and seed applied.
  scenario::ScenarioSpec scenario;
};

struct CampaignSpec {
  std::string name = "custom";
  /// Preset listings only; not serialized.
  std::string description;

  /// Scenario axis: named presets, evaluated in order. Ignored when
  /// `base` is set.
  std::vector<std::string> scenarios = {"paper-default"};
  /// Explicit base spec (programmatic use: a bench hands its resolved
  /// scenario straight to the campaign). Not serialized.
  std::optional<scenario::ScenarioSpec> base;

  /// Scenario-key overrides applied to every run before the axes.
  Config overrides;
  /// Override grids, kept sorted by key (deterministic matrix order).
  std::vector<SweepAxis> axes;

  /// Roster filter (comma-separated model names for
  /// scenario::filter_roster); empty runs the full default roster.
  std::string models;

  /// Seed axis. Explicit seeds win; otherwise `auto_seeds` values are
  /// derived per cell from the cell's base seed: the first is the base
  /// seed itself (a 1-seed campaign reproduces the single-run numbers bit
  /// for bit), the rest come from an Rng stream over it.
  std::vector<std::uint64_t> seeds;
  int auto_seeds = 1;

  /// Expands to the deterministic run matrix. Resolves every cell's
  /// scenario (preset/base + overrides + axis assignment + seed) and
  /// validates it — a bad cell fails here, before anything runs.
  [[nodiscard]] std::vector<RunSpec> expand() const;

  /// The per-cell seed list (before the seed axis is crossed in).
  [[nodiscard]] std::vector<std::uint64_t> seeds_for(
      std::uint64_t base_seed) const;

  /// Overwrites fields from `config`: campaign keys (scenarios=, models=,
  /// seeds=, auto_seeds=, name=), "sweep.<scenario-key>=v1,v2,..." axes,
  /// and plain scenario keys as base overrides. Unknown keys throw.
  void apply(const Config& config);

  /// Serializes to "key=value" lines; apply() on a default spec
  /// reproduces this spec (base excepted — it is programmatic only).
  [[nodiscard]] std::string to_text() const;

  /// Campaign-file IO: the to_text() format, one key=value per line, '#'
  /// comments. (Values may contain commas, so files are line-oriented —
  /// unlike scenario files they are not Config::from_string parseable.)
  void save(const std::string& path) const;
  [[nodiscard]] static CampaignSpec load(const std::string& path);

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;

  /// Campaign-level keys apply() understands (the scenario vocabulary and
  /// "sweep." axes come on top).
  [[nodiscard]] static const std::vector<std::string>& known_keys();
};

/// Lowercased filesystem-safe token: alnum kept, '.' and '-' kept,
/// everything else collapsed to '_'.
[[nodiscard]] std::string sanitize_token(const std::string& text);

/// Parses a line-oriented key=value text (the campaign-file format) into a
/// Config without splitting values on commas. '#' starts a comment.
[[nodiscard]] Config config_from_lines(const std::string& text);

}  // namespace greennfv::campaign
