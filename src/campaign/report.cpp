#include "campaign/report.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "campaign/aggregator.hpp"
#include "common/fs_util.hpp"
#include "common/string_util.hpp"
#include "orchestrator/fleet_series.hpp"
#include "telemetry/series.hpp"

namespace greennfv::campaign {

namespace {

constexpr const char* kReportSchema = "greennfv.report.v1";
constexpr const char* kSeriesSchema = "greennfv.series.v1";
constexpr const char* kCellSeriesSchema = "greennfv.cellseries.v1";
constexpr const char* kHtmlMarker = "<!-- greennfv-report:v1 -->";

// ---------------------------------------------------------------------------
// model construction

std::string series_json_path(const std::string& dir,
                             const std::string& run_id) {
  return dir + "/runs/" + run_id + ".series.json";
}

/// One cell's member runs, in manifest (= matrix) order.
struct CellGroup {
  std::string cell_id;
  std::size_t seeds = 0;
  std::vector<telemetry::SeriesTable> series;
};

// ---------------------------------------------------------------------------
// SVG rendering

/// Fixed qualitative palette, one entry per line in a chart.
constexpr const char* kPalette[] = {"#2563eb", "#dc2626", "#16a34a",
                                    "#9333ea", "#ea580c", "#0891b2"};

struct ChartSpec {
  const char* title;
  std::vector<const char*> columns;
};

/// The per-cell dashboard panels. Every referenced column is part of the
/// fixed fleet-series schema, so a missing column is a programming error
/// (column_index throws).
const std::vector<ChartSpec>& chart_specs() {
  static const std::vector<ChartSpec> kCharts = {
      {"population",
       {"live_chains", "active_nodes", "asleep_nodes", "down_nodes"}},
      {"energy (J/window)",
       {"standby_energy_j", "wake_energy_j", "migration_energy_j",
        "replace_energy_j", "link_energy_j"}},
      {"churn (chains/window)",
       {"arrivals", "departures", "rejected", "fault_dropped"}},
      {"SLA + fabric",
       {"latency_violations", "link_util_max", "downtime_s"}},
  };
  return kCharts;
}

std::string fmt2(double v) { return format("%.2f", v); }

/// Extracts one column of a cellseries document as (mean, ci95) vectors.
void cellseries_column(const Json& series, const std::string& name,
                       std::vector<double>* mean, std::vector<double>* ci) {
  const auto& columns = series.at("columns").elements();
  std::size_t index = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].as_string() == name) {
      index = i;
      break;
    }
  }
  if (index == columns.size()) {
    throw std::invalid_argument("report: cellseries has no column '" + name +
                                "'");
  }
  mean->clear();
  ci->clear();
  for (const Json& v : series.at("mean").at(index).elements())
    mean->push_back(v.as_double());
  for (const Json& v : series.at("ci95").at(index).elements())
    ci->push_back(v.as_double());
}

/// Renders one inline-SVG line chart: mean polyline + translucent 95% CI
/// band per column, dashed vertical annotations on fault windows.
std::string render_chart(const Json& series, const ChartSpec& chart,
                         const std::vector<std::size_t>& fault_windows) {
  constexpr double kW = 560.0, kH = 170.0;
  constexpr double kPadL = 52.0, kPadR = 10.0, kPadT = 24.0, kPadB = 20.0;
  const double plot_w = kW - kPadL - kPadR;
  const double plot_h = kH - kPadT - kPadB;

  // Gather every line first: the y-range spans all of them (incl. CI).
  std::vector<std::vector<double>> means(chart.columns.size());
  std::vector<std::vector<double>> cis(chart.columns.size());
  std::size_t windows = 0;
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (std::size_t c = 0; c < chart.columns.size(); ++c) {
    cellseries_column(series, chart.columns[c], &means[c], &cis[c]);
    windows = means[c].size();
    for (std::size_t w = 0; w < windows; ++w) {
      const double low = means[c][w] - cis[c][w];
      const double high = means[c][w] + cis[c][w];
      if (!any || low < lo) lo = low;
      if (!any || high > hi) hi = high;
      any = true;
    }
  }
  if (!any) return "";
  if (lo > 0.0) lo = 0.0;  // anchor counts/energies at zero
  if (hi <= lo) hi = lo + 1.0;

  const auto x_at = [&](std::size_t w) {
    const std::size_t denom = windows > 1 ? windows - 1 : 1;
    return kPadL + plot_w * static_cast<double>(w) /
                       static_cast<double>(denom);
  };
  const auto y_at = [&](double v) {
    return kPadT + plot_h * (1.0 - (v - lo) / (hi - lo));
  };

  std::string svg;
  svg += format(
      "<svg class=\"chart\" viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\""
      " height=\"%.0f\" role=\"img\">\n",
      kW, kH, kW, kH);
  svg += "<text class=\"title\" x=\"4\" y=\"14\">";
  svg += html_escape(chart.title);
  svg += "</text>\n";
  // Axes + range labels.
  svg += format(
      "<line class=\"axis\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"/>\n",
      fmt2(kPadL).c_str(), fmt2(kPadT).c_str(), fmt2(kPadL).c_str(),
      fmt2(kPadT + plot_h).c_str());
  svg += format(
      "<line class=\"axis\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"/>\n",
      fmt2(kPadL).c_str(), fmt2(kPadT + plot_h).c_str(),
      fmt2(kPadL + plot_w).c_str(), fmt2(kPadT + plot_h).c_str());
  svg += format("<text class=\"tick\" x=\"%s\" y=\"%s\">%s</text>\n",
                fmt2(kPadL - 4.0).c_str(), fmt2(kPadT + 4.0).c_str(),
                html_escape(format("%.4g", hi)).c_str());
  svg += format("<text class=\"tick\" x=\"%s\" y=\"%s\">%s</text>\n",
                fmt2(kPadL - 4.0).c_str(), fmt2(kPadT + plot_h).c_str(),
                html_escape(format("%.4g", lo)).c_str());
  svg += format("<text class=\"tick xlab\" x=\"%s\" y=\"%s\">w=%zu</text>\n",
                fmt2(kPadL + plot_w).c_str(), fmt2(kH - 6.0).c_str(),
                windows > 0 ? windows - 1 : 0);

  // Fault annotations behind the data lines.
  for (const std::size_t w : fault_windows) {
    if (w >= windows) continue;
    svg += format(
        "<line class=\"fault\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\">"
        "<title>fault window %zu</title></line>\n",
        fmt2(x_at(w)).c_str(), fmt2(kPadT).c_str(), fmt2(x_at(w)).c_str(),
        fmt2(kPadT + plot_h).c_str(), w);
  }

  for (std::size_t c = 0; c < chart.columns.size(); ++c) {
    const char* color =
        kPalette[c % (sizeof(kPalette) / sizeof(kPalette[0]))];
    bool has_ci = false;
    for (const double v : cis[c]) has_ci = has_ci || v > 0.0;
    if (has_ci) {
      // CI band: upper edge forward, lower edge backward.
      std::string points;
      for (std::size_t w = 0; w < windows; ++w) {
        points += fmt2(x_at(w)) + "," + fmt2(y_at(means[c][w] + cis[c][w]));
        points += ' ';
      }
      for (std::size_t w = windows; w-- > 0;) {
        points += fmt2(x_at(w)) + "," + fmt2(y_at(means[c][w] - cis[c][w]));
        if (w != 0) points += ' ';
      }
      svg += format(
          "<polygon class=\"band\" fill=\"%s\" points=\"%s\"/>\n", color,
          points.c_str());
    }
    std::string points;
    for (std::size_t w = 0; w < windows; ++w) {
      if (w > 0) points += ' ';
      points += fmt2(x_at(w)) + "," + fmt2(y_at(means[c][w]));
    }
    svg += format(
        "<polyline class=\"line\" stroke=\"%s\" points=\"%s\">"
        "<title>%s</title></polyline>\n",
        color, points.c_str(), html_escape(chart.columns[c]).c_str());
  }
  svg += "</svg>\n";

  // Legend as plain HTML under the chart.
  std::string legend = "<div class=\"legend\">";
  for (std::size_t c = 0; c < chart.columns.size(); ++c) {
    const char* color =
        kPalette[c % (sizeof(kPalette) / sizeof(kPalette[0]))];
    legend += format("<span style=\"color:%s\">&#9632; %s</span> ", color,
                     html_escape(chart.columns[c]).c_str());
  }
  legend += "</div>\n";
  return svg + legend;
}

/// Windows where the cross-seed mean fault-injection count is non-zero —
/// the vertical annotation marks on every panel of the cell.
std::vector<std::size_t> fault_annotation_windows(const Json& series) {
  std::vector<double> mean, ci, total;
  for (const char* column : {"node_crashes", "link_fails"}) {
    cellseries_column(series, column, &mean, &ci);
    if (total.size() < mean.size()) total.resize(mean.size(), 0.0);
    for (std::size_t w = 0; w < mean.size(); ++w) total[w] += mean[w];
  }
  std::vector<std::size_t> windows;
  for (std::size_t w = 0; w < total.size(); ++w) {
    if (total[w] > 0.0) windows.push_back(w);
  }
  return windows;
}

std::string render_pareto_svg(const Json& summary) {
  const auto& cells = summary.at("cells").elements();
  constexpr double kW = 560.0, kH = 240.0;
  constexpr double kPadL = 64.0, kPadR = 14.0, kPadT = 20.0, kPadB = 34.0;
  const double plot_w = kW - kPadL - kPadR;
  const double plot_h = kH - kPadT - kPadB;

  double x_lo = 0.0, x_hi = 0.0, y_lo = 0.0, y_hi = 0.0;
  bool any = false;
  for (const Json& cell : cells) {
    const double x = cell.at("energy_j").at("mean").as_double();
    const double y = cell.at("gbps").at("mean").as_double();
    if (!any || x < x_lo) x_lo = x;
    if (!any || x > x_hi) x_hi = x;
    if (!any || y < y_lo) y_lo = y;
    if (!any || y > y_hi) y_hi = y;
    any = true;
  }
  if (!any) return "<p>no aggregated cells</p>\n";
  // 5% margins so edge points are not clipped; degenerate ranges pad to 1.
  const double x_pad = x_hi > x_lo ? (x_hi - x_lo) * 0.05 : 1.0;
  const double y_pad = y_hi > y_lo ? (y_hi - y_lo) * 0.05 : 1.0;
  x_lo -= x_pad;
  x_hi += x_pad;
  y_lo -= y_pad;
  y_hi += y_pad;

  const auto x_at = [&](double v) {
    return kPadL + plot_w * (v - x_lo) / (x_hi - x_lo);
  };
  const auto y_at = [&](double v) {
    return kPadT + plot_h * (1.0 - (v - y_lo) / (y_hi - y_lo));
  };

  std::string svg;
  svg += format(
      "<svg class=\"chart\" viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\""
      " height=\"%.0f\" role=\"img\">\n",
      kW, kH, kW, kH);
  svg += format(
      "<line class=\"axis\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"/>\n",
      fmt2(kPadL).c_str(), fmt2(kPadT).c_str(), fmt2(kPadL).c_str(),
      fmt2(kPadT + plot_h).c_str());
  svg += format(
      "<line class=\"axis\" x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\"/>\n",
      fmt2(kPadL).c_str(), fmt2(kPadT + plot_h).c_str(),
      fmt2(kPadL + plot_w).c_str(), fmt2(kPadT + plot_h).c_str());
  svg += format("<text class=\"tick xlab\" x=\"%s\" y=\"%s\">energy (J)"
                "</text>\n",
                fmt2(kPadL + plot_w / 2.0).c_str(), fmt2(kH - 8.0).c_str());
  svg += format(
      "<text class=\"tick\" x=\"%s\" y=\"%s\">%s</text>\n",
      fmt2(kPadL - 4.0).c_str(), fmt2(kPadT + 4.0).c_str(),
      html_escape(format("%.4g Gbps", y_hi)).c_str());
  svg += format(
      "<text class=\"tick\" x=\"%s\" y=\"%s\">%s</text>\n",
      fmt2(kPadL - 4.0).c_str(), fmt2(kPadT + plot_h).c_str(),
      html_escape(format("%.4g", y_lo)).c_str());

  // The front, best-throughput-first, as a connecting polyline.
  const auto& pareto = summary.at("pareto").elements();
  if (pareto.size() > 1) {
    std::string points;
    for (std::size_t i = 0; i < pareto.size(); ++i) {
      const Json& cell =
          cells[static_cast<std::size_t>(pareto[i].as_double())];
      if (i > 0) points += ' ';
      points += fmt2(x_at(cell.at("energy_j").at("mean").as_double()));
      points += ',';
      points += fmt2(y_at(cell.at("gbps").at("mean").as_double()));
    }
    svg += format("<polyline class=\"front\" points=\"%s\"/>\n",
                  points.c_str());
  }
  for (const Json& cell : cells) {
    const double x = x_at(cell.at("energy_j").at("mean").as_double());
    const double y = y_at(cell.at("gbps").at("mean").as_double());
    const bool front = cell.at("on_pareto").as_bool();
    svg += format(
        "<circle class=\"%s\" cx=\"%s\" cy=\"%s\" r=\"%s\">"
        "<title>%s / %s: %s Gbps, %s J</title></circle>\n",
        front ? "pt front-pt" : "pt", fmt2(x).c_str(), fmt2(y).c_str(),
        front ? "5" : "3.5",
        html_escape(cell.at("cell_id").as_string()).c_str(),
        html_escape(cell.at("model").as_string()).c_str(),
        html_escape(format("%.3f", cell.at("gbps").at("mean").as_double()))
            .c_str(),
        html_escape(format("%.1f",
                           cell.at("energy_j").at("mean").as_double()))
            .c_str());
  }
  svg += "</svg>\n";
  return svg;
}

std::string render_summary_table(const Json& summary) {
  std::string out;
  out += "<table>\n<tr><th>cell</th><th>model</th><th>seeds</th>"
         "<th>Gbps</th><th>energy (J)</th><th>SLA met</th><th>drop</th>"
         "<th>pareto</th></tr>\n";
  for (const Json& cell : summary.at("cells").elements()) {
    const auto ci_cell = [&](const char* key, int decimals) {
      const Json& stats = cell.at(key);
      std::string text = format("%.*f", decimals, stats.at("mean").as_double());
      if (stats.at("n").as_double() > 1.0) {
        text += " &plusmn; ";
        text += format("%.*f", decimals, stats.at("ci95").as_double());
      }
      return text;
    };
    out += "<tr><td>";
    out += html_escape(cell.at("cell_id").as_string());
    out += "</td><td>";
    out += html_escape(cell.at("model").as_string());
    out += "</td><td>";
    out += format("%.0f", cell.at("gbps").at("n").as_double());
    out += "</td><td>";
    out += ci_cell("gbps", 3);
    out += "</td><td>";
    out += ci_cell("energy_j", 1);
    out += "</td><td>";
    out += format("%.1f%%",
                  cell.at("sla_satisfaction").at("mean").as_double() * 100.0);
    out += "</td><td>";
    out += format("%.2f%%",
                  cell.at("drop_fraction").at("mean").as_double() * 100.0);
    out += "</td><td>";
    out += cell.at("on_pareto").as_bool() ? "&#9733;" : "";
    out += "</td></tr>\n";
  }
  out += "</table>\n";
  return out;
}

// ---------------------------------------------------------------------------
// validation helpers

void check_finite(double v, const std::string& what,
                  std::vector<std::string>* errors) {
  if (!std::isfinite(v)) errors->push_back(what + " is not finite");
}

/// Shape/content checks shared by the CSV and JSON series validators once
/// the text has parsed into a table.
void validate_series_table(const telemetry::SeriesTable& table,
                           std::vector<std::string>* errors) {
  const auto& want = orchestrator::fleet_series_columns();
  if (table.columns() != want) {
    errors->push_back("columns do not match the fleet series schema");
    return;
  }
  const std::size_t window_col = table.column_index("window");
  const std::size_t t_col = table.column_index("t_s");
  double prev_t = 0.0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      check_finite(table.at(r, c),
                   "row " + format("%zu", r) + " column '" +
                       table.columns()[c] + "'",
                   errors);
    }
    if (table.at(r, window_col) != static_cast<double>(r)) {
      errors->push_back("row " + format("%zu", r) +
                        " window column != row index");
    }
    const double t = table.at(r, t_col);
    if (r > 0 && t < prev_t) {
      errors->push_back("row " + format("%zu", r) + " t_s decreased");
    }
    prev_t = t;
  }
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Validates one cell's embedded cellseries document.
void validate_cellseries(const Json& series, const std::string& where,
                         std::vector<std::string>* errors) {
  if (!series.is_object() || !series.has("schema") ||
      !series.at("schema").is_string() ||
      series.at("schema").as_string() != kCellSeriesSchema) {
    errors->push_back(where + ": not a " + std::string(kCellSeriesSchema) +
                      " document");
    return;
  }
  const std::size_t columns = series.at("columns").size();
  const auto windows =
      static_cast<std::size_t>(series.at("windows").as_double());
  if (columns != orchestrator::fleet_series_columns().size()) {
    errors->push_back(where + ": wrong column count");
  }
  for (const char* key : {"mean", "ci95"}) {
    const Json& matrix = series.at(key);
    if (matrix.size() != columns) {
      errors->push_back(where + ": " + key + " has " +
                        format("%zu", matrix.size()) + " columns, want " +
                        format("%zu", columns));
      continue;
    }
    for (std::size_t c = 0; c < matrix.size(); ++c) {
      if (matrix.at(c).size() != windows) {
        errors->push_back(where + ": " + key + " column " + format("%zu", c) +
                          " is ragged");
        continue;
      }
      for (const Json& v : matrix.at(c).elements()) {
        check_finite(v.as_double(), where + ": " + key + " value", errors);
      }
    }
  }
}

}  // namespace

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += ch;
    }
  }
  return out;
}

Json build_report_model(const std::string& campaign_dir) {
  const std::string manifest_path = campaign_dir + "/manifest.json";
  if (!file_exists(manifest_path)) {
    throw std::invalid_argument("report: no manifest at " + manifest_path);
  }
  const Json manifest = Json::parse(read_file(manifest_path));

  Json model = Json::object();
  model.set("schema", kReportSchema);
  model.set("campaign", manifest.at("campaign").as_string());
  model.set("spec", manifest.at("spec").as_string());
  model.set("summary", manifest.at("summary"));

  // Per-run index + cell grouping, both in manifest (= matrix) order.
  std::vector<CellGroup> groups;
  const auto group_for = [&groups](const std::string& cell_id) {
    for (auto& group : groups) {
      if (group.cell_id == cell_id) return &group;
    }
    groups.push_back({cell_id, 0, {}});
    return &groups.back();
  };
  Json runs = Json::array();
  for (const Json& entry : manifest.at("runs").elements()) {
    const std::string run_id = entry.at("run_id").as_string();
    const std::string cell_id = entry.at("cell_id").as_string();
    const bool failed = entry.has("failed") && entry.at("failed").as_bool();
    const std::string series_path = series_json_path(campaign_dir, run_id);
    const bool has_series = !failed && file_exists(series_path);

    Json run = Json::object();
    run.set("run_id", run_id);
    run.set("cell_id", cell_id);
    run.set("seed", entry.at("seed").as_string());
    if (failed) run.set("failed", true);
    run.set("has_series", has_series);
    runs.push_back(std::move(run));

    CellGroup* group = group_for(cell_id);
    if (!failed) ++group->seeds;
    if (has_series) {
      group->series.push_back(
          telemetry::SeriesTable::from_json(Json::parse(
              read_file(series_path))));
    }
  }
  model.set("runs", std::move(runs));

  Json cells = Json::array();
  for (const CellGroup& group : groups) {
    Json cell = Json::object();
    cell.set("cell_id", group.cell_id);
    cell.set("seeds", static_cast<double>(group.seeds));
    if (group.series.empty()) {
      cell.set("series", Json());
    } else {
      std::vector<const telemetry::SeriesTable*> tables;
      for (const auto& table : group.series) tables.push_back(&table);
      cell.set("series", aggregate_series(tables).to_json());
    }
    cells.push_back(std::move(cell));
  }
  model.set("cells", std::move(cells));
  return model;
}

std::string render_report_html(const Json& model) {
  std::string html;
  html += "<!DOCTYPE html>\n";
  html += kHtmlMarker;
  html += "\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n";
  html += "<title>";
  html += html_escape(model.at("campaign").as_string());
  html += " — campaign report</title>\n<style>\n";
  html +=
      "body{font:14px/1.5 system-ui,sans-serif;margin:24px;color:#111}\n"
      "h1{font-size:20px}h2{font-size:16px;margin-top:28px}\n"
      "table{border-collapse:collapse;margin:8px 0}\n"
      "td,th{border:1px solid #cbd5e1;padding:3px 8px;text-align:right}\n"
      "th{background:#f1f5f9}td:first-child,th:first-child{text-align:left}\n"
      "pre{background:#f8fafc;border:1px solid #e2e8f0;padding:8px;"
      "font-size:12px;overflow-x:auto}\n"
      ".chart{background:#fff;border:1px solid #e2e8f0;margin:4px 8px 0 0}\n"
      ".title{font:12px system-ui,sans-serif;fill:#334155}\n"
      ".tick{font:10px system-ui,sans-serif;fill:#64748b;"
      "text-anchor:end}\n"
      ".xlab{text-anchor:middle}\n"
      ".axis{stroke:#94a3b8;stroke-width:1}\n"
      ".line{fill:none;stroke-width:1.5}\n"
      ".band{stroke:none;fill-opacity:0.15}\n"
      ".fault{stroke:#f59e0b;stroke-width:1;stroke-dasharray:3 2}\n"
      ".pt{fill:#64748b}.front-pt{fill:#dc2626}\n"
      ".front{fill:none;stroke:#dc2626;stroke-width:1;"
      "stroke-dasharray:4 3}\n"
      ".legend{font-size:11px;margin:0 0 10px 0}\n"
      ".cell{display:inline-block;vertical-align:top;margin-right:16px}\n";
  html += "</style>\n</head>\n<body>\n";
  html += "<h1>Campaign report: ";
  html += html_escape(model.at("campaign").as_string());
  html += "</h1>\n";

  html += "<!-- section:summary -->\n<h2>Per-cell summary</h2>\n";
  html += render_summary_table(model.at("summary"));
  html += "<details><summary>campaign spec</summary><pre>";
  html += html_escape(model.at("spec").as_string());
  html += "</pre></details>\n";

  html += "<!-- section:pareto -->\n"
          "<h2>Throughput vs energy (Pareto front)</h2>\n";
  html += render_pareto_svg(model.at("summary"));

  html += "<!-- section:cells -->\n<h2>Per-cell health time-series</h2>\n";
  bool any_series = false;
  for (const Json& cell : model.at("cells").elements()) {
    const Json& series = cell.at("series");
    if (series.is_null()) continue;
    any_series = true;
    html += "<div class=\"cell-block\">\n<h3>";
    html += html_escape(cell.at("cell_id").as_string());
    html += format(" <small>(%.0f seed(s))</small>",
                   cell.at("seeds").as_double());
    html += "</h3>\n";
    const std::vector<std::size_t> faults =
        fault_annotation_windows(series);
    for (const ChartSpec& chart : chart_specs()) {
      html += "<div class=\"cell\">\n";
      html += render_chart(series, chart, faults);
      html += "</div>\n";
    }
    html += "</div>\n";
  }
  if (!any_series) {
    html += "<p>No per-run series artifacts were found — run the campaign"
            " with <code>series=1</code> to record them.</p>\n";
  }
  html += "</body>\n</html>\n";
  return html;
}

std::vector<std::string> validate_report_model(const Json& model) {
  std::vector<std::string> errors;
  if (!model.is_object()) return {"report model is not an object"};
  if (!model.has("schema") || !model.at("schema").is_string() ||
      model.at("schema").as_string() != kReportSchema) {
    errors.push_back("schema is not " + std::string(kReportSchema));
  }
  for (const char* key : {"campaign", "spec"}) {
    if (!model.has(key) || !model.at(key).is_string()) {
      errors.push_back(std::string(key) + " missing or not a string");
    }
  }
  if (!model.has("summary") || !model.at("summary").is_object() ||
      !model.at("summary").has("cells")) {
    errors.push_back("summary missing or malformed");
  }
  if (!model.has("runs") || !model.at("runs").is_array()) {
    errors.push_back("runs missing or not an array");
  } else {
    for (const Json& run : model.at("runs").elements()) {
      if (!run.is_object() || !run.has("run_id") || !run.has("cell_id") ||
          !run.has("seed") || !run.has("has_series")) {
        errors.push_back("run entry missing run_id/cell_id/seed/has_series");
        break;
      }
    }
  }
  if (!model.has("cells") || !model.at("cells").is_array()) {
    errors.push_back("cells missing or not an array");
  } else {
    for (const Json& cell : model.at("cells").elements()) {
      if (!cell.is_object() || !cell.has("cell_id") || !cell.has("seeds") ||
          !cell.has("series")) {
        errors.push_back("cell entry missing cell_id/seeds/series");
        continue;
      }
      if (!cell.at("series").is_null()) {
        validate_cellseries(cell.at("series"),
                            "cell " + cell.at("cell_id").as_string(),
                            &errors);
      }
    }
  }
  return errors;
}

std::vector<std::string> validate_series_json(const Json& json) {
  std::vector<std::string> errors;
  if (!json.is_object() || !json.has("schema") ||
      !json.at("schema").is_string() ||
      json.at("schema").as_string() != kSeriesSchema) {
    return {"not a " + std::string(kSeriesSchema) + " document"};
  }
  try {
    validate_series_table(telemetry::SeriesTable::from_json(json), &errors);
  } catch (const std::exception& e) {
    errors.push_back(e.what());
  }
  return errors;
}

std::vector<std::string> validate_series_csv(const std::string& text) {
  std::vector<std::string> errors;
  try {
    validate_series_table(telemetry::SeriesTable::from_csv(text), &errors);
  } catch (const std::exception& e) {
    errors.push_back(e.what());
  }
  return errors;
}

std::vector<std::string> validate_report_html(const std::string& html) {
  std::vector<std::string> errors;
  if (html.rfind("<!DOCTYPE html>", 0) != 0) {
    errors.push_back("missing <!DOCTYPE html> prologue");
  }
  if (html.find(kHtmlMarker) == std::string::npos) {
    errors.push_back("missing " + std::string(kHtmlMarker) + " marker");
  }
  for (const char* section : {"<!-- section:summary -->",
                              "<!-- section:pareto -->",
                              "<!-- section:cells -->"}) {
    if (html.find(section) == std::string::npos) {
      errors.push_back("missing " + std::string(section));
    }
  }
  if (count_occurrences(html, "<svg") != count_occurrences(html, "</svg>")) {
    errors.push_back("unbalanced <svg> tags");
  }
  if (html.find("<script") != std::string::npos) {
    errors.push_back("report must be self-contained: found <script>");
  }
  return errors;
}

Json generate_report(const std::string& campaign_dir,
                     const std::string& html_path) {
  Json model = build_report_model(campaign_dir);
  write_file_atomic(campaign_dir + "/report.json", model.dump(1) + "\n");
  write_file_atomic(html_path, render_report_html(model));
  return model;
}

}  // namespace greennfv::campaign
