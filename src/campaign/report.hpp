#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"

/// \file report.hpp
/// The campaign report generator: turns a finished campaign directory
/// (manifest.json + per-run `runs/<id>.series.{csv,json}` side artifacts)
/// into (1) a machine-readable report model — schema
/// "greennfv.report.v1", written as `<campaign>/report.json` — and (2) a
/// self-contained HTML dashboard: per-cell summary table, throughput-vs-
/// energy Pareto scatter, and inline-SVG health time-series per cell with
/// 95% CI bands and fault annotations. The dashboard embeds no scripts
/// and fetches nothing — one file, openable anywhere.
///
/// Everything here runs strictly *after* a campaign (reading artifacts
/// off disk through the same code path whether invoked by
/// `run_campaign report=` in-process or by `run_report` post-hoc), so
/// report generation can never perturb campaign results or resume.
///
/// Report model schema ("greennfv.report.v1"):
///   schema    "greennfv.report.v1"
///   campaign  campaign name (manifest echo)
///   spec      campaign spec text (manifest echo)
///   summary   per-cell aggregate stats + Pareto front (manifest echo)
///   runs      [{run_id, cell_id, seed, failed?, has_series}]
///   cells     [{cell_id, seeds, series}] — series is a
///             "greennfv.cellseries.v1" document (cross-seed mean/ci95
///             per column per window), or null when no member run wrote
///             a series artifact.

namespace greennfv::campaign {

/// Escapes &, <, >, " and ' for safe embedding in HTML text and
/// attribute positions.
[[nodiscard]] std::string html_escape(const std::string& text);

/// Builds the report model from a campaign directory. Throws
/// std::invalid_argument when the manifest is missing/corrupt or a series
/// artifact is malformed.
[[nodiscard]] Json build_report_model(const std::string& campaign_dir);

/// Renders the self-contained HTML dashboard for a report model.
[[nodiscard]] std::string render_report_html(const Json& model);

/// Schema validators, shared by the tests, the `run_report validate=`
/// mode, and the CI tier. Each returns a list of human-readable problems
/// — empty means valid.
[[nodiscard]] std::vector<std::string> validate_report_model(
    const Json& model);
[[nodiscard]] std::vector<std::string> validate_series_json(const Json& json);
[[nodiscard]] std::vector<std::string> validate_series_csv(
    const std::string& text);
[[nodiscard]] std::vector<std::string> validate_report_html(
    const std::string& html);

/// End-to-end: builds the model, writes `<campaign_dir>/report.json`,
/// renders the dashboard to `html_path` (both atomic), and returns the
/// model.
Json generate_report(const std::string& campaign_dir,
                     const std::string& html_path);

}  // namespace greennfv::campaign
