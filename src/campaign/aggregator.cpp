#include "campaign/aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/string_util.hpp"
#include "telemetry/stats.hpp"

namespace greennfv::campaign {

namespace {

/// Welford accumulators for one (cell, model)'s six metrics.
struct CellAccumulator {
  std::size_t order = 0;  ///< first-seen position (output order)
  std::string cell_id;
  std::string scenario;
  std::vector<std::pair<std::string, std::string>> assignments;
  std::string model;
  telemetry::RunningStats gbps, energy_j, power_w, efficiency, sla, drop;
};

MetricStats finalize(const telemetry::RunningStats& stats) {
  MetricStats out;
  out.n = stats.count();
  out.mean = stats.count() > 0 ? stats.mean() : 0.0;
  out.stddev = stats.count() > 1 ? stats.stddev() : 0.0;
  out.ci95 = stats.count() > 1
                 ? t_critical_95(stats.count() - 1) * out.stddev /
                       std::sqrt(static_cast<double>(stats.count()))
                 : 0.0;
  return out;
}

std::string fmt_ci(const MetricStats& stats, int decimals) {
  // ASCII "+-" keeps render_table's byte-width column alignment intact.
  if (stats.n < 2) return format_double(stats.mean, decimals);
  return format_double(stats.mean, decimals) + "+-" +
         format_double(stats.ci95, decimals);
}

}  // namespace

double t_critical_95(std::size_t df) {
  // Two-sided 95% critical values, df = 1..30.
  static const double table[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
      2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
      2.048,  2.045, 2.042};
  if (df == 0) return 0.0;
  if (df <= 30) return table[df - 1];
  return 1.96;
}

SeriesStats aggregate_series(
    const std::vector<const telemetry::SeriesTable*>& series) {
  SeriesStats out;
  if (series.empty()) return out;
  const telemetry::SeriesTable& first = *series.front();
  for (const telemetry::SeriesTable* table : series) {
    if (table == nullptr) {
      throw std::invalid_argument("campaign: null series in cell aggregate");
    }
    if (table->columns() != first.columns()) {
      throw std::invalid_argument(
          "campaign: mismatched series columns across a cell's seeds");
    }
    if (table->num_rows() != first.num_rows()) {
      throw std::invalid_argument(
          "campaign: mismatched series row counts across a cell's seeds (" +
          format("%zu", table->num_rows()) + " vs " +
          format("%zu", first.num_rows()) + ")");
    }
  }
  out.seeds = series.size();
  out.columns = first.columns();
  const std::size_t windows = first.num_rows();
  out.mean.assign(out.columns.size(), std::vector<double>(windows, 0.0));
  out.ci95.assign(out.columns.size(), std::vector<double>(windows, 0.0));
  for (std::size_t c = 0; c < out.columns.size(); ++c) {
    for (std::size_t w = 0; w < windows; ++w) {
      telemetry::RunningStats stats;
      for (const telemetry::SeriesTable* table : series) {
        stats.add(table->at(w, c));
      }
      out.mean[c][w] = stats.mean();
      out.ci95[c][w] =
          stats.count() > 1
              ? t_critical_95(stats.count() - 1) * stats.stddev() /
                    std::sqrt(static_cast<double>(stats.count()))
              : 0.0;
    }
  }
  return out;
}

Json SeriesStats::to_json() const {
  const auto matrix_json = [](const std::vector<std::vector<double>>& m) {
    Json rows = Json::array();
    for (const auto& column : m) {
      Json values = Json::array();
      for (const double v : column) values.push_back(v);
      rows.push_back(std::move(values));
    }
    return rows;
  };
  Json json = Json::object();
  json.set("schema", "greennfv.cellseries.v1");
  json.set("seeds", static_cast<double>(seeds));
  json.set("windows",
           static_cast<double>(mean.empty() ? 0 : mean.front().size()));
  Json names = Json::array();
  for (const auto& name : columns) names.push_back(name);
  json.set("columns", std::move(names));
  json.set("mean", matrix_json(mean));
  json.set("ci95", matrix_json(ci95));
  return json;
}

CampaignSummary aggregate(const std::vector<RunResult>& runs) {
  // Group by (cell, model) preserving first-seen order — runs arrive in
  // matrix order, so cells come out in expansion order and models in
  // roster order.
  std::map<std::pair<std::string, std::string>, CellAccumulator> groups;
  std::size_t next_order = 0;
  for (const RunResult& run : runs) {
    // Failed runs carry no models; skipping them here (and below in the
    // per-cell count) keeps the surviving seeds' statistics consistent.
    if (run.failed) continue;
    for (const auto& model : run.report.models) {
      const auto key =
          std::make_pair(run.cell_id, model.result.scheduler);
      auto it = groups.find(key);
      if (it == groups.end()) {
        CellAccumulator acc;
        acc.order = next_order++;
        acc.cell_id = run.cell_id;
        acc.scenario = run.scenario_name;
        acc.assignments = run.assignments;
        acc.model = model.result.scheduler;
        it = groups.emplace(key, std::move(acc)).first;
      }
      CellAccumulator& acc = it->second;
      acc.gbps.add(model.result.mean_gbps);
      acc.energy_j.add(model.result.mean_energy_j);
      acc.power_w.add(model.result.mean_power_w);
      acc.efficiency.add(model.result.mean_efficiency);
      acc.sla.add(model.result.sla_satisfaction);
      acc.drop.add(model.result.drop_fraction);
    }
  }

  // Consistency: every seed of a cell must have reported the same model
  // roster, else the per-model means average different sample sets.
  std::map<std::string, std::size_t> runs_per_cell;
  for (const RunResult& run : runs) {
    if (run.failed) continue;
    ++runs_per_cell[run.cell_id];
  }
  for (const auto& [key, acc] : groups) {
    if (acc.gbps.count() != runs_per_cell[acc.cell_id]) {
      throw std::invalid_argument(
          "campaign: cell '" + acc.cell_id + "' has model '" + acc.model +
          "' in only " + format("%zu", acc.gbps.count()) + " of " +
          format("%zu", runs_per_cell[acc.cell_id]) +
          " seed runs — inconsistent rosters across the cell");
    }
  }

  std::vector<const CellAccumulator*> ordered;
  ordered.reserve(groups.size());
  for (const auto& [key, acc] : groups) ordered.push_back(&acc);
  std::sort(ordered.begin(), ordered.end(),
            [](const CellAccumulator* a, const CellAccumulator* b) {
              return a->order < b->order;
            });

  CampaignSummary summary;
  for (const CellAccumulator* acc : ordered) {
    CellModelStats cell;
    cell.cell_id = acc->cell_id;
    cell.scenario = acc->scenario;
    cell.assignments = acc->assignments;
    cell.model = acc->model;
    cell.gbps = finalize(acc->gbps);
    cell.energy_j = finalize(acc->energy_j);
    cell.power_w = finalize(acc->power_w);
    cell.efficiency = finalize(acc->efficiency);
    cell.sla = finalize(acc->sla);
    cell.drop = finalize(acc->drop);
    summary.cells.push_back(std::move(cell));
  }

  // Pareto front over mean throughput (max) vs mean energy (min): a point
  // survives unless some other point is at least as good on both axes and
  // strictly better on one.
  for (std::size_t i = 0; i < summary.cells.size(); ++i) {
    const CellModelStats& p = summary.cells[i];
    bool dominated = false;
    for (std::size_t j = 0; j < summary.cells.size() && !dominated; ++j) {
      if (i == j) continue;
      const CellModelStats& q = summary.cells[j];
      dominated = q.gbps.mean >= p.gbps.mean &&
                  q.energy_j.mean <= p.energy_j.mean &&
                  (q.gbps.mean > p.gbps.mean ||
                   q.energy_j.mean < p.energy_j.mean);
    }
    summary.cells[i].on_pareto = !dominated;
    if (!dominated) summary.pareto.push_back(i);
  }
  std::sort(summary.pareto.begin(), summary.pareto.end(),
            [&summary](std::size_t a, std::size_t b) {
              if (summary.cells[a].gbps.mean != summary.cells[b].gbps.mean)
                return summary.cells[a].gbps.mean >
                       summary.cells[b].gbps.mean;
              return a < b;
            });
  return summary;
}

std::string CampaignSummary::table() const {
  std::vector<std::vector<std::string>> rows;
  for (const CellModelStats& cell : cells) {
    rows.push_back({cell.cell_id, cell.model,
                    format("%zu", cell.gbps.n), fmt_ci(cell.gbps, 2),
                    fmt_ci(cell.energy_j, 0), fmt_ci(cell.efficiency, 2),
                    format_double(cell.sla.mean * 100.0, 0) + "%",
                    format_double(cell.drop.mean * 100.0, 1) + "%",
                    cell.on_pareto ? "*" : ""});
  }
  return render_table({"cell", "model", "seeds", "Gbps", "Energy(J)",
                       "Efficiency", "SLA met", "drop", "pareto"},
                      rows);
}

Json CampaignSummary::to_json() const {
  const auto metric_json = [](const MetricStats& stats) {
    Json json = Json::object();
    json.set("n", static_cast<double>(stats.n));
    json.set("mean", stats.mean);
    json.set("stddev", stats.stddev);
    json.set("ci95", stats.ci95);
    return json;
  };
  Json cells_json = Json::array();
  for (const CellModelStats& cell : cells) {
    Json json = Json::object();
    json.set("cell_id", cell.cell_id);
    json.set("scenario", cell.scenario);
    Json assignments = Json::object();
    for (const auto& [key, value] : cell.assignments)
      assignments.set(key, value);
    json.set("assignments", std::move(assignments));
    json.set("model", cell.model);
    json.set("gbps", metric_json(cell.gbps));
    json.set("energy_j", metric_json(cell.energy_j));
    json.set("power_w", metric_json(cell.power_w));
    json.set("efficiency", metric_json(cell.efficiency));
    json.set("sla_satisfaction", metric_json(cell.sla));
    json.set("drop_fraction", metric_json(cell.drop));
    json.set("on_pareto", cell.on_pareto);
    cells_json.push_back(std::move(json));
  }
  Json pareto_json = Json::array();
  for (const std::size_t index : pareto)
    pareto_json.push_back(static_cast<double>(index));
  Json json = Json::object();
  json.set("cells", std::move(cells_json));
  json.set("pareto", std::move(pareto_json));
  return json;
}

}  // namespace greennfv::campaign
