#include "campaign/campaign_spec.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "scenario/presets.hpp"

namespace greennfv::campaign {

namespace {

constexpr const char* kSweepPrefix = "sweep.";

bool is_indexed_family(const std::string& key) {
  for (const std::string& prefix : scenario::ScenarioSpec::known_prefixes()) {
    if (key.size() <= prefix.size() ||
        key.compare(0, prefix.size(), prefix) != 0)
      continue;
    bool all_digits = true;
    for (std::size_t i = prefix.size(); i < key.size(); ++i)
      all_digits = all_digits && key[i] >= '0' && key[i] <= '9';
    if (all_digits) return true;
  }
  return false;
}

/// A key the per-run ScenarioSpec::apply understands ("scenario" /
/// "scenario_file" excluded: the campaign owns scenario selection).
bool is_scenario_override(const std::string& key) {
  if (key == "scenario" || key == "scenario_file") return false;
  const auto& keys = scenario::ScenarioSpec::known_keys();
  if (std::find(keys.begin(), keys.end(), key) != keys.end()) return true;
  return is_indexed_family(key);
}

std::vector<std::string> split_list(const std::string& csv,
                                    const std::string& what) {
  std::vector<std::string> values;
  for (const auto& token : split(csv, ',')) {
    const std::string value(trim(token));
    if (!value.empty()) values.push_back(value);
  }
  if (values.empty())
    throw std::invalid_argument("campaign: " + what + " lists no values");
  return values;
}

/// Advances a mixed-radix counter (last axis fastest); false on wrap.
bool advance(std::vector<std::size_t>& digits,
             const std::vector<SweepAxis>& axes) {
  for (std::size_t a = axes.size(); a-- > 0;) {
    if (++digits[a] < axes[a].values.size()) return true;
    digits[a] = 0;
  }
  return false;
}

std::uint64_t parse_seed(const std::string& text) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("campaign: seed is not an integer: " + text);
  }
}

}  // namespace

std::string sanitize_token(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
        c == '-') {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

Config config_from_lines(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      config.set(std::string(trimmed), "1");
    } else {
      config.set(std::string(trim(trimmed.substr(0, eq))),
                 std::string(trim(trimmed.substr(eq + 1))));
    }
  }
  return config;
}

void CampaignSpec::apply(const Config& config) {
  for (const auto& [key, value] : config.entries()) {
    if (key == "campaign" || key == "campaign_file") continue;  // CLI-level
    if (key == "name") {
      name = value;
    } else if (key == "scenario") {
      scenarios = {value};
    } else if (key == "scenarios") {
      scenarios = split_list(value, "scenarios=");
    } else if (key == "models") {
      models = value;
    } else if (key == "seeds") {
      seeds.clear();
      for (const auto& token : split_list(value, "seeds="))
        seeds.push_back(parse_seed(token));
    } else if (key == "auto_seeds") {
      auto_seeds = static_cast<int>(config.get_int("auto_seeds", auto_seeds));
    } else if (key.rfind(kSweepPrefix, 0) == 0) {
      const std::string axis_key = key.substr(std::strlen(kSweepPrefix));
      if (!is_scenario_override(axis_key)) {
        throw std::invalid_argument(
            "campaign: sweep axis '" + key +
            "' does not name a scenario key (help=1 lists them)");
      }
      SweepAxis axis{axis_key, split_list(value, key + "=")};
      auto existing = std::find_if(
          axes.begin(), axes.end(),
          [&axis_key](const SweepAxis& a) { return a.key == axis_key; });
      if (existing != axes.end()) {
        *existing = std::move(axis);
      } else {
        axes.push_back(std::move(axis));
      }
    } else if (is_scenario_override(key)) {
      overrides.set(key, value);
    } else {
      throw std::invalid_argument(
          "campaign: unknown key '" + key +
          "' (campaign keys, sweep.<scenario-key>=, or scenario"
          " overrides; pass help=1 to list them)");
    }
  }
  // Key order, not arrival order, fixes the matrix layout.
  std::sort(axes.begin(), axes.end(),
            [](const SweepAxis& a, const SweepAxis& b) {
              return a.key < b.key;
            });
}

std::vector<std::uint64_t> CampaignSpec::seeds_for(
    std::uint64_t base_seed) const {
  if (!seeds.empty()) return seeds;
  std::vector<std::uint64_t> derived;
  derived.reserve(static_cast<std::size_t>(auto_seeds));
  derived.push_back(base_seed);  // seed 0 IS the single-run seed
  Rng rng(base_seed);
  for (int i = 1; i < auto_seeds; ++i) derived.push_back(rng.next_u64());
  return derived;
}

std::vector<RunSpec> CampaignSpec::expand() const {
  validate();

  // The scenario axis: explicit base spec, or each named preset.
  std::vector<scenario::ScenarioSpec> bases;
  if (base.has_value()) {
    bases.push_back(*base);
  } else {
    for (const std::string& preset_name : scenarios)
      bases.push_back(scenario::preset(preset_name));
  }

  std::vector<RunSpec> matrix;
  for (const scenario::ScenarioSpec& base_spec : bases) {
    // Mixed-radix counter over the sweep axes (first axis outermost).
    std::vector<std::size_t> digits(axes.size(), 0);
    while (true) {
      Config cell_config = overrides;
      std::vector<std::pair<std::string, std::string>> assignments;
      for (std::size_t a = 0; a < axes.size(); ++a) {
        cell_config.set(axes[a].key, axes[a].values[digits[a]]);
        assignments.emplace_back(axes[a].key, axes[a].values[digits[a]]);
      }

      scenario::ScenarioSpec cell = base_spec;
      cell.apply(cell_config);
      cell.validate();

      std::string cell_id = sanitize_token(base_spec.name);
      for (const auto& [key, value] : assignments)
        cell_id += "__" + sanitize_token(key) + "-" + sanitize_token(value);

      for (const std::uint64_t seed : seeds_for(cell.seed)) {
        RunSpec run;
        run.index = matrix.size();
        run.cell_id = cell_id;
        run.run_id =
            cell_id + "__s" +
            format("%llu", static_cast<unsigned long long>(seed));
        run.scenario_name = base_spec.name;
        run.assignments = assignments;
        run.seed = seed;
        run.scenario = cell;
        run.scenario.seed = seed;
        matrix.push_back(std::move(run));
      }

      if (!advance(digits, axes)) break;
    }
  }

  // Unique ids are what keep parallel artifact writes and aggregation
  // honest: duplicate seeds/axis values (or sanitize collisions like
  // "a b" vs "a_b") must fail here, not race on one file.
  std::set<std::string> ids;
  for (const RunSpec& run : matrix) {
    if (!ids.insert(run.run_id).second) {
      throw std::invalid_argument(
          "campaign: duplicate run id '" + run.run_id +
          "' (repeated seed or axis value, or two values that sanitize"
          " to the same token)");
    }
  }
  return matrix;
}

std::string CampaignSpec::to_text() const {
  std::ostringstream out;
  out << "name=" << name << "\n";
  if (!base.has_value()) {
    out << "scenarios=";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      if (i) out << ",";
      out << scenarios[i];
    }
    out << "\n";
  }
  if (!models.empty()) out << "models=" << models << "\n";
  if (!seeds.empty()) {
    out << "seeds=";
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      if (i) out << ",";
      out << seeds[i];
    }
    out << "\n";
  } else {
    out << "auto_seeds=" << auto_seeds << "\n";
  }
  for (const SweepAxis& axis : axes) {
    out << kSweepPrefix << axis.key << "=";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i) out << ",";
      out << axis.values[i];
    }
    out << "\n";
  }
  for (const auto& [key, value] : overrides.entries())
    out << key << "=" << value << "\n";
  return out.str();
}

void CampaignSpec::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("campaign: cannot write " + path);
  out << "# GreenNFV campaign file (one key=value per line; '#' to end of"
         " line\n# is a comment; values may contain commas)\n";
  out << to_text();
  if (!out) throw std::runtime_error("campaign: failed writing " + path);
}

CampaignSpec CampaignSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("campaign: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  CampaignSpec spec;
  spec.apply(config_from_lines(buffer.str()));
  spec.validate();
  return spec;
}

void CampaignSpec::validate() const {
  if (sanitize_token(name).empty())
    throw std::invalid_argument(
        "campaign: name must contain something filesystem-safe");
  if (!base.has_value() && scenarios.empty())
    throw std::invalid_argument("campaign: no scenarios to sweep");
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty())
      throw std::invalid_argument("campaign: sweep axis '" + axis.key +
                                  "' has no values");
    const auto duplicates =
        std::count_if(axes.begin(), axes.end(), [&axis](const SweepAxis& a) {
          return a.key == axis.key;
        });
    if (duplicates != 1)
      throw std::invalid_argument("campaign: duplicate sweep axis '" +
                                  axis.key + "'");
  }
  if (seeds.empty() && auto_seeds < 1)
    throw std::invalid_argument("campaign: auto_seeds must be >= 1");
}

const std::vector<std::string>& CampaignSpec::known_keys() {
  static const std::vector<std::string> keys = {
      "campaign", "campaign_file", "name",  "scenario",
      "scenarios", "models",       "seeds", "auto_seeds",
  };
  return keys;
}

}  // namespace greennfv::campaign
