#include "campaign/presets.hpp"

#include <stdexcept>

#include "common/string_util.hpp"

namespace greennfv::campaign {

namespace {

CampaignSpec fig9() {
  CampaignSpec spec;
  spec.name = "fig9";
  spec.description =
      "Fig. 9 model comparison on paper-default: full seven-model roster,"
      " three seeds, CI per model";
  spec.scenarios = {"paper-default"};
  spec.auto_seeds = 3;
  return spec;
}

CampaignSpec fig11_rates() {
  CampaignSpec spec;
  spec.name = "fig11-rates";
  spec.description =
      "Fig. 11-style energy frontier: baseline vs GreenNFV(MinE) across"
      " offered rates 6-18 Gbps under the MinE SLA";
  spec.scenarios = {"paper-default"};
  spec.models = "baseline,greennfv-mine";
  spec.axes = {{"offered_gbps", {"6", "9", "12", "15", "18"}}};
  spec.overrides.set("sla", "mine");
  return spec;
}

CampaignSpec ablation() {
  CampaignSpec spec;
  spec.name = "ablation";
  spec.description =
      "Design-knob grid: prioritized vs uniform replay x gated vs shaped"
      " rewards, evaluated on GreenNFV(EE)";
  spec.scenarios = {"paper-default"};
  spec.models = "greennfv-ee";
  spec.axes = {{"prioritized", {"1", "0"}}, {"shaped_reward", {"0", "1"}}};
  return spec;
}

CampaignSpec placement_sweep() {
  CampaignSpec spec;
  spec.name = "placement-sweep";
  spec.description =
      "Fleet-size x placement-policy grid over the heterogeneous cluster:"
      " where does least-loaded stop paying vs bin-packing?";
  spec.scenarios = {"heterogeneous-cluster"};
  // Reactive models keep a 3x3 grid tractable; the placement question is
  // about idle-node power and balance, not about the learned policies.
  spec.models = "baseline,ee-pstate";
  spec.axes = {
      {"nodes", {"2", "3", "4"}},
      {"placement",
       {"first-fit-decreasing", "least-loaded", "energy-bestfit"}}};
  return spec;
}

CampaignSpec sla_frontier() {
  CampaignSpec spec;
  spec.name = "sla-frontier";
  spec.description =
      "SLA-tightness frontier: throughput_floor x energy_budget grid under"
      " both constrained SLAs — Fig. 10 as a surface, Pareto front from"
      " the aggregator";
  spec.scenarios = {"paper-default"};
  spec.models = "heuristics,ee-pstate";
  // The mine cells trace the throughput floor, the maxt cells the energy
  // budget; the cross-cell Pareto front reads the whole frontier at once.
  spec.axes = {{"sla", {"mine", "maxt"}},
               {"throughput_floor", {"6", "7.5", "9"}},
               {"energy_budget", {"1200", "1800", "2400"}}};
  return spec;
}

CampaignSpec path_frontier() {
  CampaignSpec spec;
  spec.name = "path-frontier";
  spec.description =
      "Topology x placement x latency-SLA grid over the dynamic fleet:"
      " where does topology-aware placement beat network-blind bestfit?";
  spec.scenarios = {"fleet-smoke"};
  // Reactive models keep the 4x2x3 grid tractable; the question is about
  // routing and link contention, not the learned schedulers.
  spec.models = "baseline";
  spec.overrides.set("topology.enabled", "1");
  // Tight fabric caps so paths actually contend: each chain offers ~4
  // Gbps, so an 8 Gbps edge link saturates at two chains per host.
  spec.overrides.set("topology.link_gbps", "8");
  spec.overrides.set("topology.core_gbps", "16");
  spec.axes = {
      {"topology.preset",
       {"single-rack", "leaf-spine", "fat-tree", "edge-core"}},
      {"fleet.policy", {"energy-bestfit", "topology-aware-bestfit"}},
      {"sla.latency", {"20", "40", "80"}}};
  return spec;
}

CampaignSpec resilience_frontier() {
  CampaignSpec spec;
  spec.name = "resilience-frontier";
  spec.description =
      "Fault-rate x placement-policy x latency-SLA grid over the dynamic"
      " fleet with a contended fabric: how much SLA each policy buys back"
      " under crashes and link failures";
  spec.scenarios = {"fault-smoke"};
  // One reactive model: the question is recovery placement under
  // pressure, not the learned schedulers.
  spec.models = "baseline";
  spec.overrides.set("topology.enabled", "1");
  spec.overrides.set("topology.preset", "leaf-spine");
  spec.overrides.set("topology.link_gbps", "8");
  spec.overrides.set("topology.core_gbps", "16");
  spec.overrides.set("fault.link_fail_rate", "0.15");
  spec.axes = {
      {"fault.node_crash_rate", {"0.1", "0.3"}},
      {"fleet.policy", {"energy-bestfit", "topology-aware-bestfit"}},
      {"sla.latency", {"20", "80"}}};
  return spec;
}

CampaignSpec ci_campaign_smoke() {
  CampaignSpec spec;
  spec.name = "ci-campaign-smoke";
  spec.description =
      "Gate matrix: 2 presets x 2 seeds, untrained models, tiny windows —"
      " exercises expansion, parallel execution, artifacts, aggregation";
  spec.scenarios = {"ci-smoke", "flash-crowd"};
  spec.models = "baseline,ee-pstate";
  spec.seeds = {1, 2};
  spec.overrides.set("eval_windows", "3");
  spec.overrides.set("sub_windows", "2");
  spec.overrides.set("window_s", "2");
  return spec;
}

const std::vector<CampaignSpec>& registry() {
  static const std::vector<CampaignSpec> presets = {
      fig9(),            fig11_rates(),  ablation(),
      placement_sweep(), sla_frontier(), path_frontier(),
      resilience_frontier(), ci_campaign_smoke()};
  return presets;
}

}  // namespace

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  for (const auto& spec : registry()) names.push_back(spec.name);
  return names;
}

CampaignSpec preset(const std::string& name) {
  for (const auto& spec : registry())
    if (spec.name == name) return spec;
  std::string known;
  for (const auto& spec : registry()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("campaign: unknown preset '" + name +
                              "' (known: " + known + ")");
}

std::string preset_table() {
  std::string table;
  for (const auto& spec : registry())
    table += format("  %-22s %s\n", spec.name.c_str(),
                    spec.description.c_str());
  return table;
}

CampaignSpec resolve(const Config& config,
                     const std::string& default_campaign) {
  CampaignSpec spec;
  if (const auto file = config.get("campaign_file")) {
    if (config.has("campaign"))
      throw std::invalid_argument(
          "campaign: pass campaign= or campaign_file=, not both");
    spec = CampaignSpec::load(*file);
  } else {
    spec = preset(config.get_string("campaign", default_campaign));
  }
  spec.apply(config);
  spec.validate();
  return spec;
}

}  // namespace greennfv::campaign
