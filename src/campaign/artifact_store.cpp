#include "campaign/artifact_store.hpp"

#include <exception>
#include <utility>

#include "common/fs_util.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"

namespace greennfv::campaign {

namespace {

Json eval_result_to_json(const core::EvalResult& result) {
  Json json = Json::object();
  json.set("name", result.scheduler);
  json.set("mean_gbps", result.mean_gbps);
  json.set("mean_energy_j", result.mean_energy_j);
  json.set("mean_power_w", result.mean_power_w);
  json.set("mean_efficiency", result.mean_efficiency);
  json.set("sla_satisfaction", result.sla_satisfaction);
  json.set("drop_fraction", result.drop_fraction);
  json.set("windows", result.windows);
  return json;
}

core::EvalResult eval_result_from_json(const Json& json) {
  core::EvalResult result;
  result.scheduler = json.at("name").as_string();
  result.mean_gbps = json.at("mean_gbps").as_double();
  result.mean_energy_j = json.at("mean_energy_j").as_double();
  result.mean_power_w = json.at("mean_power_w").as_double();
  result.mean_efficiency = json.at("mean_efficiency").as_double();
  result.sla_satisfaction = json.at("sla_satisfaction").as_double();
  result.drop_fraction = json.at("drop_fraction").as_double();
  result.windows = static_cast<int>(json.at("windows").as_double());
  return result;
}

}  // namespace

ArtifactStore::ArtifactStore(std::string root,
                             const std::string& campaign_name)
    : dir_(std::move(root)) {
  // Appended piecewise ("s" + std::string&& trips GCC-12's -Wrestrict
  // false positive).
  dir_ += '/';
  dir_ += sanitize_token(campaign_name);
}

std::string ArtifactStore::run_path(const std::string& run_id) const {
  return dir_ + "/runs/" + run_id + ".json";
}

std::string ArtifactStore::trace_path(const std::string& run_id) const {
  return dir_ + "/runs/" + run_id + ".trace.json";
}

std::string ArtifactStore::series_csv_path(const std::string& run_id) const {
  return dir_ + "/runs/" + run_id + ".series.csv";
}

std::string ArtifactStore::series_json_path(const std::string& run_id) const {
  return dir_ + "/runs/" + run_id + ".series.json";
}

std::string ArtifactStore::manifest_path() const {
  return dir_ + "/manifest.json";
}

Json ArtifactStore::run_to_json(const RunResult& result) {
  Json json = Json::object();
  json.set("run_id", result.run_id);
  json.set("cell_id", result.cell_id);
  json.set("scenario", result.scenario_name);
  Json assignments = Json::object();
  for (const auto& [key, value] : result.assignments)
    assignments.set(key, value);
  json.set("assignments", std::move(assignments));
  // Seeds are 64-bit; JSON numbers are doubles — keep the exact value as
  // a decimal string.
  json.set("seed",
           format("%llu", static_cast<unsigned long long>(result.seed)));
  json.set("scenario_spec", result.scenario_text);
  Json models = Json::array();
  for (const auto& model : result.report.models)
    models.push_back(eval_result_to_json(model.result));
  json.set("models", std::move(models));
  json.set("telemetry", result.report.series.to_json());
  // Written last-in-order; together with the atomic rename this marks a
  // fully-serialized artifact.
  json.set("complete", true);
  return json;
}

RunResult ArtifactStore::run_from_json(const Json& json) {
  RunResult result;
  result.run_id = json.at("run_id").as_string();
  result.cell_id = json.at("cell_id").as_string();
  result.scenario_name = json.at("scenario").as_string();
  for (const auto& [key, value] : json.at("assignments").members())
    result.assignments.emplace_back(key, value.as_string());
  result.seed = std::stoull(json.at("seed").as_string());
  result.scenario_text = json.at("scenario_spec").as_string();
  result.report.scenario = result.scenario_name;
  for (const Json& model : json.at("models").elements()) {
    scenario::ModelReport report;
    report.result = eval_result_from_json(model);
    report.prefix = scenario::series_prefix(report.result.scheduler);
    result.report.models.push_back(std::move(report));
  }
  result.report.series =
      telemetry::Recorder::from_json(json.at("telemetry"));
  result.from_cache = true;
  return result;
}

void ArtifactStore::save_run(const RunResult& result) const {
  write_file_atomic(run_path(result.run_id),
                    run_to_json(result).dump(1) + "\n");
}

std::optional<RunResult> ArtifactStore::load_run(const RunSpec& spec) const {
  const std::string path = run_path(spec.run_id);
  if (!file_exists(path)) return std::nullopt;
  try {
    const Json json = Json::parse(read_file(path));
    if (!json.has("complete") || !json.at("complete").as_bool())
      return std::nullopt;
    RunResult result = run_from_json(json);
    if (result.run_id != spec.run_id) return std::nullopt;
    // run_ids omit base overrides (episodes=, eval_windows=...), so the
    // full resolved-scenario echo is the real coordinate check: an
    // artifact computed under a different configuration must be re-run,
    // not silently reported as this one.
    if (result.scenario_text != spec.scenario.to_text())
      return std::nullopt;
    result.index = spec.index;
    return result;
  } catch (const std::exception& e) {
    // Unreadable/corrupt artifact (interrupted write, hand edit): treat
    // as absent and re-run — loudly, so a resumed campaign says why a
    // run that looked done is executing again.
    GNFV_LOG_WARN("campaign")
        << "discarding corrupt run artifact " << path << ": " << e.what();
    return std::nullopt;
  }
}

void ArtifactStore::save_trace(const std::string& run_id,
                               const Json& trace) const {
  write_file_atomic(trace_path(run_id), trace.dump(1) + "\n");
}

void ArtifactStore::save_series(const std::string& run_id,
                                const telemetry::SeriesTable& series) const {
  series.write_csv(series_csv_path(run_id));
  series.write_json(series_json_path(run_id));
}

void ArtifactStore::save_manifest(const Json& manifest) const {
  write_file_atomic(manifest_path(), manifest.dump(1) + "\n");
}

}  // namespace greennfv::campaign
