#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/aggregator.hpp"
#include "campaign/artifact_store.hpp"
#include "campaign/campaign_spec.hpp"
#include "scenario/experiment.hpp"

/// \file runner.hpp
/// Executes a campaign's run matrix: each matrix entry is an independent
/// (scenario, roster, seed) evaluation through ExperimentRunner, so the
/// work-stealing pool can run them in any interleaving — results land in
/// index-addressed slots and every run derives its randomness from its own
/// RunSpec seed, which is what makes `--jobs N` bit-identical to
/// `--jobs 1`. With an ArtifactStore attached, each finished run is
/// persisted immediately and a resumed campaign loads completed runs
/// instead of re-executing them.

namespace greennfv::campaign {

/// Wall-clock accounting for one matrix cell, filled only for runs
/// executed this invocation. Timing lives in the in-memory report — never
/// in run artifacts or the manifest — so campaign outputs stay
/// byte-identical whether or not anyone looks at the clock.
struct RunTiming {
  std::size_t index = 0;
  std::string run_id;
  std::string cell_id;
  bool executed = false;
  int worker = -1;           ///< pool worker id (-1: inline, jobs<=1)
  double queue_wait_s = 0.0;  ///< dispatch-of-parallel-pass to run start
  double wall_s = 0.0;        ///< execute() + artifact write
};

struct CampaignReport {
  /// Matrix order (RunSpec::index), independent of execution order.
  std::vector<RunResult> runs;
  CampaignSummary summary;
  int executed = 0;  ///< runs evaluated this invocation
  int resumed = 0;   ///< runs loaded from artifacts
  int failed = 0;    ///< runs whose execution threw (see RunResult::failed)
  /// Matrix order, parallel to `runs`.
  std::vector<RunTiming> timings;
};

/// Aligned per-cell wall-clock table (run, worker, queue wait, wall) plus
/// a critical-path footer — the `--timing` output of run_campaign.
[[nodiscard]] std::string timing_table(const CampaignReport& report);

class CampaignRunner {
 public:
  /// Builds one run's scheduler roster. The default provider applies the
  /// campaign's `models` filter to scenario::default_roster (factories
  /// are lazy — unselected trained models never train).
  using RosterProvider =
      std::function<std::vector<scenario::SchedulerFactory>(
          const scenario::ScenarioSpec&)>;

  /// Expands the matrix up front (a bad cell throws here, before anything
  /// runs). `store` may be null: no artifacts, no resume.
  CampaignRunner(CampaignSpec spec, const ArtifactStore* store = nullptr);

  /// Replaces the roster builder — how a bench injects a pre-trained
  /// policy (Fig. 11) while still executing through the campaign path.
  void set_roster_provider(RosterProvider provider);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<RunSpec>& matrix() const {
    return matrix_;
  }

  /// Executes every run not already completed (when `resume` and a store
  /// is attached) across `jobs` workers, persists fresh runs, aggregates,
  /// and — with a store — writes the campaign manifest.
  CampaignReport run(int jobs, bool resume = true);

  /// One run, independent of any pool — the unit the matrix parallelizes.
  [[nodiscard]] static RunResult execute(const RunSpec& run,
                                         const RosterProvider& roster);

  /// The manifest document for a finished report (exposed for tests).
  [[nodiscard]] Json manifest(const CampaignReport& report) const;

 private:
  CampaignSpec spec_;
  const ArtifactStore* store_;
  std::vector<RunSpec> matrix_;
  RosterProvider roster_;
};

}  // namespace greennfv::campaign
