#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/json.hpp"

/// \file series.hpp
/// Columnar per-window time-series table — the longitudinal half of the
/// flight recorder. Where trace.hpp answers "how long" and metrics.hpp
/// "how many", a SeriesTable answers "how did the run evolve": one row
/// per accounting window over a fixed column schema, stored row-major in
/// arena-backed flat storage so steady-state sampling allocates nothing.
///
/// Like the tracer and the counter registry, sampling is behind a global
/// switch (off by default) and may never perturb simulation output:
/// fleet timelines and campaign artifacts are byte-identical with
/// sampling on or off (pinned by tests/telemetry). Export is exact —
/// CSV cells and JSON numbers are "%.17g", so every finite double
/// round-trips bit for bit through to_csv() -> from_csv() and
/// to_json() -> from_json().

namespace greennfv::telemetry {

namespace series {

/// Global sampling switch, mirroring metrics::set_enabled. Off by
/// default; flipped by `series=1` CLI knobs and the observability tests.
/// Deliberately NOT a scenario key: ScenarioSpec::to_text() is the
/// campaign artifact's resume coordinate, so an observability toggle
/// must stay out of it.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

}  // namespace series

/// A fixed-schema table of doubles. Columns are named at construction
/// and never change; rows append one at a time. reserve_rows() sizes the
/// arena-backed storage up front, after which append_row is
/// allocation-free until the reservation is exceeded.
class SeriesTable {
 public:
  explicit SeriesTable(std::vector<std::string> columns);

  SeriesTable(const SeriesTable&) = delete;
  SeriesTable& operator=(const SeriesTable&) = delete;
  SeriesTable(SeriesTable&&) noexcept = default;
  SeriesTable& operator=(SeriesTable&&) noexcept = default;

  /// Pre-allocates storage for `rows` rows.
  void reserve_rows(std::size_t rows);

  /// Appends one row; `n` must equal num_columns() (throws otherwise).
  void append_row(const double* values, std::size_t n);
  void append_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t num_rows() const { return rows_; }
  [[nodiscard]] std::size_t num_columns() const { return columns_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  /// Index of `name`; throws std::invalid_argument when absent.
  [[nodiscard]] std::size_t column_index(const std::string& name) const;
  [[nodiscard]] bool has_column(const std::string& name) const;
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// Header row plus one "%.17g" CSV line per row — exact text, suitable
  /// for golden pinning.
  [[nodiscard]] std::string to_csv() const;
  void write_csv(const std::string& path) const;

  /// {"schema": "greennfv.series.v1", "rows": N, "columns": [...],
  ///  "data": [[column 0 values], [column 1 values], ...]}.
  [[nodiscard]] Json to_json() const;
  void write_json(const std::string& path) const;

  /// Inverses of the exports. Throw std::invalid_argument on shape
  /// mismatches (wrong schema marker, ragged columns, unparseable cell).
  [[nodiscard]] static SeriesTable from_json(const Json& json);
  [[nodiscard]] static SeriesTable from_csv(const std::string& text);

 private:
  void grow(std::size_t min_rows);

  std::vector<std::string> columns_;
  std::unique_ptr<Arena> arena_;
  double* data_ = nullptr;  ///< row-major, capacity_ * num_columns()
  std::size_t rows_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace greennfv::telemetry
