#include "telemetry/series.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/fs_util.hpp"
#include "common/string_util.hpp"

namespace greennfv::telemetry {

namespace series {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

}  // namespace series

namespace {

constexpr const char* kSchema = "greennfv.series.v1";

/// "%.17g" — shortest text that round-trips every finite double exactly;
/// the same convention json.hpp and timeline_io use.
std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

double parse_double(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("SeriesTable: empty CSV cell");
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    throw std::invalid_argument("SeriesTable: unparseable CSV cell '" + text +
                                "'");
  }
  return value;
}

}  // namespace

SeriesTable::SeriesTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("SeriesTable: needs at least one column");
  }
  for (const auto& name : columns_) {
    if (name.empty()) {
      throw std::invalid_argument("SeriesTable: empty column name");
    }
  }
}

void SeriesTable::reserve_rows(std::size_t rows) {
  if (rows > capacity_) grow(rows);
}

void SeriesTable::grow(std::size_t min_rows) {
  std::size_t next = capacity_ == 0 ? 64 : capacity_ * 2;
  if (next < min_rows) next = min_rows;
  if (!arena_) arena_ = std::make_unique<Arena>();
  const std::size_t width = num_columns();
  auto* fresh = static_cast<double*>(
      arena_->allocate(next * width * sizeof(double), alignof(double)));
  if (rows_ > 0) {
    std::memcpy(fresh, data_, rows_ * width * sizeof(double));
  }
  if (data_ != nullptr) {
    arena_->deallocate(data_, capacity_ * width * sizeof(double),
                       alignof(double));
  }
  data_ = fresh;
  capacity_ = next;
}

void SeriesTable::append_row(const double* values, std::size_t n) {
  if (n != num_columns()) {
    throw std::invalid_argument("SeriesTable: row width " + std::to_string(n) +
                                " != schema width " +
                                std::to_string(num_columns()));
  }
  if (rows_ == capacity_) grow(rows_ + 1);
  std::memcpy(data_ + rows_ * num_columns(), values, n * sizeof(double));
  ++rows_;
}

void SeriesTable::append_row(const std::vector<double>& values) {
  append_row(values.data(), values.size());
}

std::size_t SeriesTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  throw std::invalid_argument("SeriesTable: no column '" + name + "'");
}

bool SeriesTable::has_column(const std::string& name) const {
  for (const auto& column : columns_) {
    if (column == name) return true;
  }
  return false;
}

double SeriesTable::at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= num_columns()) {
    throw std::invalid_argument("SeriesTable: at(" + std::to_string(row) +
                                ", " + std::to_string(col) +
                                ") out of range");
  }
  return data_[row * num_columns() + col];
}

std::string SeriesTable::to_csv() const {
  std::string out;
  out.reserve((rows_ + 1) * num_columns() * 8);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ',';
    out += columns_[c];
  }
  out += '\n';
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_ + r * num_columns();
    for (std::size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) out += ',';
      out += format_double(row[c]);
    }
    out += '\n';
  }
  return out;
}

void SeriesTable::write_csv(const std::string& path) const {
  write_file_atomic(path, to_csv());
}

Json SeriesTable::to_json() const {
  Json json = Json::object();
  json.set("schema", kSchema);
  json.set("rows", static_cast<double>(rows_));
  Json names = Json::array();
  for (const auto& name : columns_) names.push_back(name);
  json.set("columns", std::move(names));
  Json data = Json::array();
  for (std::size_t c = 0; c < num_columns(); ++c) {
    Json column = Json::array();
    for (std::size_t r = 0; r < rows_; ++r) {
      column.push_back(data_[r * num_columns() + c]);
    }
    data.push_back(std::move(column));
  }
  json.set("data", std::move(data));
  return json;
}

void SeriesTable::write_json(const std::string& path) const {
  write_file_atomic(path, to_json().dump(1) + "\n");
}

SeriesTable SeriesTable::from_json(const Json& json) {
  if (!json.is_object() || !json.has("schema") ||
      json.at("schema").as_string() != kSchema) {
    throw std::invalid_argument("SeriesTable: not a " + std::string(kSchema) +
                                " document");
  }
  std::vector<std::string> columns;
  for (const auto& name : json.at("columns").elements()) {
    columns.push_back(name.as_string());
  }
  SeriesTable table(std::move(columns));
  const auto rows = static_cast<std::size_t>(json.at("rows").as_double());
  const Json& data = json.at("data");
  if (data.size() != table.num_columns()) {
    throw std::invalid_argument(
        "SeriesTable: data has " + std::to_string(data.size()) +
        " columns, schema has " + std::to_string(table.num_columns()));
  }
  for (std::size_t c = 0; c < data.size(); ++c) {
    if (data.at(c).size() != rows) {
      throw std::invalid_argument("SeriesTable: ragged column " +
                                  std::to_string(c));
    }
  }
  table.reserve_rows(rows);
  std::vector<double> row(table.num_columns());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      row[c] = data.at(c).at(r).as_double();
    }
    table.append_row(row);
  }
  return table;
}

SeriesTable SeriesTable::from_csv(const std::string& text) {
  const auto lines = split(text, '\n');
  if (lines.empty() || lines[0].empty()) {
    throw std::invalid_argument("SeriesTable: CSV has no header");
  }
  SeriesTable table(split(lines[0], ','));
  std::vector<double> row(table.num_columns());
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // trailing newline
    const auto cells = split(lines[i], ',');
    if (cells.size() != table.num_columns()) {
      throw std::invalid_argument(
          "SeriesTable: CSV line " + std::to_string(i + 1) + " has " +
          std::to_string(cells.size()) + " cells, header has " +
          std::to_string(table.num_columns()));
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      row[c] = parse_double(cells[c]);
    }
    table.append_row(row);
  }
  return table;
}

}  // namespace greennfv::telemetry
