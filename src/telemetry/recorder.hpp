#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/timeseries.hpp"

/// \file recorder.hpp
/// Experiment recorder: a bag of named time series (throughput, energy,
/// knob trajectories...) with CSV and JSON export. Every training figure
/// in the paper (Figs 6-8, 10, 11) is a set of these series; campaign
/// artifacts persist the JSON form so sweeps stay machine-readable.

namespace greennfv::telemetry {

class Recorder {
 public:
  /// Appends a sample to the named series (creates it on first use).
  void record(const std::string& series, double t, double value);

  [[nodiscard]] bool has(const std::string& series) const;
  [[nodiscard]] const TimeSeries& series(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] std::size_t num_series() const { return series_.size(); }

  /// Writes all series to one wide CSV: column 0 is the union of sample
  /// times, remaining columns hold each series interpolated at those times.
  void to_csv(const std::string& path) const;

  /// Renders a text summary table (name, count, min, mean, max, last) —
  /// what the bench binaries print under each figure.
  [[nodiscard]] std::string summary_table() const;

  /// Machine-readable export: every series as {"t": [...], "v": [...]}
  /// plus its summary stats ("count", "min", "mean", "max", "last").
  /// Sample values survive dump() -> parse() -> from_json() bit-for-bit.
  [[nodiscard]] Json to_json() const;

  /// Rebuilds a recorder from to_json() output (the summary block is
  /// ignored — it is derived data). Throws std::invalid_argument when the
  /// shape is wrong or "t"/"v" lengths disagree.
  [[nodiscard]] static Recorder from_json(const Json& json);

  void clear() { series_.clear(); }

 private:
  std::map<std::string, TimeSeries> series_;
};

}  // namespace greennfv::telemetry
