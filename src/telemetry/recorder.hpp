#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/timeseries.hpp"

/// \file recorder.hpp
/// Experiment recorder: a bag of named time series (throughput, energy,
/// knob trajectories...) with CSV export. Every training figure in the
/// paper (Figs 6-8, 10, 11) is a set of these series.

namespace greennfv::telemetry {

class Recorder {
 public:
  /// Appends a sample to the named series (creates it on first use).
  void record(const std::string& series, double t, double value);

  [[nodiscard]] bool has(const std::string& series) const;
  [[nodiscard]] const TimeSeries& series(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] std::size_t num_series() const { return series_.size(); }

  /// Writes all series to one wide CSV: column 0 is the union of sample
  /// times, remaining columns hold each series interpolated at those times.
  void to_csv(const std::string& path) const;

  /// Renders a text summary table (name, count, min, mean, max, last) —
  /// what the bench binaries print under each figure.
  [[nodiscard]] std::string summary_table() const;

  void clear() { series_.clear(); }

 private:
  std::map<std::string, TimeSeries> series_;
};

}  // namespace greennfv::telemetry
