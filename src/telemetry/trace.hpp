#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "telemetry/metrics.hpp"

/// \file trace.hpp
/// Scoped-span flight recorder. Each thread owns a fixed-capacity ring of
/// `TraceEvent`s (storage carved from a `common/arena` chunk once, at
/// first use — steady-state recording allocates nothing; overflow wraps,
/// overwriting the oldest spans and counting the loss). A `Span` records
/// one wall-clock interval around a scope; when tracing is disabled the
/// constructor is a relaxed flag load and a branch, and with
/// `GREENNFV_TRACING=OFF` (CMake) the `GNFV_TRACE_SPAN` macros compile to
/// nothing at all.
///
/// The recorder never touches simulation state: span names are interned
/// `const char*`s, timestamps come from the steady clock, and nothing
/// recorded here feeds back into any model — which is why timelines and
/// campaign artifacts are byte-identical with tracing on vs off (pinned
/// by tests/telemetry/trace_determinism_test.cpp).
///
/// Export is Chrome/Perfetto Trace Event JSON ("X" complete events, plus
/// one "C" counter sample per registered metric when the metrics registry
/// is enabled): load the file in https://ui.perfetto.dev or
/// chrome://tracing.

#if !defined(GREENNFV_TRACING_ENABLED)
#define GREENNFV_TRACING_ENABLED 1
#endif

namespace greennfv::telemetry::trace {

/// One completed span. `name` is interned (or a string literal) — the
/// event does not own it.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t ts_ns = 0;   ///< begin, relative to the trace epoch
  std::int64_t dur_ns = 0;  ///< duration
  std::uint64_t arg = 0;    ///< free-form payload (window, run index...)
  bool has_arg = false;
};

/// Global recording switch (default off). Enabling mid-run is safe; the
/// epoch is pinned at first use so timestamps stay comparable.
[[nodiscard]] bool runtime_enabled();
void set_enabled(bool on);

/// True when the tracer was compiled in AND runtime-enabled.
[[nodiscard]] inline bool active() {
#if GREENNFV_TRACING_ENABLED
  return runtime_enabled();
#else
  return false;
#endif
}

/// Ring capacity (events) for buffers created after this call. Existing
/// thread buffers keep their size. Default 65536 events per thread.
void set_thread_capacity(std::size_t events);

/// Interns a dynamic span name; the returned pointer is stable for the
/// process lifetime. Use for per-run/per-model labels built at runtime —
/// hot paths should pass string literals instead.
[[nodiscard]] const char* intern(const std::string& name);

/// Drops every recorded event and dropped-count (buffers stay allocated).
void reset();

/// Events lost to ring wraparound, summed over all threads.
[[nodiscard]] std::uint64_t dropped();

/// Number of events currently held across all thread rings.
[[nodiscard]] std::size_t recorded();

/// Monotonic nanoseconds since the trace epoch.
[[nodiscard]] std::int64_t now_ns();

// --- scoped collection (per-campaign-run trace slices) ---------------------

/// A position in the calling thread's event stream. A campaign worker
/// marks before executing a run and extracts the slice after: the run
/// executes synchronously on one thread, so everything it recorded sits
/// between the two marks.
struct Mark {
  void* buffer = nullptr;
  std::uint64_t head = 0;
};

[[nodiscard]] Mark mark();

/// Copies the calling thread's events recorded since `m` (oldest first;
/// events lost to wraparound in between are simply absent).
[[nodiscard]] std::vector<TraceEvent> events_since(const Mark& m);

// --- export -----------------------------------------------------------------

/// Serializes explicit events as a Trace Event JSON document (one "X"
/// entry per event under the given tid).
[[nodiscard]] Json events_to_json(const std::vector<TraceEvent>& events,
                                  int tid = 0);

/// Full-process export: every thread's kept events as "X" entries (pid 1,
/// tid = thread registration order), one "C" counter sample per metric
/// when the metrics registry is enabled, and an `otherData` block with
/// the dropped-event count.
[[nodiscard]] Json to_json();

/// to_json() pretty-printed to `path` (atomic write).
void write_json(const std::string& path);

/// The RAII span. Construct through the GNFV_TRACE_SPAN macros; the
/// destructor records the event (and adds the duration to `timer`, when
/// one is attached and the metrics registry is enabled — phase-breakdown
/// accounting shares the clock reads with the trace).
class Span {
 public:
  explicit Span(const char* name, metrics::Counter* timer = nullptr)
      : name_(name), timer_(timer) {
    if (active() || (timer_ != nullptr && metrics::enabled()))
      start_ns_ = now_ns();
  }
  Span(const char* name, std::uint64_t arg,
       metrics::Counter* timer = nullptr)
      : Span(name, timer) {
    arg_ = arg;
    has_arg_ = true;
  }
  ~Span() {
    if (start_ns_ >= 0) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void finish();

  const char* name_;
  metrics::Counter* timer_;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
  std::int64_t start_ns_ = -1;  ///< -1 = inactive (nothing to record)
};

}  // namespace greennfv::telemetry::trace

#if GREENNFV_TRACING_ENABLED
#define GNFV_TRACE_CONCAT_INNER(a, b) a##b
#define GNFV_TRACE_CONCAT(a, b) GNFV_TRACE_CONCAT_INNER(a, b)
/// GNFV_TRACE_SPAN("layer/what"[, arg][, &timer_counter]): records a span
/// covering the rest of the enclosing scope. Sites whose timer counter
/// must keep accumulating under GREENNFV_TRACING=OFF declare an explicit
/// `Span` instead — this macro (and any timer passed to it) vanishes
/// entirely when the tracer is compiled out.
#define GNFV_TRACE_SPAN(...)                                  \
  ::greennfv::telemetry::trace::Span GNFV_TRACE_CONCAT(       \
      gnfv_trace_span_, __LINE__)(__VA_ARGS__)
#else
#define GNFV_TRACE_SPAN(...) ((void)0)
#endif
