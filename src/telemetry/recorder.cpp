#include "telemetry/recorder.hpp"

#include <algorithm>
#include <set>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"

namespace greennfv::telemetry {

void Recorder::record(const std::string& name, double t, double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(name)).first;
  }
  it->second.push(t, value);
}

bool Recorder::has(const std::string& name) const {
  return series_.count(name) != 0;
}

const TimeSeries& Recorder::series(const std::string& name) const {
  const auto it = series_.find(name);
  GNFV_REQUIRE(it != series_.end(), "Recorder: unknown series");
  return it->second;
}

std::vector<std::string> Recorder::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

void Recorder::to_csv(const std::string& path) const {
  GNFV_REQUIRE(!series_.empty(), "Recorder::to_csv: nothing recorded");
  // Union of all timestamps.
  std::set<double> times;
  for (const auto& [name, ts] : series_)
    times.insert(ts.times().begin(), ts.times().end());

  std::vector<std::string> header{"t"};
  for (const auto& [name, unused] : series_) header.push_back(name);

  CsvWriter csv(path, header);
  for (const double t : times) {
    std::vector<double> row{t};
    for (const auto& [name, ts] : series_) row.push_back(ts.interpolate(t));
    csv.append(row);
  }
  csv.flush();
}

std::string Recorder::summary_table() const {
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, ts] : series_) {
    if (ts.empty()) continue;
    rows.push_back({name, format("%zu", ts.size()), format_double(ts.min()),
                    format_double(ts.mean()), format_double(ts.max()),
                    format_double(ts.back())});
  }
  return render_table({"series", "n", "min", "mean", "max", "last"}, rows);
}

}  // namespace greennfv::telemetry
