#include "telemetry/recorder.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "common/csv.hpp"
#include "common/string_util.hpp"

namespace greennfv::telemetry {

void Recorder::record(const std::string& name, double t, double value) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(name)).first;
  }
  it->second.push(t, value);
}

bool Recorder::has(const std::string& name) const {
  return series_.count(name) != 0;
}

const TimeSeries& Recorder::series(const std::string& name) const {
  const auto it = series_.find(name);
  GNFV_REQUIRE(it != series_.end(), "Recorder: unknown series");
  return it->second;
}

std::vector<std::string> Recorder::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, unused] : series_) names.push_back(name);
  return names;
}

void Recorder::to_csv(const std::string& path) const {
  GNFV_REQUIRE(!series_.empty(), "Recorder::to_csv: nothing recorded");
  // Union of all timestamps.
  std::set<double> times;
  for (const auto& [name, ts] : series_)
    times.insert(ts.times().begin(), ts.times().end());

  std::vector<std::string> header{"t"};
  for (const auto& [name, unused] : series_) header.push_back(name);

  CsvWriter csv(path, header);
  for (const double t : times) {
    std::vector<double> row{t};
    for (const auto& [name, ts] : series_) row.push_back(ts.interpolate(t));
    csv.append(row);
  }
  csv.flush();
}

Json Recorder::to_json() const {
  Json series = Json::object();
  for (const auto& [name, ts] : series_) {
    Json entry = Json::object();
    Json t = Json::array();
    Json v = Json::array();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      t.push_back(ts.times()[i]);
      v.push_back(ts.values()[i]);
    }
    entry.set("t", std::move(t));
    entry.set("v", std::move(v));
    Json summary = Json::object();
    summary.set("count", static_cast<double>(ts.size()));
    if (!ts.empty()) {
      summary.set("min", ts.min());
      summary.set("mean", ts.mean());
      summary.set("max", ts.max());
      summary.set("last", ts.back());
    }
    entry.set("summary", std::move(summary));
    series.set(name, std::move(entry));
  }
  Json json = Json::object();
  json.set("series", std::move(series));
  return json;
}

Recorder Recorder::from_json(const Json& json) {
  Recorder recorder;
  for (const auto& [name, entry] : json.at("series").members()) {
    const Json& t = entry.at("t");
    const Json& v = entry.at("v");
    if (t.size() != v.size()) {
      throw std::invalid_argument("Recorder: series '" + name +
                                  "' has mismatched t/v lengths");
    }
    for (std::size_t i = 0; i < t.size(); ++i)
      recorder.record(name, t.at(i).as_double(), v.at(i).as_double());
  }
  return recorder;
}

std::string Recorder::summary_table() const {
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, ts] : series_) {
    if (ts.empty()) continue;
    rows.push_back({name, format("%zu", ts.size()), format_double(ts.min()),
                    format_double(ts.mean()), format_double(ts.max()),
                    format_double(ts.back())});
  }
  return render_table({"series", "n", "min", "mean", "max", "last"}, rows);
}

}  // namespace greennfv::telemetry
