#include "telemetry/metrics.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>

#include "common/string_util.hpp"

namespace greennfv::telemetry::metrics {

namespace detail {

/// One thread's counter shard. Only the owner thread writes values (plain
/// relaxed stores — no RMW); the snapshot thread reads them relaxed. The
/// deque never invalidates element references on growth, and growth /
/// iteration are serialized by `mutex`, so a concurrent snapshot observes
/// a consistent container.
struct ThreadSlots {
  std::mutex mutex;  ///< guards deque growth vs snapshot iteration
  std::deque<std::atomic<std::uint64_t>> values;
  std::atomic<std::size_t> published{0};  ///< values.size() fence-free

  void ensure(std::size_t id) {
    if (id < published.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(mutex);
    while (values.size() <= id) values.emplace_back(0);
    published.store(values.size(), std::memory_order_release);
  }
};

}  // namespace detail

namespace {

std::atomic<bool> g_enabled{false};

struct Registry {
  std::mutex mutex;
  std::vector<std::string> counter_names;
  std::deque<Counter> counters;  ///< stable addresses, parallel to names
  std::vector<std::string> gauge_names;
  std::deque<Gauge> gauges;
  /// Every thread's shard, kept alive past thread exit so a final
  /// snapshot still sees short-lived workers' counts.
  std::vector<std::shared_ptr<detail::ThreadSlots>> shards;
};

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: threads
  return *instance;                            // may outlive main's exit
}

}  // namespace

namespace detail {

ThreadSlots& slots_for_this_thread() {
  thread_local std::shared_ptr<ThreadSlots> slots = [] {
    auto created = std::make_shared<ThreadSlots>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.shards.push_back(created);
    return created;
  }();
  return *slots;
}

}  // namespace detail

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void Counter::add(std::uint64_t n) {
  if (!enabled()) return;
  detail::ThreadSlots& slots = detail::slots_for_this_thread();
  slots.ensure(id_);
  std::atomic<std::uint64_t>& slot = slots.values[id_];
  // Owner-thread-only write: load+store beats a lock-prefixed fetch_add.
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  Registry& reg = registry();
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& shard : reg.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    if (id_ < shard->values.size())
      total += shard->values[id_].load(std::memory_order_relaxed);
  }
  return total;
}

Counter& counter(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (std::size_t i = 0; i < reg.counter_names.size(); ++i)
    if (reg.counter_names[i] == name) return reg.counters[i];
  reg.counter_names.push_back(name);
  reg.counters.push_back(Counter(reg.counters.size()));
  return reg.counters.back();
}

Gauge& gauge(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (std::size_t i = 0; i < reg.gauge_names.size(); ++i)
    if (reg.gauge_names[i] == name) return reg.gauges[i];
  reg.gauge_names.push_back(name);
  reg.gauges.emplace_back();
  return reg.gauges.back();
}

double Snapshot::value(const std::string& name, double fallback) const {
  for (const Entry& entry : entries)
    if (entry.name == name) return entry.value;
  return fallback;
}

Snapshot snapshot() {
  Registry& reg = registry();
  Snapshot snap;
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::uint64_t> sums(reg.counter_names.size(), 0);
  for (const auto& shard : reg.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    const std::size_t n = std::min(shard->values.size(), sums.size());
    for (std::size_t i = 0; i < n; ++i)
      sums[i] += shard->values[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < sums.size(); ++i) {
    snap.entries.push_back(
        {reg.counter_names[i], static_cast<double>(sums[i]), false});
  }
  for (std::size_t i = 0; i < reg.gauge_names.size(); ++i)
    snap.entries.push_back({reg.gauge_names[i], reg.gauges[i].value(), true});
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const Snapshot::Entry& a, const Snapshot::Entry& b) {
              return a.name < b.name;
            });
  return snap;
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& shard : reg.shards) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (auto& value : shard->values)
      value.store(0, std::memory_order_relaxed);
  }
  for (auto& g : reg.gauges) g.value_.store(0.0, std::memory_order_relaxed);
}

std::string table() {
  const Snapshot snap = snapshot();
  std::vector<std::vector<std::string>> rows;
  for (const Snapshot::Entry& entry : snap.entries) {
    rows.push_back({entry.name, entry.is_gauge
                                    ? format("%.17g", entry.value)
                                    : format("%.0f", entry.value)});
  }
  return render_table({"metric", "value"}, rows);
}

Json to_json() {
  const Snapshot snap = snapshot();
  Json json = Json::object();
  for (const Snapshot::Entry& entry : snap.entries)
    json.set(entry.name, entry.value);
  return json;
}

}  // namespace greennfv::telemetry::metrics
