#pragma once

#include <cstddef>
#include <vector>

/// \file stats.hpp
/// Streaming statistics used by the telemetry recorder and the learner's
/// diagnostics: Welford running moments, EWMA smoothing, and quantiles.

namespace greennfv::telemetry {

/// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  void reset();

  /// Merges another accumulator (parallel reduction — Chan et al.).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// `alpha` is the new-sample weight in (0, 1].
  explicit Ewma(double alpha);

  double update(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Quantile of a sample set (linear interpolation between order statistics).
/// `q` in [0,1]. The input is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

/// Histogram over small non-negative integer bins (node-occupancy counts:
/// how many node-windows hosted k chains). Grows on demand.
class CountHistogram {
 public:
  void add(std::size_t bin, std::size_t weight = 1);

  [[nodiscard]] std::size_t total() const { return total_; }
  /// Count in one bin (0 beyond the populated range).
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  /// All populated bins, index = bin value.
  [[nodiscard]] const std::vector<std::size_t>& counts() const {
    return counts_;
  }
  /// counts()/total() — empty when nothing was added.
  [[nodiscard]] std::vector<double> fractions() const;
  /// Weighted mean bin value (0 when empty).
  [[nodiscard]] double mean() const;

  void reset();

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace greennfv::telemetry
