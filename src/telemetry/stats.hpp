#pragma once

#include <cstddef>
#include <vector>

/// \file stats.hpp
/// Streaming statistics used by the telemetry recorder and the learner's
/// diagnostics: Welford running moments, EWMA smoothing, and quantiles.

namespace greennfv::telemetry {

/// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  void reset();

  /// Merges another accumulator (parallel reduction — Chan et al.).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  /// `alpha` is the new-sample weight in (0, 1].
  explicit Ewma(double alpha);

  double update(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Quantile of a sample set (linear interpolation between order statistics).
/// `q` in [0,1]. The input is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> samples, double q);

}  // namespace greennfv::telemetry
