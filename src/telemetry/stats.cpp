#include "telemetry/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace greennfv::telemetry {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  GNFV_REQUIRE(count_ > 0, "RunningStats::mean on empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  GNFV_REQUIRE(count_ > 0, "RunningStats::min on empty accumulator");
  return min_;
}

double RunningStats::max() const {
  GNFV_REQUIRE(count_ > 0, "RunningStats::max on empty accumulator");
  return max_;
}

void RunningStats::reset() { *this = RunningStats{}; }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  GNFV_REQUIRE(alpha > 0.0 && alpha <= 1.0, "Ewma: alpha out of (0,1]");
}

double Ewma::update(double x) {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  return value_;
}

void Ewma::reset() {
  value_ = 0.0;
  primed_ = false;
}

void CountHistogram::add(std::size_t bin, std::size_t weight) {
  if (bin >= counts_.size()) counts_.resize(bin + 1, 0);
  counts_[bin] += weight;
  total_ += weight;
}

std::size_t CountHistogram::count(std::size_t bin) const {
  return bin < counts_.size() ? counts_[bin] : 0;
}

std::vector<double> CountHistogram::fractions() const {
  std::vector<double> fractions(counts_.size(), 0.0);
  if (total_ == 0) return fractions;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    fractions[i] = static_cast<double>(counts_[i]) /
                   static_cast<double>(total_);
  return fractions;
}

double CountHistogram::mean() const {
  if (total_ == 0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    weighted += static_cast<double>(i) * static_cast<double>(counts_[i]);
  return weighted / static_cast<double>(total_);
}

void CountHistogram::reset() {
  counts_.clear();
  total_ = 0;
}

double quantile(std::vector<double> samples, double q) {
  GNFV_REQUIRE(!samples.empty(), "quantile: empty sample set");
  GNFV_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q out of [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

}  // namespace greennfv::telemetry
