#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>

#include "common/arena.hpp"
#include "common/fs_util.hpp"

namespace greennfv::telemetry::trace {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_capacity{65536};

/// One thread's span ring. Only the owner appends; flush/extract from
/// other threads serialize against the owner through `mutex` (appends are
/// span-granular — the lock is uncontended in steady state and far
/// cheaper than the two clock reads bracketing it).
struct ThreadBuffer {
  explicit ThreadBuffer(int tid_in, std::size_t capacity_in)
      : tid(tid_in), capacity(capacity_in) {
    ring = static_cast<TraceEvent*>(
        arena.allocate(sizeof(TraceEvent) * capacity, alignof(TraceEvent)));
    for (std::size_t i = 0; i < capacity; ++i) new (ring + i) TraceEvent();
  }

  void append(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mutex);
    ring[head % capacity] = event;
    ++head;
  }

  /// Kept events, oldest first, from absolute position `since` on.
  std::vector<TraceEvent> extract(std::uint64_t since) {
    std::lock_guard<std::mutex> lock(mutex);
    const std::uint64_t oldest = head > capacity ? head - capacity : 0;
    std::vector<TraceEvent> out;
    for (std::uint64_t i = std::max(since, oldest); i < head; ++i)
      out.push_back(ring[i % capacity]);
    return out;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex);
    head = 0;
  }

  [[nodiscard]] std::uint64_t dropped_count() {
    std::lock_guard<std::mutex> lock(mutex);
    return head > capacity ? head - capacity : 0;
  }

  [[nodiscard]] std::size_t kept() {
    std::lock_guard<std::mutex> lock(mutex);
    return static_cast<std::size_t>(std::min<std::uint64_t>(head, capacity));
  }

  std::mutex mutex;
  int tid;
  std::size_t capacity;
  Arena arena;            ///< owns the ring storage (one chunk, allocated once)
  TraceEvent* ring;
  std::uint64_t head = 0;  ///< absolute appended-event count
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::deque<std::string> interned;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: worker threads
  return *instance;                            // may outlive main
}

ThreadBuffer& buffer_for_this_thread() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto created = std::make_shared<ThreadBuffer>(
        static_cast<int>(reg.buffers.size()),
        g_capacity.load(std::memory_order_relaxed));
    reg.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

std::chrono::steady_clock::time_point epoch() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

Json event_to_json(const TraceEvent& event, int tid) {
  Json entry = Json::object();
  entry.set("name", event.name != nullptr ? event.name : "?");
  entry.set("cat", "greennfv");
  entry.set("ph", "X");
  // Trace Event timestamps are microseconds; fractional digits keep the
  // full ns resolution.
  entry.set("ts", static_cast<double>(event.ts_ns) / 1e3);
  entry.set("dur", static_cast<double>(event.dur_ns) / 1e3);
  entry.set("pid", 1);
  entry.set("tid", tid);
  if (event.has_arg) {
    Json args = Json::object();
    args.set("arg", static_cast<double>(event.arg));
    entry.set("args", std::move(args));
  }
  return entry;
}

}  // namespace

bool runtime_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
#if GREENNFV_TRACING_ENABLED
  (void)epoch();  // pin the epoch no later than the first enable
  g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void set_thread_capacity(std::size_t events) {
  g_capacity.store(events == 0 ? 1 : events, std::memory_order_relaxed);
}

const char* intern(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const std::string& existing : reg.interned)
    if (existing == name) return existing.c_str();
  reg.interned.push_back(name);
  return reg.interned.back().c_str();
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buffer : reg.buffers) buffer->clear();
}

std::uint64_t dropped() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : reg.buffers) total += buffer->dropped_count();
  return total;
}

std::size_t recorded() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& buffer : reg.buffers) total += buffer->kept();
  return total;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch())
      .count();
}

Mark mark() {
  ThreadBuffer& buffer = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  return Mark{&buffer, buffer.head};
}

std::vector<TraceEvent> events_since(const Mark& m) {
  if (m.buffer == nullptr) return {};
  return static_cast<ThreadBuffer*>(m.buffer)->extract(m.head);
}

Json events_to_json(const std::vector<TraceEvent>& events, int tid) {
  Json trace_events = Json::array();
  for (const TraceEvent& event : events)
    trace_events.push_back(event_to_json(event, tid));
  Json doc = Json::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

Json to_json() {
  Registry& reg = registry();
  Json trace_events = Json::array();
  std::uint64_t total_dropped = 0;
  std::int64_t last_ts_ns = 0;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buffer : reg.buffers) {
      total_dropped += buffer->dropped_count();
      for (const TraceEvent& event : buffer->extract(0)) {
        last_ts_ns =
            std::max(last_ts_ns, event.ts_ns + event.dur_ns);
        trace_events.push_back(event_to_json(event, buffer->tid));
      }
    }
  }
  // One final counter sample per metric: Perfetto renders these as
  // counter tracks next to the spans.
  if (metrics::enabled()) {
    for (const auto& entry : metrics::snapshot().entries) {
      Json sample = Json::object();
      sample.set("name", entry.name);
      sample.set("cat", "greennfv");
      sample.set("ph", "C");
      sample.set("ts", static_cast<double>(last_ts_ns) / 1e3);
      sample.set("pid", 1);
      sample.set("tid", 0);
      Json args = Json::object();
      args.set("value", entry.value);
      sample.set("args", std::move(args));
      trace_events.push_back(std::move(sample));
    }
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", "ms");
  Json other = Json::object();
  other.set("dropped_events", static_cast<double>(total_dropped));
  doc.set("otherData", std::move(other));
  return doc;
}

void write_json(const std::string& path) {
  write_file_atomic(path, to_json().dump(1) + "\n");
}

void Span::finish() {
  const std::int64_t end_ns = now_ns();
  const std::int64_t dur_ns = end_ns - start_ns_;
  if (timer_ != nullptr && metrics::enabled())
    timer_->add(static_cast<std::uint64_t>(dur_ns < 0 ? 0 : dur_ns));
  if (!active()) return;
  TraceEvent event;
  event.name = name_;
  event.ts_ns = start_ns_;
  event.dur_ns = dur_ns;
  event.arg = arg_;
  event.has_arg = has_arg_;
  buffer_for_this_thread().append(event);
}

}  // namespace greennfv::telemetry::trace
