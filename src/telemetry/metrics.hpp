#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

/// \file metrics.hpp
/// Process-wide registry of named counters and gauges — the "how many"
/// half of the flight recorder (trace.hpp is the "how long" half). Hot
/// paths hold a `Counter&` (one registry lookup, usually behind a
/// function-local static) and bump it with a relaxed store into a
/// per-thread slot: no locks, no cross-core cache-line ping-pong, and a
/// single relaxed flag load when the registry is disabled (the default).
/// `snapshot()` sums the per-thread shards on demand; counting never
/// perturbs simulation results — counters carry no floating-point state
/// that feeds back into any model.

namespace greennfv::telemetry::metrics {

/// Global collection switch. Off by default: every Counter::add is a
/// relaxed load + branch. Flip on for `metrics=1` runs and benches.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

namespace detail {
struct ThreadSlots;
detail::ThreadSlots& slots_for_this_thread();
}  // namespace detail

/// A named monotonic counter. Obtain via `counter(name)` (stable for the
/// process lifetime); `add` is safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  /// Sum across every thread's shard (registry-wide, point-in-time).
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend Counter& counter(const std::string& name);
  explicit Counter(std::size_t id) : id_(id) {}
  std::size_t id_;
};

/// A named last-write-wins gauge (arena bytes, ring occupancy...).
/// Obtain via `gauge(name)`; the default constructor exists only so the
/// registry can hold them in place.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) {
    if (enabled()) value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend void reset();
  std::atomic<double> value_{0.0};
};

/// Finds or creates the named metric. The returned reference is stable —
/// hot paths cache it in a function-local static.
[[nodiscard]] Counter& counter(const std::string& name);
[[nodiscard]] Gauge& gauge(const std::string& name);

/// One registry sample: counters summed across threads plus gauges, in
/// ascending name order (deterministic output regardless of registration
/// interleaving).
struct Snapshot {
  struct Entry {
    std::string name;
    double value = 0.0;
    bool is_gauge = false;
  };
  std::vector<Entry> entries;

  /// Value of `name`, or `fallback` when the metric never registered.
  [[nodiscard]] double value(const std::string& name,
                             double fallback = 0.0) const;
};

[[nodiscard]] Snapshot snapshot();

/// Zeroes every counter shard and gauge (names stay registered) — how a
/// bench scopes counts to one timed section.
void reset();

/// Rendered name/value table (the `metrics=1` output).
[[nodiscard]] std::string table();

/// `{"name": value, ...}` in ascending name order.
[[nodiscard]] Json to_json();

}  // namespace greennfv::telemetry::metrics
