#include "traffic/generator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace greennfv::traffic {

TrafficGenerator::TrafficGenerator(std::vector<FlowSpec> flows,
                                   std::uint64_t seed)
    : flows_(std::move(flows)), rng_(seed) {
  GNFV_REQUIRE(!flows_.empty(), "TrafficGenerator: no flows");
  arrivals_.reserve(flows_.size());
  tcp_window_.assign(flows_.size(), 1.0);
  for (const auto& flow : flows_) {
    validate(flow);
    arrivals_.push_back(make_arrival(flow));
  }
}

WindowLoad TrafficGenerator::next_window(double dt) {
  GNFV_REQUIRE(dt > 0.0, "next_window: dt must be positive");
  WindowLoad load;
  load.per_flow_pps.resize(flows_.size());
  // Envelope evaluated at the window midpoint so square-wave edges land
  // where a whole-window average would put them.
  const double envelope =
      profile_.multiplier(time_s_ - profile_t0_s_ + 0.5 * dt);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    double rate = arrivals_[i]->rate_in_window(dt, rng_) * envelope;
    if (flows_[i].proto == Protocol::kTcp) rate *= tcp_window_[i];
    load.per_flow_pps[i] = rate;
    load.total_pps += rate;
  }
  time_s_ += dt;
  return load;
}

void TrafficGenerator::report_feedback(std::size_t flow_index,
                                       double goodput_pps, double drop_pps) {
  GNFV_REQUIRE(flow_index < flows_.size(), "report_feedback: bad index");
  if (flows_[flow_index].proto != Protocol::kTcp) return;
  (void)goodput_pps;
  double& window = tcp_window_[flow_index];
  if (drop_pps > 1e-6) {
    window = std::max(0.05, window * kAimdDecrease);
  } else {
    window = std::min(1.0, window + kAimdIncreaseStep);
  }
}

double TrafficGenerator::total_mean_pps() const {
  double total = 0.0;
  for (const auto& flow : flows_) total += flow.mean_rate_pps;
  return total;
}

void TrafficGenerator::steer_flow(std::size_t flow_index, int chain_index) {
  GNFV_REQUIRE(flow_index < flows_.size(), "steer_flow: bad flow index");
  GNFV_REQUIRE(chain_index >= 0, "steer_flow: negative chain index");
  flows_[flow_index].chain_index = chain_index;
}

void TrafficGenerator::set_rate_profile(const RateProfile& profile) {
  profile.validate();
  profile_ = profile;
}

void TrafficGenerator::reset(std::uint64_t seed) {
  rng_ = Rng(seed);
  time_s_ = 0.0;
  profile_t0_s_ = 0.0;
  std::fill(tcp_window_.begin(), tcp_window_.end(), 1.0);
  arrivals_.clear();
  for (const auto& flow : flows_) arrivals_.push_back(make_arrival(flow));
}

std::vector<FlowSpec> make_eval_flows(int n, int num_chains,
                                      double total_gbps, std::uint64_t seed) {
  GNFV_REQUIRE(n >= 1, "make_eval_flows: need at least one flow");
  GNFV_REQUIRE(num_chains >= 1, "make_eval_flows: need at least one chain");
  Rng rng(seed);

  // Deterministic workload *structure* (packet sizes, arrival kinds,
  // protocols cycle through fixed IMIX-style patterns) with randomized
  // *dynamics* (rates, burst shapes, phases). Keeping the structure fixed
  // makes evaluations comparable across seeds — two runs see the same kind
  // of traffic, just different realizations — which is also how the
  // paper's MoonGen scripts work.
  static constexpr std::uint32_t kSizes[] = {64, 128, 256, 512, 1518};
  static constexpr ArrivalKind kKinds[] = {
      ArrivalKind::kCbr, ArrivalKind::kMmpp, ArrivalKind::kPoisson,
      ArrivalKind::kOnOff};

  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(n));
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FlowSpec flow;
    flow.id = i;
    flow.proto =
        (i % 3 == 2) ? Protocol::kTcp : Protocol::kUdp;
    flow.arrival = kKinds[static_cast<std::size_t>(i) % 4];
    flow.pkt_bytes = kSizes[static_cast<std::size_t>(i) % 5];
    flow.peak_to_mean = rng.uniform(1.5, 3.0);
    flow.dwell_s = rng.uniform(0.2, 1.0);
    flow.chain_index = i % num_chains;
    weights[static_cast<std::size_t>(i)] = rng.uniform(0.8, 1.2);
    flows.push_back(flow);
  }
  // Second pass: scale rates so aggregate offered bits match total_gbps.
  double weighted_bits = 0.0;
  for (int i = 0; i < n; ++i)
    weighted_bits += weights[static_cast<std::size_t>(i)] *
                     flows[static_cast<std::size_t>(i)].pkt_bytes * 8.0;
  const double unit_rate = units::gbps_to_bps(total_gbps) / weighted_bits;
  for (int i = 0; i < n; ++i) {
    flows[static_cast<std::size_t>(i)].mean_rate_pps =
        unit_rate * weights[static_cast<std::size_t>(i)];
  }
  return flows;
}

FlowSpec line_rate_flow(std::uint32_t pkt_bytes, double line_rate_gbps,
                        int chain_index) {
  FlowSpec flow;
  flow.id = 0;
  flow.proto = Protocol::kUdp;
  flow.arrival = ArrivalKind::kCbr;
  flow.pkt_bytes = pkt_bytes;
  // Line rate accounts for preamble+IFG on the wire.
  flow.mean_rate_pps = units::gbps_to_bps(line_rate_gbps) /
                       units::wire_bits_per_frame(pkt_bytes);
  flow.chain_index = chain_index;
  return flow;
}

}  // namespace greennfv::traffic
