#include "traffic/flow.hpp"

#include <stdexcept>

namespace greennfv::traffic {

std::string to_string(Protocol proto) {
  return proto == Protocol::kUdp ? "udp" : "tcp";
}

std::string to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kCbr:     return "cbr";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kMmpp:    return "mmpp";
    case ArrivalKind::kOnOff:   return "onoff";
  }
  return "?";
}

std::unique_ptr<ArrivalProcess> make_arrival(const FlowSpec& spec) {
  validate(spec);
  switch (spec.arrival) {
    case ArrivalKind::kCbr:
      return std::make_unique<CbrArrival>(spec.mean_rate_pps);
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrival>(spec.mean_rate_pps);
    case ArrivalKind::kMmpp:
      return std::make_unique<MmppArrival>(spec.mean_rate_pps,
                                           spec.peak_to_mean, spec.dwell_s);
    case ArrivalKind::kOnOff:
      return std::make_unique<OnOffArrival>(spec.mean_rate_pps,
                                            spec.peak_to_mean, spec.dwell_s);
  }
  throw std::invalid_argument("unknown arrival kind");
}

void validate(const FlowSpec& spec) {
  if (spec.mean_rate_pps < 0.0)
    throw std::invalid_argument("flow: negative rate");
  if (spec.pkt_bytes < 64 || spec.pkt_bytes > 1518)
    throw std::invalid_argument(
        "flow: packet size outside Ethernet's 64-1518 byte range");
  if (spec.peak_to_mean < 1.0)
    throw std::invalid_argument("flow: peak_to_mean must be >= 1");
  if (spec.dwell_s <= 0.0)
    throw std::invalid_argument("flow: dwell must be positive");
  if (spec.chain_index < 0)
    throw std::invalid_argument("flow: negative chain index");
}

}  // namespace greennfv::traffic
