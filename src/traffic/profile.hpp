#pragma once

#include <string>

/// \file profile.hpp
/// Deterministic rate profiles: a multiplicative envelope applied on top of
/// the per-flow arrival processes. Arrival processes model short-timescale
/// randomness (bursts, phases); the profile models the *macroscopic* shape
/// of a workload over a whole experiment — the diurnal swing of a
/// metropolitan PoP, a load-test square wave, or a flash crowd slamming
/// into the deployment mid-run. Scenario presets pick one per experiment.

namespace greennfv::traffic {

/// A deterministic function of virtual time multiplying every flow's
/// offered rate.
struct RateProfile {
  enum class Kind {
    kSteady,      ///< multiplier 1 everywhere (the paper's evaluations)
    kDiurnal,     ///< 1 + amplitude * sin(2*pi*t/period)
    kBursty,      ///< square wave: 1+amplitude / 1-amplitude per half period
    kFlashCrowd,  ///< 1 except surge_factor in [surge_start, +surge_duration)
  };

  Kind kind = Kind::kSteady;
  /// Period of the diurnal sinusoid / bursty square wave.
  double period_s = 120.0;
  /// Relative swing of diurnal/bursty in [0, 1).
  double amplitude = 0.5;
  /// Flash-crowd surge window and height.
  double surge_start_s = 60.0;
  double surge_duration_s = 60.0;
  double surge_factor = 3.0;

  /// Offered-load multiplier at virtual time `t_s`. Exactly 1.0 for
  /// kSteady so the default profile is bit-transparent.
  [[nodiscard]] double multiplier(double t_s) const;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

[[nodiscard]] std::string to_string(RateProfile::Kind kind);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] RateProfile::Kind profile_kind_from_string(
    const std::string& name);

}  // namespace greennfv::traffic
