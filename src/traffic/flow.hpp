#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "traffic/arrival.hpp"

/// \file flow.hpp
/// Flow descriptors: what MoonGen would be scripted to send. Packet sizes
/// span the paper's 64-1518 byte range; protocols are UDP (open-loop, keeps
/// blasting under loss) and TCP (closed-loop, backs off on drops via AIMD).

namespace greennfv::traffic {

enum class Protocol { kUdp, kTcp };

[[nodiscard]] std::string to_string(Protocol proto);

enum class ArrivalKind { kCbr, kPoisson, kMmpp, kOnOff };

[[nodiscard]] std::string to_string(ArrivalKind kind);

struct FlowSpec {
  int id = 0;
  Protocol proto = Protocol::kUdp;
  ArrivalKind arrival = ArrivalKind::kCbr;
  double mean_rate_pps = 1e6;
  std::uint32_t pkt_bytes = 1024;
  /// Burst shape for MMPP/OnOff.
  double peak_to_mean = 3.0;
  double dwell_s = 0.5;
  /// Which service chain the flow traverses.
  int chain_index = 0;

  [[nodiscard]] double mean_rate_gbps() const {
    return mean_rate_pps * pkt_bytes * 8.0 / 1e9;
  }
};

/// Builds the arrival process for a flow spec.
[[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrival(
    const FlowSpec& spec);

/// Validates a flow spec; throws std::invalid_argument with a message
/// naming the offending field.
void validate(const FlowSpec& spec);

}  // namespace greennfv::traffic
