#include "traffic/profile.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace greennfv::traffic {

double RateProfile::multiplier(double t_s) const {
  switch (kind) {
    case Kind::kSteady:
      return 1.0;
    case Kind::kDiurnal:
      return 1.0 +
             amplitude * std::sin(2.0 * std::numbers::pi * t_s / period_s);
    case Kind::kBursty: {
      const double phase = std::fmod(t_s, period_s);
      return phase < 0.5 * period_s ? 1.0 + amplitude : 1.0 - amplitude;
    }
    case Kind::kFlashCrowd:
      return (t_s >= surge_start_s && t_s < surge_start_s + surge_duration_s)
                 ? surge_factor
                 : 1.0;
  }
  return 1.0;
}

void RateProfile::validate() const {
  if (kind == Kind::kDiurnal || kind == Kind::kBursty) {
    if (period_s <= 0.0)
      throw std::invalid_argument("RateProfile: period_s must be positive");
    if (amplitude < 0.0 || amplitude >= 1.0)
      throw std::invalid_argument("RateProfile: amplitude must be in [0, 1)");
  }
  if (kind == Kind::kFlashCrowd) {
    if (surge_start_s < 0.0)
      throw std::invalid_argument(
          "RateProfile: surge_start_s must be non-negative");
    if (surge_duration_s <= 0.0)
      throw std::invalid_argument(
          "RateProfile: surge_duration_s must be positive");
    if (surge_factor <= 0.0)
      throw std::invalid_argument(
          "RateProfile: surge_factor must be positive");
  }
}

std::string to_string(RateProfile::Kind kind) {
  switch (kind) {
    case RateProfile::Kind::kSteady: return "steady";
    case RateProfile::Kind::kDiurnal: return "diurnal";
    case RateProfile::Kind::kBursty: return "bursty";
    case RateProfile::Kind::kFlashCrowd: return "flash-crowd";
  }
  return "steady";
}

RateProfile::Kind profile_kind_from_string(const std::string& name) {
  if (name == "steady") return RateProfile::Kind::kSteady;
  if (name == "diurnal") return RateProfile::Kind::kDiurnal;
  if (name == "bursty") return RateProfile::Kind::kBursty;
  if (name == "flash-crowd" || name == "flash_crowd")
    return RateProfile::Kind::kFlashCrowd;
  throw std::invalid_argument(
      "RateProfile: unknown kind '" + name +
      "' (expected steady|diurnal|bursty|flash-crowd)");
}

}  // namespace greennfv::traffic
