#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "traffic/flow.hpp"
#include "traffic/profile.hpp"

/// \file generator.hpp
/// The MoonGen stand-in: owns a set of flows and produces per-window offered
/// loads. UDP flows are open-loop; TCP flows run a window-granularity AIMD
/// loop that backs off on observed drops — feed results back through
/// `report_feedback` to close the loop.

namespace greennfv::traffic {

/// Offered load for one simulation window.
struct WindowLoad {
  /// Per-flow offered rate (indexed like the generator's flow list).
  std::vector<double> per_flow_pps;
  double total_pps = 0.0;

  [[nodiscard]] double flow_pps(std::size_t i) const {
    return per_flow_pps.at(i);
  }
};

class TrafficGenerator {
 public:
  TrafficGenerator(std::vector<FlowSpec> flows, std::uint64_t seed);

  /// Advances virtual time by `dt` and returns the offered load in that
  /// window.
  [[nodiscard]] WindowLoad next_window(double dt);

  /// Closes the TCP loop: reports what one flow achieved last window.
  /// No-op for UDP flows.
  void report_feedback(std::size_t flow_index, double goodput_pps,
                       double drop_pps);

  [[nodiscard]] const std::vector<FlowSpec>& flows() const { return flows_; }
  [[nodiscard]] double time_s() const { return time_s_; }

  /// Aggregate mean offered rate in pps (long-run).
  [[nodiscard]] double total_mean_pps() const;

  /// Resets time and all per-flow state (TCP windows, MMPP phases).
  void reset(std::uint64_t seed);

  /// Re-steers a flow onto another chain (SDN flow scheduling; the paper's
  /// §6 envisions the SDN and NF controllers updating each other). Takes
  /// effect from the next window.
  void steer_flow(std::size_t flow_index, int chain_index);

  /// Installs a macroscopic rate envelope (diurnal swing, flash crowd...)
  /// multiplying every flow's offered rate. Survives reset(): the profile
  /// is part of the workload definition, not of the random state.
  void set_rate_profile(const RateProfile& profile);
  [[nodiscard]] const RateProfile& rate_profile() const { return profile_; }

  /// Re-zeros the envelope clock at the current virtual time. Evaluation
  /// harnesses call this after warmup so every model — whatever its
  /// settling period — is measured against the same segment of a
  /// non-steady profile (the surge of `flash-crowd` hits at the same
  /// recorded t for all of them).
  void anchor_rate_profile() { profile_t0_s_ = time_s_; }

  /// Declares that the envelope clock currently reads `profile_time_s`
  /// (instead of 0): a node environment rebuilt mid-experiment keeps
  /// tracking the workload's absolute load shape — the fleet orchestrator
  /// re-phases rebuilt nodes onto fleet time with this.
  void anchor_rate_profile(double profile_time_s) {
    profile_t0_s_ = time_s_ - profile_time_s;
  }

 private:
  std::vector<FlowSpec> flows_;
  RateProfile profile_;
  double profile_t0_s_ = 0.0;
  std::vector<std::unique_ptr<ArrivalProcess>> arrivals_;
  /// Per-flow AIMD multiplier in (0, 1]; 1 for UDP.
  std::vector<double> tcp_window_;
  Rng rng_;
  double time_s_ = 0.0;

  static constexpr double kAimdDecrease = 0.7;
  static constexpr double kAimdIncreaseStep = 0.08;
};

/// The evaluation workload of §5: `n` flows with mixed packet sizes and
/// arrival patterns, spread round-robin over `num_chains` chains, scaled so
/// the aggregate offered load is `total_gbps`.
[[nodiscard]] std::vector<FlowSpec> make_eval_flows(int n, int num_chains,
                                                    double total_gbps,
                                                    std::uint64_t seed);

/// A single line-rate CBR flow of the given frame size (the micro-benchmark
/// input: "line rate traffic with a large packet size (1518 Bytes)").
[[nodiscard]] FlowSpec line_rate_flow(std::uint32_t pkt_bytes,
                                      double line_rate_gbps = 10.0,
                                      int chain_index = 0);

}  // namespace greennfv::traffic
