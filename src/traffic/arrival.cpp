#include "traffic/arrival.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace greennfv::traffic {

// --- CBR -----------------------------------------------------------------

CbrArrival::CbrArrival(double rate_pps) : rate_pps_(rate_pps) {
  GNFV_REQUIRE(rate_pps >= 0.0, "CBR rate must be non-negative");
}

double CbrArrival::rate_in_window(double dt, Rng& rng) {
  (void)dt;
  (void)rng;
  return rate_pps_;
}

std::unique_ptr<ArrivalProcess> CbrArrival::clone() const {
  return std::make_unique<CbrArrival>(*this);
}

// --- Poisson ---------------------------------------------------------------

PoissonArrival::PoissonArrival(double mean_rate_pps)
    : rate_pps_(mean_rate_pps) {
  GNFV_REQUIRE(mean_rate_pps >= 0.0, "Poisson rate must be non-negative");
}

double PoissonArrival::rate_in_window(double dt, Rng& rng) {
  GNFV_REQUIRE(dt > 0.0, "window must be positive");
  const double expected = rate_pps_ * dt;
  // For large windows the count concentrates; sample exactly either way.
  const auto count = rng.poisson(expected);
  return static_cast<double>(count) / dt;
}

std::unique_ptr<ArrivalProcess> PoissonArrival::clone() const {
  return std::make_unique<PoissonArrival>(*this);
}

// --- MMPP ------------------------------------------------------------------

MmppArrival::MmppArrival(double mean_rate_pps, double peak_to_mean,
                         double dwell_s) : mean_pps_(mean_rate_pps) {
  GNFV_REQUIRE(mean_rate_pps >= 0.0, "MMPP mean rate must be non-negative");
  GNFV_REQUIRE(peak_to_mean >= 1.0, "MMPP peak/mean must be >= 1");
  GNFV_REQUIRE(dwell_s > 0.0, "MMPP dwell must be positive");
  high_pps_ = peak_to_mean * mean_rate_pps;
  low_pps_ = std::max(0.0, 2.0 * mean_rate_pps - high_pps_);
  // Time fraction in the high state that preserves the long-run mean:
  // f*high + (1-f)*low = mean. Symmetric (f=1/2) when the low state is
  // positive; asymmetric once it clamps at zero (peak/mean > 2).
  high_fraction_ =
      high_pps_ > low_pps_
          ? (mean_rate_pps - low_pps_) / (high_pps_ - low_pps_)
          : 0.5;
  dwell_high_s_ = 2.0 * dwell_s * high_fraction_;
  dwell_low_s_ = 2.0 * dwell_s * (1.0 - high_fraction_);
}

double MmppArrival::rate_in_window(double dt, Rng& rng) {
  GNFV_REQUIRE(dt > 0.0, "window must be positive");
  if (!initialized_) {
    in_high_ = rng.bernoulli(high_fraction_);
    time_to_switch_s_ =
        rng.exponential(1.0 / (in_high_ ? dwell_high_s_ : dwell_low_s_));
    initialized_ = true;
  }
  // Integrate the phase rate across the window, honouring state switches
  // that land inside it.
  double remaining = dt;
  double accum = 0.0;
  while (remaining > 0.0) {
    const double span = std::min(remaining, time_to_switch_s_);
    accum += (in_high_ ? high_pps_ : low_pps_) * span;
    remaining -= span;
    time_to_switch_s_ -= span;
    if (time_to_switch_s_ <= 0.0) {
      in_high_ = !in_high_;
      time_to_switch_s_ =
          rng.exponential(1.0 / (in_high_ ? dwell_high_s_ : dwell_low_s_));
    }
  }
  return accum / dt;
}

std::unique_ptr<ArrivalProcess> MmppArrival::clone() const {
  return std::make_unique<MmppArrival>(*this);
}

// --- OnOff -----------------------------------------------------------------

OnOffArrival::OnOffArrival(double mean_rate_pps, double peak_to_mean,
                           double dwell_s)
    : mean_pps_(mean_rate_pps), dwell_s_(dwell_s) {
  GNFV_REQUIRE(mean_rate_pps >= 0.0, "OnOff mean rate must be non-negative");
  GNFV_REQUIRE(peak_to_mean >= 1.0, "OnOff peak/mean must be >= 1");
  GNFV_REQUIRE(dwell_s > 0.0, "OnOff dwell must be positive");
  on_pps_ = peak_to_mean * mean_rate_pps;
  on_fraction_ = 1.0 / peak_to_mean;
}

double OnOffArrival::rate_in_window(double dt, Rng& rng) {
  GNFV_REQUIRE(dt > 0.0, "window must be positive");
  if (!initialized_) {
    on_ = rng.bernoulli(on_fraction_);
    initialized_ = true;
    time_to_switch_s_ = rng.exponential(
        1.0 / (on_ ? dwell_s_ * on_fraction_
                   : dwell_s_ * (1.0 - on_fraction_)));
  }
  double remaining = dt;
  double accum = 0.0;
  while (remaining > 0.0) {
    const double span = std::min(remaining, time_to_switch_s_);
    accum += (on_ ? on_pps_ : 0.0) * span;
    remaining -= span;
    time_to_switch_s_ -= span;
    if (time_to_switch_s_ <= 0.0) {
      on_ = !on_;
      // Dwell times chosen so the duty cycle matches on_fraction_.
      time_to_switch_s_ = rng.exponential(
          1.0 / (on_ ? dwell_s_ * on_fraction_
                     : dwell_s_ * (1.0 - on_fraction_)));
    }
  }
  return accum / dt;
}

std::unique_ptr<ArrivalProcess> OnOffArrival::clone() const {
  return std::make_unique<OnOffArrival>(*this);
}

}  // namespace greennfv::traffic
