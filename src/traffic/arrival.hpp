#pragma once

#include <memory>

#include "common/rng.hpp"

/// \file arrival.hpp
/// Packet arrival processes. The paper's traffic generator (MoonGen) drives
/// line-rate constant streams; real NF chains additionally see bursty flows,
/// and GreenNFV's whole premise is reacting to "packet arrival rates and
/// traffic patterns". Four processes cover the space:
///
///   * CBR     — constant bit rate (MoonGen line-rate mode)
///   * Poisson — memoryless arrivals at a mean rate
///   * MMPP    — 2-state Markov-modulated Poisson (bursty: hi/lo phases)
///   * OnOff   — MMPP with a silent low state (classic voice/video model)
///
/// Each process reports the *average arrival rate over a simulation window*
/// and advances its internal phase state, which is what the windowed
/// analytic engine consumes.

namespace greennfv::traffic {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Long-run mean rate in packets/second.
  [[nodiscard]] virtual double mean_rate_pps() const = 0;

  /// Average rate over the window [t, t+dt); advances internal state.
  [[nodiscard]] virtual double rate_in_window(double dt, Rng& rng) = 0;

  /// Deep copy (each traffic generator owns independent process state).
  [[nodiscard]] virtual std::unique_ptr<ArrivalProcess> clone() const = 0;
};

/// Constant bit rate: exactly `rate_pps` in every window.
class CbrArrival final : public ArrivalProcess {
 public:
  explicit CbrArrival(double rate_pps);
  [[nodiscard]] double mean_rate_pps() const override { return rate_pps_; }
  [[nodiscard]] double rate_in_window(double dt, Rng& rng) override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  double rate_pps_;
};

/// Poisson arrivals: the window rate is a Poisson count divided by dt.
class PoissonArrival final : public ArrivalProcess {
 public:
  explicit PoissonArrival(double mean_rate_pps);
  [[nodiscard]] double mean_rate_pps() const override { return rate_pps_; }
  [[nodiscard]] double rate_in_window(double dt, Rng& rng) override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  double rate_pps_;
};

/// Two-state Markov-modulated Poisson process. State dwell times are
/// exponential; the high state runs at `peak_to_mean` times the mean-state
/// balance point so the long-run mean equals `mean_rate_pps`.
class MmppArrival final : public ArrivalProcess {
 public:
  MmppArrival(double mean_rate_pps, double peak_to_mean, double dwell_s);
  [[nodiscard]] double mean_rate_pps() const override { return mean_pps_; }
  [[nodiscard]] double rate_in_window(double dt, Rng& rng) override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;

  [[nodiscard]] double high_rate_pps() const { return high_pps_; }
  [[nodiscard]] double low_rate_pps() const { return low_pps_; }

 private:
  double mean_pps_;
  double high_pps_;
  double low_pps_;
  /// Mean dwell per state; asymmetric when the low state clamps at zero so
  /// the long-run mean stays exact.
  double dwell_high_s_;
  double dwell_low_s_;
  double high_fraction_;
  bool in_high_ = false;
  double time_to_switch_s_ = 0.0;
  bool initialized_ = false;
};

/// On/off source: bursts at `peak_to_mean * mean` for a fraction
/// 1/peak_to_mean of the time, silent otherwise.
class OnOffArrival final : public ArrivalProcess {
 public:
  OnOffArrival(double mean_rate_pps, double peak_to_mean, double dwell_s);
  [[nodiscard]] double mean_rate_pps() const override { return mean_pps_; }
  [[nodiscard]] double rate_in_window(double dt, Rng& rng) override;
  [[nodiscard]] std::unique_ptr<ArrivalProcess> clone() const override;

 private:
  double mean_pps_;
  double on_pps_;
  double on_fraction_;
  double dwell_s_;
  bool on_ = true;
  double time_to_switch_s_ = 0.0;
  bool initialized_ = false;
};

}  // namespace greennfv::traffic
