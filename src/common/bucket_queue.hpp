#pragma once

#include <set>
#include <vector>

#include "common/arena.hpp"
#include "common/assert.hpp"

/// \file bucket_queue.hpp
/// Occupancy-bucketed runqueues: ids (fleet nodes) grouped by an integral
/// level (committed cores). Placement policies reduce to O(levels)
/// queries — "lowest id in any fitting bucket" (first-fit), "lowest
/// nonempty bucket" (least-loaded), "highest fitting bucket"
/// (energy-bestfit) — instead of scanning every id. Levels are small
/// (a node's core count), ids per bucket are kept in an ordered set so
/// min-id tie-breaks are O(1) and in-bucket iteration is ordered, and
/// set nodes come from an Arena so steady-state churn allocates nothing.

namespace greennfv {

class BucketQueue {
 public:
  using IdSet = std::set<int, std::less<int>, ArenaAllocator<int>>;

  /// Buckets for levels 0..num_levels-1; `arena` must outlive the queue.
  BucketQueue(std::size_t num_levels, Arena* arena)
      : levels_(num_levels, IdSet(ArenaAllocator<int>(arena))) {}

  void insert(std::size_t level, int id) {
    const bool fresh = bucket(level).insert(id).second;
    GNFV_ASSERT(fresh, "BucketQueue::insert: id already present");
    (void)fresh;
    ++size_;
  }

  void erase(std::size_t level, int id) {
    const std::size_t removed = bucket(level).erase(id);
    GNFV_ASSERT(removed == 1, "BucketQueue::erase: id not in bucket");
    (void)removed;
    --size_;
  }

  /// Reassigns `id` from bucket `from` to bucket `to`.
  void move(std::size_t from, std::size_t to, int id) {
    erase(from, id);
    insert(to, id);
  }

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t size(std::size_t level) const {
    return at(level).size();
  }
  [[nodiscard]] bool empty(std::size_t level) const {
    return at(level).empty();
  }

  /// Ordered ids at one level (for in-bucket iteration with skips).
  [[nodiscard]] const IdSet& at(std::size_t level) const {
    GNFV_ASSERT(level < levels_.size(), "BucketQueue: level out of range");
    return levels_[level];
  }

  /// Smallest id at `level`, or -1 when the bucket is empty.
  [[nodiscard]] int min_id(std::size_t level) const {
    const IdSet& ids = at(level);
    return ids.empty() ? -1 : *ids.begin();
  }

  /// Smallest id across levels [lo, hi] (inclusive, clamped), or -1.
  [[nodiscard]] int min_id_in_range(std::size_t lo, std::size_t hi) const {
    int best = -1;
    for (std::size_t level = lo; level <= hi && level < levels_.size();
         ++level) {
      const int id = min_id(level);
      if (id >= 0 && (best < 0 || id < best)) best = id;
    }
    return best;
  }

  /// Lowest level in [lo, hi] with any id, or -1.
  [[nodiscard]] int lowest_nonempty(std::size_t lo, std::size_t hi) const {
    for (std::size_t level = lo; level <= hi && level < levels_.size();
         ++level) {
      if (!levels_[level].empty()) return static_cast<int>(level);
    }
    return -1;
  }

  /// Highest level in [lo, hi] with any id, or -1.
  [[nodiscard]] int highest_nonempty(std::size_t lo, std::size_t hi) const {
    if (levels_.empty()) return -1;
    std::size_t level = hi < levels_.size() ? hi : levels_.size() - 1;
    for (;; --level) {
      if (level < lo || level >= levels_.size()) return -1;
      if (!levels_[level].empty()) return static_cast<int>(level);
      if (level == 0) return -1;
    }
  }

 private:
  IdSet& bucket(std::size_t level) {
    GNFV_ASSERT(level < levels_.size(), "BucketQueue: level out of range");
    return levels_[level];
  }

  std::vector<IdSet> levels_;
  std::size_t size_ = 0;
};

}  // namespace greennfv
