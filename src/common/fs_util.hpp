#pragma once

#include <string>

/// \file fs_util.hpp
/// Output-file routing: every bench/example/campaign artifact lands under
/// the repo-local `out/` tree (gitignored) instead of littering the
/// working directory.

namespace greennfv {

/// Creates `path` (and parents) if missing. Throws std::runtime_error on
/// failure.
void ensure_dir(const std::string& path);

/// The artifact root, "out" (relative to the current working directory).
[[nodiscard]] const std::string& out_root();

/// `out/<relative>`, with every parent directory created. `relative` may
/// contain subdirectories ("fig9/runs/a.json").
[[nodiscard]] std::string out_path(const std::string& relative);

/// Writes `content` to `path` atomically: a temp file in the same
/// directory is renamed over the target, so readers (and crash-resumed
/// campaigns) never observe a half-written artifact.
void write_file_atomic(const std::string& path, const std::string& content);

/// Reads a whole file. Throws std::runtime_error when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

/// True when `path` names an existing regular file.
[[nodiscard]] bool file_exists(const std::string& path);

}  // namespace greennfv
