#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace greennfv {

namespace {
thread_local int t_worker_index = -1;
}  // namespace

int ThreadPool::current_worker() { return t_worker_index; }

ThreadPool::ThreadPool(int threads) {
  const std::size_t n = static_cast<std::size_t>(std::max(threads, 1));
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t slot;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    slot = next_++ % workers_.size();
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[slot]->mutex);
    workers_[slot]->queue.push_back(std::move(task));
  }
  {
    // queued_ becomes visible only after the task is in its deque, so a
    // woken worker's scan always finds something to pop.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  // Own queue first (front — FIFO over the dealt order)...
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.queue.empty()) {
      task = std::move(own.queue.front());
      own.queue.pop_front();
    }
  }
  // ...then steal from the back of a sibling's deque.
  if (!task) {
    for (std::size_t step = 1; step < workers_.size() && !task; ++step) {
      Worker& victim = *workers_[(self + step) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.back());
        victim.queue.pop_back();
      }
    }
  }
  if (!task) return false;

  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    --queued_;
  }
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    --pending_;
    if (pending_ == 0) done_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker_index = static_cast<int>(self);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (stop_) return;
    }
    // Drain everything reachable; when the scan comes up dry the worker
    // falls back to the predicate above (queued_ may be momentarily stale
    // around a concurrent pop, which costs one extra scan, never a lost
    // task: queued_ only becomes positive after the push is visible).
    while (try_run_one(self)) {
    }
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::parallel_for(std::size_t count, int jobs,
                              const std::function<void(std::size_t)>& body) {
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min<int>(jobs, static_cast<int>(count)));
  for (std::size_t i = 0; i < count; ++i)
    pool.submit([&body, i] { body(i); });
  pool.wait();
}

}  // namespace greennfv
