#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file config.hpp
/// Tiny key=value configuration parser used by benches and examples to take
/// command-line overrides (e.g. `fig6_maxth_training episodes=4000 seed=7`).

namespace greennfv {

class Config {
 public:
  Config() = default;

  /// Parses `argv[1..argc)` entries of the form key=value. Entries without
  /// '=' are treated as boolean flags set to "1". Later keys override
  /// earlier ones.
  static Config from_args(int argc, const char* const* argv);

  /// Parses a whitespace/comma separated "k=v k2=v2" string.
  static Config from_string(std::string_view text);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults. Throw std::invalid_argument on parse
  /// failure — a malformed experiment parameter must not silently fall back.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Rejects mistyped experiment keys: throws std::invalid_argument naming
  /// every key that is neither in `known_keys` nor an indexed-family match
  /// for one of `known_prefixes` (prefix followed by a bare index: flow0=,
  /// chain12= — "flowz" is still a typo). A typo'd key must not silently
  /// select the fallback value.
  void check_known(const std::vector<std::string>& known_keys,
                   const std::vector<std::string>& known_prefixes = {}) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace greennfv
