#include "common/timeseries.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"

namespace greennfv {

void TimeSeries::push(double t, double value) {
  t_.push_back(t);
  v_.push_back(value);
}

double TimeSeries::front() const {
  GNFV_REQUIRE(!v_.empty(), "TimeSeries::front on empty series");
  return v_.front();
}

double TimeSeries::back() const {
  GNFV_REQUIRE(!v_.empty(), "TimeSeries::back on empty series");
  return v_.back();
}

double TimeSeries::min() const {
  GNFV_REQUIRE(!v_.empty(), "TimeSeries::min on empty series");
  return *std::min_element(v_.begin(), v_.end());
}

double TimeSeries::max() const {
  GNFV_REQUIRE(!v_.empty(), "TimeSeries::max on empty series");
  return *std::max_element(v_.begin(), v_.end());
}

double TimeSeries::mean() const {
  GNFV_REQUIRE(!v_.empty(), "TimeSeries::mean on empty series");
  return std::accumulate(v_.begin(), v_.end(), 0.0) /
         static_cast<double>(v_.size());
}

double TimeSeries::tail_mean(std::size_t n) const {
  GNFV_REQUIRE(!v_.empty(), "TimeSeries::tail_mean on empty series");
  const std::size_t count = std::min(n, v_.size());
  const double sum =
      std::accumulate(v_.end() - static_cast<std::ptrdiff_t>(count), v_.end(),
                      0.0);
  return sum / static_cast<double>(count);
}

TimeSeries TimeSeries::downsample(std::size_t max_points) const {
  GNFV_REQUIRE(max_points > 0, "downsample: max_points must be positive");
  TimeSeries out(name_);
  if (size() <= max_points) {
    out.t_ = t_;
    out.v_ = v_;
    return out;
  }
  const std::size_t n = size();
  for (std::size_t bucket = 0; bucket < max_points; ++bucket) {
    const std::size_t lo = bucket * n / max_points;
    const std::size_t hi = std::max(lo + 1, (bucket + 1) * n / max_points);
    double t_sum = 0.0;
    double v_sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      t_sum += t_[i];
      v_sum += v_[i];
    }
    const auto width = static_cast<double>(hi - lo);
    out.push(t_sum / width, v_sum / width);
  }
  return out;
}

double TimeSeries::interpolate(double t) const {
  GNFV_REQUIRE(!v_.empty(), "TimeSeries::interpolate on empty series");
  if (t <= t_.front()) return v_.front();
  if (t >= t_.back()) return v_.back();
  const auto it = std::lower_bound(t_.begin(), t_.end(), t);
  const auto idx = static_cast<std::size_t>(it - t_.begin());
  GNFV_ASSERT(idx > 0 && idx < t_.size(), "interpolate: bad bracket");
  const double t0 = t_[idx - 1];
  const double t1 = t_[idx];
  if (t1 <= t0) return v_[idx];
  const double alpha = (t - t0) / (t1 - t0);
  return v_[idx - 1] + alpha * (v_[idx] - v_[idx - 1]);
}

}  // namespace greennfv
