#include "common/string_util.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/assert.hpp"

namespace greennfv {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string format_double(double value, int decimals) {
  return format("%.*f", decimals, value);
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  GNFV_REQUIRE(!header.empty(), "render_table: empty header");
  const std::size_t cols = header.size();
  std::vector<std::size_t> widths(cols);
  for (std::size_t c = 0; c < cols; ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    GNFV_REQUIRE(row.size() == cols, "render_table: row width mismatch");
    for (std::size_t c = 0; c < cols; ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cols; ++c) {
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
      out += (c + 1 == cols) ? "\n" : "  ";
    }
  };
  emit_row(header);
  for (std::size_t c = 0; c < cols; ++c) {
    out.append(widths[c], '-');
    out += (c + 1 == cols) ? "\n" : "  ";
  }
  for (const auto& row : rows) emit_row(row);
  return out;
}

}  // namespace greennfv
