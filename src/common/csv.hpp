#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

/// \file csv.hpp
/// Minimal CSV writer used by the telemetry recorder and the figure benches
/// to dump the series the paper plots.

namespace greennfv {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; the number of values must match the header width.
  void append(const std::vector<double>& values);

  /// Appends one row of preformatted cells.
  void append_strings(const std::vector<std::string>& cells);

  /// Flushes buffered rows to disk.
  void flush();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }
  [[nodiscard]] std::size_t columns() const { return width_; }

 private:
  std::ofstream out_;
  std::size_t width_ = 0;
  std::size_t rows_ = 0;
};

/// Escapes a cell for CSV output (quotes cells containing , " or newline).
[[nodiscard]] std::string csv_escape(std::string_view cell);

}  // namespace greennfv
