#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace greennfv {

namespace {

/// SplitMix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // zero outputs from any input, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  GNFV_ASSERT(n > 0, "uniform_u64: n must be positive");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  GNFV_ASSERT(lo <= hi, "uniform_int: inverted range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) noexcept {
  GNFV_ASSERT(lambda > 0.0, "exponential: rate must be positive");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  GNFV_ASSERT(mean >= 0.0, "poisson: mean must be non-negative");
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = normal(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split() noexcept {
  // Derive a child seed from the parent stream; the SplitMix expansion in
  // the constructor decorrelates the child state.
  return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5Aull);
}

}  // namespace greennfv
