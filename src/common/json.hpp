#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

/// \file json.hpp
/// Minimal JSON value type for machine-readable experiment artifacts
/// (campaign manifests, per-run results, recorder exports, perf files).
/// Objects preserve insertion order so emitted files are stable and
/// diffable; numbers are formatted with "%.17g" so every finite double
/// round-trips bit-for-bit through dump() -> parse() — resumed campaigns
/// must reproduce aggregates exactly, not approximately.

namespace greennfv {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  ///< null
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}          // NOLINT
  Json(double value) : kind_(Kind::kNumber), number_(value) {}    // NOLINT
  Json(int value) : Json(static_cast<double>(value)) {}           // NOLINT
  Json(const char* value)                                         // NOLINT
      : kind_(Kind::kString), string_(value) {}
  Json(std::string value)                                         // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}

  [[nodiscard]] static Json array();
  [[nodiscard]] static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Scalar accessors. Throw std::invalid_argument on kind mismatch — an
  /// artifact with the wrong shape must fail loudly, not read as 0.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  // --- arrays --------------------------------------------------------------
  void push_back(Json value);
  [[nodiscard]] const std::vector<Json>& elements() const;
  [[nodiscard]] const Json& at(std::size_t index) const;

  // --- objects -------------------------------------------------------------
  /// Inserts or overwrites a member (creation order is emission order).
  void set(const std::string& key, Json value);
  [[nodiscard]] bool has(const std::string& key) const;
  /// Throws std::invalid_argument naming the missing key.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Number of elements (array) or members (object); 0 for scalars.
  [[nodiscard]] std::size_t size() const;

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits the compact single-line form.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws std::invalid_argument with the byte offset of the problem.
  [[nodiscard]] static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace greennfv
