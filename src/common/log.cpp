#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace greennfv {

namespace {

/// Default level, overridable by GREENNFV_LOG_LEVEL so traced/scripted
/// runs silence (or surface) chatter without touching every CLI.
LogLevel initial_level() {
  const char* env = std::getenv("GREENNFV_LOG_LEVEL");
  if (env != nullptr) {
    try {
      return log_level_from_name(env);
    } catch (const std::invalid_argument&) {
      std::fprintf(stderr,
                   "[WARN ] log: GREENNFV_LOG_LEVEL='%s' is not one of "
                   "debug/info/warn/error/off; using warn\n",
                   env);
    }
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& level_flag() {
  static std::atomic<LogLevel> g_level{initial_level()};
  return g_level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  level_flag().store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  return level_flag().load(std::memory_order_relaxed);
}

LogLevel log_level_from_name(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + name +
                              "' (expected debug/info/warn/error/off)");
}

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // Single fprintf call keeps concurrent lines from interleaving.
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(),
               message.c_str());
}

}  // namespace greennfv
