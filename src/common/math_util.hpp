#pragma once

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

/// \file math_util.hpp
/// Small math helpers shared by the hardware model and the RL stack.

namespace greennfv::math_util {

/// Clamps `x` into [lo, hi].
[[nodiscard]] inline double clamp(double x, double lo, double hi) {
  GNFV_ASSERT(lo <= hi, "clamp bounds inverted");
  return std::min(std::max(x, lo), hi);
}

/// Linear interpolation between a and b with t in [0,1].
[[nodiscard]] inline double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

/// Maps x from [in_lo, in_hi] to [out_lo, out_hi], clamping to the range.
[[nodiscard]] inline double remap(double x, double in_lo, double in_hi,
                                  double out_lo, double out_hi) {
  GNFV_ASSERT(in_hi > in_lo, "remap: degenerate input range");
  const double t = clamp((x - in_lo) / (in_hi - in_lo), 0.0, 1.0);
  return lerp(out_lo, out_hi, t);
}

/// Logistic sigmoid.
[[nodiscard]] inline double sigmoid(double x) {
  return 1.0 / (1.0 + std::exp(-x));
}

/// Numerically stable softplus: log(1 + e^x).
[[nodiscard]] inline double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return 0.0;
  return std::log1p(std::exp(x));
}

/// Saturating curve x / (x + k): 0 at x=0, ->1 as x->inf. k is the
/// half-saturation point. Used for cache-pressure and buffer-occupancy
/// response curves in the hardware model.
[[nodiscard]] inline double saturating(double x, double k) {
  GNFV_ASSERT(k > 0.0, "saturating: k must be positive");
  if (x <= 0.0) return 0.0;
  return x / (x + k);
}

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
[[nodiscard]] inline bool approx_equal(double a, double b, double rtol = 1e-9,
                                       double atol = 1e-12) {
  return std::fabs(a - b) <=
         atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

/// Relative difference |a-b| / max(|b|, eps); convenient in tests.
[[nodiscard]] inline double rel_diff(double a, double b, double eps = 1e-12) {
  return std::fabs(a - b) / std::max(std::fabs(b), eps);
}

}  // namespace greennfv::math_util
