#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file timeseries.hpp
/// A named (t, value) series with summary statistics and uniform
/// downsampling — the storage format behind every figure in the paper.

namespace greennfv {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  /// Appends a sample. Timestamps are expected (but not required) to be
  /// non-decreasing; the figure benches always append in order.
  void push(double t, double value);

  [[nodiscard]] std::size_t size() const { return t_.size(); }
  [[nodiscard]] bool empty() const { return t_.empty(); }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<double>& times() const { return t_; }
  [[nodiscard]] const std::vector<double>& values() const { return v_; }

  [[nodiscard]] double front() const;
  [[nodiscard]] double back() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// Mean of the last `n` samples (or all if fewer) — used to report the
  /// converged tail of a training curve.
  [[nodiscard]] double tail_mean(std::size_t n) const;

  /// Returns a series downsampled to at most `max_points` by uniform-stride
  /// bucket averaging. Used to compress 10^4-episode curves for printing.
  [[nodiscard]] TimeSeries downsample(std::size_t max_points) const;

  /// Linear interpolation of the value at time t (clamped at the ends).
  [[nodiscard]] double interpolate(double t) const;

 private:
  std::string name_;
  std::vector<double> t_;
  std::vector<double> v_;
};

}  // namespace greennfv
