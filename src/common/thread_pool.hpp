#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// Work-stealing thread pool for embarrassingly-parallel experiment
/// matrices. Each worker owns a deque; submit() deals tasks round-robin,
/// a worker pops from the front of its own deque and steals from the back
/// of a sibling's when dry — long runs (a trained-roster cell) keep one
/// worker busy while the others drain the short runs around it. The pool
/// imposes no ordering: callers that need determinism index their results
/// (slot per task) and seed each task independently, which is exactly what
/// the campaign runner does — a `--jobs N` sweep is bit-identical to
/// `--jobs 1` because no task reads another's state.

namespace greennfv {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Joins the workers. Tasks still queued are discarded (call wait()
  /// first for a clean drain); tasks already running complete.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe from any thread, including from inside a task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (remaining exceptions are dropped).
  void wait();

  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Runs body(0..count-1) across `jobs` workers and blocks until done.
  /// jobs <= 1 runs inline on the calling thread (no pool, no threads) —
  /// the serial reference a parallel run must be bit-identical to.
  static void parallel_for(std::size_t count, int jobs,
                           const std::function<void(std::size_t)>& body);

  /// Index of the pool worker running the calling thread, or -1 off-pool
  /// (the main thread, including parallel_for's jobs<=1 inline path).
  /// Observability only — task semantics never depend on which worker ran.
  [[nodiscard]] static int current_worker();

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
  };

  void worker_loop(std::size_t self);
  bool try_run_one(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::size_t queued_ = 0;   ///< tasks sitting in some deque
  std::size_t pending_ = 0;  ///< tasks submitted and not yet finished
  std::size_t next_ = 0;     ///< round-robin dealing cursor
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace greennfv
