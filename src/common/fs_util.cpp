#include "common/fs_util.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace greennfv {

namespace fs = std::filesystem;

void ensure_dir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec && !fs::is_directory(path))
    throw std::runtime_error("fs: cannot create directory " + path + ": " +
                             ec.message());
}

const std::string& out_root() {
  static const std::string root = "out";
  return root;
}

std::string out_path(const std::string& relative) {
  const fs::path full = fs::path(out_root()) / relative;
  if (full.has_parent_path()) ensure_dir(full.parent_path().string());
  return full.string();
}

void write_file_atomic(const std::string& path,
                       const std::string& content) {
  const fs::path target(path);
  if (target.has_parent_path()) ensure_dir(target.parent_path().string());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("fs: cannot write " + tmp);
    out << content;
    if (!out) throw std::runtime_error("fs: failed writing " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("fs: cannot rename " + tmp + " -> " + path +
                             ": " + ec.message());
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fs: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

}  // namespace greennfv
