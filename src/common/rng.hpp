#pragma once

#include <array>
#include <cstdint>

/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation.
///
/// Uses xoshiro256** seeded through SplitMix64 — the standard recipe for
/// reproducible parallel simulations. Every component that needs randomness
/// takes a Rng (or a seed) explicitly so experiments can be replayed bit-for-
/// bit; there is no global generator. `Rng::split()` derives statistically
/// independent child streams so each Ape-X actor / traffic source gets its
/// own stream without correlation.

namespace greennfv {

class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (SplitMix64 expansion).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  /// Next raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method to
  /// avoid modulo bias.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached pair).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean / stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Poisson-distributed count with given mean (Knuth for small means,
  /// normal approximation above 64 to stay O(1)).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Derives an independent child generator (jumped stream).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace greennfv
