#include "common/config.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/string_util.hpp"

namespace greennfv {

namespace {

void parse_token(Config& config, std::string_view token) {
  token = trim(token);
  if (token.empty()) return;
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) {
    config.set(std::string(token), "1");
    return;
  }
  config.set(std::string(trim(token.substr(0, eq))),
             std::string(trim(token.substr(eq + 1))));
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) parse_token(config, argv[i]);
  return config;
}

Config Config::from_string(std::string_view text) {
  Config config;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ' ' || text[i] == ',' ||
        text[i] == '\n' || text[i] == '\t') {
      if (i > start) parse_token(config, text.substr(start, i - start));
      start = i + 1;
    }
  }
  return config;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not a number: " + *value);
  }
  return parsed;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    throw std::invalid_argument("Config: key '" + key +
                                "' is not an integer: " + *value);
  }
  return parsed;
}

void Config::check_known(
    const std::vector<std::string>& known_keys,
    const std::vector<std::string>& known_prefixes) const {
  std::string unknown;
  for (const auto& [key, value] : values_) {
    bool found = false;
    for (const auto& known : known_keys) {
      if (key == known) {
        found = true;
        break;
      }
    }
    // Prefixes name indexed families (flow0=, chain12=): the suffix must
    // be a bare index, so "flowz" or "flow_rate" is still a typo.
    for (const auto& prefix : known_prefixes) {
      if (found) break;
      if (key.size() <= prefix.size() ||
          key.compare(0, prefix.size(), prefix) != 0)
        continue;
      found = true;
      for (std::size_t i = prefix.size(); i < key.size(); ++i) {
        if (key[i] < '0' || key[i] > '9') {
          found = false;
          break;
        }
      }
    }
    if (!found) {
      if (!unknown.empty()) unknown += ", ";
      unknown += key;
    }
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("Config: unknown key(s): " + unknown +
                                " (pass help=1 to list accepted keys)");
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  if (*value == "1" || *value == "true" || *value == "yes" || *value == "on")
    return true;
  if (*value == "0" || *value == "false" || *value == "no" || *value == "off")
    return false;
  throw std::invalid_argument("Config: key '" + key +
                              "' is not a boolean: " + *value);
}

}  // namespace greennfv
