#include "common/csv.hpp"

#include <sstream>
#include <stdexcept>

#include "common/assert.hpp"

namespace greennfv {

std::string csv_escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path), width_(columns.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  GNFV_REQUIRE(!columns.empty(), "CsvWriter: need at least one column");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::append(const std::vector<double>& values) {
  GNFV_REQUIRE(values.size() == width_, "CsvWriter: row width mismatch");
  std::ostringstream row;
  row.precision(10);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) row << ',';
    row << values[i];
  }
  out_ << row.str() << '\n';
  ++rows_;
}

void CsvWriter::append_strings(const std::vector<std::string>& cells) {
  GNFV_REQUIRE(cells.size() == width_, "CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::flush() { out_.flush(); }

}  // namespace greennfv
