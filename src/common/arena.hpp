#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/assert.hpp"

/// \file arena.hpp
/// Pool allocation for simulation hot paths. A fleet run churns through
/// millions of tiny, identically-sized nodes (runqueue set nodes, hosted
/// lists); the general-purpose allocator pays lock/metadata costs per
/// node and scatters them across the heap. The Arena hands out memory by
/// bumping a pointer through large chunks and recycles frees through
/// per-size-class freelists, so steady-state churn (chain arrives /
/// departs) allocates nothing new. Memory returns to the OS only when
/// the arena dies — the right trade for engine-lifetime state.

namespace greennfv {

/// Chunked bump allocator with size-class freelists. Not thread-safe —
/// one arena per engine, engines are single-threaded.
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` aligned to `align` (a power of two, <= 64).
  void* allocate(std::size_t bytes, std::size_t align) {
    GNFV_ASSERT(align > 0 && (align & (align - 1)) == 0 && align <= 64,
                "Arena: alignment must be a power of two <= 64");
    if (align > 16) return bump(bytes, align);
    const std::size_t cls = size_class(bytes);
    if (cls < freelists_.size() && freelists_[cls] != nullptr) {
      FreeNode* node = freelists_[cls];
      freelists_[cls] = node->next;
      ++reused_;
      return node;
    }
    return bump(class_bytes(cls), align);
  }

  /// Returns a block to its size-class freelist for reuse. `bytes` and
  /// `align` must match the allocate() call. Over-aligned blocks
  /// (align > 16) bypass the freelists — a recycled block could not
  /// guarantee their alignment — and are reclaimed only when the arena
  /// dies; the hot-path containers never ask for them.
  void deallocate(void* ptr, std::size_t bytes, std::size_t align) {
    if (ptr == nullptr || align > 16) return;
    const std::size_t cls = size_class(bytes);
    if (cls >= freelists_.size()) freelists_.resize(cls + 1, nullptr);
    auto* node = static_cast<FreeNode*>(ptr);
    node->next = freelists_[cls];
    freelists_[cls] = node;
  }

  /// Total bytes requested from the OS (chunk allocations).
  [[nodiscard]] std::size_t reserved_bytes() const { return reserved_; }
  /// Allocations served from a freelist instead of fresh memory.
  [[nodiscard]] std::size_t reuse_count() const { return reused_; }

 private:
  struct FreeNode {
    FreeNode* next = nullptr;
  };

  /// Classes are 16-byte steps: every block can hold a FreeNode, and any
  /// alignment up to 16 comes free because bump addresses are 16-aligned.
  static std::size_t size_class(std::size_t bytes) {
    const std::size_t need =
        bytes < sizeof(FreeNode) ? sizeof(FreeNode) : bytes;
    return (need + 15) / 16;
  }
  static std::size_t class_bytes(std::size_t cls) { return cls * 16; }

  void* bump(std::size_t bytes, std::size_t align) {
    // Align the *address*, not the chunk offset — operator new[] only
    // guarantees 16 bytes, so coarser requests need address arithmetic.
    if (align < 16) align = 16;
    auto aligned_offset = [&](const std::byte* base) {
      const auto addr = reinterpret_cast<std::uintptr_t>(base) + cursor_;
      return ((addr + align - 1) & ~(align - 1)) -
             reinterpret_cast<std::uintptr_t>(base);
    };
    std::size_t offset =
        chunks_.empty() ? 0 : aligned_offset(chunks_.back().get());
    if (chunks_.empty() || offset + bytes > chunk_size_) {
      const std::size_t need = bytes + align;
      const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
      chunks_.push_back(std::make_unique<std::byte[]>(size));
      chunk_size_ = size;
      reserved_ += size;
      cursor_ = 0;
      offset = aligned_offset(chunks_.back().get());
    }
    cursor_ = offset + bytes;
    return chunks_.back().get() + offset;
  }

  std::size_t chunk_bytes_;
  std::size_t chunk_size_ = 0;
  std::size_t cursor_ = 0;
  std::size_t reserved_ = 0;
  std::size_t reused_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<FreeNode*> freelists_;
};

/// Standard-allocator adapter so node-based containers (the runqueues'
/// std::set) draw their tree nodes from an Arena. The arena must outlive
/// every container using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* ptr, std::size_t n) {
    arena_->deallocate(ptr, n * sizeof(T), alignof(T));
  }

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace greennfv
