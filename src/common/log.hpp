#pragma once

#include <sstream>
#include <string>

/// \file log.hpp
/// Minimal leveled logger. GreenNFV components log sparingly (experiments
/// produce their output through the telemetry recorder, not the log), so a
/// simple stderr sink with a global level is sufficient and keeps the
/// library dependency-free.

namespace greennfv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default kWarn so tests stay quiet; the
/// GREENNFV_LOG_LEVEL environment variable, when set to one of
/// debug/info/warn/error/off, overrides the default at first use).
void set_log_level(LogLevel level);

[[nodiscard]] LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off" (the `log_level=` knob and
/// the GREENNFV_LOG_LEVEL env var). Throws std::invalid_argument on
/// anything else.
[[nodiscard]] LogLevel log_level_from_name(const std::string& name);

/// Emits one line to stderr if `level` passes the global threshold.
/// Thread-safe (single write call per line).
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace greennfv

#define GNFV_LOG_DEBUG(component) \
  ::greennfv::detail::LogLine(::greennfv::LogLevel::kDebug, (component))
#define GNFV_LOG_INFO(component) \
  ::greennfv::detail::LogLine(::greennfv::LogLevel::kInfo, (component))
#define GNFV_LOG_WARN(component) \
  ::greennfv::detail::LogLine(::greennfv::LogLevel::kWarn, (component))
#define GNFV_LOG_ERROR(component) \
  ::greennfv::detail::LogLine(::greennfv::LogLevel::kError, (component))
