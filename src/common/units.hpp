#pragma once

#include <cstdint>

/// \file units.hpp
/// Unit conventions and conversion helpers.
///
/// GreenNFV internally uses:
///   * time          — seconds (double) for model math, nanoseconds (int64)
///                     for the virtual clock
///   * data rate     — bits per second (double); helpers expose Gbps
///   * packet rate   — packets per second (double); helpers expose Mpps
///   * energy        — joules (double)
///   * power         — watts (double)
///   * frequency     — hertz (double); helpers expose GHz
///   * memory        — bytes (std::uint64_t); helpers expose MiB
///
/// Keeping everything in SI base units and converting only at API edges
/// avoids the classic Gbps-vs-GBps / MB-vs-MiB mistakes.

namespace greennfv::units {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * 1024ull;
inline constexpr std::uint64_t kGiB = 1024ull * 1024ull * 1024ull;

/// Converts gigabits per second to bits per second.
[[nodiscard]] constexpr double gbps_to_bps(double gbps) { return gbps * kGiga; }

/// Converts bits per second to gigabits per second.
[[nodiscard]] constexpr double bps_to_gbps(double bps) { return bps / kGiga; }

/// Converts millions of packets per second to packets per second.
[[nodiscard]] constexpr double mpps_to_pps(double mpps) { return mpps * kMega; }

/// Converts packets per second to millions of packets per second.
[[nodiscard]] constexpr double pps_to_mpps(double pps) { return pps / kMega; }

/// Converts GHz to Hz.
[[nodiscard]] constexpr double ghz_to_hz(double ghz) { return ghz * kGiga; }

/// Converts Hz to GHz.
[[nodiscard]] constexpr double hz_to_ghz(double hz) { return hz / kGiga; }

/// Converts mebibytes to bytes.
[[nodiscard]] constexpr std::uint64_t mib_to_bytes(double mib) {
  return static_cast<std::uint64_t>(mib * static_cast<double>(kMiB));
}

/// Converts bytes to mebibytes.
[[nodiscard]] constexpr double bytes_to_mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

/// Converts seconds to nanoseconds (virtual-clock resolution).
[[nodiscard]] constexpr std::int64_t sec_to_ns(double sec) {
  return static_cast<std::int64_t>(sec * 1e9);
}

/// Converts nanoseconds to seconds.
[[nodiscard]] constexpr double ns_to_sec(std::int64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

/// Bits on the wire for one Ethernet frame of `payload_bytes` (adds the
/// 20-byte inter-frame gap + preamble that MoonGen accounts for at line rate).
[[nodiscard]] constexpr double wire_bits_per_frame(std::uint32_t frame_bytes) {
  constexpr std::uint32_t kEthOverheadBytes = 20;  // preamble(8) + IFG(12)
  return static_cast<double>(frame_bytes + kEthOverheadBytes) * 8.0;
}

/// Throughput in Gbps for `pps` packets per second of `frame_bytes` frames
/// (payload bits only, matching how the paper reports Gbps).
[[nodiscard]] constexpr double pps_to_gbps(double pps,
                                           std::uint32_t frame_bytes) {
  return pps * static_cast<double>(frame_bytes) * 8.0 / kGiga;
}

/// Inverse of pps_to_gbps.
[[nodiscard]] constexpr double gbps_to_pps(double gbps,
                                           std::uint32_t frame_bytes) {
  return gbps * kGiga / (static_cast<double>(frame_bytes) * 8.0);
}

}  // namespace greennfv::units
