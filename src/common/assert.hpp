#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// Lightweight contract-checking macros used throughout GreenNFV.
///
/// GNFV_REQUIRE checks preconditions (stays on in release builds — config
/// errors must never silently corrupt an experiment), GNFV_ASSERT checks
/// internal invariants (compiled out when NDEBUG && GNFV_NO_ASSERT).

namespace greennfv::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const char* msg) {
  std::fprintf(stderr, "[greennfv] %s failed: %s\n  at %s:%d\n  %s\n", kind,
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace greennfv::detail

#define GNFV_REQUIRE(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::greennfv::detail::contract_failure("precondition", #expr,     \
                                           __FILE__, __LINE__, (msg));\
    }                                                                 \
  } while (false)

#if defined(NDEBUG) && defined(GNFV_NO_ASSERT)
#define GNFV_ASSERT(expr, msg) ((void)0)
#else
#define GNFV_ASSERT(expr, msg)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::greennfv::detail::contract_failure("invariant", #expr,        \
                                           __FILE__, __LINE__, (msg));\
    }                                                                 \
  } while (false)
#endif
