#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

/// \file event_heap.hpp
/// The discrete-event scheduler's priority queue: a binary min-heap over
/// (time, phase, seq) keys. `time` orders events chronologically, `phase`
/// orders events sharing a timestamp (departures before arrivals before
/// consolidation before accounting, in the fleet engine), and `seq` — a
/// monotonically increasing counter stamped at push — makes pop order for
/// equal (time, phase) keys FIFO. That stability is load-bearing: the
/// fleet engine relies on same-window departure events popping in push
/// (= chain id) order to reproduce the window-synchronous engine's sorted
/// departure lists bit-for-bit.

namespace greennfv {

/// Min-heap of `Payload` events keyed by (Time, phase, insertion order).
/// Time needs operator< and ==; Payload needs move construction. Not
/// thread-safe — the simulation loop is single-threaded by design.
template <typename Time, typename Payload>
class EventHeap {
 public:
  struct Entry {
    Time time{};
    int phase = 0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  void push(Time time, int phase, Payload payload) {
    heap_.push_back(
        Entry{time, phase, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// The minimum entry. Undefined when empty (asserted in debug builds).
  [[nodiscard]] const Entry& top() const {
    GNFV_ASSERT(!heap_.empty(), "EventHeap::top on empty heap");
    return heap_.front();
  }

  /// Removes and returns the minimum entry.
  Entry pop() {
    GNFV_ASSERT(!heap_.empty(), "EventHeap::pop on empty heap");
    Entry out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  void reserve(std::size_t n) { heap_.reserve(n); }
  void clear() { heap_.clear(); }

 private:
  static bool less(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.phase != b.phase) return a.phase < b.phase;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * i + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = i;
      if (left < n && less(heap_[left], heap_[smallest])) smallest = left;
      if (right < n && less(heap_[right], heap_[smallest])) smallest = right;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace greennfv
