#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/string_util.hpp"

namespace greennfv {

namespace {

const char* kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "bool";
    case Json::Kind::kNumber: return "number";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray: return "array";
    case Json::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(const char* want, Json::Kind got) {
  throw std::invalid_argument(format("Json: expected %s, have %s", want,
                                     kind_name(got)));
}

void escape_into(const std::string& text, std::string& out) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Recursive-descent parser over a byte range.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing characters after the JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument(
        format("Json: %s (at byte %zu)", what.c_str(), pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(format("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json object = Json::object();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parse_string();
      expect(':');
      object.set(key, parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return object;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json array = Json::array();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return array;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("unknown escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned int code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    // UTF-8 encode the basic-plane code point (artifacts are ASCII; this
    // covers hand-written files too, minus surrogate pairs).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Json parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) fail("expected a value");
    pos_ += static_cast<std::size_t>(end - start);
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::array() {
  Json json;
  json.kind_ = Kind::kArray;
  return json;
}

Json Json::object() {
  Json json;
  json.kind_ = Kind::kObject;
  return json;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  array_.push_back(std::move(value));
}

const std::vector<Json>& Json::elements() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const Json& Json::at(std::size_t index) const {
  const auto& elems = elements();
  if (index >= elems.size())
    throw std::invalid_argument(
        format("Json: index %zu out of range (size %zu)", index,
               elems.size()));
  return elems[index];
}

void Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (auto& [existing, existing_value] : object_) {
    if (existing == key) {
      existing_value = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

bool Json::has(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [existing, unused] : object_)
    if (existing == key) return true;
  return false;
}

const Json& Json::at(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [existing, value] : object_)
    if (existing == key) return value;
  throw std::invalid_argument("Json: missing key '" + key + "'");
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
      ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber:
      if (std::isfinite(number_)) {
        // %.17g round-trips every finite double through strtod exactly.
        out += format("%.17g", number_);
      } else {
        // JSON has no inf/nan; emit null so artifacts stay parseable (the
        // consumer's finiteness checks then catch the bad field).
        out += "null";
      }
      break;
    case Kind::kString: escape_into(string_, out); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        escape_into(object_[i].first, out);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace greennfv
