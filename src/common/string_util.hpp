#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.hpp
/// Formatting helpers for the bench harnesses' human-readable tables.

namespace greennfv {

/// printf-style formatting into std::string.
[[nodiscard]] std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats `value` with `decimals` digits after the point.
[[nodiscard]] std::string format_double(double value, int decimals = 3);

/// Splits on a delimiter; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delim);

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Renders an aligned text table (used by every bench binary to print the
/// rows/series the paper reports). All rows must have `header.size()` cells.
[[nodiscard]] std::string render_table(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows);

}  // namespace greennfv
