#include "topology/topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace greennfv::topology {

std::int64_t kbps_from_gbps(double gbps) {
  return static_cast<std::int64_t>(std::llround(gbps * 1e6));
}

std::int64_t ns_from_us(double us) {
  return static_cast<std::int64_t>(std::llround(us * 1e3));
}

const std::vector<std::string>& TopologySpec::preset_names() {
  static const std::vector<std::string> names = {
      "single-rack", "leaf-spine", "fat-tree", "edge-core"};
  return names;
}

const std::vector<std::string>& TopologySpec::routing_names() {
  static const std::vector<std::string> names = {"shortest", "widest"};
  return names;
}

namespace {

bool contains(const std::vector<std::string>& names,
              const std::string& value) {
  return std::find(names.begin(), names.end(), value) != names.end();
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("topology: " + what);
}

}  // namespace

void validate_spec(const TopologySpec& spec, int num_hosts) {
  if (!contains(TopologySpec::preset_names(), spec.preset)) {
    fail("unknown topology.preset '" + spec.preset + "' (known: " +
         joined(TopologySpec::preset_names()) + ")");
  }
  if (!contains(TopologySpec::routing_names(), spec.routing)) {
    fail("unknown topology.routing '" + spec.routing + "' (known: " +
         joined(TopologySpec::routing_names()) + ")");
  }
  if (spec.hosts_per_leaf < 1) fail("topology.hosts_per_leaf must be >= 1");
  if (spec.spines < 1) fail("topology.spines must be >= 1");
  if (spec.fat_k < 2 || spec.fat_k % 2 != 0) {
    fail("topology.fat_k must be an even integer >= 2");
  }
  if (!(spec.link_gbps > 0.0)) fail("topology.link_gbps must be > 0");
  if (!(spec.core_gbps > 0.0)) fail("topology.core_gbps must be > 0");
  if (spec.link_latency_us < 0.0) fail("topology.link_latency_us must be >= 0");
  if (spec.core_latency_us < 0.0) fail("topology.core_latency_us must be >= 0");
  if (spec.link_idle_w < 0.0) fail("topology.link_idle_w must be >= 0");
  if (spec.link_nj_per_bit < 0.0) fail("topology.link_nj_per_bit must be >= 0");
  if (spec.enabled && spec.preset == "fat-tree") {
    const int capacity = spec.fat_k * spec.fat_k * spec.fat_k / 4;
    if (num_hosts > capacity) {
      fail("fat-tree with fat_k=" + std::to_string(spec.fat_k) +
           " attaches at most " + std::to_string(capacity) +
           " hosts, scenario has " + std::to_string(num_hosts));
    }
  }
}

Topology::Topology(int num_hosts) : num_hosts_(num_hosts) {
  if (num_hosts < 1) fail("a topology needs at least one host");
  adjacency_.resize(static_cast<std::size_t>(num_hosts));
}

int Topology::add_switch() {
  adjacency_.emplace_back();
  return num_vertices() - 1;
}

void Topology::set_ingress(int vertex) {
  if (vertex < 0 || vertex >= num_vertices()) {
    fail("ingress vertex " + std::to_string(vertex) + " out of range");
  }
  ingress_ = vertex;
}

int Topology::add_link(int a, int b, double capacity_gbps,
                       double latency_us, double idle_w,
                       double nj_per_bit) {
  if (a < 0 || a >= num_vertices() || b < 0 || b >= num_vertices()) {
    fail("link endpoint out of range");
  }
  if (a == b) fail("self-loop links are not allowed");
  Link link;
  link.a = a;
  link.b = b;
  link.capacity_kbps = kbps_from_gbps(capacity_gbps);
  link.latency_ns = ns_from_us(latency_us);
  link.idle_w = idle_w;
  link.nj_per_bit = nj_per_bit;
  if (link.capacity_kbps <= 0) fail("link capacity must round to > 0 kbps");
  const int id = num_links();
  links_.push_back(link);
  adjacency_[static_cast<std::size_t>(a)].push_back(id);
  adjacency_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

void Topology::check() const {
  if (ingress_ < 0) fail("no ingress vertex set");
  std::vector<char> seen(static_cast<std::size_t>(num_vertices()), 0);
  std::vector<int> stack = {ingress_};
  seen[static_cast<std::size_t>(ingress_)] = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int link : adjacency(v)) {
      const int u = other_end(link, v);
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        stack.push_back(u);
      }
    }
  }
  for (int h = 0; h < num_hosts_; ++h) {
    if (!seen[static_cast<std::size_t>(h)]) {
      fail("host " + std::to_string(h) + " unreachable from ingress");
    }
  }
}

namespace {

// single-rack: one ToR switch doubling as the ingress; every host hangs
// off it with an edge link. The degenerate fabric — one hop, pure
// shared-capacity contention.
Topology build_single_rack(const TopologySpec& s, int hosts) {
  Topology t(hosts);
  const int tor = t.add_switch();
  t.set_ingress(tor);
  for (int h = 0; h < hosts; ++h) {
    t.add_link(h, tor, s.link_gbps, s.link_latency_us, s.link_idle_w,
               s.link_nj_per_bit);
  }
  return t;
}

// leaf-spine: ceil(hosts/hosts_per_leaf) leaves, each connected to every
// spine; the ingress gateway hangs off every spine, so all host paths are
// 3 hops (gateway-spine, spine-leaf, leaf-host) and symmetric.
Topology build_leaf_spine(const TopologySpec& s, int hosts) {
  Topology t(hosts);
  const int leaves = (hosts + s.hosts_per_leaf - 1) / s.hosts_per_leaf;
  std::vector<int> leaf(static_cast<std::size_t>(leaves));
  std::vector<int> spine(static_cast<std::size_t>(s.spines));
  for (int l = 0; l < leaves; ++l) leaf[static_cast<std::size_t>(l)] = t.add_switch();
  for (int sp = 0; sp < s.spines; ++sp) {
    spine[static_cast<std::size_t>(sp)] = t.add_switch();
  }
  const int gateway = t.add_switch();
  t.set_ingress(gateway);
  for (int h = 0; h < hosts; ++h) {
    t.add_link(h, leaf[static_cast<std::size_t>(h / s.hosts_per_leaf)],
               s.link_gbps, s.link_latency_us, s.link_idle_w,
               s.link_nj_per_bit);
  }
  for (int l = 0; l < leaves; ++l) {
    for (int sp = 0; sp < s.spines; ++sp) {
      t.add_link(leaf[static_cast<std::size_t>(l)],
                 spine[static_cast<std::size_t>(sp)], s.core_gbps,
                 s.core_latency_us, s.link_idle_w, s.link_nj_per_bit);
    }
  }
  for (int sp = 0; sp < s.spines; ++sp) {
    t.add_link(gateway, spine[static_cast<std::size_t>(sp)], s.core_gbps,
               s.core_latency_us, s.link_idle_w, s.link_nj_per_bit);
  }
  return t;
}

// fat-tree(k): k pods of k/2 edge + k/2 aggregation switches, (k/2)^2
// cores, k^2/4 * k hosts max. Hosts fill pods in order; the ingress
// gateway attaches to every core switch.
Topology build_fat_tree(const TopologySpec& s, int hosts) {
  const int k = s.fat_k;
  const int half = k / 2;
  const int capacity = k * k * k / 4;
  if (hosts > capacity) {
    fail("fat-tree with fat_k=" + std::to_string(k) + " attaches at most " +
         std::to_string(capacity) + " hosts, got " + std::to_string(hosts));
  }
  Topology t(hosts);
  // Pods are only instantiated as needed to attach `hosts` hosts.
  const int hosts_per_pod = half * half;
  const int pods = std::min(k, (hosts + hosts_per_pod - 1) / hosts_per_pod);
  std::vector<std::vector<int>> edge(static_cast<std::size_t>(pods));
  std::vector<std::vector<int>> agg(static_cast<std::size_t>(pods));
  for (int p = 0; p < pods; ++p) {
    for (int e = 0; e < half; ++e) {
      edge[static_cast<std::size_t>(p)].push_back(t.add_switch());
    }
    for (int a = 0; a < half; ++a) {
      agg[static_cast<std::size_t>(p)].push_back(t.add_switch());
    }
  }
  std::vector<int> core(static_cast<std::size_t>(half * half));
  for (int c = 0; c < half * half; ++c) {
    core[static_cast<std::size_t>(c)] = t.add_switch();
  }
  const int gateway = t.add_switch();
  t.set_ingress(gateway);
  for (int h = 0; h < hosts; ++h) {
    const int p = h / hosts_per_pod;
    const int e = (h % hosts_per_pod) / half;
    t.add_link(h, edge[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)],
               s.link_gbps, s.link_latency_us, s.link_idle_w,
               s.link_nj_per_bit);
  }
  for (int p = 0; p < pods; ++p) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        t.add_link(edge[static_cast<std::size_t>(p)][static_cast<std::size_t>(e)],
                   agg[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)],
                   s.core_gbps, s.core_latency_us, s.link_idle_w,
                   s.link_nj_per_bit);
      }
    }
  }
  // Aggregation switch a of each pod uplinks to cores [a*half, (a+1)*half).
  for (int p = 0; p < pods; ++p) {
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        t.add_link(agg[static_cast<std::size_t>(p)][static_cast<std::size_t>(a)],
                   core[static_cast<std::size_t>(a * half + c)], s.core_gbps,
                   s.core_latency_us, s.link_idle_w, s.link_nj_per_bit);
      }
    }
  }
  for (int c = 0; c < half * half; ++c) {
    t.add_link(gateway, core[static_cast<std::size_t>(c)], s.core_gbps,
               s.core_latency_us, s.link_idle_w, s.link_nj_per_bit);
  }
  return t;
}

// edge-core: ceil(hosts/hosts_per_leaf) edge switches, `spines` cores in
// a full mesh, each edge dual-homed to cores e%C and (e+1)%C — but the
// ingress gateway attaches to core 0 ONLY, so hop counts and contention
// are deliberately heterogeneous across hosts (the geometry where
// topology-aware placement visibly beats network-blind bestfit).
Topology build_edge_core(const TopologySpec& s, int hosts) {
  Topology t(hosts);
  const int edges = (hosts + s.hosts_per_leaf - 1) / s.hosts_per_leaf;
  const int cores = s.spines;
  std::vector<int> edge(static_cast<std::size_t>(edges));
  std::vector<int> core(static_cast<std::size_t>(cores));
  for (int e = 0; e < edges; ++e) edge[static_cast<std::size_t>(e)] = t.add_switch();
  for (int c = 0; c < cores; ++c) core[static_cast<std::size_t>(c)] = t.add_switch();
  const int gateway = t.add_switch();
  t.set_ingress(gateway);
  for (int h = 0; h < hosts; ++h) {
    t.add_link(h, edge[static_cast<std::size_t>(h / s.hosts_per_leaf)],
               s.link_gbps, s.link_latency_us, s.link_idle_w,
               s.link_nj_per_bit);
  }
  for (int e = 0; e < edges; ++e) {
    t.add_link(edge[static_cast<std::size_t>(e)],
               core[static_cast<std::size_t>(e % cores)], s.core_gbps,
               s.core_latency_us, s.link_idle_w, s.link_nj_per_bit);
    if (cores > 1 && (e + 1) % cores != e % cores) {
      t.add_link(edge[static_cast<std::size_t>(e)],
                 core[static_cast<std::size_t>((e + 1) % cores)], s.core_gbps,
                 s.core_latency_us, s.link_idle_w, s.link_nj_per_bit);
    }
  }
  for (int c1 = 0; c1 < cores; ++c1) {
    for (int c2 = c1 + 1; c2 < cores; ++c2) {
      t.add_link(core[static_cast<std::size_t>(c1)],
                 core[static_cast<std::size_t>(c2)], s.core_gbps,
                 s.core_latency_us, s.link_idle_w, s.link_nj_per_bit);
    }
  }
  t.add_link(gateway, core[0], s.core_gbps, s.core_latency_us, s.link_idle_w,
             s.link_nj_per_bit);
  return t;
}

}  // namespace

Topology Topology::build(const TopologySpec& spec, int num_hosts) {
  validate_spec(spec, num_hosts);
  Topology t = [&] {
    if (spec.preset == "single-rack") return build_single_rack(spec, num_hosts);
    if (spec.preset == "leaf-spine") return build_leaf_spine(spec, num_hosts);
    if (spec.preset == "fat-tree") return build_fat_tree(spec, num_hosts);
    return build_edge_core(spec, num_hosts);
  }();
  t.check();
  return t;
}

}  // namespace greennfv::topology
