#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file topology.hpp
/// The inter-node network model: a graph of hosting nodes, switches, and
/// capacitated links that the fleet orchestrator routes chain traffic
/// over. Until this layer existed, chains consumed node cores only — the
/// wire between nodes was free, so placement policies that scatter a
/// chain across the cluster paid nothing for it. A `Topology` carries
/// per-link capacity, latency, and an idle + per-bit energy model; preset
/// generators build the canonical datacenter fabrics (fat-tree,
/// leaf-spine, edge-core, and the degenerate single-rack) sized to the
/// fleet's node count. Routing and committed-bandwidth accounting live in
/// `PathTable` (path_table.hpp).
///
/// All bandwidth accounting downstream runs in integral kilobits/s and
/// all latency in integral nanoseconds — exact arithmetic, so committed
/// bandwidth returns to exactly zero when every chain departs and both
/// fleet engines agree bit-for-bit regardless of mutation order.

namespace greennfv::topology {

/// The `topology.*` scenario key family: preset + scale knobs + link
/// capacity/latency/energy coefficients. Serialized, validated, and
/// help-listed by `scenario::ScenarioSpec` exactly like `fleet.*`.
struct TopologySpec {
  bool enabled = false;  ///< topology.enabled (0 = wire is free, as before)
  /// Fabric preset: single-rack | leaf-spine | fat-tree | edge-core.
  std::string preset = "leaf-spine";  ///< topology.preset
  /// Path selection: shortest (min hops, widest tie-break) | widest
  /// (max bottleneck free capacity).
  std::string routing = "shortest";  ///< topology.routing
  /// Hosts attached per leaf/edge switch (leaf-spine, edge-core).
  int hosts_per_leaf = 4;  ///< topology.hosts_per_leaf
  /// Spine count (leaf-spine) / core count (edge-core).
  int spines = 2;  ///< topology.spines
  /// Fat-tree arity k (even, >= 2; capacity k^3/4 hosts).
  int fat_k = 4;  ///< topology.fat_k
  /// Host-to-switch (edge) link capacity / latency.
  double link_gbps = 40.0;       ///< topology.link_gbps
  double link_latency_us = 5.0;  ///< topology.link_latency_us
  /// Switch-to-switch and gateway (core) link capacity / latency.
  double core_gbps = 100.0;       ///< topology.core_gbps
  double core_latency_us = 10.0;  ///< topology.core_latency_us
  /// Per-link energy model: constant idle draw plus energy per bit
  /// carried (nanojoules/bit — ~0.5 nJ/bit is switch-ASIC territory).
  double link_idle_w = 2.0;        ///< topology.link_idle_w
  double link_nj_per_bit = 0.5;    ///< topology.link_nj_per_bit

  /// The preset/routing names `build` accepts — mirrored into scenario
  /// validation so a typo'd topology.preset fails at campaign expansion,
  /// before anything runs.
  [[nodiscard]] static const std::vector<std::string>& preset_names();
  [[nodiscard]] static const std::vector<std::string>& routing_names();
};

/// Throws std::invalid_argument naming the offending field. Name and
/// numeric checks always run (so sweeps fail fast even on disabled
/// cells); the preset-capacity fit check (can this fabric attach
/// `num_hosts` hosts?) only binds when `spec.enabled`.
void validate_spec(const TopologySpec& spec, int num_hosts);

/// One undirected link. Capacity is integral kbps and latency integral
/// ns — the exact units every accounting path downstream uses.
struct Link {
  int a = 0;  ///< vertex endpoint
  int b = 0;  ///< vertex endpoint
  std::int64_t capacity_kbps = 0;
  std::int64_t latency_ns = 0;
  double idle_w = 0.0;
  double nj_per_bit = 0.0;
};

/// An immutable-after-build network graph. Vertices 0..num_hosts-1 ARE
/// the fleet's hosting nodes (vertex id == node id); switches and the
/// ingress gateway follow. Construction is fully deterministic: vertex
/// and link ids depend only on the spec and host count.
class Topology {
 public:
  /// A bare graph with `num_hosts` host vertices and nothing else —
  /// the seam tests and custom fabrics build through.
  explicit Topology(int num_hosts);

  /// Builds the preset fabric named by `spec` (validates first).
  [[nodiscard]] static Topology build(const TopologySpec& spec,
                                      int num_hosts);

  /// Adds a switch vertex; returns its id.
  int add_switch();
  /// Marks `vertex` as the traffic ingress (where every chain's flows
  /// enter the fabric).
  void set_ingress(int vertex);
  /// Adds an undirected link; returns its id. Capacity/latency are
  /// quantized to kbps/ns here, once.
  int add_link(int a, int b, double capacity_gbps, double latency_us,
               double idle_w, double nj_per_bit);

  [[nodiscard]] int num_hosts() const { return num_hosts_; }
  [[nodiscard]] int num_switches() const {
    return num_vertices() - num_hosts_;
  }
  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(adjacency_.size());
  }
  [[nodiscard]] int num_links() const {
    return static_cast<int>(links_.size());
  }
  [[nodiscard]] int ingress() const { return ingress_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  /// Link ids incident to `vertex`, ascending (relaxation order — part of
  /// the routing determinism contract).
  [[nodiscard]] const std::vector<int>& adjacency(int vertex) const {
    return adjacency_[static_cast<std::size_t>(vertex)];
  }
  /// The link's endpoint that is not `from`.
  [[nodiscard]] int other_end(int link, int from) const {
    const Link& l = links_[static_cast<std::size_t>(link)];
    return l.a == from ? l.b : l.a;
  }

  /// Throws std::invalid_argument unless an ingress is set and every
  /// host is reachable from it.
  void check() const;

 private:
  int num_hosts_;
  int ingress_ = -1;
  std::vector<Link> links_;
  std::vector<std::vector<int>> adjacency_;
};

/// Quantization helpers — the single place gbps/us become integers.
[[nodiscard]] std::int64_t kbps_from_gbps(double gbps);
[[nodiscard]] std::int64_t ns_from_us(double us);

}  // namespace greennfv::topology
