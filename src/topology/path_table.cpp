#include "topology/path_table.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace greennfv::topology {

Routing routing_from_name(const std::string& name) {
  if (name == "shortest") return Routing::kShortest;
  if (name == "widest") return Routing::kWidest;
  throw std::invalid_argument("topology: unknown routing '" + name + "'");
}

PathTable::PathTable(const Topology& topo, Routing routing,
                     std::int64_t latency_budget_ns)
    : topo_(topo),
      routing_(routing),
      latency_budget_ns_(latency_budget_ns),
      committed_(static_cast<std::size_t>(topo.num_links()), 0),
      failed_(static_cast<std::size_t>(topo.num_links()), 0) {}

PathTable::Entry& PathTable::entry(int chain) {
  if (chain >= static_cast<int>(chains_.size())) {
    chains_.resize(static_cast<std::size_t>(chain) + 1);
  }
  return chains_[static_cast<std::size_t>(chain)];
}

bool PathTable::chain_active(int chain) const {
  return chain >= 0 && chain < static_cast<int>(chains_.size()) &&
         chains_[static_cast<std::size_t>(chain)].active;
}

int PathTable::chain_hops(int chain) const {
  return static_cast<int>(chain_links(chain).size());
}

std::int64_t PathTable::chain_latency_ns(int chain) const {
  return chains_[static_cast<std::size_t>(chain)].latency_ns;
}

const std::vector<int>& PathTable::chain_links(int chain) const {
  return chains_[static_cast<std::size_t>(chain)].links;
}

void PathTable::route_labels(std::int64_t demand_kbps, int exclude_chain,
                             std::vector<int>& hops,
                             std::vector<std::int64_t>& bneck,
                             std::vector<int>& parent) const {
  static auto& c_passes = telemetry::metrics::counter("net.route_passes");
  c_passes.add();
  const int n = topo_.num_vertices();
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  hops.assign(static_cast<std::size_t>(n), std::numeric_limits<int>::max());
  bneck.assign(static_cast<std::size_t>(n), 0);
  parent.assign(static_cast<std::size_t>(n), -1);
  std::vector<char> done(static_cast<std::size_t>(n), 0);

  // The excluded chain's own commitment counts as free capacity (the
  // re-route case: its links would be released before re-committing).
  std::vector<std::int64_t> extra;
  const Entry* excluded = nullptr;
  if (exclude_chain >= 0 && chain_active(exclude_chain)) {
    excluded = &chains_[static_cast<std::size_t>(exclude_chain)];
  }
  auto free_kbps = [&](int link) {
    std::int64_t used = committed_[static_cast<std::size_t>(link)];
    if (excluded != nullptr) {
      for (int l : excluded->links) {
        if (l == link) {
          used -= excluded->demand_kbps;
          break;
        }
      }
    }
    const Link& l = topo_.links()[static_cast<std::size_t>(link)];
    return l.capacity_kbps - used;
  };

  const int src = topo_.ingress();
  hops[static_cast<std::size_t>(src)] = 0;
  bneck[static_cast<std::size_t>(src)] = kInf;

  // Label-setting Dijkstra, O(V^2 + E): deterministic vertex selection by
  // (label, vertex id) — the same winner every run, on every engine.
  // "better" is lexicographic per routing mode; both orderings keep the
  // dominance property (extending the selected label never improves a
  // settled vertex), so the primary objective is exact.
  auto better = [&](int ha, std::int64_t ba, int hb, std::int64_t bb) {
    if (routing_ == Routing::kShortest) {
      if (ha != hb) return ha < hb;
      return ba > bb;
    }
    if (ba != bb) return ba > bb;
    return ha < hb;
  };

  for (int round = 0; round < n; ++round) {
    int u = -1;
    for (int v = 0; v < n; ++v) {
      if (done[static_cast<std::size_t>(v)]) continue;
      if (hops[static_cast<std::size_t>(v)] ==
          std::numeric_limits<int>::max()) {
        continue;
      }
      if (u < 0 || better(hops[static_cast<std::size_t>(v)],
                          bneck[static_cast<std::size_t>(v)],
                          hops[static_cast<std::size_t>(u)],
                          bneck[static_cast<std::size_t>(u)])) {
        u = v;
      }
    }
    if (u < 0) break;
    done[static_cast<std::size_t>(u)] = 1;
    for (int link : topo_.adjacency(u)) {
      if (failed_[static_cast<std::size_t>(link)]) continue;  // down link
      const std::int64_t free = free_kbps(link);
      if (free < demand_kbps) continue;  // infeasible link: absent
      const int v = topo_.other_end(link, u);
      if (done[static_cast<std::size_t>(v)]) continue;
      const int nh = hops[static_cast<std::size_t>(u)] + 1;
      const std::int64_t nb =
          std::min(bneck[static_cast<std::size_t>(u)], free);
      if (parent[static_cast<std::size_t>(v)] < 0 ||
          better(nh, nb, hops[static_cast<std::size_t>(v)],
                 bneck[static_cast<std::size_t>(v)])) {
        hops[static_cast<std::size_t>(v)] = nh;
        bneck[static_cast<std::size_t>(v)] = nb;
        parent[static_cast<std::size_t>(v)] = link;
      }
    }
  }
}

PathView PathTable::view_from_labels(
    int host, const std::vector<int>& hops,
    const std::vector<std::int64_t>& bneck,
    const std::vector<int>& parent) const {
  PathView view;
  if (host == topo_.ingress()) {
    view.feasible = true;
    view.bottleneck_kbps = std::numeric_limits<std::int64_t>::max();
    return view;
  }
  if (parent[static_cast<std::size_t>(host)] < 0) return view;
  view.feasible = true;
  view.hops = hops[static_cast<std::size_t>(host)];
  view.bottleneck_kbps = bneck[static_cast<std::size_t>(host)];
  for (int v = host; v != topo_.ingress();) {
    const int link = parent[static_cast<std::size_t>(v)];
    view.latency_ns +=
        topo_.links()[static_cast<std::size_t>(link)].latency_ns;
    v = topo_.other_end(link, v);
  }
  return view;
}

PathView PathTable::preview(int host, double gbps) const {
  std::vector<int> hops;
  std::vector<std::int64_t> bneck;
  std::vector<int> parent;
  route_labels(kbps_from_gbps(gbps), -1, hops, bneck, parent);
  return view_from_labels(host, hops, bneck, parent);
}

std::vector<PathView> PathTable::preview_hosts(double gbps) const {
  GNFV_TRACE_SPAN("net/preview_hosts");
  std::vector<int> hops;
  std::vector<std::int64_t> bneck;
  std::vector<int> parent;
  route_labels(kbps_from_gbps(gbps), -1, hops, bneck, parent);
  std::vector<PathView> views;
  views.reserve(static_cast<std::size_t>(topo_.num_hosts()));
  for (int h = 0; h < topo_.num_hosts(); ++h) {
    views.push_back(view_from_labels(h, hops, bneck, parent));
  }
  return views;
}

void PathTable::commit_entry(int chain, std::int64_t demand_kbps,
                             std::vector<int> links) {
  static auto& c_commits = telemetry::metrics::counter("net.commits");
  c_commits.add();
  Entry& e = entry(chain);
  e.active = true;
  e.demand_kbps = demand_kbps;
  e.links = std::move(links);
  e.latency_ns = 0;
  for (int link : e.links) {
    committed_[static_cast<std::size_t>(link)] += demand_kbps;
    e.latency_ns += topo_.links()[static_cast<std::size_t>(link)].latency_ns;
  }
  ++active_chains_;
  active_path_latency_ns_ += e.latency_ns;
  if (latency_budget_ns_ > 0 && e.latency_ns > latency_budget_ns_) {
    ++active_latency_violations_;
  }
}

void PathTable::release_entry(Entry& e) {
  static auto& c_releases = telemetry::metrics::counter("net.releases");
  c_releases.add();
  for (int link : e.links) {
    committed_[static_cast<std::size_t>(link)] -= e.demand_kbps;
  }
  --active_chains_;
  active_path_latency_ns_ -= e.latency_ns;
  if (latency_budget_ns_ > 0 && e.latency_ns > latency_budget_ns_) {
    --active_latency_violations_;
  }
  e.active = false;
  e.links.clear();
  e.demand_kbps = 0;
  e.latency_ns = 0;
}

bool PathTable::commit_chain(int chain, int host, double gbps) {
  GNFV_TRACE_SPAN("net/commit", static_cast<std::uint64_t>(chain));
  const std::int64_t demand = kbps_from_gbps(gbps);
  std::vector<int> hops;
  std::vector<std::int64_t> bneck;
  std::vector<int> parent;
  route_labels(demand, -1, hops, bneck, parent);
  if (host != topo_.ingress() &&
      parent[static_cast<std::size_t>(host)] < 0) {
    return false;
  }
  std::vector<int> links;
  for (int v = host; v != topo_.ingress();) {
    const int link = parent[static_cast<std::size_t>(v)];
    links.push_back(link);
    v = topo_.other_end(link, v);
  }
  commit_entry(chain, demand, std::move(links));
  return true;
}

void PathTable::release_chain(int chain) {
  if (!chain_active(chain)) return;
  release_entry(chains_[static_cast<std::size_t>(chain)]);
}

bool PathTable::try_move(int chain, int host) {
  GNFV_TRACE_SPAN("net/try_move", static_cast<std::uint64_t>(chain));
  static auto& c_moves_failed =
      telemetry::metrics::counter("net.moves_failed");
  if (!chain_active(chain)) return false;
  Entry& e = chains_[static_cast<std::size_t>(chain)];
  std::vector<int> hops;
  std::vector<std::int64_t> bneck;
  std::vector<int> parent;
  route_labels(e.demand_kbps, chain, hops, bneck, parent);
  if (host != topo_.ingress() &&
      parent[static_cast<std::size_t>(host)] < 0) {
    c_moves_failed.add();
    return false;  // state untouched: the old commitment never left
  }
  std::vector<int> links;
  for (int v = host; v != topo_.ingress();) {
    const int link = parent[static_cast<std::size_t>(v)];
    links.push_back(link);
    v = topo_.other_end(link, v);
  }
  const std::int64_t demand = e.demand_kbps;
  release_entry(e);
  commit_entry(chain, demand, std::move(links));
  return true;
}

std::vector<int> PathTable::fail_link(int link) {
  auto& flag = failed_[static_cast<std::size_t>(link)];
  GNFV_REQUIRE(flag == 0, "PathTable::fail_link: link already failed");
  flag = 1;
  std::vector<int> riders;
  for (std::size_t chain = 0; chain < chains_.size(); ++chain) {
    const Entry& e = chains_[chain];
    if (!e.active) continue;
    for (const int l : e.links) {
      if (l == link) {
        riders.push_back(static_cast<int>(chain));
        break;
      }
    }
  }
  return riders;
}

void PathTable::repair_link(int link) {
  auto& flag = failed_[static_cast<std::size_t>(link)];
  GNFV_REQUIRE(flag != 0, "PathTable::repair_link: link is up");
  flag = 0;
}

double PathTable::window_link_energy_j(double window_s) const {
  double energy = 0.0;
  for (std::size_t i = 0; i < committed_.size(); ++i) {
    if (failed_[i]) continue;  // a failed link is powered off
    const Link& l = topo_.links()[i];
    // idle draw for the whole window + nJ/bit over carried bits:
    // committed kbps * 1e3 bit/s * window_s * nj * 1e-9 J.
    energy += l.idle_w * window_s;
    energy += l.nj_per_bit * 1e-6 *
              static_cast<double>(committed_[i]) * window_s;
  }
  return energy;
}

}  // namespace greennfv::topology
