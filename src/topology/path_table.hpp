#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

/// \file path_table.hpp
/// Routing + committed-bandwidth accounting over a `Topology`. The fleet
/// engines consult one `PathTable` per timeline build: on arrival a
/// chain's offered rate is routed ingress→host and committed on every
/// link of the chosen path; on departure it is released; on migration
/// `try_move` atomically re-routes or leaves the table untouched.
///
/// Everything here is exact integer arithmetic (kbps / ns), so the state
/// after any commit/release interleaving depends only on the *set* of
/// active chains — never on mutation order. That is what lets the
/// discrete-event fleet engine and the window-synchronous reference
/// engine, which release departures in different orders, stay
/// bit-identical.

namespace greennfv::topology {

enum class Routing {
  kShortest,  ///< min hops, widest bottleneck among min-hop paths
  kWidest,    ///< max bottleneck free capacity, fewest hops among those
};

[[nodiscard]] Routing routing_from_name(const std::string& name);

/// What a routing query reports about the best feasible path.
struct PathView {
  bool feasible = false;
  int hops = 0;
  std::int64_t latency_ns = 0;
  std::int64_t bottleneck_kbps = 0;  ///< min free capacity along the path
};

class PathTable {
 public:
  /// `latency_budget_ns <= 0` disables latency-violation accounting.
  PathTable(const Topology& topo, Routing routing,
            std::int64_t latency_budget_ns);

  /// Best feasible path ingress→host for a `gbps` demand under the
  /// current commitments. Does not mutate state.
  [[nodiscard]] PathView preview(int host, double gbps) const;
  /// One routing pass, a `PathView` per host — what a placement policy
  /// scans when scoring every candidate node.
  [[nodiscard]] std::vector<PathView> preview_hosts(double gbps) const;

  /// Routes and commits `chain` to `host`; false (state unchanged) if no
  /// feasible path exists.
  bool commit_chain(int chain, int host, double gbps);
  /// Releases every link the chain holds. No-op for unknown chains.
  void release_chain(int chain);
  /// Re-routes an active chain to `host`: releases its links, routes
  /// against the freed state, commits the new path. On infeasibility the
  /// original commitment is restored exactly and false is returned.
  bool try_move(int chain, int host);

  /// Fault injection: marks `link` failed and returns the ascending ids
  /// of the active chains whose committed path rides it — the caller
  /// re-routes or evicts each one. Failed links are absent from routing
  /// and draw no energy until repair_link() brings them back. The chains'
  /// commitments are NOT released here (release/try_move does that per
  /// chain), so the caller can process victims one at a time.
  [[nodiscard]] std::vector<int> fail_link(int link);
  void repair_link(int link);
  [[nodiscard]] bool link_failed(int link) const {
    return failed_[static_cast<std::size_t>(link)] != 0;
  }

  /// Per-window link energy: every built link idles at idle_w for the
  /// whole window, and carried bits (committed rate × window) cost
  /// nj_per_bit each. Summed in ascending link order — fixed FP order.
  /// Failed links are powered off: they contribute nothing while down.
  [[nodiscard]] double window_link_energy_j(double window_s) const;

  [[nodiscard]] std::int64_t committed_kbps(int link) const {
    return committed_[static_cast<std::size_t>(link)];
  }
  [[nodiscard]] bool chain_active(int chain) const;
  [[nodiscard]] int chain_hops(int chain) const;
  [[nodiscard]] std::int64_t chain_latency_ns(int chain) const;
  [[nodiscard]] const std::vector<int>& chain_links(int chain) const;

  /// Exact running counters the account phase reads per window.
  [[nodiscard]] std::int64_t active_chains() const { return active_chains_; }
  [[nodiscard]] std::int64_t active_latency_violations() const {
    return active_latency_violations_;
  }
  [[nodiscard]] std::int64_t active_path_latency_ns() const {
    return active_path_latency_ns_;
  }
  [[nodiscard]] std::int64_t latency_budget_ns() const {
    return latency_budget_ns_;
  }

  [[nodiscard]] const Topology& topo() const { return topo_; }

 private:
  struct Entry {
    bool active = false;
    std::int64_t demand_kbps = 0;
    std::int64_t latency_ns = 0;
    std::vector<int> links;
  };

  /// Dijkstra label-setting pass from the ingress; fills per-vertex
  /// (hops, bottleneck, parent-link) labels for a `demand_kbps` flow,
  /// treating links with free < demand as absent. `exclude_chain >= 0`
  /// ignores that chain's own commitment (the try_move re-route).
  void route_labels(std::int64_t demand_kbps, int exclude_chain,
                    std::vector<int>& hops, std::vector<std::int64_t>& bneck,
                    std::vector<int>& parent) const;
  [[nodiscard]] PathView view_from_labels(
      int host, const std::vector<int>& hops,
      const std::vector<std::int64_t>& bneck,
      const std::vector<int>& parent) const;
  void commit_entry(int chain, std::int64_t demand_kbps,
                    std::vector<int> links);
  void release_entry(Entry& e);
  Entry& entry(int chain);

  const Topology& topo_;
  Routing routing_;
  std::int64_t latency_budget_ns_;
  std::vector<std::int64_t> committed_;  ///< per link, kbps
  std::vector<char> failed_;             ///< per link, fault injection
  std::vector<Entry> chains_;            ///< indexed by chain id
  std::int64_t active_chains_ = 0;
  std::int64_t active_latency_violations_ = 0;
  std::int64_t active_path_latency_ns_ = 0;
};

}  // namespace greennfv::topology
