#include "cluster/cluster.hpp"

#include "common/assert.hpp"

namespace greennfv::cluster {

Cluster::Cluster(int num_nodes, const hwmodel::NodeSpec& spec,
                 nfvsim::SchedMode mode)
    : spec_(spec) {
  GNFV_REQUIRE(num_nodes >= 1, "Cluster: need >= 1 node");
  for (int n = 0; n < num_nodes; ++n) {
    nodes_.push_back(std::make_unique<nfvsim::OnvmController>(spec, mode));
  }
}

Cluster::Deployed Cluster::deploy_chain(
    const std::string& name, const std::vector<std::string>& nfs,
    int node) {
  GNFV_REQUIRE(node >= 0 && static_cast<std::size_t>(node) < nodes_.size(),
               "deploy_chain: bad node index");
  GNFV_REQUIRE(engines_.empty(),
               "deploy_chain: traffic already attached; deploy first");
  Deployed deployed;
  deployed.node = node;
  deployed.chain =
      nodes_[static_cast<std::size_t>(node)]->add_chain(name, nfs);
  return deployed;
}

void Cluster::attach_traffic(
    const std::vector<std::vector<traffic::FlowSpec>>& per_node_flows,
    std::uint64_t seed) {
  GNFV_REQUIRE(per_node_flows.size() == nodes_.size(),
               "attach_traffic: one flow set per node required");
  GNFV_REQUIRE(engines_.empty(), "attach_traffic: already attached");
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    GNFV_REQUIRE(nodes_[n]->num_chains() > 0,
                 "attach_traffic: node has no chains");
    engines_.push_back(std::make_unique<nfvsim::AnalyticEngine>(
        *nodes_[n],
        traffic::TrafficGenerator(per_node_flows[n],
                                  seed + 0x9E37ull * (n + 1))));
  }
}

void Cluster::apply_knobs_everywhere(const nfvsim::ChainKnobs& knobs) {
  for (auto& node : nodes_) {
    for (std::size_t c = 0; c < node->num_chains(); ++c) {
      (void)node->apply_knobs(c, knobs);
    }
  }
}

ClusterMetrics Cluster::step(double dt) {
  GNFV_REQUIRE(!engines_.empty(), "step: attach_traffic first");
  ClusterMetrics metrics;
  metrics.node_gbps.resize(engines_.size());
  metrics.node_power_w.resize(engines_.size());
  for (std::size_t n = 0; n < engines_.size(); ++n) {
    const auto window = engines_[n]->step(dt);
    metrics.node_gbps[n] = window.total_gbps();
    metrics.node_power_w[n] = window.power_w();
    metrics.total_gbps += window.total_gbps();
    metrics.total_power_w += window.power_w();
    metrics.total_energy_j += window.energy_j;
  }
  return metrics;
}

ClusterMetrics Cluster::run(int windows, double dt) {
  GNFV_REQUIRE(windows > 0, "run: windows must be positive");
  ClusterMetrics aggregate;
  aggregate.node_gbps.assign(engines_.size(), 0.0);
  aggregate.node_power_w.assign(engines_.size(), 0.0);
  for (int w = 0; w < windows; ++w) {
    const ClusterMetrics m = step(dt);
    aggregate.total_gbps += m.total_gbps / windows;
    aggregate.total_power_w += m.total_power_w / windows;
    aggregate.total_energy_j += m.total_energy_j;
    for (std::size_t n = 0; n < engines_.size(); ++n) {
      aggregate.node_gbps[n] += m.node_gbps[n] / windows;
      aggregate.node_power_w[n] += m.node_power_w[n] / windows;
    }
  }
  return aggregate;
}

}  // namespace greennfv::cluster
