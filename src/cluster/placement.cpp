#include "cluster/placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/assert.hpp"

namespace greennfv::cluster {

std::string to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFitDecreasing: return "first-fit-decreasing";
    case PlacementPolicy::kLeastLoaded:        return "least-loaded";
    case PlacementPolicy::kEnergyBestFit:      return "energy-bestfit";
  }
  return "?";
}

Placement place_chains(const std::vector<ChainDemand>& chains,
                       const std::vector<NodeCapacity>& nodes,
                       PlacementPolicy policy) {
  if (chains.empty()) throw std::invalid_argument("placement: no chains");
  if (nodes.empty())
    throw std::invalid_argument("placement: empty fleet (no nodes)");
  for (const auto& chain : chains) {
    if (chain.cores <= 0.0)
      throw std::invalid_argument("placement: chain '" + chain.name +
                                  "' declares a non-positive core demand");
  }
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    // A zero-capacity roster entry would divide 0/0 in the load ratios
    // below — reject it loudly instead.
    if (nodes[n].cores <= 0.0)
      throw std::invalid_argument(
          "placement: node " + std::to_string(n) +
          " declares a non-positive core capacity");
  }

  Placement placement;
  placement.assignment.assign(chains.size(), -1);
  placement.node_cores.assign(nodes.size(), 0.0);

  // Process chains heaviest-first: optimal for FFD, harmless for balance.
  std::vector<std::size_t> order(chains.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return chains[a].cores > chains[b].cores;
  });

  for (const std::size_t c : order) {
    int chosen = -1;
    if (policy == PlacementPolicy::kFirstFitDecreasing) {
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (placement.node_cores[n] + chains[c].cores <=
            nodes[n].cores + 1e-9) {
          chosen = static_cast<int>(n);
          break;
        }
      }
    } else if (policy == PlacementPolicy::kLeastLoaded) {
      // Least-loaded among nodes with room.
      double best_load = 1e300;
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (placement.node_cores[n] + chains[c].cores >
            nodes[n].cores + 1e-9) {
          continue;
        }
        const double load = placement.node_cores[n] / nodes[n].cores;
        if (load < best_load) {
          best_load = load;
          chosen = static_cast<int>(n);
        }
      }
    } else {
      // Energy-aware best fit: the node whose remaining capacity after the
      // chain is smallest — demand concentrates on the fewest nodes, the
      // rest stay empty and cheap (idle, or asleep under power gating).
      double best_slack = 1e300;
      for (std::size_t n = 0; n < nodes.size(); ++n) {
        const double slack =
            nodes[n].cores - placement.node_cores[n] - chains[c].cores;
        if (slack < -1e-9) continue;
        if (slack < best_slack - 1e-12) {
          best_slack = slack;
          chosen = static_cast<int>(n);
        }
      }
    }
    if (chosen < 0) {
      throw std::invalid_argument("placement: chain '" + chains[c].name +
                                  "' does not fit on any node");
    }
    placement.assignment[c] = chosen;
    placement.node_cores[static_cast<std::size_t>(chosen)] +=
        chains[c].cores;
  }
  return placement;
}

double imbalance(const Placement& placement) {
  GNFV_REQUIRE(!placement.node_cores.empty(), "imbalance: no nodes");
  const double total = std::accumulate(placement.node_cores.begin(),
                                       placement.node_cores.end(), 0.0);
  const double mean =
      total / static_cast<double>(placement.node_cores.size());
  if (mean <= 0.0) return 1.0;
  const double max_load = *std::max_element(placement.node_cores.begin(),
                                            placement.node_cores.end());
  return max_load / mean;
}

}  // namespace greennfv::cluster
