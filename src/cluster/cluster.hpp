#pragma once

#include <memory>
#include <vector>

#include "cluster/placement.hpp"
#include "nfvsim/engine_analytic.hpp"

/// \file cluster.hpp
/// A multi-node NFV deployment: N hosting nodes, each with its own ONVM
/// controller and analytic engine, fed by a partitioned flow set — the
/// paper's actual testbed shape (three hosting nodes, one chain of three
/// NFs each). Aggregates fleet-level throughput/energy, which is what
/// Fig. 11's amortization argument and any TSP-scale deployment reads.

namespace greennfv::cluster {

/// Per-window fleet metrics.
struct ClusterMetrics {
  double total_gbps = 0.0;
  double total_power_w = 0.0;
  double total_energy_j = 0.0;
  std::vector<double> node_gbps;
  std::vector<double> node_power_w;
};

class Cluster {
 public:
  /// Builds `num_nodes` identical hosting nodes.
  Cluster(int num_nodes, const hwmodel::NodeSpec& spec,
          nfvsim::SchedMode mode = nfvsim::SchedMode::kHybrid);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] nfvsim::OnvmController& node(std::size_t i) {
    return *nodes_.at(i);
  }

  /// Deploys one chain (by NF catalog names) onto a node chosen by the
  /// placement bookkeeping; returns (node, chain index within node).
  struct Deployed {
    int node = 0;
    int chain = 0;
  };
  Deployed deploy_chain(const std::string& name,
                        const std::vector<std::string>& nfs, int node);

  /// Attaches per-node traffic (flows' chain_index refers to chains within
  /// that node) and finalizes the engines. Call once after deployment.
  void attach_traffic(
      const std::vector<std::vector<traffic::FlowSpec>>& per_node_flows,
      std::uint64_t seed);

  /// Applies one knob configuration to every chain in the fleet.
  void apply_knobs_everywhere(const nfvsim::ChainKnobs& knobs);

  /// Advances every node by `dt` seconds of virtual time.
  ClusterMetrics step(double dt);

  /// Runs `windows` steps and returns aggregate means/totals.
  ClusterMetrics run(int windows, double dt);

 private:
  hwmodel::NodeSpec spec_;
  std::vector<std::unique_ptr<nfvsim::OnvmController>> nodes_;
  std::vector<std::unique_ptr<nfvsim::AnalyticEngine>> engines_;
};

}  // namespace greennfv::cluster
