#pragma once

#include <string>
#include <vector>

/// \file placement.hpp
/// Chain-to-node placement for multi-node deployments. The paper's testbed
/// hosts its chains on three nodes ("we used three servers to generate the
/// traffic ... and the rest of the three servers are used to host the NF
/// chains"), and VNF placement is the problem its related-work section
/// surveys at length (Bari et al., Marotta et al., Kar et al.). Two
/// classic policies are provided:
///
///   * first-fit-decreasing on core demand — the bin-packing baseline
///   * least-loaded (balance) — spread demand evenly
///   * energy-bestfit — tightest-fit bin-packing: fill already-committed
///     nodes first so the fewest nodes carry load (the rest idle at
///     p_idle_w, or sleep under the fleet orchestrator's power gating)
///
/// Placement here is static (per deployment); the SDN controller handles
/// the dynamic flow-level rebalancing and src/orchestrator the online
/// (arrival/departure/migration) case.

namespace greennfv::cluster {

/// What the placer knows about one chain before deployment.
struct ChainDemand {
  std::string name;
  double cores = 1.0;          ///< expected core allocation
  double offered_gbps = 0.0;   ///< expected traffic share
};

/// Capacity of one node from the placer's perspective.
struct NodeCapacity {
  double cores = 14.0;  ///< schedulable cores (total minus manager)
};

enum class PlacementPolicy {
  kFirstFitDecreasing,
  kLeastLoaded,
  kEnergyBestFit,
};

[[nodiscard]] std::string to_string(PlacementPolicy policy);

/// Result: assignment[i] = node index hosting chain i.
struct Placement {
  std::vector<int> assignment;
  /// Cores committed per node after placement.
  std::vector<double> node_cores;

  [[nodiscard]] int node_of(std::size_t chain) const {
    return assignment.at(chain);
  }
};

/// Places every chain on one of `nodes.size()` nodes. Throws
/// std::invalid_argument when the fleet is empty, when any node declares a
/// non-positive capacity, or when a chain cannot fit anywhere (its core
/// demand exceeds every node's remaining capacity).
[[nodiscard]] Placement place_chains(const std::vector<ChainDemand>& chains,
                                     const std::vector<NodeCapacity>& nodes,
                                     PlacementPolicy policy);

/// Max/mean core commitment across nodes (1.0 = perfectly balanced).
[[nodiscard]] double imbalance(const Placement& placement);

}  // namespace greennfv::cluster
