#pragma once

#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "common/config.hpp"
#include "core/environment.hpp"
#include "core/greennfv.hpp"
#include "topology/topology.hpp"

/// \file scenario_spec.hpp
/// The declarative experiment description every bench, example, and test
/// runs from: one value type naming the hardware, the chain topology, the
/// traffic mix (per-flow specs plus a macroscopic rate profile), the SLA,
/// the window/episode geometry, and the training budgets. A spec is
/// parseable from `Config` key=value arguments, round-trips to/from a
/// plain-text scenario file, and compiles down to the `core::EnvConfig` /
/// `core::TrainerConfig` the evaluation machinery consumes — so "run the
/// flash-crowd workload against every scheduler" is one line, not a new
/// main().

namespace greennfv::scenario {

/// Dynamic-fleet block of a scenario (the `fleet.*` key family): online
/// chain arrivals/departures, the placement/consolidation policy, the
/// migration cost model, and node power gating. Consumed by
/// `orchestrator::FleetOrchestrator`; a spec with `enabled == false` runs
/// the static `ExperimentRunner` path untouched.
struct FleetSpec {
  bool enabled = false;  ///< fleet.enabled
  /// Simulated (measured) windows. 0 -> the scenario's eval_windows.
  int horizon_windows = 0;  ///< fleet.horizon
  /// Mean chain arrivals per window (Poisson, modulated by the scenario's
  /// RateProfile envelope — the fleet-level load shape). 0 freezes the
  /// fleet: no arrivals and no departures, the static degeneration case.
  double arrival_rate = 0.0;  ///< fleet.arrival_rate
  /// Mean chain holding time in windows (exponential, min one window).
  double mean_holding_windows = 20.0;  ///< fleet.mean_holding
  /// Traffic carried by each arriving chain.
  int flows_per_chain = 2;        ///< fleet.flows_per_chain
  double chain_offered_gbps = 4.0;  ///< fleet.chain_gbps
  /// Online placement policy (orchestrator registry name): first-fit,
  /// least-loaded, energy-bestfit, consolidate.
  std::string policy = "least-loaded";  ///< fleet.policy
  /// Master switch for consolidation migrations (the consolidate policy
  /// proposes them; this gate applies them).
  bool migration = true;  ///< fleet.migration
  /// Per migrated chain: downtime charged against its traffic/SLA, and
  /// the state-transfer energy added to the fleet bill.
  double migration_downtime_s = 0.5;  ///< fleet.migration_downtime_s
  double migration_energy_j = 25.0;   ///< fleet.migration_energy_j
  /// Consolidation trigger: drain a node whose core utilization sits
  /// below this fraction (when its chains fit elsewhere).
  double consolidate_below = 0.35;  ///< fleet.consolidate_below
  /// Power gating: an idle node falls asleep after this many consecutive
  /// empty windows (p_sleep_w draw; waking costs node wake_latency_s).
  bool power_gating = true;   ///< fleet.power_gating
  int sleep_after_windows = 2;  ///< fleet.sleep_after

  /// The policy names the orchestrator registry accepts (validated here so
  /// a typo'd fleet.policy fails at expansion, before anything runs).
  [[nodiscard]] static const std::vector<std::string>& policy_names();
};

/// Fault-injection block of a scenario (the `fault.*` key family): a
/// deterministic schedule of node crashes, correlated rack outages, link
/// failures/repairs, and wake-latency storms, expanded once from the
/// scenario seed (like arrivals) so both fleet engines replay the exact
/// same faults. Consumed by `orchestrator::build_fault_schedule`; a spec
/// with `enabled == false` injects nothing and leaves every history
/// byte-identical to a fault-free run.
struct FaultSpec {
  bool enabled = false;  ///< fault.enabled
  /// Mean node crashes per window (Poisson over the currently-up fleet).
  double node_crash_rate = 0.0;  ///< fault.node_crash_rate
  /// Mean link failures per window (Poisson over up links; requires
  /// topology.enabled — there is no fabric to fail otherwise).
  double link_fail_rate = 0.0;  ///< fault.link_fail_rate
  /// Mean correlated rack outages per window: one outage crashes every
  /// up node in a rack of `rack_size` consecutive node ids, and the whole
  /// rack repairs together.
  double rack_outage_rate = 0.0;  ///< fault.rack_outage_rate
  int rack_size = 4;              ///< fault.rack_size
  /// Mean repair delay in windows (exponential, min one window). A repair
  /// drawn past the horizon never lands — the node/link stays down.
  double mean_repair_windows = 4.0;  ///< fault.mean_repair
  /// Per re-placed chain: recovery downtime charged against its traffic
  /// and the state-rebuild energy added to the fleet bill.
  double replace_downtime_s = 1.0;  ///< fault.replace_downtime_s
  double replace_energy_j = 40.0;   ///< fault.replace_energy_j
  /// Wake-latency storms: each window is independently a storm window
  /// with this probability; every wake charge (arrival, consolidation, or
  /// recovery) during a storm costs `wake_storm_factor` times the normal
  /// downtime and energy.
  double wake_storm_prob = 0.0;    ///< fault.wake_storm_prob
  double wake_storm_factor = 4.0;  ///< fault.wake_storm_factor
};

struct ScenarioSpec {
  std::string name = "custom";
  /// Human-readable one-liner (preset listings only; not serialized).
  std::string description;

  // --- deployment ----------------------------------------------------------
  /// Hosting nodes. 1 = the single-node evaluations of Figs 9-10; >1 runs
  /// the cluster path (chains placed via `placement`, traffic partitioned
  /// per node, fleet metrics aggregated).
  int num_nodes = 1;
  cluster::PlacementPolicy placement = cluster::PlacementPolicy::kLeastLoaded;
  hwmodel::NodeSpec node;
  /// Dynamic-fleet simulation (arrivals, migration, power gating). Off by
  /// default — every pre-fleet scenario is bit-identical to before.
  FleetSpec fleet;
  /// Inter-node network fabric (the `topology.*` key family): chains are
  /// routed ingress→host over capacitated links, link energy joins the
  /// fleet bill, and path latency is charged against `latency_sla_us`.
  /// Off by default — the wire stays free, bit-identical to before.
  topology::TopologySpec topology;
  /// End-to-end latency SLA (`sla.latency`, microseconds): a routed
  /// chain whose path latency exceeds this budget is an SLA violation in
  /// the fleet accounting. 0 disables the axis; requires topology.
  double latency_sla_us = 0.0;
  /// Fault injection (crashes, link failures, rack outages, wake storms).
  /// Off by default — every fault-free scenario is bit-identical to
  /// before.
  FaultSpec fault;

  // --- chain topology ------------------------------------------------------
  int num_chains = 3;
  /// Per-chain NF compositions (catalog names). Empty -> the standard
  /// heterogeneous rotation (nfvsim::standard_chain_nfs).
  std::vector<std::vector<std::string>> chain_nfs;

  // --- traffic mix ---------------------------------------------------------
  /// Used when `flows` is empty: the §5 workload generator over this many
  /// flows at this aggregate offered load.
  int num_flows = 5;
  double total_offered_gbps = 12.0;
  /// Explicit per-flow specs; overrides the generator when non-empty.
  std::vector<traffic::FlowSpec> flows;
  /// Macroscopic rate envelope: steady, diurnal, bursty, flash-crowd.
  traffic::RateProfile profile;

  // --- SLA -----------------------------------------------------------------
  core::SlaKind sla_kind = core::SlaKind::kEnergyEfficiency;
  double energy_budget_j = 2000.0;      ///< MaxThroughput constraint
  double throughput_floor_gbps = 7.5;   ///< MinEnergy constraint
  bool shaped_reward = false;

  // --- window/episode geometry --------------------------------------------
  double window_s = 10.0;
  int sub_windows = 5;
  int steps_per_episode = 8;
  int eval_windows = 12;

  // --- training budgets ----------------------------------------------------
  int episodes = 400;
  int q_episodes = 250;
  /// Seeds per GreenNFV variant for model selection.
  int candidates = 2;
  bool prioritized_replay = true;
  double noise_sigma = 0.45;
  double noise_decay = 0.9985;
  std::uint64_t seed = 42;

  /// The SLA object (MinEnergy's reference energy derives from the node's
  /// peak power over one window, as the figure benches compute it).
  [[nodiscard]] core::Sla sla() const;

  /// Same constants under an explicit kind — how a figure or roster entry
  /// derives its training SLA from the scenario's constraint constants.
  [[nodiscard]] core::Sla sla(core::SlaKind kind) const;

  /// Compiles the whole-deployment (single-node view) environment config.
  [[nodiscard]] core::EnvConfig env_config() const;

  /// Trainer config for one GreenNFV variant trained under `sla` on this
  /// scenario's environment.
  [[nodiscard]] core::TrainerConfig trainer_config(const core::Sla& sla)
      const;

  /// Overwrites fields named by `config` keys (see known_keys()). Unknown
  /// keys are NOT rejected here — callers combine scenario keys with their
  /// own and call Config::check_known with the union.
  void apply(const Config& config);

  /// Serializes to "key=value" lines; apply(Config::from_string(text))
  /// on a default spec reproduces this spec exactly.
  [[nodiscard]] std::string to_text() const;

  /// Scenario-file IO. Files are the to_text() format; '#' starts a
  /// comment that runs to end of line.
  void save(const std::string& path) const;
  [[nodiscard]] static ScenarioSpec load(const std::string& path);

  /// Throws std::invalid_argument naming the offending field (zero chains,
  /// empty traffic mix, negative rates, unknown NF names...).
  void validate() const;

  /// Every scalar key apply() understands, plus the indexed-family
  /// prefixes ("chain", "flow") — the vocabulary for Config::check_known.
  [[nodiscard]] static const std::vector<std::string>& known_keys();
  [[nodiscard]] static const std::vector<std::string>& known_prefixes();
};

/// Serialization helpers for the indexed families (shared with tests).
[[nodiscard]] std::string flow_to_text(const traffic::FlowSpec& flow);
[[nodiscard]] traffic::FlowSpec flow_from_text(const std::string& text,
                                               int id);

[[nodiscard]] std::string to_string(core::SlaKind kind);
[[nodiscard]] core::SlaKind sla_kind_from_string(const std::string& name);
[[nodiscard]] cluster::PlacementPolicy placement_from_string(
    const std::string& name);

}  // namespace greennfv::scenario
