#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/nf_controller.hpp"
#include "scenario/scenario_spec.hpp"
#include "telemetry/recorder.hpp"

/// \file experiment.hpp
/// The uniform evaluation surface: a roster of scheduler factories run
/// through one ExperimentRunner against one ScenarioSpec, every model
/// measured by the identical NfvEnvironment::run_window loop the paper's
/// Fig. 9 comparison uses. Single-node scenarios evaluate exactly like the
/// pre-existing harness (same seeds -> same numbers); multi-node scenarios
/// place chains over the fleet, partition the traffic per node, and
/// aggregate fleet-level metrics (idle nodes still burn idle power).

namespace greennfv::scenario {

/// Builds one scheduling model for a (possibly per-node) environment
/// shape. `make` receives the evaluation EnvConfig (scenario SLA included)
/// and the scenario's base seed; trained models derive their training SLA
/// and seed offsets internally, mirroring the figure benches' seed
/// discipline.
struct SchedulerFactory {
  std::string name;
  /// Unrecorded settling windows before measurement (Algorithm 1 converges
  /// slowly, so the heuristic gets a long one).
  int warmup = 2;
  std::function<std::unique_ptr<core::Scheduler>(
      const core::EnvConfig& env, std::uint64_t seed)>
      make;
};

/// The full Fig. 9 roster in table order: Baseline, Heuristics, EE-Pstate,
/// Q-Learning, GreenNFV(MinE), GreenNFV(MaxT), GreenNFV(EE) — training
/// budgets, SLA constants, and seed offsets taken from the spec.
[[nodiscard]] std::vector<SchedulerFactory> default_roster(
    const ScenarioSpec& spec);

/// The non-trained subset (Baseline, Heuristics, EE-Pstate): instant to
/// build, useful for smoke runs and reactive-control studies.
[[nodiscard]] std::vector<SchedulerFactory> untrained_roster(
    const ScenarioSpec& spec);

/// Picks roster entries by comma-separated name list (case and punctuation
/// insensitive: "greennfv-maxt" matches "GreenNFV(MaxT)"). Unknown names
/// are a hard error listing what the roster offers.
[[nodiscard]] std::vector<SchedulerFactory> filter_roster(
    const std::vector<SchedulerFactory>& roster, const std::string& csv);

/// The telemetry prefix a model's per-window series are recorded under
/// ("GreenNFV(MaxT)" -> "greennfv_maxt_").
[[nodiscard]] std::string series_prefix(const std::string& model_name);

// --- deployment plumbing shared with orchestrator::FleetOrchestrator -------

/// Fig. 9's evaluation-seed discipline: the seed a node's evaluation
/// environment is built from (base + eval offset + per-node stride, so
/// cluster nodes run independent traffic realizations).
[[nodiscard]] std::uint64_t node_eval_seed(const ScenarioSpec& spec,
                                           std::size_t node);

/// The scenario's resolved flow list: explicit `flows`, or the §5 workload
/// generator over num_flows/total_offered_gbps at the scenario seed (the
/// form the cluster partition consumes).
[[nodiscard]] std::vector<traffic::FlowSpec> resolved_flows(
    const ScenarioSpec& spec);

/// The scenario's resolved per-chain NF compositions (explicit chain_nfs,
/// or the standard heterogeneous rotation).
[[nodiscard]] std::vector<std::vector<std::string>> resolved_chain_nfs(
    const ScenarioSpec& spec);

/// Builds the evaluation EnvConfig of one node hosting `local_chains`
/// (indices into `comps`; flows are matched by FlowSpec::chain_index and
/// remapped to node-local chain indices in flow-list order). Throws
/// std::invalid_argument when the node would host chains without traffic.
[[nodiscard]] core::EnvConfig partition_node_env(
    const ScenarioSpec& spec,
    const std::vector<std::vector<std::string>>& comps,
    const std::vector<traffic::FlowSpec>& flows,
    const std::vector<int>& local_chains, int node);

struct ModelReport {
  core::EvalResult result;
  /// This model's series live at `<series_prefix>throughput_gbps`,
  /// `...energy_j`, `...power_w`, `...efficiency`, `...drop_fraction`,
  /// `...offered_pps` in the report recorder (plus `<prefix>node<i>_...`
  /// per node on clusters).
  std::string prefix;
};

struct EvalReport {
  std::string scenario;
  int nodes = 1;
  std::vector<ModelReport> models;
  telemetry::Recorder series;

  /// The Fig. 9-style comparison table (ratios vs the first row).
  [[nodiscard]] std::string table() const;
};

class ExperimentRunner {
 public:
  /// Validates the spec and, for clusters, places chains and partitions
  /// the traffic (throws std::invalid_argument when a node would host
  /// chains without traffic).
  explicit ExperimentRunner(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

  /// Per-node evaluation environments after placement; size 1 for
  /// single-node scenarios. Bespoke experiments (ablations) build their
  /// environments from these instead of re-deriving them.
  [[nodiscard]] const std::vector<core::EnvConfig>& node_envs() const {
    return node_envs_;
  }

  /// Nodes the placement left without chains (they idle at p_idle_w and
  /// are charged to every model's fleet energy).
  [[nodiscard]] int idle_nodes() const { return idle_nodes_; }

  /// Runs every roster model through the identical evaluation loop.
  EvalReport run(const std::vector<SchedulerFactory>& roster);

  /// Runs one model, recording its per-window series under
  /// series_prefix(entry.name) into `recorder` (ignored when null).
  ModelReport run_model(const SchedulerFactory& entry,
                        telemetry::Recorder* recorder);

 private:
  ScenarioSpec spec_;
  std::vector<core::EnvConfig> node_envs_;
  int idle_nodes_ = 0;
};

}  // namespace greennfv::scenario
