#include "scenario/scenario_spec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"
#include "hwmodel/nf_cost.hpp"

namespace greennfv::scenario {

namespace {

std::string fmt_double(double value) { return format("%.10g", value); }

traffic::ArrivalKind arrival_from_string(const std::string& name) {
  if (name == "cbr") return traffic::ArrivalKind::kCbr;
  if (name == "poisson") return traffic::ArrivalKind::kPoisson;
  if (name == "mmpp") return traffic::ArrivalKind::kMmpp;
  if (name == "onoff") return traffic::ArrivalKind::kOnOff;
  throw std::invalid_argument("scenario: unknown arrival kind '" + name +
                              "' (expected cbr|poisson|mmpp|onoff)");
}

/// Guards the indexed families against silent truncation: a gap in the
/// chainN=/flowN= sequence (chain0, chain1, chain3) must be an error, not
/// a quietly shorter list.
void require_contiguous(const Config& config, const std::string& prefix,
                        std::size_t collected) {
  for (const auto& [key, value] : config.entries()) {
    if (key.size() <= prefix.size() ||
        key.compare(0, prefix.size(), prefix) != 0)
      continue;
    bool all_digits = true;
    for (std::size_t i = prefix.size(); i < key.size(); ++i)
      all_digits = all_digits && key[i] >= '0' && key[i] <= '9';
    if (!all_digits) continue;
    const std::size_t index = static_cast<std::size_t>(
        std::stoull(key.substr(prefix.size())));
    if (index >= collected) {
      throw std::invalid_argument(
          "scenario: " + key + " leaves a gap — " + prefix +
          "N entries must be contiguous from " + prefix + "0");
    }
  }
}

double parse_double(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario: " + what + " is not a number: " +
                                text);
  }
}

}  // namespace

std::string to_string(core::SlaKind kind) {
  switch (kind) {
    case core::SlaKind::kMaxThroughput: return "maxt";
    case core::SlaKind::kMinEnergy: return "mine";
    case core::SlaKind::kEnergyEfficiency: return "ee";
  }
  return "ee";
}

core::SlaKind sla_kind_from_string(const std::string& name) {
  if (name == "maxt") return core::SlaKind::kMaxThroughput;
  if (name == "mine") return core::SlaKind::kMinEnergy;
  if (name == "ee") return core::SlaKind::kEnergyEfficiency;
  throw std::invalid_argument("scenario: unknown sla '" + name +
                              "' (expected maxt|mine|ee)");
}

cluster::PlacementPolicy placement_from_string(const std::string& name) {
  if (name == "least-loaded" || name == "balanced")
    return cluster::PlacementPolicy::kLeastLoaded;
  if (name == "first-fit-decreasing" || name == "ffd")
    return cluster::PlacementPolicy::kFirstFitDecreasing;
  if (name == "energy-bestfit" || name == "bestfit")
    return cluster::PlacementPolicy::kEnergyBestFit;
  throw std::invalid_argument(
      "scenario: unknown placement '" + name +
      "' (expected least-loaded|first-fit-decreasing|energy-bestfit)");
}

std::string flow_to_text(const traffic::FlowSpec& flow) {
  return traffic::to_string(flow.proto) + ":" +
         traffic::to_string(flow.arrival) + ":" +
         format("%u", flow.pkt_bytes) + ":" + fmt_double(flow.mean_rate_pps) +
         ":" + format("%d", flow.chain_index) + ":" +
         fmt_double(flow.peak_to_mean) + ":" + fmt_double(flow.dwell_s);
}

traffic::FlowSpec flow_from_text(const std::string& text, int id) {
  const std::vector<std::string> fields = split(text, ':');
  if (fields.size() < 5 || fields.size() > 7) {
    throw std::invalid_argument(
        "scenario: flow '" + text +
        "' must be proto:arrival:pkt_bytes:rate_pps:chain"
        "[:peak_to_mean[:dwell_s]]");
  }
  traffic::FlowSpec flow;
  flow.id = id;
  if (fields[0] == "udp") {
    flow.proto = traffic::Protocol::kUdp;
  } else if (fields[0] == "tcp") {
    flow.proto = traffic::Protocol::kTcp;
  } else {
    throw std::invalid_argument("scenario: flow protocol '" + fields[0] +
                                "' (expected udp|tcp)");
  }
  flow.arrival = arrival_from_string(fields[1]);
  flow.pkt_bytes = static_cast<std::uint32_t>(
      parse_double(fields[2], "flow pkt_bytes"));
  flow.mean_rate_pps = parse_double(fields[3], "flow rate_pps");
  flow.chain_index =
      static_cast<int>(parse_double(fields[4], "flow chain index"));
  if (fields.size() > 5)
    flow.peak_to_mean = parse_double(fields[5], "flow peak_to_mean");
  if (fields.size() > 6)
    flow.dwell_s = parse_double(fields[6], "flow dwell_s");
  return flow;
}

const std::vector<std::string>& FleetSpec::policy_names() {
  static const std::vector<std::string> names = {
      "first-fit", "least-loaded", "energy-bestfit", "consolidate",
      "topology-aware-bestfit"};
  return names;
}

core::Sla ScenarioSpec::sla() const { return sla(sla_kind); }

core::Sla ScenarioSpec::sla(core::SlaKind kind) const {
  switch (kind) {
    case core::SlaKind::kMaxThroughput:
      return core::Sla::max_throughput(energy_budget_j);
    case core::SlaKind::kMinEnergy:
      return core::Sla::min_energy(throughput_floor_gbps,
                                   node.p_max_w * window_s);
    case core::SlaKind::kEnergyEfficiency:
      return core::Sla::energy_efficiency();
  }
  return core::Sla::energy_efficiency();
}

core::EnvConfig ScenarioSpec::env_config() const {
  core::EnvConfig env;
  env.spec = node;
  env.num_chains = num_chains;
  env.num_flows = num_flows;
  env.total_offered_gbps = total_offered_gbps;
  env.window_s = window_s;
  env.sub_windows = sub_windows;
  env.steps_per_episode = steps_per_episode;
  env.sla = sla();
  env.shaped_reward = shaped_reward;
  env.flows = flows;
  env.chain_nfs = chain_nfs;
  env.rate_profile = profile;
  return env;
}

core::TrainerConfig ScenarioSpec::trainer_config(const core::Sla& sla)
    const {
  core::TrainerConfig trainer;
  trainer.env = env_config();
  trainer.env.sla = sla;
  trainer.episodes = episodes;
  trainer.seed = seed;
  trainer.prioritized_replay = prioritized_replay;
  trainer.noise_sigma = noise_sigma;
  trainer.noise_decay = noise_decay;
  return trainer;
}

void ScenarioSpec::apply(const Config& config) {
  name = config.get_string("name", name);
  num_nodes = static_cast<int>(config.get_int("nodes", num_nodes));
  if (const auto p = config.get("placement"))
    placement = placement_from_string(*p);

  node.total_cores =
      static_cast<int>(config.get_int("node_cores", node.total_cores));
  node.fmin_ghz = config.get_double("node_fmin_ghz", node.fmin_ghz);
  node.fmax_ghz = config.get_double("node_fmax_ghz", node.fmax_ghz);
  node.line_rate_gbps =
      config.get_double("node_line_rate_gbps", node.line_rate_gbps);
  node.p_idle_w = config.get_double("node_p_idle_w", node.p_idle_w);
  node.p_max_w = config.get_double("node_p_max_w", node.p_max_w);
  node.p_sleep_w = config.get_double("node_p_sleep_w", node.p_sleep_w);
  node.wake_latency_s =
      config.get_double("node_wake_latency_s", node.wake_latency_s);

  // --- fleet (dynamic multi-node simulation) -------------------------------
  fleet.enabled = config.get_bool("fleet.enabled", fleet.enabled);
  fleet.horizon_windows = static_cast<int>(
      config.get_int("fleet.horizon", fleet.horizon_windows));
  fleet.arrival_rate =
      config.get_double("fleet.arrival_rate", fleet.arrival_rate);
  fleet.mean_holding_windows =
      config.get_double("fleet.mean_holding", fleet.mean_holding_windows);
  fleet.flows_per_chain = static_cast<int>(
      config.get_int("fleet.flows_per_chain", fleet.flows_per_chain));
  fleet.chain_offered_gbps =
      config.get_double("fleet.chain_gbps", fleet.chain_offered_gbps);
  fleet.policy = config.get_string("fleet.policy", fleet.policy);
  fleet.migration = config.get_bool("fleet.migration", fleet.migration);
  fleet.migration_downtime_s = config.get_double(
      "fleet.migration_downtime_s", fleet.migration_downtime_s);
  fleet.migration_energy_j = config.get_double("fleet.migration_energy_j",
                                               fleet.migration_energy_j);
  fleet.consolidate_below =
      config.get_double("fleet.consolidate_below", fleet.consolidate_below);
  fleet.power_gating =
      config.get_bool("fleet.power_gating", fleet.power_gating);
  fleet.sleep_after_windows = static_cast<int>(
      config.get_int("fleet.sleep_after", fleet.sleep_after_windows));

  // --- topology (inter-node network fabric) --------------------------------
  topology.enabled = config.get_bool("topology.enabled", topology.enabled);
  topology.preset = config.get_string("topology.preset", topology.preset);
  topology.routing = config.get_string("topology.routing", topology.routing);
  topology.hosts_per_leaf = static_cast<int>(
      config.get_int("topology.hosts_per_leaf", topology.hosts_per_leaf));
  topology.spines =
      static_cast<int>(config.get_int("topology.spines", topology.spines));
  topology.fat_k =
      static_cast<int>(config.get_int("topology.fat_k", topology.fat_k));
  topology.link_gbps =
      config.get_double("topology.link_gbps", topology.link_gbps);
  topology.link_latency_us =
      config.get_double("topology.link_latency_us", topology.link_latency_us);
  topology.core_gbps =
      config.get_double("topology.core_gbps", topology.core_gbps);
  topology.core_latency_us =
      config.get_double("topology.core_latency_us", topology.core_latency_us);
  topology.link_idle_w =
      config.get_double("topology.link_idle_w", topology.link_idle_w);
  topology.link_nj_per_bit =
      config.get_double("topology.link_nj_per_bit", topology.link_nj_per_bit);
  latency_sla_us = config.get_double("sla.latency", latency_sla_us);

  // --- faults (deterministic failure injection) ----------------------------
  fault.enabled = config.get_bool("fault.enabled", fault.enabled);
  fault.node_crash_rate =
      config.get_double("fault.node_crash_rate", fault.node_crash_rate);
  fault.link_fail_rate =
      config.get_double("fault.link_fail_rate", fault.link_fail_rate);
  fault.rack_outage_rate =
      config.get_double("fault.rack_outage_rate", fault.rack_outage_rate);
  fault.rack_size =
      static_cast<int>(config.get_int("fault.rack_size", fault.rack_size));
  fault.mean_repair_windows =
      config.get_double("fault.mean_repair", fault.mean_repair_windows);
  fault.replace_downtime_s = config.get_double("fault.replace_downtime_s",
                                               fault.replace_downtime_s);
  fault.replace_energy_j =
      config.get_double("fault.replace_energy_j", fault.replace_energy_j);
  fault.wake_storm_prob =
      config.get_double("fault.wake_storm_prob", fault.wake_storm_prob);
  fault.wake_storm_factor =
      config.get_double("fault.wake_storm_factor", fault.wake_storm_factor);

  // Scalar counts first: an explicit count without indexed entries reverts
  // the family to its generated/standard form.
  if (config.has("chains")) {
    num_chains = static_cast<int>(config.get_int("chains", num_chains));
    if (!config.has("chain0")) chain_nfs.clear();
  }
  if (config.has("flows")) {
    num_flows = static_cast<int>(config.get_int("flows", num_flows));
    if (!config.has("flow0")) flows.clear();
  }

  // Indexed families: contiguous from 0.
  if (config.has("chain0")) {
    chain_nfs.clear();
    for (int c = 0;; ++c) {
      const auto entry = config.get(format("chain%d", c));
      if (!entry) break;
      std::vector<std::string> nfs;
      for (const auto& nf : split(*entry, '+'))
        if (!nf.empty()) nfs.push_back(nf);
      chain_nfs.push_back(std::move(nfs));
    }
    require_contiguous(config, "chain", chain_nfs.size());
    if (config.has("chains") &&
        static_cast<std::size_t>(num_chains) != chain_nfs.size()) {
      throw std::invalid_argument(
          "scenario: chains= disagrees with the number of chainN= entries");
    }
    num_chains = static_cast<int>(chain_nfs.size());
  } else {
    require_contiguous(config, "chain", 0);  // chain1= without chain0=
  }
  if (config.has("flow0")) {
    flows.clear();
    for (int f = 0;; ++f) {
      const auto entry = config.get(format("flow%d", f));
      if (!entry) break;
      flows.push_back(flow_from_text(*entry, f));
    }
    require_contiguous(config, "flow", flows.size());
    if (config.has("flows") &&
        static_cast<std::size_t>(num_flows) != flows.size()) {
      throw std::invalid_argument(
          "scenario: flows= disagrees with the number of flowN= entries");
    }
    num_flows = static_cast<int>(flows.size());
  } else {
    require_contiguous(config, "flow", 0);  // flow1= without flow0=
  }

  total_offered_gbps =
      config.get_double("offered_gbps", total_offered_gbps);
  if (const auto p = config.get("profile"))
    profile.kind = traffic::profile_kind_from_string(*p);
  profile.period_s =
      config.get_double("profile_period_s", profile.period_s);
  profile.amplitude =
      config.get_double("profile_amplitude", profile.amplitude);
  profile.surge_start_s =
      config.get_double("profile_surge_start_s", profile.surge_start_s);
  profile.surge_duration_s = config.get_double("profile_surge_duration_s",
                                               profile.surge_duration_s);
  profile.surge_factor =
      config.get_double("profile_surge_factor", profile.surge_factor);

  if (const auto s = config.get("sla")) sla_kind = sla_kind_from_string(*s);
  energy_budget_j = config.get_double("energy_budget", energy_budget_j);
  throughput_floor_gbps =
      config.get_double("throughput_floor", throughput_floor_gbps);
  shaped_reward = config.get_bool("shaped_reward", shaped_reward);

  window_s = config.get_double("window_s", window_s);
  sub_windows = static_cast<int>(config.get_int("sub_windows", sub_windows));
  steps_per_episode = static_cast<int>(
      config.get_int("steps_per_episode", steps_per_episode));
  eval_windows =
      static_cast<int>(config.get_int("eval_windows", eval_windows));

  episodes = static_cast<int>(config.get_int("episodes", episodes));
  q_episodes = static_cast<int>(config.get_int("q_episodes", q_episodes));
  candidates = static_cast<int>(config.get_int("candidates", candidates));
  prioritized_replay = config.get_bool("prioritized", prioritized_replay);
  noise_sigma = config.get_double("noise_sigma", noise_sigma);
  noise_decay = config.get_double("noise_decay", noise_decay);
  seed = static_cast<std::uint64_t>(
      config.get_int("seed", static_cast<std::int64_t>(seed)));
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream out;
  out << "name=" << name << "\n";
  out << "nodes=" << num_nodes << "\n";
  out << "placement=" << cluster::to_string(placement) << "\n";
  out << "node_cores=" << node.total_cores << "\n";
  out << "node_fmin_ghz=" << fmt_double(node.fmin_ghz) << "\n";
  out << "node_fmax_ghz=" << fmt_double(node.fmax_ghz) << "\n";
  out << "node_line_rate_gbps=" << fmt_double(node.line_rate_gbps) << "\n";
  out << "node_p_idle_w=" << fmt_double(node.p_idle_w) << "\n";
  out << "node_p_max_w=" << fmt_double(node.p_max_w) << "\n";
  out << "node_p_sleep_w=" << fmt_double(node.p_sleep_w) << "\n";
  out << "node_wake_latency_s=" << fmt_double(node.wake_latency_s) << "\n";
  out << "fleet.enabled=" << (fleet.enabled ? 1 : 0) << "\n";
  out << "fleet.horizon=" << fleet.horizon_windows << "\n";
  out << "fleet.arrival_rate=" << fmt_double(fleet.arrival_rate) << "\n";
  out << "fleet.mean_holding=" << fmt_double(fleet.mean_holding_windows)
      << "\n";
  out << "fleet.flows_per_chain=" << fleet.flows_per_chain << "\n";
  out << "fleet.chain_gbps=" << fmt_double(fleet.chain_offered_gbps)
      << "\n";
  out << "fleet.policy=" << fleet.policy << "\n";
  out << "fleet.migration=" << (fleet.migration ? 1 : 0) << "\n";
  out << "fleet.migration_downtime_s="
      << fmt_double(fleet.migration_downtime_s) << "\n";
  out << "fleet.migration_energy_j=" << fmt_double(fleet.migration_energy_j)
      << "\n";
  out << "fleet.consolidate_below=" << fmt_double(fleet.consolidate_below)
      << "\n";
  out << "fleet.power_gating=" << (fleet.power_gating ? 1 : 0) << "\n";
  out << "fleet.sleep_after=" << fleet.sleep_after_windows << "\n";
  out << "topology.enabled=" << (topology.enabled ? 1 : 0) << "\n";
  out << "topology.preset=" << topology.preset << "\n";
  out << "topology.routing=" << topology.routing << "\n";
  out << "topology.hosts_per_leaf=" << topology.hosts_per_leaf << "\n";
  out << "topology.spines=" << topology.spines << "\n";
  out << "topology.fat_k=" << topology.fat_k << "\n";
  out << "topology.link_gbps=" << fmt_double(topology.link_gbps) << "\n";
  out << "topology.link_latency_us=" << fmt_double(topology.link_latency_us)
      << "\n";
  out << "topology.core_gbps=" << fmt_double(topology.core_gbps) << "\n";
  out << "topology.core_latency_us=" << fmt_double(topology.core_latency_us)
      << "\n";
  out << "topology.link_idle_w=" << fmt_double(topology.link_idle_w) << "\n";
  out << "topology.link_nj_per_bit=" << fmt_double(topology.link_nj_per_bit)
      << "\n";
  out << "sla.latency=" << fmt_double(latency_sla_us) << "\n";
  out << "fault.enabled=" << (fault.enabled ? 1 : 0) << "\n";
  out << "fault.node_crash_rate=" << fmt_double(fault.node_crash_rate)
      << "\n";
  out << "fault.link_fail_rate=" << fmt_double(fault.link_fail_rate) << "\n";
  out << "fault.rack_outage_rate=" << fmt_double(fault.rack_outage_rate)
      << "\n";
  out << "fault.rack_size=" << fault.rack_size << "\n";
  out << "fault.mean_repair=" << fmt_double(fault.mean_repair_windows)
      << "\n";
  out << "fault.replace_downtime_s=" << fmt_double(fault.replace_downtime_s)
      << "\n";
  out << "fault.replace_energy_j=" << fmt_double(fault.replace_energy_j)
      << "\n";
  out << "fault.wake_storm_prob=" << fmt_double(fault.wake_storm_prob)
      << "\n";
  out << "fault.wake_storm_factor=" << fmt_double(fault.wake_storm_factor)
      << "\n";
  out << "chains=" << num_chains << "\n";
  for (std::size_t c = 0; c < chain_nfs.size(); ++c) {
    out << "chain" << c << "=";
    for (std::size_t i = 0; i < chain_nfs[c].size(); ++i) {
      if (i) out << "+";
      out << chain_nfs[c][i];
    }
    out << "\n";
  }
  out << "flows=" << num_flows << "\n";
  for (std::size_t f = 0; f < flows.size(); ++f)
    out << "flow" << f << "=" << flow_to_text(flows[f]) << "\n";
  out << "offered_gbps=" << fmt_double(total_offered_gbps) << "\n";
  out << "profile=" << traffic::to_string(profile.kind) << "\n";
  out << "profile_period_s=" << fmt_double(profile.period_s) << "\n";
  out << "profile_amplitude=" << fmt_double(profile.amplitude) << "\n";
  out << "profile_surge_start_s=" << fmt_double(profile.surge_start_s)
      << "\n";
  out << "profile_surge_duration_s=" << fmt_double(profile.surge_duration_s)
      << "\n";
  out << "profile_surge_factor=" << fmt_double(profile.surge_factor) << "\n";
  out << "sla=" << scenario::to_string(sla_kind) << "\n";
  out << "energy_budget=" << fmt_double(energy_budget_j) << "\n";
  out << "throughput_floor=" << fmt_double(throughput_floor_gbps) << "\n";
  out << "shaped_reward=" << (shaped_reward ? 1 : 0) << "\n";
  out << "window_s=" << fmt_double(window_s) << "\n";
  out << "sub_windows=" << sub_windows << "\n";
  out << "steps_per_episode=" << steps_per_episode << "\n";
  out << "eval_windows=" << eval_windows << "\n";
  out << "episodes=" << episodes << "\n";
  out << "q_episodes=" << q_episodes << "\n";
  out << "candidates=" << candidates << "\n";
  out << "prioritized=" << (prioritized_replay ? 1 : 0) << "\n";
  out << "noise_sigma=" << fmt_double(noise_sigma) << "\n";
  out << "noise_decay=" << fmt_double(noise_decay) << "\n";
  out << "seed=" << seed << "\n";
  return out.str();
}

void ScenarioSpec::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("scenario: cannot write " + path);
  out << "# GreenNFV scenario file (key=value; '#' to end of line is a"
         " comment)\n";
  out << to_text();
  if (!out)
    throw std::runtime_error("scenario: failed writing " + path);
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("scenario: cannot read " + path);
  std::string text;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    text += line;
    text += "\n";
  }
  const Config config = Config::from_string(text);
  config.check_known(known_keys(), known_prefixes());
  ScenarioSpec spec;
  spec.apply(config);
  spec.validate();
  return spec;
}

void ScenarioSpec::validate() const {
  if (num_nodes < 1)
    throw std::invalid_argument("scenario: need at least one node");
  if (num_chains < 1)
    throw std::invalid_argument(
        "scenario: need at least one chain (zero-chain topology)");
  if (flows.empty()) {
    if (num_flows < 1)
      throw std::invalid_argument("scenario: empty traffic mix (no flows)");
    if (total_offered_gbps <= 0.0)
      throw std::invalid_argument(
          "scenario: offered_gbps must be positive");
  } else {
    for (const auto& flow : flows) {
      traffic::validate(flow);
      if (flow.mean_rate_pps <= 0.0)
        throw std::invalid_argument(
            "scenario: flow rates must be positive");
      if (flow.chain_index >= num_chains)
        throw std::invalid_argument(
            format("scenario: flow %d targets chain %d but only %d chains"
                   " exist",
                   flow.id, flow.chain_index, num_chains));
    }
  }
  if (!chain_nfs.empty()) {
    if (chain_nfs.size() != static_cast<std::size_t>(num_chains))
      throw std::invalid_argument(
          "scenario: chainN entries must cover every chain");
    for (const auto& nfs : chain_nfs) {
      if (nfs.empty())
        throw std::invalid_argument("scenario: chain with no NFs");
      for (const auto& nf : nfs)
        (void)hwmodel::nf_catalog::by_name(nf);  // throws on unknown names
    }
  }
  profile.validate();
  if (window_s <= 0.0)
    throw std::invalid_argument("scenario: window_s must be positive");
  if (sub_windows < 1)
    throw std::invalid_argument("scenario: sub_windows must be >= 1");
  if (steps_per_episode < 1)
    throw std::invalid_argument(
        "scenario: steps_per_episode must be >= 1");
  if (eval_windows < 1)
    throw std::invalid_argument("scenario: eval_windows must be >= 1");
  if (episodes < 1 || q_episodes < 1)
    throw std::invalid_argument("scenario: training episodes must be >= 1");
  if (candidates < 1)
    throw std::invalid_argument("scenario: candidates must be >= 1");
  if (noise_sigma < 0.0)
    throw std::invalid_argument("scenario: noise_sigma must be >= 0");
  if (noise_decay <= 0.0 || noise_decay > 1.0)
    throw std::invalid_argument("scenario: noise_decay must be in (0, 1]");
  if (sla_kind == core::SlaKind::kMaxThroughput && energy_budget_j <= 0.0)
    throw std::invalid_argument(
        "scenario: energy_budget must be positive for the maxt SLA");
  if (sla_kind == core::SlaKind::kMinEnergy &&
      throughput_floor_gbps <= 0.0)
    throw std::invalid_argument(
        "scenario: throughput_floor must be positive for the mine SLA");
  if (num_nodes > 1 && num_chains < num_nodes && !fleet.enabled)
    throw std::invalid_argument(
        "scenario: cluster runs need at least one chain per node");

  // --- fleet block ---------------------------------------------------------
  if (node.p_sleep_w < 0.0)
    throw std::invalid_argument("scenario: node_p_sleep_w must be >= 0");
  // Sleep draw above idle draw only matters (and only makes gating
  // nonsensical) when the orchestrator actually gates nodes — a plain
  // scenario with a tiny node_p_idle_w must stay valid as before.
  if (fleet.enabled && node.p_sleep_w > node.p_idle_w)
    throw std::invalid_argument(
        "scenario: node_p_sleep_w must be <= node_p_idle_w for fleet runs");
  if (node.wake_latency_s < 0.0)
    throw std::invalid_argument(
        "scenario: node_wake_latency_s must be >= 0");
  const auto& policies = FleetSpec::policy_names();
  if (std::find(policies.begin(), policies.end(), fleet.policy) ==
      policies.end()) {
    std::string known;
    for (const auto& name : policies) {
      if (!known.empty()) known += "|";
      known += name;
    }
    throw std::invalid_argument("scenario: unknown fleet.policy '" +
                                fleet.policy + "' (expected " + known + ")");
  }
  if (fleet.horizon_windows < 0)
    throw std::invalid_argument("scenario: fleet.horizon must be >= 0");
  if (fleet.arrival_rate < 0.0)
    throw std::invalid_argument(
        "scenario: fleet.arrival_rate must be >= 0");
  if (fleet.mean_holding_windows <= 0.0)
    throw std::invalid_argument(
        "scenario: fleet.mean_holding must be positive");
  if (fleet.flows_per_chain < 1)
    throw std::invalid_argument(
        "scenario: fleet.flows_per_chain must be >= 1");
  if (fleet.chain_offered_gbps <= 0.0)
    throw std::invalid_argument(
        "scenario: fleet.chain_gbps must be positive");
  if (fleet.migration_downtime_s < 0.0 || fleet.migration_energy_j < 0.0)
    throw std::invalid_argument(
        "scenario: fleet migration costs must be >= 0");
  if (fleet.consolidate_below < 0.0 || fleet.consolidate_below > 1.0)
    throw std::invalid_argument(
        "scenario: fleet.consolidate_below must be in [0, 1]");
  if (fleet.sleep_after_windows < 1)
    throw std::invalid_argument(
        "scenario: fleet.sleep_after must be >= 1");

  // --- topology block ------------------------------------------------------
  // Name/numeric checks always run (campaign expansion rejects a typo'd
  // topology.preset on disabled cells too); host-capacity fit binds only
  // when the fabric is actually built.
  topology::validate_spec(topology, num_nodes);
  if (latency_sla_us < 0.0)
    throw std::invalid_argument("scenario: sla.latency must be >= 0");
  if (topology.enabled && !fleet.enabled)
    throw std::invalid_argument(
        "scenario: topology.enabled=1 requires fleet.enabled=1 (the fabric"
        " is routed by the fleet orchestrator)");
  if (latency_sla_us > 0.0 && !topology.enabled)
    throw std::invalid_argument(
        "scenario: sla.latency needs topology.enabled=1 (path latency comes"
        " from the fabric)");

  // --- fault block ---------------------------------------------------------
  // Numeric checks always run (campaign expansion rejects a bad fault.*
  // value on disabled cells too); the cross-requirements bind only when
  // injection is actually on.
  if (fault.node_crash_rate < 0.0 || fault.link_fail_rate < 0.0 ||
      fault.rack_outage_rate < 0.0)
    throw std::invalid_argument("scenario: fault rates must be >= 0");
  if (fault.rack_size < 1)
    throw std::invalid_argument("scenario: fault.rack_size must be >= 1");
  if (fault.mean_repair_windows <= 0.0)
    throw std::invalid_argument(
        "scenario: fault.mean_repair must be positive");
  if (fault.replace_downtime_s < 0.0 || fault.replace_energy_j < 0.0)
    throw std::invalid_argument(
        "scenario: fault replacement costs must be >= 0");
  if (fault.wake_storm_prob < 0.0 || fault.wake_storm_prob > 1.0)
    throw std::invalid_argument(
        "scenario: fault.wake_storm_prob must be in [0, 1]");
  if (fault.wake_storm_factor < 1.0)
    throw std::invalid_argument(
        "scenario: fault.wake_storm_factor must be >= 1");
  if (fault.enabled && !fleet.enabled)
    throw std::invalid_argument(
        "scenario: fault.enabled=1 requires fleet.enabled=1 (faults are"
        " injected by the fleet orchestrator)");
  if (fault.enabled && fault.link_fail_rate > 0.0 && !topology.enabled)
    throw std::invalid_argument(
        "scenario: fault.link_fail_rate needs topology.enabled=1 (there is"
        " no fabric to fail)");
}

const std::vector<std::string>& ScenarioSpec::known_keys() {
  static const std::vector<std::string> keys = {
      "scenario",       "scenario_file",
      "name",           "nodes",
      "placement",      "node_cores",
      "node_fmin_ghz",  "node_fmax_ghz",
      "node_line_rate_gbps", "node_p_idle_w",
      "node_p_max_w",   "node_p_sleep_w",
      "node_wake_latency_s",
      "fleet.enabled",  "fleet.horizon",
      "fleet.arrival_rate", "fleet.mean_holding",
      "fleet.flows_per_chain", "fleet.chain_gbps",
      "fleet.policy",   "fleet.migration",
      "fleet.migration_downtime_s", "fleet.migration_energy_j",
      "fleet.consolidate_below", "fleet.power_gating",
      "fleet.sleep_after",
      "topology.enabled", "topology.preset",
      "topology.routing", "topology.hosts_per_leaf",
      "topology.spines",  "topology.fat_k",
      "topology.link_gbps", "topology.link_latency_us",
      "topology.core_gbps", "topology.core_latency_us",
      "topology.link_idle_w", "topology.link_nj_per_bit",
      "sla.latency",
      "fault.enabled",  "fault.node_crash_rate",
      "fault.link_fail_rate", "fault.rack_outage_rate",
      "fault.rack_size", "fault.mean_repair",
      "fault.replace_downtime_s", "fault.replace_energy_j",
      "fault.wake_storm_prob", "fault.wake_storm_factor",
      "chains",
      "flows",          "offered_gbps",
      "profile",        "profile_period_s",
      "profile_amplitude", "profile_surge_start_s",
      "profile_surge_duration_s", "profile_surge_factor",
      "sla",            "energy_budget",
      "throughput_floor", "shaped_reward",
      "window_s",       "sub_windows",
      "steps_per_episode", "eval_windows",
      "episodes",       "q_episodes",
      "candidates",     "prioritized",
      "noise_sigma",    "noise_decay",
      "seed",
  };
  return keys;
}

const std::vector<std::string>& ScenarioSpec::known_prefixes() {
  static const std::vector<std::string> prefixes = {"chain", "flow"};
  return prefixes;
}

}  // namespace greennfv::scenario
