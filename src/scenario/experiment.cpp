#include "scenario/experiment.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "common/string_util.hpp"
#include "core/ee_pstate.hpp"
#include "core/greennfv.hpp"
#include "core/heuristic.hpp"
#include "nfvsim/chain.hpp"
#include "traffic/generator.hpp"

namespace greennfv::scenario {

namespace {

/// Lowercased alphanumerics with single '_' separators:
/// "GreenNFV(MaxT)" -> "greennfv_maxt".
std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

void copy_series(const telemetry::Recorder& from, telemetry::Recorder* to,
                 const std::string& prefix) {
  if (to == nullptr) return;
  for (const std::string& name : from.series_names()) {
    const TimeSeries& s = from.series(name);
    for (std::size_t i = 0; i < s.size(); ++i)
      to->record(prefix + name, s.times()[i], s.values()[i]);
  }
}

/// Fig. 9's seed discipline, centralized: training seed offsets per
/// GreenNFV variant, Q-learning at +3, evaluation environments at +77
/// (per-node stride keeps cluster nodes on independent realizations).
constexpr std::uint64_t kQlearningSeedOffset = 3;
constexpr std::uint64_t kEvalSeedOffset = 77;
constexpr std::uint64_t kNodeSeedStride = 9973;

SchedulerFactory greennfv_factory(const ScenarioSpec& spec,
                                  const std::string& label,
                                  core::SlaKind sla_kind,
                                  std::uint64_t seed_offset) {
  SchedulerFactory factory;
  factory.name = label;
  factory.warmup = 2;
  factory.make = [spec, label, sla_kind, seed_offset](
                     const core::EnvConfig& env, std::uint64_t seed) {
    core::TrainerConfig trainer;
    trainer.env = env;  // per-node shape; the training SLA replaces eval's
    trainer.env.sla = spec.sla(sla_kind);
    trainer.episodes = spec.episodes;
    trainer.seed = seed + seed_offset;
    trainer.prioritized_replay = spec.prioritized_replay;
    trainer.noise_sigma = spec.noise_sigma;
    trainer.noise_decay = spec.noise_decay;
    std::printf("[train] %s, %d episodes x %d seeds...\n", label.c_str(),
                spec.episodes, spec.candidates);
    return core::train_best_scheduler(trainer, label, spec.candidates);
  };
  return factory;
}

}  // namespace

std::string series_prefix(const std::string& model_name) {
  return sanitize(model_name) + "_";
}

std::uint64_t node_eval_seed(const ScenarioSpec& spec, std::size_t node) {
  return spec.seed + kEvalSeedOffset + kNodeSeedStride * node;
}

std::vector<traffic::FlowSpec> resolved_flows(const ScenarioSpec& spec) {
  return spec.flows.empty()
             ? traffic::make_eval_flows(spec.num_flows, spec.num_chains,
                                        spec.total_offered_gbps, spec.seed)
             : spec.flows;
}

std::vector<std::vector<std::string>> resolved_chain_nfs(
    const ScenarioSpec& spec) {
  std::vector<std::vector<std::string>> comps;
  for (int c = 0; c < spec.num_chains; ++c) {
    comps.push_back(spec.chain_nfs.empty()
                        ? nfvsim::standard_chain_nfs(c)
                        : spec.chain_nfs[static_cast<std::size_t>(c)]);
  }
  return comps;
}

core::EnvConfig partition_node_env(
    const ScenarioSpec& spec,
    const std::vector<std::vector<std::string>>& comps,
    const std::vector<traffic::FlowSpec>& flows,
    const std::vector<int>& local_chains, int node) {
  core::EnvConfig env = spec.env_config();
  env.num_chains = static_cast<int>(local_chains.size());
  env.chain_nfs.clear();
  for (const int c : local_chains)
    env.chain_nfs.push_back(comps.at(static_cast<std::size_t>(c)));
  env.flows.clear();
  env.total_offered_gbps = 0.0;
  for (const auto& flow : flows) {
    for (std::size_t local = 0; local < local_chains.size(); ++local) {
      if (flow.chain_index != local_chains[local]) continue;
      traffic::FlowSpec remapped = flow;
      remapped.id = static_cast<int>(env.flows.size());
      remapped.chain_index = static_cast<int>(local);
      env.total_offered_gbps += remapped.mean_rate_gbps();
      env.flows.push_back(std::move(remapped));
    }
  }
  if (env.flows.empty()) {
    throw std::invalid_argument(format(
        "scenario: node %d hosts %d chain(s) but receives no flows", node,
        env.num_chains));
  }
  env.num_flows = static_cast<int>(env.flows.size());
  return env;
}

std::vector<SchedulerFactory> untrained_roster(const ScenarioSpec&) {
  std::vector<SchedulerFactory> roster;
  roster.push_back(
      {"Baseline", 2, [](const core::EnvConfig& env, std::uint64_t) {
         return std::make_unique<core::BaselineScheduler>(env.spec);
       }});
  // Algorithm 1 converges slowly (§5.1): long warmup before measuring.
  roster.push_back(
      {"Heuristics", 40, [](const core::EnvConfig& env, std::uint64_t) {
         return std::make_unique<core::HeuristicScheduler>(
             env.spec, core::HeuristicConfig{});
       }});
  roster.push_back(
      {"EE-Pstate", 6, [](const core::EnvConfig& env, std::uint64_t) {
         return std::make_unique<core::EePstateScheduler>(
             env.spec, core::EePstateConfig{});
       }});
  return roster;
}

std::vector<SchedulerFactory> default_roster(const ScenarioSpec& spec) {
  std::vector<SchedulerFactory> roster = untrained_roster(spec);
  const int q_episodes = spec.q_episodes;
  roster.push_back(
      {"Q-Learning", 2,
       [q_episodes](const core::EnvConfig& env, std::uint64_t seed) {
         std::printf("[train] Q-Learning, %d episodes...\n", q_episodes);
         return core::train_qlearning_scheduler(
             env, q_episodes, seed + kQlearningSeedOffset);
       }});
  roster.push_back(greennfv_factory(spec, "GreenNFV(MinE)",
                                    core::SlaKind::kMinEnergy, 0));
  roster.push_back(greennfv_factory(spec, "GreenNFV(MaxT)",
                                    core::SlaKind::kMaxThroughput, 1));
  roster.push_back(greennfv_factory(spec, "GreenNFV(EE)",
                                    core::SlaKind::kEnergyEfficiency, 2));
  return roster;
}

std::vector<SchedulerFactory> filter_roster(
    const std::vector<SchedulerFactory>& roster, const std::string& csv) {
  std::vector<SchedulerFactory> picked;
  for (const auto& token : split(csv, ',')) {
    const std::string want = sanitize(std::string(trim(token)));
    if (want.empty()) continue;
    bool found = false;
    for (const auto& entry : roster) {
      if (sanitize(entry.name) == want) {
        picked.push_back(entry);
        found = true;
        break;
      }
    }
    if (!found) {
      std::string known;
      for (const auto& entry : roster) {
        if (!known.empty()) known += ", ";
        known += entry.name;
      }
      throw std::invalid_argument("scenario: unknown model '" +
                                  std::string(trim(token)) +
                                  "' (roster: " + known + ")");
    }
  }
  if (picked.empty())
    throw std::invalid_argument("scenario: models= selected nothing");
  return picked;
}

std::string EvalReport::table() const {
  std::vector<std::vector<std::string>> rows;
  const double base_gbps =
      models.empty() ? 1.0 : models.front().result.mean_gbps;
  const double base_energy =
      models.empty() ? 1.0 : models.front().result.mean_energy_j;
  for (const auto& model : models) {
    const core::EvalResult& r = model.result;
    rows.push_back(
        {r.scheduler, format_double(r.mean_gbps, 2),
         format_double(r.mean_energy_j, 0),
         format_double(base_gbps > 0.0 ? r.mean_gbps / base_gbps : 0.0, 2) +
             "x",
         format_double(
             base_energy > 0.0 ? r.mean_energy_j / base_energy * 100.0
                               : 0.0,
             0) +
             "%",
         format_double(r.mean_efficiency, 2),
         format_double(r.sla_satisfaction * 100.0, 0) + "%",
         format_double(r.drop_fraction * 100.0, 1) + "%"});
  }
  return render_table({"model", "Gbps", "Energy(J)", "T vs base",
                       "E vs base", "Efficiency", "SLA met", "drop"},
                      rows);
}

ExperimentRunner::ExperimentRunner(ScenarioSpec spec)
    : spec_(std::move(spec)) {
  spec_.validate();
  if (spec_.fleet.enabled) {
    throw std::invalid_argument(
        "scenario: '" + spec_.name +
        "' enables fleet.* dynamics — run it through"
        " orchestrator::FleetOrchestrator, not ExperimentRunner");
  }
  if (spec_.num_nodes == 1) {
    node_envs_.push_back(spec_.env_config());
    return;
  }

  // --- cluster: place chains, partition the traffic ----------------------
  const std::vector<traffic::FlowSpec> flows = resolved_flows(spec_);
  const std::vector<std::vector<std::string>> comps =
      resolved_chain_nfs(spec_);

  std::vector<cluster::ChainDemand> demands;
  for (int c = 0; c < spec_.num_chains; ++c) {
    cluster::ChainDemand demand;
    demand.name = format("chain%d", c);
    // Algorithm 1 line 1 allocates one core per NF.
    demand.cores = static_cast<double>(
        comps[static_cast<std::size_t>(c)].size());
    for (const auto& flow : flows)
      if (flow.chain_index == c) demand.offered_gbps += flow.mean_rate_gbps();
    demands.push_back(std::move(demand));
  }
  const std::vector<cluster::NodeCapacity> capacities(
      static_cast<std::size_t>(spec_.num_nodes),
      cluster::NodeCapacity{static_cast<double>(spec_.node.total_cores) -
                            spec_.node.controller_cores});
  const cluster::Placement placement =
      cluster::place_chains(demands, capacities, spec_.placement);

  for (int n = 0; n < spec_.num_nodes; ++n) {
    std::vector<int> local_chains;
    for (int c = 0; c < spec_.num_chains; ++c)
      if (placement.node_of(static_cast<std::size_t>(c)) == n)
        local_chains.push_back(c);
    if (local_chains.empty()) {
      ++idle_nodes_;
      continue;
    }
    node_envs_.push_back(
        partition_node_env(spec_, comps, flows, local_chains, n));
  }
}

ModelReport ExperimentRunner::run_model(const SchedulerFactory& entry,
                                        telemetry::Recorder* recorder) {
  ModelReport report;
  report.prefix = series_prefix(entry.name);
  telemetry::Recorder local;

  // One scheduler per environment shape: trained policies are tied to the
  // chain count (state/action dims), so cluster nodes hosting the same
  // number of chains share one trained model — "train once, run many".
  std::map<int, std::unique_ptr<core::Scheduler>> by_shape;
  for (const auto& env : node_envs_) {
    if (by_shape.count(env.num_chains) == 0)
      by_shape[env.num_chains] = entry.make(env, spec_.seed);
  }

  if (node_envs_.size() == 1 && idle_nodes_ == 0) {
    // Single node: exactly the pre-scenario evaluation path (same seeds,
    // same warmup, same loop -> same numbers).
    report.result = core::evaluate_scheduler(
        node_envs_[0], *by_shape[node_envs_[0].num_chains],
        spec_.eval_windows, node_eval_seed(spec_, 0), entry.warmup, &local, "");
    report.result.scheduler = entry.name;
    copy_series(local, recorder, report.prefix);
    return report;
  }

  // Cluster: evaluate every node independently, then aggregate per-window
  // fleet metrics (idle nodes are charged at p_idle_w).
  std::vector<core::EvalResult> node_results;
  for (std::size_t n = 0; n < node_envs_.size(); ++n) {
    const core::EnvConfig& env = node_envs_[n];
    node_results.push_back(core::evaluate_scheduler(
        env, *by_shape[env.num_chains], spec_.eval_windows,
        node_eval_seed(spec_, n), entry.warmup, &local, format("node%zu_", n)));
  }

  const double idle_energy_j =
      idle_nodes_ * spec_.node.p_idle_w * spec_.window_s;
  const core::Sla sla = spec_.sla();
  core::EvalResult& result = report.result;
  result.scheduler = entry.name;
  result.windows = spec_.eval_windows;
  for (int w = 0; w < spec_.eval_windows; ++w) {
    const double t = w * spec_.window_s;
    double gbps = 0.0;
    double energy = idle_energy_j;
    double offered_pps = 0.0;
    double drop_weighted = 0.0;
    for (std::size_t n = 0; n < node_envs_.size(); ++n) {
      const std::string p = format("node%zu_", n);
      const auto wi = static_cast<std::size_t>(w);
      gbps += local.series(p + "throughput_gbps").values()[wi];
      energy += local.series(p + "energy_j").values()[wi];
      const double node_offered =
          local.series(p + "offered_pps").values()[wi];
      offered_pps += node_offered;
      // Drops are a fraction of *offered* load: a node that drops 90% of
      // a big offered stream must dominate the fleet figure, not vanish
      // because it delivered little.
      drop_weighted +=
          local.series(p + "drop_fraction").values()[wi] * node_offered;
    }
    const double efficiency = core::Sla::efficiency(gbps, energy);
    const double drop =
        offered_pps > 0.0 ? drop_weighted / offered_pps : 0.0;
    const bool satisfied = sla.satisfied(gbps, energy);
    result.mean_gbps += gbps;
    result.mean_energy_j += energy;
    result.mean_power_w += energy / spec_.window_s;
    result.mean_efficiency += efficiency;
    result.sla_satisfaction += satisfied ? 1.0 : 0.0;
    result.drop_fraction += drop;
    local.record("throughput_gbps", t, gbps);
    local.record("energy_j", t, energy);
    local.record("power_w", t, energy / spec_.window_s);
    local.record("efficiency", t, efficiency);
    local.record("drop_fraction", t, drop);
    local.record("offered_pps", t, offered_pps);
  }
  const auto n = static_cast<double>(spec_.eval_windows);
  result.mean_gbps /= n;
  result.mean_energy_j /= n;
  result.mean_power_w /= n;
  result.mean_efficiency /= n;
  result.sla_satisfaction /= n;
  result.drop_fraction /= n;

  copy_series(local, recorder, report.prefix);
  return report;
}

EvalReport ExperimentRunner::run(
    const std::vector<SchedulerFactory>& roster) {
  EvalReport report;
  report.scenario = spec_.name;
  report.nodes = spec_.num_nodes;
  for (const auto& entry : roster)
    report.models.push_back(run_model(entry, &report.series));
  return report;
}

}  // namespace greennfv::scenario
