#pragma once

#include <string>
#include <vector>

#include "scenario/scenario_spec.hpp"

/// \file presets.hpp
/// The named-scenario registry. A preset is a fully-specified ScenarioSpec
/// — "run the paper's evaluation", "slam the deployment with a flash
/// crowd", "spread six chains over a three-node cluster" — resolvable by
/// name from any bench or example, overridable key-by-key from the command
/// line, and exportable to a scenario file as a starting point for custom
/// workloads.

namespace greennfv::scenario {

/// All preset names, in listing order.
[[nodiscard]] std::vector<std::string> preset_names();

/// The preset with that name. Unknown names are a hard error
/// (std::invalid_argument listing the valid names) — a typo must never
/// silently run some other workload.
[[nodiscard]] ScenarioSpec preset(const std::string& name);

/// One row per preset: "name — description".
[[nodiscard]] std::string preset_table();

/// The single entry point benches/examples use: picks the scenario named
/// by `scenario=` (or loads `scenario_file=`, or falls back to
/// `default_scenario`), applies every per-key override in `config` on top,
/// validates, and returns it.
[[nodiscard]] ScenarioSpec resolve(
    const Config& config,
    const std::string& default_scenario = "paper-default");

/// Prints a sorted key listing; when `scenario_driven`, the preset table
/// follows. The one help-text implementation every binary's `help=1` path
/// shares (directly or via print_help_if_requested / bench handle_cli).
void print_cli_help(std::vector<std::string> keys, bool scenario_driven);

/// When `help=1` was passed: prints the scenario vocabulary plus
/// `extra_keys` and the preset table, and returns true so the caller can
/// exit before check_known rejects anything.
[[nodiscard]] bool print_help_if_requested(
    const Config& config, const std::vector<std::string>& extra_keys = {});

}  // namespace greennfv::scenario
