#include "scenario/presets.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/string_util.hpp"

namespace greennfv::scenario {

namespace {

ScenarioSpec paper_default() {
  ScenarioSpec spec;  // the defaults ARE the paper's §5 evaluation
  spec.name = "paper-default";
  spec.description =
      "Paper §5 evaluation: 3 heterogeneous chains, 5 flows at 12 Gbps"
      " steady, EE SLA, one node";
  return spec;
}

ScenarioSpec overload() {
  ScenarioSpec spec;
  spec.name = "overload";
  spec.description =
      "Sustained 30 Gbps over a 10 GbE node with bursty swings — livelock"
      " and drop-management territory";
  spec.total_offered_gbps = 30.0;
  spec.num_flows = 8;
  spec.profile.kind = traffic::RateProfile::Kind::kBursty;
  spec.profile.period_s = 60.0;
  spec.profile.amplitude = 0.4;
  spec.eval_windows = 16;
  return spec;
}

ScenarioSpec diurnal() {
  ScenarioSpec spec;
  spec.name = "diurnal";
  spec.description =
      "Metro-PoP day/night swing: 14 Gbps mean with a +/-60% sinusoid over"
      " 240 s";
  spec.total_offered_gbps = 14.0;
  spec.profile.kind = traffic::RateProfile::Kind::kDiurnal;
  spec.profile.period_s = 240.0;
  spec.profile.amplitude = 0.6;
  spec.eval_windows = 24;
  return spec;
}

ScenarioSpec flash_crowd() {
  ScenarioSpec spec;
  spec.name = "flash-crowd";
  spec.description =
      "10 Gbps steady until a 3x surge hits at t=40 s for 40 s — the"
      " reaction-time stress test";
  spec.total_offered_gbps = 10.0;
  spec.window_s = 5.0;
  spec.profile.kind = traffic::RateProfile::Kind::kFlashCrowd;
  spec.profile.surge_start_s = 40.0;
  spec.profile.surge_duration_s = 40.0;
  spec.profile.surge_factor = 3.0;
  spec.eval_windows = 24;
  return spec;
}

ScenarioSpec heterogeneous_cluster() {
  ScenarioSpec spec;
  spec.name = "heterogeneous-cluster";
  spec.description =
      "Three hosting nodes (the paper's testbed shape), six mixed-NF"
      " chains placed least-loaded, 12 flows at 30 Gbps";
  spec.num_nodes = 3;
  spec.placement = cluster::PlacementPolicy::kLeastLoaded;
  spec.num_chains = 6;
  spec.chain_nfs = {
      {"firewall", "router", "ids"},
      {"firewall", "nat", "tunnel_gw"},
      {"flow_monitor", "router", "epc"},
      {"nat", "router", "ids"},
      {"firewall", "flow_monitor", "tunnel_gw"},
      {"firewall", "router", "epc"},
  };
  spec.num_flows = 12;
  spec.total_offered_gbps = 30.0;
  return spec;
}

ScenarioSpec tcp_heavy() {
  ScenarioSpec spec;
  spec.name = "tcp-heavy";
  spec.description =
      "Explicit closed-loop mix: four AIMD TCP flows and two UDP blasters"
      " over the standard chains";
  spec.flows = {
      flow_from_text("tcp:poisson:512:1.5e6:0", 0),
      flow_from_text("tcp:mmpp:1518:4e5:1:2.5:0.5", 1),
      flow_from_text("tcp:poisson:256:1.8e6:2", 2),
      flow_from_text("tcp:mmpp:1024:5e5:0:2:0.4", 3),
      flow_from_text("udp:cbr:64:2e6:1", 4),
      flow_from_text("udp:onoff:128:1.5e6:2:3:0.5", 5),
  };
  spec.num_flows = static_cast<int>(spec.flows.size());
  return spec;
}

ScenarioSpec ci_smoke() {
  ScenarioSpec spec;
  spec.name = "ci-smoke";
  spec.description =
      "Tiny gate workload: 2 chains, 4 flows at 8 Gbps bursty, minimal"
      " training budgets — seconds, not minutes";
  spec.num_chains = 2;
  spec.num_flows = 4;
  spec.total_offered_gbps = 8.0;
  spec.profile.kind = traffic::RateProfile::Kind::kBursty;
  spec.profile.period_s = 8.0;
  spec.profile.amplitude = 0.5;
  spec.window_s = 2.0;
  spec.sub_windows = 2;
  spec.steps_per_episode = 4;
  spec.eval_windows = 3;
  spec.episodes = 6;
  spec.q_episodes = 6;
  spec.candidates = 1;
  return spec;
}

ScenarioSpec fleet_smoke() {
  ScenarioSpec spec;
  spec.name = "fleet-smoke";
  spec.description =
      "Tiny dynamic fleet: 3 nodes, online chain arrivals/departures,"
      " consolidation migrations, power gating — seconds, not minutes";
  spec.num_nodes = 3;
  spec.num_chains = 3;
  spec.num_flows = 6;
  spec.total_offered_gbps = 9.0;
  spec.window_s = 2.0;
  spec.sub_windows = 2;
  spec.steps_per_episode = 4;
  spec.eval_windows = 3;
  spec.episodes = 6;
  spec.q_episodes = 6;
  spec.candidates = 1;
  spec.fleet.enabled = true;
  spec.fleet.horizon_windows = 10;
  spec.fleet.arrival_rate = 0.7;
  spec.fleet.mean_holding_windows = 5.0;
  spec.fleet.flows_per_chain = 2;
  spec.fleet.chain_offered_gbps = 3.0;
  spec.fleet.policy = "consolidate";
  spec.fleet.sleep_after_windows = 1;
  return spec;
}

ScenarioSpec fault_smoke() {
  ScenarioSpec spec = fleet_smoke();
  spec.name = "fault-smoke";
  spec.description =
      "fleet-smoke plus fault injection: node crashes, a rack-outage"
      " chance, wake-latency storms, exponential repairs — the resilience"
      " gate, still seconds";
  // Rates sized so a 10-window run reliably sees crashes and recovery
  // without flattening the 3-node fleet: ~2 crashes, ~1 storm window.
  spec.fault.enabled = true;
  spec.fault.node_crash_rate = 0.2;
  spec.fault.rack_outage_rate = 0.05;
  spec.fault.rack_size = 2;
  spec.fault.mean_repair_windows = 3.0;
  spec.fault.wake_storm_prob = 0.15;
  spec.fault.wake_storm_factor = 4.0;
  return spec;
}

ScenarioSpec mega_fleet() {
  ScenarioSpec spec;
  spec.name = "mega-fleet";
  spec.description =
      "Hyperscale fleet history: 10k nodes, ~1M chain arrivals over 420"
      " windows (14 simulated minutes) — sized for the discrete-event"
      " engine, minutes on the timeline alone; evaluate models against it"
      " only with tiny rosters";
  spec.seed = 42;
  spec.num_nodes = 10000;
  spec.num_chains = 3;
  spec.num_flows = 6;
  spec.total_offered_gbps = 9.0;
  spec.window_s = 2.0;
  spec.sub_windows = 2;
  spec.steps_per_episode = 4;
  spec.eval_windows = 3;
  spec.episodes = 6;
  spec.q_episodes = 6;
  spec.candidates = 1;
  spec.fleet.enabled = true;
  spec.fleet.horizon_windows = 420;
  // 2500 arrivals/window x 420 windows ≈ 1.05M chains; mean holding 12
  // windows ≈ 30k live chains (90k committed cores) against 140k
  // schedulable — enough headroom that consolidation and power gating
  // keep churning instead of the fleet saturating.
  spec.fleet.arrival_rate = 2500.0;
  spec.fleet.mean_holding_windows = 12.0;
  spec.fleet.flows_per_chain = 1;
  spec.fleet.chain_offered_gbps = 3.0;
  spec.fleet.policy = "consolidate";
  spec.fleet.sleep_after_windows = 1;
  return spec;
}

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> presets = {
      paper_default(), overload(),  diurnal(),  flash_crowd(),
      heterogeneous_cluster(),      tcp_heavy(), ci_smoke(),
      fleet_smoke(),   fault_smoke(), mega_fleet(),
  };
  return presets;
}

}  // namespace

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  for (const auto& spec : registry()) names.push_back(spec.name);
  return names;
}

ScenarioSpec preset(const std::string& name) {
  for (const auto& spec : registry())
    if (spec.name == name) return spec;
  std::string known;
  for (const auto& spec : registry()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("scenario: unknown preset '" + name +
                              "' (known: " + known + ")");
}

std::string preset_table() {
  std::string table;
  for (const auto& spec : registry())
    table += format("  %-22s %s\n", spec.name.c_str(),
                    spec.description.c_str());
  return table;
}

void print_cli_help(std::vector<std::string> keys, bool scenario_driven) {
  keys.emplace_back("help");
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::printf("accepted key=value arguments:\n");
  for (const auto& key : keys) std::printf("  %s\n", key.c_str());
  if (scenario_driven) {
    std::printf("\nnamed scenarios (scenario=<name>):\n%s",
                preset_table().c_str());
  }
}

bool print_help_if_requested(const Config& config,
                             const std::vector<std::string>& extra_keys) {
  if (!config.get_bool("help", false)) return false;
  std::vector<std::string> keys = ScenarioSpec::known_keys();
  keys.insert(keys.end(), extra_keys.begin(), extra_keys.end());
  print_cli_help(std::move(keys), /*scenario_driven=*/true);
  return true;
}

ScenarioSpec resolve(const Config& config,
                     const std::string& default_scenario) {
  ScenarioSpec spec;
  if (const auto file = config.get("scenario_file")) {
    if (config.has("scenario"))
      throw std::invalid_argument(
          "scenario: pass scenario= or scenario_file=, not both");
    spec = ScenarioSpec::load(*file);
  } else {
    spec = preset(config.get_string("scenario", default_scenario));
  }
  spec.apply(config);
  spec.validate();
  return spec;
}

}  // namespace greennfv::scenario
