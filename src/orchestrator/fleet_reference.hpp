#pragma once

#include "orchestrator/fleet.hpp"

/// \file fleet_reference.hpp
/// The window-synchronous fleet timeline builder, preserved verbatim from
/// before the discrete-event refactor. It scans every node every window —
/// O(nodes x windows) even when nothing changes — which is exactly why it
/// was replaced, and exactly why it stays: it is the oracle the
/// equivalence tests pin the event engine against. Not used on any
/// production path.

namespace greennfv::orchestrator {

/// Builds the fleet history the pre-refactor engine produced. `spec` must
/// be a valid fleet scenario (fleet.enabled, schedulable cores). When
/// `policy_override` is non-null it is used instead of the spec's named
/// policy (the hook custom-policy equivalence tests use).
[[nodiscard]] FleetTimeline build_reference_timeline(
    const scenario::ScenarioSpec& spec,
    const FleetPolicy* policy_override = nullptr);

}  // namespace greennfv::orchestrator
