#include "orchestrator/fleet_series.hpp"

namespace greennfv::orchestrator {

const std::vector<std::string>& fleet_series_columns() {
  static const std::vector<std::string> kColumns = {
      // position in time
      "window", "t_s",
      // churn
      "arrivals", "departures", "rejected", "net_rejected", "net_blocked",
      "live_chains",
      // commitment + power-state census
      "committed_cores", "capacity_cores", "active_nodes", "idle_nodes",
      "asleep_nodes", "down_nodes",
      // energy decomposition
      "standby_energy_j", "wake_energy_j", "migration_energy_j",
      "replace_energy_j", "link_energy_j",
      // transitions + fault recovery outcomes
      "wakeups", "migrations", "replacements", "fault_dropped", "rerouted",
      // fault injections applied this window
      "node_crashes", "node_repairs", "link_fails", "link_repairs",
      // SLA pressure
      "routed_chains", "latency_violations", "path_latency_us",
      // fabric load
      "link_util_mean", "link_util_max",
      // downtime charged this window, all causes
      "downtime_s"};
  return kColumns;
}

FleetSeriesSampler::FleetSeriesSampler(int horizon, double window_s)
    : window_s_(window_s) {
  if (!telemetry::series::enabled()) return;
  table_ = std::make_shared<telemetry::SeriesTable>(fleet_series_columns());
  if (horizon > 0) table_->reserve_rows(static_cast<std::size_t>(horizon));
  row_.resize(fleet_series_columns().size());
}

void FleetSeriesSampler::sample(int window, const FleetTimeline::Window& win,
                                double committed_cores, double capacity_cores,
                                const topology::PathTable* net) {
  if (table_ == nullptr) return;

  // Decompose the window's downtime charges by cause. Every wake-up
  // pushes exactly one kWake charge, so counting them recovers the
  // window's wakeup count; kDrop charges carry no energy, so replace
  // energy is the kReplace+kDrop sum.
  double wake_e = 0.0;
  double migration_e = 0.0;
  double replace_e = 0.0;
  double downtime_s = 0.0;
  double wakeups = 0.0;
  for (const DowntimeCharge& charge : win.charges) {
    downtime_s += charge.downtime_s;
    switch (charge.kind) {
      case ChargeKind::kWake:
        wake_e += charge.energy_j;
        wakeups += 1.0;
        break;
      case ChargeKind::kMigration:
        migration_e += charge.energy_j;
        break;
      case ChargeKind::kReplace:
      case ChargeKind::kDrop:
        replace_e += charge.energy_j;
        break;
    }
  }

  // Link utilization over the live fabric: committed / capacity per
  // non-failed link. Failed links are powered off and routable around,
  // so they are excluded from the census (a dead link is not "0% hot").
  double util_sum = 0.0;
  double util_max = 0.0;
  int util_links = 0;
  if (net != nullptr) {
    const topology::Topology& topo = net->topo();
    for (int link = 0; link < topo.num_links(); ++link) {
      if (net->link_failed(link)) continue;
      const auto capacity = topo.links()[static_cast<std::size_t>(link)]
                                .capacity_kbps;
      if (capacity <= 0) continue;
      const double util = static_cast<double>(net->committed_kbps(link)) /
                          static_cast<double>(capacity);
      util_sum += util;
      if (util > util_max) util_max = util;
      ++util_links;
    }
  }
  const double util_mean = util_links > 0 ? util_sum / util_links : 0.0;
  const double path_latency_us =
      win.routed_chains > 0
          ? static_cast<double>(win.path_latency_sum_ns) /
                (1e3 * win.routed_chains)
          : 0.0;

  std::size_t i = 0;
  row_[i++] = static_cast<double>(window);
  row_[i++] = static_cast<double>(window) * window_s_;
  row_[i++] = static_cast<double>(win.arrivals.size());
  row_[i++] = static_cast<double>(win.departures.size());
  row_[i++] = static_cast<double>(win.rejected);
  row_[i++] = static_cast<double>(win.net_rejected);
  row_[i++] = static_cast<double>(win.net_blocked);
  row_[i++] = static_cast<double>(win.live_chains);
  row_[i++] = committed_cores;
  row_[i++] = capacity_cores;
  row_[i++] = static_cast<double>(win.active_nodes);
  row_[i++] = static_cast<double>(win.idle_nodes);
  row_[i++] = static_cast<double>(win.asleep_nodes);
  row_[i++] = static_cast<double>(win.down_nodes);
  row_[i++] = win.standby_energy_j;
  row_[i++] = wake_e;
  row_[i++] = migration_e;
  row_[i++] = replace_e;
  row_[i++] = win.link_energy_j;
  row_[i++] = wakeups;
  row_[i++] = static_cast<double>(win.migrations.size());
  row_[i++] = static_cast<double>(win.replacements.size());
  row_[i++] = static_cast<double>(win.fault_dropped.size());
  row_[i++] = static_cast<double>(win.rerouted);
  row_[i++] = static_cast<double>(win.node_crashes);
  row_[i++] = static_cast<double>(win.node_repairs);
  row_[i++] = static_cast<double>(win.link_fails);
  row_[i++] = static_cast<double>(win.link_repairs);
  row_[i++] = static_cast<double>(win.routed_chains);
  row_[i++] = static_cast<double>(win.latency_violations);
  row_[i++] = path_latency_us;
  row_[i++] = util_mean;
  row_[i++] = util_max;
  row_[i++] = downtime_s;
  table_->append_row(row_);
}

}  // namespace greennfv::orchestrator
