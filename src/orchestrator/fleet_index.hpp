#pragma once

#include <vector>

#include "common/arena.hpp"
#include "common/bucket_queue.hpp"
#include "orchestrator/policy.hpp"

/// \file fleet_index.hpp
/// Incrementally-maintained fleet state for the discrete-event engine:
/// committed cores, hosted chain lists, and power flags per node, plus an
/// occupancy-bucketed runqueue (awake nodes keyed by integral committed
/// cores) and an ordered asleep-id set. Placement policies query it in
/// O(levels) instead of scanning the roster; index-unaware policies get a
/// materialized FleetView through the same interface.
///
/// The bucketing is exact, not approximate: every chain commits an
/// integral core count (one core per NF), so two nodes compare equal on
/// utilization/slack iff they sit in the same bucket, and the registry
/// policies' epsilon tie-breaks (1e-12 improvements over values that
/// differ by >= 1 core) never bind. That is what lets bucket argmin /
/// argmax queries reproduce the reference engine's linear scans
/// bit-for-bit.

namespace greennfv::orchestrator {

class FleetIndex {
 public:
  FleetIndex(int num_nodes, double capacity_cores);

  // --- engine mutations ----------------------------------------------------
  /// Registers `chain` on `node` (appends to the hosted list). The chain's
  /// load is remembered for views and consolidation planning.
  void place_chain(int chain, int node, double cores, double offered_gbps);
  /// Removes `chain` from its current node.
  void remove_chain(int chain);
  /// Moves `chain` from its current node to `to` (appends to `to`'s
  /// hosted list — call sort_hosted(to) at the window edge).
  void move_chain(int chain, int to);
  /// Power transitions (asleep nodes always have zero committed cores).
  void wake(int node);
  void sleep(int node);
  /// Fault transitions. crash() takes the node out of service: it leaves
  /// both the awake buckets and the asleep set, so no policy query —
  /// indexed or view-based — can ever pick it. The caller must evict the
  /// hosted chains first. repair() returns it to service awake and empty.
  void crash(int node);
  void repair(int node);
  [[nodiscard]] bool down(int node) const {
    return down_flags_[static_cast<std::size_t>(node)] != 0;
  }
  /// Restores the sorted-hosted-list discipline after migrations.
  void sort_hosted(int node);

  // --- node state ----------------------------------------------------------
  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(committed_.size());
  }
  [[nodiscard]] double capacity_cores() const { return capacity_; }
  [[nodiscard]] double committed_cores(int node) const {
    return committed_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] bool asleep(int node) const {
    return asleep_flags_[static_cast<std::size_t>(node)] != 0;
  }
  [[nodiscard]] const std::vector<int>& hosted(int node) const {
    return hosted_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] int chain_node(int chain) const {
    return chain_node_[static_cast<std::size_t>(chain)];
  }
  [[nodiscard]] double chain_cores(int chain) const {
    return chain_cores_[static_cast<std::size_t>(chain)];
  }

  // --- policy queries ------------------------------------------------------
  /// Awake nodes bucketed by integral committed cores, ordered ids within.
  [[nodiscard]] const BucketQueue& awake_levels() const { return awake_; }
  /// Ordered ids of asleep nodes (always at committed == 0).
  [[nodiscard]] const BucketQueue::IdSet& asleep_ids() const {
    return asleep_;
  }
  [[nodiscard]] int min_asleep_id() const {
    return asleep_.empty() ? -1 : *asleep_.begin();
  }
  /// Largest integral level L with L + cores <= capacity + 1e-9 (the
  /// policies' fits() tolerance), or -1 when nothing fits.
  [[nodiscard]] int max_fitting_level(double cores) const;

  /// Full FleetView snapshot for index-unaware (custom) policies.
  [[nodiscard]] FleetView materialize_view() const;

  /// Bytes the bucket/runqueue arena has reserved from the OS — the
  /// flight recorder's fleet.index.arena_bytes gauge.
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_.reserved_bytes();
  }

 private:
  [[nodiscard]] std::size_t level_of(int node) const {
    return node_level_[static_cast<std::size_t>(node)];
  }
  void set_level(int node, double committed);

  double capacity_;
  Arena arena_;
  BucketQueue awake_;
  BucketQueue::IdSet asleep_;
  std::vector<double> committed_;
  std::vector<std::size_t> node_level_;
  std::vector<char> asleep_flags_;
  std::vector<char> down_flags_;
  std::vector<std::vector<int>> hosted_;
  // Per-chain load registry, indexed by chain id (grows on demand).
  std::vector<int> chain_node_;
  std::vector<double> chain_cores_;
  std::vector<double> chain_gbps_;
};

}  // namespace greennfv::orchestrator
