#include "orchestrator/fleet.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/event_heap.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "core/nf_controller.hpp"
#include "nfvsim/chain.hpp"
#include "orchestrator/fault.hpp"
#include "orchestrator/fleet_index.hpp"
#include "orchestrator/fleet_series.hpp"
#include "orchestrator/timeline_io.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "topology/path_table.hpp"
#include "traffic/generator.hpp"

// The timeline builder here is a discrete-event engine: a binary event
// heap drives departures, arrival ticks, consolidation ticks, and
// accounting ticks in (window, phase) order, and a FleetIndex answers
// placement queries from occupancy buckets in O(core levels). It is
// proven bit-identical to the window-synchronous engine it replaced
// (preserved in fleet_reference.cpp) by the golden suite and the live
// equivalence tests: same RNG draw order, same floating-point
// accumulation order, same policy tie-breaks.

namespace greennfv::orchestrator {

namespace {

/// Salt separating the fleet event stream (arrivals, holding times, flow
/// shapes) from every other consumer of the scenario seed.
constexpr std::uint64_t kTimelineSeedSalt = 0xF1EE7C0FFEEull;
/// Per-epoch stride on the node evaluation seed: a node whose chain set
/// changed re-seeds its environment on a fresh stream; epoch 0 IS
/// scenario::node_eval_seed, which is what keeps the static fleet
/// bit-identical to ExperimentRunner.
constexpr std::uint64_t kEpochSeedStride = 0x9E3779B97F4A7C15ull;

/// Event phases within one window, in the order the reference engine ran
/// its per-window steps: departures leave, faults strike and recovery
/// runs, arrivals land, consolidation migrates, then occupancy/power
/// accounting closes the window.
enum EventPhase : int {
  kDeparturePhase = 0,
  kFaultPhase = 1,
  kArrivalPhase = 2,
  kConsolidatePhase = 3,
  kAccountPhase = 4,
};

void copy_series(const telemetry::Recorder& from, telemetry::Recorder* to,
                 const std::string& prefix) {
  if (to == nullptr) return;
  for (const std::string& name : from.series_names()) {
    const TimeSeries& s = from.series(name);
    for (std::size_t i = 0; i < s.size(); ++i)
      to->record(prefix + name, s.times()[i], s.values()[i]);
  }
}

}  // namespace

FleetOrchestrator::FleetOrchestrator(scenario::ScenarioSpec spec)
    : FleetOrchestrator(std::move(spec), nullptr) {}

FleetOrchestrator::FleetOrchestrator(scenario::ScenarioSpec spec,
                                     std::unique_ptr<FleetPolicy> policy)
    : spec_(std::move(spec)), policy_override_(std::move(policy)) {
  spec_.validate();
  if (!spec_.fleet.enabled) {
    throw std::invalid_argument(
        "orchestrator: scenario '" + spec_.name +
        "' has fleet.enabled=0 — run it through ExperimentRunner");
  }
  horizon_ = spec_.fleet.horizon_windows > 0 ? spec_.fleet.horizon_windows
                                             : spec_.eval_windows;
  static_fleet_ = spec_.fleet.arrival_rate == 0.0;
  capacity_cores_ = static_cast<double>(spec_.node.total_cores) -
                    spec_.node.controller_cores;
  if (capacity_cores_ <= 0.0) {
    throw std::invalid_argument(
        "orchestrator: node has no schedulable cores (total_cores minus"
        " controller_cores must be positive)");
  }
  build_timeline();
}

void FleetOrchestrator::build_timeline() {
  namespace mc = telemetry::metrics;
  // Explicit Span (not the macro) so the phase timer keeps accumulating
  // when the tracer is compiled out — same for every timer-carrying span
  // in this file.
  const telemetry::trace::Span build_span(
      "fleet/build_timeline", &mc::counter("fleet.phase.build_ns"));
  const int num_nodes = spec_.num_nodes;
  const double window_s = spec_.window_s;
  timeline_.num_nodes = num_nodes;
  Rng rng(spec_.seed ^ kTimelineSeedSalt);
  const std::unique_ptr<FleetPolicy> owned_policy =
      policy_override_ == nullptr ? make_fleet_policy(spec_.fleet.policy)
                                  : nullptr;
  const FleetPolicy* policy = policy_override_ != nullptr
                                  ? policy_override_.get()
                                  : owned_policy.get();
  const PowerStateConfig ps_config{
      spec_.node.p_idle_w, spec_.node.p_sleep_w, spec_.node.wake_latency_s,
      spec_.fleet.sleep_after_windows, spec_.fleet.power_gating};
  std::vector<NodePowerStateMachine> power(
      static_cast<std::size_t>(num_nodes), NodePowerStateMachine(ps_config));
  FleetIndex index(num_nodes, capacity_cores_);

  // --- the network fabric (topology runs only) -----------------------------
  // Built once per timeline; PathTable's integer kbps/ns accounting makes
  // its state a pure function of the active chain set, so the event and
  // reference engines agree regardless of their release orderings.
  std::unique_ptr<topology::Topology> topo;
  std::unique_ptr<topology::PathTable> net_owned;
  if (spec_.topology.enabled) {
    topo = std::make_unique<topology::Topology>(
        topology::Topology::build(spec_.topology, num_nodes));
    net_owned = std::make_unique<topology::PathTable>(
        *topo, topology::routing_from_name(spec_.topology.routing),
        topology::ns_from_us(spec_.latency_sla_us));
    timeline_.topology_enabled = true;
    timeline_.topology_switches = topo->num_switches();
    timeline_.topology_links = topo->num_links();
  }
  topology::PathTable* const net = net_owned.get();

  // --- the fault schedule (fault runs only) -------------------------------
  // Expanded once from its own salted RNG stream, exactly like the
  // arrival process: a pure function of (spec, horizon, fleet shape) both
  // engines consume verbatim. fault.enabled=0 draws nothing, so every
  // pre-fault history keeps its bits.
  const FaultSchedule faults = build_fault_schedule(
      spec_, horizon_, num_nodes, net != nullptr ? topo->num_links() : 0);
  if (spec_.fault.enabled) {
    timeline_.fault_enabled = true;
    timeline_.node_crashes = faults.node_crashes;
    timeline_.node_repairs = faults.node_repairs;
    timeline_.link_fails = faults.link_fails;
    timeline_.link_repairs = faults.link_repairs;
    timeline_.rack_outages = faults.rack_outages;
    timeline_.storm_windows = faults.storm_windows;
  }
  // Wake charges cost `wake_storm_factor`x during storm windows (cold
  // nodes thundering awake under datacenter-wide pressure); 1.0x
  // otherwise — multiplying by 1.0 is exact, so fault-free runs are
  // untouched bit for bit.
  const auto storm_scale = [&](int w) {
    return faults.storm_active(w) ? spec_.fault.wake_storm_factor : 1.0;
  };

  // --- the initial chain set (the scenario's static topology) -------------
  const auto comps = scenario::resolved_chain_nfs(spec_);
  timeline_.flows = scenario::resolved_flows(spec_);
  for (int c = 0; c < spec_.num_chains; ++c) {
    ChainInstance chain;
    chain.id = c;
    chain.nfs = comps[static_cast<std::size_t>(c)];
    // Algorithm 1 line 1 allocates one core per NF.
    chain.cores = static_cast<double>(chain.nfs.size());
    for (const auto& flow : timeline_.flows) {
      if (flow.chain_index != c) continue;
      chain.flows.push_back(flow);
      chain.offered_gbps += flow.mean_rate_gbps();
      chain.offered_pps += flow.mean_rate_pps;
    }
    if (chain.flows.empty()) {
      throw std::invalid_argument(format(
          "orchestrator: initial chain %d receives no flows (fleet runs"
          " need traffic on every initial chain)",
          c));
    }
    timeline_.chains.push_back(std::move(chain));
  }

  // Minimum one window of residency; exponential holding beyond that.
  const auto draw_holding = [&]() {
    return 1 + static_cast<int>(
                   rng.exponential(1.0 / spec_.fleet.mean_holding_windows));
  };

  // --- the event heap ------------------------------------------------------
  // Payload: the departing chain id for kDeparturePhase events, unused
  // for the self-rescheduling ticks. Same-window departures pop in push
  // order (chains are placed in ascending id order), which reproduces
  // the reference engine's sorted departure lists without a sort.
  EventHeap<int, int> events;

  // Nodes perturbed since the last accounting tick: only these can have
  // unsorted hosted lists (migration receivers) — everyone else keeps
  // the sorted-at-window-edge invariant for free.
  std::vector<int> dirty;

  const auto place = [&](int id, int w, FleetTimeline::Window& win) {
    ChainInstance& chain = timeline_.chains[static_cast<std::size_t>(id)];
    const ArrivalRequest request{chain.cores, chain.offered_gbps};
    const int node = policy->choose_arrival_indexed(index, request, net);
    if (node < 0) {
      ++win.rejected;
      ++timeline_.rejected;
      chain.first_node = -1;
      return;
    }
    // Network admission before anything commits: a placement whose path
    // would oversubscribe a link is rejected here, and the node is never
    // spuriously woken for it.
    if (net != nullptr && !net->commit_chain(id, node, chain.offered_gbps)) {
      ++win.rejected;
      ++timeline_.rejected;
      ++win.net_rejected;
      ++timeline_.net_rejected;
      chain.first_node = -1;
      return;
    }
    if (net != nullptr) {
      chain.path_hops = net->chain_hops(id);
      chain.path_latency_ns = net->chain_latency_ns(id);
    }
    const auto charge = power[static_cast<std::size_t>(node)].activate();
    if (charge.woke) {
      const double scale = storm_scale(w);
      index.wake(node);
      ++timeline_.wakeups;
      win.charges.push_back({id, charge.downtime_s * scale,
                             charge.energy_j * scale, ChargeKind::kWake});
      timeline_.wake_energy_j += charge.energy_j * scale;
      timeline_.downtime_s += charge.downtime_s * scale;
    }
    index.place_chain(id, node, chain.cores, chain.offered_gbps);
    win.arrivals.push_back(id);
    ++timeline_.arrivals;
    chain.first_node = node;
    dirty.push_back(node);
    if (!static_fleet_ && chain.departure_window >= 0 &&
        chain.departure_window < horizon_) {
      events.push(chain.departure_window, kDeparturePhase, id);
    }
  };

  // Recovery re-placement for a chain a fault evicted from `from`: the
  // same policy seam that places arrivals picks the new host, the move
  // pays a replace charge (plus a wake charge if the host was asleep),
  // and a chain no node/path can take is dropped — it pays one full
  // window of downtime and leaves the fleet for good (its pending
  // departure event is lazily skipped).
  const auto replace_chain = [&](int id, int from, int w,
                                 FleetTimeline::Window& win) {
    const ChainInstance& chain =
        timeline_.chains[static_cast<std::size_t>(id)];
    const ArrivalRequest request{chain.cores, chain.offered_gbps};
    const int node = policy->choose_arrival_indexed(index, request, net);
    bool placed = node >= 0;
    if (placed && net != nullptr &&
        !net->commit_chain(id, node, chain.offered_gbps)) {
      placed = false;
    }
    if (!placed) {
      win.fault_dropped.push_back(id);
      ++timeline_.fault_dropped;
      win.charges.push_back({id, window_s, 0.0, ChargeKind::kDrop});
      timeline_.downtime_s += window_s;
      return;
    }
    const auto charge = power[static_cast<std::size_t>(node)].activate();
    if (charge.woke) {
      const double scale = storm_scale(w);
      index.wake(node);
      ++timeline_.wakeups;
      win.charges.push_back({id, charge.downtime_s * scale,
                             charge.energy_j * scale, ChargeKind::kWake});
      timeline_.wake_energy_j += charge.energy_j * scale;
      timeline_.downtime_s += charge.downtime_s * scale;
    }
    index.place_chain(id, node, chain.cores, chain.offered_gbps);
    win.replacements.push_back({id, from, node});
    ++timeline_.replaced;
    win.charges.push_back({id, spec_.fault.replace_downtime_s,
                           spec_.fault.replace_energy_j,
                           ChargeKind::kReplace});
    timeline_.replace_energy_j += spec_.fault.replace_energy_j;
    timeline_.downtime_s += spec_.fault.replace_downtime_s;
    dirty.push_back(node);
  };

  timeline_.windows.resize(static_cast<std::size_t>(horizon_));

  if (spec_.fault.enabled) events.push(0, kFaultPhase, -1);
  events.push(0, kArrivalPhase, -1);
  if (!static_fleet_ && spec_.fleet.migration)
    events.push(0, kConsolidatePhase, -1);
  events.push(0, kAccountPhase, -1);

  int next_id = spec_.num_chains;

  // Flight-recorder handles, hoisted out of the event loop. Departures
  // pop far too often for per-event spans (a mega-fleet run sees ~1M of
  // them — two clock reads each would blow the <5% overhead budget), so
  // they are counted only; the once-per-window ticks each get a span
  // that doubles as the phase-time accumulator.
  auto& c_ev_departure = mc::counter("fleet.events.departure");
  auto& c_ev_fault = mc::counter("fleet.events.fault_tick");
  auto& c_phase_fault = mc::counter("fleet.phase.recover_ns");
  auto& c_ev_arrival = mc::counter("fleet.events.arrival_tick");
  auto& c_ev_consolidate = mc::counter("fleet.events.consolidate_tick");
  auto& c_ev_account = mc::counter("fleet.events.account_tick");
  auto& c_phase_arrival = mc::counter("fleet.phase.arrival_ns");
  auto& c_phase_consolidate = mc::counter("fleet.phase.consolidate_ns");
  auto& c_phase_account = mc::counter("fleet.phase.account_ns");
  auto& c_mig_attempted = mc::counter("fleet.migrations.attempted");

  // Per-window health sampler — inert unless telemetry::series::enabled().
  // It only *reads* window state after accounting closes, so arming it
  // cannot perturb the timeline.
  FleetSeriesSampler sampler(horizon_, window_s);

  while (!events.empty()) {
    const auto event = events.pop();
    const int w = event.time;
    FleetTimeline::Window& win =
        timeline_.windows[static_cast<std::size_t>(w)];

    switch (event.phase) {
      case kDeparturePhase: {
        // One chain's holding time expired at this window edge.
        c_ev_departure.add();
        const int id = event.payload;
        const int node = index.chain_node(id);
        // A fault dropped this chain before its holding time ran out —
        // it already left the fleet; its departure never happens.
        if (node < 0) break;
        dirty.push_back(node);
        index.remove_chain(id);
        if (net != nullptr) net->release_chain(id);
        win.departures.push_back(id);
        ++timeline_.departures;
        break;
      }

      case kFaultPhase: {
        // Inject this window's scheduled faults and recover: crashed
        // nodes evict their chains through the placement policy, failed
        // links re-route or evict their riders, repairs return capacity.
        c_ev_fault.add();
        const telemetry::trace::Span recover_span(
            "fleet/recover", static_cast<std::uint64_t>(w), &c_phase_fault);
        for (const FaultEvent& ev :
             faults.windows[static_cast<std::size_t>(w)]) {
          switch (ev.kind) {
            case FaultEvent::Kind::kNodeCrash: {
              const int node = ev.target;
              ++win.node_crashes;
              // Copy: eviction mutates the hosted list underneath. Sort:
              // a same-window replacement may have appended out of order,
              // and eviction order is part of the bit-identity contract.
              std::vector<int> victims = index.hosted(node);
              std::sort(victims.begin(), victims.end());
              for (const int id : victims) {
                index.remove_chain(id);
                if (net != nullptr) net->release_chain(id);
              }
              index.crash(node);
              // The node loses its power state with everything else; it
              // comes back cold (fresh machine, Idle) at repair.
              power[static_cast<std::size_t>(node)] =
                  NodePowerStateMachine(ps_config);
              dirty.push_back(node);
              for (const int id : victims) replace_chain(id, node, w, win);
              break;
            }
            case FaultEvent::Kind::kNodeRepair: {
              ++win.node_repairs;
              index.repair(ev.target);
              break;
            }
            case FaultEvent::Kind::kLinkFail: {
              ++win.link_fails;
              // Riders come back in ascending chain id; each either
              // re-routes in place (same host, new path) or is evicted
              // and re-placed like a crash victim.
              const std::vector<int> riders = net->fail_link(ev.target);
              for (const int id : riders) {
                const int host = index.chain_node(id);
                if (host < 0) continue;
                if (net->try_move(id, host)) {
                  ++win.rerouted;
                  ++timeline_.rerouted;
                  continue;
                }
                index.remove_chain(id);
                net->release_chain(id);
                dirty.push_back(host);
                replace_chain(id, host, w, win);
              }
              break;
            }
            case FaultEvent::Kind::kLinkRepair: {
              ++win.link_repairs;
              net->repair_link(ev.target);
              break;
            }
          }
        }
        if (w + 1 < horizon_) events.push(w + 1, kFaultPhase, -1);
        break;
      }

      case kArrivalPhase: {
        // The initial chain set lands at w=0 through the same policy;
        // dynamic arrivals are Poisson with the scenario's RateProfile
        // as the fleet-level load envelope.
        c_ev_arrival.add();
        const telemetry::trace::Span arrival_span(
            "fleet/arrival_tick", static_cast<std::uint64_t>(w),
            &c_phase_arrival);
        if (w == 0) {
          for (int c = 0; c < spec_.num_chains; ++c) {
            if (!static_fleet_) {
              timeline_.chains[static_cast<std::size_t>(c)]
                  .departure_window = draw_holding();
            }
            place(c, w, win);
          }
        }
        if (!static_fleet_) {
          const double mean = spec_.fleet.arrival_rate *
                              spec_.profile.multiplier(w * window_s);
          const std::uint64_t count = mean > 0.0 ? rng.poisson(mean) : 0;
          for (std::uint64_t a = 0; a < count; ++a) {
            ChainInstance chain;
            chain.id = next_id++;
            chain.nfs = nfvsim::standard_chain_nfs(chain.id);
            chain.cores = static_cast<double>(chain.nfs.size());
            chain.flows = traffic::make_eval_flows(
                spec_.fleet.flows_per_chain, /*num_chains=*/1,
                spec_.fleet.chain_offered_gbps, rng.next_u64());
            for (auto& flow : chain.flows) {
              flow.chain_index = chain.id;
              chain.offered_gbps += flow.mean_rate_gbps();
              chain.offered_pps += flow.mean_rate_pps;
            }
            chain.arrival_window = w;
            chain.departure_window = w + draw_holding();
            timeline_.chains.push_back(std::move(chain));
            ChainInstance& arrived = timeline_.chains.back();
            place(arrived.id, w, win);
            // A rejected chain never joins the flow pool — its flows
            // would otherwise be dead weight re-scanned on every
            // node-env rebuild.
            if (arrived.first_node >= 0) {
              timeline_.flows.insert(timeline_.flows.end(),
                                     arrived.flows.begin(),
                                     arrived.flows.end());
            }
          }
          if (w + 1 < horizon_) events.push(w + 1, kArrivalPhase, -1);
        }
        break;
      }

      case kConsolidatePhase: {
        // The policy may drain underutilized nodes so power gating can
        // put them to sleep. Each move costs downtime + energy.
        c_ev_consolidate.add();
        const telemetry::trace::Span consolidate_span(
            "fleet/consolidate_tick", static_cast<std::uint64_t>(w),
            &c_phase_consolidate);
        const std::vector<Migration> plan = policy->consolidate_indexed(
            index, spec_.fleet.consolidate_below);
        c_mig_attempted.add(plan.size());
        for (const Migration& move : plan) {
          // Network veto: a consolidation move whose re-routed path has
          // no feasible capacity is skipped (try_move leaves the fabric
          // untouched on failure), not applied half-way.
          if (net != nullptr && !net->try_move(move.chain, move.to)) {
            ++win.net_blocked;
            ++timeline_.net_blocked;
            continue;
          }
          const ChainInstance& chain =
              timeline_.chains[static_cast<std::size_t>(move.chain)];
          index.remove_chain(move.chain);
          const auto charge =
              power[static_cast<std::size_t>(move.to)].activate();
          if (charge.woke) {
            // The policies never wake a node to consolidate into, but a
            // custom policy could — account for it either way.
            const double scale = storm_scale(w);
            index.wake(move.to);
            ++timeline_.wakeups;
            win.charges.push_back({move.chain, charge.downtime_s * scale,
                                   charge.energy_j * scale,
                                   ChargeKind::kWake});
            timeline_.wake_energy_j += charge.energy_j * scale;
            timeline_.downtime_s += charge.downtime_s * scale;
          }
          index.place_chain(move.chain, move.to, chain.cores,
                            chain.offered_gbps);
          win.migrations.push_back(move);
          ++timeline_.migrations;
          win.charges.push_back({move.chain,
                                 spec_.fleet.migration_downtime_s,
                                 spec_.fleet.migration_energy_j,
                                 ChargeKind::kMigration});
          timeline_.migration_energy_j += spec_.fleet.migration_energy_j;
          timeline_.downtime_s += spec_.fleet.migration_downtime_s;
          dirty.push_back(move.from);
          dirty.push_back(move.to);
        }
        if (w + 1 < horizon_) events.push(w + 1, kConsolidatePhase, -1);
        break;
      }

      case kAccountPhase: {
        c_ev_account.add();
        const telemetry::trace::Span account_span(
            "fleet/account_tick", static_cast<std::uint64_t>(w),
            &c_phase_account);
        // Restore the sorted-hosted-list discipline on perturbed nodes
        // (arrival appends keep lists sorted — ids grow monotonically —
        // so only migration receivers actually reorder).
        std::sort(dirty.begin(), dirty.end());
        dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
        for (const int n : dirty) index.sort_hosted(n);
        dirty.clear();

        // Occupancy and power accounting sweep every node in ascending
        // order: the standby-energy floating-point accumulation order is
        // part of the bit-identity contract, and every unoccupied node
        // contributes draw each window — there is nothing to skip.
        for (int n = 0; n < num_nodes; ++n) {
          // A crashed node is out of the fleet until repair: no standby
          // draw, no occupancy sample, no power-state advance — it only
          // counts toward the window's down-node tally.
          if (index.down(n)) {
            ++win.down_nodes;
            continue;
          }
          const std::size_t count = index.hosted(n).size();
          timeline_.occupancy.add(count);
          win.live_chains += static_cast<int>(count);

          const bool occupied = count != 0;
          auto& machine = power[static_cast<std::size_t>(n)];
          if (occupied) {
            ++win.active_nodes;
          } else if (machine.asleep()) {
            ++win.asleep_nodes;
          } else {
            ++win.idle_nodes;
          }
          win.standby_energy_j += machine.advance(occupied, window_s);
          // Mirror a just-gated node into the index so next window's
          // placement queries see it on the asleep list.
          if (machine.asleep() && !index.asleep(n)) index.sleep(n);
        }
        if (net != nullptr) {
          // End-of-window fabric snapshot from the table's exact running
          // counters — no per-link sweep except the fixed-order energy sum.
          win.link_energy_j = net->window_link_energy_j(window_s);
          win.routed_chains = static_cast<int>(net->active_chains());
          win.latency_violations =
              static_cast<int>(net->active_latency_violations());
          win.path_latency_sum_ns = net->active_path_latency_ns();
          timeline_.link_energy_j += win.link_energy_j;
          timeline_.routed_chain_windows += win.routed_chains;
          timeline_.latency_violation_chain_windows += win.latency_violations;
          timeline_.path_latency_sum_ns += win.path_latency_sum_ns;
        }
        timeline_.standby_energy_j += win.standby_energy_j;
        if (sampler.active()) {
          double committed = 0.0;
          for (int n = 0; n < num_nodes; ++n) {
            if (!index.down(n)) committed += index.committed_cores(n);
          }
          const double capacity =
              static_cast<double>(num_nodes - win.down_nodes) *
              capacity_cores_;
          sampler.sample(w, win, committed, capacity, net);
        }
        if (w + 1 < horizon_) events.push(w + 1, kAccountPhase, -1);
        break;
      }

      default:
        throw std::logic_error("orchestrator: unknown event phase");
    }
  }

  if (sampler.active()) timeline_.series = sampler.table();

  // Timeline-level tallies land once the builder finishes; the running
  // members are already exact, so snapshot them instead of double-
  // counting inside the loop.
  if (mc::enabled()) {
    mc::counter("fleet.arrivals").add(
        static_cast<std::uint64_t>(timeline_.arrivals));
    mc::counter("fleet.departures").add(
        static_cast<std::uint64_t>(timeline_.departures));
    mc::counter("fleet.rejected").add(
        static_cast<std::uint64_t>(timeline_.rejected));
    mc::counter("fleet.net_rejected").add(
        static_cast<std::uint64_t>(timeline_.net_rejected));
    mc::counter("fleet.migrations.applied").add(
        static_cast<std::uint64_t>(timeline_.migrations));
    mc::counter("fleet.migrations.net_blocked").add(
        static_cast<std::uint64_t>(timeline_.net_blocked));
    mc::counter("fleet.wakeups").add(
        static_cast<std::uint64_t>(timeline_.wakeups));
    mc::gauge("fleet.index.arena_bytes")
        .set(static_cast<double>(index.arena_bytes()));
    if (timeline_.fault_enabled) {
      mc::counter("fault.injected.node_crash")
          .add(static_cast<std::uint64_t>(timeline_.node_crashes));
      mc::counter("fault.injected.node_repair")
          .add(static_cast<std::uint64_t>(timeline_.node_repairs));
      mc::counter("fault.injected.link_fail")
          .add(static_cast<std::uint64_t>(timeline_.link_fails));
      mc::counter("fault.injected.link_repair")
          .add(static_cast<std::uint64_t>(timeline_.link_repairs));
      mc::counter("fault.injected.rack_outage")
          .add(static_cast<std::uint64_t>(timeline_.rack_outages));
      mc::counter("fault.replaced")
          .add(static_cast<std::uint64_t>(timeline_.replaced));
      mc::counter("fault.dropped")
          .add(static_cast<std::uint64_t>(timeline_.fault_dropped));
      mc::counter("fault.rerouted")
          .add(static_cast<std::uint64_t>(timeline_.rerouted));
    }
  }
}

scenario::ModelReport FleetOrchestrator::run_model(
    const scenario::SchedulerFactory& entry,
    telemetry::Recorder* recorder) {
  namespace mc = telemetry::metrics;
  // Interned so the span name outlives this call; one string per model.
  // An explicit Span (not the macro) so the run_model_ns timer keeps
  // accumulating for bench phase breakdowns even when the tracer is
  // compiled out.
  const telemetry::trace::Span model_span(
      telemetry::trace::intern("fleet/run_model:" + entry.name),
      &mc::counter("fleet.phase.run_model_ns"));
  auto& c_phase_measure = mc::counter("fleet.phase.measure_ns");
  auto& c_node_windows = mc::counter("fleet.node_windows");
  auto& c_rebuilds = mc::counter("fleet.env_rebuilds");
  scenario::ModelReport report;
  report.prefix = scenario::series_prefix(entry.name);
  telemetry::Recorder local;

  const int num_nodes = spec_.num_nodes;
  const double window_s = spec_.window_s;
  const core::Sla sla = spec_.sla();
  // Per-node series are a per-node-per-window artifact — prohibitive at
  // hyperscale, so they stop at 64 nodes (every paper-shaped fleet).
  const bool node_series = num_nodes <= 64;

  std::vector<std::vector<std::string>> comps;
  comps.reserve(timeline_.chains.size());
  for (const ChainInstance& chain : timeline_.chains)
    comps.push_back(chain.nfs);

  // The static single-node fleet takes the exact ExperimentRunner path:
  // the whole-deployment EnvConfig (flows resolved inside the environment
  // at the node evaluation seed), warmup, profile alignment, then one
  // NfController window per fleet window — same seeds, same loop, same
  // numbers, bit for bit.
  const bool degenerate =
      num_nodes == 1 && static_fleet_ && !spec_.fault.enabled &&
      timeline_.windows.front().rejected == 0;

  // Per-node runtime: rebuilt whenever the hosted chain set changes.
  struct NodeRuntime {
    std::unique_ptr<core::NfvEnvironment> env;
    std::unique_ptr<core::NfController> controller;
    std::vector<int> chains;
    int epochs = 0;
  };
  std::vector<NodeRuntime> nodes(static_cast<std::size_t>(num_nodes));
  // Trained policies are tied to the chain count (state/action dims), so
  // each node reuses its scheduler across epochs with the same shape —
  // mirroring ExperimentRunner's "train once, run many" per shape.
  std::map<std::pair<int, int>, std::unique_ptr<core::Scheduler>>
      schedulers;

  core::EvalResult& result = report.result;
  result.scheduler = entry.name;
  result.windows = horizon_;

  // Membership is replayed from the timeline's deltas; only nodes the
  // replay reports dirty can need a runtime rebuild this window.
  MembershipReplay replay(timeline_, num_nodes);

  for (int w = 0; w < horizon_; ++w) {
    const telemetry::trace::Span window_span(
        "fleet/measure_window", static_cast<std::uint64_t>(w),
        &c_phase_measure);
    const FleetTimeline::Window& win =
        timeline_.windows[static_cast<std::size_t>(w)];
    const double t = w * window_s;

    // (Re)build runtimes whose membership changed at this window edge.
    for (const int n : replay.advance()) {
      NodeRuntime& rt = nodes[static_cast<std::size_t>(n)];
      const std::vector<int>& members = replay.members(n);
      const bool unchanged =
          rt.chains == members && (rt.env != nullptr || members.empty());
      if (unchanged) continue;
      rt.controller.reset();
      rt.env.reset();
      rt.chains = members;
      if (members.empty()) continue;
      c_rebuilds.add();

      core::EnvConfig env_config =
          degenerate ? spec_.env_config()
                     : scenario::partition_node_env(
                           spec_, comps, timeline_.flows, members, n);
      const std::uint64_t env_seed =
          scenario::node_eval_seed(spec_, static_cast<std::size_t>(n)) +
          kEpochSeedStride * static_cast<std::uint64_t>(rt.epochs);
      ++rt.epochs;

      const std::pair<int, int> key{n, env_config.num_chains};
      auto it = schedulers.find(key);
      if (it == schedulers.end()) {
        it = schedulers.emplace(key, entry.make(env_config, spec_.seed))
                 .first;
      }
      core::Scheduler& scheduler = *it->second;
      scheduler.reset();
      rt.env = std::make_unique<core::NfvEnvironment>(env_config, env_seed);
      rt.controller =
          std::make_unique<core::NfController>(*rt.env, scheduler);
      if (w == 0) {
        // Deployment settling, exactly evaluate_scheduler's preamble:
        // warmup windows unmeasured, then the rate-profile clock re-zeroed
        // so every model meets a non-steady envelope at the same measured
        // time. Mid-run epochs get no free settling — reconfiguration
        // transients are real and measured.
        if (entry.warmup > 0) (void)rt.controller->run(entry.warmup);
        rt.env->align_rate_profile();
      } else {
        // A node rebuilt mid-run starts a fresh environment whose clock
        // reads 0 — re-phase its rate-profile onto fleet time so the
        // whole fleet keeps tracking one absolute load shape (the same
        // clock the arrival envelope runs on).
        rt.env->align_rate_profile(t);
      }
    }

    // Advance every occupied node one window, in ascending node order
    // (the replay's occupied list is sorted — the accumulation order
    // below is bit-identity-relevant).
    double gbps = 0.0;
    double energy = win.standby_energy_j + win.link_energy_j;
    double offered_pps = 0.0;
    double drop_weighted = 0.0;
    int active = 0;
    const core::NfvEnvironment::WindowOutcome* solo = nullptr;
    for (const int n : replay.occupied()) {
      NodeRuntime& rt = nodes[static_cast<std::size_t>(n)];
      (void)rt.controller->run(1);
      const auto& outcome = rt.env->last_outcome();
      ++active;
      solo = &outcome;
      gbps += outcome.throughput_gbps;
      energy += outcome.energy_j;
      offered_pps += outcome.offered_pps;
      // Drops are a fraction of *offered* load (see ExperimentRunner).
      drop_weighted += outcome.drop_fraction * outcome.offered_pps;
      if (node_series) {
        local.record(format("node%d_throughput_gbps", n), t,
                     outcome.throughput_gbps);
        local.record(format("node%d_energy_j", n), t, outcome.energy_j);
      }
    }
    c_node_windows.add(static_cast<std::uint64_t>(active));

    // Migration downtime and wake latency: the affected chain's traffic
    // is lost for `downtime_s` of the window (counted as dropped), and
    // the transfer/boot energy lands on the fleet bill.
    double lost_gbps = 0.0;
    double lost_pps = 0.0;
    double charge_energy_j = 0.0;
    for (const DowntimeCharge& charge : win.charges) {
      const ChainInstance& chain =
          timeline_.chains[static_cast<std::size_t>(charge.chain)];
      const double fraction =
          std::min(charge.downtime_s, window_s) / window_s;
      lost_gbps += chain.offered_gbps * fraction;
      lost_pps += chain.offered_pps * fraction;
      charge_energy_j += charge.energy_j;
    }

    double w_gbps;
    double w_energy;
    double w_efficiency;
    double w_drop;
    double w_sla;
    if (active == 1 && win.standby_energy_j == 0.0 && win.charges.empty() &&
        !spec_.topology.enabled && !spec_.fault.enabled) {
      // One node, no fleet overheads: use its window outcome verbatim —
      // this is the branch that keeps the single-node degeneration
      // bit-identical (no re-derivation through fleet formulas).
      w_gbps = solo->throughput_gbps;
      w_energy = solo->energy_j;
      w_efficiency = solo->efficiency;
      w_drop = solo->drop_fraction;
      w_sla = solo->sla_satisfied ? 1.0 : 0.0;
    } else {
      w_gbps = std::max(0.0, gbps - lost_gbps);
      w_energy = energy + charge_energy_j;
      w_efficiency = core::Sla::efficiency(w_gbps, w_energy);
      const double dropped_pps = drop_weighted + lost_pps;
      w_drop = offered_pps > 0.0
                   ? std::min(1.0, dropped_pps / offered_pps)
                   : 0.0;
      w_sla = sla.satisfied(w_gbps, w_energy) ? 1.0 : 0.0;
    }
    // The latency SLA is conjunctive with the scenario SLA: any routed
    // chain over budget this window fails the window.
    if (spec_.topology.enabled && spec_.latency_sla_us > 0.0 &&
        win.latency_violations > 0) {
      w_sla = 0.0;
    }

    result.mean_gbps += w_gbps;
    result.mean_energy_j += w_energy;
    result.mean_power_w += w_energy / window_s;
    result.mean_efficiency += w_efficiency;
    result.sla_satisfaction += w_sla;
    result.drop_fraction += w_drop;

    local.record("throughput_gbps", t, w_gbps);
    local.record("energy_j", t, w_energy);
    local.record("power_w", t, w_energy / window_s);
    local.record("efficiency", t, w_efficiency);
    local.record("drop_fraction", t, w_drop);
    local.record("offered_pps", t, offered_pps);
    local.record("active_nodes", t, win.active_nodes);
    local.record("asleep_nodes", t, win.asleep_nodes);
    local.record("live_chains", t, win.live_chains);
    local.record("arrivals", t,
                 static_cast<double>(win.arrivals.size()));
    local.record("departures", t,
                 static_cast<double>(win.departures.size()));
    local.record("migrations", t,
                 static_cast<double>(win.migrations.size()));
    local.record("rejected", t, win.rejected);
    if (spec_.topology.enabled) {
      local.record("link_energy_j", t, win.link_energy_j);
      local.record("path_latency_us", t,
                   win.routed_chains > 0
                       ? static_cast<double>(win.path_latency_sum_ns) /
                             (1e3 * win.routed_chains)
                       : 0.0);
      local.record("latency_violations", t, win.latency_violations);
      local.record("net_rejected", t, win.net_rejected);
    }
    if (spec_.fault.enabled) {
      local.record("down_nodes", t, win.down_nodes);
      local.record("node_crashes", t, win.node_crashes);
      local.record("fault_replaced", t,
                   static_cast<double>(win.replacements.size()));
      local.record("fault_dropped", t,
                   static_cast<double>(win.fault_dropped.size()));
      local.record("fault_rerouted", t, win.rerouted);
    }
  }

  const auto n = static_cast<double>(horizon_);
  result.mean_gbps /= n;
  result.mean_energy_j /= n;
  result.mean_power_w /= n;
  result.mean_efficiency /= n;
  result.sla_satisfaction /= n;
  result.drop_fraction /= n;

  copy_series(local, recorder, report.prefix);
  return report;
}

FleetReport FleetOrchestrator::run(
    const std::vector<scenario::SchedulerFactory>& roster) {
  FleetReport fleet;
  fleet.report.scenario = spec_.name;
  fleet.report.nodes = spec_.num_nodes;
  for (const auto& entry : roster)
    fleet.report.models.push_back(run_model(entry, &fleet.report.series));

  fleet.arrivals = timeline_.arrivals;
  fleet.departures = timeline_.departures;
  fleet.rejected = timeline_.rejected;
  fleet.migrations = timeline_.migrations;
  fleet.wakeups = timeline_.wakeups;
  fleet.standby_energy_j = timeline_.standby_energy_j;
  fleet.wake_energy_j = timeline_.wake_energy_j;
  fleet.migration_energy_j = timeline_.migration_energy_j;
  fleet.occupancy_fractions = timeline_.occupancy.fractions();
  for (const FleetTimeline::Window& win : timeline_.windows) {
    fleet.mean_active_nodes += win.active_nodes;
    fleet.mean_asleep_nodes += win.asleep_nodes;
    fleet.mean_live_chains += win.live_chains;
    fleet.mean_down_nodes += win.down_nodes;
  }
  const auto n = static_cast<double>(timeline_.windows.size());
  fleet.mean_active_nodes /= n;
  fleet.mean_asleep_nodes /= n;
  fleet.mean_live_chains /= n;
  fleet.mean_down_nodes /= n;

  if (timeline_.topology_enabled) {
    fleet.topology_enabled = true;
    fleet.topology_preset = spec_.topology.preset;
    fleet.topology_routing = spec_.topology.routing;
    fleet.topology_switches = timeline_.topology_switches;
    fleet.topology_links = timeline_.topology_links;
    fleet.net_rejected = timeline_.net_rejected;
    fleet.net_blocked = timeline_.net_blocked;
    fleet.link_energy_j = timeline_.link_energy_j;
    fleet.latency_budget_us = spec_.latency_sla_us;
    if (timeline_.routed_chain_windows > 0) {
      fleet.mean_path_latency_us =
          static_cast<double>(timeline_.path_latency_sum_ns) /
          (1e3 * static_cast<double>(timeline_.routed_chain_windows));
      if (spec_.latency_sla_us > 0.0) {
        fleet.latency_sla_satisfaction =
            1.0 -
            static_cast<double>(timeline_.latency_violation_chain_windows) /
                static_cast<double>(timeline_.routed_chain_windows);
      }
    }
  }

  if (timeline_.fault_enabled) {
    fleet.fault_enabled = true;
    fleet.node_crashes = timeline_.node_crashes;
    fleet.node_repairs = timeline_.node_repairs;
    fleet.link_fails = timeline_.link_fails;
    fleet.link_repairs = timeline_.link_repairs;
    fleet.rack_outages = timeline_.rack_outages;
    fleet.storm_windows = timeline_.storm_windows;
    fleet.replaced = timeline_.replaced;
    fleet.fault_dropped = timeline_.fault_dropped;
    fleet.rerouted = timeline_.rerouted;
    fleet.replace_energy_j = timeline_.replace_energy_j;
  }
  return fleet;
}

std::string FleetReport::fleet_summary() const {
  std::string out;
  out += format(
      "fleet: %d arrival(s) (%d rejected), %d departure(s), %d"
      " migration(s), %d wake-up(s)\n",
      arrivals, rejected, departures, migrations, wakeups);
  out += format(
      "fleet: mean %.2f active / %.2f asleep node(s), %.2f live chain(s)\n",
      mean_active_nodes, mean_asleep_nodes, mean_live_chains);
  out += format(
      "fleet: standby energy %.0f J, wake %.0f J, migration %.0f J\n",
      standby_energy_j, wake_energy_j, migration_energy_j);
  out += "fleet: node occupancy";
  for (std::size_t k = 0; k < occupancy_fractions.size(); ++k)
    out += format(" %zu:%.0f%%", k, occupancy_fractions[k] * 100.0);
  out += "\n";
  if (topology_enabled) {
    out += format(
        "fleet: topology %s/%s, %d switch(es), %d link(s), link energy"
        " %.0f J\n",
        topology_preset.c_str(), topology_routing.c_str(), topology_switches,
        topology_links, link_energy_j);
    out += format(
        "fleet: net %d rejected, %d blocked move(s), mean path latency"
        " %.2f us",
        net_rejected, net_blocked, mean_path_latency_us);
    if (latency_budget_us > 0.0) {
      out += format(", latency SLA (%.0f us) %.0f%%", latency_budget_us,
                    latency_sla_satisfaction * 100.0);
    }
    out += "\n";
  }
  if (fault_enabled) {
    out += format(
        "fleet: faults %d crash(es) (%d rack outage(s)), %d link fail(s),"
        " %d storm window(s)\n",
        node_crashes, rack_outages, link_fails, storm_windows);
    out += format(
        "fleet: recovery %d replaced, %d dropped, %d rerouted, replace"
        " energy %.0f J, mean %.2f down node(s)\n",
        replaced, fault_dropped, rerouted, replace_energy_j,
        mean_down_nodes);
  }
  return out;
}

}  // namespace greennfv::orchestrator
