#pragma once

#include <string>
#include <vector>

#include "orchestrator/fleet.hpp"

/// \file timeline_io.hpp
/// Canonical text serialization of fleet histories and evaluations, plus
/// the membership-replay helper both the serializer and the orchestrator
/// use to reconstruct per-node hosted-chain lists from the timeline's
/// per-window deltas. The format is bit-exact: every double is printed
/// both human-readably (%.17g) and as its raw IEEE-754 bit pattern, so a
/// golden file pins the engine's arithmetic — not just its rounding.
///
/// The serializer never reads a materialized membership snapshot; it
/// replays arrivals/departures/migrations itself. That is what lets the
/// same golden files pin both the window-synchronous reference engine and
/// the discrete-event engine, and lets the timeline drop per-window
/// membership storage (prohibitive at 10k nodes x hundreds of windows).

namespace greennfv::orchestrator {

/// Reconstructs per-node membership window by window from a timeline's
/// deltas. Replays exactly the mutation order of the timeline builder:
/// departures leave, arrivals land on their first_node, migrations move
/// chains — after which each perturbed node's hosted list is re-sorted
/// (the builder's end-of-window discipline, so lists are always sorted
/// at window boundaries).
class MembershipReplay {
 public:
  /// `num_nodes` > 0; the timeline must outlive the replay.
  MembershipReplay(const FleetTimeline& timeline, int num_nodes);

  /// Applies the next window's deltas. Returns the sorted ids of nodes
  /// whose membership changed this window (the "dirty" set). Callable at
  /// most timeline.windows.size() times.
  const std::vector<int>& advance();

  /// Windows applied so far (the next advance() applies window `cursor()`).
  [[nodiscard]] int cursor() const { return cursor_; }
  /// Sorted chain ids hosted by `node` after the last advance().
  [[nodiscard]] const std::vector<int>& members(int node) const {
    return members_[static_cast<std::size_t>(node)];
  }
  /// Sorted ids of nodes currently hosting at least one chain.
  [[nodiscard]] const std::vector<int>& occupied() const { return occupied_; }
  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(members_.size());
  }

 private:
  void move_chain(int chain, int to);

  const FleetTimeline* timeline_;
  int cursor_ = 0;
  std::vector<std::vector<int>> members_;
  /// Current host per chain id; -1 = not in the fleet.
  std::vector<int> chain_node_;
  std::vector<int> occupied_;
  std::vector<int> dirty_;
};

/// Formats `value` as "%.17g/%016llx" — decimal plus raw bit pattern.
[[nodiscard]] std::string double_bits(double value);

/// The full fleet history as canonical text: header counters, every
/// chain (with its flows), and per-window events + replayed membership.
/// Two timelines serialize identically iff they are bit-identical.
[[nodiscard]] std::string timeline_to_text(const FleetTimeline& timeline,
                                           int num_nodes);

/// A fleet evaluation as canonical text: fleet history summary, every
/// model's means, and every recorded series sample (names sorted).
[[nodiscard]] std::string eval_to_text(const FleetReport& report);

}  // namespace greennfv::orchestrator
