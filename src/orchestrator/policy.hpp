#pragma once

#include <memory>
#include <string>
#include <vector>

/// \file policy.hpp
/// Online placement policies for the fleet orchestrator. Unlike
/// `cluster::place_chains` (one-shot, whole chain set known up front),
/// these decide per *arrival* against the live fleet state — committed
/// cores, power states — and the consolidating policy additionally
/// proposes migrations that drain underutilized nodes so power gating can
/// put them to sleep. This is the joint placement + allocation lever the
/// related work (Tajiki et al., Sang et al.) identifies as where the
/// energy/QoS trade-off is decided.

namespace greennfv::topology {
class PathTable;
}  // namespace greennfv::topology

namespace greennfv::orchestrator {

class FleetIndex;

/// One hosted chain from the policy's perspective.
struct ChainLoad {
  int id = 0;
  double cores = 0.0;
  double offered_gbps = 0.0;
};

/// Live state of one node as the policies see it.
struct NodeView {
  double capacity_cores = 0.0;
  double committed_cores = 0.0;
  bool asleep = false;
  /// Crashed/out-of-service (fault injection). Down nodes are also
  /// presented at capacity 0, so fits() already masks them for every
  /// registry policy; the flag is informational for custom policies.
  bool down = false;
  std::vector<ChainLoad> chains;

  [[nodiscard]] bool occupied() const { return !chains.empty(); }
  [[nodiscard]] double free_cores() const {
    return capacity_cores - committed_cores;
  }
  [[nodiscard]] double utilization() const {
    return capacity_cores > 0.0 ? committed_cores / capacity_cores : 0.0;
  }
  [[nodiscard]] bool fits(double cores) const {
    return committed_cores + cores <= capacity_cores + 1e-9;
  }
};

struct FleetView {
  std::vector<NodeView> nodes;
};

/// One proposed chain move (consolidation).
struct Migration {
  int chain = 0;
  int from = 0;
  int to = 0;
};

/// Everything an arriving chain asks of the fleet — cores on a node plus
/// (when a topology is live) a routed path wide enough for its traffic.
struct ArrivalRequest {
  double cores = 0.0;
  double offered_gbps = 0.0;
};

class FleetPolicy {
 public:
  virtual ~FleetPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Node to host a `cores`-wide arrival, or -1 when nothing fits (the
  /// chain is rejected). Choosing a sleeping node wakes it (the caller
  /// charges the wake latency/energy).
  [[nodiscard]] virtual int choose(const FleetView& view,
                                   double cores) const = 0;

  /// Consolidation pass: migrations that drain nodes whose utilization
  /// sits below `below` when their chains fit on other awake occupied
  /// nodes. Default: none (only the consolidating policy migrates).
  [[nodiscard]] virtual std::vector<Migration> consolidate(
      const FleetView& view, double below) const {
    (void)view;
    (void)below;
    return {};
  }

  /// Index-backed variants the discrete-event engine calls on the hot
  /// path. The registry policies answer straight from the occupancy
  /// buckets in O(core levels) — provably equal to their linear-scan
  /// choose()/consolidate() because committed cores are integral (see
  /// fleet_index.hpp). The defaults materialize a FleetView and defer to
  /// the scan variants, so custom policies keep working unchanged.
  [[nodiscard]] virtual int choose_indexed(const FleetIndex& index,
                                           double cores) const;
  [[nodiscard]] virtual std::vector<Migration> consolidate_indexed(
      const FleetIndex& index, double below) const;

  /// Arrival placement with the network in view. `net` is the live
  /// routing/commitment table when the scenario runs a topology, null
  /// otherwise. Defaults defer to choose()/choose_indexed(), so every
  /// network-blind policy (including pre-existing custom ones) behaves
  /// exactly as before; only topology-aware policies override these.
  /// Whatever node is returned, the *engine* still admission-checks the
  /// path — a policy cannot oversubscribe a link, only pick badly.
  [[nodiscard]] virtual int choose_arrival(
      const FleetView& view, const ArrivalRequest& request,
      const topology::PathTable* net) const {
    (void)net;
    return choose(view, request.cores);
  }
  [[nodiscard]] virtual int choose_arrival_indexed(
      const FleetIndex& index, const ArrivalRequest& request,
      const topology::PathTable* net) const;
};

/// Registry lookup by name ("first-fit", "least-loaded", "energy-bestfit",
/// "consolidate", "topology-aware-bestfit"); throws std::invalid_argument
/// listing the registry on unknown names. The accepted names are mirrored by
/// scenario::FleetSpec::policy_names() so campaign expansion validates
/// fleet.policy before anything runs.
[[nodiscard]] std::unique_ptr<FleetPolicy> make_fleet_policy(
    const std::string& name);

[[nodiscard]] const std::vector<std::string>& fleet_policy_names();

}  // namespace greennfv::orchestrator
