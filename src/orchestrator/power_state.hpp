#pragma once

/// \file power_state.hpp
/// Per-node power-state machine for the fleet orchestrator:
///
///   Active --last chain departs--> Idle --`sleep_after` empty windows-->
///   Asleep --placement--> Active (wake latency charged as downtime)
///
/// Active nodes are billed by their simulation environment; idle nodes
/// draw p_idle_w, sleeping nodes p_sleep_w (NodeSpec constants). Waking
/// costs `wake_latency_s` of downtime for the chain whose placement woke
/// the node — charged against the fleet SLA — plus p_idle_w draw for the
/// latency (the node boots, serves nothing).

namespace greennfv::orchestrator {

enum class NodePowerState { kActive, kIdle, kAsleep };

struct PowerStateConfig {
  double p_idle_w = 60.0;
  double p_sleep_w = 8.0;
  double wake_latency_s = 3.0;
  /// Consecutive empty windows before an idle node is gated.
  int sleep_after_windows = 2;
  /// Master switch; when false the node never leaves Active/Idle.
  bool gating = true;
};

class NodePowerStateMachine {
 public:
  explicit NodePowerStateMachine(PowerStateConfig config)
      : config_(config) {}

  [[nodiscard]] NodePowerState state() const { return state_; }
  [[nodiscard]] bool asleep() const {
    return state_ == NodePowerState::kAsleep;
  }

  /// Result of activating a node for a chain placement.
  struct WakeCharge {
    bool woke = false;
    double downtime_s = 0.0;  ///< wake latency the placed chain eats
    double energy_j = 0.0;    ///< idle draw burned during the wake
  };

  /// A chain lands on the node: leaves Idle/Asleep. Returns the wake
  /// charge (zero unless the node was asleep).
  WakeCharge activate();

  /// Advances one window with the node's occupancy known; maintains the
  /// idle counter and the Idle -> Asleep transition. Returns the standby
  /// energy the node burned this window — 0 when occupied (the node's
  /// environment bills its own power).
  double advance(bool occupied, double window_s);

 private:
  PowerStateConfig config_;
  NodePowerState state_ = NodePowerState::kIdle;
  int empty_windows_ = 0;
};

}  // namespace greennfv::orchestrator
