#pragma once

#include <memory>
#include <string>
#include <vector>

#include "orchestrator/fleet.hpp"
#include "telemetry/series.hpp"
#include "topology/path_table.hpp"

/// \file fleet_series.hpp
/// The per-window fleet health sampler: one SeriesTable row per
/// accounting window, capturing the energy decomposition, power-state
/// census, core commitment, churn, SLA pressure, fault events, and
/// link-utilization summary of the window that just closed. Both fleet
/// engines call sample() at the end of their accounting phase; the
/// sampler is inert (and free) unless telemetry::series::enabled() was
/// set before the timeline build. Everything here is *derived* from
/// window state the engines already computed — the sampler never feeds
/// back into the simulation, which is what keeps timelines byte-identical
/// with sampling on or off.

namespace greennfv::orchestrator {

/// The fixed column schema, in emission order. Shared by the sampler,
/// the campaign exports (`runs/<id>.series.csv`), the per-cell
/// aggregates, and the report generator's validators.
[[nodiscard]] const std::vector<std::string>& fleet_series_columns();

class FleetSeriesSampler {
 public:
  /// Arms the sampler iff the global series gate is on; `horizon` sizes
  /// the table up front so steady-state sampling never allocates.
  FleetSeriesSampler(int horizon, double window_s);

  /// False when the gate was off at construction — callers skip the
  /// per-window derivation work entirely.
  [[nodiscard]] bool active() const { return table_ != nullptr; }

  /// Captures one closed window. `committed_cores` is the fleet-wide core
  /// commitment over up nodes at window end; `capacity_cores` the
  /// capacity of those same up nodes; `net` is null for non-topology
  /// runs.
  void sample(int window, const FleetTimeline::Window& win,
              double committed_cores, double capacity_cores,
              const topology::PathTable* net);

  /// The finished table (null when inactive). The timeline holds this
  /// alias, so the table outlives the sampler.
  [[nodiscard]] std::shared_ptr<const telemetry::SeriesTable> table() const {
    return table_;
  }

 private:
  double window_s_;
  std::shared_ptr<telemetry::SeriesTable> table_;
  std::vector<double> row_;  ///< scratch, one slot per column
};

}  // namespace greennfv::orchestrator
