#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "orchestrator/policy.hpp"
#include "orchestrator/power_state.hpp"
#include "scenario/experiment.hpp"
#include "telemetry/stats.hpp"

/// \file fleet.hpp
/// The fleet orchestrator: an event-driven multi-node simulation in which
/// service chains arrive and depart online, a pluggable policy places
/// (and consolidates) them, nodes power-gate when drained, and migrations
/// cost downtime + energy charged against the fleet SLA. The fleet
/// *history* (arrivals, placements, migrations, power states) depends
/// only on the scenario — it is pre-computed once as a FleetTimeline and
/// replayed identically for every roster model, so models are compared
/// against the same sequence of events. Per-node scheduling runs through
/// the existing per-node evaluation path (NfvEnvironment + NfController),
/// which is what keeps a static single-node fleet bit-identical to
/// ExperimentRunner.

namespace greennfv::telemetry {
class SeriesTable;
}  // namespace greennfv::telemetry

namespace greennfv::orchestrator {

/// One service chain over its fleet lifetime.
struct ChainInstance {
  int id = 0;
  std::vector<std::string> nfs;
  double cores = 0.0;
  /// This chain's flows (FlowSpec::chain_index == id).
  std::vector<traffic::FlowSpec> flows;
  double offered_gbps = 0.0;
  double offered_pps = 0.0;
  int arrival_window = 0;
  /// Window at whose start the chain leaves; -1 = stays to the end.
  int departure_window = -1;
  /// Node hosting the chain at arrival (-1 = rejected).
  int first_node = -1;
  /// Routed path at arrival (topology runs only): hop count and exact
  /// end-to-end latency in integral ns. -1/0 = unrouted (no topology,
  /// rejected, or no feasible path).
  int path_hops = -1;
  std::int64_t path_latency_ns = 0;
};

/// What a DowntimeCharge pays for. Wake and migration predate fault
/// injection; replace charges the recovery re-placement of a chain
/// evicted by a fault, and drop charges the window in which a chain died
/// because no node/path could take it.
enum class ChargeKind { kWake, kMigration, kReplace, kDrop };

/// A downtime/energy charge against one chain in one window.
struct DowntimeCharge {
  int chain = 0;
  double downtime_s = 0.0;
  double energy_j = 0.0;
  ChargeKind kind = ChargeKind::kWake;
};

/// The model-independent fleet history.
struct FleetTimeline {
  struct Window {
    std::vector<int> arrivals;    ///< chain ids placed this window
    std::vector<int> departures;  ///< chain ids gone at window start
    int rejected = 0;
    std::vector<Migration> migrations;
    std::vector<DowntimeCharge> charges;
    /// Idle + sleep draw of every unoccupied node this window.
    double standby_energy_j = 0.0;
    int active_nodes = 0;
    int idle_nodes = 0;
    int asleep_nodes = 0;
    int live_chains = 0;
    /// Network accounting (topology runs only; all-zero otherwise).
    /// Rejections that had cores but no feasible path; consolidation
    /// moves vetoed because the new path would oversubscribe a link.
    int net_rejected = 0;
    int net_blocked = 0;
    /// End-of-window fabric state: chains holding a path, how many of
    /// them exceed the latency budget, their exact summed path latency
    /// (integral ns — order-independent), and the window's link energy.
    int routed_chains = 0;
    int latency_violations = 0;
    std::int64_t path_latency_sum_ns = 0;
    double link_energy_j = 0.0;
    /// Fault accounting (fault runs only; all-zero otherwise). Injections
    /// applied at the start of this window, the recovery outcome per
    /// evicted chain (replacements in application order, then drops), the
    /// chains re-routed in place after a link failure, and the number of
    /// nodes down at the end of the window.
    int node_crashes = 0;
    int node_repairs = 0;
    int link_fails = 0;
    int link_repairs = 0;
    std::vector<Migration> replacements;
    std::vector<int> fault_dropped;
    int rerouted = 0;
    int down_nodes = 0;
  };

  // Per-window membership snapshots are NOT stored — at hyperscale
  // (10k nodes x hundreds of windows) they dominate memory. Reconstruct
  // hosted-chain lists from the per-window deltas with MembershipReplay
  // (timeline_io.hpp); the replay is exact because arrivals record their
  // first_node and migrations/departures are logged per window.
  std::vector<Window> windows;
  /// Fleet width (spec.num_nodes) — what MembershipReplay needs to size
  /// per-node state without the spec in hand.
  int num_nodes = 0;
  /// Every chain ever seen, indexed by id.
  std::vector<ChainInstance> chains;
  /// Fleet-wide flow list in arrival order (chain_index = chain id) —
  /// the form scenario::partition_node_env consumes.
  std::vector<traffic::FlowSpec> flows;

  int arrivals = 0;
  int departures = 0;
  int rejected = 0;
  int migrations = 0;
  int wakeups = 0;
  double standby_energy_j = 0.0;
  double wake_energy_j = 0.0;
  double migration_energy_j = 0.0;
  double downtime_s = 0.0;
  /// Chains-per-node over every (node, window) cell.
  telemetry::CountHistogram occupancy;

  /// Network totals (topology runs only; all defaults otherwise — the
  /// serializer gates its topology block on `topology_enabled` so
  /// pre-topology timelines stay byte-identical).
  bool topology_enabled = false;
  int topology_switches = 0;
  int topology_links = 0;
  int net_rejected = 0;
  int net_blocked = 0;
  /// Chain-window sums of the per-window fabric state above.
  std::int64_t routed_chain_windows = 0;
  std::int64_t latency_violation_chain_windows = 0;
  std::int64_t path_latency_sum_ns = 0;
  double link_energy_j = 0.0;

  /// Fault totals (fault runs only; all defaults otherwise — the
  /// serializer gates its fault block on `fault_enabled` so fault-free
  /// timelines stay byte-identical to the pre-fault goldens).
  bool fault_enabled = false;
  int node_crashes = 0;
  int node_repairs = 0;
  int link_fails = 0;
  int link_repairs = 0;
  int rack_outages = 0;
  int storm_windows = 0;
  int replaced = 0;        ///< evicted chains successfully re-placed
  int fault_dropped = 0;   ///< evicted chains no node/path could take
  int rerouted = 0;        ///< chains re-pathed in place after a link fail
  double replace_energy_j = 0.0;

  /// Per-window health series (fleet_series.hpp schema), captured only
  /// when telemetry::series::enabled() — null otherwise. Pure
  /// observability: never read by the engines or the serializer, so
  /// timelines stay byte-identical with sampling on or off.
  std::shared_ptr<const telemetry::SeriesTable> series;
};

/// A fleet evaluation: the uniform EvalReport (per-model means + telemetry
/// series, campaign/artifact compatible) plus the fleet history summary.
struct FleetReport {
  scenario::EvalReport report;
  // Shared fleet history (identical for every model by construction):
  int arrivals = 0;
  int departures = 0;
  int rejected = 0;
  int migrations = 0;
  int wakeups = 0;
  double standby_energy_j = 0.0;
  double wake_energy_j = 0.0;
  double migration_energy_j = 0.0;
  double mean_active_nodes = 0.0;
  double mean_asleep_nodes = 0.0;
  double mean_live_chains = 0.0;
  /// Fraction of node-windows hosting k chains, index = k.
  std::vector<double> occupancy_fractions;

  /// Network block (topology runs only; defaults otherwise).
  bool topology_enabled = false;
  std::string topology_preset;
  std::string topology_routing;
  int topology_switches = 0;
  int topology_links = 0;
  int net_rejected = 0;
  int net_blocked = 0;
  double link_energy_j = 0.0;
  /// Mean routed-path latency (us) over chain-windows, and the fraction
  /// of chain-windows inside the sla.latency budget (1.0 when no budget).
  double mean_path_latency_us = 0.0;
  double latency_sla_satisfaction = 1.0;
  double latency_budget_us = 0.0;

  /// Fault block (fault runs only; defaults otherwise).
  bool fault_enabled = false;
  int node_crashes = 0;
  int node_repairs = 0;
  int link_fails = 0;
  int link_repairs = 0;
  int rack_outages = 0;
  int storm_windows = 0;
  int replaced = 0;
  int fault_dropped = 0;
  int rerouted = 0;
  double replace_energy_j = 0.0;
  double mean_down_nodes = 0.0;

  /// Printable fleet-history block (under the EvalReport table).
  [[nodiscard]] std::string fleet_summary() const;
};

class FleetOrchestrator {
 public:
  /// Validates the spec (must have fleet.enabled) and pre-computes the
  /// fleet timeline. Throws std::invalid_argument on bad specs — before
  /// anything trains or runs.
  explicit FleetOrchestrator(scenario::ScenarioSpec spec);

  /// Same, but drives placement/consolidation with `policy` instead of
  /// the spec's named policy — the seam custom-policy tests (e.g. the
  /// wake-charge regression suite) inject through.
  FleetOrchestrator(scenario::ScenarioSpec spec,
                    std::unique_ptr<FleetPolicy> policy);

  [[nodiscard]] const scenario::ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] const FleetTimeline& timeline() const { return timeline_; }
  /// Measured windows (fleet.horizon, or the scenario's eval_windows).
  [[nodiscard]] int horizon() const { return horizon_; }

  /// Evaluates every roster model against the identical fleet history.
  FleetReport run(const std::vector<scenario::SchedulerFactory>& roster);

  /// One model: per-window fleet series recorded under
  /// scenario::series_prefix(entry.name) into `recorder` (may be null).
  /// Per-node series (`node<i>_throughput_gbps`, `node<i>_energy_j`) are
  /// recorded only for fleets of at most 64 nodes — at hyperscale they
  /// would dwarf every other artifact.
  scenario::ModelReport run_model(const scenario::SchedulerFactory& entry,
                                  telemetry::Recorder* recorder);

 private:
  scenario::ScenarioSpec spec_;
  /// Non-null when a custom policy was injected through the two-argument
  /// constructor; otherwise the spec's named policy is instantiated.
  std::unique_ptr<FleetPolicy> policy_override_;
  int horizon_ = 0;
  /// arrival_rate == 0 freezes the fleet: no arrivals, no departures, no
  /// migrations — the ExperimentRunner degeneration case.
  bool static_fleet_ = true;
  double capacity_cores_ = 0.0;
  FleetTimeline timeline_;

  void build_timeline();
};

}  // namespace greennfv::orchestrator
