#include "orchestrator/timeline_io.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/assert.hpp"
#include "common/string_util.hpp"

namespace greennfv::orchestrator {

MembershipReplay::MembershipReplay(const FleetTimeline& timeline,
                                   int num_nodes)
    : timeline_(&timeline),
      members_(static_cast<std::size_t>(num_nodes)),
      chain_node_(timeline.chains.size(), -1) {
  GNFV_REQUIRE(num_nodes > 0, "MembershipReplay: num_nodes must be > 0");
}

void MembershipReplay::move_chain(int chain, int to) {
  auto& node = chain_node_[static_cast<std::size_t>(chain)];
  if (node >= 0) {
    auto& hosted = members_[static_cast<std::size_t>(node)];
    hosted.erase(std::find(hosted.begin(), hosted.end(), chain));
    dirty_.push_back(node);
    if (hosted.empty()) {
      occupied_.erase(
          std::lower_bound(occupied_.begin(), occupied_.end(), node));
    }
  }
  node = to;
  if (to >= 0) {
    auto& hosted = members_[static_cast<std::size_t>(to)];
    if (hosted.empty()) {
      occupied_.insert(
          std::lower_bound(occupied_.begin(), occupied_.end(), to), to);
    }
    hosted.push_back(chain);
    dirty_.push_back(to);
  }
}

const std::vector<int>& MembershipReplay::advance() {
  GNFV_REQUIRE(
      cursor_ < static_cast<int>(timeline_->windows.size()),
      "MembershipReplay::advance: past the end of the timeline");
  const auto& win = timeline_->windows[static_cast<std::size_t>(cursor_)];
  ++cursor_;
  dirty_.clear();
  // Builder order: departures leave at window start, then fault recovery
  // (replacements in application order — a chain can be re-placed twice
  // in one window when its new host crashes too — then drops, which are
  // always a chain's final event), then arrivals land on their recorded
  // first_node, then consolidation migrations move chains.
  for (int chain : win.departures) move_chain(chain, -1);
  for (const auto& mig : win.replacements) move_chain(mig.chain, mig.to);
  for (int chain : win.fault_dropped) move_chain(chain, -1);
  for (int chain : win.arrivals) {
    move_chain(chain,
               timeline_->chains[static_cast<std::size_t>(chain)].first_node);
  }
  for (const auto& mig : win.migrations) move_chain(mig.chain, mig.to);
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  // End-of-window discipline: perturbed hosted lists are kept sorted, so
  // every window starts (and serializes) with sorted membership.
  for (int node : dirty_)
    std::sort(members_[static_cast<std::size_t>(node)].begin(),
              members_[static_cast<std::size_t>(node)].end());
  return dirty_;
}

std::string double_bits(double value) {
  std::uint64_t raw = 0;
  std::memcpy(&raw, &value, sizeof raw);
  return format("%.17g/%016llx", value,
                static_cast<unsigned long long>(raw));
}

namespace {

std::string join_ints(const std::vector<int>& ids) {
  std::string text;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) text += ',';
    text += std::to_string(ids[i]);
  }
  return text;
}

void append_chain(std::string& text, const ChainInstance& chain) {
  std::string nfs;
  for (std::size_t i = 0; i < chain.nfs.size(); ++i) {
    if (i) nfs += '+';
    nfs += chain.nfs[i];
  }
  text += format("chain %d: nfs=%s cores=%s arrival=%d departure=%d"
                 " first_node=%d offered_gbps=%s offered_pps=%s\n",
                 chain.id, nfs.c_str(), double_bits(chain.cores).c_str(),
                 chain.arrival_window, chain.departure_window,
                 chain.first_node, double_bits(chain.offered_gbps).c_str(),
                 double_bits(chain.offered_pps).c_str());
  // Routed chains only (path_hops stays -1 without a topology), so
  // pre-topology timelines serialize byte-identically.
  if (chain.path_hops >= 0) {
    text += format("  path: hops=%d latency_ns=%lld\n", chain.path_hops,
                   static_cast<long long>(chain.path_latency_ns));
  }
  for (const auto& flow : chain.flows) {
    text += format(
        "  flow %d: proto=%d arrival=%d rate_pps=%s pkt=%u p2m=%s"
        " dwell=%s chain_index=%d\n",
        flow.id, static_cast<int>(flow.proto),
        static_cast<int>(flow.arrival),
        double_bits(flow.mean_rate_pps).c_str(), flow.pkt_bytes,
        double_bits(flow.peak_to_mean).c_str(),
        double_bits(flow.dwell_s).c_str(), flow.chain_index);
  }
}

const char* charge_kind_name(ChargeKind kind) {
  switch (kind) {
    case ChargeKind::kWake: return "wake";
    case ChargeKind::kMigration: return "migration";
    case ChargeKind::kReplace: return "replace";
    case ChargeKind::kDrop: return "drop";
  }
  return "wake";
}

}  // namespace

std::string timeline_to_text(const FleetTimeline& timeline, int num_nodes) {
  std::string text = "# greennfv fleet timeline v1\n";
  text += format("nodes=%d windows=%d chains=%d flows=%d\n", num_nodes,
                 static_cast<int>(timeline.windows.size()),
                 static_cast<int>(timeline.chains.size()),
                 static_cast<int>(timeline.flows.size()));
  text += format("arrivals=%d departures=%d rejected=%d migrations=%d"
                 " wakeups=%d\n",
                 timeline.arrivals, timeline.departures, timeline.rejected,
                 timeline.migrations, timeline.wakeups);
  text += format("standby_energy_j=%s\n",
                 double_bits(timeline.standby_energy_j).c_str());
  text += format("wake_energy_j=%s\n",
                 double_bits(timeline.wake_energy_j).c_str());
  text += format("migration_energy_j=%s\n",
                 double_bits(timeline.migration_energy_j).c_str());
  text += format("downtime_s=%s\n", double_bits(timeline.downtime_s).c_str());
  if (timeline.topology_enabled) {
    text += format(
        "topology switches=%d links=%d net_rejected=%d net_blocked=%d\n",
        timeline.topology_switches, timeline.topology_links,
        timeline.net_rejected, timeline.net_blocked);
    text += format(
        "topology routed_cw=%lld violation_cw=%lld path_latency_ns=%lld"
        " link_energy_j=%s\n",
        static_cast<long long>(timeline.routed_chain_windows),
        static_cast<long long>(timeline.latency_violation_chain_windows),
        static_cast<long long>(timeline.path_latency_sum_ns),
        double_bits(timeline.link_energy_j).c_str());
  }
  if (timeline.fault_enabled) {
    text += format(
        "fault crashes=%d repairs=%d link_fails=%d link_repairs=%d"
        " rack_outages=%d storm_windows=%d\n",
        timeline.node_crashes, timeline.node_repairs, timeline.link_fails,
        timeline.link_repairs, timeline.rack_outages,
        timeline.storm_windows);
    text += format(
        "fault replaced=%d dropped=%d rerouted=%d replace_energy_j=%s\n",
        timeline.replaced, timeline.fault_dropped, timeline.rerouted,
        double_bits(timeline.replace_energy_j).c_str());
  }
  text += format("occupancy_total=%llu counts=",
                 static_cast<unsigned long long>(timeline.occupancy.total()));
  const auto& counts = timeline.occupancy.counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i) text += ',';
    text += std::to_string(counts[i]);
  }
  text += '\n';
  for (const auto& chain : timeline.chains) append_chain(text, chain);

  MembershipReplay replay(timeline, num_nodes);
  for (std::size_t w = 0; w < timeline.windows.size(); ++w) {
    const auto& win = timeline.windows[w];
    replay.advance();
    text += format(
        "window %d: rejected=%d active=%d idle=%d asleep=%d live=%d"
        " standby=%s\n",
        static_cast<int>(w), win.rejected, win.active_nodes, win.idle_nodes,
        win.asleep_nodes, win.live_chains,
        double_bits(win.standby_energy_j).c_str());
    if (timeline.topology_enabled) {
      text += format(
          "  net: rejected=%d blocked=%d routed=%d violations=%d"
          " latency_ns=%lld link_energy_j=%s\n",
          win.net_rejected, win.net_blocked, win.routed_chains,
          win.latency_violations,
          static_cast<long long>(win.path_latency_sum_ns),
          double_bits(win.link_energy_j).c_str());
    }
    if (timeline.fault_enabled) {
      text += format(
          "  fault: crashes=%d repairs=%d link_fails=%d link_repairs=%d"
          " rerouted=%d down=%d\n",
          win.node_crashes, win.node_repairs, win.link_fails,
          win.link_repairs, win.rerouted, win.down_nodes);
    }
    for (const auto& mig : win.replacements) {
      text += format("  replacement %d: %d->%d\n", mig.chain, mig.from,
                     mig.to);
    }
    if (!win.fault_dropped.empty()) {
      text += format("  fault_dropped=%s\n",
                     join_ints(win.fault_dropped).c_str());
    }
    if (!win.arrivals.empty())
      text += format("  arrivals=%s\n", join_ints(win.arrivals).c_str());
    if (!win.departures.empty())
      text += format("  departures=%s\n", join_ints(win.departures).c_str());
    for (const auto& mig : win.migrations)
      text += format("  migration %d: %d->%d\n", mig.chain, mig.from, mig.to);
    for (const auto& charge : win.charges) {
      text += format("  charge %d: %s downtime=%s energy=%s\n", charge.chain,
                     charge_kind_name(charge.kind),
                     double_bits(charge.downtime_s).c_str(),
                     double_bits(charge.energy_j).c_str());
    }
    for (int node : replay.occupied()) {
      text += format("  members %d: %s\n", node,
                     join_ints(replay.members(node)).c_str());
    }
  }
  return text;
}

std::string eval_to_text(const FleetReport& report) {
  std::string text = "# greennfv fleet eval v1\n";
  text += format("scenario=%s nodes=%d models=%d\n",
                 report.report.scenario.c_str(), report.report.nodes,
                 static_cast<int>(report.report.models.size()));
  text += format("fleet arrivals=%d departures=%d rejected=%d migrations=%d"
                 " wakeups=%d\n",
                 report.arrivals, report.departures, report.rejected,
                 report.migrations, report.wakeups);
  text += format("fleet standby=%s wake=%s migration=%s\n",
                 double_bits(report.standby_energy_j).c_str(),
                 double_bits(report.wake_energy_j).c_str(),
                 double_bits(report.migration_energy_j).c_str());
  text += format("fleet mean_active=%s mean_asleep=%s mean_live=%s\n",
                 double_bits(report.mean_active_nodes).c_str(),
                 double_bits(report.mean_asleep_nodes).c_str(),
                 double_bits(report.mean_live_chains).c_str());
  text += "occupancy_fractions=";
  for (std::size_t i = 0; i < report.occupancy_fractions.size(); ++i) {
    if (i) text += ',';
    text += double_bits(report.occupancy_fractions[i]);
  }
  text += '\n';
  if (report.topology_enabled) {
    text += format(
        "fleet topology=%s/%s switches=%d links=%d net_rejected=%d"
        " net_blocked=%d\n",
        report.topology_preset.c_str(), report.topology_routing.c_str(),
        report.topology_switches, report.topology_links, report.net_rejected,
        report.net_blocked);
    text += format(
        "fleet link_energy_j=%s mean_path_latency_us=%s latency_sla=%s"
        " latency_budget_us=%s\n",
        double_bits(report.link_energy_j).c_str(),
        double_bits(report.mean_path_latency_us).c_str(),
        double_bits(report.latency_sla_satisfaction).c_str(),
        double_bits(report.latency_budget_us).c_str());
  }
  if (report.fault_enabled) {
    text += format(
        "fleet fault crashes=%d repairs=%d link_fails=%d link_repairs=%d"
        " rack_outages=%d storm_windows=%d\n",
        report.node_crashes, report.node_repairs, report.link_fails,
        report.link_repairs, report.rack_outages, report.storm_windows);
    text += format(
        "fleet fault replaced=%d dropped=%d rerouted=%d replace_energy_j=%s"
        " mean_down_nodes=%s\n",
        report.replaced, report.fault_dropped, report.rerouted,
        double_bits(report.replace_energy_j).c_str(),
        double_bits(report.mean_down_nodes).c_str());
  }
  for (const auto& model : report.report.models) {
    const auto& r = model.result;
    text += format(
        "model %s: windows=%d mean_gbps=%s mean_energy_j=%s mean_power_w=%s"
        " mean_efficiency=%s sla=%s drop=%s\n",
        r.scheduler.c_str(), r.windows, double_bits(r.mean_gbps).c_str(),
        double_bits(r.mean_energy_j).c_str(),
        double_bits(r.mean_power_w).c_str(),
        double_bits(r.mean_efficiency).c_str(),
        double_bits(r.sla_satisfaction).c_str(),
        double_bits(r.drop_fraction).c_str());
  }
  auto names = report.report.series.series_names();
  std::sort(names.begin(), names.end());
  for (const auto& name : names) {
    const auto& series = report.report.series.series(name);
    text += format("series %s: n=%d\n", name.c_str(),
                   static_cast<int>(series.size()));
    for (std::size_t i = 0; i < series.size(); ++i) {
      text += format("  %s %s\n", double_bits(series.times()[i]).c_str(),
                     double_bits(series.values()[i]).c_str());
    }
  }
  return text;
}

}  // namespace greennfv::orchestrator
