#include "orchestrator/fleet_index.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"

namespace greennfv::orchestrator {

namespace {

// Flight-recorder bucket-queue op counters. Function-local statics keep
// the registry lookup off the hot path; Counter::add is a relaxed no-op
// until metrics are runtime-enabled.
telemetry::metrics::Counter& c_place() {
  static auto& c = telemetry::metrics::counter("fleet.index.place");
  return c;
}
telemetry::metrics::Counter& c_remove() {
  static auto& c = telemetry::metrics::counter("fleet.index.remove");
  return c;
}
telemetry::metrics::Counter& c_wake() {
  static auto& c = telemetry::metrics::counter("fleet.index.wake");
  return c;
}
telemetry::metrics::Counter& c_sleep() {
  static auto& c = telemetry::metrics::counter("fleet.index.sleep");
  return c;
}

/// Buckets cover the integral committed-core range 0..floor(capacity);
/// one spare level absorbs a hypothetical custom policy that overcommits
/// (the registry policies never do — fits() forbids it).
std::size_t bucket_count(double capacity) {
  return static_cast<std::size_t>(std::floor(capacity + 1e-9)) + 2;
}

}  // namespace

FleetIndex::FleetIndex(int num_nodes, double capacity_cores)
    : capacity_(capacity_cores),
      awake_(bucket_count(capacity_cores), &arena_),
      asleep_(ArenaAllocator<int>(&arena_)),
      committed_(static_cast<std::size_t>(num_nodes), 0.0),
      node_level_(static_cast<std::size_t>(num_nodes), 0),
      asleep_flags_(static_cast<std::size_t>(num_nodes), 0),
      down_flags_(static_cast<std::size_t>(num_nodes), 0),
      hosted_(static_cast<std::size_t>(num_nodes)) {
  GNFV_REQUIRE(num_nodes > 0, "FleetIndex: num_nodes must be > 0");
  GNFV_REQUIRE(capacity_cores > 0.0, "FleetIndex: capacity must be > 0");
  // Every node starts awake and empty: all of level 0.
  for (int n = 0; n < num_nodes; ++n) awake_.insert(0, n);
}

void FleetIndex::set_level(int node, double committed) {
  committed_[static_cast<std::size_t>(node)] = committed;
  // Committed cores are integral by construction (one core per NF);
  // llround only guards against accumulated representation surprises.
  auto level = static_cast<std::size_t>(std::llround(committed));
  if (level >= awake_.num_levels()) level = awake_.num_levels() - 1;
  auto& stored = node_level_[static_cast<std::size_t>(node)];
  if (asleep(node)) {
    // Asleep nodes are not in the awake buckets; remember the level for
    // re-insertion on wake (always 0 in practice).
    stored = level;
    return;
  }
  if (stored != level) {
    awake_.move(stored, level, node);
    stored = level;
  }
}

void FleetIndex::place_chain(int chain, int node, double cores,
                             double offered_gbps) {
  const auto id = static_cast<std::size_t>(chain);
  if (id >= chain_node_.size()) {
    chain_node_.resize(id + 1, -1);
    chain_cores_.resize(id + 1, 0.0);
    chain_gbps_.resize(id + 1, 0.0);
  }
  GNFV_ASSERT(chain_node_[id] < 0, "FleetIndex: chain already placed");
  c_place().add();
  chain_node_[id] = node;
  chain_cores_[id] = cores;
  chain_gbps_[id] = offered_gbps;
  hosted_[static_cast<std::size_t>(node)].push_back(chain);
  set_level(node, committed_[static_cast<std::size_t>(node)] + cores);
}

void FleetIndex::remove_chain(int chain) {
  const auto id = static_cast<std::size_t>(chain);
  const int node = chain_node_[id];
  GNFV_ASSERT(node >= 0, "FleetIndex: chain not placed");
  c_remove().add();
  chain_node_[id] = -1;
  auto& hosted = hosted_[static_cast<std::size_t>(node)];
  hosted.erase(std::find(hosted.begin(), hosted.end(), chain));
  set_level(node, committed_[static_cast<std::size_t>(node)] -
                      chain_cores_[id]);
}

void FleetIndex::move_chain(int chain, int to) {
  const auto id = static_cast<std::size_t>(chain);
  const double cores = chain_cores_[id];
  const double gbps = chain_gbps_[id];
  remove_chain(chain);
  place_chain(chain, to, cores, gbps);
}

void FleetIndex::wake(int node) {
  auto& flag = asleep_flags_[static_cast<std::size_t>(node)];
  GNFV_ASSERT(flag != 0, "FleetIndex::wake: node is awake");
  c_wake().add();
  flag = 0;
  asleep_.erase(node);
  awake_.insert(level_of(node), node);
}

void FleetIndex::sleep(int node) {
  auto& flag = asleep_flags_[static_cast<std::size_t>(node)];
  GNFV_ASSERT(flag == 0, "FleetIndex::sleep: node already asleep");
  GNFV_ASSERT(hosted_[static_cast<std::size_t>(node)].empty(),
              "FleetIndex::sleep: node still hosts chains");
  c_sleep().add();
  flag = 1;
  awake_.erase(level_of(node), node);
  asleep_.insert(node);
}

void FleetIndex::crash(int node) {
  auto& flag = down_flags_[static_cast<std::size_t>(node)];
  GNFV_ASSERT(flag == 0, "FleetIndex::crash: node already down");
  GNFV_ASSERT(hosted_[static_cast<std::size_t>(node)].empty(),
              "FleetIndex::crash: evict hosted chains before crashing");
  flag = 1;
  auto& asleep_flag = asleep_flags_[static_cast<std::size_t>(node)];
  if (asleep_flag != 0) {
    asleep_flag = 0;
    asleep_.erase(node);
  } else {
    awake_.erase(level_of(node), node);
  }
}

void FleetIndex::repair(int node) {
  auto& flag = down_flags_[static_cast<std::size_t>(node)];
  GNFV_ASSERT(flag != 0, "FleetIndex::repair: node is up");
  flag = 0;
  // A repaired node comes back awake and empty (committed 0 = level 0).
  GNFV_ASSERT(committed_[static_cast<std::size_t>(node)] == 0.0,
              "FleetIndex::repair: down node has committed cores");
  node_level_[static_cast<std::size_t>(node)] = 0;
  awake_.insert(0, node);
}

void FleetIndex::sort_hosted(int node) {
  auto& hosted = hosted_[static_cast<std::size_t>(node)];
  std::sort(hosted.begin(), hosted.end());
}

int FleetIndex::max_fitting_level(double cores) const {
  // Same tolerance (and the same arithmetic) as NodeView::fits: a node at
  // integral level L fits iff L + cores <= capacity + 1e-9.
  for (int level = static_cast<int>(awake_.num_levels()) - 1; level >= 0;
       --level) {
    if (static_cast<double>(level) + cores <= capacity_ + 1e-9)
      return level;
  }
  return -1;
}

FleetView FleetIndex::materialize_view() const {
  FleetView view;
  view.nodes.reserve(committed_.size());
  for (std::size_t n = 0; n < committed_.size(); ++n) {
    NodeView node;
    // Down nodes are presented at capacity 0 so fits() fails for any
    // request — view-based policies mask them the same way the bucket
    // queries do (where a down node simply is not present).
    node.capacity_cores = down_flags_[n] != 0 ? 0.0 : capacity_;
    node.committed_cores = committed_[n];
    node.asleep = asleep_flags_[n] != 0;
    node.down = down_flags_[n] != 0;
    node.chains.reserve(hosted_[n].size());
    for (const int id : hosted_[n]) {
      node.chains.push_back({id, chain_cores_[static_cast<std::size_t>(id)],
                             chain_gbps_[static_cast<std::size_t>(id)]});
    }
    view.nodes.push_back(std::move(node));
  }
  return view;
}

}  // namespace greennfv::orchestrator
