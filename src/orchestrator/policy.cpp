#include "orchestrator/policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "orchestrator/fleet_index.hpp"
#include "telemetry/metrics.hpp"
#include "topology/path_table.hpp"

namespace greennfv::orchestrator {

namespace {

/// Tightest fit among awake nodes via the occupancy buckets: the highest
/// bucket whose level still fits has minimal slack; min id breaks ties
/// (the reference scan's 1e-12-strict improvement keeps the first, i.e.
/// lowest, index among equal-slack nodes). Falls back to the lowest
/// asleep id, mirroring energy_bestfit_choose's wake pass.
int indexed_bestfit(const FleetIndex& index, double cores) {
  const int max_level = index.max_fitting_level(cores);
  if (max_level < 0) return -1;
  const int level = index.awake_levels().highest_nonempty(
      0, static_cast<std::size_t>(max_level));
  if (level >= 0)
    return index.awake_levels().min_id(static_cast<std::size_t>(level));
  return index.min_asleep_id();
}

class FirstFitPolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "first-fit"; }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    for (std::size_t n = 0; n < view.nodes.size(); ++n)
      if (view.nodes[n].fits(cores)) return static_cast<int>(n);
    return -1;
  }

  [[nodiscard]] int choose_indexed(const FleetIndex& index,
                                   double cores) const override {
    const int max_level = index.max_fitting_level(cores);
    if (max_level < 0) return -1;
    // Lowest node id that fits, awake or asleep (asleep nodes sit at
    // level 0, which fits whenever anything does).
    const int awake = index.awake_levels().min_id_in_range(
        0, static_cast<std::size_t>(max_level));
    const int asleep = index.min_asleep_id();
    if (awake < 0) return asleep;
    if (asleep < 0) return awake;
    return std::min(awake, asleep);
  }
};

class LeastLoadedPolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "least-loaded"; }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    int chosen = -1;
    double best_load = 1e300;
    for (std::size_t n = 0; n < view.nodes.size(); ++n) {
      const NodeView& node = view.nodes[n];
      if (!node.fits(cores)) continue;
      if (node.utilization() < best_load - 1e-12) {
        best_load = node.utilization();
        chosen = static_cast<int>(n);
      }
    }
    return chosen;
  }

  [[nodiscard]] int choose_indexed(const FleetIndex& index,
                                   double cores) const override {
    const int max_level = index.max_fitting_level(cores);
    if (max_level < 0) return -1;
    const int lowest = index.awake_levels().lowest_nonempty(
        0, static_cast<std::size_t>(max_level));
    const int asleep = index.min_asleep_id();
    if (asleep >= 0) {
      // Asleep nodes carry zero committed cores: they tie with awake
      // level 0 (lowest id wins — the scan's strict-improvement keeps
      // the first index) and beat any busier node.
      if (lowest == 0)
        return std::min(index.awake_levels().min_id(0), asleep);
      return asleep;
    }
    return lowest < 0
               ? -1
               : index.awake_levels().min_id(static_cast<std::size_t>(lowest));
  }
};

/// Tightest fit among *awake* nodes; a sleeping node is woken only when no
/// awake node has room — the fewest nodes burn more than sleep power.
int energy_bestfit_choose(const FleetView& view, double cores,
                          bool allow_wake) {
  int chosen = -1;
  double best_slack = 1e300;
  for (std::size_t n = 0; n < view.nodes.size(); ++n) {
    const NodeView& node = view.nodes[n];
    if (node.asleep || !node.fits(cores)) continue;
    const double slack = node.free_cores() - cores;
    if (slack < best_slack - 1e-12) {
      best_slack = slack;
      chosen = static_cast<int>(n);
    }
  }
  if (chosen >= 0 || !allow_wake) return chosen;
  for (std::size_t n = 0; n < view.nodes.size(); ++n)
    if (view.nodes[n].asleep && view.nodes[n].fits(cores))
      return static_cast<int>(n);
  return -1;
}

class EnergyBestFitPolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "energy-bestfit";
  }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    return energy_bestfit_choose(view, cores, /*allow_wake=*/true);
  }

  [[nodiscard]] int choose_indexed(const FleetIndex& index,
                                   double cores) const override {
    return indexed_bestfit(index, cores);
  }
};

class ConsolidatePolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "consolidate"; }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    return energy_bestfit_choose(view, cores, /*allow_wake=*/true);
  }

  [[nodiscard]] int choose_indexed(const FleetIndex& index,
                                   double cores) const override {
    return indexed_bestfit(index, cores);
  }

  [[nodiscard]] std::vector<Migration> consolidate(
      const FleetView& view, double below) const override {
    // Candidate donors, least-utilized first (the cheapest node to empty).
    std::vector<std::size_t> donors;
    for (std::size_t n = 0; n < view.nodes.size(); ++n) {
      const NodeView& node = view.nodes[n];
      if (node.occupied() && !node.asleep && node.utilization() < below)
        donors.push_back(n);
    }
    std::sort(donors.begin(), donors.end(),
              [&view](std::size_t a, std::size_t b) {
                const double ua = view.nodes[a].utilization();
                const double ub = view.nodes[b].utilization();
                if (ua != ub) return ua < ub;
                return a < b;
              });

    for (const std::size_t donor : donors) {
      // Drain-or-nothing: a partial move keeps the donor awake and saves
      // nothing. Try to best-fit every chain onto the other awake occupied
      // nodes (never wake a sleeping node to consolidate into).
      std::vector<double> free(view.nodes.size());
      for (std::size_t n = 0; n < view.nodes.size(); ++n)
        free[n] = view.nodes[n].free_cores();

      std::vector<Migration> plan;
      bool drained = true;
      for (const ChainLoad& chain : view.nodes[donor].chains) {
        int target = -1;
        double best_slack = 1e300;
        for (std::size_t n = 0; n < view.nodes.size(); ++n) {
          if (n == donor) continue;
          const NodeView& node = view.nodes[n];
          if (node.asleep || !node.occupied()) continue;
          const double slack = free[n] - chain.cores;
          if (slack < -1e-9) continue;
          if (slack < best_slack - 1e-12) {
            best_slack = slack;
            target = static_cast<int>(n);
          }
        }
        if (target < 0) {
          drained = false;
          break;
        }
        free[static_cast<std::size_t>(target)] -= chain.cores;
        plan.push_back(
            {chain.id, static_cast<int>(donor), target});
      }
      // One drained donor per window keeps churn (and migration downtime)
      // bounded; the next window picks up the next candidate.
      if (drained && !plan.empty()) return plan;
    }
    return {};
  }

  [[nodiscard]] std::vector<Migration> consolidate_indexed(
      const FleetIndex& index, double below) const override {
    const BucketQueue& awake = index.awake_levels();
    const double cap = index.capacity_cores();
    // Donor candidates in (utilization asc, id asc) order = (bucket
    // level asc, ordered ids within): utilization is committed/capacity
    // and committed equals the bucket level exactly. Level 0 nodes are
    // empty (never donors); past the `below` threshold no higher level
    // qualifies either.
    for (std::size_t level = 1; level < awake.num_levels(); ++level) {
      if (!(static_cast<double>(level) / cap < below)) break;
      for (const int donor : awake.at(level)) {
        std::vector<Migration> plan = try_drain(index, donor);
        if (!plan.empty()) return plan;
      }
    }
    return {};
  }

 private:
  /// Drain-or-nothing plan for one donor against the live index, exactly
  /// mirroring the view-based planner's overlay of tentative receivers:
  /// non-overlaid candidates come from the snapshot buckets (highest
  /// fitting level = tightest fit, min id on ties), overlaid receivers
  /// compete at their effective (snapshot + taken) level.
  [[nodiscard]] static std::vector<Migration> try_drain(
      const FleetIndex& index, int donor) {
    const BucketQueue& awake = index.awake_levels();
    const double cap = index.capacity_cores();
    std::vector<std::pair<int, double>> taken;  // (receiver, cores so far)
    std::vector<Migration> plan;
    for (const int chain : index.hosted(donor)) {
      const double cores = index.chain_cores(chain);
      const int max_level = index.max_fitting_level(cores);
      int target = -1;
      double target_eff = -1.0;
      // Highest fitting snapshot bucket, skipping the donor and already-
      // overlaid receivers; level >= 1 keeps only awake occupied nodes.
      for (int level = std::min(max_level,
                                static_cast<int>(awake.num_levels()) - 1);
           level >= 1 && target < 0; --level) {
        for (const int id : awake.at(static_cast<std::size_t>(level))) {
          if (id == donor) continue;
          bool overlaid = false;
          for (const auto& [node, extra] : taken) {
            if (node == id) {
              overlaid = true;
              break;
            }
          }
          if (overlaid) continue;
          target = id;
          target_eff = static_cast<double>(level);
          break;
        }
      }
      // Overlaid receivers at their effective load: tightest fit wins,
      // min id on effective-level ties (the scan keeps the first index).
      for (const auto& [node, extra] : taken) {
        const double eff = index.committed_cores(node) + extra;
        if (eff + cores > cap + 1e-9) continue;
        if (target < 0 || eff > target_eff ||
            (eff == target_eff && node < target)) {
          target = node;
          target_eff = eff;
        }
      }
      if (target < 0) return {};  // not drainable — try the next donor
      bool found = false;
      for (auto& [node, extra] : taken) {
        if (node == target) {
          extra += cores;
          found = true;
          break;
        }
      }
      if (!found) taken.emplace_back(target, cores);
      plan.push_back({chain, index.chain_node(chain), target});
    }
    return plan;
  }
};

/// Joint node + path argmin. Scores every candidate with one routing
/// pass (preview_hosts): among nodes that fit the cores AND have a
/// feasible path, minimize (asleep, hops asc, bottleneck desc, slack asc,
/// id asc) — awake nodes first (waking costs latency and watts), then the
/// cheapest path, widest remaining headroom on hop ties, tightest core
/// fit after that. This is what makes bestfit that saves node watts but
/// crosses the core measurably lose: an extra hop outranks core slack.
class TopologyAwareBestFitPolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "topology-aware-bestfit";
  }

  /// Network-free fallback (topology.enabled=0, or callers that never
  /// route): identical to energy-bestfit, so the no-topology determinism
  /// and golden suites exercise this policy too.
  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    return energy_bestfit_choose(view, cores, /*allow_wake=*/true);
  }

  [[nodiscard]] int choose_indexed(const FleetIndex& index,
                                   double cores) const override {
    return indexed_bestfit(index, cores);
  }

  [[nodiscard]] int choose_arrival(
      const FleetView& view, const ArrivalRequest& request,
      const topology::PathTable* net) const override {
    if (net == nullptr) return choose(view, request.cores);
    const std::vector<topology::PathView> paths =
        net->preview_hosts(request.offered_gbps);
    int chosen = -1;
    bool chosen_asleep = false;
    topology::PathView chosen_path;
    double chosen_slack = 0.0;
    for (std::size_t n = 0; n < view.nodes.size(); ++n) {
      const NodeView& node = view.nodes[n];
      if (!node.fits(request.cores)) continue;
      const topology::PathView& path = paths[n];
      if (!path.feasible) continue;
      const double slack = node.free_cores() - request.cores;
      const bool wins = [&] {
        if (chosen < 0) return true;
        if (node.asleep != chosen_asleep) return chosen_asleep;
        if (path.hops != chosen_path.hops)
          return path.hops < chosen_path.hops;
        if (path.bottleneck_kbps != chosen_path.bottleneck_kbps)
          return path.bottleneck_kbps > chosen_path.bottleneck_kbps;
        // Strict improvement only: equal slack keeps the lower id.
        return slack < chosen_slack - 1e-12;
      }();
      if (wins) {
        chosen = static_cast<int>(n);
        chosen_asleep = node.asleep;
        chosen_path = path;
        chosen_slack = slack;
      }
    }
    return chosen;
  }
};

}  // namespace

int FleetPolicy::choose_arrival_indexed(
    const FleetIndex& index, const ArrivalRequest& request,
    const topology::PathTable* net) const {
  static auto& c_queries =
      telemetry::metrics::counter("fleet.placement.queries");
  static auto& c_scanned =
      telemetry::metrics::counter("fleet.placement.candidates_scanned");
  c_queries.add();
  // No network: the classic O(levels) indexed path, untouched. With one:
  // arrival placement is no longer a pure cores argmin, so materialize
  // the view and run the network-aware scan.
  if (net == nullptr) {
    // Bucket queries touch at most one entry per occupancy level.
    c_scanned.add(index.awake_levels().num_levels());
    return choose_indexed(index, request.cores);
  }
  c_scanned.add(static_cast<std::uint64_t>(index.num_nodes()));
  return choose_arrival(index.materialize_view(), request, net);
}

int FleetPolicy::choose_indexed(const FleetIndex& index,
                                double cores) const {
  // Compatibility path for index-unaware (custom) policies: snapshot the
  // fleet into the classic view and run the linear-scan variant.
  return choose(index.materialize_view(), cores);
}

std::vector<Migration> FleetPolicy::consolidate_indexed(
    const FleetIndex& index, double below) const {
  return consolidate(index.materialize_view(), below);
}

const std::vector<std::string>& fleet_policy_names() {
  static const std::vector<std::string> names = {
      "first-fit", "least-loaded", "energy-bestfit", "consolidate",
      "topology-aware-bestfit"};
  return names;
}

std::unique_ptr<FleetPolicy> make_fleet_policy(const std::string& name) {
  if (name == "first-fit") return std::make_unique<FirstFitPolicy>();
  if (name == "least-loaded") return std::make_unique<LeastLoadedPolicy>();
  if (name == "energy-bestfit")
    return std::make_unique<EnergyBestFitPolicy>();
  if (name == "consolidate") return std::make_unique<ConsolidatePolicy>();
  if (name == "topology-aware-bestfit")
    return std::make_unique<TopologyAwareBestFitPolicy>();
  std::string known;
  for (const auto& entry : fleet_policy_names()) {
    if (!known.empty()) known += ", ";
    known += entry;
  }
  throw std::invalid_argument("orchestrator: unknown fleet policy '" +
                              name + "' (known: " + known + ")");
}

}  // namespace greennfv::orchestrator
