#include "orchestrator/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace greennfv::orchestrator {

namespace {

class FirstFitPolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "first-fit"; }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    for (std::size_t n = 0; n < view.nodes.size(); ++n)
      if (view.nodes[n].fits(cores)) return static_cast<int>(n);
    return -1;
  }
};

class LeastLoadedPolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "least-loaded"; }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    int chosen = -1;
    double best_load = 1e300;
    for (std::size_t n = 0; n < view.nodes.size(); ++n) {
      const NodeView& node = view.nodes[n];
      if (!node.fits(cores)) continue;
      if (node.utilization() < best_load - 1e-12) {
        best_load = node.utilization();
        chosen = static_cast<int>(n);
      }
    }
    return chosen;
  }
};

/// Tightest fit among *awake* nodes; a sleeping node is woken only when no
/// awake node has room — the fewest nodes burn more than sleep power.
int energy_bestfit_choose(const FleetView& view, double cores,
                          bool allow_wake) {
  int chosen = -1;
  double best_slack = 1e300;
  for (std::size_t n = 0; n < view.nodes.size(); ++n) {
    const NodeView& node = view.nodes[n];
    if (node.asleep || !node.fits(cores)) continue;
    const double slack = node.free_cores() - cores;
    if (slack < best_slack - 1e-12) {
      best_slack = slack;
      chosen = static_cast<int>(n);
    }
  }
  if (chosen >= 0 || !allow_wake) return chosen;
  for (std::size_t n = 0; n < view.nodes.size(); ++n)
    if (view.nodes[n].asleep && view.nodes[n].fits(cores))
      return static_cast<int>(n);
  return -1;
}

class EnergyBestFitPolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "energy-bestfit";
  }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    return energy_bestfit_choose(view, cores, /*allow_wake=*/true);
  }
};

class ConsolidatePolicy final : public FleetPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "consolidate"; }

  [[nodiscard]] int choose(const FleetView& view,
                           double cores) const override {
    return energy_bestfit_choose(view, cores, /*allow_wake=*/true);
  }

  [[nodiscard]] std::vector<Migration> consolidate(
      const FleetView& view, double below) const override {
    // Candidate donors, least-utilized first (the cheapest node to empty).
    std::vector<std::size_t> donors;
    for (std::size_t n = 0; n < view.nodes.size(); ++n) {
      const NodeView& node = view.nodes[n];
      if (node.occupied() && !node.asleep && node.utilization() < below)
        donors.push_back(n);
    }
    std::sort(donors.begin(), donors.end(),
              [&view](std::size_t a, std::size_t b) {
                const double ua = view.nodes[a].utilization();
                const double ub = view.nodes[b].utilization();
                if (ua != ub) return ua < ub;
                return a < b;
              });

    for (const std::size_t donor : donors) {
      // Drain-or-nothing: a partial move keeps the donor awake and saves
      // nothing. Try to best-fit every chain onto the other awake occupied
      // nodes (never wake a sleeping node to consolidate into).
      std::vector<double> free(view.nodes.size());
      for (std::size_t n = 0; n < view.nodes.size(); ++n)
        free[n] = view.nodes[n].free_cores();

      std::vector<Migration> plan;
      bool drained = true;
      for (const ChainLoad& chain : view.nodes[donor].chains) {
        int target = -1;
        double best_slack = 1e300;
        for (std::size_t n = 0; n < view.nodes.size(); ++n) {
          if (n == donor) continue;
          const NodeView& node = view.nodes[n];
          if (node.asleep || !node.occupied()) continue;
          const double slack = free[n] - chain.cores;
          if (slack < -1e-9) continue;
          if (slack < best_slack - 1e-12) {
            best_slack = slack;
            target = static_cast<int>(n);
          }
        }
        if (target < 0) {
          drained = false;
          break;
        }
        free[static_cast<std::size_t>(target)] -= chain.cores;
        plan.push_back(
            {chain.id, static_cast<int>(donor), target});
      }
      // One drained donor per window keeps churn (and migration downtime)
      // bounded; the next window picks up the next candidate.
      if (drained && !plan.empty()) return plan;
    }
    return {};
  }
};

}  // namespace

const std::vector<std::string>& fleet_policy_names() {
  static const std::vector<std::string> names = {
      "first-fit", "least-loaded", "energy-bestfit", "consolidate"};
  return names;
}

std::unique_ptr<FleetPolicy> make_fleet_policy(const std::string& name) {
  if (name == "first-fit") return std::make_unique<FirstFitPolicy>();
  if (name == "least-loaded") return std::make_unique<LeastLoadedPolicy>();
  if (name == "energy-bestfit")
    return std::make_unique<EnergyBestFitPolicy>();
  if (name == "consolidate") return std::make_unique<ConsolidatePolicy>();
  std::string known;
  for (const auto& entry : fleet_policy_names()) {
    if (!known.empty()) known += ", ";
    known += entry;
  }
  throw std::invalid_argument("orchestrator: unknown fleet policy '" +
                              name + "' (known: " + known + ")");
}

}  // namespace greennfv::orchestrator
