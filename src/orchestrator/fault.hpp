#pragma once

#include <vector>

#include "scenario/scenario_spec.hpp"

/// \file fault.hpp
/// Deterministic fault injection for the fleet orchestrator.
///
/// A `FaultSchedule` is the complete failure history of a run — node
/// crashes, correlated rack outages, link failures, every matching repair,
/// and the wake-latency-storm windows — expanded once from the scenario
/// seed before the simulation starts, exactly like the arrival process.
/// Both fleet engines (the discrete-event engine and the frozen
/// window-synchronous reference) consume the same schedule in the same
/// order, so fault-enabled histories stay bit-identical across engines.
/// The schedule draws from its own salted RNG stream: enabling faults
/// never perturbs the arrival/holding/flow draws, and `fault.enabled=0`
/// histories are byte-identical to pre-fault goldens.

namespace greennfv::orchestrator {

/// One injected fault, applied at the start of its window (after
/// departures, before arrivals). Rack outages are expanded at build time
/// into per-node crash/repair events, so engines only see these four.
struct FaultEvent {
  enum class Kind { kNodeCrash, kNodeRepair, kLinkFail, kLinkRepair };
  Kind kind;
  int target;  ///< node id for crash/repair, link id for fail/repair
};

struct FaultSchedule {
  /// windows[w] = events applied at the start of window w, in injection
  /// order (repairs due this window first, then new faults).
  std::vector<std::vector<FaultEvent>> windows;
  /// wake_storm[w] != 0 marks window w as a wake-latency storm: every
  /// wake charge in it is multiplied by fault.wake_storm_factor.
  std::vector<char> wake_storm;
  // Injection totals (what the schedule put in, independent of what the
  // engines managed to recover).
  int node_crashes = 0;
  int node_repairs = 0;
  int link_fails = 0;
  int link_repairs = 0;
  int rack_outages = 0;
  int storm_windows = 0;

  [[nodiscard]] bool storm_active(int window) const {
    return window >= 0 &&
           window < static_cast<int>(wake_storm.size()) &&
           wake_storm[static_cast<std::size_t>(window)] != 0;
  }
};

/// Expands the scenario's `fault.*` block into the per-window schedule
/// for `horizon` windows over `num_nodes` nodes and `num_links` fabric
/// links (pass 0 when the topology is disabled; link failures then never
/// fire). Pure function of (spec.fault, spec.seed, horizon, num_nodes,
/// num_links): the builder tracks its own up/down sets so every emitted
/// event is applicable by construction — engines apply them blindly.
[[nodiscard]] FaultSchedule build_fault_schedule(
    const scenario::ScenarioSpec& spec, int horizon, int num_nodes,
    int num_links);

}  // namespace greennfv::orchestrator
