#include "orchestrator/power_state.hpp"

namespace greennfv::orchestrator {

NodePowerStateMachine::WakeCharge NodePowerStateMachine::activate() {
  WakeCharge charge;
  if (state_ == NodePowerState::kAsleep) {
    charge.woke = true;
    charge.downtime_s = config_.wake_latency_s;
    charge.energy_j = config_.p_idle_w * config_.wake_latency_s;
  }
  state_ = NodePowerState::kActive;
  empty_windows_ = 0;
  return charge;
}

double NodePowerStateMachine::advance(bool occupied, double window_s) {
  if (occupied) {
    state_ = NodePowerState::kActive;
    empty_windows_ = 0;
    return 0.0;
  }
  // Unoccupied: count this empty window, gate after the threshold.
  if (state_ == NodePowerState::kAsleep) {
    return config_.p_sleep_w * window_s;
  }
  state_ = NodePowerState::kIdle;
  ++empty_windows_;
  if (config_.gating && empty_windows_ >= config_.sleep_after_windows) {
    state_ = NodePowerState::kAsleep;
    // The gating transition happens at the window edge; this window was
    // still spent idling.
  }
  return config_.p_idle_w * window_s;
}

}  // namespace greennfv::orchestrator
